.PHONY: verify lint race test bench bench_obs

# Full gate: compile, vet, the repo-specific static analyzers, the
# complete test suite under the race detector (the observability layer is
# exercised concurrently by design), and the invariant-checked build of
# the numeric core.
verify:
	go build ./... && go vet ./... && go run ./cmd/repolint && go test -race ./... && go test -tags checkinvariants ./internal/check ./internal/hf ./internal/core

# Repo-specific static analysis: unchecked mpi.Comm/IO errors, float
# equality, locks copied by value, allocations in //lint:hotpath kernels,
# unguarded obs.Observer field access. Zero findings is the shipping bar.
lint:
	go vet ./... && go run ./cmd/repolint

# Race-detector pass over the packages with real concurrency: the MPI
# transport, the master/worker training core, and the metrics registry.
race:
	go test -race ./internal/mpi ./internal/core ./internal/obs

test:
	go test ./...

# Regenerate every paper table/figure benchmark once.
bench:
	go test -bench . -benchtime 1x -run '^$$' .

# Measure observability overhead on the real trainer; writes BENCH_obs.json.
bench_obs:
	go test -bench BenchmarkObsOverhead -benchtime 1x -run '^$$' .
