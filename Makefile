.PHONY: verify test bench bench_obs

# Full gate: compile, vet, and the complete test suite under the race
# detector (the observability layer is exercised concurrently by design).
verify:
	go build ./... && go vet ./... && go test -race ./...

test:
	go test ./...

# Regenerate every paper table/figure benchmark once.
bench:
	go test -bench . -benchtime 1x -run '^$$' .

# Measure observability overhead on the real trainer; writes BENCH_obs.json.
bench_obs:
	go test -bench BenchmarkObsOverhead -benchtime 1x -run '^$$' .
