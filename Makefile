.PHONY: verify lint commcheck numcheck p2pcheck shapecheck faultcheck obscheck alloccheck servecheck determinism race race-mpi test bench bench_obs bench_fault bench_alloc bench_serve

# Full gate: compile, vet, the repo-specific static analyzers (including
# the collective-protocol checker, the point-to-point protocol family —
# tag space, opcode state machine, send/recv pairing — the
# determinism/numerical-safety quartet, and the interprocedural shape
# verifier; `go run ./cmd/repolint -list` documents the full set), the
# complete test suite under the race detector, the same suites re-run
# with runtime protocol conformance checking on every collective
# (-tags commcheck), the invariant-checked build of the numeric core
# (which also arms the check.Dims/check.Layout guards the shape analyzer
# leans on), the compiler-truth allocation and bounds-check gates on the
# hot paths, and the bit-reproducible replay gate on both fabrics.
verify:
	go build ./... && go vet ./... && go run ./cmd/repolint && go test -race ./... && go test -tags commcheck ./internal/mpi ./internal/core && go test -tags checkinvariants ./internal/check ./internal/blas ./internal/nn ./internal/hf ./internal/core && $(MAKE) shapecheck && $(MAKE) p2pcheck && $(MAKE) faultcheck && $(MAKE) obscheck && $(MAKE) alloccheck && $(MAKE) servecheck && $(MAKE) determinism

# Repo-specific static analysis: unchecked mpi.Comm/IO errors, float
# equality, locks copied by value, allocations in //lint:hotpath kernels,
# unguarded obs.Observer field access, master/worker collective-protocol
# conformance, and the point-to-point protocol family (tag space, opcode
# state machine, send/recv pairing). Zero findings is the shipping bar.
# Machine-readable output: -json, or -sarif for code-scanning upload.
lint:
	go vet ./... && go run ./cmd/repolint

# Static collective-protocol verification only: checks every worker
# dispatch arm against its master sender for kind/root/dtype/length and
# sequence agreement, flags collectives under rank-dependent branches and
# orphaned opcode arms. See DESIGN.md, "Collective protocol".
commcheck:
	go run ./cmd/repolint -only commcheck

# Determinism & numerical-safety analyzers only: range-over-map float
# accumulation, arrival-order channel reduction, global/time-seeded RNG
# use, and unguarded float division. See DESIGN.md, "Determinism".
numcheck:
	go run ./cmd/repolint -only maporderfloat,reduceorder,rngsource,divguard

# Static point-to-point protocol verification only: the module-wide tag
# map (collisions, dynamic-block overlaps, orphans), the elastic opcode
# state machine (master senders vs worker dispatch arms, reply-length
# agreement, opName coverage) and send/recv pairing (blocking recvs with
# no counterpart send). See DESIGN.md, "P2P protocol verification".
p2pcheck:
	go run ./cmd/repolint -only tagspace,opproto,sendrecvpair

# Interprocedural shape & buffer-layout verification only: symbolic
# dimensions propagated through the nn → blas → hf call graph against
# //lint:shape contracts (provable operand mismatches are errors, calls
# that are neither provable nor guarded by check.Dims/check.Layout or a
# callee panic are warnings) plus flat-buffer partition checking
# (sub-slice gap, overlap, and short-coverage). See DESIGN.md, "Shape &
# layout verification".
shapecheck:
	go run ./cmd/repolint -only shape

# Fault-tolerance gate: the deprecated-API analyzer (no caller may bypass
# the Session front door) plus the elastic runtime's fault suite — worker
# kill mid-CG on both fabrics, surrender budgeting, option validation,
# fault-schedule round-trips and transport shaping — under the race
# detector. See DESIGN.md, "Elastic fault tolerance".
faultcheck:
	go vet ./... && go run ./cmd/repolint -only deprecatedapi
	go test -race -run 'TestElastic|TestSession|TestFault|TestRecvTimeout|TestTCPSendWriteDeadline' ./internal/core ./internal/mpi

# Telemetry-plane gate: the obs nil-guard analyzer (covers both
# *obs.Observer and *telemetry.Plane field access), the telemetry unit
# suite (clock sync, shipper/merger round-trip, Prometheus and merged-
# trace goldens, flight recorder, endpoint handlers) under the race
# detector, and the end-to-end drills on the real fabrics: merged
# 4-rank TCP trace, mid-run /metrics scrape, and the kill-1-of-4
# flight-bundle capture. See DESIGN.md, "Telemetry plane".
obscheck:
	go run ./cmd/repolint -only obsnilguard
	go test -race ./internal/obs/telemetry
	go test -race -run 'TestTelemetry' ./internal/core

# Hot-path allocation gate, in four layers of evidence: the escape gate
# (compile //lint:hotpath packages with -gcflags=-m=2 and fail any hot
# function with a compiler-reported heap escape), the bounds-check gate
# (the same packages under -gcflags=-d=ssa/check_bce; hot kernels must
# be bounds-check-free), the white-box zero-alloc tests
# (testing.AllocsPerRun on the CG step and the packed GEMM kernels),
# and the allocs/op benchmark gated against the BENCH_alloc.json
# baseline. See DESIGN.md, "Concurrency & allocation gates".
alloccheck:
	go run ./cmd/repolint -only escape,bce
	go test -run TestZeroAlloc ./internal/blas ./internal/hf ./internal/nn ./internal/serve
	go test -bench BenchmarkAllocGate -benchtime 1x -run '^$$' .

# Serving-runtime gate: the deprecated-API analyzer (retired training
# entry points must not resurface behind the serving surface), the serve
# and shared-inference suites under the race detector (batcher flush
# rules, shed-before-enqueue, graceful drain, replica sharding, the
# end-to-end train→checkpoint→HTTP bit-for-bit test), and the zero-alloc
# probes on the batched forward path. See DESIGN.md, "Serving runtime".
servecheck:
	go run ./cmd/repolint -only deprecatedapi
	go test -race ./internal/serve/...
	go test -race -run 'TestForwardInto|TestInferBuffers|TestSoftmaxInto|TestZeroAlloc' ./internal/nn

# Bit-reproducible replay gate: train the same seeded problem twice on
# each fabric and require byte-identical per-iteration FNV hash streams
# of gradients, CG solutions, and accepted parameters. Also runs the
# granular (-tags determinism) replay suite, which additionally hashes
# every CG curvature application. Writes BENCH_determinism.json.
determinism:
	go run ./cmd/hftrain -replay-verify -transport inproc,tcp -ranks 3 \
		-utterances 60 -iters 3 -hidden 16 -layers 1 \
		-replay-json BENCH_determinism.json
	go test -tags determinism -run Replay ./internal/core

# Race-detector pass over the packages with real concurrency: the MPI
# transport, the master/worker training core, and the metrics registry.
race:
	go test -race ./internal/mpi ./internal/core ./internal/obs

# Race detector combined with runtime protocol checking: every collective
# in the MPI and training suites carries a conformance header and a
# watchdog deadline, so desynchronization surfaces as a diagnosis instead
# of a hang.
race-mpi:
	go test -race -tags commcheck ./internal/mpi ./internal/core

test:
	go test ./...

# Regenerate every paper table/figure benchmark once.
bench:
	go test -bench . -benchtime 1x -run '^$$' .

# Measure observability overhead on the real trainer; writes BENCH_obs.json.
bench_obs:
	go test -bench BenchmarkObsOverhead -benchtime 1x -run '^$$' .

# Measure what surviving a worker kill costs the elastic runtime
# (eviction + re-shard + rewind vs an uninterrupted run); writes
# BENCH_fault.json.
bench_fault:
	go test -bench BenchmarkFaultEviction -benchtime 1x -run '^$$' .

# Re-measure hot-path allocs/op and bytes/op; rewrites BENCH_alloc.json
# and fails if any case regressed past the recorded baseline.
bench_alloc:
	go test -bench BenchmarkAllocGate -benchtime 1x -run '^$$' .

# Closed-loop serving load test: p50/p99 latency, throughput, and the
# batch-size distribution per concurrency level; rewrites
# BENCH_serve.json and fails if throughput fell past the recorded
# baseline margin.
bench_serve:
	go test -bench BenchmarkServe -benchtime 1x -run '^$$' .
