package repro

import (
	"fmt"
	"testing"

	"repro/internal/bgq"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
	"repro/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// flips one modeled or algorithmic lever and reports its effect.

// BenchmarkAblationHWCollectives asks the §VII what-if: how much slower
// would the training run be if BG/Q used software-tree collectives over
// its links instead of the hardware torus collectives (i.e. behaved like
// a commodity cluster network at BG/Q link speed)?
func BenchmarkAblationHWCollectives(b *testing.B) {
	counts := workload.Preset50h(false)
	cfg := bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}
	for _, hw := range []bool{true, false} {
		name := "hardware"
		if !hw {
			name = "software-tree"
		}
		b.Run(name, func(b *testing.B) {
			m := bgq.BlueGeneQ()
			if !hw {
				m.HWCollectives = false
				m.CollectiveBW = m.LinkBandwidth
				m.EthContention = 1.5
			}
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := workload.Simulate(m, cfg, counts, nil)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSec
			}
			b.ReportMetric(total, "model_s")
		})
	}
}

// BenchmarkAblationOSNoise quantifies the §VIII noise-free-kernel claim:
// the same machine with Linux-like OS jitter on the compute cores.
func BenchmarkAblationOSNoise(b *testing.B) {
	counts := workload.Preset50h(false)
	cfg := bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}
	for _, noise := range []float64{0, 0.03, 0.08} {
		b.Run(fmt.Sprintf("noise=%.0f%%", noise*100), func(b *testing.B) {
			m := bgq.BlueGeneQ()
			m.OSNoiseFrac = noise
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := workload.Simulate(m, cfg, counts, nil)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSec
			}
			b.ReportMetric(total, "model_s")
		})
	}
}

// BenchmarkAblationSmallBatchCores sweeps the small-minibatch core cap —
// the §V-A "handling small matrices" lever behind the Figure 1(a)
// configuration ordering.
func BenchmarkAblationSmallBatchCores(b *testing.B) {
	counts := workload.Preset50h(false)
	cfg := bgq.Config{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64}
	for _, cores := range []float64{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("cores=%g", cores), func(b *testing.B) {
			m := bgq.BlueGeneQ()
			m.SmallBatchCores = cores
			var total float64
			for i := 0; i < b.N; i++ {
				r, err := workload.Simulate(m, cfg, counts, nil)
				if err != nil {
					b.Fatal(err)
				}
				total = r.TotalSec
			}
			b.ReportMetric(total, "model_s")
		})
	}
}

// BenchmarkAblationPreconditioner runs the real trainer with and without
// the Martens diagonal preconditioner (the paper's deferred extension)
// and reports total CG iterations and final loss.
func BenchmarkAblationPreconditioner(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 5, NumUtterances: 60, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(6)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1,
		Seed:           3,
	}
	for _, prec := range []bool{false, true} {
		name := "plain"
		if prec {
			name = "preconditioned"
		}
		b.Run(name, func(b *testing.B) {
			var cg int
			var loss float64
			for i := 0; i < b.N; i++ {
				cfg := hf.Config{
					MaxIterations:     4,
					UsePreconditioner: prec,
					CG:                hf.CGOpts{MaxIters: 40, StopTol: 1e-6, MinIters: 3},
				}
				_, res, err := core.TrainSerialHF(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cg = res.TotalCGIters
				loss = res.FinalLoss
			}
			b.ReportMetric(float64(cg), "cg_iters")
			b.ReportMetric(loss, "final_loss")
		})
	}
}

// BenchmarkAblationCurvatureSample sweeps the §IV curvature-sample
// fraction (the paper uses 1-3%) on the real trainer: smaller samples cut
// per-iteration cost but degrade the quadratic model.
func BenchmarkAblationCurvatureSample(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 6, NumUtterances: 80, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(6)
	for _, frac := range []float64{0.05, 0.25, 1.0} {
		b.Run(fmt.Sprintf("sample=%g", frac), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				prob := core.Problem{
					Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
					Train:          train,
					Heldout:        held,
					Criterion:      core.CrossEntropy,
					SampleFraction: frac,
					Seed:           3,
				}
				_, res, err := core.TrainSerialHF(prob, hf.Config{MaxIterations: 4})
				if err != nil {
					b.Fatal(err)
				}
				loss = res.FinalLoss
			}
			b.ReportMetric(loss, "final_loss")
		})
	}
}

// BenchmarkAblationPartitionerImbalance reports the §V-C imbalance metric
// of the real partitioners across worker counts.
func BenchmarkAblationPartitionerImbalance(b *testing.B) {
	lengths := corpus.GenerateLengths(corpus.Config{Seed: 9, NumUtterances: 20000})
	utts := corpus.UtterancesFromLengths(lengths)
	for _, workers := range []int{64, 1024} {
		for _, part := range []corpus.Partitioner{corpus.RoundRobin{}, corpus.SortedGreedy{}} {
			b.Run(fmt.Sprintf("%s/workers=%d", part.Name(), workers), func(b *testing.B) {
				var imb float64
				for i := 0; i < b.N; i++ {
					imb = corpus.MeasureBalance(part.Partition(utts, workers)).Imbalance
				}
				b.ReportMetric(imb, "imbalance")
			})
		}
	}
}
