package repro

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/loadgen"
)

// serveGateFactor is how far BenchmarkServe throughput may fall below
// the recorded BENCH_serve.json baseline before the gate fails. Serving
// throughput is wall-clock (scheduler, machine load), so the margin is
// generous; a structural regression — a lost batch coalesce, an
// allocation storm on the score path — costs integer multiples and
// still trips it.
const serveGateFactor = 4.0

// serveStat is one BENCH_serve.json record: the closed-loop latency and
// throughput curve plus the batch-size distribution behind it.
type serveStat struct {
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ReqPerSec     float64 `json:"req_per_sec"`
	P50Ns         int64   `json:"p50_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MeanNs        int64   `json:"mean_ns"`
	MeanBatchRows float64 `json:"mean_batch_rows"`
	MaxBatchRows  int64   `json:"max_batch_rows"`
	Batches       int64   `json:"batches"`
	Shed          int64   `json:"shed"`
}

// BenchmarkServe holds the serving runtime to its latency/throughput
// curve: closed-loop clients (each waits for its reply before issuing
// the next request, so offered load tracks capacity) against one
// in-process server per scenario, plus the same workload through the
// HTTP surface. Results are written to BENCH_serve.json and gated
// against the checked-in baseline.
func BenchmarkServe(b *testing.B) {
	const inDim, outDim = 40, 32
	net := nn.New(nn.NewTopology(inDim, 128, 64, outDim))
	net.InitGlorot(rand.New(rand.NewSource(17)))
	ck := &core.Checkpoint{
		Sizes:     net.Topo.Sizes,
		Params:    net.Params.Clone(),
		Criterion: core.CrossEntropy,
	}

	newServer := func(b *testing.B) (*serve.Server, *obs.Registry) {
		b.Helper()
		ob := &obs.Observer{Metrics: obs.NewRegistry()}
		srv, err := serve.New(ck,
			serve.WithMaxBatch(32),
			serve.WithBatchWindow(500*time.Microsecond),
			serve.WithQueueDepth(256),
			serve.WithWorkers(2),
			serve.WithObserver(ob))
		if err != nil {
			b.Fatal(err)
		}
		return srv, ob.Registry()
	}
	record := func(res loadgen.Result, reg *obs.Registry) serveStat {
		rows := reg.Histogram("serve.batch_rows")
		return serveStat{
			Requests:      res.Requests,
			Errors:        res.Errors,
			ReqPerSec:     res.Throughput,
			P50Ns:         res.P50.Nanoseconds(),
			P99Ns:         res.P99.Nanoseconds(),
			MeanNs:        res.Mean.Nanoseconds(),
			MeanBatchRows: rows.Mean(),
			MaxBatchRows:  rows.Max(),
			Batches:       reg.Counter("serve.batches").Value(),
			Shed:          reg.Counter("serve.shed").Value(),
		}
	}

	results := map[string]serveStat{}
	scenarios := []struct {
		name        string
		concurrency int
	}{
		{"closed_loop_c1", 1},
		{"closed_loop_c8", 8},
		{"closed_loop_c32", 32},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				srv, reg := newServer(b)
				res := loadgen.Run(loadgen.Config{
					Concurrency: sc.concurrency,
					Requests:    1500,
					InputDim:    inDim,
					OutputDim:   outDim,
					Seed:        9,
				}, srv.Score)
				if err := srv.Close(); err != nil {
					b.Fatal(err)
				}
				if res.Errors != 0 {
					b.Fatalf("%d closed-loop requests failed", res.Errors)
				}
				st := record(res, reg)
				results[sc.name] = st
				b.ReportMetric(st.ReqPerSec, "req/s")
				b.ReportMetric(float64(st.P99Ns)/1e3, "p99-µs")
				b.ReportMetric(st.MeanBatchRows, "rows/batch")
			}
		})
	}
	b.Run("http_c8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srv, reg := newServer(b)
			ts := httptest.NewServer(srv.Handler())
			res := loadgen.Run(loadgen.Config{
				Concurrency: 8,
				Requests:    600,
				InputDim:    inDim,
				OutputDim:   outDim,
				Seed:        9,
			}, loadgen.HTTPTarget(ts.Client(), ts.URL))
			ts.Close()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			if res.Errors != 0 {
				b.Fatalf("%d HTTP requests failed", res.Errors)
			}
			st := record(res, reg)
			results["http_c8"] = st
			b.ReportMetric(st.ReqPerSec, "req/s")
			b.ReportMetric(float64(st.P99Ns)/1e3, "p99-µs")
		}
	})

	if len(results) < len(scenarios)+1 {
		return // sub-benchmark filtered out; don't rewrite a partial baseline
	}
	baseline, haveBaseline := readServeBaseline()
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	if !haveBaseline {
		return
	}
	for name, got := range results {
		prev, ok := baseline[name]
		if !ok || prev.ReqPerSec <= 0 {
			continue // new case: its first run records the baseline
		}
		if floor := prev.ReqPerSec / serveGateFactor; got.ReqPerSec < floor {
			b.Errorf("%s: %.0f req/s fell past baseline %.0f / %.0f margin",
				name, got.ReqPerSec, prev.ReqPerSec, serveGateFactor)
		}
	}
}

// readServeBaseline loads the per-scenario results of the previous
// BenchmarkServe run, if any.
func readServeBaseline() (map[string]serveStat, bool) {
	data, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		return nil, false
	}
	var prev map[string]serveStat
	if json.Unmarshal(data, &prev) != nil {
		return nil, false
	}
	return prev, true
}
