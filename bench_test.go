package repro

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bgq"
	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// This file holds one benchmark per table and figure of the paper's
// evaluation section. Simulated experiments report the modeled execution
// time of the paper-scale run as the "model_s" metric (the quantity the
// paper plots); the real-trainer benchmarks measure actual wall time.
//
// Regenerate everything at once with:
//
//	go test -bench . -benchtime 1x
//
// or via cmd/experiments for the full text report.

func simulateOrFatal(b *testing.B, m bgq.MachineSpec, cfg bgq.Config, counts workload.AlgoCounts, shards []int64) *workload.RunResult {
	b.Helper()
	r, err := workload.Simulate(m, cfg, counts, shards)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig1aConfigSweep50h regenerates Figure 1(a): execution time of
// the 50-hour cross-entropy training across MPI/OpenMP configurations on
// one rack of Blue Gene/Q.
func BenchmarkFig1aConfigSweep50h(b *testing.B) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset50h(false)
	for _, cfg := range []bgq.Config{
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 16},
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 32},
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64},
		{Ranks: 2048, RanksPerNode: 2, ThreadsPerRank: 32},
		{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16},
	} {
		b.Run(cfg.Label(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = simulateOrFatal(b, m, cfg, counts, nil).TotalSec
			}
			b.ReportMetric(total, "model_s")
			b.ReportMetric(total/3600, "model_h")
		})
	}
}

// BenchmarkFig1bConfigSweep400h regenerates Figure 1(b): the 400-hour
// sweep including the two-rack 8192-4-16 configuration (the paper's ≈22%
// additional speedup and ≈6.3 h total).
func BenchmarkFig1bConfigSweep400h(b *testing.B) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset400h(false)
	for _, cfg := range []bgq.Config{
		{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64},
		{Ranks: 2048, RanksPerNode: 2, ThreadsPerRank: 32},
		{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16},
		{Ranks: 8192, RanksPerNode: 4, ThreadsPerRank: 16},
	} {
		b.Run(cfg.Label(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = simulateOrFatal(b, m, cfg, counts, nil).TotalSec
			}
			b.ReportMetric(total, "model_s")
			b.ReportMetric(total/3600, "model_h")
		})
	}
}

// cycleBenchConfigs are the three configurations of Figures 2-5.
var cycleBenchConfigs = []bgq.Config{
	{Ranks: 1024, RanksPerNode: 1, ThreadsPerRank: 64},
	{Ranks: 2048, RanksPerNode: 2, ThreadsPerRank: 32},
	{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16},
}

// BenchmarkFig2MasterCycles regenerates Figure 2: the master's
// per-function cycle breakdown (committed / AXU-FXU stalls / IU-empty),
// reported here as total Gcycles per function plus the committed share.
func BenchmarkFig2MasterCycles(b *testing.B) {
	benchCycles(b, true)
}

// BenchmarkFig3WorkerCycles regenerates Figure 3: the mean worker's
// per-function cycle breakdown.
func BenchmarkFig3WorkerCycles(b *testing.B) {
	benchCycles(b, false)
}

func benchCycles(b *testing.B, master bool) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset50h(false)
	for _, cfg := range cycleBenchConfigs {
		b.Run(cfg.Label(), func(b *testing.B) {
			var rep workload.RankReport
			for i := 0; i < b.N; i++ {
				r := simulateOrFatal(b, m, cfg, counts, nil)
				if master {
					rep = r.Master
				} else {
					rep = r.WorkerMean
				}
			}
			for name, ph := range rep {
				if ph.Cycles.Total() == 0 {
					continue
				}
				b.ReportMetric(ph.Cycles.Total()/1e9, name+"_Gcyc")
			}
		})
	}
}

// BenchmarkFig4MasterMPI regenerates Figure 4: the master's MPI time per
// function, split into collective and point-to-point seconds.
func BenchmarkFig4MasterMPI(b *testing.B) {
	benchMPI(b, true)
}

// BenchmarkFig5WorkerMPI regenerates Figure 5: the mean worker's MPI time
// per function.
func BenchmarkFig5WorkerMPI(b *testing.B) {
	benchMPI(b, false)
}

func benchMPI(b *testing.B, master bool) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset50h(false)
	for _, cfg := range cycleBenchConfigs {
		b.Run(cfg.Label(), func(b *testing.B) {
			var rep workload.RankReport
			for i := 0; i < b.N; i++ {
				r := simulateOrFatal(b, m, cfg, counts, nil)
				if master {
					rep = r.Master
				} else {
					rep = r.WorkerMean
				}
			}
			for name, ph := range rep {
				if ph.CollSec > 0 {
					b.ReportMetric(ph.CollSec, name+"_coll_s")
				}
				if ph.P2PSec > 0 {
					b.ReportMetric(ph.P2PSec, name+"_p2p_s")
				}
			}
		})
	}
}

// BenchmarkTable1ScalingUp regenerates Table I: Intel-Xeon-96 vs
// BG/Q-4096 training time for both criteria, with the raw and the
// frequency-adjusted speedups the paper reports.
func BenchmarkTable1ScalingUp(b *testing.B) {
	bg := bgq.BlueGeneQ()
	intel := bgq.IntelXeonCluster()
	intelCfg := bgq.Config{Ranks: 96, RanksPerNode: 2, ThreadsPerRank: 8}
	bgCfg := bgq.Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}
	for _, spec := range []struct {
		name string
		seq  bool
	}{{"CrossEntropy", false}, {"Sequence", true}} {
		b.Run(spec.name, func(b *testing.B) {
			counts := workload.Preset50h(spec.seq)
			var speedup, intelH, bgH float64
			for i := 0; i < b.N; i++ {
				ri := simulateOrFatal(b, intel, intelCfg, counts, nil)
				rb := simulateOrFatal(b, bg, bgCfg, counts, nil)
				intelH = ri.TotalSec / 3600
				bgH = rb.TotalSec / 3600
				speedup = ri.TotalSec / rb.TotalSec
			}
			b.ReportMetric(intelH, "intel_h")
			b.ReportMetric(bgH, "bgq_h")
			b.ReportMetric(speedup, "speedup_x")
			b.ReportMetric(speedup*2.9/1.6, "freq_adj_x")
		})
	}
}

// BenchmarkScalingLinearity regenerates the §I/§VIII scaling claim: the
// speedup curve over MPI rank counts, near-linear at first and sub-linear
// past 4096 ranks.
func BenchmarkScalingLinearity(b *testing.B) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset50h(false)
	base := simulateOrFatal(b, m, bgq.Config{Ranks: 64, RanksPerNode: 4, ThreadsPerRank: 16}, counts, nil).TotalSec
	for _, ranks := range []int{64, 256, 1024, 4096, 8192} {
		cfg := bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = simulateOrFatal(b, m, cfg, counts, nil).TotalSec
			}
			sp := base / total
			b.ReportMetric(total, "model_s")
			b.ReportMetric(sp, "speedup_x")
			b.ReportMetric(sp/(float64(ranks)/64), "parallel_eff")
		})
	}
}

// BenchmarkLoadBalanceAblation regenerates the §V-C study: simulated run
// time under round-robin vs the paper's sorted-greedy partitioning, using
// the real partitioner code on a synthetic utterance-length distribution.
func BenchmarkLoadBalanceAblation(b *testing.B) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset50h(false)
	cfg := bgq.Config{Ranks: 1024, RanksPerNode: 4, ThreadsPerRank: 16}
	lengths := corpus.GenerateLengths(corpus.Config{Seed: 42, NumUtterances: 45000})
	for _, part := range []corpus.Partitioner{corpus.RoundRobin{}, corpus.SortedGreedy{}} {
		b.Run(part.Name(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				shards := workload.ShardsFromPartition(lengths, cfg.Ranks-1, part, counts.TrainFrames)
				total = simulateOrFatal(b, m, cfg, counts, shards).TotalSec
			}
			b.ReportMetric(total, "model_s")
		})
	}
}

// BenchmarkWeightSyncBcastVsP2P regenerates the §V-B comparison: the
// socket-era serial point-to-point weight push versus the MPI broadcast
// used after the rewrite.
func BenchmarkWeightSyncBcastVsP2P(b *testing.B) {
	m := bgq.BlueGeneQ()
	counts := workload.Preset50h(false)
	for _, ranks := range []int{256, 1024, 4096} {
		cfg := bgq.Config{Ranks: ranks, RanksPerNode: 4, ThreadsPerRank: 16}
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			var p2p, bcast float64
			for i := 0; i < b.N; i++ {
				shape, err := torusShapeFor(cfg)
				if err != nil {
					b.Fatal(err)
				}
				p2p = workload.WeightSyncP2PTime(m, cfg, counts.ParamBytes())
				bcast = m.BcastTime(counts.ParamBytes(), cfg, shape)
			}
			b.ReportMetric(p2p, "p2p_s")
			b.ReportMetric(bcast, "bcast_s")
			b.ReportMetric(p2p/bcast, "ratio_x")
		})
	}
}

// BenchmarkRealDistributedHF measures actual wall time of the real
// trainer over the in-process MPI fabric at increasing rank counts — the
// laptop-scale ground truth anchoring the simulator.
func BenchmarkRealDistributedHF(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 7, NumUtterances: 40, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(8)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1,
		Seed:           3,
	}
	cfg := hf.Config{MaxIterations: 3, CG: hf.CGOpts{MaxIters: 15, MinIters: 3}}
	for _, ranks := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			sess, err := core.NewSession(prob, core.WithRanks(ranks))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := sess.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures what the observability layer costs the
// real distributed trainer: identical 3-rank runs with instrumentation
// disabled (nil observer — hot paths pay only pointer checks), fully
// enabled (metrics registry + span tracer), and with the telemetry
// plane shipping spans and metric snapshots to the master at every
// iteration boundary. The comparison is written to BENCH_obs.json; if a
// previous BENCH_obs.json exists, the benchmark fails when telemetry
// shipping regresses past the recorded baseline by more than the
// obsOverheadMargin.
func BenchmarkObsOverhead(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 7, NumUtterances: 40, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(8)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1,
		Seed:           3,
	}
	cfg := hf.Config{MaxIterations: 3, CG: hf.CGOpts{MaxIters: 15, MinIters: 3}}
	// Each variant takes the minimum wall time over a few repetitions —
	// the noise-robust estimator for the short runs `-benchtime 1x`
	// produces — so the percentages below compare floors, not jitter.
	const reps = 3
	run := func(b *testing.B, ob *obs.Observer, opts ...core.Option) (best, total time.Duration) {
		sess, err := core.NewSession(prob, append([]core.Option{core.WithRanks(3), core.WithObserver(ob)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N*reps; i++ {
			start := time.Now()
			if _, err := sess.Run(cfg); err != nil {
				b.Fatal(err)
			}
			d := time.Since(start)
			total += d
			if best == 0 || d < best {
				best = d
			}
		}
		return best, total
	}
	var disabled, enabled, shipped time.Duration
	var spansPerRun int
	// telemetryPct is the shipping share measured on the master's
	// critical path: the summed telemetry.collect_ns histogram over the
	// variant's total wall time. Unlike the disabled-vs-enabled wall
	// comparison it does not difference two separate noisy runs, so it
	// is stable enough to gate on.
	var telemetryPct float64
	b.Run("disabled", func(b *testing.B) {
		disabled, _ = run(b, nil)
	})
	b.Run("enabled", func(b *testing.B) {
		ob := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer()}
		enabled, _ = run(b, ob)
		spansPerRun = len(ob.Trace.Events()) / (b.N * reps)
		b.ReportMetric(float64(spansPerRun), "spans/run")
	})
	b.Run("telemetry", func(b *testing.B) {
		ob := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), Events: obs.NewEventLog(0)}
		var total time.Duration
		shipped, total = run(b, ob, core.WithTelemetry(telemetry.Config{}))
		for _, h := range ob.Registry().Snapshot().Histograms {
			if h.Name == "telemetry.collect_ns" && total > 0 {
				telemetryPct = float64(h.Sum) / float64(total) * 100
			}
		}
		b.ReportMetric(telemetryPct, "telemetry_pct")
	})
	if disabled <= 0 || enabled <= 0 || shipped <= 0 {
		return
	}
	overheadPct := (float64(enabled)/float64(disabled) - 1) * 100
	b.ReportMetric(overheadPct, "overhead_pct")

	baseline, haveBaseline := readObsBaseline(b)
	out, err := json.MarshalIndent(map[string]any{
		"disabled_ns_per_run":  disabled.Nanoseconds(),
		"enabled_ns_per_run":   enabled.Nanoseconds(),
		"telemetry_ns_per_run": shipped.Nanoseconds(),
		"overhead_pct":         overheadPct,
		"telemetry_pct":        telemetryPct,
		"spans_per_run":        spansPerRun,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	if haveBaseline {
		if limit := baseline + obsOverheadMargin; telemetryPct > limit {
			b.Fatalf("telemetry shipping overhead %.1f%% regressed past baseline %.1f%% + %.0f-point margin",
				telemetryPct, baseline, obsOverheadMargin)
		}
	}
}

// obsOverheadMargin is how many percentage points the telemetry
// shipping share may drift above the recorded BENCH_obs.json baseline
// before BenchmarkObsOverhead fails. The share measures the summed
// collect time against total wall, so it is stable (~0.25% on the
// reference box); the margin absorbs VM jitter while keeping the gate
// under the 2% budget — it catches structural regressions like an
// accidental sync on the collective path.
const obsOverheadMargin float64 = 1.5

// readObsBaseline loads the telemetry overhead recorded by the previous
// BenchmarkObsOverhead run, if any.
func readObsBaseline(b *testing.B) (float64, bool) {
	b.Helper()
	data, err := os.ReadFile("BENCH_obs.json")
	if err != nil {
		return 0, false
	}
	var prev struct {
		TelemetryPct *float64 `json:"telemetry_pct"`
	}
	if json.Unmarshal(data, &prev) != nil || prev.TelemetryPct == nil {
		return 0, false
	}
	return *prev.TelemetryPct, true
}

// BenchmarkFaultEviction measures what surviving a worker death costs the
// elastic runtime: identical 4-rank runs with and without a kill injected
// at HF iteration 2, plus the rewind latency and heartbeat RTT telemetry
// of the faulted run. The comparison is written to BENCH_fault.json.
func BenchmarkFaultEviction(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 7, NumUtterances: 40, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(8)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1,
		Seed:           3,
	}
	cfg := hf.Config{MaxIterations: 4, CG: hf.CGOpts{MaxIters: 15, MinIters: 3}}
	sched, err := mpi.ParseFaultSchedule("kill:rank=2,epoch=2")
	if err != nil {
		b.Fatal(err)
	}
	pol := core.FaultPolicy{
		FaultConfig: mpi.FaultConfig{OpDeadline: 5 * time.Second},
		Backoff:     time.Millisecond,
		Inject:      sched,
	}

	run := func(b *testing.B, opts ...core.Option) (time.Duration, *core.MasterResult) {
		sess, err := core.NewSession(prob, append([]core.Option{core.WithRanks(4)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		var res *core.MasterResult
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if res, err = sess.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start) / time.Duration(b.N), res
	}

	var baseline, faulted time.Duration
	var faultRes *core.MasterResult
	ob := &obs.Observer{Metrics: obs.NewRegistry()}
	b.Run("baseline", func(b *testing.B) {
		baseline, _ = run(b)
	})
	b.Run("eviction", func(b *testing.B) {
		faulted, faultRes = run(b,
			core.WithObserver(ob),
			core.WithFaults(pol),
			core.WithCheckpoint(core.CheckpointPolicy{Every: 1}),
		)
	})
	if baseline <= 0 || faulted <= 0 || faultRes == nil || faultRes.Fault == nil {
		return
	}
	degradedPct := (float64(faulted)/float64(baseline) - 1) * 100
	b.ReportMetric(degradedPct, "degraded_pct")

	var rewindMeanNs, heartbeatP50Ns float64
	var reshardFrames int64
	if reg := ob.Registry(); reg != nil {
		snap := reg.Snapshot()
		for _, h := range snap.Histograms {
			switch h.Name {
			case "core.elastic.rewind_ns":
				rewindMeanNs = h.Mean
			case "core.elastic.heartbeat_rtt_ns":
				heartbeatP50Ns = float64(h.P50)
			}
		}
		for _, cnt := range snap.Counters {
			if cnt.Name == "core.elastic.reshard_frames" {
				reshardFrames = cnt.Value
			}
		}
	}
	out, err := json.MarshalIndent(map[string]any{
		"baseline_ns_per_run": baseline.Nanoseconds(),
		"faulted_ns_per_run":  faulted.Nanoseconds(),
		"degraded_pct":        degradedPct,
		"evictions":           len(faultRes.Fault.Evictions),
		"final_workers":       faultRes.Fault.FinalWorkers,
		"rewind_mean_ns":      rewindMeanNs,
		"heartbeat_p50_ns":    heartbeatP50Ns,
		"reshard_frames":      reshardFrames,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fault.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRealSerialHFvsSGD measures the real serial trainers — the
// §II-A methods comparison at laptop scale.
func BenchmarkRealSerialHFvsSGD(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 8, NumUtterances: 40, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(8)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 0.5,
		Seed:           3,
	}
	b.Run("HF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.TrainSerialHF(prob, hf.Config{MaxIterations: 3, CG: hf.CGOpts{MaxIters: 15, MinIters: 3}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SGD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.TrainSGD(prob, core.SGDConfig{Epochs: 3, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRealTrainingMethods compares the real trainers of §II-A at
// laptop scale on identical data: serial HF, serial minibatch SGD, and
// asynchronous parameter-server SGD — wall time plus final held-out loss.
func BenchmarkRealTrainingMethods(b *testing.B) {
	c := corpus.Generate(corpus.Config{
		Seed: 12, NumUtterances: 60, MeanSeconds: 0.3, FeatDim: 10, Context: 1, NumStates: 6,
	})
	train, held := c.Split(6)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 0.5,
		Seed:           3,
	}
	b.Run("HF-serial", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			_, res, err := core.TrainSerialHF(prob, hf.Config{MaxIterations: 4})
			if err != nil {
				b.Fatal(err)
			}
			loss = res.FinalLoss
		}
		b.ReportMetric(loss, "final_loss")
	})
	b.Run("SGD-serial", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			_, res, err := core.TrainSGD(prob, core.SGDConfig{Epochs: 4, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			loss = res.FinalLoss
		}
		b.ReportMetric(loss, "final_loss")
	})
	b.Run("SGD-async-4ranks", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			res, err := core.TrainAsyncSGD(prob, core.AsyncSGDConfig{Epochs: 4, Seed: 1}, 4, nil)
			if err != nil {
				b.Fatal(err)
			}
			loss = res.HeldOutLoss
		}
		b.ReportMetric(loss, "final_loss")
	})
}

// allocGateMargin is how many extra allocations per op any
// BenchmarkAllocGate case may show over its recorded BENCH_alloc.json
// baseline before the gate fails. The measured counts are exactly
// deterministic (fixed shapes, single-threaded kernels, seeded inputs),
// so the margin only absorbs Go-release drift in library internals; a
// structural regression — boxing per CG step, a per-panel buffer in the
// packed GEMM — adds allocations proportional to the iteration count and
// blows past it immediately.
const allocGateMargin float64 = 4

// BenchmarkAllocGate pins the steady-state allocation behavior of the
// numeric hot paths as allocs/op and bytes/op: the packed GEMM under the
// paper's three DNN shape classes (square, minibatch×layer, small-K
// output layer) and a full CG inner solve. Counts are written to
// BENCH_alloc.json and gated against the previous run. The GEMM cases
// run the single-threaded Blocked kernel so the counts are
// machine-independent (the Parallel driver sizes its worker pool from
// GOMAXPROCS); per-call allocations there are the blocking driver's
// packing buffers, which is why the count must not scale with shape.
// The per-step zero-allocation property of the CG kernel itself is
// pinned separately by the white-box TestZeroAlloc tests in
// internal/blas and internal/hf.
func BenchmarkAllocGate(b *testing.B) {
	gemmCase := func(m, n, k int) func() {
		rng := rand.New(rand.NewSource(1))
		a := tensor.RandMatrix(rng, m, k, 1)
		bb := tensor.RandMatrix(rng, k, n, 1)
		c := tensor.NewMatrix(m, n)
		return func() {
			blas.GemmWith(blas.Config{Impl: blas.Blocked, Threads: 1}, blas.NoTrans, blas.NoTrans, 1, a, bb, 0, c)
		}
	}
	cgCase := func(dim int) func() {
		g := make(tensor.Vector, dim)
		d0 := make(tensor.Vector, dim)
		for i := range g {
			g[i] = 1 + float32(i%5)
		}
		// A diagonal SPD operator with 17 distinct eigenvalues: CG needs a
		// deterministic handful of iterations, never breaks down.
		apply := func(v, out tensor.Vector) {
			for i := range v {
				out[i] += (1 + float32(i%17)) * v[i]
			}
		}
		return func() {
			hf.CGMinimize(apply, g, d0, hf.CGOpts{MaxIters: 20, MinIters: 3})
		}
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"gemm_square_256x256x256", gemmCase(256, 256, 256)},
		{"gemm_layer_512x1024x1024", gemmCase(512, 1024, 1024)},
		{"gemm_smallk_512x512x40", gemmCase(512, 512, 40)},
		{"cg_minimize_dim4096", cgCase(4096)},
	}

	type allocStat struct {
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
	}
	results := map[string]allocStat{}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			allocs, bytes := measureAllocs(3, tc.fn)
			results[tc.name] = allocStat{AllocsPerOp: allocs, BytesPerOp: bytes}
			b.ReportMetric(allocs, "allocs/op-measured")
			b.ReportMetric(bytes, "B/op-measured")
		})
	}
	if len(results) < len(cases) {
		return // sub-benchmark filtered out; don't rewrite a partial baseline
	}

	baseline, haveBaseline := readAllocBaseline(b)
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_alloc.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	if !haveBaseline {
		return
	}
	for name, got := range results {
		prev, ok := baseline[name]
		if !ok {
			continue // new case: its first run records the baseline
		}
		if limit := prev + allocGateMargin; got.AllocsPerOp > limit {
			b.Errorf("%s: %.0f allocs/op regressed past baseline %.0f + %.0f margin",
				name, got.AllocsPerOp, prev, allocGateMargin)
		}
	}
}

// measureAllocs reports the mean allocations and bytes allocated per call
// of fn — testing.AllocsPerRun extended with the TotalAlloc delta, since
// the gate wants bytes/op in the baseline file too.
func measureAllocs(runs int, fn func()) (allocsPerOp, bytesPerOp float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm up: one-time lazy initialization is not steady-state cost
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// readAllocBaseline loads the allocs/op recorded per case by the previous
// BenchmarkAllocGate run, if any.
func readAllocBaseline(b *testing.B) (map[string]float64, bool) {
	b.Helper()
	data, err := os.ReadFile("BENCH_alloc.json")
	if err != nil {
		return nil, false
	}
	var prev map[string]struct {
		AllocsPerOp *float64 `json:"allocs_per_op"`
	}
	if json.Unmarshal(data, &prev) != nil {
		return nil, false
	}
	base := map[string]float64{}
	for name, s := range prev {
		if s.AllocsPerOp != nil {
			base[name] = *s.AllocsPerOp
		}
	}
	return base, len(base) > 0
}
