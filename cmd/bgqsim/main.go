// Command bgqsim regenerates the paper's evaluation on the modeled Blue
// Gene/Q: Figure 1 configuration sweeps, Figure 2-5 cycle and MPI
// breakdowns, Table I, the rank-scaling study, and the §V-B/§V-C
// ablations.
//
// Usage:
//
//	bgqsim -fig 1a            # 50-hour configuration sweep
//	bgqsim -fig 1b            # 400-hour sweep incl. two racks
//	bgqsim -fig 2|3|4|5       # cycle/MPI breakdowns
//	bgqsim -table 1           # Table I
//	bgqsim -scaling           # rank scaling study
//	bgqsim -loadbalance       # §V-C partitioning ablation
//	bgqsim -weightsync        # §V-B p2p vs broadcast
//	bgqsim -all               # everything
//	bgqsim -sequence ...      # use the sequence criterion workload
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1a, 1b, 2, 3, 4, 5")
	table := flag.Int("table", 0, "table to regenerate: 1")
	scaling := flag.Bool("scaling", false, "run the rank-scaling study")
	loadbalance := flag.Bool("loadbalance", false, "run the load-balance ablation")
	weightsync := flag.Bool("weightsync", false, "run the weight-sync comparison")
	all := flag.Bool("all", false, "regenerate everything")
	sequence := flag.Bool("sequence", false, "use the sequence-training workload")
	flag.Parse()

	c50 := workload.Preset50h(*sequence)
	c400 := workload.Preset400h(*sequence)
	out := os.Stdout

	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "bgqsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		report.Separator(out)
	}

	any := false
	if *fig == "1a" || *all {
		any = true
		run("fig1a", func() error {
			return report.Fig1(out, c50, false, "Figure 1(a): execution time, 50-hour training data")
		})
	}
	if *fig == "1b" || *all {
		any = true
		run("fig1b", func() error {
			return report.Fig1(out, c400, true, "Figure 1(b): execution time, 400-hour training data")
		})
	}
	if *fig == "2" || *all {
		any = true
		run("fig2", func() error {
			return report.CycleBreakdown(out, c50, true, "Figure 2: master process cycle breakdown")
		})
	}
	if *fig == "3" || *all {
		any = true
		run("fig3", func() error {
			return report.CycleBreakdown(out, c50, false, "Figure 3: worker process cycle breakdown")
		})
	}
	if *fig == "4" || *all {
		any = true
		run("fig4", func() error {
			return report.MPIBreakdown(out, c50, true, "Figure 4: master MPI communication time")
		})
	}
	if *fig == "5" || *all {
		any = true
		run("fig5", func() error {
			return report.MPIBreakdown(out, c50, false, "Figure 5: worker MPI communication time")
		})
	}
	if *table == 1 || *all {
		any = true
		run("table1", func() error {
			rows, err := report.Table1()
			if err != nil {
				return err
			}
			report.WriteTable1(out, rows)
			return nil
		})
	}
	if *scaling || *all {
		any = true
		run("scaling", func() error { return report.Scaling(out, c50) })
	}
	if *loadbalance || *all {
		any = true
		run("loadbalance", func() error { return report.LoadBalance(out, c50) })
	}
	if *weightsync || *all {
		any = true
		run("weightsync", func() error { return report.WeightSync(out, c50) })
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
