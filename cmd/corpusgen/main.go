// Command corpusgen generates a synthetic speech corpus and reports its
// statistics and the worker load balance achieved by each partitioning
// strategy (§V-C) — the tool for inspecting the data substrate.
//
// Usage:
//
//	corpusgen -utterances 5000 -workers 64
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/corpus"
)

func main() {
	utterances := flag.Int("utterances", 2000, "number of utterances")
	workers := flag.Int("workers", 32, "workers to partition across")
	seed := flag.Int64("seed", 1, "random seed")
	mean := flag.Float64("mean", 4.0, "mean utterance seconds")
	lengthsOnly := flag.Bool("lengths-only", false, "sample lengths only (no features; fast at scale)")
	flag.Parse()

	cfg := corpus.Config{Seed: *seed, NumUtterances: *utterances, MeanSeconds: *mean}

	var utts []*corpus.Utterance
	if *lengthsOnly {
		utts = corpus.UtterancesFromLengths(corpus.GenerateLengths(cfg))
	} else {
		c := corpus.Generate(cfg)
		utts = c.Utts
		fmt.Printf("corpus: %d utterances, %d states, feat dim %d, input dim %d\n",
			len(c.Utts), c.NumStates, c.FeatDim, c.InputDim())
	}

	lengths := make([]int, len(utts))
	total := 0
	for i, u := range utts {
		lengths[i] = u.NumFrames()
		total += u.NumFrames()
	}
	sort.Ints(lengths)
	pct := func(p float64) int { return lengths[int(p*float64(len(lengths)-1))] }
	fmt.Printf("frames: total %d (≈%.1f h at 100 frames/s)\n", total, float64(total)/100/3600)
	fmt.Printf("utterance length (frames): min %d  p50 %d  p90 %d  p99 %d  max %d\n",
		lengths[0], pct(0.5), pct(0.9), pct(0.99), lengths[len(lengths)-1])

	fmt.Printf("\nload balance across %d workers:\n", *workers)
	fmt.Printf("%-14s %10s %10s %10s %11s\n", "partitioner", "min", "mean", "max", "imbalance")
	for _, part := range []corpus.Partitioner{corpus.RoundRobin{}, corpus.SortedGreedy{}} {
		b := corpus.MeasureBalance(part.Partition(utts, *workers))
		fmt.Printf("%-14s %10d %10.0f %10d %11.4f\n", part.Name(), b.MinFrames, b.MeanFrames, b.MaxFrames, b.Imbalance)
	}
}
