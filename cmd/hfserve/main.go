// Command hfserve serves a trained checkpoint over HTTP: it loads the
// model hftrain -save wrote, reconstructs the network, and scores
// feature vectors behind internal/serve's request-coalescing
// micro-batcher with admission control.
//
// Usage:
//
//	hftrain -mode serial -iters 10 -save model.ckpt
//	hfserve -load model.ckpt -addr :8080
//	curl -d '{"instances":[[0.1, ...]]}' localhost:8080/score
//
// Endpoints: POST /score (429 when the admission queue sheds, 503 while
// draining), GET /healthz. -mon serves the telemetry plane's monitoring
// endpoint (Prometheus /metrics with the serve.* instruments, plus
// /debug/pprof/) on a second address. SIGINT/SIGTERM triggers a
// graceful drain: admission stops, in-flight requests complete, then
// the process exits.
//
// -replicas N shards scoring over N ranks of an in-process fabric
// (-transport inproc or tcp): rank 0 runs the front end and fans
// batches out to N-1 replica ranks on the reserved serve tags — the
// single-binary analogue of a replicated deployment, mirroring how
// hftrain -mode dist spawns its training ranks.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	"repro/internal/serve"
)

func main() {
	load := flag.String("load", "", "model checkpoint to serve (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address for the scoring API")
	batchWindow := flag.Duration("batch-window", serve.DefaultBatchWindow, "micro-batching latency budget (flush deadline)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "batch-full flush threshold")
	queueDepth := flag.Int("queue-depth", serve.DefaultQueueDepth, "admission queue bound (full queue sheds with 429)")
	workers := flag.Int("workers", serve.DefaultWorkers, "scoring workers (ignored with -replicas)")
	maxWait := flag.Duration("max-wait", 0, "load-aware shedding: reject when the estimated wait exceeds this (0 disables)")
	softmax := flag.Bool("softmax", false, "return softmax probabilities instead of raw logits")
	replicas := flag.Int("replicas", 0, "shard scoring over this many fabric ranks (1 front end + N-1 replicas; 0 = in-process workers)")
	transport := flag.String("transport", "inproc", "replica fabric: inproc or tcp (localhost)")
	mon := flag.String("mon", "", "serve the monitoring endpoint (/metrics, /debug/pprof/) on this address")
	drainTimeout := flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful-drain bound on shutdown")
	flag.Parse()

	if *load == "" {
		log.Fatal("hfserve: -load is required (train one with: hftrain -mode serial -save model.ckpt)")
	}
	ck, err := core.LoadCheckpoint(*load)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: topology %v, trained %d iterations, held-out loss %.4f",
		*load, ck.Sizes, ck.Iteration, ck.HeldOutLoss)

	ob := &obs.Observer{Metrics: obs.NewRegistry()}
	opts := []serve.Option{
		serve.WithBatchWindow(*batchWindow),
		serve.WithMaxBatch(*maxBatch),
		serve.WithQueueDepth(*queueDepth),
		serve.WithMaxWait(*maxWait),
		serve.WithDrainTimeout(*drainTimeout),
		serve.WithObserver(ob),
	}
	if *softmax {
		opts = append(opts, serve.WithSoftmax())
	}

	var srv *serve.Server
	if *replicas > 0 {
		srv, err = spawnReplicated(ck, *replicas, *transport, opts)
	} else {
		srv, err = serve.New(ck, append(opts, serve.WithWorkers(*workers))...)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *mon != "" {
		plane := telemetry.NewPlane(telemetry.Config{}, time.Now())
		plane.Merger().BindLocal(0, ob.Registry())
		monSrv, err := telemetry.NewServer(*mon, plane)
		if err != nil {
			log.Fatal(err)
		}
		defer monSrv.Close()
		log.Printf("monitoring endpoint on http://%s (/metrics /debug/pprof/)", monSrv.Addr())
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	httpDone := make(chan struct{})
	go func() {
		defer close(httpDone)
		log.Printf("scoring API on http://%s (POST /score, GET /healthz)", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("%s: draining (in-flight requests complete; new requests get 503)", s)
	// Drain the batcher first so handlers still running return promptly,
	// then let the HTTP server finish writing their responses.
	if err := srv.Close(); err != nil {
		log.Print(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Print(err)
	}
	<-httpDone
	log.Print("drained; bye")
}

// spawnReplicated builds an n-rank fabric in this process, starts
// ServeReplica loops on ranks 1..n-1, and returns the rank-0 front end.
// The replica goroutines exit when the front end's Close sends the stop
// opcode to each rank.
func spawnReplicated(ck *core.Checkpoint, n int, transport string, opts []serve.Option) (*serve.Server, error) {
	if n < 2 {
		return nil, errors.New("hfserve: -replicas needs ≥ 2 ranks (1 front end + ≥1 replica)")
	}
	transports := make([]mpi.Transport, n)
	switch transport {
	case "inproc":
		fabric := mpi.NewInprocFabric(n)
		for i := range transports {
			transports[i] = fabric.Transport(i)
		}
	case "tcp":
		ts, err := mpi.ConnectTCPLocal(n)
		if err != nil {
			return nil, err
		}
		copy(transports, ts)
	default:
		return nil, errors.New("hfserve: unknown -transport " + transport + " (want inproc, tcp)")
	}
	// Full slice expression: each append below copies instead of
	// scribbling over a shared backing array across ranks.
	opts = opts[:len(opts):len(opts)]
	for i := 1; i < n; i++ {
		// Replicas get the same options as the front end so their batch
		// buffers match its -max-batch; the queue/worker options are
		// inert on replica ranks.
		rep, err := serve.New(ck, append(opts, serve.WithReplicas(mpi.NewComm(transports[i])))...)
		if err != nil {
			return nil, err
		}
		go func(rank int, rep *serve.Server) {
			if err := rep.ServeReplica(); err != nil {
				log.Printf("replica rank %d: %v", rank, err)
			}
		}(i, rep)
	}
	log.Printf("replica group up: %d ranks over %s, front end fanning to %d replicas", n, transport, n-1)
	return serve.New(ck, append(opts, serve.WithReplicas(mpi.NewComm(transports[0])))...)
}
