// Command hftrain trains a DNN acoustic model on a synthetic speech
// corpus with the library's optimizers: serial Hessian-free, distributed
// Hessian-free (in-process master/worker MPI), or the SGD baseline.
//
// Usage:
//
//	hftrain -mode serial   -criterion ce  -utterances 200 -iters 10
//	hftrain -mode dist     -ranks 5       -criterion sequence
//	hftrain -mode dist     -ranks 5       -fault-inject "kill:rank=2,epoch=3"
//	hftrain -mode sgd      -epochs 5
//	hftrain -trace trace.json -metrics iters.jsonl
//
// -trace writes a Chrome trace-event JSON file of the run's per-rank
// phase spans (open in chrome://tracing or ui.perfetto.dev); -metrics
// appends one JSON line per HF iteration; -commcheck verifies cross-rank
// collective-protocol conformance in dist mode, failing fast with both
// call sites on divergence instead of deadlocking or corrupting state.
//
// In dist mode, -trace/-http/-flight enable the distributed telemetry
// plane: every rank ships its spans and metrics to the master at
// iteration boundaries, a clock-offset handshake puts them on a common
// timebase, and the merged trace carries one process track per rank.
// -http serves /metrics (Prometheus), /trace (merged trace download),
// /healthz (worker liveness; 503 when degraded), /flight (post-mortem
// bundle) and /debug/pprof/ while training runs; -flight writes the
// fault flight recorder's bundle as JSON after a faulted run.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	"repro/internal/report"
)

func main() {
	mode := flag.String("mode", "dist", "training mode: serial, dist, sgd, async")
	criterion := flag.String("criterion", "ce", "training criterion: ce, sequence")
	utterances := flag.Int("utterances", 120, "number of synthetic utterances")
	states := flag.Int("states", 8, "number of HMM states (output classes)")
	hidden := flag.Int("hidden", 32, "hidden layer width")
	layers := flag.Int("layers", 2, "number of hidden layers")
	iters := flag.Int("iters", 8, "HF iterations")
	epochs := flag.Int("epochs", 5, "SGD epochs")
	ranks := flag.Int("ranks", 4, "MPI ranks for dist mode (1 master + N-1 workers)")
	transport := flag.String("transport", "inproc", "dist-mode fabric: inproc or tcp (localhost)")
	sample := flag.Float64("sample", 0.03, "curvature sample fraction")
	seed := flag.Int64("seed", 1, "random seed")
	precond := flag.Bool("precond", false, "use the Martens diagonal CG preconditioner")
	save := flag.String("save", "", "write the trained model checkpoint to this path")
	load := flag.String("load", "", "resume from a model checkpoint")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of per-rank phase spans to this path")
	metricsOut := flag.String("metrics", "", "write per-HF-iteration telemetry as JSONL to this path")
	commcheck := flag.Bool("commcheck", false, "dist mode: verify cross-rank collective-protocol conformance on every collective (fails fast on divergence)")
	commcheckDeadline := flag.Duration("commcheck-deadline", 0, "with -commcheck: per-collective watchdog deadline (0 = default, negative disables)")
	faultInject := flag.String("fault-inject", "", "dist mode: fault schedule to inject, e.g. \"kill:rank=2,epoch=3; delay:rank=1,epoch=2,d=50ms\" (enables the elastic fault-tolerant runtime)")
	maxEvictions := flag.Int("max-evictions", 0, "dist mode: worker evictions tolerated before surrendering (enables the elastic runtime; 0 = library default of 2 when elastic, negative = none)")
	httpAddr := flag.String("http", "", "dist mode: serve the live monitoring endpoint on this address (e.g. :9090): /metrics, /trace, /healthz, /flight, /debug/pprof/")
	flightOut := flag.String("flight", "", "dist mode: write the fault flight recorder's post-mortem bundle as JSON to this path after a faulted run")
	shuffle := flag.Bool("shuffle", false, "shuffle utterances (seeded) before the train/held-out split")
	replayVerify := flag.Bool("replay-verify", false, "run the training twice per fabric in -transport (comma-separated) and fail unless the per-iteration hash streams are bit-identical")
	replayJSON := flag.String("replay-json", "", "with -replay-verify: write the replay reports and gate wall time as JSON to this path")
	flag.Parse()

	var ob *obs.Observer
	if *traceOut != "" || *metricsOut != "" || *httpAddr != "" || *flightOut != "" {
		ob = &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), Events: obs.NewEventLog(0)}
	}
	// Open output files up front so a bad path fails before training.
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
	}

	crit := core.CrossEntropy
	if strings.HasPrefix(*criterion, "seq") {
		crit = core.Sequence
	}

	log.Printf("generating corpus: %d utterances, %d states", *utterances, *states)
	c := corpus.Generate(corpus.Config{
		Seed:          *seed,
		NumUtterances: *utterances,
		MeanSeconds:   1.0,
		FeatDim:       20,
		Context:       2,
		NumStates:     *states,
	})
	if *shuffle {
		// Explicit seeded source: shard plans stay identical across runs
		// with the same -seed (the rngsource analyzer's contract).
		corpus.ShuffleUtterances(rand.New(rand.NewSource(*seed)), c.Utts)
	}
	train, held := c.Split(10)
	log.Printf("train: %d utterances / %d frames; held-out: %d utterances / %d frames",
		len(train.Utts), train.TotalFrames(), len(held.Utts), held.TotalFrames())

	sizes := []int{c.InputDim()}
	for l := 0; l < *layers; l++ {
		sizes = append(sizes, *hidden)
	}
	sizes = append(sizes, *states)
	prob := core.Problem{
		Topo:           nn.NewTopology(sizes...),
		Train:          train,
		Heldout:        held,
		Criterion:      crit,
		SampleFraction: *sample,
		Seed:           *seed,
	}
	hfCfg := hf.Config{
		MaxIterations:     *iters,
		UsePreconditioner: *precond,
		Log: func(s hf.IterStats) {
			log.Printf("iter %2d: loss=%.4f λ=%.3g ρ=%.2f cg=%d α=%.2f accepted=%v",
				s.Iter, s.Loss, s.Lambda, s.Rho, s.CGIters, s.Alpha, s.Accepted)
		},
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		hfCfg.Telemetry = core.TelemetryJSONL(f)
	}

	if *replayVerify {
		if err := runReplayGate(prob, hfCfg, *ranks, *transport, *replayJSON); err != nil {
			log.Fatal(err)
		}
		return
	}

	// In dist mode the telemetry plane owns the merged cross-rank trace;
	// the serial modes write the local tracer instead.
	var plane *telemetry.Plane

	switch *mode {
	case "serial":
		obj, err := core.NewSerialObjective(prob)
		if err != nil {
			log.Fatal(err)
		}
		if *load != "" {
			ck, err := core.LoadCheckpoint(*load)
			if err != nil {
				log.Fatal(err)
			}
			obj.SetParams(ck.Params)
			log.Printf("resumed from %s (iteration %d, held-out loss %.4f)", *load, ck.Iteration, ck.HeldOutLoss)
		}
		res := hf.Optimize(obj, hfCfg)
		fmt.Printf("serial HF (%s): final held-out loss %.4f, frame accuracy %.1f%%, %d CG iterations total\n",
			crit, res.FinalLoss, obj.HeldOutAccuracy()*100, res.TotalCGIters)
		if *save != "" {
			ck := &core.Checkpoint{
				Sizes:       prob.Topo.Sizes,
				Params:      obj.Params(),
				Criterion:   crit,
				Trans:       prob.Trans,
				Iteration:   len(res.Iters),
				HeldOutLoss: res.FinalLoss,
			}
			if err := core.SaveCheckpoint(*save, ck); err != nil {
				log.Fatal(err)
			}
			log.Printf("checkpoint written to %s", *save)
		}
	case "dist":
		fabric, err := core.ParseFabric(*transport)
		if err != nil {
			log.Fatal(err)
		}
		opts := []core.Option{
			core.WithRanks(*ranks),
			core.WithFabric(fabric),
			core.WithObserver(ob),
		}
		if *commcheck {
			opts = append(opts, core.WithCheck(mpi.CheckConfig{Deadline: *commcheckDeadline, Obs: ob}))
		}
		if *faultInject != "" || *maxEvictions != 0 {
			pol := core.FaultPolicy{MaxEvictions: *maxEvictions}
			if *faultInject != "" {
				sched, err := mpi.ParseFaultSchedule(*faultInject)
				if err != nil {
					log.Fatal(err)
				}
				pol.Inject = sched
			}
			opts = append(opts, core.WithFaults(pol))
			// Rewind checkpoints every iteration; mirror to -save if set.
			opts = append(opts, core.WithCheckpoint(core.CheckpointPolicy{Every: 1, Path: *save}))
		}
		if ob != nil {
			opts = append(opts, core.WithTelemetry(telemetry.Config{}))
		}
		sess, err := core.NewSession(prob, opts...)
		if err != nil {
			log.Fatal(err)
		}
		plane = sess.Telemetry()
		if *httpAddr != "" {
			srv, err := telemetry.NewServer(*httpAddr, plane)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			log.Printf("monitoring endpoint on http://%s (/metrics /trace /healthz /flight /debug/pprof/)", srv.Addr())
		}
		res, err := sess.Run(hfCfg)
		if err != nil {
			// A surrendered run still has a story to tell: the fault table
			// and the flight recorder's post-mortem bundle.
			var se *core.SurrenderError
			if errors.As(err, &se) {
				report.FaultTable(os.Stderr, se.Report)
			}
			writeFlight(*flightOut, plane)
			log.Fatal(err)
		}
		fmt.Printf("distributed HF (%s, %d ranks, %s): final held-out loss %.4f, frame accuracy %.1f%%\n",
			crit, *ranks, *transport, res.HF.FinalLoss, res.HeldOutAccuracy*100)
		if res.Fault != nil {
			report.FaultTable(os.Stdout, res.Fault)
		}
		if ob != nil {
			report.HFIterTable(os.Stdout, res.HF.Iters)
			report.MPITable(os.Stdout, res.MPIProfile)
			report.MetricsTable(os.Stdout, ob.Registry().Snapshot())
		}
		if plane != nil {
			report.TelemetryTable(os.Stdout, plane.Merger())
			writeFlight(*flightOut, plane)
		}
	case "async":
		res, err := core.TrainAsyncSGD(prob, core.AsyncSGDConfig{Epochs: *epochs, Seed: *seed}, *ranks, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("async SGD (%s, %d ranks): %d updates, held-out loss %.4f, frame accuracy %.1f%%\n",
			crit, *ranks, res.Updates, res.HeldOutLoss, res.HeldOutAccuracy*100)
	case "sgd":
		obj, res, err := core.TrainSGD(prob, core.SGDConfig{Epochs: *epochs, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range res.Epochs {
			log.Printf("epoch %d: train=%.4f held-out=%.4f lr=%.3g",
				e.Epoch, e.TrainLoss, e.HeldOutLoss, e.LearningRate)
		}
		fmt.Printf("SGD (%s): final held-out loss %.4f, frame accuracy %.1f%%\n",
			crit, res.FinalLoss, obj.HeldOutAccuracy()*100)
	default:
		log.Fatalf("unknown mode %q (want serial, dist, sgd, async)", *mode)
	}

	if traceFile != nil {
		// With a telemetry plane the merged cross-rank trace (common
		// timebase, one process track per rank) supersedes the local
		// tracer, which the master's shipper has already drained into it.
		var err error
		if plane != nil {
			err = plane.Merger().WriteChromeTrace(traceFile)
		} else {
			err = ob.Tracer().WriteChromeTrace(traceFile)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)", *traceOut)
	}
}

// writeFlight writes the flight recorder's latest post-mortem bundle as
// JSON to path; no-op when path is empty or no fault was captured.
func writeFlight(path string, plane *telemetry.Plane) {
	if path == "" {
		return
	}
	b := plane.Recorder().Last()
	if b == nil {
		log.Printf("no flight bundle captured (no fault); %s not written", path)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	if err := b.WriteJSON(f); err != nil {
		log.Print(err)
	}
	if err := f.Close(); err != nil {
		log.Print(err)
	}
	log.Printf("flight bundle written to %s", path)
}

// runReplayGate runs core.ReplayVerify on every fabric in the
// comma-separated transport list, prints each report, optionally writes
// the reports plus total gate wall time as JSON (the BENCH_determinism
// entry), and returns an error if any fabric diverged.
func runReplayGate(prob core.Problem, cfg hf.Config, ranks int, transports, jsonPath string) error {
	cfg.Log = nil // keep the doubled runs quiet; hashes are the output
	var reports []*core.ReplayReport
	divergent := false
	gateStart := time.Now()
	for _, fabric := range strings.Split(transports, ",") {
		fabric = strings.TrimSpace(fabric)
		if fabric == "" {
			continue
		}
		rep, err := core.ReplayVerify(prob, cfg, ranks, nil, fabric)
		if err != nil {
			return err
		}
		fmt.Println(rep)
		reports = append(reports, rep)
		divergent = divergent || rep.Divergent
	}
	gateWall := time.Since(gateStart)
	if len(reports) == 0 {
		return fmt.Errorf("no fabrics in -transport %q", transports)
	}
	if jsonPath != "" {
		out := struct {
			Bench      string               `json:"bench"`
			Reports    []*core.ReplayReport `json:"reports"`
			GateWallNs int64                `json:"gate_wall_ns"`
		}{Bench: "determinism_replay_gate", Reports: reports, GateWallNs: gateWall.Nanoseconds()}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("replay gate report written to %s", jsonPath)
	}
	if divergent {
		return fmt.Errorf("replay verification FAILED: hash streams diverged (see above)")
	}
	log.Printf("replay verification passed on %d fabric(s) in %v", len(reports), gateWall.Round(time.Millisecond))
	return nil
}
