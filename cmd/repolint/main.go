// Command repolint runs the repo-specific static-analysis suite of
// internal/lint over the module — unchecked MPI/IO errors, float
// equality, locks copied by value, allocations in //lint:hotpath
// kernels, unguarded obs.Observer field access, collective-protocol
// conformance (commcheck), the concurrency-lifecycle quartet
// (goroutineleak, lockacrossblock, deferinloop, tickerstop), and the
// point-to-point protocol family (opproto, sendrecvpair, plus the
// module-scoped tagspace map of the wire-tag plan) — plus the two
// compiler-truth gates: escape, which compiles hot-path packages with
// -gcflags=-m=2 and fails any //lint:hotpath function containing a
// compiler-reported heap escape, and bce, which compiles them with
// -gcflags=-d=ssa/check_bce and fails any hot function still carrying a
// bounds check.
//
// Usage:
//
//	repolint [-C dir] [-json|-sarif] [-v] [-only name,...]
//	repolint -list
//
// Without flags it lints the module containing the current directory and
// prints findings as file:line:col text. -json emits the stable
// machine-readable schema (version 2) consumed by tooling; -sarif emits
// SARIF 2.1.0 for code-scanning upload; -only restricts the run to the
// named analyzers (e.g. `-only commcheck`, the `make commcheck` target,
// or `-only escape,bce`, the `make alloccheck` gates); -list documents
// the analyzers; -v reports load warnings and per-analyzer timing to
// stderr. Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/escape"
)

// jsonReport is the stable -json output schema. Fields are append-only:
// tooling that snapshots this shape must keep decoding as analyzers are
// added, so the version only bumps on incompatible changes. Version 2
// added the top-level errors/warnings severity counts alongside the
// per-finding severity.
type jsonReport struct {
	Version  int            `json:"version"`
	Count    int            `json:"count"`
	Errors   int            `json:"errors"`
	Warnings int            `json:"warnings"`
	Findings []lint.Finding `json:"findings"`
}

// selection is the resolved -only set: per-package analyzers, module
// analyzers, and which compiler-truth gates to run.
type selection struct {
	analyzers []lint.Analyzer
	mods      []lint.ModuleAnalyzer
	runEscape bool
	runBCE    bool
}

func main() {
	dir := flag.String("C", ".", "lint the module containing this directory")
	asJSON := flag.Bool("json", false, "emit findings as JSON (stable schema)")
	asSARIF := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (code-scanning upload)")
	verbose := flag.Bool("v", false, "print load warnings and per-analyzer timing to stderr")
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all, including the escape and bce gates)")
	flag.Parse()

	if *list {
		writeList(os.Stdout)
		return
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(os.Stderr, "repolint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	sel, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}

	findings := []lint.Finding{}
	timings := map[string]time.Duration{}
	if len(sel.analyzers) > 0 || len(sel.mods) > 0 {
		res, err := lint.RunFull(root, sel.analyzers, sel.mods)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		findings = append(findings, res.Findings...)
		for name, d := range res.Timings {
			timings[name] = d
		}
		if *verbose {
			for _, w := range res.LoadWarnings {
				fmt.Fprintln(os.Stderr, "repolint: warning:", w)
			}
			fmt.Fprintf(os.Stderr, "repolint: analyzed %d packages\n", len(res.Packages))
		}
	}
	gates := []struct {
		run  bool
		name string
		fn   func(string) ([]lint.Finding, error)
	}{
		{sel.runEscape, escape.Name, escape.Analyze},
		{sel.runBCE, escape.BCEName, escape.AnalyzeBCE},
	}
	for _, g := range gates {
		if !g.run {
			continue
		}
		start := time.Now()
		gateFindings, err := g.fn(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
		timings[g.name] = time.Since(start)
		findings = append(findings, gateFindings...)
	}
	sortFindings(findings)
	if *verbose {
		printTimings(os.Stderr, timings)
	}

	switch {
	case *asJSON:
		if err := writeJSON(os.Stdout, buildReport(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	case *asSARIF:
		if err := writeSARIF(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s [%s]\n", f, f.Severity)
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", n)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// writeList renders the -list catalog: every analyzer name the -only
// flag accepts (per-package suite, module analyzers, compiler-truth
// gates) with its one-line doc. The snapshot test locks this output, so
// adding an analyzer deliberately updates the documented surface.
func writeList(w io.Writer) {
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "%-16s %s\n", a.Name(), a.Doc())
	}
	for _, a := range lint.ModuleAnalyzers() {
		fmt.Fprintf(w, "%-16s %s\n", a.Name(), a.Doc())
	}
	fmt.Fprintf(w, "%-16s %s\n", escape.Name, escape.Doc)
	fmt.Fprintf(w, "%-16s %s\n", escape.BCEName, escape.BCEDoc)
}

// selectAnalyzers resolves a -only list against the suite — per-package
// analyzers, module analyzers, and the "escape"/"bce" gates, which are
// not lint.Analyzers (they run the compiler) but share the name
// namespace — preserving the suite's stable order; an empty list
// selects everything including both gates.
func selectAnalyzers(only string) (selection, error) {
	all := lint.Analyzers()
	allMods := lint.ModuleAnalyzers()
	if only == "" {
		return selection{analyzers: all, mods: allMods, runEscape: true, runBCE: true}, nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	sel := selection{runEscape: want[escape.Name], runBCE: want[escape.BCEName]}
	delete(want, escape.Name)
	delete(want, escape.BCEName)
	for _, a := range all {
		if want[a.Name()] {
			sel.analyzers = append(sel.analyzers, a)
			delete(want, a.Name())
		}
	}
	for _, a := range allMods {
		if want[a.Name()] {
			sel.mods = append(sel.mods, a)
			delete(want, a.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return selection{}, fmt.Errorf("unknown analyzer(s) %s (see repolint -list)", strings.Join(unknown, ", "))
	}
	if len(sel.analyzers) == 0 && len(sel.mods) == 0 && !sel.runEscape && !sel.runBCE {
		return selection{}, fmt.Errorf("-only selected no analyzers")
	}
	return sel, nil
}

// sortFindings restores position order after merging the analyzer and
// escape-gate result sets.
func sortFindings(fs []lint.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// printTimings renders per-analyzer cumulative Run time, slowest first,
// to the -v stream (stderr, so -json stdout stays byte-stable).
func printTimings(w io.Writer, timings map[string]time.Duration) {
	names := make([]string, 0, len(timings))
	for n := range timings {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if timings[names[i]] != timings[names[j]] {
			return timings[names[i]] > timings[names[j]]
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		fmt.Fprintf(w, "repolint: timing %-16s %s\n", n, timings[n].Round(10*time.Microsecond))
	}
}

// buildReport wraps findings in the versioned -json schema. Findings is
// never null, so a clean run still renders `"findings": []` and piping
// through `jq '.findings[]'` works unconditionally.
func buildReport(findings []lint.Finding) jsonReport {
	if findings == nil {
		findings = []lint.Finding{}
	}
	r := jsonReport{Version: 2, Count: len(findings), Findings: findings}
	for _, f := range findings {
		switch f.Severity {
		case lint.SevError:
			r.Errors++
		case lint.SevWarn:
			r.Warnings++
		}
	}
	return r
}

// writeJSON renders the report with the fixed two-space indentation the
// snapshot test locks in.
func writeJSON(w io.Writer, report jsonReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
