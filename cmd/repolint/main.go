// Command repolint runs the repo-specific static-analysis suite of
// internal/lint over the module: unchecked MPI/IO errors, float equality,
// locks copied by value, allocations in //lint:hotpath kernels,
// unguarded obs.Observer field access, and collective-protocol
// conformance (commcheck).
//
// Usage:
//
//	repolint [-C dir] [-json] [-v] [-only name,...]
//	repolint -list
//
// Without flags it lints the module containing the current directory and
// prints findings as file:line:col text. -json emits the stable
// machine-readable schema (version 1) consumed by tooling; -only
// restricts the run to the named analyzers (e.g. `-only commcheck`, the
// `make commcheck` target); -list documents the analyzers. Exit status:
// 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// jsonReport is the stable -json output schema. Fields are append-only:
// tooling that snapshots this shape must keep decoding as analyzers are
// added, so the version only bumps on incompatible changes.
type jsonReport struct {
	Version  int            `json:"version"`
	Count    int            `json:"count"`
	Findings []lint.Finding `json:"findings"`
}

func main() {
	dir := flag.String("C", ".", "lint the module containing this directory")
	asJSON := flag.Bool("json", false, "emit findings as JSON (stable schema)")
	verbose := flag.Bool("v", false, "print load warnings and per-package progress to stderr")
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	res, err := lint.Run(root, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, w := range res.LoadWarnings {
			fmt.Fprintln(os.Stderr, "repolint: warning:", w)
		}
		fmt.Fprintf(os.Stderr, "repolint: analyzed %d packages\n", len(res.Packages))
	}

	if *asJSON {
		if err := writeJSON(os.Stdout, buildReport(res.Findings)); err != nil {
			fmt.Fprintln(os.Stderr, "repolint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Printf("%s [%s]\n", f, f.Severity)
		}
		if n := len(res.Findings); n > 0 {
			fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", n)
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves a -only list against the suite, preserving
// the suite's stable order; an empty list selects everything.
func selectAnalyzers(only string) ([]lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range strings.Split(only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var sel []lint.Analyzer
	for _, a := range all {
		if want[a.Name()] {
			sel = append(sel, a)
			delete(want, a.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		return nil, fmt.Errorf("unknown analyzer(s) %s (see repolint -list)", strings.Join(unknown, ", "))
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return sel, nil
}

// buildReport wraps findings in the versioned -json schema. Findings is
// never null, so a clean run still renders `"findings": []` and piping
// through `jq '.findings[]'` works unconditionally.
func buildReport(findings []lint.Finding) jsonReport {
	if findings == nil {
		findings = []lint.Finding{}
	}
	return jsonReport{Version: 1, Count: len(findings), Findings: findings}
}

// writeJSON renders the report with the fixed two-space indentation the
// snapshot test locks in.
func writeJSON(w io.Writer, report jsonReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
