package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden -json snapshot")

// TestJSONSchemaSnapshot locks the -json output schema (version 1). It
// lints the uncheckederr golden fixture and compares the rendered report
// byte-for-byte against testdata/report.golden.json, so any change to
// field names, ordering, indentation or position encoding shows up as a
// reviewable diff. Regenerate deliberately with `go test -update`.
func TestJSONSchemaSnapshot(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunDir(root, filepath.Join(root, "internal/lint/testdata/src/uncheckederr"), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, buildReport(res.Findings)); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from the golden snapshot (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSelectAnalyzers pins the -only flag: names resolve in suite
// order, unknown names fail, empty selects everything.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want full suite", len(all), err)
	}
	sel, err := selectAnalyzers("commcheck")
	if err != nil || len(sel) != 1 || sel[0].Name() != "commcheck" {
		t.Fatalf("selectAnalyzers(commcheck) = %v, err %v", sel, err)
	}
	sel, err = selectAnalyzers("obsnilguard, commcheck")
	if err != nil || len(sel) != 2 {
		t.Fatalf("selectAnalyzers(two) = %v, err %v", sel, err)
	}
	if _, err = selectAnalyzers("nosuchanalyzer"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	// The numcheck quartet resolves as a group — the `make numcheck`
	// invocation — and in suite order regardless of request order.
	sel, err = selectAnalyzers("divguard,maporderfloat,reduceorder,rngsource")
	if err != nil || len(sel) != 4 {
		t.Fatalf("selectAnalyzers(numcheck quartet) = %v, err %v", sel, err)
	}
	want := []string{"maporderfloat", "reduceorder", "rngsource", "divguard"}
	for i, a := range sel {
		if a.Name() != want[i] {
			t.Errorf("numcheck quartet[%d] = %s, want %s (suite order)", i, a.Name(), want[i])
		}
	}
}

// TestJSONCleanRun ensures a finding-free report renders findings as an
// empty array, never null, with version and count present.
func TestJSONCleanRun(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, buildReport(nil)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 1`, `"count": 0`, `"findings": []`} {
		if !strings.Contains(out, want) {
			t.Errorf("clean report missing %s:\n%s", want, out)
		}
	}
}
