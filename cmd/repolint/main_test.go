package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden -json snapshot")

// TestJSONSchemaSnapshot locks the -json output schema (version 2). It
// lints the uncheckederr golden fixture and compares the rendered report
// byte-for-byte against testdata/report.golden.json, so any change to
// field names, ordering, indentation or position encoding shows up as a
// reviewable diff. Regenerate deliberately with `go test -update`.
func TestJSONSchemaSnapshot(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunDir(root, filepath.Join(root, "internal/lint/testdata/src/uncheckederr"), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, buildReport(res.Findings)); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from the golden snapshot (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSelectAnalyzers pins the -only flag: names resolve in suite
// order, unknown names fail, empty selects everything plus the module
// analyzers and both compiler-truth gates.
func TestSelectAnalyzers(t *testing.T) {
	sel, err := selectAnalyzers("")
	if err != nil || len(sel.analyzers) != len(lint.Analyzers()) ||
		len(sel.mods) != len(lint.ModuleAnalyzers()) || !sel.runEscape || !sel.runBCE {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, %d module analyzers, escape %v, bce %v, err %v; want the full suite",
			len(sel.analyzers), len(sel.mods), sel.runEscape, sel.runBCE, err)
	}
	sel, err = selectAnalyzers("commcheck")
	if err != nil || len(sel.analyzers) != 1 || sel.analyzers[0].Name() != "commcheck" ||
		len(sel.mods) != 0 || sel.runEscape || sel.runBCE {
		t.Fatalf("selectAnalyzers(commcheck) = %+v, err %v", sel, err)
	}
	sel, err = selectAnalyzers("obsnilguard, commcheck")
	if err != nil || len(sel.analyzers) != 2 {
		t.Fatalf("selectAnalyzers(two) = %+v, err %v", sel, err)
	}
	if _, err = selectAnalyzers("nosuchanalyzer"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	// The numcheck quartet resolves as a group — the `make numcheck`
	// invocation — and in suite order regardless of request order.
	sel, err = selectAnalyzers("divguard,maporderfloat,reduceorder,rngsource")
	if err != nil || len(sel.analyzers) != 4 {
		t.Fatalf("selectAnalyzers(numcheck quartet) = %+v, err %v", sel, err)
	}
	want := []string{"maporderfloat", "reduceorder", "rngsource", "divguard"}
	for i, a := range sel.analyzers {
		if a.Name() != want[i] {
			t.Errorf("numcheck quartet[%d] = %s, want %s (suite order)", i, a.Name(), want[i])
		}
	}
	// The concurrency quartet is part of the suite.
	sel, err = selectAnalyzers("goroutineleak,lockacrossblock,deferinloop,tickerstop")
	if err != nil || len(sel.analyzers) != 4 {
		t.Fatalf("selectAnalyzers(concurrency quartet) = %+v, err %v", sel, err)
	}
	// The p2pcheck family resolves as a group — the `make p2pcheck`
	// invocation — with tagspace landing in the module-analyzer set.
	sel, err = selectAnalyzers("tagspace,opproto,sendrecvpair")
	if err != nil || len(sel.analyzers) != 2 || len(sel.mods) != 1 ||
		sel.mods[0].Name() != "tagspace" || sel.runEscape || sel.runBCE {
		t.Fatalf("selectAnalyzers(p2pcheck family) = %+v, err %v", sel, err)
	}
	// The compiler-truth gates resolve alone (the `make alloccheck`
	// invocation) and alongside analyzers.
	sel, err = selectAnalyzers("escape,bce")
	if err != nil || len(sel.analyzers) != 0 || len(sel.mods) != 0 || !sel.runEscape || !sel.runBCE {
		t.Fatalf("selectAnalyzers(escape,bce) = %+v, err %v", sel, err)
	}
	sel, err = selectAnalyzers("escape,hotpathalloc")
	if err != nil || len(sel.analyzers) != 1 || sel.analyzers[0].Name() != "hotpathalloc" || !sel.runEscape || sel.runBCE {
		t.Fatalf("selectAnalyzers(escape,hotpathalloc) = %+v, err %v", sel, err)
	}
	// shape is a module analyzer (the `make shapecheck` invocation).
	sel, err = selectAnalyzers("shape")
	if err != nil || len(sel.analyzers) != 0 || len(sel.mods) != 1 ||
		sel.mods[0].Name() != "shape" || sel.runEscape || sel.runBCE {
		t.Fatalf("selectAnalyzers(shape) = %+v, err %v", sel, err)
	}
}

// TestListSnapshot locks the -list catalog against a golden file: the
// full analyzer name set in suite order with one-line docs. Adding or
// renaming an analyzer must update testdata/list.golden (regenerate with
// `go test -update`) so the documented -only surface stays reviewed.
func TestListSnapshot(t *testing.T) {
	var buf bytes.Buffer
	writeList(&buf)

	golden := filepath.Join("testdata", "list.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-list output drifted from the golden snapshot (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSARIFSnapshot locks the -sarif output shape against a golden
// file, using the same uncheckederr fixture findings as the JSON
// snapshot so the two formats stay in lockstep. Regenerate deliberately
// with `go test -update`.
func TestSARIFSnapshot(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunDir(root, filepath.Join(root, "internal/lint/testdata/src/uncheckederr"), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, res.Findings); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden.sarif")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-sarif output drifted from the golden snapshot (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSARIFCleanRun ensures a finding-free SARIF log still carries the
// schema header, the full rule table, and an empty (never null) results
// array.
func TestSARIFCleanRun(t *testing.T) {
	log := buildSARIF(nil)
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log = %+v, want one 2.1.0 run", log)
	}
	run := log.Runs[0]
	if run.Results == nil || len(run.Results) != 0 {
		t.Errorf("clean run results = %#v, want empty non-nil", run.Results)
	}
	wantRules := len(lint.Analyzers()) + len(lint.ModuleAnalyzers()) + 2
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Errorf("rule table has %d entries, want %d (suite + tagspace + escape + bce)", len(run.Tool.Driver.Rules), wantRules)
	}
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"commcheck", "opproto", "sendrecvpair", "tagspace", "escape", "bce"} {
		if !ids[want] {
			t.Errorf("rule table missing %s", want)
		}
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("clean SARIF renders results as null:\n%s", buf.String())
	}
}

// TestSARIFLevelMapping pins the severity → SARIF level mapping.
func TestSARIFLevelMapping(t *testing.T) {
	if got := sarifLevel(lint.SevError); got != "error" {
		t.Errorf("sarifLevel(error) = %q", got)
	}
	if got := sarifLevel(lint.SevWarn); got != "warning" {
		t.Errorf("sarifLevel(warn) = %q", got)
	}
}

// TestJSONCleanRun ensures a finding-free report renders findings as an
// empty array, never null, with version, count and severity tallies
// present.
func TestJSONCleanRun(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, buildReport(nil)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 2`, `"count": 0`, `"errors": 0`, `"warnings": 0`, `"findings": []`} {
		if !strings.Contains(out, want) {
			t.Errorf("clean report missing %s:\n%s", want, out)
		}
	}
}

// TestReportSeverityTallies pins the v2 errors/warnings counts.
func TestReportSeverityTallies(t *testing.T) {
	r := buildReport([]lint.Finding{
		{Analyzer: "a", Severity: lint.SevError},
		{Analyzer: "b", Severity: lint.SevWarn},
		{Analyzer: "c", Severity: lint.SevError},
	})
	if r.Version != 2 || r.Count != 3 || r.Errors != 2 || r.Warnings != 1 {
		t.Fatalf("report = %+v, want version 2, count 3, errors 2, warnings 1", r)
	}
}

// TestPrintTimings pins the -v timing rendering: slowest analyzer
// first, stable tie-break by name.
func TestPrintTimings(t *testing.T) {
	var buf bytes.Buffer
	printTimings(&buf, map[string]time.Duration{
		"floateq":   2 * time.Millisecond,
		"commcheck": 30 * time.Millisecond,
		"escape":    2 * time.Millisecond,
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timing lines = %v", lines)
	}
	wantOrder := []string{"commcheck", "escape", "floateq"}
	for i, name := range wantOrder {
		if !strings.Contains(lines[i], name) {
			t.Errorf("timing line %d = %q, want analyzer %s", i, lines[i], name)
		}
	}
}
