package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden -json snapshot")

// TestJSONSchemaSnapshot locks the -json output schema (version 2). It
// lints the uncheckederr golden fixture and compares the rendered report
// byte-for-byte against testdata/report.golden.json, so any change to
// field names, ordering, indentation or position encoding shows up as a
// reviewable diff. Regenerate deliberately with `go test -update`.
func TestJSONSchemaSnapshot(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunDir(root, filepath.Join(root, "internal/lint/testdata/src/uncheckederr"), lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, buildReport(res.Findings)); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from the golden snapshot (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSelectAnalyzers pins the -only flag: names resolve in suite
// order, unknown names fail, empty selects everything plus the escape
// gate.
func TestSelectAnalyzers(t *testing.T) {
	all, esc, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers()) || !esc {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, escape %v, err %v; want full suite + escape", len(all), esc, err)
	}
	sel, esc, err := selectAnalyzers("commcheck")
	if err != nil || len(sel) != 1 || sel[0].Name() != "commcheck" || esc {
		t.Fatalf("selectAnalyzers(commcheck) = %v, escape %v, err %v", sel, esc, err)
	}
	sel, _, err = selectAnalyzers("obsnilguard, commcheck")
	if err != nil || len(sel) != 2 {
		t.Fatalf("selectAnalyzers(two) = %v, err %v", sel, err)
	}
	if _, _, err = selectAnalyzers("nosuchanalyzer"); err == nil {
		t.Fatal("unknown analyzer accepted")
	}
	// The numcheck quartet resolves as a group — the `make numcheck`
	// invocation — and in suite order regardless of request order.
	sel, _, err = selectAnalyzers("divguard,maporderfloat,reduceorder,rngsource")
	if err != nil || len(sel) != 4 {
		t.Fatalf("selectAnalyzers(numcheck quartet) = %v, err %v", sel, err)
	}
	want := []string{"maporderfloat", "reduceorder", "rngsource", "divguard"}
	for i, a := range sel {
		if a.Name() != want[i] {
			t.Errorf("numcheck quartet[%d] = %s, want %s (suite order)", i, a.Name(), want[i])
		}
	}
	// The concurrency quartet is part of the suite.
	sel, _, err = selectAnalyzers("goroutineleak,lockacrossblock,deferinloop,tickerstop")
	if err != nil || len(sel) != 4 {
		t.Fatalf("selectAnalyzers(concurrency quartet) = %v, err %v", sel, err)
	}
	// The escape gate resolves alone (the `make alloccheck` invocation)
	// and alongside analyzers.
	sel, esc, err = selectAnalyzers("escape")
	if err != nil || len(sel) != 0 || !esc {
		t.Fatalf("selectAnalyzers(escape) = %v, escape %v, err %v", sel, esc, err)
	}
	sel, esc, err = selectAnalyzers("escape,hotpathalloc")
	if err != nil || len(sel) != 1 || sel[0].Name() != "hotpathalloc" || !esc {
		t.Fatalf("selectAnalyzers(escape,hotpathalloc) = %v, escape %v, err %v", sel, esc, err)
	}
}

// TestJSONCleanRun ensures a finding-free report renders findings as an
// empty array, never null, with version, count and severity tallies
// present.
func TestJSONCleanRun(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, buildReport(nil)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"version": 2`, `"count": 0`, `"errors": 0`, `"warnings": 0`, `"findings": []`} {
		if !strings.Contains(out, want) {
			t.Errorf("clean report missing %s:\n%s", want, out)
		}
	}
}

// TestReportSeverityTallies pins the v2 errors/warnings counts.
func TestReportSeverityTallies(t *testing.T) {
	r := buildReport([]lint.Finding{
		{Analyzer: "a", Severity: lint.SevError},
		{Analyzer: "b", Severity: lint.SevWarn},
		{Analyzer: "c", Severity: lint.SevError},
	})
	if r.Version != 2 || r.Count != 3 || r.Errors != 2 || r.Warnings != 1 {
		t.Fatalf("report = %+v, want version 2, count 3, errors 2, warnings 1", r)
	}
}

// TestPrintTimings pins the -v timing rendering: slowest analyzer
// first, stable tie-break by name.
func TestPrintTimings(t *testing.T) {
	var buf bytes.Buffer
	printTimings(&buf, map[string]time.Duration{
		"floateq":   2 * time.Millisecond,
		"commcheck": 30 * time.Millisecond,
		"escape":    2 * time.Millisecond,
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("timing lines = %v", lines)
	}
	wantOrder := []string{"commcheck", "escape", "floateq"}
	for i, name := range wantOrder {
		if !strings.Contains(lines[i], name) {
			t.Errorf("timing line %d = %q, want analyzer %s", i, lines[i], name)
		}
	}
}
