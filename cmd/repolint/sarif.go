// sarif.go renders findings as SARIF 2.1.0, the interchange format
// GitHub code scanning ingests. The emitted log is deliberately
// minimal — one run, one tool, rules for every analyzer in the suite
// (so rule metadata is present even on clean runs), and one result per
// finding with a physical location relative to the module root. The
// shape is locked by a golden snapshot test; extend it append-only.
package main

import (
	"encoding/json"
	"io"

	"repro/internal/lint"
	"repro/internal/lint/escape"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps the suite's two severities onto SARIF's vocabulary.
func sarifLevel(s lint.Severity) string {
	if s == lint.SevError {
		return "error"
	}
	return "warning"
}

// buildSARIF assembles the log: the full rule table in suite order
// (per-package analyzers, module analyzers, then the compiler-truth
// gates) and one result per finding. Results is never null so a clean
// run still renders `"results": []`.
func buildSARIF(findings []lint.Finding) sarifLog {
	var rules []sarifRule
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifMessage{Text: a.Doc()}})
	}
	for _, a := range lint.ModuleAnalyzers() {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifMessage{Text: a.Doc()}})
	}
	rules = append(rules,
		sarifRule{ID: escape.Name, ShortDescription: sarifMessage{Text: escape.Doc}},
		sarifRule{ID: escape.BCEName, ShortDescription: sarifMessage{Text: escape.BCEDoc}},
	)
	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   sarifLevel(f.Severity),
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "repolint", Rules: rules}}, Results: results}},
	}
}

// writeSARIF renders the log with the same two-space indentation as
// -json, locked by the golden snapshot.
func writeSARIF(w io.Writer, findings []lint.Finding) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildSARIF(findings))
}
