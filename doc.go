// Package repro reproduces "Parallel Deep Neural Network Training for Big
// Data on Blue Gene/Q" (Chung, Sainath, Ramabhadran, Picheny, Gunnels,
// Austel, Chauhari, Kingsbury — SC 2014) as a pure-Go library.
//
// The implementation lives under internal/:
//
//   - core: the paper's contribution — data-parallel Hessian-free DNN
//     training in a master/worker architecture over message passing;
//   - hf: the Hessian-free optimizer (Algorithm 1) with truncated CG;
//   - nn: the DNN with backpropagation and Gauss-Newton products;
//   - seq: the utterance-level sequence training criterion;
//   - mpi: the message-passing substrate (in-process and TCP fabrics,
//     tree collectives, communication profiling);
//   - blas: the tuned SGEMM matrix library (§V-A);
//   - corpus: synthetic speech data and §V-C load balancing;
//   - sim, torus, bgq, workload: the discrete-event Blue Gene/Q machine
//     model that replays the training runs at 1024-8192 MPI ranks and
//     regenerates the paper's figures and tables.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; cmd/experiments produces the full report.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package repro
