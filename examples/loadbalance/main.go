// Loadbalance: demonstrate §V-C — why sorting utterances and assigning
// equal frame counts per worker matters. Shows the balance statistics of
// both partitioners on a real synthetic corpus, verifies the effect with
// an actual distributed training run, and projects the impact at paper
// scale with the BG/Q simulator.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	// Balance statistics at increasing worker counts: the imbalance of
	// naive round-robin grows; sorted-greedy stays ≈1.
	lengths := corpus.GenerateLengths(corpus.Config{Seed: 5, NumUtterances: 20000})
	utts := corpus.UtterancesFromLengths(lengths)
	fmt.Println("partition imbalance (max worker frames / mean), 20k utterances:")
	fmt.Printf("%-10s %14s %14s\n", "workers", "round-robin", "sorted-greedy")
	for _, w := range []int{8, 64, 512, 2048} {
		rr := corpus.MeasureBalance(corpus.RoundRobin{}.Partition(utts, w))
		sg := corpus.MeasureBalance(corpus.SortedGreedy{}.Partition(utts, w))
		fmt.Printf("%-10d %14.4f %14.4f\n", w, rr.Imbalance, sg.Imbalance)
	}

	// A real distributed run under both partitioners: identical results
	// (the data is the same), but the imbalanced run makes the master wait
	// for stragglers; at this tiny scale we verify correctness is
	// unaffected.
	c := corpus.Generate(corpus.Config{Seed: 6, NumUtterances: 80, MeanSeconds: 0.5, FeatDim: 12, Context: 1, NumStates: 6})
	train, held := c.Split(8)
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 24, c.NumStates),
		Train:          train,
		Heldout:        held,
		Criterion:      core.CrossEntropy,
		SampleFraction: 1,
		Seed:           2,
	}
	fmt.Println("\nreal distributed runs (4 ranks):")
	for _, part := range []corpus.Partitioner{corpus.RoundRobin{}, corpus.SortedGreedy{}} {
		sess, err := core.NewSession(prob, core.WithRanks(4), core.WithPartitioner(part))
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Run(hf.Config{MaxIterations: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s held-out loss %.4f, accuracy %.1f%%\n",
			part.Name(), res.HF.FinalLoss, res.HeldOutAccuracy*100)
	}

	// Paper-scale projection: feed each partitioner's frame distribution
	// into the BG/Q simulator.
	fmt.Println()
	if err := report.LoadBalance(os.Stdout, workload.Preset50h(false)); err != nil {
		log.Fatal(err)
	}
}
