// Quickstart: train a small DNN with Hessian-free optimization on a
// synthetic frame-classification task in one process — the minimal
// end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
)

func main() {
	// 1. Data: a synthetic speech-like corpus (variable-length utterances,
	//    per-frame features and HMM-state targets), split train/held-out.
	c := corpus.Generate(corpus.Config{
		Seed:          1,
		NumUtterances: 100,
		MeanSeconds:   0.5,
		FeatDim:       16,
		Context:       2, // 5-frame splice → input dim 80
		NumStates:     6,
	})
	train, heldout := c.Split(8)

	// 2. Problem: a 2-hidden-layer sigmoid DNN with softmax outputs,
	//    trained with frame-level cross-entropy.
	prob := core.Problem{
		Topo:           nn.NewTopology(c.InputDim(), 32, 32, c.NumStates),
		Train:          train,
		Heldout:        heldout,
		Criterion:      core.CrossEntropy,
		SampleFraction: 0.25, // curvature sample per HF iteration
		Seed:           42,
	}

	// 3. Optimize with Algorithm 1: truncated-CG Hessian-free training.
	cfg := hf.Config{
		MaxIterations: 8,
		Log: func(s hf.IterStats) {
			fmt.Printf("iter %2d: held-out loss %.4f  (λ=%.3g, %d CG iterations)\n",
				s.Iter, s.Loss, s.Lambda, s.CGIters)
		},
	}
	obj, res, err := core.TrainSerialHF(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal held-out loss:  %.4f\n", res.FinalLoss)
	fmt.Printf("frame accuracy:       %.1f%% (chance: %.1f%%)\n",
		obj.HeldOutAccuracy()*100, 100.0/float64(c.NumStates))
}
