// Scaling: replay the paper's 50-hour training run on the modeled Blue
// Gene/Q across rank counts and configurations, printing the Figure 1(a)
// sweep and the rank-scaling curve, plus the Table I machine comparison.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	counts := workload.Preset50h(false)

	if err := report.Fig1(os.Stdout, counts, false,
		"Figure 1(a) sweep: 50-hour cross-entropy training on Blue Gene/Q"); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := report.Scaling(os.Stdout, counts); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	rows, err := report.Table1()
	if err != nil {
		log.Fatal(err)
	}
	report.WriteTable1(os.Stdout, rows)
	fmt.Println("\n(the simulator replays the real trainer's algorithm structure on")
	fmt.Println(" modeled BG/Q and Intel-cluster hardware; see DESIGN.md §2)")
}
