// Speech: the paper's workload end to end — distributed Hessian-free
// training of a DNN acoustic model over a master/worker MPI job (run
// in-process), for both training criteria of Table I, compared against
// the serial SGD baseline of §II-A.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
	"repro/internal/seq"
)

func main() {
	c := corpus.Generate(corpus.Config{
		Seed:          3,
		NumUtterances: 160,
		MeanSeconds:   0.6,
		FeatDim:       20,
		Context:       3, // 7-frame splice
		NumStates:     10,
	})
	train, heldout := c.Split(8)
	fmt.Printf("synthetic corpus: %d train utterances (%d frames), %d held-out (%d frames)\n\n",
		len(train.Utts), train.TotalFrames(), len(heldout.Utts), heldout.TotalFrames())

	// Sequence training warm-starts from the cross-entropy model, as in
	// practice (and as the paper's pipeline does).
	var ceParams []float32
	for _, crit := range []core.Criterion{core.CrossEntropy, core.Sequence} {
		prob := core.Problem{
			Topo:           nn.NewTopology(c.InputDim(), 48, 48, c.NumStates),
			Train:          train,
			Heldout:        heldout,
			Criterion:      crit,
			SampleFraction: 0.2,
			Seed:           9,
		}
		if crit == core.Sequence {
			prob.InitParams = ceParams
		}

		// Distributed HF: 1 master + 3 workers over in-process MPI, with
		// the paper's sorted-greedy utterance partitioning.
		start := time.Now()
		sess, err := core.NewSession(prob, core.WithRanks(4), core.WithPartitioner(corpus.SortedGreedy{}))
		if err != nil {
			log.Fatal(err)
		}
		dist, err := sess.Run(hf.Config{MaxIterations: 6})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] distributed HF (4 ranks): held-out loss %.4f, accuracy %.1f%%  (%.1fs)\n",
			crit, dist.HF.FinalLoss, dist.HeldOutAccuracy*100, time.Since(start).Seconds())
		if crit == core.CrossEntropy {
			ceParams = dist.Params
		}

		// SGD baseline (serial, minibatch + momentum).
		start = time.Now()
		sgdObj, sgd, err := core.TrainSGD(prob, core.SGDConfig{Epochs: 6, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] serial SGD baseline:    held-out loss %.4f, accuracy %.1f%%  (%.1fs)\n",
			crit, sgd.FinalLoss, sgdObj.HeldOutAccuracy()*100, time.Since(start).Seconds())

		// Asynchronous parameter-server SGD (Dean et al., §II-A).
		start = time.Now()
		async, err := core.TrainAsyncSGD(prob, core.AsyncSGDConfig{Epochs: 6, Seed: 9}, 4, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] async SGD (4 ranks):    held-out loss %.4f, accuracy %.1f%%  (%.1fs, %d updates)\n",
			crit, async.HeldOutLoss, async.HeldOutAccuracy*100, time.Since(start).Seconds(), async.Updates)

		// Decode the held-out set with Viterbi over the HF model: the
		// state-error-rate stand-in for the paper's WER metric.
		net := nn.New(prob.Topo)
		net.SetParams(dist.Params)
		trans := seq.Estimate(train.Utts, c.NumStates)
		var errFrames, frames int
		for _, u := range heldout.Utts {
			x, _ := corpus.SpliceFrames([]*corpus.Utterance{u}, c.FeatDim, c.Context)
			decoded := seq.Viterbi(net.Forward(x).Logits, trans)
			for f2, d := range decoded {
				if d != u.States[f2] {
					errFrames++
				}
				frames++
			}
		}
		fmt.Printf("[%s] Viterbi decode of HF model: state error rate %.1f%%\n\n",
			crit, 100*float64(errFrames)/float64(frames))
	}
}
