// Package bgq models the two machines of the paper's evaluation: the IBM
// Blue Gene/Q (§III) and the Intel Xeon Linux cluster of Table I. The
// model maps operation counts measured from the real implementation onto
// execution time, per-core cycle breakdowns (committed / AXU-FXU
// dependency stalls / IU-empty, as in Figures 2-3) and communication
// times, parameterized by the rank/thread configuration sweep of Figure 1.
//
// Modeling choices, calibrated to the paper's qualitative findings and
// documented in DESIGN.md:
//
//   - Per-core issue efficiency grows with hardware threads per core
//     (1→4), reflecting §V-A's use of multithreading to hide stall cycles
//     on the in-order A2 core.
//   - Per-rank thread-synchronization overhead grows mildly with threads
//     per rank (OpenMP barriers at cache-block boundaries), and memory-
//     system contention grows mildly with ranks per node. Together these
//     reproduce Figure 1's 2048-2-32 ≲ 4096-4-16 < 1024-1-64 ordering.
//   - BG/Q collectives are hardware-accelerated on the torus: cost is
//     essentially partition-size independent (line rate + diameter
//     latency). The Linux cluster uses software binomial trees over
//     Ethernet with a contention ("collision") multiplier — the §VII
//     comparison.
//   - The compute-node kernel is noise-free (§VIII); the Linux cluster
//     loses a small fraction of compute to OS jitter.
package bgq

import (
	"fmt"
	"math"

	"repro/internal/torus"
)

// Config is an MPI run configuration in the paper's R-rpn-T notation:
// R total ranks, rpn ranks per node, T threads per rank (e.g. 4096-4-16).
type Config struct {
	Ranks          int
	RanksPerNode   int
	ThreadsPerRank int
}

// Label renders the paper's configuration notation.
func (c Config) Label() string {
	return fmt.Sprintf("%d-%d-%d", c.Ranks, c.RanksPerNode, c.ThreadsPerRank)
}

// Nodes returns the number of compute nodes used.
func (c Config) Nodes() int { return c.Ranks / c.RanksPerNode }

// Validate checks the configuration against the machine's node geometry.
func (c Config) Validate(m MachineSpec) error {
	if c.Ranks <= 0 || c.RanksPerNode <= 0 || c.ThreadsPerRank <= 0 {
		return fmt.Errorf("bgq: non-positive field in config %s", c.Label())
	}
	if c.Ranks%c.RanksPerNode != 0 {
		return fmt.Errorf("bgq: ranks %d not divisible by ranks/node %d", c.Ranks, c.RanksPerNode)
	}
	if c.RanksPerNode > m.Node.Cores {
		return fmt.Errorf("bgq: %d ranks/node exceeds %d cores", c.RanksPerNode, m.Node.Cores)
	}
	maxThreads := m.Node.Cores * m.Node.ThreadsPerCore / c.RanksPerNode
	if c.ThreadsPerRank > maxThreads {
		return fmt.Errorf("bgq: %d threads/rank exceeds %d HW threads available", c.ThreadsPerRank, maxThreads)
	}
	return nil
}

// CoresPerRank returns how many cores each rank owns.
func (c Config) CoresPerRank(m MachineSpec) float64 {
	return float64(m.Node.Cores) / float64(c.RanksPerNode)
}

// ThreadsPerCore returns the hardware-thread occupancy per core under
// this configuration.
func (c Config) ThreadsPerCore(m MachineSpec) float64 {
	return float64(c.ThreadsPerRank) / c.CoresPerRank(m)
}

// NodeSpec describes one compute node.
type NodeSpec struct {
	Cores              int
	ThreadsPerCore     int
	ClockHz            float64
	FlopsPerCycPerCore float64 // peak: BG/Q QPX 4-wide FMA = 8 flops/cycle
}

// PeakNodeFlops returns the node's peak floating-point rate.
func (n NodeSpec) PeakNodeFlops() float64 {
	return float64(n.Cores) * n.FlopsPerCycPerCore * n.ClockHz
}

// MachineSpec is a full machine model.
type MachineSpec struct {
	Name string
	Node NodeSpec

	// Network.
	LinkBandwidth float64 // bytes/s per torus link direction (or NIC)
	HopLatencySec float64
	MPIAlphaSec   float64 // per-operation software overhead
	// P2PSetupSec is the per-message fixed cost of a large point-to-point
	// transfer (rendezvous handshake, buffer registration, marshaling
	// setup); it makes the master's load_data grow with the number of
	// workers even at constant total bytes, as in Figures 2 and 4.
	P2PSetupSec float64
	// HWCollectives: torus hardware collectives at CollectiveBW,
	// partition-size independent. Otherwise software binomial trees with
	// EthContention multiplier.
	HWCollectives bool
	CollectiveBW  float64
	EthContention float64

	// PowerPerNodeWatts is the node's power draw under load, for the
	// §VIII energy-efficiency comparison (BG/Q led the Green500 of its
	// era; a training run's energy is power × nodes × time).
	PowerPerNodeWatts float64

	// MemBandwidth is the node's main-memory bandwidth in bytes/s,
	// shared by the ranks on the node; it bounds the master's
	// memory-bound CG vector arithmetic.
	MemBandwidth float64

	// Compute efficiency model.
	OSNoiseFrac       float64 // compute lost to OS jitter (0 on the CNK)
	GemmEffPeak       float64 // best-case fraction of peak for SGEMM
	ScalarEff         float64 // efficiency on non-SIMD code (forward-backward, vector ops)
	SyncCostPerThread float64 // per-thread barrier overhead coefficient
	MemContPerRank    float64 // memory contention per extra rank on a node
	// SmallBatchCores caps how many cores a small-minibatch GEMM (the
	// per-worker curvature-sample batches, a few hundred frames) can use
	// effectively — the "handling small matrices" tuning problem of §V-A.
	SmallBatchCores float64
	// occupancy of the in-order pipeline vs HW threads per core
	occByThreads func(tpc float64) float64
}

// BlueGeneQ returns the Blue Gene/Q model: 16 in-order A2 cores at
// 1.6 GHz, 4 HW threads/core, 4-wide FMA QPX (204.8 GF/node peak), 5-D
// torus at 2 GB/s/link/direction with hardware collectives, noise-free
// kernel.
func BlueGeneQ() MachineSpec {
	return MachineSpec{
		Name: "BG/Q",
		Node: NodeSpec{Cores: 16, ThreadsPerCore: 4, ClockHz: 1.6e9, FlopsPerCycPerCore: 8},

		LinkBandwidth: 2.0e9,
		HopLatencySec: 40e-9,
		MPIAlphaSec:   4e-6,
		P2PSetupSec:   2e-3,
		HWCollectives: true,
		CollectiveBW:  1.8e9,
		EthContention: 1,
		MemBandwidth:  28e9,
		// ≈80 kW per 1024-node rack under load.
		PowerPerNodeWatts: 78,

		OSNoiseFrac:       0,
		GemmEffPeak:       0.92,
		ScalarEff:         0.08, // in-order single-issue core on branchy scalar code
		SyncCostPerThread: 0.008,
		MemContPerRank:    0.015,
		SmallBatchCores:   4,
		occByThreads:      bgqOccupancy,
	}
}

// bgqOccupancy models how hardware threads hide the in-order core's stall
// cycles (§III: two threads can dual-issue FMA + load/store; four threads
// cover L1P latency).
func bgqOccupancy(tpc float64) float64 {
	switch {
	case tpc <= 1:
		return 0.45
	case tpc <= 2:
		return 0.45 + (0.72-0.45)*(tpc-1)
	case tpc <= 4:
		return 0.72 + (0.97-0.72)*(tpc-2)/2
	default:
		return 0.97
	}
}

// IntelXeonCluster returns the Table I comparison platform: a 2.9 GHz
// dual-socket Xeon Linux cluster (16 cores/node) running 96 MPI processes
// of 8 threads each (one per socket) over 10 GbE with software
// collectives and OS jitter — the paper's 64-node Intel/Linux cluster.
func IntelXeonCluster() MachineSpec {
	return MachineSpec{
		Name: "Intel-Xeon",
		Node: NodeSpec{Cores: 16, ThreadsPerCore: 1, ClockHz: 2.9e9, FlopsPerCycPerCore: 8},

		LinkBandwidth: 1.25e9, // 10 GbE
		HopLatencySec: 0,
		MPIAlphaSec:   30e-6,
		P2PSetupSec:   3e-3,
		HWCollectives: false,
		CollectiveBW:  1.25e9,
		EthContention: 3.0, // §VII "communication bottlenecks (collisions)"
		MemBandwidth:  50e9,
		// Dual-socket Xeon node with memory and NIC under load.
		PowerPerNodeWatts: 420,

		OSNoiseFrac:       0.03,
		GemmEffPeak:       0.75,
		ScalarEff:         0.60, // out-of-order core tolerates scalar code
		SyncCostPerThread: 0.002,
		MemContPerRank:    0.012,
		SmallBatchCores:   4,
		occByThreads:      func(tpc float64) float64 { return 1 },
	}
}

// EnergyKWh returns the energy of running the given configuration for
// seconds of wall-clock time, in kilowatt-hours.
func (m MachineSpec) EnergyKWh(c Config, seconds float64) float64 {
	return m.PowerPerNodeWatts * float64(c.Nodes()) * seconds / 3600 / 1000
}

// GFlopsPerWatt returns the modeled sustained GEMM energy efficiency of
// the configuration — the Green500 metric of the paper's §VIII.
func (m MachineSpec) GFlopsPerWatt(c Config) float64 {
	perNode := m.GemmRate(c) * float64(c.RanksPerNode)
	return perNode / 1e9 / m.PowerPerNodeWatts
}

// RankEfficiency returns the modeled fraction of a rank's peak GEMM rate
// achieved under the configuration: pipeline occupancy × thread-sync
// overhead × memory contention × (1 − OS noise) × peak GEMM efficiency.
func (m MachineSpec) RankEfficiency(c Config) float64 {
	occ := m.occByThreads(c.ThreadsPerCore(m))
	sync := 1 / (1 + m.SyncCostPerThread*float64(c.ThreadsPerRank))
	mem := 1 - m.MemContPerRank*float64(c.RanksPerNode-1)
	if mem < 0.5 {
		mem = 0.5
	}
	return m.GemmEffPeak * occ * sync * mem * (1 - m.OSNoiseFrac)
}

// GemmRate returns the modeled SGEMM rate of one rank in flops/s.
func (m MachineSpec) GemmRate(c Config) float64 {
	peak := c.CoresPerRank(m) * m.Node.FlopsPerCycPerCore * m.Node.ClockHz
	return peak * m.RankEfficiency(c)
}

// SmallBatchGemmRate returns the modeled SGEMM rate of one rank on a
// small minibatch of batchUtts utterances (each a few hundred frames):
// each utterance's frames expose roughly SmallBatchCores cores' worth of
// parallelism, so a fat rank only reaches full width once its sample
// holds enough utterances — the "handling small matrices" problem §V-A
// tunes for and the width penalty behind the Figure 1(a) configuration
// ordering.
func (m MachineSpec) SmallBatchGemmRate(c Config, batchUtts int64) float64 {
	if batchUtts < 1 {
		batchUtts = 1
	}
	frac := m.SmallBatchCores * float64(batchUtts) / c.CoresPerRank(m)
	if frac > 1 {
		frac = 1
	}
	return m.GemmRate(c) * frac
}

// ScalarRate returns the modeled rate of one rank on non-SIMD code
// (sequence forward-backward, master vector arithmetic) in flops/s.
// Scalar code does not vectorize, so the per-cycle rate is 2 flops
// (1 FMA pipe) scaled by the machine's scalar efficiency; it still scales
// with cores and benefits from thread occupancy.
func (m MachineSpec) ScalarRate(c Config) float64 {
	occ := m.occByThreads(c.ThreadsPerCore(m))
	return c.CoresPerRank(m) * 2 * m.Node.ClockHz * m.ScalarEff * occ * (1 - m.OSNoiseFrac)
}

// CycleBreakdown splits a rank's busy time into the categories of the
// paper's Figures 2-3, in core-cycles summed over the rank's cores.
type CycleBreakdown struct {
	Committed float64 // productive cycles
	AXUStall  float64 // AXU/FXU dependency stalls
	IUEmpty   float64 // instruction-unit-empty cycles (I-cache/IERAT misses)
}

// Total returns the summed cycles.
func (b CycleBreakdown) Total() float64 { return b.Committed + b.AXUStall + b.IUEmpty }

// Add accumulates another breakdown.
func (b *CycleBreakdown) Add(o CycleBreakdown) {
	b.Committed += o.Committed
	b.AXUStall += o.AXUStall
	b.IUEmpty += o.IUEmpty
}

// CycleSplit converts a compute duration on one rank into a cycle
// breakdown: the efficiency determines the committed share, and the
// remainder splits between dependency stalls and empty-issue cycles, with
// more hardware threads shifting waste from stalls to (fewer) total
// wasted cycles, as §VII observes.
func (m MachineSpec) CycleSplit(seconds float64, c Config, scalar bool) CycleBreakdown {
	cycles := seconds * m.Node.ClockHz * c.CoresPerRank(m)
	eff := m.RankEfficiency(c) / m.GemmEffPeak // issue-slot utilization
	if scalar {
		eff = m.ScalarEff * m.occByThreads(c.ThreadsPerCore(m))
	}
	if eff > 1 {
		eff = 1
	}
	waste := cycles * (1 - eff)
	// With more threads per core the remaining waste is mostly true data
	// dependencies; with fewer it is increasingly empty issue slots.
	tpc := c.ThreadsPerCore(m)
	stallShare := 0.45 + 0.1*math.Min(tpc, 4)
	return CycleBreakdown{
		Committed: cycles * eff,
		AXUStall:  waste * stallShare,
		IUEmpty:   waste * (1 - stallShare),
	}
}

// BcastTime models a broadcast of the given payload across the
// configuration. On BG/Q this is the hardware collective (line rate plus
// torus diameter); on the cluster a binomial software tree.
func (m MachineSpec) BcastTime(bytes int64, c Config, shape torus.Shape) float64 {
	if m.HWCollectives {
		hops := shape.MaxHops()
		// Line-rate hardware collective plus a small per-stage software
		// setup that grows with the tree depth (visible in the paper's
		// Figure 4 as sync_weights time growing with rank count).
		stages := math.Ceil(math.Log2(float64(c.Ranks)))
		return stages*m.MPIAlphaSec + float64(bytes)/m.CollectiveBW + float64(hops)*m.HopLatencySec
	}
	stages := math.Ceil(math.Log2(float64(c.Ranks)))
	return stages * (m.MPIAlphaSec + float64(bytes)/m.CollectiveBW) * m.EthContention
}

// ReduceTime models a sum-reduction of the payload; slightly slower than
// broadcast because of the combining arithmetic on the way up the tree.
func (m MachineSpec) ReduceTime(bytes int64, c Config, shape torus.Shape) float64 {
	return 1.25 * m.BcastTime(bytes, c, shape)
}

// P2PTime models one point-to-point message over the given hop distance,
// excluding serialization on shared links (which the simulator accounts
// via resources).
func (m MachineSpec) P2PTime(bytes int64, hops int) float64 {
	return m.MPIAlphaSec + float64(bytes)/m.LinkBandwidth + float64(hops)*m.HopLatencySec
}

// InjectionTime is the time a message occupies the sender's injection
// link, the serialized resource behind the master's load_data bottleneck.
func (m MachineSpec) InjectionTime(bytes int64) float64 {
	return float64(bytes) / m.LinkBandwidth
}
