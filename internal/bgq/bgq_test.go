package bgq

import (
	"math"
	"testing"

	"repro/internal/torus"
)

func TestConfigBasics(t *testing.T) {
	c := Config{Ranks: 4096, RanksPerNode: 4, ThreadsPerRank: 16}
	if c.Label() != "4096-4-16" {
		t.Fatalf("label %q", c.Label())
	}
	if c.Nodes() != 1024 {
		t.Fatalf("nodes %d", c.Nodes())
	}
	m := BlueGeneQ()
	if c.CoresPerRank(m) != 4 {
		t.Fatalf("cores/rank %v", c.CoresPerRank(m))
	}
	if c.ThreadsPerCore(m) != 4 {
		t.Fatalf("threads/core %v", c.ThreadsPerCore(m))
	}
}

func TestConfigValidate(t *testing.T) {
	m := BlueGeneQ()
	good := []Config{
		{1024, 1, 64}, {2048, 2, 32}, {4096, 4, 16}, {8192, 4, 16}, {1024, 1, 16},
	}
	for _, c := range good {
		if err := c.Validate(m); err != nil {
			t.Fatalf("%s: %v", c.Label(), err)
		}
	}
	bad := []Config{
		{0, 1, 1},
		{1024, 3, 16},  // not divisible
		{1024, 32, 1},  // more ranks than cores
		{1024, 1, 128}, // more threads than HW threads
	}
	for _, c := range bad {
		if err := c.Validate(m); err == nil {
			t.Fatalf("%s should be invalid", c.Label())
		}
	}
}

func TestPeakNodeFlops(t *testing.T) {
	// §III: 16 cores × 12.8 GF = 204.8 GF/node.
	m := BlueGeneQ()
	if got := m.Node.PeakNodeFlops(); math.Abs(got-204.8e9) > 1 {
		t.Fatalf("peak %v, want 204.8e9", got)
	}
}

// Large-GEMM rank efficiency falls as threads per rank grow (OpenMP sync
// overhead beats the marginal occupancy gain): the 16-thread ranks are
// the most efficient on bulk GEMM. The end-to-end Figure 1(a) ordering —
// where master costs and small-batch granularity pull the other way — is
// asserted in internal/workload's TestFig1aShape.
func TestLargeGemmEfficiencyByThreads(t *testing.T) {
	m := BlueGeneQ()
	e1 := m.RankEfficiency(Config{1024, 1, 64})
	e2 := m.RankEfficiency(Config{2048, 2, 32})
	e4 := m.RankEfficiency(Config{4096, 4, 16})
	if !(e4 > e2 && e2 > e1) {
		t.Fatalf("want eff(4-16) > eff(2-32) > eff(1-64), got %v %v %v", e4, e2, e1)
	}
}

// More hardware threads per core must increase efficiency (the paper's
// "use at least 16 threads, target 64 per node" finding).
func TestThreadScalingMonotone(t *testing.T) {
	m := BlueGeneQ()
	prev := 0.0
	for _, threads := range []int{16, 32, 64} {
		eff := m.RankEfficiency(Config{1024, 1, threads})
		if eff <= prev {
			t.Fatalf("efficiency not increasing with threads: %d → %v (prev %v)", threads, eff, prev)
		}
		prev = eff
	}
}

func TestGemmRateBounds(t *testing.T) {
	m := BlueGeneQ()
	c := Config{4096, 4, 16}
	rate := m.GemmRate(c)
	peak := c.CoresPerRank(m) * m.Node.FlopsPerCycPerCore * m.Node.ClockHz
	if rate <= 0 || rate >= peak {
		t.Fatalf("rate %v outside (0, %v)", rate, peak)
	}
	if rate < 0.5*peak {
		t.Fatalf("rate %v below half peak — model too pessimistic", rate)
	}
}

func TestScalarRateBelowGemmRate(t *testing.T) {
	m := BlueGeneQ()
	c := Config{4096, 4, 16}
	if m.ScalarRate(c) >= m.GemmRate(c) {
		t.Fatal("scalar code should be slower than SGEMM")
	}
}

func TestIntelScalarPenaltySmallerThanBGQ(t *testing.T) {
	// Out-of-order Xeon cores tolerate scalar code better — the reason
	// the sequence-criterion speedup in Table I is smaller.
	b := BlueGeneQ()
	i := IntelXeonCluster()
	bgqRatio := b.ScalarRate(Config{4096, 4, 16}) / b.GemmRate(Config{4096, 4, 16})
	intelRatio := i.ScalarRate(Config{96, 2, 8}) / i.GemmRate(Config{96, 2, 8})
	if intelRatio <= bgqRatio {
		t.Fatalf("intel scalar/gemm %v should exceed bgq %v", intelRatio, bgqRatio)
	}
}

func TestCycleSplitConservation(t *testing.T) {
	m := BlueGeneQ()
	c := Config{2048, 2, 32}
	b := m.CycleSplit(1.5, c, false)
	wantTotal := 1.5 * m.Node.ClockHz * c.CoresPerRank(m)
	if math.Abs(b.Total()-wantTotal) > 1 {
		t.Fatalf("cycles %v, want %v", b.Total(), wantTotal)
	}
	if b.Committed <= 0 || b.AXUStall < 0 || b.IUEmpty < 0 {
		t.Fatalf("negative component: %+v", b)
	}
	// Scalar code commits a smaller share.
	s := m.CycleSplit(1.5, c, true)
	if s.Committed >= b.Committed {
		t.Fatal("scalar committed share should be below GEMM share")
	}
}

func TestCycleBreakdownAdd(t *testing.T) {
	a := CycleBreakdown{1, 2, 3}
	a.Add(CycleBreakdown{10, 20, 30})
	if a.Committed != 11 || a.AXUStall != 22 || a.IUEmpty != 33 {
		t.Fatalf("add wrong: %+v", a)
	}
}

func TestBGQCollectivesPartitionSizeIndependent(t *testing.T) {
	m := BlueGeneQ()
	shape1, _ := torus.ShapeFor(1024)
	shape8, _ := torus.ShapeFor(2048)
	t1 := m.BcastTime(40e6, Config{1024, 1, 64}, shape1)
	t8 := m.BcastTime(40e6, Config{8192, 4, 16}, shape8)
	// Hardware collectives: only the diameter term grows; within 5%.
	if t8 > 1.05*t1 {
		t.Fatalf("BG/Q bcast should be nearly partition-size independent: %v vs %v", t1, t8)
	}
}

func TestIntelCollectivesGrowWithRanks(t *testing.T) {
	m := IntelXeonCluster()
	var shape torus.Shape
	t16 := m.BcastTime(40e6, Config{16, 2, 8}, shape)
	t96 := m.BcastTime(40e6, Config{96, 2, 8}, shape)
	if t96 <= t16 {
		t.Fatalf("software tree bcast must grow with ranks: %v vs %v", t16, t96)
	}
}

func TestReduceSlowerThanBcast(t *testing.T) {
	m := BlueGeneQ()
	shape, _ := torus.ShapeFor(1024)
	c := Config{1024, 1, 64}
	if m.ReduceTime(1e6, c, shape) <= m.BcastTime(1e6, c, shape) {
		t.Fatal("reduce should cost more than bcast")
	}
}

func TestP2PAndInjection(t *testing.T) {
	m := BlueGeneQ()
	small := m.P2PTime(8, 1)
	big := m.P2PTime(1<<20, 1)
	if big <= small {
		t.Fatal("p2p time must grow with size")
	}
	far := m.P2PTime(8, 11)
	if far <= small {
		t.Fatal("p2p time must grow with hops")
	}
	if m.InjectionTime(2e9) != 1 {
		t.Fatalf("injection of 2 GB at 2 GB/s should be 1 s, got %v", m.InjectionTime(2e9))
	}
}

// §VIII: "Blue Gene/Q is also a leader in energy efficiency" — the
// modeled GFLOPS/W must clearly exceed the Xeon cluster's.
func TestEnergyEfficiencyClaim(t *testing.T) {
	bg := BlueGeneQ()
	intel := IntelXeonCluster()
	bgEff := bg.GFlopsPerWatt(Config{4096, 4, 16})
	intelEff := intel.GFlopsPerWatt(Config{96, 2, 8})
	if bgEff <= 1.5*intelEff {
		t.Fatalf("BG/Q %v GF/W should clearly beat Intel %v GF/W", bgEff, intelEff)
	}
	if bgEff < 1 || bgEff > 3 {
		t.Fatalf("BG/Q GF/W %v outside the plausible 1-3 range of the era", bgEff)
	}
}

func TestEnergyKWh(t *testing.T) {
	m := BlueGeneQ()
	c := Config{1024, 1, 64} // one rack
	// One rack for one hour at 78 W/node ≈ 79.9 kWh.
	got := m.EnergyKWh(c, 3600)
	want := 78.0 * 1024 / 1000
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy %v, want %v", got, want)
	}
}
