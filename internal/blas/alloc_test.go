package blas

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestZeroAllocKernels is the white-box half of the allocation gate: the
// packed-GEMM inner kernels are //lint:hotpath and must not allocate per
// call — every buffer is passed in by the blocking driver. The escape
// gate (make alloccheck) proves the same property from the compiler's
// escape analysis; this test proves it from the runtime allocator, so a
// regression needs to fool both.
func TestZeroAllocKernels(t *testing.T) {
	const mc, kc, nc = 64, 48, 32
	rng := rand.New(rand.NewSource(1))
	a := tensor.RandMatrix(rng, mc, kc, 1)
	bm := tensor.RandMatrix(rng, kc, nc, 1)
	c := tensor.NewMatrix(mc, nc)
	abuf := make([]float32, roundUp(mc, mr)*kc)
	// Sized for the widest packed panel used below: the transposed case
	// packs the kc×mc block of op(A)=Aᵀ, and mc > nc.
	bbuf := make([]float32, kc*roundUp(mc, nr))
	packA(a, NoTrans, 0, 0, mc, kc, abuf)
	packB(bm, NoTrans, 0, 0, kc, nc, bbuf)

	kernels := []struct {
		name string
		fn   func()
	}{
		{"packA", func() { packA(a, NoTrans, 0, 0, mc, kc, abuf) }},
		{"packA_trans", func() { packA(bm, Trans, 0, 0, nc, kc, abuf) }},
		{"packB", func() { packB(bm, NoTrans, 0, 0, kc, nc, bbuf) }},
		{"packB_trans", func() { packB(a, Trans, 0, 0, kc, mc, bbuf) }},
		{"macroKernel", func() { macroKernel(abuf, bbuf, c, 0, 0, mc, nc, kc, 1) }},
		{"microKernel8x4", func() { microKernel8x4(kc, abuf, bbuf, c.Data, c.Stride, 1) }},
		{"microKernelEdge", func() { microKernelEdge(kc, abuf, bbuf, c.Data, c.Stride, 5, 3, 1) }},
	}
	for _, k := range kernels {
		if n := testing.AllocsPerRun(20, k.fn); n != 0 {
			t.Errorf("%s: %.0f allocs per call, want 0", k.name, n)
		}
	}
}
