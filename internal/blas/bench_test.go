package blas

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// The GEMM ablation benchmarks mirror §V-A's tuning levels: naive loop →
// blocked/packed kernel → cooperative parallel kernel, plus the skinny
// shapes typical of DNN layers (batch × in → batch × out).
func benchGemm(b *testing.B, impl Impl, threads, m, n, k int) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.RandMatrix(rng, m, k, 1)
	bb := tensor.RandMatrix(rng, k, n, 1)
	c := tensor.NewMatrix(m, n)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmWith(Config{Impl: impl, Threads: threads}, NoTrans, NoTrans, 1, a, bb, 0, c)
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkGEMMNaive256(b *testing.B)   { benchGemm(b, Naive, 1, 256, 256, 256) }
func BenchmarkGEMMBlocked256(b *testing.B) { benchGemm(b, Blocked, 1, 256, 256, 256) }
func BenchmarkGEMMParallel256(b *testing.B) {
	for _, th := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			benchGemm(b, Parallel, th, 256, 256, 256)
		})
	}
}

func BenchmarkGEMMBlocked512(b *testing.B)  { benchGemm(b, Blocked, 1, 512, 512, 512) }
func BenchmarkGEMMParallel512(b *testing.B) { benchGemm(b, Parallel, 0, 512, 512, 512) }

// DNN-shaped GEMMs: minibatch 512, layer 1024→1024 and the small-K
// output-layer shape the paper's tuning section calls out.
func BenchmarkGEMMLayerShape(b *testing.B)  { benchGemm(b, Parallel, 0, 512, 1024, 1024) }
func BenchmarkGEMMSmallK(b *testing.B)      { benchGemm(b, Parallel, 0, 512, 512, 40) }
func BenchmarkGEMMSmallMatrix(b *testing.B) { benchGemm(b, Blocked, 1, 32, 32, 32) }

func BenchmarkAxpy(b *testing.B) {
	x := make([]float32, 1<<16)
	y := make([]float32, 1<<16)
	b.SetBytes(int64(8 * len(x)))
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x, y)
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float32, 1<<16)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(8 * len(x)))
	for i := 0; i < b.N; i++ {
		Dot(x, x)
	}
}
