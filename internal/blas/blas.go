// Package blas is the tuned single-precision matrix library underpinning
// DNN training, standing in for the hand-tuned BG/Q SGEMM of §V-A of the
// paper.
//
// The paper telescopes its GEMM across thread, core and node levels:
// a register-blocked inner kernel, operand packing for stride-one access,
// cache blocking, and cooperative threads. This package mirrors those
// levers in portable Go:
//
//   - Naive: triple loop, the correctness reference.
//   - Blocked: Goto-style packed panels (MC×KC blocks of A, KC×NC blocks
//     of B) with an MR×NR register-tile micro-kernel.
//   - Parallel: the blocked algorithm with the MC loop fanned out across
//     goroutines sharing one packed B panel, the analogue of the paper's
//     cores cooperating on a shared operand.
//
// Results are deterministic regardless of thread count: every C element is
// accumulated by exactly one goroutine in a fixed k-order.
package blas

import (
	"fmt"
	"runtime"

	"repro/internal/check"
	"repro/internal/tensor"
)

// Transpose selects op(X) = X or op(X) = Xᵀ in Gemm.
type Transpose bool

const (
	// NoTrans uses the operand as stored.
	NoTrans Transpose = false
	// Trans uses the transpose of the operand.
	Trans Transpose = true
)

// Impl selects a GEMM implementation.
type Impl int

const (
	// Auto picks Parallel for large problems and Blocked for small ones.
	Auto Impl = iota
	// Naive is the unblocked triple loop (reference).
	Naive
	// Blocked is the single-threaded packed/blocked algorithm.
	Blocked
	// Parallel is the multi-goroutine packed/blocked algorithm.
	Parallel
)

// Config carries GEMM tuning parameters. The zero value means Auto
// implementation, GOMAXPROCS threads and default block sizes.
type Config struct {
	Impl    Impl
	Threads int // goroutines for Parallel; <=0 means GOMAXPROCS
	MC      int // rows of A packed per block; <=0 means default
	KC      int // depth of packed panels; <=0 means default
	NC      int // columns of B packed per block; <=0 means default
	// Workspace, when non-nil, supplies reusable packing panels and pins
	// the implementation to the single-threaded blocked path (a
	// workspace serves one goroutine); calls are then allocation-free at
	// steady state. Explicitly selecting Parallel ignores it.
	Workspace *Workspace
}

// Default block sizes, sized for typical L1/L2 footprints: an MR×KC strip
// of packed A (8·256·4 B = 8 KiB) is L1-resident and the KC×NC packed B
// panel (256·512·4 B = 512 KiB) is L2-resident, echoing the paper's
// cache-level operand staging.
const (
	defaultMC = 128
	defaultKC = 256
	defaultNC = 512
)

func (c Config) filled() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.MC <= 0 {
		c.MC = defaultMC
	}
	if c.KC <= 0 {
		c.KC = defaultKC
	}
	if c.NC <= 0 {
		c.NC = defaultNC
	}
	return c
}

// Gemm computes C = alpha·op(A)·op(B) + beta·C with the default
// configuration. op(A) must be M×K, op(B) K×N, and C M×N.
//
//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a tB:swap=b
func Gemm(tA, tB Transpose, alpha float32, a, b *tensor.Matrix, beta float32, c *tensor.Matrix) {
	if check.Enabled {
		m, k := opDims(a, tA)
		k2, n := opDims(b, tB)
		check.Dims("blas.Gemm.inner", k2, k)
		check.Layout("blas.Gemm.c", c.Rows, c.Cols, m, n)
	}
	GemmWith(Config{}, tA, tB, alpha, a, b, beta, c)
}

// GemmWith is Gemm with explicit tuning parameters.
//
//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a tB:swap=b
func GemmWith(cfg Config, tA, tB Transpose, alpha float32, a, b *tensor.Matrix, beta float32, c *tensor.Matrix) {
	m, k := opDims(a, tA)
	k2, n := opDims(b, tB)
	if k != k2 {
		panic(fmt.Sprintf("blas: Gemm inner dimensions %d vs %d", k, k2))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm output %d×%d, want %d×%d", c.Rows, c.Cols, m, n))
	}
	if gm := metrics.Load(); gm != nil {
		gm.recordGemm(m, n, k)
	}
	cfg = cfg.filled()

	impl := cfg.Impl
	if impl == Auto {
		if cfg.Workspace != nil {
			// A workspace serves one goroutine, so it pins the
			// single-threaded blocked path.
			impl = Blocked
		} else {
			// Small problems do not amortize packing or goroutine startup.
			flops := 2 * float64(m) * float64(n) * float64(k)
			switch {
			case flops < 64*64*64*2:
				impl = Blocked
			default:
				impl = Parallel
			}
		}
	}
	switch impl {
	case Naive:
		gemmNaive(tA, tB, alpha, a, b, beta, c)
	case Blocked:
		gemmBlocked(cfg, tA, tB, alpha, a, b, beta, c, 1)
	case Parallel:
		gemmBlocked(cfg, tA, tB, alpha, a, b, beta, c, cfg.Threads)
	default:
		panic(fmt.Sprintf("blas: unknown Impl %d", impl))
	}
}

// opDims returns the dimensions of op(X).
func opDims(x *tensor.Matrix, t Transpose) (rows, cols int) {
	if t == Trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

// scaleC applies C *= beta, the one-time beta handling shared by the
// blocked implementations.
func scaleC(beta float32, c *tensor.Matrix) {
	switch beta {
	case 1:
	case 0:
		c.Zero()
	default:
		c.Scale(beta)
	}
}
