package blas

import (
	"fmt"

	"repro/internal/check"
)

// Double-precision GEMM. The paper notes (§II-B) that conventional HPC
// tuning targets DGEMM while DNN training is SGEMM-bound; Gemm64 exists
// for the comparison benchmarks and for callers needing float64 linear
// algebra. It uses the same Goto-style blocked algorithm with a 4×4
// register tile (float64 doubles the register footprint).

// Matrix64 is a dense row-major float64 matrix.
type Matrix64 struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// NewMatrix64 returns a zeroed r×c matrix.
func NewMatrix64(r, c int) *Matrix64 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("blas: invalid dimensions %d×%d", r, c))
	}
	return &Matrix64{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Matrix64) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix64) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i sharing storage with the matrix.
func (m *Matrix64) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

const (
	mr64 = 4
	nr64 = 4
)

// Gemm64 computes C = alpha·op(A)·op(B) + beta·C in double precision.
//
//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a tB:swap=b
func Gemm64(tA, tB Transpose, alpha float64, a, b *Matrix64, beta float64, c *Matrix64) {
	if check.Enabled {
		em, ek := opDims64(a, tA)
		ek2, en := opDims64(b, tB)
		check.Dims("blas.Gemm64.inner", ek2, ek)
		check.Layout("blas.Gemm64.c", c.Rows, c.Cols, em, en)
	}
	m, k := opDims64(a, tA)
	k2, n := opDims64(b, tB)
	if k != k2 {
		panic(fmt.Sprintf("blas: Gemm64 inner dimensions %d vs %d", k, k2))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm64 output %d×%d, want %d×%d", c.Rows, c.Cols, m, n))
	}
	if gm := metrics.Load(); gm != nil {
		gm.recordGemm(m, n, k)
	}
	switch beta {
	case 1:
	case 0:
		for i := 0; i < m; i++ {
			row := c.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
	default:
		for i := 0; i < m; i++ {
			row := c.Row(i)
			for j := range row {
				row[j] *= beta
			}
		}
	}
	// BLAS semantics: alpha=0 means "skip the product entirely", an exact
	// sentinel the caller sets literally, not a computed value.
	//lint:ignore floateq alpha==0 is the exact BLAS fast-path sentinel
	if m == 0 || n == 0 || k == 0 || alpha == 0 {
		return
	}

	// Half the float32 block sizes keep the same cache footprint.
	const mc, kc, nc = 64, 128, 256
	abuf := make([]float64, roundUp(mc, mr64)*kc)
	bbuf := make([]float64, kc*roundUp(nc, nr64))
	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packB64(b, tB, pc, jc, kcb, ncb, bbuf)
			for ic := 0; ic < m; ic += mc {
				mcb := min(mc, m-ic)
				packA64(a, tA, ic, pc, mcb, kcb, abuf)
				macroKernel64(abuf, bbuf, c, ic, jc, mcb, ncb, kcb, alpha)
			}
		}
	}
}

// Gemm64Naive is the unblocked reference used by tests and the DGEMM
// baseline benchmark. It guards like Gemm64: the un-checked variant
// read b out of shape (or c out of bounds) whenever the inner or output
// dims disagreed, exactly the silent-wrong-answer class the shape
// analyzer exists to catch.
//
//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a tB:swap=b
func Gemm64Naive(tA, tB Transpose, alpha float64, a, b *Matrix64, beta float64, c *Matrix64) {
	m, k := opDims64(a, tA)
	k2, n := opDims64(b, tB)
	if k != k2 {
		panic(fmt.Sprintf("blas: Gemm64Naive inner dimensions %d vs %d", k, k2))
	}
	if c.Rows != m || c.Cols != n {
		panic(fmt.Sprintf("blas: Gemm64Naive output %d×%d, want %d×%d", c.Rows, c.Cols, m, n))
	}
	at := func(i, p int) float64 {
		if tA == Trans {
			return a.Data[p*a.Stride+i]
		}
		return a.Data[i*a.Stride+p]
	}
	bt := func(p, j int) float64 {
		if tB == Trans {
			return b.Data[j*b.Stride+p]
		}
		return b.Data[p*b.Stride+j]
	}
	for i := 0; i < m; i++ {
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			crow[j] = alpha*s + beta*crow[j]
		}
	}
}

func opDims64(x *Matrix64, t Transpose) (rows, cols int) {
	if t == Trans {
		return x.Cols, x.Rows
	}
	return x.Rows, x.Cols
}

func packA64(a *Matrix64, tA Transpose, i0, p0, mc, kc int, buf []float64) {
	for ip := 0; ip < mc; ip += mr64 {
		rows := min(mr64, mc-ip)
		panel := buf[(ip/mr64)*kc*mr64:]
		if tA == NoTrans {
			for r := 0; r < rows; r++ {
				src := a.Data[(i0+ip+r)*a.Stride+p0:]
				for p := 0; p < kc; p++ {
					panel[p*mr64+r] = src[p]
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				src := a.Data[(p0+p)*a.Stride+i0+ip:]
				copy(panel[p*mr64:p*mr64+rows], src[:rows])
			}
		}
		if rows < mr64 {
			for p := 0; p < kc; p++ {
				for r := rows; r < mr64; r++ {
					panel[p*mr64+r] = 0
				}
			}
		}
	}
}

func packB64(b *Matrix64, tB Transpose, p0, j0, kc, nc int, buf []float64) {
	for jp := 0; jp < nc; jp += nr64 {
		cols := min(nr64, nc-jp)
		panel := buf[(jp/nr64)*kc*nr64:]
		if tB == NoTrans {
			for p := 0; p < kc; p++ {
				src := b.Data[(p0+p)*b.Stride+j0+jp:]
				copy(panel[p*nr64:p*nr64+cols], src[:cols])
			}
		} else {
			for j := 0; j < cols; j++ {
				src := b.Data[(j0+jp+j)*b.Stride+p0:]
				for p := 0; p < kc; p++ {
					panel[p*nr64+j] = src[p]
				}
			}
		}
		if cols < nr64 {
			for p := 0; p < kc; p++ {
				for j := cols; j < nr64; j++ {
					panel[p*nr64+j] = 0
				}
			}
		}
	}
}

func macroKernel64(abuf, bbuf []float64, c *Matrix64, ic, jc, mc, nc, kc int, alpha float64) {
	for jp := 0; jp < nc; jp += nr64 {
		cols := min(nr64, nc-jp)
		bpanel := bbuf[(jp/nr64)*kc*nr64:]
		for ip := 0; ip < mc; ip += mr64 {
			rows := min(mr64, mc-ip)
			apanel := abuf[(ip/mr64)*kc*mr64:]
			coff := (ic+ip)*c.Stride + jc + jp
			microKernel4x4(kc, apanel, bpanel, c.Data[coff:], c.Stride, rows, cols, alpha)
		}
	}
}

// microKernel4x4 updates a 4×4 double-precision tile with rank-1 updates
// over the packed panels; partial tiles write back only the live region.
func microKernel4x4(kc int, ap, bp []float64, c []float64, ldc, rows, cols int, alpha float64) {
	var (
		c00, c01, c02, c03 float64
		c10, c11, c12, c13 float64
		c20, c21, c22, c23 float64
		c30, c31, c32, c33 float64
	)
	ap = ap[:kc*mr64]
	bp = bp[:kc*nr64]
	for p := 0; p < kc; p++ {
		b := bp[p*nr64 : p*nr64+nr64 : p*nr64+nr64]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a := ap[p*mr64 : p*mr64+mr64 : p*mr64+mr64]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc := [mr64][nr64]float64{
		{c00, c01, c02, c03},
		{c10, c11, c12, c13},
		{c20, c21, c22, c23},
		{c30, c31, c32, c33},
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			c[r*ldc+j] += alpha * acc[r][j]
		}
	}
}
