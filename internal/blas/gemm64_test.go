package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix64(rng *rand.Rand, r, c int) *Matrix64 {
	m := NewMatrix64(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

func gemm64Equal(a, b *Matrix64, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if math.Abs(ra[j]-rb[j]) > tol {
				return false
			}
		}
	}
	return true
}

func clone64(m *Matrix64) *Matrix64 {
	out := NewMatrix64(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

func TestGemm64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {33, 29, 31}, {65, 70, 66}, {1, 50, 50}, {50, 1, 50}}
	for _, tA := range []Transpose{NoTrans, Trans} {
		for _, tB := range []Transpose{NoTrans, Trans} {
			for _, s := range shapes {
				m, n, k := s[0], s[1], s[2]
				var a, b *Matrix64
				if tA == Trans {
					a = randMatrix64(rng, k, m)
				} else {
					a = randMatrix64(rng, m, k)
				}
				if tB == Trans {
					b = randMatrix64(rng, n, k)
				} else {
					b = randMatrix64(rng, k, n)
				}
				c := randMatrix64(rng, m, n)
				want := clone64(c)
				Gemm64Naive(tA, tB, 1.5, a, b, 0.5, want)
				got := clone64(c)
				Gemm64(tA, tB, 1.5, a, b, 0.5, got)
				if !gemm64Equal(got, want, 1e-10*float64(k+1)) {
					t.Fatalf("tA=%v tB=%v %v: blocked DGEMM differs from naive", tA, tB, s)
				}
			}
		}
	}
}

func TestGemm64AlphaBetaEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix64(rng, 8, 8)
	b := randMatrix64(rng, 8, 8)
	c := randMatrix64(rng, 8, 8)
	// alpha=0, beta=0 → C must be zeroed.
	z := clone64(c)
	Gemm64(NoTrans, NoTrans, 0, a, b, 0, z)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("alpha=0,beta=0 must zero C")
		}
	}
	// beta=1 accumulates.
	acc := clone64(c)
	Gemm64(NoTrans, NoTrans, 1, a, b, 1, acc)
	want := clone64(c)
	Gemm64Naive(NoTrans, NoTrans, 1, a, b, 1, want)
	if !gemm64Equal(acc, want, 1e-12) {
		t.Fatal("beta=1 accumulation wrong")
	}
}

func TestGemm64DimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm64(NoTrans, NoTrans, 1, NewMatrix64(2, 3), NewMatrix64(4, 5), 0, NewMatrix64(2, 5))
}

func TestGemm64OutputShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Gemm64(NoTrans, NoTrans, 1, NewMatrix64(2, 3), NewMatrix64(3, 5), 0, NewMatrix64(3, 5))
}

// Property: (AB)ᵀ == BᵀAᵀ within tolerance.
func TestGemm64TransposeIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(nSeed uint8) bool {
		n := int(nSeed%12) + 1
		a := randMatrix64(rng, n, n)
		b := randMatrix64(rng, n, n)
		ab := NewMatrix64(n, n)
		Gemm64(NoTrans, NoTrans, 1, a, b, 0, ab)
		btat := NewMatrix64(n, n)
		Gemm64(Trans, Trans, 1, b, a, 0, btat) // bᵀaᵀ = (ab)ᵀ
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(ab.At(i, j)-btat.At(j, i)) > 1e-10*float64(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The §II-B comparison: single precision moves twice the elements per
// byte, so the SGEMM kernel should outrun DGEMM at the same dimensions.
func BenchmarkDGEMMBlocked256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix64(rng, 256, 256)
	y := randMatrix64(rng, 256, 256)
	c := NewMatrix64(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm64(NoTrans, NoTrans, 1, x, y, 0, c)
	}
	flops := 2.0 * 256 * 256 * 256
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkDGEMMNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix64(rng, 256, 256)
	y := randMatrix64(rng, 256, 256)
	c := NewMatrix64(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm64Naive(NoTrans, NoTrans, 1, x, y, 0, c)
	}
	flops := 2.0 * 256 * 256 * 256
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// Gemm64Naive used to trust its callers: with mismatched inner or output
// dimensions it silently read b (or wrote c) out of shape instead of
// panicking like Gemm64. These pin the guards added with the shape
// analyzer.
func TestGemm64NaiveInnerDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	Gemm64Naive(NoTrans, NoTrans, 1, NewMatrix64(2, 3), NewMatrix64(4, 5), 0, NewMatrix64(2, 5))
}

func TestGemm64NaiveOutputShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on output-shape mismatch")
		}
	}()
	Gemm64Naive(NoTrans, NoTrans, 1, NewMatrix64(2, 3), NewMatrix64(3, 5), 0, NewMatrix64(3, 5))
}
