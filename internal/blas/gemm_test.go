package blas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// gemmRef computes C = alpha·op(A)·op(B) + beta·C elementwise in float64,
// the independent oracle for all implementations.
func gemmRef(tA, tB Transpose, alpha float32, a, b *tensor.Matrix, beta float32, c *tensor.Matrix) *tensor.Matrix {
	m, k := opDims(a, tA)
	_, n := opDims(b, tB)
	out := tensor.NewMatrix(m, n)
	at := func(i, p int) float64 {
		if tA == Trans {
			return float64(a.At(p, i))
		}
		return float64(a.At(i, p))
	}
	bt := func(p, j int) float64 {
		if tB == Trans {
			return float64(b.At(j, p))
		}
		return float64(b.At(p, j))
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			out.Set(i, j, float32(float64(alpha)*s+float64(beta)*float64(c.At(i, j))))
		}
	}
	return out
}

func makeOperands(rng *rand.Rand, tA, tB Transpose, m, n, k int) (a, b, c *tensor.Matrix) {
	if tA == Trans {
		a = tensor.RandMatrix(rng, k, m, 1)
	} else {
		a = tensor.RandMatrix(rng, m, k, 1)
	}
	if tB == Trans {
		b = tensor.RandMatrix(rng, n, k, 1)
	} else {
		b = tensor.RandMatrix(rng, k, n, 1)
	}
	c = tensor.RandMatrix(rng, m, n, 1)
	return a, b, c
}

func checkImpl(t *testing.T, impl Impl, tA, tB Transpose, m, n, k int, alpha, beta float32) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000003 + n*1009 + k)))
	a, b, c := makeOperands(rng, tA, tB, m, n, k)
	want := gemmRef(tA, tB, alpha, a, b, beta, c)
	got := c.Clone()
	GemmWith(Config{Impl: impl, Threads: 3, MC: 24, KC: 16, NC: 20}, tA, tB, alpha, a, b, beta, got)
	tol := 1e-3 * float64(k+1)
	if !tensor.EqualApprox(got, want, tol) {
		t.Fatalf("impl=%d tA=%v tB=%v %dx%dx%d alpha=%v beta=%v: max diff %g",
			impl, tA, tB, m, n, k, alpha, beta, tensor.MaxAbsDiff(got, want))
	}
}

func TestGemmAllImplsAllTransposes(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {2, 3, 4}, {8, 4, 16}, {7, 5, 3}, {9, 13, 17},
		{16, 16, 16}, {33, 29, 31}, {64, 48, 40}, {1, 64, 64}, {64, 1, 64}, {64, 64, 1},
	}
	impls := []Impl{Naive, Blocked, Parallel}
	for _, impl := range impls {
		for _, tA := range []Transpose{NoTrans, Trans} {
			for _, tB := range []Transpose{NoTrans, Trans} {
				for _, s := range shapes {
					checkImpl(t, impl, tA, tB, s[0], s[1], s[2], 1, 0)
				}
			}
		}
	}
}

func TestGemmAlphaBeta(t *testing.T) {
	cases := []struct{ alpha, beta float32 }{
		{1, 1}, {2, 0}, {0.5, -1}, {0, 1}, {-1, 0.25}, {0, 0},
	}
	for _, impl := range []Impl{Naive, Blocked, Parallel} {
		for _, cse := range cases {
			checkImpl(t, impl, NoTrans, NoTrans, 19, 23, 29, cse.alpha, cse.beta)
			checkImpl(t, impl, Trans, Trans, 19, 23, 29, cse.alpha, cse.beta)
		}
	}
}

// Property: blocked and parallel results agree exactly with each other
// (deterministic accumulation order, independent of thread count).
func TestGemmDeterministicAcrossThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, b, c := makeOperands(rng, NoTrans, NoTrans, 61, 53, 47)
	ref := c.Clone()
	GemmWith(Config{Impl: Blocked, MC: 16, KC: 8, NC: 12}, NoTrans, NoTrans, 1, a, b, 1, ref)
	for threads := 1; threads <= 8; threads *= 2 {
		got := c.Clone()
		GemmWith(Config{Impl: Parallel, Threads: threads, MC: 16, KC: 8, NC: 12}, NoTrans, NoTrans, 1, a, b, 1, got)
		if tensor.MaxAbsDiff(got, ref) != 0 {
			t.Fatalf("threads=%d: parallel result differs from single-threaded", threads)
		}
	}
}

// Property: GEMM is linear in A: (A1+A2)B == A1·B + A2·B.
func TestGemmLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seedM, seedN, seedK uint8) bool {
		m, n, k := int(seedM%24)+1, int(seedN%24)+1, int(seedK%24)+1
		a1 := tensor.RandMatrix(rng, m, k, 1)
		a2 := tensor.RandMatrix(rng, m, k, 1)
		b := tensor.RandMatrix(rng, k, n, 1)
		sum := a1.Clone()
		for i := range sum.Data {
			sum.Data[i] += a2.Data[i]
		}
		c1 := tensor.NewMatrix(m, n)
		GemmWith(Config{Impl: Blocked, MC: 8, KC: 8, NC: 8}, NoTrans, NoTrans, 1, sum, b, 0, c1)
		c2 := tensor.NewMatrix(m, n)
		GemmWith(Config{Impl: Blocked, MC: 8, KC: 8, NC: 8}, NoTrans, NoTrans, 1, a1, b, 0, c2)
		GemmWith(Config{Impl: Blocked, MC: 8, KC: 8, NC: 8}, NoTrans, NoTrans, 1, a2, b, 1, c2)
		return tensor.EqualApprox(c1, c2, 1e-3*float64(k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: identity is a GEMM unit: I·B == B.
func TestGemmIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seedN uint8) bool {
		n := int(seedN%32) + 1
		id := tensor.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		b := tensor.RandMatrix(rng, n, n, 1)
		c := tensor.NewMatrix(n, n)
		Gemm(NoTrans, NoTrans, 1, id, b, 0, c)
		return tensor.EqualApprox(c, b, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmAutoDispatch(t *testing.T) {
	// Auto must give correct results both below and above the size cutoff.
	checkImpl(t, Auto, NoTrans, NoTrans, 4, 4, 4, 1, 0)
	checkImpl(t, Auto, NoTrans, Trans, 80, 80, 80, 1, 0.5)
}

func TestGemmDimensionMismatch(t *testing.T) {
	a := tensor.NewMatrix(2, 3)
	b := tensor.NewMatrix(4, 5) // inner dim mismatch
	c := tensor.NewMatrix(2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dimension mismatch")
		}
	}()
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
}

func TestGemmOutputShapeMismatch(t *testing.T) {
	a := tensor.NewMatrix(2, 3)
	b := tensor.NewMatrix(3, 5)
	c := tensor.NewMatrix(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on output shape mismatch")
		}
	}()
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
}

func TestGemmOnViews(t *testing.T) {
	// Operands with stride > cols (views) must work in every impl.
	rng := rand.New(rand.NewSource(13))
	big := tensor.RandMatrix(rng, 40, 40, 1)
	a := big.View(2, 3, 17, 11)
	b := big.View(5, 7, 11, 13)
	cBig := tensor.RandMatrix(rng, 30, 30, 1)
	c := cBig.View(1, 1, 17, 13)
	want := gemmRef(NoTrans, NoTrans, 1, a, b, 1, c)
	for _, impl := range []Impl{Naive, Blocked, Parallel} {
		cc := cBig.Clone().View(1, 1, 17, 13)
		GemmWith(Config{Impl: impl, MC: 8, KC: 8, NC: 8, Threads: 2}, NoTrans, NoTrans, 1, a, b, 1, cc)
		if !tensor.EqualApprox(cc, want, 1e-3) {
			t.Fatalf("impl %d wrong on views", impl)
		}
	}
}

func TestGemmEmpty(t *testing.T) {
	a := tensor.NewMatrix(0, 5)
	b := tensor.NewMatrix(5, 3)
	c := tensor.NewMatrix(0, 3)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c) // must not panic
	a2 := tensor.NewMatrix(3, 0)
	b2 := tensor.NewMatrix(0, 2)
	c2 := tensor.NewMatrix(3, 2)
	c2.Fill(7)
	Gemm(NoTrans, NoTrans, 1, a2, b2, 0, c2)
	if c2.At(0, 0) != 0 {
		t.Fatal("k=0 with beta=0 must zero C")
	}
}
