package blas

import (
	"sync"

	"repro/internal/tensor"
)

// Register-tile dimensions of the micro-kernel. The paper's BG/Q inner
// kernel updates an 8×8 C tile with QPX outer products; in portable Go an
// 8×4 tile keeps all 32 accumulators in registers on amd64/arm64.
const (
	mr = 8
	nr = 4
)

// gemmBlocked runs the packed, cache-blocked algorithm with the given
// number of worker goroutines cooperating on each packed B panel.
func gemmBlocked(cfg Config, tA, tB Transpose, alpha float32, a, b *tensor.Matrix, beta float32, c *tensor.Matrix, threads int) {
	m, k := opDims(a, tA)
	_, n := opDims(b, tB)
	scaleC(beta, c)
	// BLAS semantics: alpha=0 means "skip the product entirely", an exact
	// sentinel the caller sets literally, not a computed value.
	//lint:ignore floateq alpha==0 is the exact BLAS fast-path sentinel
	if m == 0 || n == 0 || k == 0 || alpha == 0 {
		return
	}

	mc, kc, nc := cfg.MC, cfg.KC, cfg.NC
	nWorkers := threads
	if blocks := (m + mc - 1) / mc; nWorkers > blocks {
		nWorkers = blocks
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	var abufs [][]float32
	var bbuf []float32
	if ws := cfg.Workspace; ws != nil && nWorkers == 1 {
		// Caller-owned panels: no per-call allocation once the workspace
		// has grown to the largest product it serves.
		abufs, bbuf = ws.panels(mc, kc, nc, m, k, n)
	} else {
		bbuf = make([]float32, kc*roundUp(nc, nr))
		abufs = make([][]float32, nWorkers)
		for w := range abufs {
			abufs[w] = make([]float32, roundUp(mc, mr)*kc)
		}
	}

	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packB(b, tB, pc, jc, kcb, ncb, bbuf)

			if nWorkers == 1 {
				for ic := 0; ic < m; ic += mc {
					mcb := min(mc, m-ic)
					packA(a, tA, ic, pc, mcb, kcb, abufs[0])
					macroKernel(abufs[0], bbuf, c, ic, jc, mcb, ncb, kcb, alpha)
				}
				continue
			}
			// The MC blocks of A are independent: fan them out across
			// workers that share the packed B panel, the analogue of the
			// paper's threads cooperating on a shared operand stream.
			var wg sync.WaitGroup
			blockCh := make(chan int)
			for w := 0; w < nWorkers; w++ {
				wg.Add(1)
				// Loop-varying state rides in as parameters, not captures:
				// a captured loop variable is heap-allocated per iteration,
				// which would charge the single-worker path (it shares this
				// loop) with allocations for goroutines it never launches.
				go func(abuf, bpanel []float32, pc, jc, kcb, ncb int) {
					defer wg.Done()
					for ic := range blockCh {
						mcb := min(mc, m-ic)
						packA(a, tA, ic, pc, mcb, kcb, abuf)
						macroKernel(abuf, bpanel, c, ic, jc, mcb, ncb, kcb, alpha)
					}
				}(abufs[w], bbuf, pc, jc, kcb, ncb)
			}
			for ic := 0; ic < m; ic += mc {
				blockCh <- ic
			}
			close(blockCh)
			wg.Wait()
		}
	}
}

// packBounds is the cold fail-fast for the geometry guards below: the
// guards are unreachable for well-formed matrices and pack buffers, and
// hoisting the panic keeps the hot bodies small enough to inline.
//
//go:noinline
func packBounds() {
	panic("blas: packed-panel geometry out of range")
}

// packA copies the mc×kc block of op(A) at (i0, p0) into panels of mr rows
// in k-major order, zero-padding the final partial panel. The packed
// layout guarantees stride-one access in the micro-kernel, the portable
// equivalent of the paper's reformatting of A for the L1P prefetch engine.
//
// Every loop is structured as a cursor advance behind a uint guard so
// the compiler's prove pass eliminates all per-element bounds checks;
// the bce gate (internal/lint/escape) keeps it that way.
//
//lint:hotpath
func packA(a *tensor.Matrix, tA Transpose, i0, p0, mc, kc int, buf []float32) {
	for ip := 0; ip < mc; ip += mr {
		rows := min(mr, mc-ip)
		po := (ip / mr) * kc * mr
		if uint(po) > uint(len(buf)) {
			packBounds()
			return
		}
		panel := buf[po:]
		if tA == NoTrans {
			for r := 0; r < rows; r++ {
				so := (i0+ip+r)*a.Stride + p0
				if uint(so) > uint(len(a.Data)) {
					packBounds()
					return
				}
				scatterMR(panel, r, a.Data[so:], kc)
			}
		} else {
			// op(A)[i][p] = A[p][i]: walk A rows (p) contiguously.
			so := p0*a.Stride + i0 + ip
			if uint(so) > uint(len(a.Data)) {
				packBounds()
				return
			}
			src := a.Data[so:]
			d := panel
			for p := 0; p < kc; p++ {
				if p > 0 {
					if uint(a.Stride) > uint(len(src)) || len(d) < mr {
						packBounds()
						return
					}
					src = src[a.Stride:]
					d = d[mr:]
				}
				if uint(rows) > uint(len(src)) || uint(rows) > uint(len(d)) {
					packBounds()
					return
				}
				copy(d[:rows], src[:rows])
			}
		}
		if rows < mr {
			padPanel(panel, rows, mr, kc)
		}
	}
}

// scatterMR stores n consecutive src elements into d at indices r,
// r+mr, r+2·mr, … — one column of a packed A panel. The strided store
// advances a cursor whose slice operations are all justified by the
// loop condition, so the body carries no bounds checks; the final
// element is stored outside the loop because the last cursor position
// may have fewer than mr elements left.
//
//lint:hotpath
func scatterMR(d []float32, r int, src []float32, n int) {
	if uint(r) >= uint(len(d)) {
		packBounds()
		return
	}
	d = d[r:]
	for n > 1 && len(d) >= mr && len(src) > 0 {
		d[0] = src[0]
		d = d[mr:]
		src = src[1:]
		n--
	}
	if n > 0 && len(d) > 0 && len(src) > 0 {
		d[0] = src[0]
	}
}

// padPanel zeroes entries lanes..width-1 of each of the n width-wide
// k-slices of a packed panel — the fringe of a partial tile. The
// countdown with an explicit j >= 0 bound keeps the stores check-free
// without knowing lanes' sign.
//
//lint:hotpath
func padPanel(d []float32, lanes, width, n int) {
	for ; n > 0 && len(d) >= width && width > 0; n-- {
		row := d[:width]
		// Simple down-counting induction (the lanes cut-off is a break, not
		// part of the condition) so prove recognizes 0 <= j < width.
		for j := width - 1; j >= 0; j-- {
			if j < lanes {
				break
			}
			row[j] = 0
		}
		d = d[width:]
	}
}

// packB copies the kc×nc block of op(B) at (p0, j0) into panels of nr
// columns in k-major order, zero-padding the final partial panel. Like
// packA it is written in the guarded-cursor style the bce gate locks in.
//
//lint:hotpath
func packB(b *tensor.Matrix, tB Transpose, p0, j0, kc, nc int, buf []float32) {
	for jp := 0; jp < nc; jp += nr {
		cols := min(nr, nc-jp)
		po := (jp / nr) * kc * nr
		if uint(po) > uint(len(buf)) {
			packBounds()
			return
		}
		panel := buf[po:]
		if tB == NoTrans {
			so := p0*b.Stride + j0 + jp
			if uint(so) > uint(len(b.Data)) {
				packBounds()
				return
			}
			src := b.Data[so:]
			d := panel
			for p := 0; p < kc; p++ {
				if p > 0 {
					if uint(b.Stride) > uint(len(src)) || len(d) < nr {
						packBounds()
						return
					}
					src = src[b.Stride:]
					d = d[nr:]
				}
				if uint(cols) > uint(len(src)) || uint(cols) > uint(len(d)) {
					packBounds()
					return
				}
				copy(d[:cols], src[:cols])
			}
		} else {
			// op(B)[p][j] = B[j][p]: walk B rows (j) contiguously.
			for j := 0; j < cols; j++ {
				so := (j0+jp+j)*b.Stride + p0
				if uint(so) > uint(len(b.Data)) {
					packBounds()
					return
				}
				scatterNR(panel, j, b.Data[so:], kc)
			}
		}
		if cols < nr {
			padPanel(panel, cols, nr, kc)
		}
	}
}

// scatterNR is scatterMR's nr-stride twin: it stores n consecutive src
// elements into d at indices j, j+nr, j+2·nr, … — one row of a packed
// B panel.
//
//lint:hotpath
func scatterNR(d []float32, j int, src []float32, n int) {
	if uint(j) >= uint(len(d)) {
		packBounds()
		return
	}
	d = d[j:]
	for n > 1 && len(d) >= nr && len(src) > 0 {
		d[0] = src[0]
		d = d[nr:]
		src = src[1:]
		n--
	}
	if n > 0 && len(d) > 0 && len(src) > 0 {
		d[0] = src[0]
	}
}

// macroKernel multiplies the packed mc×kc A block by the packed kc×nc B
// panel, accumulating alpha times the product into C at (ic, jc).
//
//lint:hotpath
func macroKernel(abuf, bbuf []float32, c *tensor.Matrix, ic, jc, mc, nc, kc int, alpha float32) {
	for jp := 0; jp < nc; jp += nr {
		cols := min(nr, nc-jp)
		bo := (jp / nr) * kc * nr
		if uint(bo) > uint(len(bbuf)) {
			packBounds()
			return
		}
		bpanel := bbuf[bo:]
		for ip := 0; ip < mc; ip += mr {
			rows := min(mr, mc-ip)
			ao := (ip / mr) * kc * mr
			coff := (ic+ip)*c.Stride + jc + jp
			if uint(ao) > uint(len(abuf)) || uint(coff) > uint(len(c.Data)) {
				packBounds()
				return
			}
			apanel := abuf[ao:]
			if rows == mr && cols == nr {
				microKernel8x4(kc, apanel, bpanel, c.Data[coff:], c.Stride, alpha)
			} else {
				microKernelEdge(kc, apanel, bpanel, c.Data[coff:], c.Stride, rows, cols, alpha)
			}
		}
	}
}

// microKernel8x4 is the register-blocked inner kernel: C8×4 += alpha·A8×kc·Bkc×4
// as a sequence of rank-1 updates over the packed panels, mirroring the
// paper's outer-product formulation. All 32 accumulators live in locals so
// the compiler can keep them in registers.
//
//lint:hotpath
func microKernel8x4(kc int, ap, bp []float32, c []float32, ldc int, alpha float32) {
	var (
		c00, c01, c02, c03 float32
		c10, c11, c12, c13 float32
		c20, c21, c22, c23 float32
		c30, c31, c32, c33 float32
		c40, c41, c42, c43 float32
		c50, c51, c52, c53 float32
		c60, c61, c62, c63 float32
		c70, c71, c72, c73 float32
	)
	for p := 0; p < kc; p++ {
		if len(ap) < mr || len(bp) < nr {
			packBounds()
			return
		}
		b := bp[:nr:nr]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a := ap[:mr:mr]
		a0, a1, a2, a3, a4, a5, a6, a7 := a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]
		ap = ap[mr:]
		bp = bp[nr:]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c40 += a4 * b0
		c41 += a4 * b1
		c42 += a4 * b2
		c43 += a4 * b3
		c50 += a5 * b0
		c51 += a5 * b1
		c52 += a5 * b2
		c53 += a5 * b3
		c60 += a6 * b0
		c61 += a6 * b1
		c62 += a6 * b2
		c63 += a6 * b3
		c70 += a7 * b0
		c71 += a7 * b1
		c72 += a7 * b2
		c73 += a7 * b3
	}
	c = storeRow4(c, alpha, c00, c01, c02, c03, ldc)
	c = storeRow4(c, alpha, c10, c11, c12, c13, ldc)
	c = storeRow4(c, alpha, c20, c21, c22, c23, ldc)
	c = storeRow4(c, alpha, c30, c31, c32, c33, ldc)
	c = storeRow4(c, alpha, c40, c41, c42, c43, ldc)
	c = storeRow4(c, alpha, c50, c51, c52, c53, ldc)
	c = storeRow4(c, alpha, c60, c61, c62, c63, ldc)
	// The final row advances by 0: C may end exactly at this tile's edge.
	storeRow4(c, alpha, c70, c71, c72, c73, 0)
}

// storeRow4 accumulates one nr-wide register row into the head of the C
// cursor and returns the cursor advanced by ldc to the next row. The
// single guard justifies both the window and the advance, so the stores
// carry no bounds checks.
//
//lint:hotpath
func storeRow4(c []float32, alpha, v0, v1, v2, v3 float32, ldc int) []float32 {
	if len(c) < nr || uint(ldc) > uint(len(c)) {
		packBounds()
		return nil
	}
	row := c[:nr:nr]
	row[0] += alpha * v0
	row[1] += alpha * v1
	row[2] += alpha * v2
	row[3] += alpha * v3
	return c[ldc:]
}

// microKernelEdge handles partial tiles at the matrix fringe. The packed
// panels are zero-padded, so it computes the full mr×nr product and writes
// back only the rows×cols region that exists in C. This is the "matrices
// with dimensions that do not lend themselves to full SIMDization" case
// the paper tunes for.
//
//lint:hotpath
func microKernelEdge(kc int, ap, bp []float32, c []float32, ldc, rows, cols int, alpha float32) {
	var acc [mr * nr]float32
	for p := 0; p < kc; p++ {
		if len(ap) < mr || len(bp) < nr {
			packBounds()
			return
		}
		b := bp[:nr:nr]
		a := ap[:mr:mr]
		ap = ap[mr:]
		bp = bp[nr:]
		for r := 0; r < mr; r++ {
			ar := a[r]
			acc[r*nr+0] += ar * b[0]
			acc[r*nr+1] += ar * b[1]
			acc[r*nr+2] += ar * b[2]
			acc[r*nr+3] += ar * b[3]
		}
	}
	// Write back only the rows×cols region that exists in C, walking an
	// accumulator cursor in lockstep with the C row cursor.
	av := acc[:]
	for r := 0; r < rows; r++ {
		if r > 0 {
			if uint(ldc) > uint(len(c)) || len(av) < 2*nr {
				packBounds()
				return
			}
			c = c[ldc:]
			av = av[nr:]
		}
		// Re-establish len(av) >= nr after the merge: prove loses the
		// loop-carried fact across the phi.
		if len(av) < nr {
			packBounds()
			return
		}
		arow := av[:nr:nr]
		for j := 0; j < cols && j < len(c) && j < nr; j++ {
			c[j] += alpha * arow[j]
		}
	}
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }
