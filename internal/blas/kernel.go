package blas

import (
	"sync"

	"repro/internal/tensor"
)

// Register-tile dimensions of the micro-kernel. The paper's BG/Q inner
// kernel updates an 8×8 C tile with QPX outer products; in portable Go an
// 8×4 tile keeps all 32 accumulators in registers on amd64/arm64.
const (
	mr = 8
	nr = 4
)

// gemmBlocked runs the packed, cache-blocked algorithm with the given
// number of worker goroutines cooperating on each packed B panel.
func gemmBlocked(cfg Config, tA, tB Transpose, alpha float32, a, b *tensor.Matrix, beta float32, c *tensor.Matrix, threads int) {
	m, k := opDims(a, tA)
	_, n := opDims(b, tB)
	scaleC(beta, c)
	// BLAS semantics: alpha=0 means "skip the product entirely", an exact
	// sentinel the caller sets literally, not a computed value.
	//lint:ignore floateq alpha==0 is the exact BLAS fast-path sentinel
	if m == 0 || n == 0 || k == 0 || alpha == 0 {
		return
	}

	mc, kc, nc := cfg.MC, cfg.KC, cfg.NC
	bbuf := make([]float32, kc*roundUp(nc, nr))
	nWorkers := threads
	if blocks := (m + mc - 1) / mc; nWorkers > blocks {
		nWorkers = blocks
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	abufs := make([][]float32, nWorkers)
	for w := range abufs {
		abufs[w] = make([]float32, roundUp(mc, mr)*kc)
	}

	for jc := 0; jc < n; jc += nc {
		ncb := min(nc, n-jc)
		for pc := 0; pc < k; pc += kc {
			kcb := min(kc, k-pc)
			packB(b, tB, pc, jc, kcb, ncb, bbuf)

			if nWorkers == 1 {
				for ic := 0; ic < m; ic += mc {
					mcb := min(mc, m-ic)
					packA(a, tA, ic, pc, mcb, kcb, abufs[0])
					macroKernel(abufs[0], bbuf, c, ic, jc, mcb, ncb, kcb, alpha)
				}
				continue
			}
			// The MC blocks of A are independent: fan them out across
			// workers that share the packed B panel, the analogue of the
			// paper's threads cooperating on a shared operand stream.
			var wg sync.WaitGroup
			blockCh := make(chan int)
			for w := 0; w < nWorkers; w++ {
				wg.Add(1)
				go func(abuf []float32) {
					defer wg.Done()
					for ic := range blockCh {
						mcb := min(mc, m-ic)
						packA(a, tA, ic, pc, mcb, kcb, abuf)
						macroKernel(abuf, bbuf, c, ic, jc, mcb, ncb, kcb, alpha)
					}
				}(abufs[w])
			}
			for ic := 0; ic < m; ic += mc {
				blockCh <- ic
			}
			close(blockCh)
			wg.Wait()
		}
	}
}

// packA copies the mc×kc block of op(A) at (i0, p0) into panels of mr rows
// in k-major order, zero-padding the final partial panel. The packed
// layout guarantees stride-one access in the micro-kernel, the portable
// equivalent of the paper's reformatting of A for the L1P prefetch engine.
//
//lint:hotpath
func packA(a *tensor.Matrix, tA Transpose, i0, p0, mc, kc int, buf []float32) {
	for ip := 0; ip < mc; ip += mr {
		rows := min(mr, mc-ip)
		panel := buf[(ip/mr)*kc*mr:]
		if tA == NoTrans {
			for r := 0; r < rows; r++ {
				src := a.Data[(i0+ip+r)*a.Stride+p0:]
				for p := 0; p < kc; p++ {
					panel[p*mr+r] = src[p]
				}
			}
		} else {
			// op(A)[i][p] = A[p][i]: walk A rows (p) contiguously.
			for p := 0; p < kc; p++ {
				src := a.Data[(p0+p)*a.Stride+i0+ip:]
				dst := panel[p*mr : p*mr+rows]
				copy(dst, src[:rows])
			}
		}
		if rows < mr {
			for p := 0; p < kc; p++ {
				for r := rows; r < mr; r++ {
					panel[p*mr+r] = 0
				}
			}
		}
	}
}

// packB copies the kc×nc block of op(B) at (p0, j0) into panels of nr
// columns in k-major order, zero-padding the final partial panel.
//
//lint:hotpath
func packB(b *tensor.Matrix, tB Transpose, p0, j0, kc, nc int, buf []float32) {
	for jp := 0; jp < nc; jp += nr {
		cols := min(nr, nc-jp)
		panel := buf[(jp/nr)*kc*nr:]
		if tB == NoTrans {
			for p := 0; p < kc; p++ {
				src := b.Data[(p0+p)*b.Stride+j0+jp:]
				dst := panel[p*nr : p*nr+cols]
				copy(dst, src[:cols])
			}
		} else {
			// op(B)[p][j] = B[j][p]: walk B rows (j) contiguously.
			for j := 0; j < cols; j++ {
				src := b.Data[(j0+jp+j)*b.Stride+p0:]
				for p := 0; p < kc; p++ {
					panel[p*nr+j] = src[p]
				}
			}
		}
		if cols < nr {
			for p := 0; p < kc; p++ {
				for j := cols; j < nr; j++ {
					panel[p*nr+j] = 0
				}
			}
		}
	}
}

// macroKernel multiplies the packed mc×kc A block by the packed kc×nc B
// panel, accumulating alpha times the product into C at (ic, jc).
//
//lint:hotpath
func macroKernel(abuf, bbuf []float32, c *tensor.Matrix, ic, jc, mc, nc, kc int, alpha float32) {
	for jp := 0; jp < nc; jp += nr {
		cols := min(nr, nc-jp)
		bpanel := bbuf[(jp/nr)*kc*nr:]
		for ip := 0; ip < mc; ip += mr {
			rows := min(mr, mc-ip)
			apanel := abuf[(ip/mr)*kc*mr:]
			coff := (ic+ip)*c.Stride + jc + jp
			if rows == mr && cols == nr {
				microKernel8x4(kc, apanel, bpanel, c.Data[coff:], c.Stride, alpha)
			} else {
				microKernelEdge(kc, apanel, bpanel, c.Data[coff:], c.Stride, rows, cols, alpha)
			}
		}
	}
}

// microKernel8x4 is the register-blocked inner kernel: C8×4 += alpha·A8×kc·Bkc×4
// as a sequence of rank-1 updates over the packed panels, mirroring the
// paper's outer-product formulation. All 32 accumulators live in locals so
// the compiler can keep them in registers.
//
//lint:hotpath
func microKernel8x4(kc int, ap, bp []float32, c []float32, ldc int, alpha float32) {
	var (
		c00, c01, c02, c03 float32
		c10, c11, c12, c13 float32
		c20, c21, c22, c23 float32
		c30, c31, c32, c33 float32
		c40, c41, c42, c43 float32
		c50, c51, c52, c53 float32
		c60, c61, c62, c63 float32
		c70, c71, c72, c73 float32
	)
	ap = ap[:kc*mr]
	bp = bp[:kc*nr]
	for p := 0; p < kc; p++ {
		b := bp[p*nr : p*nr+nr : p*nr+nr]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a := ap[p*mr : p*mr+mr : p*mr+mr]
		a0, a1, a2, a3, a4, a5, a6, a7 := a[0], a[1], a[2], a[3], a[4], a[5], a[6], a[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		c40 += a4 * b0
		c41 += a4 * b1
		c42 += a4 * b2
		c43 += a4 * b3
		c50 += a5 * b0
		c51 += a5 * b1
		c52 += a5 * b2
		c53 += a5 * b3
		c60 += a6 * b0
		c61 += a6 * b1
		c62 += a6 * b2
		c63 += a6 * b3
		c70 += a7 * b0
		c71 += a7 * b1
		c72 += a7 * b2
		c73 += a7 * b3
	}
	row := c[0*ldc : 0*ldc+nr]
	row[0] += alpha * c00
	row[1] += alpha * c01
	row[2] += alpha * c02
	row[3] += alpha * c03
	row = c[1*ldc : 1*ldc+nr]
	row[0] += alpha * c10
	row[1] += alpha * c11
	row[2] += alpha * c12
	row[3] += alpha * c13
	row = c[2*ldc : 2*ldc+nr]
	row[0] += alpha * c20
	row[1] += alpha * c21
	row[2] += alpha * c22
	row[3] += alpha * c23
	row = c[3*ldc : 3*ldc+nr]
	row[0] += alpha * c30
	row[1] += alpha * c31
	row[2] += alpha * c32
	row[3] += alpha * c33
	row = c[4*ldc : 4*ldc+nr]
	row[0] += alpha * c40
	row[1] += alpha * c41
	row[2] += alpha * c42
	row[3] += alpha * c43
	row = c[5*ldc : 5*ldc+nr]
	row[0] += alpha * c50
	row[1] += alpha * c51
	row[2] += alpha * c52
	row[3] += alpha * c53
	row = c[6*ldc : 6*ldc+nr]
	row[0] += alpha * c60
	row[1] += alpha * c61
	row[2] += alpha * c62
	row[3] += alpha * c63
	row = c[7*ldc : 7*ldc+nr]
	row[0] += alpha * c70
	row[1] += alpha * c71
	row[2] += alpha * c72
	row[3] += alpha * c73
}

// microKernelEdge handles partial tiles at the matrix fringe. The packed
// panels are zero-padded, so it computes the full mr×nr product and writes
// back only the rows×cols region that exists in C. This is the "matrices
// with dimensions that do not lend themselves to full SIMDization" case
// the paper tunes for.
//
//lint:hotpath
func microKernelEdge(kc int, ap, bp []float32, c []float32, ldc, rows, cols int, alpha float32) {
	var acc [mr * nr]float32
	for p := 0; p < kc; p++ {
		b := bp[p*nr : p*nr+nr]
		a := ap[p*mr : p*mr+mr]
		for r := 0; r < mr; r++ {
			ar := a[r]
			acc[r*nr+0] += ar * b[0]
			acc[r*nr+1] += ar * b[1]
			acc[r*nr+2] += ar * b[2]
			acc[r*nr+3] += ar * b[3]
		}
	}
	for r := 0; r < rows; r++ {
		for j := 0; j < cols; j++ {
			c[r*ldc+j] += alpha * acc[r*nr+j]
		}
	}
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }
