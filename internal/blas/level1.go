package blas

import (
	"fmt"
	"math"

	"repro/internal/check"
)

// Level-1 routines operate on raw float32 slices. They back the vector
// arithmetic of the CG loop and the elementwise stages of backpropagation.

// lenMismatch panics with the standard length-mismatch message. It
// exists so the hot-path guards below stay escape-free: fmt.Sprintf's
// argument pack heap-escapes, and hoisting the formatting into this
// never-inlined cold helper keeps the compiler-truth gate (internal/
// lint/escape) at zero escapes for the kernels themselves.
//
//go:noinline
func lenMismatch(op string, nx, ny int) {
	panic(fmt.Sprintf("blas: %s length mismatch %d vs %d", op, nx, ny))
}

// Axpy computes y += alpha*x.
//
// The loop runs inside the equal-length branch (here and in Dot and
// Axpby below) so the compiler's prove pass sees len(y) == len(x) on
// the hot path and drops the y[i] bounds check; the bce gate locks the
// kernels check-free.
//
//lint:shape x=n y=n
//lint:hotpath
func Axpy(alpha float32, x, y []float32) {
	if check.Enabled {
		check.Dims("blas.Axpy.y", len(y), len(x))
	}
	if len(x) == len(y) {
		for i, v := range x {
			y[i] += alpha * v
		}
		return
	}
	lenMismatch("Axpy", len(x), len(y))
}

// Dot returns xᵀy accumulated in float64; CG's α and β recurrences are
// sensitive to the accuracy of these reductions.
//
//lint:shape x=n y=n
//lint:hotpath
func Dot(x, y []float32) float64 {
	if check.Enabled {
		check.Dims("blas.Dot.y", len(y), len(x))
	}
	if len(x) == len(y) {
		var s float64
		for i, v := range x {
			s += float64(v) * float64(y[i])
		}
		return s
	}
	lenMismatch("Dot", len(x), len(y))
	return 0
}

// Scal computes x *= alpha.
//
//lint:hotpath
func Scal(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float32) float64 { return math.Sqrt(Dot(x, x)) }

// Asum returns the sum of absolute values of x.
func Asum(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(float64(v))
	}
	return s
}

// Copy copies x into y.
//
//lint:shape x=n y=n
func Copy(x, y []float32) {
	if check.Enabled {
		check.Dims("blas.Copy.y", len(y), len(x))
	}
	if len(x) != len(y) {
		lenMismatch("Copy", len(x), len(y))
	}
	copy(y, x)
}

// Axpby computes y = alpha*x + beta*y, the fused update used by the CG
// direction recurrence p = r + beta*p.
//
//lint:shape x=n y=n
//lint:hotpath
func Axpby(alpha float32, x []float32, beta float32, y []float32) {
	if check.Enabled {
		check.Dims("blas.Axpby.y", len(y), len(x))
	}
	if len(x) == len(y) {
		for i, v := range x {
			y[i] = alpha*v + beta*y[i]
		}
		return
	}
	lenMismatch("Axpby", len(x), len(y))
}
