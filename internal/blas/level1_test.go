package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestAxpy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Axpy(2, x, y)
	want := []float32{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestAxpyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpy(1, []float32{1}, []float32{1, 2})
}

func TestDotNrm2Asum(t *testing.T) {
	x := []float32{3, -4}
	if d := Dot(x, x); d != 25 {
		t.Fatalf("Dot = %v", d)
	}
	if n := Nrm2(x); math.Abs(n-5) > 1e-12 {
		t.Fatalf("Nrm2 = %v", n)
	}
	if a := Asum(x); a != 7 {
		t.Fatalf("Asum = %v", a)
	}
}

func TestDotMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestScal(t *testing.T) {
	x := []float32{1, -2}
	Scal(-3, x)
	if x[0] != -3 || x[1] != 6 {
		t.Fatalf("Scal wrong: %v", x)
	}
}

func TestCopy(t *testing.T) {
	x := []float32{1, 2}
	y := make([]float32, 2)
	Copy(x, y)
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("Copy wrong: %v", y)
	}
}

func TestCopyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Copy([]float32{1}, []float32{1, 2})
}

func TestAxpby(t *testing.T) {
	x := []float32{1, 2}
	y := []float32{10, 20}
	Axpby(2, x, 0.5, y)
	if y[0] != 7 || y[1] != 14 {
		t.Fatalf("Axpby wrong: %v", y)
	}
}

func TestAxpbyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpby(1, []float32{1}, 1, []float32{1, 2})
}

// Property: Axpby(a, x, b, y) == a*x + b*y computed elementwise.
func TestAxpbyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(n uint8, a, b float32) bool {
		if bad(a) || bad(b) {
			return true
		}
		k := int(n%32) + 1
		x := tensor.RandVector(rng, k, 1)
		y := tensor.RandVector(rng, k, 1)
		got := append([]float32(nil), y...)
		Axpby(a, x, b, got)
		for i := range got {
			want := a*x[i] + b*y[i]
			if math.Abs(float64(got[i]-want)) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot agrees with Cauchy-Schwarz: |x·y| <= ||x||·||y||.
func TestCauchySchwarzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(n uint8) bool {
		k := int(n%64) + 1
		x := tensor.RandVector(rng, k, 1)
		y := tensor.RandVector(rng, k, 1)
		return math.Abs(Dot(x, y)) <= Nrm2(x)*Nrm2(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func bad(f float32) bool {
	v := float64(f)
	return math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e3
}
