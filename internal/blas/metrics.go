package blas

import (
	"sync/atomic"

	"repro/internal/obs"
)

// ShapeClass buckets GEMM problems the way the paper's §V-A tuning
// discussion does: tiny problems that do not amortize packing, skinny
// problems ("dimensions that do not lend themselves to full
// SIMDization"), and large well-formed problems.
type ShapeClass int

const (
	// ShapeSmall has too few flops to amortize packing (the Auto
	// threshold that falls back to the Blocked path).
	ShapeSmall ShapeClass = iota
	// ShapeSkinny has at least one dimension under two register tiles.
	ShapeSkinny
	// ShapeLarge is everything else: the packed/parallel sweet spot.
	ShapeLarge
	numShapeClasses
)

// String returns the class label used in metric names and reports.
func (s ShapeClass) String() string {
	switch s {
	case ShapeSmall:
		return "small"
	case ShapeSkinny:
		return "skinny"
	case ShapeLarge:
		return "large"
	default:
		return "shape(?)"
	}
}

// ClassifyShape assigns an M×N×K GEMM to its shape class.
func ClassifyShape(m, n, k int) ShapeClass {
	flops := 2 * float64(m) * float64(n) * float64(k)
	if flops < 64*64*64*2 {
		return ShapeSmall
	}
	if m < 2*mr || n < 2*mr || k < 2*mr {
		return ShapeSkinny
	}
	return ShapeLarge
}

// gemmMetrics holds the pre-resolved instruments so the per-call cost
// when enabled is a few atomic adds, and when disabled a single atomic
// pointer load.
type gemmMetrics struct {
	calls *obs.Counter
	flops [numShapeClasses]*obs.Counter
	sizes *obs.Histogram
}

var metrics atomic.Pointer[gemmMetrics]

// EnableMetrics routes GEMM call counts and flop totals by shape class
// into the registry as "blas.gemm.calls", "blas.gemm.flops.<class>" and
// the per-call flop histogram "blas.gemm.flops_per_call". Instruments
// are resolved once here, so the Gemm hot path never touches the
// registry's lock.
func EnableMetrics(r *obs.Registry) {
	if r == nil {
		DisableMetrics()
		return
	}
	m := &gemmMetrics{
		calls: r.Counter("blas.gemm.calls"),
		sizes: r.Histogram("blas.gemm.flops_per_call"),
	}
	for c := ShapeClass(0); c < numShapeClasses; c++ {
		m.flops[c] = r.Counter("blas.gemm.flops." + c.String())
	}
	metrics.Store(m)
}

// DisableMetrics detaches GEMM instrumentation; subsequent calls pay
// only the nil pointer check.
func DisableMetrics() { metrics.Store(nil) }

// recordGemm notes one GEMM call; the caller has already checked that
// metrics are enabled.
func (gm *gemmMetrics) recordGemm(m, n, k int) {
	flops := 2 * int64(m) * int64(n) * int64(k)
	gm.calls.Inc()
	gm.flops[ClassifyShape(m, n, k)].Add(flops)
	gm.sizes.Observe(flops)
}
