package blas

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tensor"
)

func TestClassifyShape(t *testing.T) {
	cases := []struct {
		m, n, k int
		want    ShapeClass
	}{
		{8, 8, 8, ShapeSmall},
		{63, 63, 63, ShapeSmall},
		{128, 128, 8, ShapeSmall}, // skinny dims but too few flops: small wins
		{1024, 1024, 8, ShapeSkinny},
		{8, 1024, 1024, ShapeSkinny},
		{128, 128, 128, ShapeLarge},
	}
	for _, c := range cases {
		if got := ClassifyShape(c.m, c.n, c.k); got != c.want {
			t.Errorf("ClassifyShape(%d,%d,%d) = %v, want %v", c.m, c.n, c.k, got, c.want)
		}
	}
	for s := ShapeClass(0); s < numShapeClasses; s++ {
		if s.String() == "shape(?)" {
			t.Fatalf("class %d has no label", s)
		}
	}
}

func TestGemmMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	EnableMetrics(reg)
	defer DisableMetrics()

	a := tensor.NewMatrix(16, 16)
	b := tensor.NewMatrix(16, 16)
	c := tensor.NewMatrix(16, 16)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)

	if got := reg.Counter("blas.gemm.calls").Value(); got != 2 {
		t.Fatalf("gemm calls = %d, want 2", got)
	}
	wantFlops := int64(2 * 2 * 16 * 16 * 16)
	if got := reg.Counter("blas.gemm.flops.small").Value(); got != wantFlops {
		t.Fatalf("small flops = %d, want %d", got, wantFlops)
	}
	if got := reg.Histogram("blas.gemm.flops_per_call").Count(); got != 2 {
		t.Fatalf("flop histogram count = %d, want 2", got)
	}

	// float64 GEMM shares the same instruments.
	a64, b64, c64 := NewMatrix64(8, 8), NewMatrix64(8, 8), NewMatrix64(8, 8)
	Gemm64(NoTrans, NoTrans, 1, a64, b64, 0, c64)
	if got := reg.Counter("blas.gemm.calls").Value(); got != 3 {
		t.Fatalf("gemm calls after Gemm64 = %d, want 3", got)
	}

	DisableMetrics()
	Gemm(NoTrans, NoTrans, 1, a, b, 0, c)
	if got := reg.Counter("blas.gemm.calls").Value(); got != 3 {
		t.Fatalf("disabled metrics still recorded: calls = %d", got)
	}
}

// TestGemmMetricsDisabledNoExtraAllocs: with metrics disabled the
// instrumentation must add zero allocations to the GEMM path (the
// blocked kernel itself allocates its packing buffers; compare against
// that baseline by measuring the identical call).
func TestGemmMetricsDisabledNoExtraAllocs(t *testing.T) {
	DisableMetrics()
	a := tensor.NewMatrix(32, 32)
	b := tensor.NewMatrix(32, 32)
	c := tensor.NewMatrix(32, 32)
	cfg := Config{Impl: Naive}
	baseline := testing.AllocsPerRun(20, func() {
		gemmNaive(NoTrans, NoTrans, 1, a, b, 0, c)
	})
	instrumented := testing.AllocsPerRun(20, func() {
		GemmWith(cfg, NoTrans, NoTrans, 1, a, b, 0, c)
	})
	if instrumented > baseline {
		t.Fatalf("disabled metrics path allocates: %v > baseline %v", instrumented, baseline)
	}
}
