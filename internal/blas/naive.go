package blas

import "repro/internal/tensor"

// gemmNaive is the unblocked reference implementation. It is the oracle
// for the optimized kernels' tests and the baseline for the §V-A ablation
// benchmarks.
func gemmNaive(tA, tB Transpose, alpha float32, a, b *tensor.Matrix, beta float32, c *tensor.Matrix) {
	m, k := opDims(a, tA)
	_, n := opDims(b, tB)
	at := func(i, p int) float32 {
		if tA == Trans {
			return a.Data[p*a.Stride+i]
		}
		return a.Data[i*a.Stride+p]
	}
	bt := func(p, j int) float32 {
		if tB == Trans {
			return b.Data[j*b.Stride+p]
		}
		return b.Data[p*b.Stride+j]
	}
	for i := 0; i < m; i++ {
		crow := c.Data[i*c.Stride : i*c.Stride+n]
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += at(i, p) * bt(p, j)
			}
			crow[j] = alpha*s + beta*crow[j]
		}
	}
}
