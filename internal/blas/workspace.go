package blas

// Workspace holds the packing buffers the blocked GEMM normally
// allocates per call, so a caller with a steady stream of same-shaped
// products (the inference runtime's batched forward passes) can reuse
// them and keep its hot path off the allocator. A Workspace serves one
// goroutine: GemmWith only consults it on the single-worker blocked
// path, and two concurrent calls sharing one would race on the panels.
//
// The zero value is ready to use; panels grow to the largest product
// seen and then stay, so calls are allocation-free at steady state.
type Workspace struct {
	a, b []float32
	// apanels is the single-element per-worker panel table handed to
	// gemmBlocked, cached so steady-state calls reuse its backing array.
	apanels [][]float32
}

// panels returns the packed-A panel table (one worker) and packed-B
// panel for a blocked m×n×k product under block limits mc/kc/nc,
// growing the backing buffers if this product is the largest yet.
func (w *Workspace) panels(mc, kc, nc, m, k, n int) ([][]float32, []float32) {
	needA := roundUp(min(mc, m), mr) * min(kc, k)
	if cap(w.a) < needA {
		w.a = make([]float32, needA)
	}
	needB := min(kc, k) * roundUp(min(nc, n), nr)
	if cap(w.b) < needB {
		w.b = make([]float32, needB)
	}
	if len(w.apanels) != 1 {
		w.apanels = make([][]float32, 1)
	}
	w.apanels[0] = w.a[:needA]
	return w.apanels, w.b[:needB]
}
