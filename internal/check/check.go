// Package check provides runtime invariant checks for the numeric core:
// NaN/Inf scans over gradients and CG directions, and tensor shape
// assertions at the points where Algorithm 1 hands vectors between the
// master and the workers.
//
// The checks compile to no-ops unless the build carries the
// checkinvariants tag:
//
//	go test -tags checkinvariants ./...
//	go build -tags checkinvariants ./cmd/hftrain
//
// With the tag set, a violated invariant panics with the instrument name
// and the offending index/value — a NaN that leaks into a CG direction is
// broadcast to every rank and silently poisons the whole run (the
// second-order fragility Martens 2010 warns about), so the debug build
// fails loudly at the first handoff instead. Call sites on hot paths
// should gate on the Enabled constant so the disabled build spends
// nothing, not even argument evaluation:
//
//	if check.Enabled {
//		check.Finite("hf.cg.iterate", x)
//	}
package check

import "math"

// firstNonFinite returns the index of the first NaN or ±Inf element of x,
// or -1 when every element is finite. It is compiled unconditionally so
// the scan logic is testable without the build tag.
func firstNonFinite(x []float32) int {
	for i, v := range x {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return i
		}
	}
	return -1
}

// nonFinite reports whether v is NaN or ±Inf.
func nonFinite(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0)
}
