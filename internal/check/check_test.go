package check

import (
	"math"
	"testing"
)

func TestFirstNonFinite(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		name string
		x    []float32
		want int
	}{
		{"empty", nil, -1},
		{"finite", []float32{0, -1.5, 3e38}, -1},
		{"nan", []float32{1, nan, 2}, 1},
		{"posinf", []float32{inf}, 0},
		{"neginf", []float32{0, 0, -inf}, 2},
		{"first of several", []float32{nan, inf}, 0},
	}
	for _, c := range cases {
		if got := firstNonFinite(c.x); got != c.want {
			t.Errorf("%s: firstNonFinite = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestNonFinite(t *testing.T) {
	for v, want := range map[float64]bool{
		0:            false,
		-2.5:         false,
		math.NaN():   true,
		math.Inf(1):  true,
		math.Inf(-1): true,
	} {
		if got := nonFinite(v); got != want {
			t.Errorf("nonFinite(%v) = %v, want %v", v, got, want)
		}
	}
}
