//go:build !determinism

package check

// Replay reports whether fine-grained replay hashing is compiled in;
// without the determinism build tag the optimizer records only the
// per-iteration summary hashes (gradient, CG result, step, θ), which is
// enough for the replay gate to detect divergence — the tag narrows it
// to the exact CG application.
const Replay = false
