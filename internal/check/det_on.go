//go:build determinism

package check

// Replay reports whether fine-grained replay hashing is compiled in;
// this build has the determinism tag, so the HF optimizer additionally
// hashes every CG curvature application (direction and product), not
// just the per-iteration summaries. That pins divergence to the exact
// CG step at the cost of one hash pass per collective pair.
const Replay = true
