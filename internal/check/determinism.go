package check

// Determinism harness: FNV-1a hashing of the optimizer's float state so
// two runs with the same seed and shard plan can be diffed tensor by
// tensor. The HF optimizer records weights, gradients and CG iterates
// into a HashStream each outer iteration (per-CG-application granularity
// under the determinism build tag — see Replay); core.ReplayVerify runs
// a short train twice and reports the first divergent record. Hashing is
// always compiled (it is cheap and allocation-light); only the
// fine-grained CG recording is tag-gated.
//
// Wire format: one record per line,
//
//	iter=<n> tensor=<name> len=<len> fnv=<16-hex-digit hash>
//
// The hash covers the IEEE-754 bit patterns (float32 via
// math.Float32bits, float64 via math.Float64bits), so -0 vs +0 and
// differing NaN payloads — which compare equal or incomparably under
// float semantics — still count as divergence: the contract is
// bit-reproducibility, not approximate equality.

import (
	"fmt"
	"math"
	"sync"
)

// FNV-1a 64-bit parameters (hash/fnv re-implemented over float words so
// the hot loop stays allocation-free).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvWord folds one 64-bit word into an FNV-1a state byte by byte.
func fnvWord(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime64
		w >>= 8
	}
	return h
}

// HashF32 returns the FNV-1a hash of x's float32 bit patterns.
func HashF32(x []float32) uint64 {
	h := fnvOffset64
	for _, v := range x {
		h = fnvWord(h, uint64(math.Float32bits(v)))
	}
	return h
}

// HashF64 returns the FNV-1a hash of x's float64 bit patterns.
func HashF64(x []float64) uint64 {
	h := fnvOffset64
	for _, v := range x {
		h = fnvWord(h, math.Float64bits(v))
	}
	return h
}

// HashRecord is one hashed tensor observation.
type HashRecord struct {
	// Iter is the outer HF iteration the tensor belongs to.
	Iter int
	// Tensor names the quantity ("gradient", "cg_final", "theta", ...).
	Tensor string
	// Len is the element count (scalar groups hash as float64 slices).
	Len int
	// Hash is the FNV-1a hash of the element bit patterns.
	Hash uint64
}

// String renders the record in the replay wire format.
func (r HashRecord) String() string {
	return fmt.Sprintf("iter=%d tensor=%s len=%d fnv=%016x", r.Iter, r.Tensor, r.Len, r.Hash)
}

// HashStream collects hash records from one training run. A nil stream
// is a valid no-op sink, so instrumented code needs no nil checks. The
// mutex makes recording safe if hooks ever fire from multiple
// goroutines; within one run records are appended in program order,
// which is exactly the order replay comparison relies on.
type HashStream struct {
	mu   sync.Mutex
	recs []HashRecord
}

// RecordVec hashes a float32 vector into the stream; nil-safe.
func (s *HashStream) RecordVec(iter int, tensor string, x []float32) {
	if s == nil {
		return
	}
	rec := HashRecord{Iter: iter, Tensor: tensor, Len: len(x), Hash: HashF32(x)}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// RecordScalars hashes a group of float64 scalars into the stream;
// nil-safe.
func (s *HashStream) RecordScalars(iter int, tensor string, vs ...float64) {
	if s == nil {
		return
	}
	rec := HashRecord{Iter: iter, Tensor: tensor, Len: len(vs), Hash: HashF64(vs)}
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// Records returns a copy of the stream in recording order; nil-safe.
func (s *HashStream) Records() []HashRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HashRecord, len(s.recs))
	copy(out, s.recs)
	return out
}

// Len returns the number of records; nil-safe.
func (s *HashStream) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Divergence describes the first mismatch between two replay hash
// streams.
type Divergence struct {
	// Index is the position in the record streams.
	Index int
	// A and B are the records at Index (either may be zero-valued when
	// one stream is a prefix of the other).
	A, B HashRecord
}

// String renders the divergence with both wire-format records.
func (d Divergence) String() string {
	return fmt.Sprintf("record %d: run A {%s} != run B {%s}", d.Index, d.A, d.B)
}

// FirstDivergence compares two replay streams record by record and
// returns the first position where they disagree (different iteration,
// tensor, length or hash), or ok=false when the streams are identical.
func FirstDivergence(a, b []HashRecord) (d Divergence, ok bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return Divergence{Index: i, A: a[i], B: b[i]}, true
		}
	}
	if len(a) != len(b) {
		d = Divergence{Index: n}
		if n < len(a) {
			d.A = a[n]
		}
		if n < len(b) {
			d.B = b[n]
		}
		return d, true
	}
	return Divergence{}, false
}
