package check

import (
	"hash/fnv"
	"math"
	"strings"
	"testing"
)

// TestHashF32MatchesStdlibFNV pins the hand-rolled FNV-1a fold to the
// standard library implementation over the same byte stream.
func TestHashF32MatchesStdlibFNV(t *testing.T) {
	xs := []float32{0, 1, -1, 0.5, 3.14159, float32(math.Inf(1))}
	h := fnv.New64a()
	for _, v := range xs {
		bits := math.Float32bits(v)
		// fnvWord folds 64-bit words least-significant byte first, with
		// the float32 pattern zero-extended.
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(uint64(bits) >> (8 * i))
		}
		h.Write(buf[:])
	}
	if got, want := HashF32(xs), h.Sum64(); got != want {
		t.Errorf("HashF32 = %016x, stdlib fnv = %016x", got, want)
	}
}

// TestHashDistinguishesBitPatterns checks the contract is
// bit-reproducibility: -0 vs +0 must hash differently even though they
// compare equal as floats.
func TestHashDistinguishesBitPatterns(t *testing.T) {
	pos := []float32{0}
	neg := []float32{float32(math.Copysign(0, -1))}
	if HashF32(pos) == HashF32(neg) {
		t.Error("+0 and -0 hash identically; bit patterns must be distinguished")
	}
	if HashF64([]float64{1, 2}) == HashF64([]float64{2, 1}) {
		t.Error("element order must affect the hash")
	}
}

// TestHashStreamRecordsInOrder checks recording order, nil-safety and
// the wire format.
func TestHashStreamRecordsInOrder(t *testing.T) {
	var nilStream *HashStream
	nilStream.RecordVec(1, "gradient", []float32{1})
	nilStream.RecordScalars(1, "alpha", 0.5)
	if nilStream.Records() != nil || nilStream.Len() != 0 {
		t.Error("nil stream must be a no-op sink")
	}

	s := &HashStream{}
	s.RecordVec(1, "gradient", []float32{1, 2, 3})
	s.RecordScalars(1, "alpha", 0.5)
	s.RecordVec(2, "theta", []float32{4})
	recs := s.Records()
	if len(recs) != 3 || s.Len() != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Tensor != "gradient" || recs[0].Iter != 1 || recs[0].Len != 3 {
		t.Errorf("unexpected first record %+v", recs[0])
	}
	wire := recs[1].String()
	if !strings.HasPrefix(wire, "iter=1 tensor=alpha len=1 fnv=") || len(wire) != len("iter=1 tensor=alpha len=1 fnv=")+16 {
		t.Errorf("wire format %q does not match iter=N tensor=S len=N fnv=%%016x", wire)
	}
}

// TestFirstDivergence covers identical streams, a hash mismatch, and a
// length mismatch (one stream a strict prefix of the other).
func TestFirstDivergence(t *testing.T) {
	a := &HashStream{}
	b := &HashStream{}
	for _, s := range []*HashStream{a, b} {
		s.RecordVec(1, "gradient", []float32{1, 2})
		s.RecordVec(1, "theta", []float32{3})
	}
	if d, diverged := FirstDivergence(a.Records(), b.Records()); diverged {
		t.Fatalf("identical streams reported divergent: %s", d)
	}

	b.RecordVec(2, "gradient", []float32{5})
	d, diverged := FirstDivergence(a.Records(), b.Records())
	if !diverged || d.Index != 2 || d.B.Tensor != "gradient" {
		t.Fatalf("prefix divergence not detected: %+v diverged=%v", d, diverged)
	}

	a.RecordVec(2, "gradient", []float32{6})
	d, diverged = FirstDivergence(a.Records(), b.Records())
	if !diverged || d.Index != 2 || d.A.Hash == d.B.Hash {
		t.Fatalf("hash divergence not detected: %+v diverged=%v", d, diverged)
	}
	if !strings.Contains(d.String(), "iter=2 tensor=gradient") {
		t.Errorf("divergence rendering %q lacks the wire-format records", d)
	}
}
