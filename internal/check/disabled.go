//go:build !checkinvariants

package check

// Enabled reports whether invariant checks are compiled in; without the
// checkinvariants build tag every check below is an empty, inlinable
// no-op, and `if check.Enabled { ... }` blocks are eliminated entirely.
const Enabled = false

// Finite is a no-op in this build; see the checkinvariants tag.
func Finite(name string, x []float32) {}

// FiniteScalar is a no-op in this build; see the checkinvariants tag.
func FiniteScalar(name string, v float64) {}

// Dims is a no-op in this build; see the checkinvariants tag.
func Dims(name string, got, want int) {}

// Layout is a no-op in this build; see the checkinvariants tag.
func Layout(name string, rows, cols, wantRows, wantCols int) {}
