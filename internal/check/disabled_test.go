//go:build !checkinvariants

package check

import (
	"math"
	"testing"
)

// TestDisabledIsNoop pins the default build's contract: Enabled is a
// false constant (so `if check.Enabled` blocks are dead-code-eliminated)
// and every check accepts violating inputs without panicking.
func TestDisabledIsNoop(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the checkinvariants tag")
	}
	Finite("noop", []float32{float32(math.NaN())})
	FiniteScalar("noop", math.Inf(1))
	Dims("noop", 3, 7)
	Layout("noop", 2, 3, 4, 5)
}
