//go:build checkinvariants

package check

import "fmt"

// Enabled reports whether invariant checks are compiled in; this build
// has the checkinvariants tag, so violations panic.
const Enabled = true

// Finite panics if any element of x is NaN or ±Inf. name identifies the
// handoff point (e.g. "core.master.gradient") in the panic message.
func Finite(name string, x []float32) {
	if i := firstNonFinite(x); i >= 0 {
		panic(fmt.Sprintf("check: %s[%d] = %v is not finite (len %d)", name, i, x[i], len(x)))
	}
}

// FiniteScalar panics if v is NaN or ±Inf.
func FiniteScalar(name string, v float64) {
	if nonFinite(v) {
		panic(fmt.Sprintf("check: %s = %v is not finite", name, v))
	}
}

// Dims panics when got differs from want — the shape assertion guarding
// vector handoffs whose lengths must agree with the parameter dimension.
func Dims(name string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("check: %s has %d elements, want %d", name, got, want))
	}
}

// Layout panics when a matrix's dimensions differ from the expected
// shape — the two-dimensional sibling of Dims, mirroring the static
// //lint:shape contracts at run time.
func Layout(name string, rows, cols, wantRows, wantCols int) {
	if rows != wantRows || cols != wantCols {
		panic(fmt.Sprintf("check: %s is %d×%d, want %d×%d", name, rows, cols, wantRows, wantCols))
	}
}
