//go:build checkinvariants

package check

import (
	"math"
	"strings"
	"testing"
)

// mustPanic runs f and returns the panic message, failing the test if f
// returns normally.
func mustPanic(t *testing.T, f func()) string {
	t.Helper()
	defer func() { recover() }()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				msg = r.(string)
			}
		}()
		f()
	}()
	if msg == "" {
		t.Fatal("expected a panic")
	}
	return msg
}

func TestEnabledPanics(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the checkinvariants tag")
	}

	msg := mustPanic(t, func() {
		Finite("hf.gradient", []float32{1, float32(math.NaN()), 2})
	})
	for _, want := range []string{"hf.gradient", "[1]", "len 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Finite panic %q missing %q", msg, want)
		}
	}

	msg = mustPanic(t, func() { FiniteScalar("core.loss", math.Inf(-1)) })
	if !strings.Contains(msg, "core.loss") {
		t.Errorf("FiniteScalar panic %q missing instrument name", msg)
	}

	msg = mustPanic(t, func() { Dims("hf.direction", 4, 9) })
	for _, want := range []string{"hf.direction", "4", "9"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Dims panic %q missing %q", msg, want)
		}
	}

	msg = mustPanic(t, func() { Layout("blas.Gemm.c", 3, 5, 3, 6) })
	for _, want := range []string{"blas.Gemm.c", "3×5", "3×6"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Layout panic %q missing %q", msg, want)
		}
	}
}

func TestEnabledAcceptsValidInputs(t *testing.T) {
	Finite("ok", []float32{0, -1, 2.5})
	FiniteScalar("ok", 1e300)
	Dims("ok", 5, 5)
	Layout("ok", 4, 7, 4, 7)
}
