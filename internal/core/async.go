package core

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Asynchronous parameter-server SGD, the Dean et al. (NIPS 2012)
// "downpour" style of distributed training the paper's related work
// (§II-A) contrasts with synchronous second-order methods. The master is
// a parameter server applying gradient pushes as they arrive; workers
// compute minibatch gradients on stale parameters and refresh
// periodically. Unlike the bulk-synchronous HF trainer there are no
// collectives and no barriers — and, unlike HF, results depend on message
// arrival order, so runs are not bit-reproducible.

// Async protocol tags (point-to-point only).
const (
	tagAsyncGrad  = 9100 // worker → master: scaled minibatch gradient
	tagAsyncPull  = 9101 // worker → master: parameter request
	tagAsyncParam = 9102 // master → worker: current parameters
	tagAsyncDone  = 9103 // worker → master: finished (loss, frames)
	tagAsyncFinal = 9104 // master → worker: final parameters for evaluation
	tagAsyncEval  = 9105 // worker → master: held-out loss, frames, correct
)

// AsyncSGDConfig parameterizes asynchronous parameter-server training.
type AsyncSGDConfig struct {
	// LearningRate is the server-side step size. Default 0.1.
	LearningRate float64
	// BatchFrames is the worker minibatch size. Default 256.
	BatchFrames int
	// Epochs is the number of passes each worker makes over its shard.
	// Default 3.
	Epochs int
	// FetchEvery is how many minibatch pushes a worker performs between
	// parameter pulls — the staleness knob. Default 4.
	FetchEvery int
	// Seed shuffles worker minibatch order.
	Seed int64
}

func (c AsyncSGDConfig) filled() AsyncSGDConfig {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 256
	}
	if c.Epochs <= 0 {
		c.Epochs = 3
	}
	if c.FetchEvery <= 0 {
		c.FetchEvery = 4
	}
	return c
}

// AsyncResult reports an asynchronous training run.
type AsyncResult struct {
	Params          tensor.Vector
	Updates         int64   // gradient pushes applied by the server
	TrainLoss       float64 // mean per-frame training loss seen by workers
	HeldOutLoss     float64 // final held-out loss (evaluated by workers)
	HeldOutAccuracy float64
}

// RunAsyncMaster runs the parameter server on rank 0: it ships data
// shards, then serves pulls and applies pushes until every worker
// reports done, and finally has the workers evaluate the converged
// parameters on their held-out shards.
func RunAsyncMaster(comm *mpi.Comm, p Problem, cfg AsyncSGDConfig, part corpus.Partitioner) (*AsyncResult, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("core: RunAsyncMaster called on rank %d", comm.Rank())
	}
	if comm.Size() < 2 {
		return nil, fmt.Errorf("core: async training needs ≥2 ranks, have %d", comm.Size())
	}
	p = p.filled()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if part == nil {
		part = corpus.SortedGreedy{}
	}
	cfg = cfg.filled()
	if _, _, err := shipShards(comm, p, part); err != nil {
		return nil, err
	}

	net := nn.New(p.Topo)
	if p.InitParams != nil {
		net.SetParams(p.InitParams)
	} else {
		net.InitGlorot(p.InitRNG())
	}
	theta := net.Params
	grad := make(tensor.Vector, len(theta))

	workers := comm.Size() - 1
	done := 0
	res := &AsyncResult{}
	var trainLossSum, trainFrames float64
	comm.SetPhase("param_server")
	for done < workers {
		msg, err := comm.RecvBytes(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return nil, fmt.Errorf("core: parameter server: %w", err)
		}
		switch msg.Tag {
		case tagAsyncGrad:
			if err := decodeInto(msg.Data, grad); err != nil {
				return nil, err
			}
			// The worker pre-scales by lr/batch; the server just applies.
			theta.AddScaled(-1, grad)
			res.Updates++
		case tagAsyncPull:
			if err := comm.SendF32(msg.Src, tagAsyncParam, theta); err != nil {
				return nil, err
			}
		case tagAsyncDone:
			var stats [2]float64
			if err := decodeF64Pair(msg.Data, &stats); err != nil {
				return nil, err
			}
			trainLossSum += stats[0]
			trainFrames += stats[1]
			done++
		default:
			return nil, fmt.Errorf("core: parameter server: unexpected tag %d", msg.Tag)
		}
	}
	if trainFrames > 0 {
		res.TrainLoss = trainLossSum / trainFrames
	}

	// Final evaluation round: ship θ, collect held-out stats.
	comm.SetPhase("loss_eval")
	var loss, frames, correct float64
	for w := 1; w <= workers; w++ {
		if err := comm.SendF32(w, tagAsyncFinal, theta); err != nil {
			return nil, err
		}
	}
	for w := 1; w <= workers; w++ {
		msg, err := comm.RecvBytes(mpi.AnySource, tagAsyncEval)
		if err != nil {
			return nil, err
		}
		var stats [3]float64
		if err := decodeF64Triple(msg.Data, &stats); err != nil {
			return nil, err
		}
		loss += stats[0]
		frames += stats[1]
		correct += stats[2]
	}
	if frames > 0 {
		res.HeldOutLoss = loss / frames
		res.HeldOutAccuracy = correct / frames
	}
	res.Params = theta.Clone()
	return res, nil
}

// RunAsyncWorker runs the downpour worker loop on a non-zero rank:
// receive the shard, then repeatedly pull parameters, compute minibatch
// gradients, and push them without waiting for the server to apply them
// (nonblocking sends give computation/communication overlap).
func RunAsyncWorker(comm *mpi.Comm, cfg AsyncSGDConfig) error {
	if comm.Rank() == 0 {
		return fmt.Errorf("core: RunAsyncWorker called on rank 0")
	}
	cfg = cfg.filled()
	eng, _, err := recvShard(comm)
	if err != nil {
		return err
	}
	dim := eng.net.NumParams()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(comm.Rank())))

	pull := func() error {
		if err := comm.SendBytes(0, tagAsyncPull, nil); err != nil {
			return err
		}
		buf := make(tensor.Vector, dim)
		if _, err := comm.RecvF32(0, tagAsyncParam, buf); err != nil {
			return err
		}
		eng.setParams(buf)
		return nil
	}
	comm.SetPhase("train")
	if err := pull(); err != nil {
		return err
	}

	// Minibatch units over the local shard.
	var units [][2]int
	if eng.criterion == Sequence {
		units = eng.train.bounds
	} else {
		for lo := 0; lo < eng.train.frames(); lo += cfg.BatchFrames {
			hi := min(lo+cfg.BatchFrames, eng.train.frames())
			units = append(units, [2]int{lo, hi})
		}
	}

	grad := tensor.NewVector(dim)
	var lossSum float64
	var frames int
	steps := 0
	var pending *mpi.Request
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, ui := range rng.Perm(len(units)) {
			b := units[ui]
			rows := b[1] - b[0]
			grad.Zero()
			var loss float64
			if eng.criterion == Sequence {
				loss = eng.seqLossGrad(eng.train, b, grad)
			} else {
				x := eng.train.x.View(b[0], 0, rows, eng.train.x.Cols)
				loss, _ = eng.net.LossGrad(x, eng.train.y[b[0]:b[1]], grad)
			}
			lossSum += loss
			frames += rows
			// Pre-scale by lr/batch and push without blocking on the
			// server; also apply locally so progress continues on stale
			// parameters between pulls.
			//lint:ignore divguard batch units are built non-empty, so rows ≥ 1
			grad.Scale(float32(cfg.LearningRate / float64(rows)))
			eng.net.Params.AddScaled(-1, grad)
			if pending != nil {
				if _, err := pending.Wait(); err != nil {
					return err
				}
			}
			pending = comm.Isend(0, tagAsyncGrad, encodeVec(grad))
			steps++
			if steps%cfg.FetchEvery == 0 {
				if err := pull(); err != nil {
					return err
				}
			}
		}
	}
	if pending != nil {
		if _, err := pending.Wait(); err != nil {
			return err
		}
	}
	if err := comm.SendBytes(0, tagAsyncDone, encodeF64Pair(lossSum, float64(frames))); err != nil {
		return err
	}

	// Final evaluation on the server's converged parameters.
	comm.SetPhase("loss_eval")
	buf := make(tensor.Vector, dim)
	if _, err := comm.RecvF32(0, tagAsyncFinal, buf); err != nil {
		return err
	}
	eng.setParams(buf)
	loss, hframes := eng.heldLoss()
	correct, _ := eng.heldAccuracy()
	return comm.SendBytes(0, tagAsyncEval, encodeF64Triple(loss, float64(hframes), float64(correct)))
}

// TrainAsyncSGD runs the parameter server plus workers as goroutines over
// an in-process fabric (ranks includes the server).
func TrainAsyncSGD(p Problem, cfg AsyncSGDConfig, ranks int, part corpus.Partitioner) (*AsyncResult, error) {
	if ranks < 2 {
		return nil, fmt.Errorf("core: need ≥2 ranks, got %d", ranks)
	}
	fabric := mpi.NewInprocFabric(ranks)
	defer fabric.Close()
	workerErrs := make(chan error, ranks-1)
	for r := 1; r < ranks; r++ {
		go func(r int) {
			workerErrs <- RunAsyncWorker(mpi.NewComm(fabric.Transport(r)), cfg)
		}(r)
	}
	res, err := RunAsyncMaster(mpi.NewComm(fabric.Transport(0)), p, cfg, part)
	if err != nil {
		fabric.Close()
	}
	for r := 1; r < ranks; r++ {
		if werr := <-workerErrs; werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}
