package core

import (
	"math"
	"testing"
)

func TestAsyncSGDTrains(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	res, err := TrainAsyncSGD(p, AsyncSGDConfig{Epochs: 4, LearningRate: 0.3, BatchFrames: 64, Seed: 1}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("no gradient pushes applied")
	}
	if res.HeldOutLoss >= math.Log(6) {
		t.Fatalf("async SGD stayed at chance: %v", res.HeldOutLoss)
	}
	if res.HeldOutAccuracy < 0.3 {
		t.Fatalf("async SGD accuracy %v", res.HeldOutAccuracy)
	}
	if len(res.Params) != p.Topo.NumParams() {
		t.Fatalf("params length %d", len(res.Params))
	}
}

func TestAsyncSGDStalenessStillConverges(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	// Very stale parameters (pull rarely): training must still make
	// progress, the core robustness claim of asynchronous SGD.
	res, err := TrainAsyncSGD(p, AsyncSGDConfig{Epochs: 4, LearningRate: 0.2, BatchFrames: 64, FetchEvery: 32, Seed: 2}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeldOutLoss >= math.Log(6) {
		t.Fatalf("stale async SGD stayed at chance: %v", res.HeldOutLoss)
	}
}

func TestAsyncSGDMultipleWorkerCounts(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	for _, ranks := range []int{2, 5} {
		res, err := TrainAsyncSGD(p, AsyncSGDConfig{Epochs: 3, LearningRate: 0.3, BatchFrames: 64, Seed: 3}, ranks, nil)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res.HeldOutLoss >= math.Log(6) {
			t.Fatalf("ranks=%d: loss %v at chance", ranks, res.HeldOutLoss)
		}
	}
}

func TestAsyncSGDSequenceCriterion(t *testing.T) {
	p := testProblem(t, Sequence)
	res, err := TrainAsyncSGD(p, AsyncSGDConfig{Epochs: 2, LearningRate: 0.05, Seed: 4}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.HeldOutLoss) || res.HeldOutLoss > 10 {
		t.Fatalf("sequence async SGD diverged: %v", res.HeldOutLoss)
	}
}

func TestAsyncSGDBadRanks(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	if _, err := TrainAsyncSGD(p, AsyncSGDConfig{}, 1, nil); err == nil {
		t.Fatal("1 rank must fail")
	}
}

func TestAsyncMasterOnWorkerRankFails(t *testing.T) {
	// Direct API misuse must error cleanly.
	p := testProblem(t, CrossEntropy)
	fab := newTestFabric(2)
	defer fab.Close()
	if _, err := RunAsyncMaster(newTestComm(fab, 1), p, AsyncSGDConfig{}, nil); err == nil {
		t.Fatal("RunAsyncMaster on rank 1 must fail")
	}
	if err := RunAsyncWorker(newTestComm(fab, 0), AsyncSGDConfig{}); err == nil {
		t.Fatal("RunAsyncWorker on rank 0 must fail")
	}
}

func TestWireCodecs(t *testing.T) {
	v := encodeF64Pair(1.5, -2)
	var pair [2]float64
	if err := decodeF64Pair(v, &pair); err != nil || pair[0] != 1.5 || pair[1] != -2 {
		t.Fatalf("pair roundtrip: %v %v", pair, err)
	}
	if err := decodeF64Pair(v[:8], &pair); err == nil {
		t.Fatal("short pair accepted")
	}
	tr := encodeF64Triple(1, 2, 3)
	var triple [3]float64
	if err := decodeF64Triple(tr, &triple); err != nil || triple[2] != 3 {
		t.Fatalf("triple roundtrip: %v %v", triple, err)
	}
	if err := decodeF64Triple(tr[:16], &triple); err == nil {
		t.Fatal("short triple accepted")
	}
	vec := encodeVec([]float32{1, -2.5})
	out := make([]float32, 2)
	if err := decodeInto(vec, out); err != nil || out[1] != -2.5 {
		t.Fatalf("vec roundtrip: %v %v", out, err)
	}
	if err := decodeInto(vec, make([]float32, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
