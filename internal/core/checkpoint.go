package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// Checkpoint is a serializable snapshot of a trained model: enough to
// resume training or to deploy the network for inference. The paper's
// 20-40-iteration training runs over thousands of node-hours make
// checkpointing a practical necessity even though the paper does not
// discuss it.
type Checkpoint struct {
	// Sizes is the DNN topology.
	Sizes []int
	// Params is the flat parameter vector.
	Params tensor.Vector
	// Criterion records the training objective.
	Criterion Criterion
	// Trans is the sequence transition model (zero value for CE).
	Trans seq.Transitions
	// Iteration is the number of completed HF iterations.
	Iteration int
	// HeldOutLoss is the held-out loss at the checkpoint.
	HeldOutLoss float64
	// Lambda is the post-update HF damping after the checkpointed
	// iteration — what the next iteration starts from. The elastic
	// runtime resumes with it as Lambda0 after a rewind. Zero in
	// checkpoints written before it was recorded (old gob streams decode
	// it as zero), in which case resumes fall back to the configured
	// Lambda0.
	Lambda float64
	// Dir is the CG warm-start direction after the checkpointed
	// iteration (β·d_N on accept, zero on reject); with Params and
	// Lambda it completes the optimizer's cross-iteration state for an
	// exact resume. Nil in older checkpoints.
	Dir tensor.Vector
}

// checkpointMagic guards against decoding unrelated gob streams.
const checkpointMagic = "repro-hf-checkpoint-v1"

// Bounds a decoded checkpoint's declared topology must respect before
// anything trusts it: nn.NewTopology panics on non-positive sizes, and
// unbounded dimensions could overflow the parameter-count arithmetic.
// Both are far above any model this codebase trains.
const (
	maxCheckpointLayers = 1024
	maxCheckpointDim    = 1 << 20
)

// Validate checks the checkpoint's topology and parameter counts,
// returning an error (never panicking) on hostile or corrupt contents —
// the contract FuzzReadCheckpoint locks in. Consumers that rebuild a
// network from an untrusted checkpoint (ReadCheckpoint, serve.New) call
// it before touching nn.
func (ck *Checkpoint) Validate() error {
	if len(ck.Sizes) < 2 {
		return fmt.Errorf("core: checkpoint topology %v invalid", ck.Sizes)
	}
	if len(ck.Sizes)-1 > maxCheckpointLayers {
		return fmt.Errorf("core: checkpoint declares %d layers, limit %d", len(ck.Sizes)-1, maxCheckpointLayers)
	}
	for _, s := range ck.Sizes {
		if s <= 0 || s > maxCheckpointDim {
			return fmt.Errorf("core: checkpoint layer size %d outside [1, %d]", s, maxCheckpointDim)
		}
	}
	topo := nn.NewTopology(ck.Sizes...)
	if len(ck.Params) != topo.NumParams() {
		return fmt.Errorf("core: checkpoint has %d params, topology %v needs %d",
			len(ck.Params), ck.Sizes, topo.NumParams())
	}
	if ck.Dir != nil && len(ck.Dir) != topo.NumParams() {
		return fmt.Errorf("core: checkpoint warm-start direction has %d params, topology %v needs %d",
			len(ck.Dir), ck.Sizes, topo.NumParams())
	}
	return nil
}

// WriteCheckpoint serializes a checkpoint to w.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	topo := nn.NewTopology(ck.Sizes...)
	if len(ck.Params) != topo.NumParams() {
		return fmt.Errorf("core: checkpoint has %d params, topology %v needs %d",
			len(ck.Params), ck.Sizes, topo.NumParams())
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(checkpointMagic); err != nil {
		return fmt.Errorf("core: write checkpoint header: %w", err)
	}
	if err := enc.Encode(ck); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint from r and validates it.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	dec := gob.NewDecoder(r)
	var magic string
	if err := dec.Decode(&magic); err != nil {
		return nil, fmt.Errorf("core: read checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("core: not a checkpoint (header %q)", magic)
	}
	var ck Checkpoint
	if err := dec.Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return &ck, nil
}

// SaveCheckpoint writes a checkpoint to path atomically (write to a
// temporary file, then rename).
func SaveCheckpoint(path string, ck *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := WriteCheckpoint(bw, ck); err != nil {
		_ = f.Close() // best-effort cleanup; the write error is primary
		_ = os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(bufio.NewReader(f))
}

// NetworkFromCheckpoint reconstructs the trained network.
func NetworkFromCheckpoint(ck *Checkpoint) *nn.Network {
	net := nn.New(nn.NewTopology(ck.Sizes...))
	net.SetParams(ck.Params)
	return net
}
