package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func testCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	p := testProblem(t, CrossEntropy)
	obj, res, err := TrainSerialHF(p, fastHF())
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Sizes:       p.Topo.Sizes,
		Params:      obj.Params(),
		Criterion:   CrossEntropy,
		Iteration:   len(res.Iters),
		HeldOutLoss: res.FinalLoss,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := testCheckpoint(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != ck.Iteration || got.HeldOutLoss != ck.HeldOutLoss {
		t.Fatalf("metadata lost: %+v", got)
	}
	if !tensor.EqualApproxVec(got.Params, ck.Params, 0) {
		t.Fatal("parameters not bit-identical after roundtrip")
	}
	// The reconstructed network must predict identically.
	net := NetworkFromCheckpoint(got)
	if net.NumParams() != len(ck.Params) {
		t.Fatal("network reconstruction wrong")
	}
}

func TestCheckpointFileSaveLoad(t *testing.T) {
	ck := testCheckpoint(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApproxVec(got.Params, ck.Params, 0) {
		t.Fatal("file roundtrip lost parameters")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid gob stream with the wrong magic must also fail.
	var buf bytes.Buffer
	ck := &Checkpoint{Sizes: []int{2, 2}, Params: make(tensor.Vector, 2*2+2)}
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[10] ^= 0xFF // corrupt
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestCheckpointValidatesShape(t *testing.T) {
	bad := &Checkpoint{Sizes: []int{3, 2}, Params: make(tensor.Vector, 5)} // needs 3·2+2=8
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, bad); err == nil {
		t.Fatal("shape mismatch accepted on write")
	}
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Resuming from a checkpoint must continue improving from the saved loss.
func TestResumeFromCheckpoint(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 3
	obj, res, err := TrainSerialHF(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Sizes: p.Topo.Sizes, Params: obj.Params(), HeldOutLoss: res.FinalLoss}

	// Fresh objective, parameters restored from the checkpoint.
	obj2, err := NewSerialObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	obj2.SetParams(ck.Params)
	if l := obj2.HeldOutLoss(obj2.Params()); l != ck.HeldOutLoss {
		// Same data, same params → identical loss.
		t.Fatalf("restored loss %v != saved %v", l, ck.HeldOutLoss)
	}
}
