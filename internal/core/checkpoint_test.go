package core

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

func testCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	p := testProblem(t, CrossEntropy)
	obj, res, err := TrainSerialHF(p, fastHF())
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Sizes:       p.Topo.Sizes,
		Params:      obj.Params(),
		Criterion:   CrossEntropy,
		Iteration:   len(res.Iters),
		HeldOutLoss: res.FinalLoss,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := testCheckpoint(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != ck.Iteration || got.HeldOutLoss != ck.HeldOutLoss {
		t.Fatalf("metadata lost: %+v", got)
	}
	if !tensor.EqualApproxVec(got.Params, ck.Params, 0) {
		t.Fatal("parameters not bit-identical after roundtrip")
	}
	// The reconstructed network must predict identically.
	net := NetworkFromCheckpoint(got)
	if net.NumParams() != len(ck.Params) {
		t.Fatal("network reconstruction wrong")
	}
}

func TestCheckpointFileSaveLoad(t *testing.T) {
	ck := testCheckpoint(t)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApproxVec(got.Params, ck.Params, 0) {
		t.Fatal("file roundtrip lost parameters")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A valid gob stream with the wrong magic must also fail.
	var buf bytes.Buffer
	ck := &Checkpoint{Sizes: []int{2, 2}, Params: make(tensor.Vector, 2*2+2)}
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[10] ^= 0xFF // corrupt
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted checkpoint accepted")
	}
}

func TestCheckpointValidatesShape(t *testing.T) {
	bad := &Checkpoint{Sizes: []int{3, 2}, Params: make(tensor.Vector, 5)} // needs 3·2+2=8
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, bad); err == nil {
		t.Fatal("shape mismatch accepted on write")
	}
}

// encodeRawCheckpoint gob-encodes a checkpoint under the real magic
// WITHOUT WriteCheckpoint's validation, so tests can craft streams whose
// contents are well-formed gob but semantically hostile.
func encodeRawCheckpoint(t *testing.T, ck *Checkpoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(checkpointMagic); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(ck); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A truncated stream — cut anywhere, header or body — must surface as an
// error from ReadCheckpoint, never a panic or a half-decoded checkpoint.
func TestCheckpointTruncatedStream(t *testing.T) {
	ck := &Checkpoint{Sizes: []int{3, 4, 2}, Params: make(tensor.Vector, 3*4+4+4*2+2)}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for _, cut := range []int{0, 1, 5, 10, len(wire) / 2, len(wire) - 1} {
		if _, err := ReadCheckpoint(bytes.NewReader(wire[:cut])); err == nil {
			t.Errorf("stream truncated at %d/%d bytes accepted", cut, len(wire))
		}
	}
}

// Dimension lies a well-formed gob stream can tell: parameter vectors
// that disagree with the declared topology, non-positive layer sizes
// (which nn.NewTopology would panic on — ReadCheckpoint must error
// first), absurd dimensions, and a stale warm-start direction.
func TestCheckpointDimensionMismatch(t *testing.T) {
	cases := []struct {
		name string
		ck   *Checkpoint
	}{
		{"params short", &Checkpoint{Sizes: []int{3, 2}, Params: make(tensor.Vector, 5)}},
		{"params long", &Checkpoint{Sizes: []int{3, 2}, Params: make(tensor.Vector, 9)}},
		{"zero layer size", &Checkpoint{Sizes: []int{0, 5}, Params: make(tensor.Vector, 5)}},
		{"negative layer size", &Checkpoint{Sizes: []int{3, -2}, Params: nil}},
		{"one layer", &Checkpoint{Sizes: []int{7}, Params: make(tensor.Vector, 7)}},
		{"huge dimension", &Checkpoint{Sizes: []int{1 << 30, 2}, Params: nil}},
		{"dir mismatch", &Checkpoint{Sizes: []int{3, 2}, Params: make(tensor.Vector, 8), Dir: make(tensor.Vector, 3)}},
	}
	for _, tc := range cases {
		wire := encodeRawCheckpoint(t, tc.ck)
		ck, err := ReadCheckpoint(bytes.NewReader(wire))
		if err == nil {
			t.Errorf("%s: accepted as %+v", tc.name, ck)
		}
	}
}

// FuzzReadCheckpoint mirrors mpi's FuzzReadFrame for the checkpoint
// decoder: arbitrary byte streams must never panic it, and anything it
// accepts must satisfy the same Validate contract serve.New relies on.
func FuzzReadCheckpoint(f *testing.F) {
	valid := &Checkpoint{Sizes: []int{3, 4, 2}, Params: make(tensor.Vector, 3*4+4+4*2+2)}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, valid); err != nil {
		f.Fatal(err)
	}
	wire := buf.Bytes()
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint at all"))
	f.Add(wire)
	f.Add(wire[:len(wire)/2])
	flipped := append([]byte(nil), wire...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)
	var raw bytes.Buffer
	enc := gob.NewEncoder(&raw)
	if err := enc.Encode(checkpointMagic); err != nil {
		f.Fatal(err)
	}
	if err := enc.Encode(&Checkpoint{Sizes: []int{0, 1 << 30}}); err != nil {
		f.Fatal(err)
	}
	f.Add(raw.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := ck.Validate(); verr != nil {
			t.Fatalf("accepted checkpoint fails Validate: %v", verr)
		}
	})
}

func TestLoadCheckpointMissingFile(t *testing.T) {
	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Resuming from a checkpoint must continue improving from the saved loss.
func TestResumeFromCheckpoint(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 3
	obj, res, err := TrainSerialHF(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Sizes: p.Topo.Sizes, Params: obj.Params(), HeldOutLoss: res.FinalLoss}

	// Fresh objective, parameters restored from the checkpoint.
	obj2, err := NewSerialObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	obj2.SetParams(ck.Params)
	if l := obj2.HeldOutLoss(obj2.Params()); l != ck.HeldOutLoss {
		// Same data, same params → identical loss.
		t.Fatalf("restored loss %v != saved %v", l, ck.HeldOutLoss)
	}
}
