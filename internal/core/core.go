// Package core is the paper's primary contribution: data-parallel
// Hessian-free DNN training in a master/worker architecture over message
// passing (§IV).
//
// One master rank runs the Hessian-free optimizer (internal/hf) and
// coordinates workers; worker ranks hold disjoint shards of the training,
// curvature-sample and held-out data and compute gradients, Gauss-Newton
// products and losses data-parallel. All communication uses internal/mpi:
// weight and direction synchronization via broadcast, result combination
// via reduction, and initial data distribution via point-to-point sends —
// the same phase structure (load_data, sync_weights, gradient_loss,
// worker_curvature_product) whose costs the paper's Figures 2-5 break
// down.
//
// The same compute engine backs a serial objective, so the distributed
// and serial optimizers run literally the same algorithm — the basis for
// the paper's "no loss in accuracy" claim, verified by integration tests.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/nn"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// Criterion selects the training objective, the two rows of the paper's
// Table I.
type Criterion int

const (
	// CrossEntropy is frame-level softmax cross-entropy.
	CrossEntropy Criterion = iota
	// Sequence is the utterance-level sequence-discriminative criterion
	// (internal/seq), the stand-in for the paper's lattice-based
	// sequence training.
	Sequence
)

// String returns the criterion name used in reports.
func (c Criterion) String() string {
	switch c {
	case CrossEntropy:
		return "cross-entropy"
	case Sequence:
		return "sequence"
	default:
		return fmt.Sprintf("criterion(%d)", int(c))
	}
}

// Problem bundles everything that defines a training run.
type Problem struct {
	// Topo is the DNN topology; input must equal Train.InputDim() and
	// output Train.NumStates.
	Topo nn.Topology
	// Train and Heldout are the training and held-out utterance sets.
	Train   *corpus.Corpus
	Heldout *corpus.Corpus
	// Criterion selects cross-entropy or sequence training.
	Criterion Criterion
	// Trans is the transition model for the sequence criterion; zero value
	// means estimate from the training data.
	Trans seq.Transitions
	// SampleFraction is the share of training utterances drawn for each
	// curvature sample (the paper uses 1-3%). 1.0 uses all data, which
	// makes distributed and serial runs comparable exactly. Default 0.03.
	SampleFraction float64
	// BatchFrames is the compute chunk size in frames. Default 256.
	BatchFrames int
	// Seed drives weight initialization and curvature sampling.
	Seed int64
	// InitParams, when non-nil, initializes the network from this
	// parameter vector instead of a Glorot draw — e.g. sequence training
	// warm-started from a cross-entropy model, the standard practice.
	InitParams tensor.Vector
}

// InitRNG returns the problem's explicit random source for parameter
// initialization, derived from Seed in exactly one place. Every
// seed-dependent draw in the trainer flows from an explicit *rand.Rand
// like this one (the rngsource analyzer bans the global math/rand
// source in compute packages) — the precondition for ReplayVerify's
// "same config ⇒ same bits" contract.
func (p Problem) InitRNG() *rand.Rand {
	return rand.New(rand.NewSource(p.Seed))
}

func (p Problem) filled() Problem {
	if p.SampleFraction <= 0 {
		p.SampleFraction = 0.03
	}
	if p.BatchFrames <= 0 {
		p.BatchFrames = 256
	}
	if p.Criterion == Sequence && p.Trans.NumStates == 0 {
		p.Trans = seq.Estimate(p.Train.Utts, p.Train.NumStates)
	}
	return p
}

func (p Problem) validate() error {
	if p.Train == nil || p.Heldout == nil {
		return fmt.Errorf("core: Problem needs Train and Heldout corpora")
	}
	if p.Topo.InputDim() != p.Train.InputDim() {
		return fmt.Errorf("core: topology input %d != corpus input %d", p.Topo.InputDim(), p.Train.InputDim())
	}
	if p.Topo.OutputDim() != p.Train.NumStates {
		return fmt.Errorf("core: topology output %d != corpus states %d", p.Topo.OutputDim(), p.Train.NumStates)
	}
	if p.InitParams != nil && len(p.InitParams) != p.Topo.NumParams() {
		return fmt.Errorf("core: InitParams has %d elements, topology needs %d", len(p.InitParams), p.Topo.NumParams())
	}
	return nil
}
