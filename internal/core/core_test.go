package core

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testProblem builds a small, fast, learnable problem.
func testProblem(t *testing.T, criterion Criterion) Problem {
	t.Helper()
	c := corpus.Generate(corpus.Config{
		Seed:          11,
		NumUtterances: 30,
		MeanSeconds:   0.3,
		FeatDim:       8,
		Context:       1,
		NumStates:     6,
		NoiseStd:      0.35,
	})
	train, held := c.Split(5)
	return Problem{
		Topo:           nn.NewTopology(c.InputDim(), 16, 6),
		Train:          train,
		Heldout:        held,
		Criterion:      criterion,
		SampleFraction: 1.0, // full-data curvature: serial ≡ distributed
		Seed:           7,
	}
}

func fastHF() hf.Config {
	return hf.Config{
		MaxIterations: 5,
		Lambda0:       1,
		CG:            hf.CGOpts{MaxIters: 20, MinIters: 3},
	}
}

// trainDist is the tests' shorthand for a spawn-mode Session run.
func trainDist(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner, opts ...Option) (*MasterResult, error) {
	sess, err := NewSession(p, append([]Option{WithRanks(ranks), WithPartitioner(part)}, opts...)...)
	if err != nil {
		return nil, err
	}
	return sess.Run(cfg)
}

func TestSerialHFReducesCrossEntropyLoss(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	obj, err := NewSerialObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	initial := obj.HeldOutLoss(obj.Params())
	res := hf.Optimize(obj, fastHF())
	if res.FinalLoss >= initial {
		t.Fatalf("loss did not improve: %v → %v", initial, res.FinalLoss)
	}
	// ln(6) ≈ 1.79 is chance level; training should get clearly below it.
	if res.FinalLoss > 0.9*math.Log(6) {
		t.Fatalf("final loss %v too close to chance %v", res.FinalLoss, math.Log(6))
	}
	if acc := obj.HeldOutAccuracy(); acc < 0.4 {
		t.Fatalf("held-out accuracy %.3f, want > 0.4 (chance 0.167)", acc)
	}
}

func TestSerialHFSequenceCriterion(t *testing.T) {
	p := testProblem(t, Sequence)
	obj, err := NewSerialObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	initial := obj.HeldOutLoss(obj.Params())
	res := hf.Optimize(obj, fastHF())
	if res.FinalLoss >= initial {
		t.Fatalf("sequence loss did not improve: %v → %v", initial, res.FinalLoss)
	}
}

// The paper's central accuracy claim: data-parallel HF matches serial HF.
// With a full-data curvature sample the two runs execute the same
// algorithm, differing only in floating-point reduction order, so their
// loss trajectories must agree closely.
func TestDistributedMatchesSerialCrossEntropy(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	serialObj, serialRes, err := TrainSerialHF(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{2, 3, 5} {
		distRes, err := trainDist(p, cfg, ranks, nil)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(distRes.HF.Iters) != len(serialRes.Iters) {
			t.Fatalf("ranks=%d: %d iterations vs serial %d", ranks, len(distRes.HF.Iters), len(serialRes.Iters))
		}
		for i := range serialRes.Iters {
			s, d := serialRes.Iters[i], distRes.HF.Iters[i]
			if math.Abs(s.Loss-d.Loss) > 2e-3*(1+math.Abs(s.Loss)) {
				t.Fatalf("ranks=%d iter %d: serial loss %v vs distributed %v", ranks, i, s.Loss, d.Loss)
			}
		}
		if math.Abs(distRes.HF.FinalLoss-serialRes.FinalLoss) > 2e-3 {
			t.Fatalf("ranks=%d: final loss %v vs serial %v", ranks, distRes.HF.FinalLoss, serialRes.FinalLoss)
		}
		serialAcc := serialObj.HeldOutAccuracy()
		if math.Abs(distRes.HeldOutAccuracy-serialAcc) > 0.05 {
			t.Fatalf("ranks=%d: accuracy %v vs serial %v", ranks, distRes.HeldOutAccuracy, serialAcc)
		}
	}
}

func TestDistributedMatchesSerialSequence(t *testing.T) {
	p := testProblem(t, Sequence)
	cfg := fastHF()
	cfg.MaxIterations = 3
	_, serialRes, err := TrainSerialHF(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	distRes, err := trainDist(p, cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(distRes.HF.FinalLoss-serialRes.FinalLoss) > 5e-3*(1+math.Abs(serialRes.FinalLoss)) {
		t.Fatalf("sequence: distributed %v vs serial %v", distRes.HF.FinalLoss, serialRes.FinalLoss)
	}
}

func TestDistributedWorkerCountInvariance(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 3
	r2, err := trainDist(p, cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := trainDist(p, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.HF.FinalLoss-r4.HF.FinalLoss) > 2e-3 {
		t.Fatalf("2-rank %v vs 4-rank %v final loss", r2.HF.FinalLoss, r4.HF.FinalLoss)
	}
}

func TestDistributedWithRoundRobinPartitioner(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 2
	res, err := trainDist(p, cfg, 3, corpus.RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HF.Iters) == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestDistributedSampledCurvatureStillTrains(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	p.SampleFraction = 0.2
	res, err := trainDist(p, fastHF(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := res.HF.Iters[0].Loss
	if res.HF.FinalLoss > first {
		t.Fatalf("sampled-curvature run regressed: %v → %v", first, res.HF.FinalLoss)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	obj, res, err := TrainSGD(p, SGDConfig{Epochs: 3, LearningRate: 0.3, BatchFrames: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("%d epochs", len(res.Epochs))
	}
	if res.Epochs[2].HeldOutLoss >= res.Epochs[0].TrainLoss+0.5 {
		t.Fatalf("SGD diverged: %+v", res.Epochs)
	}
	if res.FinalLoss > math.Log(6) {
		t.Fatalf("SGD final loss %v above chance", res.FinalLoss)
	}
	if obj.HeldOutAccuracy() < 0.3 {
		t.Fatalf("SGD accuracy %v", obj.HeldOutAccuracy())
	}
}

func TestSGDSequenceCriterion(t *testing.T) {
	p := testProblem(t, Sequence)
	_, res, err := TrainSGD(p, SGDConfig{Epochs: 2, LearningRate: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[1].HeldOutLoss >= res.Epochs[0].HeldOutLoss+0.1 {
		t.Fatalf("sequence SGD regressed: %+v", res.Epochs)
	}
}

// engine-level checks.

func TestEngineGradientMatchesDirectComputation(t *testing.T) {
	p := testProblem(t, CrossEntropy).filled()
	eng := newEngine(p, p.Train.Utts, p.Heldout.Utts)
	eng.net.InitGlorot(newRand(3))
	grad := tensor.NewVector(eng.net.NumParams())
	loss, frames := eng.gradient(grad)
	if frames != p.Train.TotalFrames() {
		t.Fatalf("frames %d vs corpus %d", frames, p.Train.TotalFrames())
	}
	// Direct: one big LossGrad over the whole spliced set.
	x, y := corpus.SpliceFrames(p.Train.Utts, p.Train.FeatDim, p.Train.Context)
	grad2 := tensor.NewVector(eng.net.NumParams())
	loss2, _ := eng.net.LossGrad(x, y, grad2)
	if math.Abs(loss-loss2) > 1e-4*(1+math.Abs(loss2)) {
		t.Fatalf("chunked loss %v vs direct %v", loss, loss2)
	}
	if !tensor.EqualApproxVec(grad, grad2, 1e-2) {
		t.Fatal("chunked gradient differs from direct gradient")
	}
}

func TestEngineSequenceGradientFiniteDifferences(t *testing.T) {
	p := testProblem(t, Sequence).filled()
	// Tiny shard for FD affordability.
	utts := p.Train.Utts[:2]
	eng := newEngine(p, utts, utts)
	eng.net.InitGlorot(newRand(4))
	grad := tensor.NewVector(eng.net.NumParams())
	eng.gradient(grad)

	lossAt := func() float64 {
		var l float64
		for _, b := range eng.train.bounds {
			l += eng.seqLoss(eng.train, b)
		}
		return l
	}
	const eps = 1e-2
	rng := newRand(5)
	checked := 0
	for trial := 0; trial < 40 && checked < 15; trial++ {
		i := rng.Intn(eng.net.NumParams())
		orig := eng.net.Params[i]
		eng.net.Params[i] = orig + eps
		lp := lossAt()
		eng.net.Params[i] = orig - eps
		lm := lossAt()
		eng.net.Params[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd) < 1e-3 && math.Abs(float64(grad[i])) < 1e-3 {
			continue
		}
		rel := math.Abs(fd-float64(grad[i])) / (math.Abs(fd) + math.Abs(float64(grad[i])) + 1e-8)
		if rel > 0.1 {
			t.Fatalf("param %d: analytic %v vs FD %v", i, grad[i], fd)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d informative FD checks", checked)
	}
}

func TestEngineDrawSample(t *testing.T) {
	p := testProblem(t, CrossEntropy).filled()
	p.SampleFraction = 0.25
	eng := newEngine(p, p.Train.Utts, p.Heldout.Utts)
	eng.drawSample(1)
	want := int(float64(len(eng.train.bounds))*0.25 + 0.5)
	if len(eng.sample) != want {
		t.Fatalf("sample size %d, want %d", len(eng.sample), want)
	}
	frames := 0
	for _, b := range eng.sample {
		frames += b[1] - b[0]
	}
	if frames != eng.sampleFrames {
		t.Fatal("sampleFrames inconsistent")
	}
	// Deterministic per iteration, different across iterations.
	s1 := append([][2]int(nil), eng.sample...)
	eng.drawSample(1)
	for i := range s1 {
		if s1[i] != eng.sample[i] {
			t.Fatal("drawSample not deterministic")
		}
	}
	eng.drawSample(2)
	same := true
	for i := range s1 {
		if i >= len(eng.sample) || s1[i] != eng.sample[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different iterations should draw different samples")
	}
}

func TestEngineHeldLossAtRestoresParams(t *testing.T) {
	p := testProblem(t, CrossEntropy).filled()
	eng := newEngine(p, p.Train.Utts, p.Heldout.Utts)
	eng.net.InitGlorot(newRand(6))
	before := eng.net.Params.Clone()
	trial := before.Clone()
	trial.AddScaled(0.5, tensor.RandVector(newRand(7), len(trial), 1))
	eng.heldLossAt(trial)
	if !tensor.EqualApproxVec(before, eng.net.Params, 0) {
		t.Fatal("heldLossAt must restore parameters")
	}
}

func TestProblemValidation(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	bad := p
	bad.Topo = nn.NewTopology(5, 6) // wrong input dim
	if _, err := NewSerialObjective(bad); err == nil {
		t.Fatal("expected input-dim error")
	}
	bad2 := p
	bad2.Topo = nn.NewTopology(p.Train.InputDim(), 9) // wrong output dim
	if _, err := NewSerialObjective(bad2); err == nil {
		t.Fatal("expected output-dim error")
	}
	bad3 := p
	bad3.Train = nil
	if _, err := NewSerialObjective(bad3); err == nil {
		t.Fatal("expected missing-corpus error")
	}
}

func TestTrainDistributedBadRanks(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	if _, err := trainDist(p, fastHF(), 1, nil); err == nil {
		t.Fatal("expected error for 1 rank")
	}
}

func TestCriterionString(t *testing.T) {
	if CrossEntropy.String() != "cross-entropy" || Sequence.String() != "sequence" {
		t.Fatal("criterion names")
	}
	if Criterion(9).String() == "" {
		t.Fatal("unknown criterion must still render")
	}
}

// The preconditioner extension (deferred in the paper, §IV): serial and
// distributed preconditioned HF must agree and still train.
func TestPreconditionedHFSerialAndDistributed(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.UsePreconditioner = true
	serialObj, serialRes, err := TrainSerialHF(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serialRes.FinalLoss >= math.Log(6) {
		t.Fatalf("preconditioned HF did not train: %v", serialRes.FinalLoss)
	}
	_ = serialObj
	distRes, err := trainDist(p, cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(distRes.HF.FinalLoss-serialRes.FinalLoss) > 2e-3 {
		t.Fatalf("preconditioned distributed %v vs serial %v", distRes.HF.FinalLoss, serialRes.FinalLoss)
	}
}

// The preconditioner must reduce the CG iterations needed per HF
// iteration relative to the unpreconditioned run on the same problem.
func TestPreconditionerReducesCGWork(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	base := fastHF()
	base.CG.MaxIters = 60
	base.CG.StopTol = 1e-6
	base.MaxIterations = 3
	_, plain, err := TrainSerialHF(p, base)
	if err != nil {
		t.Fatal(err)
	}
	withPrec := base
	withPrec.UsePreconditioner = true
	_, prec, err := TrainSerialHF(p, withPrec)
	if err != nil {
		t.Fatal(err)
	}
	if prec.TotalCGIters > plain.TotalCGIters {
		t.Fatalf("preconditioner increased CG work: %d vs %d", prec.TotalCGIters, plain.TotalCGIters)
	}
}

func TestCurvatureDiagPositive(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	obj, err := NewSerialObjective(p)
	if err != nil {
		t.Fatal(err)
	}
	obj.NewCurvatureSample(1)
	diag := obj.CurvatureDiag(0.5)
	if len(diag) != obj.Dim() {
		t.Fatalf("diag length %d", len(diag))
	}
	for i, v := range diag {
		if v <= 0 {
			t.Fatalf("non-positive preconditioner entry %v at %d", v, i)
		}
	}
}

// Warm starting: sequence training initialized from a CE model (the
// standard pipeline) must start from and improve on the CE model's
// sequence loss, and a wrong-length InitParams must be rejected.
func TestInitParamsWarmStart(t *testing.T) {
	ceProb := testProblem(t, CrossEntropy)
	ceObj, _, err := TrainSerialHF(ceProb, fastHF())
	if err != nil {
		t.Fatal(err)
	}
	seqProb := testProblem(t, Sequence)
	seqProb.InitParams = ceObj.Params()

	warm, err := NewSerialObjective(seqProb)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSerialObjective(testProblem(t, Sequence))
	if err != nil {
		t.Fatal(err)
	}
	warmStart := warm.HeldOutLoss(warm.Params())
	coldStart := cold.HeldOutLoss(cold.Params())
	if warmStart >= coldStart {
		t.Fatalf("CE warm start (%v) should begin below a cold start (%v) on sequence loss", warmStart, coldStart)
	}
	res := hf.Optimize(warm, fastHF())
	if res.FinalLoss > warmStart {
		t.Fatalf("warm-started sequence training regressed: %v → %v", warmStart, res.FinalLoss)
	}

	bad := seqProb
	bad.InitParams = make(tensor.Vector, 3)
	if _, err := NewSerialObjective(bad); err == nil {
		t.Fatal("wrong-length InitParams accepted")
	}
}
