package core

// Deprecated entry points, kept one release as thin shims over the
// Session API. Each maps an old call shape onto NewSession + Run; none
// of them gains fault tolerance — pass WithFaults to NewSession for
// that. The repolint `deprecatedapi` analyzer flags any remaining call
// sites. Removal is scheduled for the release after next (see
// CHANGES.md).

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/obs"
)

// sessionRun is the common tail of every spawn-mode shim.
func sessionRun(p Problem, cfg hf.Config, opts ...Option) (*MasterResult, error) {
	sess, err := NewSession(p, opts...)
	if err != nil {
		return nil, err
	}
	return sess.Run(cfg)
}

// TrainDistributedHF runs master plus workers as goroutines over an
// in-process fabric (ranks includes the master).
//
// Deprecated: use NewSession(p, WithRanks(ranks),
// WithPartitioner(part)) and Run.
func TrainDistributedHF(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner) (*MasterResult, error) {
	return sessionRun(p, cfg, WithRanks(ranks), WithPartitioner(part))
}

// TrainDistributedHFObs is TrainDistributedHF with an observer.
//
// Deprecated: use NewSession(p, WithRanks(ranks), WithPartitioner(part),
// WithObserver(ob)) and Run.
func TrainDistributedHFObs(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner, ob *obs.Observer) (*MasterResult, error) {
	return sessionRun(p, cfg, WithRanks(ranks), WithPartitioner(part), WithObserver(ob))
}

// TrainDistributedHFChecked is TrainDistributedHFObs with the
// cross-rank collective-protocol checker enabled on every rank.
//
// Deprecated: use NewSession(p, WithRanks(ranks), WithPartitioner(part),
// WithObserver(ob), WithCheck(chk)) and Run.
func TrainDistributedHFChecked(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner, ob *obs.Observer, chk mpi.CheckConfig) (*MasterResult, error) {
	return sessionRun(p, cfg, WithRanks(ranks), WithPartitioner(part), WithObserver(ob), WithCheck(chk))
}

// TrainDistributedHFTCP runs the master and workers over a localhost
// TCP fabric inside one process.
//
// Deprecated: use NewSession(p, WithRanks(ranks),
// WithFabric(FabricTCP), WithPartitioner(part), WithObserver(ob)) and
// Run.
func TrainDistributedHFTCP(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner, ob *obs.Observer) (*MasterResult, error) {
	return sessionRun(p, cfg, WithRanks(ranks), WithFabric(FabricTCP), WithPartitioner(part), WithObserver(ob))
}

// TrainDistributedHFTCPChecked is TrainDistributedHFTCP with the
// collective-protocol checker enabled on every rank.
//
// Deprecated: use NewSession(p, WithRanks(ranks), WithFabric(FabricTCP),
// WithPartitioner(part), WithObserver(ob), WithCheck(chk)) and Run.
func TrainDistributedHFTCPChecked(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner, ob *obs.Observer, chk mpi.CheckConfig) (*MasterResult, error) {
	return sessionRun(p, cfg, WithRanks(ranks), WithFabric(FabricTCP), WithPartitioner(part), WithObserver(ob), WithCheck(chk))
}

// RunMaster drives a distributed HF training run on rank 0 of an
// externally built communicator.
//
// Deprecated: use NewSession(p, WithComm(comm), WithPartitioner(part))
// and Run.
func RunMaster(comm *mpi.Comm, p Problem, cfg hf.Config, part corpus.Partitioner) (*MasterResult, error) {
	return runMasterShim(comm, p, cfg, part, nil)
}

// RunMasterObs is RunMaster with an observer.
//
// Deprecated: use NewSession(p, WithComm(comm), WithPartitioner(part),
// WithObserver(ob)) and Run.
func RunMasterObs(comm *mpi.Comm, p Problem, cfg hf.Config, part corpus.Partitioner, ob *obs.Observer) (*MasterResult, error) {
	return runMasterShim(comm, p, cfg, part, ob)
}

// runMasterShim is shared by RunMaster and RunMasterObs — the shims must
// not call each other or the deprecatedapi analyzer would flag them.
func runMasterShim(comm *mpi.Comm, p Problem, cfg hf.Config, part corpus.Partitioner, ob *obs.Observer) (*MasterResult, error) {
	// Unlike attach-mode Run — which dispatches on rank — the legacy
	// contract is an error when called off rank 0.
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("core: master run on rank %d", comm.Rank())
	}
	sess, err := NewSession(p, WithComm(comm), WithPartitioner(part), WithObserver(ob))
	if err != nil {
		return nil, err
	}
	return sess.Run(cfg)
}

// RunWorker executes the worker command loop on a non-zero rank of an
// externally built communicator.
//
// Deprecated: use NewSession(p, WithComm(comm)) and Run; worker ranks
// return (nil, nil).
func RunWorker(comm *mpi.Comm) error {
	if comm.Rank() == 0 {
		return fmt.Errorf("core: worker run on rank 0")
	}
	return runWorker(comm, nil, nil)
}

// RunWorkerObs is RunWorker with an observer.
//
// Deprecated: use NewSession(p, WithComm(comm), WithObserver(ob)) and
// Run; worker ranks return (nil, nil).
func RunWorkerObs(comm *mpi.Comm, ob *obs.Observer) error {
	if comm.Rank() == 0 {
		return fmt.Errorf("core: worker run on rank 0")
	}
	// The worker loop needs no Problem; the shard arrives on the wire.
	// Bypass NewSession's master-side validation with the direct loop.
	return runWorker(comm, ob, nil)
}
