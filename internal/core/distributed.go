package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// Master/worker protocol: the master broadcasts a 2-element command
// [opcode, arg], then the per-op payload collectives follow. Workers loop
// on commands until opStop. Rank 0 is always the master.
const (
	opSetParams float32 = 1 + iota
	opGradient
	opSample
	opGNProduct
	opHeldLoss
	opAccuracy
	opFisherDiag
	opStop
	// opClockSync runs the telemetry clock-offset handshake: arg is the
	// ping round count; the pings themselves travel point-to-point on
	// mpi.TagClockSync (see internal/obs/telemetry).
	opClockSync
	// opTelemetry asks every worker to ship its drained span/metric
	// bundle to the master on mpi.TagTelemetry.
	opTelemetry
)

// tagShard carries the initial point-to-point data distribution
// (the paper's load_data phase).
const tagShard = 9000

// wireShard is the gob-encoded payload the master sends each worker
// during load_data: the worker's data shard plus everything needed to
// reconstruct its compute engine.
type wireShard struct {
	Sizes          []int // DNN topology
	Criterion      Criterion
	Trans          seq.Transitions
	SampleFraction float64
	BatchFrames    int
	Seed           int64
	FeatDim        int
	Context        int
	NumStates      int
	TrainUtts      []*corpus.Utterance
	HeldUtts       []*corpus.Utterance
}

// distObjective implements hf.Objective on the master by delegating all
// data-parallel computation to the workers. The master contributes zero
// vectors to reductions, mirroring the paper's coordinate-only master.
type distObjective struct {
	comm  *mpi.Comm
	dim   int
	theta tensor.Vector
	ob    *obs.Observer // nil disables spans; methods stay allocation-free
	err   error         // first communication error; surfaces at Err()
}

func (o *distObjective) fail(err error) {
	if err != nil && o.err == nil {
		o.err = err
	}
}

// Err returns the first communication error encountered, if any.
func (o *distObjective) Err() error { return o.err }

func (o *distObjective) cmd(op, arg float32) {
	o.fail(o.comm.Bcast(0, []float32{op, arg}))
}

// Dim implements hf.Objective.
func (o *distObjective) Dim() int { return o.dim }

// Params implements hf.Objective.
func (o *distObjective) Params() tensor.Vector { return o.theta.Clone() }

// SetParams implements hf.Objective: synchronizes θ to all workers via
// broadcast, the §V-B sync_weights path.
func (o *distObjective) SetParams(p tensor.Vector) {
	defer o.ob.Span(0, "sync_weights").End()
	if check.Enabled {
		// θ is about to be broadcast to every worker; a non-finite
		// parameter here corrupts all subsequent shard computations.
		check.Dims("core.master.params", len(p), o.dim)
		check.Finite("core.master.params", p)
	}
	copy(o.theta, p)
	o.comm.SetPhase("sync_weights")
	o.cmd(opSetParams, 0)
	o.fail(o.comm.Bcast(0, o.theta))
}

// Gradient implements hf.Objective: workers compute shard gradients; a
// tree reduction combines them at the master.
func (o *distObjective) Gradient() tensor.Vector {
	defer o.ob.Span(0, "gradient_loss").End()
	o.comm.SetPhase("gradient_loss")
	o.cmd(opGradient, 0)
	grad := tensor.NewVector(o.dim)
	o.fail(o.comm.Reduce(0, mpi.OpSum, grad))
	stats := []float64{0, 0}
	o.fail(o.comm.ReduceF64(0, mpi.OpSum, stats))
	if stats[1] > 0 {
		grad.Scale(float32(1 / stats[1]))
	}
	if check.Enabled {
		// The reduced gradient is what Algorithm 1 hands to CG.
		check.Finite("core.master.gradient", grad)
		check.FiniteScalar("core.master.train_loss_sum", stats[0])
	}
	return grad
}

// NewCurvatureSample implements hf.Objective.
func (o *distObjective) NewCurvatureSample(iter int) {
	o.comm.SetPhase("cg_minimize")
	o.cmd(opSample, float32(iter))
}

// GNProduct implements hf.Objective: broadcast the direction, reduce the
// per-shard Gauss-Newton products — the two collectives per CG iteration
// that dominate worker MPI time in the paper's Figure 5.
func (o *distObjective) GNProduct(v, out tensor.Vector) {
	defer o.ob.Span(0, "cg_minimize").End()
	o.comm.SetPhase("cg_minimize")
	o.cmd(opGNProduct, 0)
	if check.Enabled {
		check.Dims("core.master.cg_direction", len(v), o.dim)
		check.Finite("core.master.cg_direction", v)
	}
	o.fail(o.comm.Bcast(0, v))
	out.Zero()
	o.fail(o.comm.Reduce(0, mpi.OpSum, out))
	stats := []float64{0}
	o.fail(o.comm.ReduceF64(0, mpi.OpSum, stats))
	if stats[0] > 0 {
		out.Scale(float32(1 / stats[0]))
	}
	if check.Enabled {
		// The reduced Gauss-Newton product feeds the CG α recurrence.
		check.Finite("core.master.gnproduct", out)
	}
}

// HeldOutLoss implements hf.Objective.
func (o *distObjective) HeldOutLoss(p tensor.Vector) float64 {
	defer o.ob.Span(0, "loss_eval").End()
	o.comm.SetPhase("loss_eval")
	o.cmd(opHeldLoss, 0)
	o.fail(o.comm.Bcast(0, p))
	stats := []float64{0, 0}
	o.fail(o.comm.ReduceF64(0, mpi.OpSum, stats))
	if stats[1] <= 0 {
		return 0
	}
	return stats[0] / stats[1]
}

// CurvatureDiag implements hf.Preconditioned for the distributed
// objective: workers sum their shard's Fisher diagonals over the current
// curvature sample; the master normalizes and applies the Martens
// exponent.
func (o *distObjective) CurvatureDiag(lambda float64) tensor.Vector {
	defer o.ob.Span(0, "cg_minimize").End()
	o.comm.SetPhase("cg_minimize")
	o.cmd(opFisherDiag, 0)
	diag := tensor.NewVector(o.dim)
	o.fail(o.comm.Reduce(0, mpi.OpSum, diag))
	stats := []float64{0}
	o.fail(o.comm.ReduceF64(0, mpi.OpSum, stats))
	frames := int(stats[0])
	if frames < 1 {
		frames = 1
	}
	return finishPreconditioner(diag, frames, lambda)
}

// heldOutAccuracy gathers frame accuracy at the current parameters.
func (o *distObjective) heldOutAccuracy() float64 {
	defer o.ob.Span(0, "loss_eval").End()
	o.comm.SetPhase("loss_eval")
	o.cmd(opAccuracy, 0)
	stats := []float64{0, 0}
	o.fail(o.comm.ReduceF64(0, mpi.OpSum, stats))
	if stats[1] <= 0 {
		return 0
	}
	return stats[0] / stats[1]
}

// stop terminates the worker loops.
func (o *distObjective) stop() {
	o.comm.SetPhase("shutdown")
	o.cmd(opStop, 0)
}

// MasterResult reports a distributed training run.
type MasterResult struct {
	// Params is the final trained parameter vector.
	Params tensor.Vector
	// HF is the optimizer trace.
	HF hf.Result
	// HeldOutAccuracy is final frame accuracy on the held-out set.
	HeldOutAccuracy float64
	// MPIProfile is the master rank's per-phase communication snapshot.
	MPIProfile []mpi.PhaseStat
	// Fault is the elastic runtime's eviction/rewind record; nil when the
	// run used the classic (non-fault-tolerant) collective protocol.
	Fault *FaultReport
}

// syncWorkerClocks runs the telemetry clock-offset handshake over the
// classic protocol: one opClockSync broadcast arms every worker's
// ServeClockSync loop, then each worker is pinged in turn and its
// measured offset recorded in the merger. Best-effort: a failed
// handshake leaves that rank's offset at zero and logs an event.
func syncWorkerClocks(comm *mpi.Comm, obj *distObjective, plane *telemetry.Plane, ob *obs.Observer) {
	tcfg := plane.Config()
	comm.SetPhase("telemetry")
	obj.cmd(opClockSync, float32(tcfg.ClockSyncRounds))
	for w := 1; w < comm.Size(); w++ {
		offset, rtt, err := telemetry.SyncClocks(comm, w, tcfg.ClockSyncRounds, tcfg.Deadline)
		if err != nil {
			ob.Eventf(0, "telemetry: clock sync with rank %d: %v", w, err)
			continue
		}
		plane.Merger().SetOffset(w, offset)
		if reg := ob.Registry(); reg != nil {
			reg.Histogram("telemetry.clock_rtt_ns").Observe(rtt.Nanoseconds())
		}
	}
}

// collectTelemetry asks every worker for its drained telemetry bundle
// (one opTelemetry broadcast, one point-to-point shipment back per
// worker) and folds the shipments plus the master's own drained
// observer into the merger. Runs at iteration boundaries — off the
// collective critical path — and is best-effort: failures are logged,
// never fatal.
func collectTelemetry(comm *mpi.Comm, obj *distObjective, plane *telemetry.Plane, local *telemetry.Shipper, ob *obs.Observer) {
	start := time.Now()
	defer func() {
		if reg := ob.Registry(); reg != nil {
			reg.Histogram("telemetry.collect_ns").Observe(time.Since(start).Nanoseconds())
		}
	}()
	tcfg := plane.Config()
	comm.SetPhase("telemetry")
	obj.cmd(opTelemetry, 0)
	for w := 1; w < comm.Size(); w++ {
		msg, err := comm.RecvBytesTimeout(w, mpi.TagTelemetry, tcfg.Deadline)
		if err != nil {
			ob.Eventf(0, "telemetry: collect from rank %d: %v", w, err)
			continue
		}
		b, err := telemetry.DecodeBundle(msg.Data)
		if err != nil {
			ob.Eventf(0, "telemetry: decode from rank %d: %v", w, err)
			continue
		}
		plane.Merger().Ingest(b)
	}
	plane.Merger().Ingest(local.Bundle())
}

// runMaster drives a distributed HF training run from rank 0 over the
// classic collective protocol: it partitions the data, ships shards to
// workers (load_data), runs the HF optimizer with all heavy computation
// delegated to the workers, and shuts the workers down. part defaults to
// the paper's sorted-greedy equal-frame partitioner. A non-nil observer
// adds phase spans on rank 0, per-collective metrics routed through the
// communicator, and a per-iteration wall-time histogram
// ("core.hf.iter_wall_ns"). A non-nil telemetry plane additionally runs
// the clock-offset handshake at start and collects every rank's
// span/metric bundles at iteration boundaries into the plane's merger.
// Entry point: Session.Run.
func runMaster(comm *mpi.Comm, p Problem, cfg hf.Config, part corpus.Partitioner, ob *obs.Observer, plane *telemetry.Plane) (*MasterResult, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("core: master run on rank %d", comm.Rank())
	}
	if comm.Size() < 2 {
		return nil, fmt.Errorf("core: distributed training needs ≥2 ranks, have %d", comm.Size())
	}
	p = p.filled()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if part == nil {
		part = corpus.SortedGreedy{}
	}
	comm.SetMetrics(ob.Registry())

	// load_data: partition utterances over workers and ship each shard
	// point-to-point, the master-serialized phase of Figures 2/4.
	sp := ob.Span(0, "load_data")
	_, _, err := shipShards(comm, p, part)
	sp.End()
	if err != nil {
		return nil, err
	}

	// The master owns θ; workers receive it by broadcast.
	net := nn.New(p.Topo)
	if p.InitParams != nil {
		net.SetParams(p.InitParams)
	} else {
		net.InitGlorot(p.InitRNG())
	}
	obj := &distObjective{comm: comm, dim: net.NumParams(), theta: net.Params.Clone(), ob: ob}

	var local *telemetry.Shipper
	if plane != nil {
		local = telemetry.NewShipper(0, ob)
		plane.Merger().BindLocal(0, ob.Registry())
		plane.Health().SetState("training")
		for w := 1; w < comm.Size(); w++ {
			plane.Health().SetWorker(w, telemetry.WorkerLive)
		}
		syncWorkerClocks(comm, obj, plane, ob)
	}
	obj.SetParams(obj.theta)

	var iterWall *obs.Histogram
	if reg := ob.Registry(); reg != nil {
		// Epoch accounting: the wall time of each outer HF iteration,
		// observed from the telemetry hook (chained, not replaced).
		iterWall = reg.Histogram("core.hf.iter_wall_ns")
	}
	if iterWall != nil || plane != nil {
		prev := cfg.Telemetry
		last := time.Now()
		flushEvery := plane.Config().FlushEvery
		cfg.Telemetry = func(s hf.IterStats) {
			now := time.Now()
			iterWall.Observe(now.Sub(last).Nanoseconds())
			last = now
			if plane != nil {
				plane.Health().SetProgress(s.Iter, s.Loss)
				if flushEvery > 0 && s.Iter%flushEvery == 0 {
					collectTelemetry(comm, obj, plane, local, ob)
				}
			}
			if prev != nil {
				prev(s)
			}
		}
	}

	res := hf.Optimize(obj, cfg)
	acc := obj.heldOutAccuracy()
	if plane != nil {
		// Final flush while the workers are still in their command loop,
		// so the merged trace covers the run's tail.
		collectTelemetry(comm, obj, plane, local, ob)
	}
	obj.stop()
	if err := obj.Err(); err != nil {
		plane.Health().SetState("failed")
		return nil, err
	}
	plane.Health().SetState("done")
	return &MasterResult{
		Params:          obj.theta.Clone(),
		HF:              res,
		HeldOutAccuracy: acc,
		MPIProfile:      comm.Profiler().Snapshot(),
	}, nil
}

// shipShards partitions the problem's data over the workers and sends
// each worker its gob-encoded shard point-to-point (the load_data phase),
// shared by the HF, elastic and async-SGD masters. It returns the train
// and held-out shard plans (indexed by worker, rank w+1) so the elastic
// master can re-partition a dead worker's retained shard on eviction.
func shipShards(comm *mpi.Comm, p Problem, part corpus.Partitioner) ([][]*corpus.Utterance, [][]*corpus.Utterance, error) {
	workers := comm.Size() - 1
	trainShards := part.Partition(p.Train.Utts, workers)
	heldShards := part.Partition(p.Heldout.Utts, workers)
	comm.SetPhase("load_data")
	for w := 0; w < workers; w++ {
		shard := wireShard{
			Sizes:          p.Topo.Sizes,
			Criterion:      p.Criterion,
			Trans:          p.Trans,
			SampleFraction: p.SampleFraction,
			BatchFrames:    p.BatchFrames,
			Seed:           p.Seed + int64(w+1), // per-worker sample stream
			FeatDim:        p.Train.FeatDim,
			Context:        p.Train.Context,
			NumStates:      p.Train.NumStates,
			TrainUtts:      trainShards[w],
			HeldUtts:       heldShards[w],
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&shard); err != nil {
			return nil, nil, fmt.Errorf("core: encode shard for worker %d: %w", w+1, err)
		}
		if err := comm.SendBytes(w+1, tagShard, buf.Bytes()); err != nil {
			return nil, nil, fmt.Errorf("core: send shard to worker %d: %w", w+1, err)
		}
	}
	return trainShards, heldShards, nil
}

// shardProblem reconstructs the worker-local Problem a shard describes.
func shardProblem(shard *wireShard) Problem {
	return Problem{
		Topo:           nn.NewTopology(shard.Sizes...),
		Train:          &corpus.Corpus{Utts: shard.TrainUtts, FeatDim: shard.FeatDim, NumStates: shard.NumStates, Context: shard.Context},
		Heldout:        &corpus.Corpus{Utts: shard.HeldUtts, FeatDim: shard.FeatDim, NumStates: shard.NumStates, Context: shard.Context},
		Criterion:      shard.Criterion,
		Trans:          shard.Trans,
		SampleFraction: shard.SampleFraction,
		BatchFrames:    shard.BatchFrames,
		Seed:           shard.Seed,
	}
}

// engineFromShard builds (or, after a re-shard supplement, rebuilds) the
// worker's compute engine from its current shard.
func engineFromShard(shard *wireShard) *engine {
	return newEngine(shardProblem(shard), shard.TrainUtts, shard.HeldUtts)
}

// recvShard receives and decodes this worker's shard and builds its
// compute engine. The decoded shard is returned too so the elastic
// worker can append re-shard supplements and rebuild.
func recvShard(comm *mpi.Comm) (*engine, *wireShard, error) {
	comm.SetPhase("load_data")
	msg, err := comm.RecvBytes(0, tagShard)
	if err != nil {
		return nil, nil, fmt.Errorf("core: worker %d receive shard: %w", comm.Rank(), err)
	}
	var shard wireShard
	if err := gob.NewDecoder(bytes.NewReader(msg.Data)).Decode(&shard); err != nil {
		return nil, nil, fmt.Errorf("core: worker %d decode shard: %w", comm.Rank(), err)
	}
	return engineFromShard(&shard), &shard, nil
}

// runWorker executes the classic worker command loop on a non-zero rank
// until the master sends opStop. It receives its data shard, then serves
// gradient, curvature-product and loss requests over collectives. A
// non-nil observer adds per-phase spans labelled with this worker's
// rank, shard-size gauges, and a counter of time spent blocked on the
// master's command broadcast ("core.worker.<rank>.wait_ns" — the
// straggler/idle signal of the paper's Figure 5). A non-nil shipper
// answers the master's opClockSync/opTelemetry commands by serving
// clock pings and shipping drained span/metric bundles (a nil shipper
// still answers with empty bundles, keeping the protocol matched).
// Entry point: Session.Run.
func runWorker(comm *mpi.Comm, ob *obs.Observer, ship *telemetry.Shipper) error {
	rank := comm.Rank()
	if rank == 0 {
		return fmt.Errorf("core: worker run on rank 0")
	}
	comm.SetMetrics(ob.Registry())

	sp := ob.Span(rank, "load_data")
	eng, _, err := recvShard(comm)
	sp.End()
	if err != nil {
		return err
	}

	var wait *obs.Counter
	if reg := ob.Registry(); reg != nil {
		reg.Gauge(fmt.Sprintf("core.worker.%d.train_frames", rank)).Set(float64(eng.train.frames()))
		reg.Gauge(fmt.Sprintf("core.worker.%d.held_frames", rank)).Set(float64(eng.heldout.frames()))
		wait = reg.Counter(fmt.Sprintf("core.worker.%d.wait_ns", rank))
	}

	dim := eng.net.NumParams()
	cmd := make([]float32, 2)
	paramBuf := make(tensor.Vector, dim)

	for {
		comm.SetPhase("ctrl")
		var t0 time.Time
		if wait != nil {
			t0 = time.Now()
		}
		if err := comm.Bcast(0, cmd); err != nil {
			return fmt.Errorf("core: worker %d command: %w", rank, err)
		}
		if wait != nil {
			wait.Add(time.Since(t0).Nanoseconds())
		}
		done, err := workerStep(comm, eng, ob, ship, cmd[0], cmd[1], paramBuf)
		if done || err != nil {
			return err
		}
	}
}

// workerStep serves one master command on a worker rank; done reports
// opStop. Split out of the command loop so every opcode's span can End
// by defer regardless of how the case exits.
func workerStep(comm *mpi.Comm, eng *engine, ob *obs.Observer, ship *telemetry.Shipper, op, arg float32, paramBuf tensor.Vector) (done bool, err error) {
	rank := comm.Rank()
	dim := len(paramBuf)
	switch op {
	case opSetParams:
		defer ob.Span(rank, "sync_weights").End()
		comm.SetPhase("sync_weights")
		if err := comm.Bcast(0, paramBuf); err != nil {
			return false, err
		}
		if check.Enabled {
			check.Finite("core.worker.params", paramBuf)
		}
		eng.setParams(paramBuf)
	case opGradient:
		defer ob.Span(rank, "gradient_loss").End()
		comm.SetPhase("gradient_loss")
		grad := tensor.NewVector(dim)
		loss, frames := eng.gradient(grad)
		if check.Enabled {
			// Each shard's contribution must be finite before it enters
			// the deterministic reduction tree.
			check.Finite("core.worker.gradient", grad)
			check.FiniteScalar("core.worker.loss", loss)
		}
		if err := comm.Reduce(0, mpi.OpSum, grad); err != nil {
			return false, err
		}
		if err := comm.ReduceF64(0, mpi.OpSum, []float64{loss, float64(frames)}); err != nil {
			return false, err
		}
	case opSample:
		eng.drawSample(int(arg))
	case opGNProduct:
		defer ob.Span(rank, "cg_minimize").End()
		comm.SetPhase("worker_curvature_product")
		v := make(tensor.Vector, dim)
		if err := comm.Bcast(0, v); err != nil {
			return false, err
		}
		out := tensor.NewVector(dim)
		inner := ob.Span(rank, "worker_curvature_product")
		frames := eng.gnProduct(v, out)
		inner.End()
		if check.Enabled {
			check.Finite("core.worker.gnproduct", out)
		}
		if err := comm.Reduce(0, mpi.OpSum, out); err != nil {
			return false, err
		}
		if err := comm.ReduceF64(0, mpi.OpSum, []float64{float64(frames)}); err != nil {
			return false, err
		}
	case opHeldLoss:
		defer ob.Span(rank, "loss_eval").End()
		comm.SetPhase("loss_eval")
		trial := make(tensor.Vector, dim)
		if err := comm.Bcast(0, trial); err != nil {
			return false, err
		}
		loss, frames := eng.heldLossAt(trial)
		if err := comm.ReduceF64(0, mpi.OpSum, []float64{loss, float64(frames)}); err != nil {
			return false, err
		}
	case opAccuracy:
		defer ob.Span(rank, "loss_eval").End()
		comm.SetPhase("loss_eval")
		correct, frames := eng.heldAccuracy()
		if err := comm.ReduceF64(0, mpi.OpSum, []float64{float64(correct), float64(frames)}); err != nil {
			return false, err
		}
	case opFisherDiag:
		defer ob.Span(rank, "cg_minimize").End()
		comm.SetPhase("cg_minimize")
		diag := tensor.NewVector(dim)
		frames := eng.fisherDiag(diag)
		if err := comm.Reduce(0, mpi.OpSum, diag); err != nil {
			return false, err
		}
		if err := comm.ReduceF64(0, mpi.OpSum, []float64{float64(frames)}); err != nil {
			return false, err
		}
	case opClockSync:
		comm.SetPhase("telemetry")
		if err := telemetry.ServeClockSync(comm, 0, int(arg)); err != nil {
			return false, err
		}
	case opTelemetry:
		comm.SetPhase("telemetry")
		if err := ship.Ship(comm, 0); err != nil {
			return false, err
		}
	case opStop:
		return true, nil
	default:
		return false, fmt.Errorf("core: worker %d unknown opcode %v", rank, op)
	}
	return false, nil
}

