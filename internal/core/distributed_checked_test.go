package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/tensor"
)

// rogueWorker impersonates a worker that crashes mid-iteration: it
// receives its shard, serves commands until the first gradient request,
// then closes its endpoint and exits without contributing to the
// reduction — the failure mode that classically leaves the master
// blocked in Reduce forever.
func rogueWorker(t *testing.T, comm *mpi.Comm) {
	t.Helper()
	eng, _, err := recvShard(comm)
	if err != nil {
		t.Errorf("rogue worker shard: %v", err)
		return
	}
	dim := eng.net.NumParams()
	cmd := make([]float32, 2)
	paramBuf := make(tensor.Vector, dim)
	for {
		if err := comm.Bcast(0, cmd); err != nil {
			return
		}
		switch cmd[0] {
		case opSetParams:
			if err := comm.Bcast(0, paramBuf); err != nil {
				return
			}
		case opSample:
			// No communication.
		default:
			// First real work request (the gradient): die instead of
			// entering the Reduce the master is counting on.
			comm.Close()
			return
		}
	}
}

// TestMasterUnblocksOnWorkerDeath runs a 3-rank job where one worker
// dies before its gradient Reduce. Under CheckedComm's watchdog the
// master must return an error within the deadline — naming the stuck
// collective — instead of hanging for the life of the process.
func TestMasterUnblocksOnWorkerDeath(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	chk := mpi.CheckConfig{Deadline: 500 * time.Millisecond, History: 16}

	fabric := mpi.NewInprocFabric(3)
	defer fabric.Close()

	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		done := make(chan struct{})
		go func() {
			defer close(done)
			// The healthy worker: after the master aborts, its own
			// watchdog unblocks its command wait. Attach-mode session
			// over an externally checked comm.
			if sess, err := NewSession(Problem{}, WithComm(mpi.NewCheckedComm(fabric.Transport(1), chk).Comm)); err == nil {
				_, _ = sess.Run(cfg)
			}
		}()
		rogueWorker(t, mpi.NewCheckedComm(fabric.Transport(2), chk).Comm)
		<-done
	}()

	masterDone := make(chan error, 1)
	go func() {
		sess, err := NewSession(p, WithComm(mpi.NewCheckedComm(fabric.Transport(0), chk).Comm))
		if err != nil {
			masterDone <- err
			return
		}
		_, err = sess.Run(cfg)
		masterDone <- err
	}()

	select {
	case err := <-masterDone:
		if err == nil {
			t.Fatal("master returned nil error despite dead worker")
		}
		// Either detection path is acceptable: the transport's prompt
		// peer-down notice (a closed inproc endpoint marks itself down in
		// every peer mailbox) or, if the death raced past it, the
		// commcheck watchdog/protocol diagnosis.
		var werr *mpi.WatchdogError
		var perr *mpi.ProtocolError
		if !errors.As(err, &werr) && !errors.As(err, &perr) && !errors.Is(err, mpi.ErrPeerDown) {
			t.Fatalf("master err = %v, want peer-down, commcheck watchdog or protocol error", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("master still blocked 20s after worker death")
	}

	fabric.Close()
	select {
	case <-workersDone:
	case <-time.After(10 * time.Second):
		t.Fatal("workers still blocked after fabric close")
	}
}
