package core

// Elastic fault-tolerant master/worker runtime.
//
// The classic protocol (distributed.go) drives workers with tree
// collectives; a dead rank deadlocks the tree, and even detection
// (commcheck's watchdog) can only diagnose, not recover. The elastic
// runtime instead uses a master-centric star of point-to-point ops:
//
//   - every command is ONE master→worker message on tagElastic
//     ([type][round][op][arg][payload], the payload folded inline so a
//     worker is never blocked waiting for a second message that will
//     never arrive);
//   - every contribution is ONE worker→master reply tagged
//     tagElasticReply+round, collected in ascending rank order (a
//     deterministic fold, mirroring the fixed reduction-tree order);
//   - failures are therefore directly attributable: a send error, a
//     reply deadline miss (FaultPolicy.OpDeadline) or a peer-down
//     observation names the rank, which is evicted on the spot.
//
// On eviction the master unwinds hf.Optimize (typed panic recovered in
// run), re-partitions the dead worker's retained shard across survivors
// via workload.Reshard, rewinds θ to the last Checkpoint, bumps the
// round (orphaning every stale in-flight reply), and resumes with
// exponential backoff — up to FaultPolicy.MaxEvictions evictions before
// surrendering with a structured FaultReport.

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
	"repro/internal/tensor"
)

// tagElastic carries every master→worker elastic message, in FIFO
// order on one tag so workers can never block on an out-of-order match.
const tagElastic = 9500

// tagElasticReply is the base tag of worker→master contributions; the
// elastic round number is added, so replies from before an eviction can
// never be mistaken for current ones.
const tagElasticReply = 16 << 24

// Elastic message types (first byte of every tagElastic message).
const (
	emOp    byte = 1 // one objective op: [op][arg f32][payload]
	emShard byte = 2 // re-shard supplement: gob shardSupplement
	emPing  byte = 3 // heartbeat: [replyTag u32][seq u32]
	emStop  byte = 4 // shut the worker down
)

// Defaults for FaultPolicy zero fields.
const (
	// DefaultMaxEvictions tolerates this many evictions per run.
	DefaultMaxEvictions = 2
	// DefaultFaultBackoff is the base of the exponential backoff slept
	// before each post-eviction resume.
	DefaultFaultBackoff = 50 * time.Millisecond
	// maxFaultBackoff caps the exponential backoff.
	maxFaultBackoff = 2 * time.Second
)

// FaultPolicy configures the elastic runtime: detection deadlines
// (embedded mpi.FaultConfig), eviction budget, resume backoff,
// heartbeat cadence and an optional fault-injection schedule for tests.
type FaultPolicy struct {
	mpi.FaultConfig
	// MaxEvictions is the total number of worker evictions tolerated
	// before the run surrenders with a SurrenderError; 0 selects
	// DefaultMaxEvictions, negative means "no evictions tolerated".
	MaxEvictions int
	// Backoff is the base of the exponential backoff slept before each
	// post-eviction resume (doubling per eviction, capped at 2s); 0
	// selects DefaultFaultBackoff.
	Backoff time.Duration
	// HeartbeatEvery pings every live worker at the start of every Nth
	// HF iteration, exporting RTTs to core.elastic.heartbeat_rtt_ns;
	// 0 selects 1 (every iteration), negative disables pings.
	HeartbeatEvery int
	// Inject, when non-nil, wraps every spawned rank's transport in an
	// mpi.FaultTransport applying the schedule (fault drills and
	// tests). Only effective in spawn mode — attached comms are owned
	// by the caller.
	Inject *mpi.FaultSchedule
}

func (p FaultPolicy) filled() FaultPolicy {
	p.FaultConfig = p.FaultConfig.Filled()
	if p.MaxEvictions == 0 {
		p.MaxEvictions = DefaultMaxEvictions
	}
	if p.MaxEvictions < 0 {
		p.MaxEvictions = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultFaultBackoff
	}
	if p.HeartbeatEvery == 0 {
		p.HeartbeatEvery = 1
	}
	return p
}

// CheckpointPolicy configures the elastic runtime's rewind points.
type CheckpointPolicy struct {
	// Every snapshots θ after every Nth completed HF iteration; 0
	// selects 1 (every iteration). The snapshot is in-memory; rewinds
	// restart from the most recent one.
	Every int
	// Path, when non-empty, also mirrors each snapshot to disk
	// atomically (SaveCheckpoint), surviving process death.
	Path string
}

func (c CheckpointPolicy) filled() CheckpointPolicy {
	if c.Every <= 0 {
		c.Every = 1
	}
	return c
}

// Eviction records one worker eviction in a FaultReport.
type Eviction struct {
	// Rank is the evicted worker.
	Rank int `json:"rank"`
	// Round is the elastic round during which the fault was detected.
	Round int `json:"round"`
	// HFIter is the global HF iteration in flight at detection.
	HFIter int `json:"hf_iter"`
	// Op names the elastic op in flight ("gradient", "gnproduct", …).
	Op string `json:"op"`
	// Cause classifies the detection: "timeout", "peer-down", "closed"
	// or a send/recv error description.
	Cause string `json:"cause"`
	// RewindIter is the checkpointed iteration training resumed from.
	RewindIter int `json:"rewind_iter"`
	// ResumeLoss is the held-out loss re-measured at the rewound θ over
	// the re-partitioned shards (should match the checkpoint's loss up
	// to summation order).
	ResumeLoss float64 `json:"resume_loss"`
	// ReshardUtts and ReshardFrames size the re-partitioned shard.
	ReshardUtts   int `json:"reshard_utts"`
	ReshardFrames int `json:"reshard_frames"`
	// RewindWall is the time from detection to resumed training.
	RewindWall time.Duration `json:"rewind_wall_ns"`
}

// FaultReport is the elastic runtime's structured account of a run's
// failures and recoveries.
type FaultReport struct {
	// Evictions lists every eviction in detection order.
	Evictions []Eviction `json:"evictions"`
	// MaxEvictions echoes the policy's budget.
	MaxEvictions int `json:"max_evictions"`
	// Surrendered reports that the run gave up (budget exhausted or no
	// survivors) instead of completing.
	Surrendered bool `json:"surrendered"`
	// FinalWorkers is the live worker count at the end of the run.
	FinalWorkers int `json:"final_workers"`
	// Flight is the flight recorder's post-mortem bundle captured at the
	// latest fault: the last window of spans, event-log entries and
	// metric deltas from every reachable rank. Nil when the run had no
	// telemetry plane or no fault.
	Flight *telemetry.FlightBundle `json:"flight,omitempty"`
}

// SurrenderError is returned when the elastic runtime exhausts its
// eviction budget or runs out of workers; Report holds the full record.
type SurrenderError struct {
	Report *FaultReport
	// Cause is the fault that pushed the run over its budget.
	Cause error
}

func (e *SurrenderError) Error() string {
	return fmt.Sprintf("core: elastic run surrendered after %d evictions (budget %d, %d workers left): %v",
		len(e.Report.Evictions), e.Report.MaxEvictions, e.Report.FinalWorkers, e.Cause)
}

func (e *SurrenderError) Unwrap() error { return e.Cause }

// faultUnwind aborts hf.Optimize mid-iteration after an eviction: the
// optimizer has no error path, so the elastic objective unwinds the
// stack with a typed panic that elasticMaster.attempt recovers.
type faultUnwind struct{ cause error }

// errFaultUnwind carries a recovered faultUnwind through the error
// returns of attempt and recoverAndResync so run can branch on it.
type errFaultUnwind struct{ cause error }

func (e *errFaultUnwind) Error() string { return "core: elastic fault unwind: " + e.cause.Error() }
func (e *errFaultUnwind) Unwrap() error { return e.cause }

// recoverUnwind converts a faultUnwind panic into *errFaultUnwind,
// re-panicking anything else. Use in a defer:
//
//	defer func() { recoverUnwind(recover(), &err) }()
func recoverUnwind(r any, err *error) {
	if r == nil {
		return
	}
	fu, ok := r.(faultUnwind)
	if !ok {
		panic(r)
	}
	*err = &errFaultUnwind{cause: fu.cause}
}

// shardSupplement is the gob payload of an emShard message: utterances
// from an evicted worker's shard now assigned to this survivor.
type shardSupplement struct {
	TrainUtts []*corpus.Utterance
	HeldUtts  []*corpus.Utterance
}

func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// --- wire helpers ---

// emEncode frames one elastic message: [type][round u32][body].
func emEncode(typ byte, round int, body []byte) []byte {
	b := make([]byte, 0, 5+len(body))
	b = append(b, typ)
	var r [4]byte
	binary.LittleEndian.PutUint32(r[:], uint32(round))
	b = append(b, r[:]...)
	return append(b, body...)
}

// emDecode splits an elastic message into type, round and body.
func emDecode(data []byte) (typ byte, round int, body []byte, err error) {
	if len(data) < 5 {
		return 0, 0, nil, fmt.Errorf("core: elastic message %d bytes, want >= 5", len(data))
	}
	return data[0], int(binary.LittleEndian.Uint32(data[1:5])), data[5:], nil
}

// emOpBody builds the body of an emOp message: [op][arg f32][payload].
func emOpBody(op float32, arg float32, payload []byte) []byte {
	b := make([]byte, 0, 5+len(payload))
	b = append(b, byte(op))
	var a [4]byte
	binary.LittleEndian.PutUint32(a[:], math.Float32bits(arg))
	b = append(b, a[:]...)
	return append(b, payload...)
}

// opName names elastic ops for FaultReport and event-log entries.
func opName(op float32) string {
	switch op {
	case opSetParams:
		return "sync_weights"
	case opGradient:
		return "gradient"
	case opSample:
		return "sample"
	case opGNProduct:
		return "gnproduct"
	case opHeldLoss:
		return "held_loss"
	case opAccuracy:
		return "accuracy"
	case opFisherDiag:
		return "fisher_diag"
	case opStop:
		return "stop"
	case opClockSync:
		return "clock_sync"
	case opTelemetry:
		return "telemetry"
	}
	return fmt.Sprintf("op%v", op)
}

// causeOf classifies a detection error for the FaultReport.
func causeOf(err error) string {
	switch {
	case errors.Is(err, mpi.ErrTimeout):
		return "timeout"
	case errors.Is(err, mpi.ErrPeerDown):
		return "peer-down"
	case errors.Is(err, mpi.ErrClosed):
		return "closed"
	default:
		return err.Error()
	}
}

// --- master ---

// elasticMaster owns the live worker set, the shard plan, the rewind
// checkpoint and the fault report for one elastic run.
type elasticMaster struct {
	comm *mpi.Comm
	p    Problem
	cfg  hf.Config
	part corpus.Partitioner
	ob   *obs.Observer
	pol  FaultPolicy
	ckpt CheckpointPolicy

	dim   int
	theta tensor.Vector
	round int
	live  []int // live worker ranks, ascending

	// Current shard plan by worker rank; an evicted rank's entry moves
	// to pendingReshard until the next resync redistributes it.
	trainShards  map[int][]*corpus.Utterance
	heldShards   map[int][]*corpus.Utterance
	pendingTrain []*corpus.Utterance
	pendingHeld  []*corpus.Utterance

	lastCK   *Checkpoint
	ckLambda float64       // post-update λ at the checkpoint (exact resume)
	ckDir    tensor.Vector // CG warm-start direction at the checkpoint

	iterBase int // completed global iterations at current attempt start
	curIter  int // global iteration in flight
	iters    []hf.IterStats
	totalCG  int
	lastWall time.Time
	lastLoss float64 // held-out loss of the latest recorded iteration

	report  FaultReport
	pingSeq uint32

	// plane/local are the telemetry plane and the master's own shipper;
	// both nil when the run has no telemetry. Telemetry traffic is
	// best-effort and never evicts.
	plane *telemetry.Plane
	local *telemetry.Shipper

	// epochHook advances fault-injection epochs on the master's own
	// transport (spawn mode wires it to FaultTransport.SetEpoch).
	epochHook func(int)
}

// suspectRank is a worker that failed an op this round.
type suspectRank struct {
	rank  int
	cause error
}

func newElasticMaster(comm *mpi.Comm, p Problem, cfg hf.Config, part corpus.Partitioner, ob *obs.Observer, pol FaultPolicy, ckpt CheckpointPolicy, plane *telemetry.Plane, epochHook func(int)) *elasticMaster {
	filled := pol.filled()
	return &elasticMaster{
		comm:        comm,
		p:           p,
		cfg:         cfg,
		part:        part,
		ob:          ob,
		pol:         filled,
		ckpt:        ckpt.filled(),
		report:      FaultReport{MaxEvictions: filled.MaxEvictions},
		trainShards: map[int][]*corpus.Utterance{},
		heldShards:  map[int][]*corpus.Utterance{},
		plane:       plane,
		epochHook:   epochHook,
	}
}

// runElastic is the rank-0 entry point of the fault-tolerant runtime.
func runElastic(comm *mpi.Comm, p Problem, cfg hf.Config, part corpus.Partitioner, ob *obs.Observer, pol FaultPolicy, ckpt CheckpointPolicy, plane *telemetry.Plane, epochHook func(int)) (*MasterResult, error) {
	if comm.Rank() != 0 {
		return nil, fmt.Errorf("core: master run on rank %d", comm.Rank())
	}
	if comm.Size() < 2 {
		return nil, fmt.Errorf("core: distributed training needs ≥2 ranks, have %d", comm.Size())
	}
	p = p.filled()
	if err := p.validate(); err != nil {
		return nil, err
	}
	if part == nil {
		part = corpus.SortedGreedy{}
	}
	comm.SetMetrics(ob.Registry())

	m := newElasticMaster(comm, p, cfg, part, ob, pol, ckpt, plane, epochHook)
	return m.run()
}

func (m *elasticMaster) run() (*MasterResult, error) {
	// load_data: same wireShard handshake as the classic runtime, but
	// the master retains the plan for post-eviction re-partitioning.
	sp := m.ob.Span(0, "load_data")
	trainShards, heldShards, err := shipShards(m.comm, m.p, m.part)
	sp.End()
	if err != nil {
		return nil, err
	}
	for w := 0; w < m.comm.Size()-1; w++ {
		rank := w + 1
		m.live = append(m.live, rank)
		m.trainShards[rank] = trainShards[w]
		m.heldShards[rank] = heldShards[w]
	}

	// The master owns θ; workers receive it per-op.
	net := nn.New(m.p.Topo)
	if m.p.InitParams != nil {
		net.SetParams(m.p.InitParams)
	} else {
		net.InitGlorot(m.p.InitRNG())
	}
	m.dim = net.NumParams()
	m.theta = net.Params.Clone()

	if m.plane != nil {
		m.local = telemetry.NewShipper(0, m.ob)
		m.plane.Merger().BindLocal(0, m.ob.Registry())
		m.plane.Health().SetState("training")
		for _, w := range m.live {
			m.plane.Health().SetWorker(w, telemetry.WorkerLive)
		}
		m.syncClocks()
	}

	// Mirror hf.Config's MaxIterations default so the resume loop's
	// remaining-iterations arithmetic matches what Optimize will run.
	if m.cfg.MaxIterations <= 0 {
		m.cfg.MaxIterations = 50
	}
	total := m.cfg.MaxIterations

	obj := &elasticObjective{m: m}
	var res hf.Result
	for {
		// Protected region: any eviction inside unwinds to here.
		err := m.attempt(obj, total-m.iterBase, &res)
		if err == nil {
			break // ran to completion (or converged early)
		}
		for err != nil {
			var fu *errFaultUnwind
			if !errors.As(err, &fu) {
				m.drainLocalTelemetry()
				m.plane.Health().SetState("failed")
				m.stopAll()
				return nil, err
			}
			m.report.FinalWorkers = len(m.live)
			m.captureFlight(m.flightReason(fu.cause))
			if len(m.live) == 0 || len(m.report.Evictions) > m.pol.MaxEvictions {
				m.report.Surrendered = true
				m.captureFlight("surrender: " + m.flightReason(fu.cause))
				m.plane.Health().SetState("failed")
				m.stopAll()
				return nil, &SurrenderError{Report: &m.report, Cause: fu.cause}
			}
			m.backoff()
			// A further fault during resync evicts again and loops here.
			err = m.recoverAndResync()
		}
	}

	acc := m.accuracy()
	m.collectTelemetry()
	m.plane.Health().SetState("done")
	m.stopAll()
	m.report.FinalWorkers = len(m.live)
	return &MasterResult{
		Params: m.theta.Clone(),
		HF: hf.Result{
			Iters:        m.iters,
			FinalLoss:    res.FinalLoss,
			TotalCGIters: m.totalCG,
		},
		HeldOutAccuracy: acc,
		MPIProfile:      m.comm.Profiler().Snapshot(),
		Fault:           &m.report,
	}, nil
}

// attempt runs one hf.Optimize attempt over the current live set,
// recovering eviction unwinds into an error. remaining bounds the
// iterations left to run; telemetry renumbers them globally.
func (m *elasticMaster) attempt(obj *elasticObjective, remaining int, out *hf.Result) (err error) {
	if remaining <= 0 {
		// Nothing left to do (fault landed after the final iteration).
		return nil
	}
	defer func() { recoverUnwind(recover(), &err) }()
	obj.gradCalls = 0

	cfg := m.cfg
	cfg.MaxIterations = remaining
	if m.ckLambda > 0 {
		// Resume with the exact cross-iteration optimizer state the
		// checkpoint captured: the post-update λ and the CG warm-start
		// direction the interrupted iteration would have used. This makes
		// a rewound run retrace the uninterrupted trajectory (up to
		// reduction-order float noise from the re-partitioned shards).
		cfg.Lambda0 = m.ckLambda
		cfg.InitDirection = m.ckDir
	}
	userLog, userTel := cfg.Log, cfg.Telemetry
	renumber := func(fn func(hf.IterStats)) func(hf.IterStats) {
		if fn == nil {
			return nil
		}
		return func(s hf.IterStats) {
			s.Iter += m.iterBase
			fn(s)
		}
	}
	cfg.Log = renumber(userLog)
	var iterWall *obs.Histogram
	if reg := m.ob.Registry(); reg != nil {
		iterWall = reg.Histogram("core.hf.iter_wall_ns")
	}
	m.lastWall = time.Now()
	tel := renumber(userTel)
	cfg.Telemetry = func(s hf.IterStats) {
		// s still carries the attempt-local Iter here; onIter makes it
		// global and records it in the stitched trace.
		m.onIter(s, iterWall)
		if tel != nil {
			tel(s)
		}
	}
	// The State hook fires after Telemetry with the post-update λ and
	// warm-start direction — the exact state the next iteration resumes
	// from — so checkpoint cadence lives here, not in Telemetry.
	cfg.State = func(iter int, lambda float64, dir tensor.Vector) {
		global := m.iterBase + iter
		if global%m.ckpt.Every == 0 {
			m.snapshot(global, m.lastLoss, lambda, dir)
		}
	}

	// Push the (possibly rewound) θ and seed the initial checkpoint so
	// the first rewind has somewhere to land.
	obj.SetParams(m.theta)
	if m.lastCK == nil {
		loss0 := obj.HeldOutLoss(m.theta)
		m.snapshot(0, loss0, 0, nil)
	}

	*out = hf.Optimize(obj, cfg)
	m.iterBase += len(out.Iters)
	return nil
}

// onIter ingests one globally-renumbered iteration: the stitched trace,
// CG accounting, the iteration wall histogram and checkpoint cadence.
func (m *elasticMaster) onIter(s hf.IterStats, iterWall *obs.Histogram) {
	s.Iter += m.iterBase
	m.curIter = s.Iter
	m.iters = append(m.iters, s)
	m.totalCG += s.CGIters
	if iterWall != nil {
		now := time.Now()
		iterWall.Observe(now.Sub(m.lastWall).Nanoseconds())
		m.lastWall = now
	}
	// The State hook (which snapshots) fires right after this and needs
	// the iteration's held-out loss; IterStats is the only carrier.
	m.lastLoss = s.Loss
	if m.plane != nil {
		m.plane.Health().SetProgress(s.Iter, s.Loss)
		if fe := m.plane.Config().FlushEvery; fe > 0 && s.Iter%fe == 0 {
			m.collectTelemetry()
		}
	}
}

// syncClocks runs the telemetry clock-offset handshake against every
// live worker over the star protocol; best-effort, never evicts.
func (m *elasticMaster) syncClocks() {
	tcfg := m.plane.Config()
	m.comm.SetPhase("telemetry")
	for _, w := range m.live {
		body := emEncode(emOp, m.round, emOpBody(opClockSync, float32(tcfg.ClockSyncRounds), nil))
		if err := m.comm.SendBytes(w, tagElastic, body); err != nil {
			m.ob.Eventf(0, "telemetry: clock sync send to rank %d: %v", w, err)
			continue
		}
		offset, rtt, err := telemetry.SyncClocks(m.comm, w, tcfg.ClockSyncRounds, tcfg.Deadline)
		if err != nil {
			m.ob.Eventf(0, "telemetry: clock sync with rank %d: %v", w, err)
			continue
		}
		m.plane.Merger().SetOffset(w, offset)
		if reg := m.ob.Registry(); reg != nil {
			reg.Histogram("telemetry.clock_rtt_ns").Observe(rtt.Nanoseconds())
		}
	}
}

// collectTelemetry asks every live worker to ship its drained telemetry
// bundle and folds the shipments plus the master's own drained observer
// into the merger. Runs at iteration boundaries and around faults;
// best-effort, never evicts — a straggling shipment is merged by the
// next collection instead (bundles carry absolute timestamps, so
// late merges are harmless).
func (m *elasticMaster) collectTelemetry() {
	if m.plane == nil {
		return
	}
	start := time.Now()
	defer func() {
		if reg := m.ob.Registry(); reg != nil {
			reg.Histogram("telemetry.collect_ns").Observe(time.Since(start).Nanoseconds())
		}
	}()
	tcfg := m.plane.Config()
	m.comm.SetPhase("telemetry")
	body := emEncode(emOp, m.round, emOpBody(opTelemetry, 0, nil))
	for _, w := range m.live {
		if err := m.comm.SendBytes(w, tagElastic, body); err != nil {
			m.ob.Eventf(0, "telemetry: collect send to rank %d: %v", w, err)
			continue
		}
		msg, err := m.comm.RecvBytesTimeout(w, mpi.TagTelemetry, tcfg.Deadline)
		if err != nil {
			m.ob.Eventf(0, "telemetry: collect from rank %d: %v", w, err)
			continue
		}
		b, err := telemetry.DecodeBundle(msg.Data)
		if err != nil {
			m.ob.Eventf(0, "telemetry: decode from rank %d: %v", w, err)
			continue
		}
		m.plane.Merger().Ingest(b)
	}
	m.plane.Merger().Ingest(m.local.Bundle())
}

// drainLocalTelemetry folds the master's own drained shipper bundle
// into the merger without contacting any worker. It is the failure-path
// complement of collectTelemetry: on a non-fault error the workers may
// be wedged, and the exit path must not wait out per-worker deadlines —
// but the master's spans, metrics and events recorded up to the error
// must still survive into /trace and any post-mortem flight bundle.
func (m *elasticMaster) drainLocalTelemetry() {
	if m.plane == nil {
		return
	}
	m.plane.Merger().Ingest(m.local.Bundle())
}

// flightReason names a fault for the flight-recorder bundle, preferring
// the structured eviction record over the raw cause.
func (m *elasticMaster) flightReason(cause error) string {
	if n := len(m.report.Evictions); n > 0 {
		ev := m.report.Evictions[n-1]
		return fmt.Sprintf("eviction rank %d during %s (round %d, iter %d): %s",
			ev.Rank, ev.Op, ev.Round, ev.HFIter, ev.Cause)
	}
	return causeOf(cause)
}

// captureFlight snapshots the last telemetry window into the fault
// report's post-mortem bundle. Survivors ship their freshest spans
// first; the evicted rank's pre-fault activity is already in the merger
// from the iteration-boundary flushes before it died.
func (m *elasticMaster) captureFlight(reason string) {
	if m.plane == nil {
		return
	}
	m.collectTelemetry()
	m.report.Flight = m.plane.Recorder().Capture(m.plane.Merger(), reason)
}

// snapshot records the rewind point at the current θ.
func (m *elasticMaster) snapshot(iter int, loss, lambda float64, dir tensor.Vector) {
	ck := &Checkpoint{
		Sizes:       m.p.Topo.Sizes,
		Params:      m.theta.Clone(),
		Criterion:   m.p.Criterion,
		Trans:       m.p.Trans,
		Iteration:   iter,
		HeldOutLoss: loss,
		Lambda:      lambda,
	}
	if dir != nil {
		ck.Dir = dir.Clone()
	}
	m.lastCK = ck
	m.ckLambda = lambda
	m.ckDir = ck.Dir
	if m.ckpt.Path != "" {
		if err := SaveCheckpoint(m.ckpt.Path, ck); err != nil {
			m.ob.Eventf(0, "elastic: checkpoint mirror to %s failed: %v", m.ckpt.Path, err)
		}
	}
}

// backoff sleeps the exponential post-eviction backoff.
func (m *elasticMaster) backoff() {
	rewinds := len(m.report.Evictions) - 1
	if rewinds < 0 {
		rewinds = 0
	}
	d := m.pol.Backoff << rewinds
	if d > maxFaultBackoff {
		d = maxFaultBackoff
	}
	time.Sleep(d)
}

// recoverAndResync rewinds θ to the last checkpoint, re-partitions the
// evicted workers' shards across the survivors, pushes the supplements
// and θ, re-measures the resumed loss and confirms survivor liveness.
// Further faults during resync evict and unwind again, surfacing as the
// errFaultUnwind the caller loops on.
func (m *elasticMaster) recoverAndResync() (err error) {
	defer func() { recoverUnwind(recover(), &err) }()
	start := time.Now()
	sp := m.ob.Span(0, "elastic_rewind")
	defer sp.End()

	// Rewind to the last snapshot.
	rewindIter := 0
	if m.lastCK != nil {
		copy(m.theta, m.lastCK.Params)
		rewindIter = m.lastCK.Iteration
	} else {
		// No snapshot yet (fault before the first op completed): keep
		// the initial θ.
	}
	m.iterBase = rewindIter
	m.curIter = rewindIter
	if rewindIter < len(m.iters) {
		// Iterations after the snapshot were lost to the rewind.
		m.iters = m.iters[:rewindIter]
	}

	// New round: every stale in-flight reply is orphaned by its tag.
	m.round++

	// Re-partition the orphaned shards across survivors and ship the
	// supplements. Frames are counted before shipping for the report.
	supTrain := corpus.Reshard(m.pendingTrain, len(m.live), m.part)
	supHeld := corpus.Reshard(m.pendingHeld, len(m.live), m.part)
	reshardUtts := len(m.pendingTrain) + len(m.pendingHeld)
	reshardFrames := corpus.ReshardFrames(supTrain) + corpus.ReshardFrames(supHeld)
	for i, w := range append([]int(nil), m.live...) {
		sup := shardSupplement{}
		if i < len(supTrain) {
			sup.TrainUtts = supTrain[i]
		}
		if i < len(supHeld) {
			sup.HeldUtts = supHeld[i]
		}
		if len(sup.TrainUtts) == 0 && len(sup.HeldUtts) == 0 {
			continue
		}
		m.trainShards[w] = append(m.trainShards[w], sup.TrainUtts...)
		m.heldShards[w] = append(m.heldShards[w], sup.HeldUtts...)
		body, err := encodeGob(&sup)
		if err != nil {
			return fmt.Errorf("core: encode re-shard supplement: %w", err)
		}
		if err := m.comm.SendBytes(w, tagElastic, emEncode(emShard, m.round, body)); err != nil {
			m.evict([]suspectRank{{w, err}}, "reshard")
		}
	}
	m.pendingTrain, m.pendingHeld = nil, nil
	if reg := m.ob.Registry(); reg != nil {
		reg.Counter("core.elastic.reshard_utterances").Add(int64(reshardUtts))
		reg.Counter("core.elastic.reshard_frames").Add(int64(reshardFrames))
	}

	// Push the rewound θ, confirm liveness, and re-measure the loss at
	// the rewind point over the re-partitioned shards.
	obj := &elasticObjective{m: m}
	obj.SetParams(m.theta)
	m.heartbeat()
	resumeLoss := obj.HeldOutLoss(m.theta)

	wall := time.Since(start)
	for i := range m.report.Evictions {
		ev := &m.report.Evictions[i]
		if ev.RewindWall == 0 {
			ev.RewindIter = rewindIter
			ev.ResumeLoss = resumeLoss
			ev.ReshardUtts = reshardUtts
			ev.ReshardFrames = reshardFrames
			ev.RewindWall = wall
		}
	}
	if reg := m.ob.Registry(); reg != nil {
		reg.Histogram("core.elastic.rewind_ns").Observe(wall.Nanoseconds())
	}
	m.ob.Eventf(0, "elastic: resumed at iter %d with %d workers (loss %.4f, rewind %v)",
		rewindIter, len(m.live), resumeLoss, wall.Round(time.Millisecond))
	return nil
}

// evict removes the suspects from the live set, records them, and
// unwinds the optimizer.
func (m *elasticMaster) evict(suspects []suspectRank, op string) {
	if len(suspects) == 0 {
		return
	}
	for _, s := range suspects {
		kept := m.live[:0]
		for _, w := range m.live {
			if w != s.rank {
				kept = append(kept, w)
			}
		}
		m.live = kept
		// The dead worker's current shard is orphaned until resync.
		m.pendingTrain = append(m.pendingTrain, m.trainShards[s.rank]...)
		m.pendingHeld = append(m.pendingHeld, m.heldShards[s.rank]...)
		delete(m.trainShards, s.rank)
		delete(m.heldShards, s.rank)
		m.report.Evictions = append(m.report.Evictions, Eviction{
			Rank:   s.rank,
			Round:  m.round,
			HFIter: m.curIter,
			Op:     op,
			Cause:  causeOf(s.cause),
		})
		if reg := m.ob.Registry(); reg != nil {
			reg.Counter("core.elastic.evictions").Inc()
			reg.Gauge("core.elastic.live_workers").Set(float64(len(m.live)))
		}
		m.plane.Health().SetWorker(s.rank, telemetry.WorkerEvicted)
		m.plane.Health().SetState("degraded")
		m.ob.Eventf(0, "elastic: evicted rank %d during %s (round %d, iter %d): %v",
			s.rank, op, m.round, m.curIter, s.cause)
	}
	panic(faultUnwind{cause: suspects[0].cause})
}

// advanceEpoch tells the master-side fault injector (if any) the global
// iteration, mirroring what workers do on opSample.
func (m *elasticMaster) advanceEpoch(iter int) {
	if m.epochHook != nil {
		m.epochHook(iter)
	}
}

// bcastOp issues a reply-less op (sync_weights, sample) to every live
// worker; send failures evict and unwind.
func (m *elasticMaster) bcastOp(span string, op, arg float32, payload []byte) {
	defer m.ob.Span(0, span).End()
	m.comm.SetPhase(span)
	body := emEncode(emOp, m.round, emOpBody(op, arg, payload))
	var suspects []suspectRank
	for _, w := range m.live {
		if err := m.comm.SendBytes(w, tagElastic, body); err != nil {
			suspects = append(suspects, suspectRank{w, err})
		}
	}
	m.evict(suspects, opName(op))
}

// gatherOp issues an op to every live worker and collects one reply per
// worker in ascending rank order — the deterministic fold order. Send
// errors, deadline misses and malformed replies evict and unwind; on
// return, replies[i] corresponds to m.live[i] and is well-formed if
// wantLen >= 0.
func (m *elasticMaster) gatherOp(span string, op, arg float32, payload []byte, wantLen int) [][]byte {
	defer m.ob.Span(0, span).End()
	m.comm.SetPhase(span)
	body := emEncode(emOp, m.round, emOpBody(op, arg, payload))
	dead := map[int]error{}
	for _, w := range m.live {
		if err := m.comm.SendBytes(w, tagElastic, body); err != nil {
			dead[w] = err
		}
	}
	replies := make([][]byte, 0, len(m.live))
	for _, w := range m.live {
		if _, down := dead[w]; down {
			continue
		}
		msg, err := m.comm.RecvBytesTimeout(w, tagElasticReply+m.round, m.pol.OpDeadline)
		if err != nil {
			dead[w] = err
			continue
		}
		if wantLen >= 0 && len(msg.Data) != wantLen {
			dead[w] = fmt.Errorf("malformed %s reply: %d bytes, want %d", opName(op), len(msg.Data), wantLen)
			continue
		}
		replies = append(replies, msg.Data)
	}
	if len(dead) > 0 {
		var suspects []suspectRank
		for _, w := range m.live {
			if err, down := dead[w]; down {
				suspects = append(suspects, suspectRank{w, err})
			}
		}
		m.evict(suspects, opName(op))
	}
	return replies
}

// heartbeat pings every live worker and records RTTs; misses evict.
func (m *elasticMaster) heartbeat() {
	defer m.ob.Span(0, "heartbeat").End()
	m.comm.SetPhase("heartbeat")
	replyTag := m.pol.HeartbeatTag + m.round
	var rtt *obs.Histogram
	if reg := m.ob.Registry(); reg != nil {
		rtt = reg.Histogram("core.elastic.heartbeat_rtt_ns")
	}
	var suspects []suspectRank
	for _, w := range m.live {
		m.pingSeq++
		body := make([]byte, 8)
		binary.LittleEndian.PutUint32(body, uint32(replyTag))
		binary.LittleEndian.PutUint32(body[4:], m.pingSeq)
		start := time.Now()
		if err := m.comm.SendBytes(w, tagElastic, emEncode(emPing, m.round, body)); err != nil {
			suspects = append(suspects, suspectRank{w, err})
			continue
		}
		msg, err := m.comm.RecvBytesTimeout(w, replyTag, m.pol.OpDeadline)
		if err != nil {
			suspects = append(suspects, suspectRank{w, err})
			continue
		}
		if len(msg.Data) != 4 || binary.LittleEndian.Uint32(msg.Data) != m.pingSeq {
			suspects = append(suspects, suspectRank{w, fmt.Errorf("malformed pong (%d bytes)", len(msg.Data))})
			continue
		}
		if rtt != nil {
			rtt.Observe(time.Since(start).Nanoseconds())
		}
	}
	m.evict(suspects, "heartbeat")
}

// accuracy gathers held-out frame accuracy; unlike mid-training ops a
// failure here evicts nothing — training is already complete, so the
// contribution of a dead rank's shard is simply absent from the final
// figure and the error is recorded as an event.
func (m *elasticMaster) accuracy() float64 {
	defer m.ob.Span(0, "loss_eval").End()
	m.comm.SetPhase("loss_eval")
	body := emEncode(emOp, m.round, emOpBody(opAccuracy, 0, nil))
	correct, frames := 0.0, 0.0
	for _, w := range m.live {
		if err := m.comm.SendBytes(w, tagElastic, body); err != nil {
			m.ob.Eventf(0, "elastic: accuracy send to rank %d: %v", w, err)
			continue
		}
		msg, err := m.comm.RecvBytesTimeout(w, tagElasticReply+m.round, m.pol.OpDeadline)
		if err != nil || len(msg.Data) != 16 {
			m.ob.Eventf(0, "elastic: accuracy reply from rank %d: %v", w, err)
			continue
		}
		var pair [2]float64
		if err := decodeF64Pair(msg.Data, &pair); err != nil {
			continue
		}
		correct += pair[0]
		frames += pair[1]
	}
	if frames <= 0 {
		return 0
	}
	return correct / frames
}

// stopAll shuts down the surviving workers, best-effort.
func (m *elasticMaster) stopAll() {
	m.comm.SetPhase("shutdown")
	body := emEncode(emStop, m.round, nil)
	for _, w := range m.live {
		if err := m.comm.SendBytes(w, tagElastic, body); err != nil {
			m.ob.Eventf(0, "elastic: stop send to rank %d: %v", w, err)
		}
	}
}

// --- the elastic objective ---

// elasticObjective implements hf.Objective (and hf.Preconditioned) over
// the star protocol. Any fault inside a method unwinds via evict.
type elasticObjective struct {
	m *elasticMaster
	// gradCalls counts Gradient calls this run: the global iteration in
	// flight, which drives heartbeat cadence and fault epochs.
	gradCalls int
}

func (o *elasticObjective) Dim() int { return o.m.dim }

func (o *elasticObjective) Params() tensor.Vector { return o.m.theta.Clone() }

func (o *elasticObjective) SetParams(p tensor.Vector) {
	if check.Enabled {
		check.Dims("core.master.params", len(p), o.m.dim)
		check.Finite("core.master.params", p)
	}
	copy(o.m.theta, p)
	o.m.bcastOp("sync_weights", opSetParams, 0, encodeVec(o.m.theta))
}

func (o *elasticObjective) Gradient() tensor.Vector {
	m := o.m
	// Gradient opens every HF iteration, so the call count IS the
	// attempt-local iteration; add iterBase for the global number.
	o.gradCalls++
	m.curIter = m.iterBase + o.gradCalls
	m.advanceEpoch(m.curIter)
	if m.pol.HeartbeatEvery > 0 && (m.curIter-1)%m.pol.HeartbeatEvery == 0 {
		m.heartbeat()
	}
	replies := m.gatherOp("gradient_loss", opGradient, 0, nil, 4*m.dim+16)
	grad := tensor.NewVector(m.dim)
	buf := tensor.NewVector(m.dim)
	frames := 0.0
	for _, rep := range replies {
		if err := decodeInto(rep[:4*m.dim], buf); err != nil {
			continue // length already validated; unreachable
		}
		grad.AddScaled(1, buf)
		var pair [2]float64
		if err := decodeF64Pair(rep[4*m.dim:], &pair); err == nil {
			frames += pair[1]
			if check.Enabled {
				check.FiniteScalar("core.worker.loss_sum", pair[0])
			}
		}
	}
	if frames > 0 {
		grad.Scale(float32(1 / frames))
	}
	if check.Enabled {
		check.Finite("core.master.gradient", grad)
	}
	return grad
}

func (o *elasticObjective) NewCurvatureSample(iter int) {
	// Workers draw from the global iteration so fault epochs and sample
	// streams line up with "kill rank R at iteration N" schedules.
	o.m.bcastOp("cg_minimize", opSample, float32(o.m.iterBase+iter), nil)
}

func (o *elasticObjective) GNProduct(v, out tensor.Vector) {
	m := o.m
	if check.Enabled {
		check.Dims("core.master.cg_direction", len(v), m.dim)
		check.Finite("core.master.cg_direction", v)
	}
	replies := m.gatherOp("cg_minimize", opGNProduct, 0, encodeVec(v), 4*m.dim+16)
	out.Zero()
	buf := tensor.NewVector(m.dim)
	frames := 0.0
	for _, rep := range replies {
		if err := decodeInto(rep[:4*m.dim], buf); err != nil {
			continue
		}
		out.AddScaled(1, buf)
		var pair [2]float64
		if err := decodeF64Pair(rep[4*m.dim:], &pair); err == nil {
			frames += pair[0]
		}
	}
	if frames > 0 {
		out.Scale(float32(1 / frames))
	}
	if check.Enabled {
		check.Finite("core.master.gnproduct", out)
	}
}

func (o *elasticObjective) HeldOutLoss(p tensor.Vector) float64 {
	m := o.m
	replies := m.gatherOp("loss_eval", opHeldLoss, 0, encodeVec(p), 16)
	loss, frames := 0.0, 0.0
	for _, rep := range replies {
		var pair [2]float64
		if err := decodeF64Pair(rep, &pair); err == nil {
			loss += pair[0]
			frames += pair[1]
		}
	}
	if frames <= 0 {
		return 0
	}
	return loss / frames
}

func (o *elasticObjective) CurvatureDiag(lambda float64) tensor.Vector {
	m := o.m
	replies := m.gatherOp("cg_minimize", opFisherDiag, 0, nil, 4*m.dim+16)
	diag := tensor.NewVector(m.dim)
	buf := tensor.NewVector(m.dim)
	frames := 0.0
	for _, rep := range replies {
		if err := decodeInto(rep[:4*m.dim], buf); err != nil {
			continue
		}
		diag.AddScaled(1, buf)
		var pair [2]float64
		if err := decodeF64Pair(rep[4*m.dim:], &pair); err == nil {
			frames += pair[0]
		}
	}
	f := int(frames)
	if f < 1 {
		f = 1
	}
	return finishPreconditioner(diag, f, lambda)
}

// --- worker ---

// runElasticWorker is the non-zero-rank side of the elastic runtime: a
// loop over single-message commands. epochHook, when non-nil, receives
// the global HF iteration as the worker learns it (opSample), advancing
// fault-injection epochs in drills. A non-nil shipper answers the
// master's opClockSync/opTelemetry commands (nil still answers with
// empty bundles, keeping the protocol matched). Entry point:
// Session.Run.
func runElasticWorker(comm *mpi.Comm, ob *obs.Observer, ship *telemetry.Shipper, epochHook func(int)) error {
	rank := comm.Rank()
	if rank == 0 {
		return fmt.Errorf("core: worker run on rank 0")
	}
	comm.SetMetrics(ob.Registry())

	sp := ob.Span(rank, "load_data")
	eng, shard, err := recvShard(comm)
	sp.End()
	if err != nil {
		return err
	}
	updateGauges := func() {
		if reg := ob.Registry(); reg != nil {
			reg.Gauge(fmt.Sprintf("core.worker.%d.train_frames", rank)).Set(float64(eng.train.frames()))
			reg.Gauge(fmt.Sprintf("core.worker.%d.held_frames", rank)).Set(float64(eng.heldout.frames()))
		}
	}
	updateGauges()

	var wait *obs.Counter
	if reg := ob.Registry(); reg != nil {
		wait = reg.Counter(fmt.Sprintf("core.worker.%d.wait_ns", rank))
	}

	dim := eng.net.NumParams()
	paramBuf := make(tensor.Vector, dim)

	for {
		comm.SetPhase("ctrl")
		var t0 time.Time
		if wait != nil {
			t0 = time.Now()
		}
		msg, err := comm.RecvBytes(0, tagElastic)
		if err != nil {
			return fmt.Errorf("core: worker %d command: %w", rank, err)
		}
		if wait != nil {
			wait.Add(time.Since(t0).Nanoseconds())
		}
		typ, round, body, err := emDecode(msg.Data)
		if err != nil {
			return err
		}
		switch typ {
		case emStop:
			return nil
		case emPing:
			if len(body) != 8 {
				return fmt.Errorf("core: worker %d: malformed ping (%d bytes)", rank, len(body))
			}
			replyTag := int(binary.LittleEndian.Uint32(body))
			if err := comm.SendBytes(0, replyTag, body[4:8]); err != nil {
				return fmt.Errorf("core: worker %d pong: %w", rank, err)
			}
		case emShard:
			sp := ob.Span(rank, "elastic_reshard")
			var sup shardSupplement
			if err := decodeGob(body, &sup); err != nil {
				sp.End()
				return fmt.Errorf("core: worker %d re-shard: %w", rank, err)
			}
			// Append the supplement and rebuild the engine; θ arrives in
			// the sync_weights op that follows every resync.
			shard.TrainUtts = append(shard.TrainUtts, sup.TrainUtts...)
			shard.HeldUtts = append(shard.HeldUtts, sup.HeldUtts...)
			eng = engineFromShard(shard)
			updateGauges()
			sp.End()
		case emOp:
			if len(body) < 5 {
				return fmt.Errorf("core: worker %d: malformed op (%d bytes)", rank, len(body))
			}
			op := float32(body[0])
			arg := math.Float32frombits(binary.LittleEndian.Uint32(body[1:5]))
			payload := body[5:]
			if err := elasticWorkerOp(comm, eng, ob, ship, round, op, arg, payload, paramBuf, epochHook); err != nil {
				return fmt.Errorf("core: worker %d %s: %w", rank, opName(op), err)
			}
		default:
			return fmt.Errorf("core: worker %d: unknown elastic message type %d", rank, typ)
		}
	}
}

// elasticWorkerOp serves one emOp command: compute locally, then send
// exactly one reply (for ops that have one) tagged with the round.
func elasticWorkerOp(comm *mpi.Comm, eng *engine, ob *obs.Observer, ship *telemetry.Shipper, round int, op, arg float32, payload []byte, paramBuf tensor.Vector, epochHook func(int)) error {
	rank := comm.Rank()
	dim := len(paramBuf)
	reply := func(data []byte) error {
		return comm.SendBytes(0, tagElasticReply+round, data)
	}
	switch op {
	case opSetParams:
		defer ob.Span(rank, "sync_weights").End()
		comm.SetPhase("sync_weights")
		if err := decodeInto(payload, paramBuf); err != nil {
			return err
		}
		if check.Enabled {
			check.Finite("core.worker.params", paramBuf)
		}
		eng.setParams(paramBuf)
		return nil
	case opSample:
		iter := int(arg)
		eng.drawSample(iter)
		if epochHook != nil {
			epochHook(iter)
		}
		return nil
	case opGradient:
		defer ob.Span(rank, "gradient_loss").End()
		comm.SetPhase("gradient_loss")
		grad := tensor.NewVector(dim)
		loss, frames := eng.gradient(grad)
		if check.Enabled {
			check.Finite("core.worker.gradient", grad)
			check.FiniteScalar("core.worker.loss", loss)
		}
		return reply(append(encodeVec(grad), encodeF64Pair(loss, float64(frames))...))
	case opGNProduct:
		defer ob.Span(rank, "cg_minimize").End()
		comm.SetPhase("worker_curvature_product")
		v := make(tensor.Vector, dim)
		if err := decodeInto(payload, v); err != nil {
			return err
		}
		out := tensor.NewVector(dim)
		inner := ob.Span(rank, "worker_curvature_product")
		frames := eng.gnProduct(v, out)
		inner.End()
		if check.Enabled {
			check.Finite("core.worker.gnproduct", out)
		}
		return reply(append(encodeVec(out), encodeF64Pair(float64(frames), 0)...))
	case opHeldLoss:
		defer ob.Span(rank, "loss_eval").End()
		comm.SetPhase("loss_eval")
		trial := make(tensor.Vector, dim)
		if err := decodeInto(payload, trial); err != nil {
			return err
		}
		loss, frames := eng.heldLossAt(trial)
		return reply(encodeF64Pair(loss, float64(frames)))
	case opAccuracy:
		defer ob.Span(rank, "loss_eval").End()
		comm.SetPhase("loss_eval")
		correct, frames := eng.heldAccuracy()
		return reply(encodeF64Pair(float64(correct), float64(frames)))
	case opFisherDiag:
		defer ob.Span(rank, "cg_minimize").End()
		comm.SetPhase("cg_minimize")
		diag := tensor.NewVector(dim)
		frames := eng.fisherDiag(diag)
		return reply(append(encodeVec(diag), encodeF64Pair(float64(frames), 0)...))
	case opClockSync:
		// Telemetry traffic replies on its own fixed tags, not the
		// round-tagged reply stream.
		comm.SetPhase("telemetry")
		return telemetry.ServeClockSync(comm, 0, int(arg))
	case opTelemetry:
		comm.SetPhase("telemetry")
		return ship.Ship(comm, 0)
	}
	return fmt.Errorf("unknown opcode %v", op)
}
