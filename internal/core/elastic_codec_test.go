package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// TestEmOpBodyRoundTrip mirrors the worker's emOp parse
// (op byte, arg float bits, payload tail) against emOpBody's framing.
func TestEmOpBodyRoundTrip(t *testing.T) {
	payload := []byte("shard payload")
	body := emOpBody(opGradient, 0.75, payload)
	if len(body) != 5+len(payload) {
		t.Fatalf("body = %d bytes, want %d", len(body), 5+len(payload))
	}
	if op := float32(body[0]); op != opGradient {
		t.Errorf("op = %v, want %v", op, opGradient)
	}
	if arg := math.Float32frombits(binary.LittleEndian.Uint32(body[1:5])); arg != 0.75 {
		t.Errorf("arg = %v, want 0.75", arg)
	}
	if !bytes.Equal(body[5:], payload) {
		t.Errorf("payload tail = %q, want %q", body[5:], payload)
	}
}

// FuzzEmDecode feeds arbitrary bytes to the elastic message decoder:
// it must never panic, must reject only frames shorter than the
// [type][round u32] header, and anything it accepts must re-encode
// byte-identically (including through an emOpBody-framed body).
func FuzzEmDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(emOp), 0, 0, 0}) // one byte short of a header
	f.Add(emEncode(emOp, 0, nil))      // header-only op
	f.Add(emEncode(emOp, 3, emOpBody(opGradient, 0.5, []byte("grad"))))
	f.Add(emEncode(emOp, 9, emOpBody(opSample, 0, nil)))
	f.Add(emEncode(emShard, 2, []byte("not gob")))
	f.Add(emEncode(emPing, 1<<24-1, []byte{1, 2, 3, 4, 5, 6, 7, 8}))
	f.Add(emEncode(emStop, 7, nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}) // unknown type, garbage round
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, round, body, err := emDecode(data)
		if err != nil {
			if len(data) >= 5 {
				t.Fatalf("emDecode rejected a %d-byte frame: %v", len(data), err)
			}
			return
		}
		if round < 0 {
			t.Fatalf("emDecode round = %d, want non-negative", round)
		}
		if redone := emEncode(typ, round, body); !bytes.Equal(redone, data) {
			t.Fatalf("accepted frame does not round-trip: got %x, want %x", redone, data)
		}
		// The worker's emOp body parse must hold for any accepted frame
		// that is long enough; shorter op bodies are the worker's
		// "malformed op" error path, never a panic.
		if typ == emOp && len(body) >= 5 {
			_ = float32(body[0])
			_ = math.Float32frombits(binary.LittleEndian.Uint32(body[1:5]))
			_ = body[5:]
		}
	})
}
