package core

import (
	"errors"
	"math"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// faultPolicy builds the test fault policy: inject the given schedule,
// keep detection deadlines short so a genuinely stuck run fails the
// test quickly instead of eating the 10s production default.
func faultPolicy(t *testing.T, spec string) FaultPolicy {
	t.Helper()
	sched, err := mpi.ParseFaultSchedule(spec)
	if err != nil {
		t.Fatalf("parse fault schedule %q: %v", spec, err)
	}
	return FaultPolicy{
		FaultConfig: mpi.FaultConfig{OpDeadline: 5 * time.Second},
		Backoff:     time.Millisecond,
		Inject:      sched,
	}
}

// TestElasticKillWorkerMidCG is the acceptance drill: 5 ranks, kill
// worker 2 when it learns training reached iteration 3 (i.e. during
// that iteration's CG phase), on both fabrics. The run must finish with
// exactly one eviction, a resume loss matching the rewound checkpoint,
// and a final loss equivalent to an uninterrupted 3-worker run — with a
// full-data curvature sample every worker count executes the same
// algorithm, so losing a rank may not change the result.
func TestElasticKillWorkerMidCG(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()

	// Uninterrupted baseline at the post-eviction worker count.
	baseSess, err := NewSession(p, WithRanks(4))
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseSess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, fabric := range []FabricKind{FabricInproc, FabricTCP} {
		t.Run(fabric.String(), func(t *testing.T) {
			ob := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer()}
			ckPath := filepath.Join(t.TempDir(), "elastic.ck")
			sess, err := NewSession(p,
				WithRanks(5),
				WithFabric(fabric),
				WithObserver(ob),
				WithFaults(faultPolicy(t, "kill:rank=2,epoch=3")),
				WithCheckpoint(CheckpointPolicy{Every: 1, Path: ckPath}),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Run(cfg)
			if err != nil {
				t.Fatalf("elastic run: %v", err)
			}

			// Exactly one eviction, of the killed rank.
			if res.Fault == nil {
				t.Fatal("MasterResult.Fault nil on elastic run")
			}
			if n := len(res.Fault.Evictions); n != 1 {
				t.Fatalf("evictions = %d (%+v), want exactly 1", n, res.Fault.Evictions)
			}
			ev := res.Fault.Evictions[0]
			if ev.Rank != 2 {
				t.Errorf("evicted rank %d, want 2", ev.Rank)
			}
			if res.Fault.Surrendered {
				t.Error("run surrendered despite eviction budget")
			}
			if res.Fault.FinalWorkers != 3 {
				t.Errorf("final workers = %d, want 3", res.Fault.FinalWorkers)
			}

			// The kill landed at iteration 3, so the rewind can be at most
			// to the checkpoint of iteration 3.
			if ev.HFIter < 1 || ev.HFIter > cfg.MaxIterations {
				t.Errorf("eviction at HF iter %d, want within [1,%d]", ev.HFIter, cfg.MaxIterations)
			}
			if ev.RewindIter >= ev.HFIter && ev.HFIter > 0 {
				t.Errorf("rewound to iter %d, at/after the faulted iter %d", ev.RewindIter, ev.HFIter)
			}
			if ev.RewindWall <= 0 {
				t.Error("rewind wall time not recorded")
			}
			if ev.ReshardUtts <= 0 || ev.ReshardFrames <= 0 {
				t.Errorf("re-shard size %d utts/%d frames, want > 0 (the dead worker held data)",
					ev.ReshardUtts, ev.ReshardFrames)
			}

			// The resumed loss must reproduce the checkpointed loss: same θ,
			// same utterances, only the shard grouping (and hence float
			// summation order) changed.
			if math.IsNaN(ev.ResumeLoss) || ev.ResumeLoss <= 0 {
				t.Errorf("resume loss %v, want positive finite", ev.ResumeLoss)
			}
			if ev.RewindIter >= 1 && ev.RewindIter <= len(res.HF.Iters) {
				ckIter := res.HF.Iters[ev.RewindIter-1]
				if ckIter.Accepted {
					if d := math.Abs(ev.ResumeLoss - ckIter.Loss); d > 1e-3 {
						t.Errorf("resume loss %v vs checkpoint loss %v (|Δ|=%v), want ≤ 1e-3",
							ev.ResumeLoss, ckIter.Loss, d)
					}
				}
			}

			// Stitched trace: globally renumbered, contiguous, full length.
			if len(res.HF.Iters) != cfg.MaxIterations {
				t.Fatalf("stitched trace has %d iters, want %d", len(res.HF.Iters), cfg.MaxIterations)
			}
			for i, s := range res.HF.Iters {
				if s.Iter != i+1 {
					t.Fatalf("iters[%d].Iter = %d, want %d (renumbering broke)", i, s.Iter, i+1)
				}
			}

			// Equivalent final loss to the uninterrupted 3-worker baseline.
			if d := math.Abs(res.HF.FinalLoss - base.HF.FinalLoss); d > 0.05 {
				t.Errorf("final loss %v vs uninterrupted 3-worker %v (|Δ|=%v), want ≤ 0.05",
					res.HF.FinalLoss, base.HF.FinalLoss, d)
			}

			// Eviction telemetry: counters, gauges and the rewind histogram.
			reg := ob.Registry()
			if got := reg.Counter("core.elastic.evictions").Value(); got != 1 {
				t.Errorf("core.elastic.evictions = %d, want 1", got)
			}
			if got := reg.Gauge("core.elastic.live_workers").Value(); got != 3 {
				t.Errorf("core.elastic.live_workers = %v, want 3", got)
			}
			if got := reg.Counter("core.elastic.reshard_frames").Value(); got != int64(ev.ReshardFrames) {
				t.Errorf("core.elastic.reshard_frames = %d, want %d", got, ev.ReshardFrames)
			}
			if got := reg.Histogram("core.elastic.rewind_ns").Count(); got != 1 {
				t.Errorf("core.elastic.rewind_ns count = %d, want 1", got)
			}
			if got := reg.Histogram("core.elastic.heartbeat_rtt_ns").Count(); got == 0 {
				t.Error("no heartbeat RTTs recorded")
			}

			// The disk mirror must hold a loadable, resumable checkpoint.
			ck, err := LoadCheckpoint(ckPath)
			if err != nil {
				t.Fatalf("load mirrored checkpoint: %v", err)
			}
			if ck.Iteration < 1 {
				t.Errorf("mirrored checkpoint at iteration %d, want ≥ 1", ck.Iteration)
			}
		})
	}
}

// TestElasticSurrender exhausts a zero-tolerance eviction budget and
// checks the structured report in the returned SurrenderError.
func TestElasticSurrender(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	pol := faultPolicy(t, "kill:rank=1,epoch=2")
	pol.MaxEvictions = -1 // no evictions tolerated
	sess, err := NewSession(p, WithRanks(3), WithFaults(pol))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Run(fastHF())
	var serr *SurrenderError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want *SurrenderError", err)
	}
	if !serr.Report.Surrendered {
		t.Error("surrender report not marked Surrendered")
	}
	if len(serr.Report.Evictions) != 1 || serr.Report.Evictions[0].Rank != 1 {
		t.Errorf("surrender evictions = %+v, want exactly rank 1", serr.Report.Evictions)
	}
}

// TestElasticNoFaultMatchesClassic runs the elastic protocol with no
// injected faults: it must complete without evictions and land on the
// same loss as the classic collective protocol (identical algorithm,
// different transport pattern).
func TestElasticNoFaultMatchesClassic(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	classicSess, err := NewSession(p, WithRanks(3))
	if err != nil {
		t.Fatal(err)
	}
	classic, err := classicSess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	elasticSess, err := NewSession(p, WithRanks(3), WithFaults(FaultPolicy{}))
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := elasticSess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if elastic.Fault == nil || len(elastic.Fault.Evictions) != 0 {
		t.Fatalf("fault report %+v, want empty eviction list", elastic.Fault)
	}
	if d := math.Abs(elastic.HF.FinalLoss - classic.HF.FinalLoss); d > 1e-6 {
		t.Errorf("elastic final loss %v vs classic %v (|Δ|=%v), want ≤ 1e-6",
			elastic.HF.FinalLoss, classic.HF.FinalLoss, d)
	}
}

// TestSessionOptionValidation pins the documented illegal combinations.
func TestSessionOptionValidation(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	fabric := mpi.NewInprocFabric(2)
	defer fabric.Close()
	comm := mpi.NewComm(fabric.Transport(0))

	cases := []struct {
		name string
		opts []Option
	}{
		{"comm+ranks", []Option{WithComm(comm), WithRanks(4)}},
		{"comm+fabric", []Option{WithComm(comm), WithFabric(FabricTCP)}},
		{"comm+check", []Option{WithComm(comm), WithCheck(mpi.CheckConfig{})}},
		{"checkpoint-without-faults", []Option{WithCheckpoint(CheckpointPolicy{Every: 1})}},
		{"one-rank", []Option{WithRanks(1)}},
		{"inject-attached", []Option{WithComm(comm), WithFaults(FaultPolicy{Inject: &mpi.FaultSchedule{Events: []mpi.FaultEvent{{Action: mpi.ActKill, Rank: 1}}}})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewSession(p, tc.opts...); err == nil {
				t.Errorf("NewSession(%s) succeeded, want error", tc.name)
			}
		})
	}

	// The zero option set and the attach form are both legal.
	if _, err := NewSession(p); err != nil {
		t.Errorf("NewSession with defaults: %v", err)
	}
	if _, err := NewSession(p, WithComm(comm)); err != nil {
		t.Errorf("NewSession attach: %v", err)
	}
}

// TestSessionAttachMode runs master and worker ranks through the same
// attach-mode Session API over an externally owned fabric.
func TestSessionAttachMode(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	fabric := mpi.NewInprocFabric(3)
	defer fabric.Close()

	type out struct {
		res *MasterResult
		err error
	}
	outs := make(chan out, 3)
	for r := 0; r < 3; r++ {
		go func(r int) {
			comm := mpi.NewComm(fabric.Transport(r))
			defer comm.Close()
			sess, err := NewSession(p, WithComm(comm))
			if err != nil {
				outs <- out{nil, err}
				return
			}
			res, err := sess.Run(cfg)
			outs <- out{res, err}
		}(r)
	}
	var master *MasterResult
	for i := 0; i < 3; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res != nil {
			if master != nil {
				t.Fatal("two ranks returned a master result")
			}
			master = o.res
		}
	}
	if master == nil {
		t.Fatal("no rank returned a master result")
	}
	if master.HF.FinalLoss <= 0 || math.IsNaN(master.HF.FinalLoss) {
		t.Errorf("attach-mode final loss %v", master.HF.FinalLoss)
	}
}

// TestElasticHeartbeatNoGoroutineLeak is the regression test for the
// goroutineleak audit of the elastic master: a run with heartbeats on
// every iteration (plus the telemetry plane's shipper and watchdog
// machinery) must return the process to its pre-run goroutine count.
// The heartbeat is deliberately synchronous — this pins that contract
// so a future "async ping" refactor cannot silently leak.
func TestElasticHeartbeatNoGoroutineLeak(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	before := runtime.NumGoroutine()

	ob := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), Events: obs.NewEventLog(0)}
	sess, err := NewSession(p,
		WithRanks(3),
		WithObserver(ob),
		WithTelemetry(telemetry.Config{}),
		WithFaults(FaultPolicy{
			FaultConfig:    mpi.FaultConfig{OpDeadline: 5 * time.Second},
			HeartbeatEvery: 1,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(fastHF()); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Reported RTTs prove heartbeats actually ran.
	hb := ob.Registry().Histogram("core.elastic.heartbeat_rtt_ns")
	if hb.Count() == 0 {
		t.Fatal("no heartbeat RTTs recorded with HeartbeatEvery=1")
	}

	// Goroutines wind down asynchronously after Run returns; poll until
	// the count settles back to (at or below) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before run, %d after settle window — leak",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestElasticDrainLocalTelemetryOnFailure is the regression test for
// the non-fault failure path: the master's own shipper must be drained
// into the merger (without contacting any worker) so telemetry recorded
// up to the error survives into /trace and post-mortem bundles.
func TestElasticDrainLocalTelemetryOnFailure(t *testing.T) {
	ob := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), Events: obs.NewEventLog(0)}
	plane := telemetry.NewPlane(telemetry.Config{}, ob.Tracer().Epoch())
	m := &elasticMaster{ob: ob, plane: plane, local: telemetry.NewShipper(0, ob)}

	ob.Span(0, "doomed_iteration").End()
	m.drainLocalTelemetry()

	evs := plane.Merger().Events()
	if len(evs) != 1 || evs[0].Name != "doomed_iteration" {
		t.Fatalf("merger events after failure drain = %+v, want the master span", evs)
	}

	// The nil-plane master (telemetry disabled) must be a no-op, not a
	// panic, on the same path.
	(&elasticMaster{ob: ob}).drainLocalTelemetry()
}
