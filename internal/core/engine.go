package core

import (
	"math/rand"

	"repro/internal/corpus"
	"repro/internal/nn"
	"repro/internal/seq"
	"repro/internal/tensor"
)

// dataset is a materialized, spliced view of a set of utterances: the DNN
// input matrix, per-frame targets, and per-utterance row ranges (needed by
// the sequence criterion and curvature sampling).
type dataset struct {
	x      *tensor.Matrix
	y      []int
	bounds [][2]int // [start, end) row range of each utterance
}

func newDataset(utts []*corpus.Utterance, featDim, context int) *dataset {
	x, y := corpus.SpliceFrames(utts, featDim, context)
	d := &dataset{x: x, y: y}
	row := 0
	for _, u := range utts {
		d.bounds = append(d.bounds, [2]int{row, row + u.NumFrames()})
		row += u.NumFrames()
	}
	return d
}

func (d *dataset) frames() int { return d.x.Rows }

// engine performs the per-shard computation shared verbatim by the serial
// objective and the distributed workers: gradients, Gauss-Newton products
// over the current curvature sample, and held-out losses. All results are
// sums over local frames; normalization happens after (possibly
// distributed) aggregation.
type engine struct {
	net         *nn.Network
	train       *dataset
	heldout     *dataset
	criterion   Criterion
	trans       seq.Transitions
	batchFrames int
	sampleFrac  float64
	seed        int64

	sample       [][2]int // row ranges of the current curvature sample
	sampleFrames int
}

func newEngine(p Problem, trainUtts, heldUtts []*corpus.Utterance) *engine {
	p = p.filled()
	e := &engine{
		net:         nn.New(p.Topo),
		train:       newDataset(trainUtts, p.Train.FeatDim, p.Train.Context),
		heldout:     newDataset(heldUtts, p.Heldout.FeatDim, p.Heldout.Context),
		criterion:   p.Criterion,
		trans:       p.Trans,
		batchFrames: p.BatchFrames,
		sampleFrac:  p.SampleFraction,
		seed:        p.Seed,
	}
	// Until the first draw, the curvature sample is the full shard.
	e.sample = e.train.bounds
	e.sampleFrames = e.train.frames()
	return e
}

func (e *engine) setParams(p tensor.Vector) { e.net.SetParams(p) }

// gradient accumulates the summed-loss gradient over the local training
// shard into grad and returns the summed loss and frame count.
func (e *engine) gradient(grad tensor.Vector) (loss float64, frames int) {
	switch e.criterion {
	case CrossEntropy:
		for lo := 0; lo < e.train.frames(); lo += e.batchFrames {
			hi := min(lo+e.batchFrames, e.train.frames())
			l, _ := e.net.LossGrad(e.train.x.View(lo, 0, hi-lo, e.train.x.Cols), e.train.y[lo:hi], grad)
			loss += l
		}
	case Sequence:
		for _, b := range e.train.bounds {
			loss += e.seqLossGrad(e.train, b, grad)
		}
	}
	return loss, e.train.frames()
}

// seqLossGrad runs the sequence criterion over one utterance and
// backpropagates its logit gradient; returns the utterance loss.
func (e *engine) seqLossGrad(d *dataset, b [2]int, grad tensor.Vector) float64 {
	rows := b[1] - b[0]
	x := d.x.View(b[0], 0, rows, d.x.Cols)
	f := e.net.Forward(x)
	dlogits := tensor.NewMatrix(rows, f.Logits.Cols)
	loss := seq.LossGrad(f.Logits, d.y[b[0]:b[1]], e.trans, dlogits)
	if grad != nil {
		e.net.BackpropOutputGrad(f, dlogits, grad)
	}
	return loss
}

// drawSample selects the curvature sample for HF iteration iter: a
// fraction of the local utterances, deterministic in (seed, iter) so
// every run with the same configuration sees the same sample.
func (e *engine) drawSample(iter int) {
	if e.sampleFrac >= 1 {
		e.sample = e.train.bounds
		e.sampleFrames = e.train.frames()
		return
	}
	rng := rand.New(rand.NewSource(e.seed*1000003 + int64(iter)))
	n := len(e.train.bounds)
	k := int(float64(n)*e.sampleFrac + 0.5)
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)
	e.sample = e.sample[:0]
	e.sampleFrames = 0
	for _, idx := range perm[:k] {
		b := e.train.bounds[idx]
		e.sample = append(e.sample, b)
		e.sampleFrames += b[1] - b[0]
	}
}

// gnProduct accumulates the summed Gauss-Newton product over the current
// curvature sample into out and returns the sample frame count. The
// curvature is always the frame-level Gauss-Newton matrix, also under the
// sequence criterion (the standard practice in HF sequence training).
func (e *engine) gnProduct(v, out tensor.Vector) (frames int) {
	for _, b := range e.sample {
		for lo := b[0]; lo < b[1]; lo += e.batchFrames {
			hi := min(lo+e.batchFrames, b[1])
			e.net.GNProduct(e.train.x.View(lo, 0, hi-lo, e.train.x.Cols), v, out)
		}
	}
	return e.sampleFrames
}

// heldLossAt evaluates the summed held-out loss at parameters p, restoring
// the engine's current parameters afterwards.
func (e *engine) heldLossAt(p tensor.Vector) (loss float64, frames int) {
	saved := e.net.Params.Clone()
	e.net.SetParams(p)
	loss, frames = e.heldLoss()
	e.net.SetParams(saved)
	return loss, frames
}

// heldLoss evaluates the summed held-out loss at the current parameters.
func (e *engine) heldLoss() (loss float64, frames int) {
	switch e.criterion {
	case CrossEntropy:
		for lo := 0; lo < e.heldout.frames(); lo += e.batchFrames {
			hi := min(lo+e.batchFrames, e.heldout.frames())
			f := e.net.Forward(e.heldout.x.View(lo, 0, hi-lo, e.heldout.x.Cols))
			l, _ := nn.CrossEntropy(f.Logits, e.heldout.y[lo:hi])
			loss += l
		}
	case Sequence:
		for _, b := range e.heldout.bounds {
			loss += e.seqLoss(e.heldout, b)
		}
	}
	return loss, e.heldout.frames()
}

// seqLoss computes the sequence loss of one utterance without gradients.
func (e *engine) seqLoss(d *dataset, b [2]int) float64 {
	rows := b[1] - b[0]
	x := d.x.View(b[0], 0, rows, d.x.Cols)
	f := e.net.Forward(x)
	dlogits := tensor.NewMatrix(rows, f.Logits.Cols)
	return seq.LossGrad(f.Logits, d.y[b[0]:b[1]], e.trans, dlogits)
}

// fisherDiag accumulates the empirical-Fisher diagonal over the current
// curvature sample into out and returns the sample frame count; it backs
// the Martens CG preconditioner (the paper's deferred extension).
func (e *engine) fisherDiag(out tensor.Vector) (frames int) {
	for _, b := range e.sample {
		for lo := b[0]; lo < b[1]; lo += e.batchFrames {
			hi := min(lo+e.batchFrames, b[1])
			e.net.FisherDiag(e.train.x.View(lo, 0, hi-lo, e.train.x.Cols), e.train.y[lo:hi], out)
		}
	}
	return e.sampleFrames
}

// heldAccuracy returns frame classification accuracy on the held-out
// shard as (correct, frames).
func (e *engine) heldAccuracy() (correct, frames int) {
	for lo := 0; lo < e.heldout.frames(); lo += e.batchFrames {
		hi := min(lo+e.batchFrames, e.heldout.frames())
		f := e.net.Forward(e.heldout.x.View(lo, 0, hi-lo, e.heldout.x.Cols))
		_, c := nn.CrossEntropy(f.Logits, e.heldout.y[lo:hi])
		correct += c
	}
	return correct, e.heldout.frames()
}
