package core

import (
	"math/rand"

	"repro/internal/mpi"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newTestFabric(n int) *mpi.InprocFabric { return mpi.NewInprocFabric(n) }

func newTestComm(f *mpi.InprocFabric, rank int) *mpi.Comm {
	return mpi.NewComm(f.Transport(rank))
}
