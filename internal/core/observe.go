package core

import (
	"encoding/json"
	"io"

	"repro/internal/hf"
)

// iterRecord is the JSONL export shape of one outer HF iteration — the
// per-iteration telemetry the paper's Table 1/Figure 3 discussion reads
// off (loss trajectory, damping, CG effort).
type iterRecord struct {
	Iter       int     `json:"iter"`
	Loss       float64 `json:"loss"`
	Lambda     float64 `json:"lambda"`
	Rho        float64 `json:"rho"`
	CGIters    int     `json:"cg_iters"`
	Backtracks int     `json:"backtracks"`
	BestIdx    int     `json:"best_idx"`
	Alpha      float64 `json:"alpha"`
	Accepted   bool    `json:"accepted"`
	GradNorm   float64 `json:"grad_norm"`
}

// TelemetryJSONL returns an hf.Config.Telemetry hook that appends one
// JSON line per HF iteration to w. Write errors are dropped: telemetry
// must never abort a training run.
func TelemetryJSONL(w io.Writer) func(hf.IterStats) {
	enc := json.NewEncoder(w)
	return func(s hf.IterStats) {
		_ = enc.Encode(iterRecord{
			Iter:       s.Iter,
			Loss:       s.Loss,
			Lambda:     s.Lambda,
			Rho:        s.Rho,
			CGIters:    s.CGIters,
			Backtracks: s.Backtracks,
			BestIdx:    s.BestIdx,
			Alpha:      s.Alpha,
			Accepted:   s.Accepted,
			GradNorm:   s.GradNorm,
		})
	}
}
