package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/hf"
	"repro/internal/obs"
)

// TestDistributedObservability runs a real 3-rank training job with a
// full observer attached and checks every artifact the observability
// layer promises: per-rank phase spans, MPI/worker/HF metrics, the
// master's profiler snapshot, and one JSONL record per HF iteration.
func TestDistributedObservability(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 3
	var jsonl bytes.Buffer
	cfg.Telemetry = TelemetryJSONL(&jsonl)
	ob := &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer()}

	res, err := trainDist(p, cfg, 3, nil, WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}

	// Spans: each required phase must appear, and the headline phases on
	// at least two distinct ranks (master + ≥1 worker).
	ranksFor := make(map[string]map[int]bool)
	for _, e := range ob.Trace.Events() {
		if ranksFor[e.Name] == nil {
			ranksFor[e.Name] = make(map[int]bool)
		}
		ranksFor[e.Name][e.Rank] = true
	}
	for _, name := range []string{"load_data", "gradient_loss", "sync_weights", "cg_minimize", "loss_eval", "worker_curvature_product"} {
		if len(ranksFor[name]) == 0 {
			t.Errorf("no spans named %q", name)
		}
	}
	for _, name := range []string{"load_data", "gradient_loss", "sync_weights", "cg_minimize"} {
		if len(ranksFor[name]) < 2 {
			t.Errorf("spans %q on %d ranks, want ≥2", name, len(ranksFor[name]))
		}
	}
	if ranksFor["worker_curvature_product"][0] {
		t.Error("worker_curvature_product span on the master rank")
	}

	// Metrics: collectives routed from the profiler, worker wait time and
	// shard sizes, and one iteration wall-time observation per HF iter.
	reg := ob.Metrics
	if n := reg.Histogram("mpi.bcast.latency_ns").Count(); n == 0 {
		t.Error("no mpi.bcast.latency_ns observations")
	}
	if n := reg.Histogram("mpi.reduce.latency_ns").Count(); n == 0 {
		t.Error("no mpi.reduce.latency_ns observations")
	}
	var totalFrames float64
	for w := 1; w <= 2; w++ {
		if v := reg.Counter(fmt.Sprintf("core.worker.%d.wait_ns", w)).Value(); v <= 0 {
			t.Errorf("worker %d wait counter = %d, want > 0", w, v)
		}
		g := reg.Gauge(fmt.Sprintf("core.worker.%d.train_frames", w)).Value()
		if g <= 0 {
			t.Errorf("worker %d train_frames gauge = %v, want > 0", w, g)
		}
		totalFrames += g
	}
	if want := float64(p.Train.TotalFrames()); totalFrames != want {
		t.Errorf("shard frame gauges sum to %v, corpus has %v", totalFrames, want)
	}
	if n := reg.Histogram("core.hf.iter_wall_ns").Count(); n != int64(len(res.HF.Iters)) {
		t.Errorf("iter wall histogram has %d observations, want %d", n, len(res.HF.Iters))
	}

	// The master's per-phase profiler snapshot rides on the result.
	if len(res.MPIProfile) == 0 {
		t.Fatal("MasterResult.MPIProfile empty")
	}
	phases := make(map[string]bool)
	for _, ps := range res.MPIProfile {
		phases[ps.Phase] = true
	}
	for _, want := range []string{"load_data", "sync_weights", "gradient_loss", "cg_minimize", "loss_eval"} {
		if !phases[want] {
			t.Errorf("MPIProfile missing phase %q", want)
		}
	}

	// Telemetry: one JSONL record per HF iteration with the key fields.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != len(res.HF.Iters) {
		t.Fatalf("%d JSONL records, want %d", len(lines), len(res.HF.Iters))
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		for _, key := range []string{"iter", "loss", "lambda", "rho", "cg_iters", "backtracks", "alpha", "accepted", "grad_norm"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("record %d missing %q: %s", i, key, line)
			}
		}
		if int(rec["iter"].(float64)) != res.HF.Iters[i].Iter {
			t.Fatalf("record %d iter = %v, want %d", i, rec["iter"], res.HF.Iters[i].Iter)
		}
	}
}

// TestDistributedObsNilObserverUnchanged: the nil-observer path must
// produce bit-identical training results to the uninstrumented entry
// point.
func TestDistributedObsNilObserverUnchanged(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 2
	plain, err := trainDist(p, cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := trainDist(p, cfg, 2, nil, WithObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	if plain.HF.FinalLoss != instr.HF.FinalLoss {
		t.Fatalf("final loss %v vs %v", plain.HF.FinalLoss, instr.HF.FinalLoss)
	}
}

func TestTelemetryJSONLFields(t *testing.T) {
	var buf bytes.Buffer
	emit := TelemetryJSONL(&buf)
	emit(hf.IterStats{Iter: 3, Loss: 1.5, Lambda: 0.25, Rho: 0.8, CGIters: 12,
		Backtracks: 2, BestIdx: 9, Alpha: 0.5, Accepted: true, GradNorm: 0.75})
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"iter": 3, "loss": 1.5, "lambda": 0.25, "rho": 0.8, "cg_iters": 12,
		"backtracks": 2, "best_idx": 9, "alpha": 0.5, "grad_norm": 0.75,
	}
	for k, v := range want {
		if got := rec[k].(float64); got != v {
			t.Errorf("%s = %v, want %v", k, got, v)
		}
	}
	if rec["accepted"] != true {
		t.Errorf("accepted = %v, want true", rec["accepted"])
	}
}
