package core

import (
	"strings"
	"testing"

	"repro/internal/mpi"
	"repro/internal/tensor"
)

// TestReservedTagPlan pins the trainer's static point-to-point tag plan
// and its disjointness from the tags the mpi package reserves. The
// tagspace analyzer proves the uses inside each module are collision-free;
// this test pins the constant values themselves so perturbing any of them
// fails make verify even when the perturbed value never appears in a
// literal tag position (e.g. mpi.DefaultHeartbeatTag, which reaches Send
// only through FaultPolicy.HeartbeatTag).
func TestReservedTagPlan(t *testing.T) {
	pins := []struct {
		name      string
		got, want int
	}{
		{"tagShard", tagShard, 9000},
		{"tagAsyncGrad", tagAsyncGrad, 9100},
		{"tagAsyncPull", tagAsyncPull, 9101},
		{"tagAsyncParam", tagAsyncParam, 9102},
		{"tagAsyncDone", tagAsyncDone, 9103},
		{"tagAsyncFinal", tagAsyncFinal, 9104},
		{"tagAsyncEval", tagAsyncEval, 9105},
		{"tagElastic", tagElastic, 9500},
		{"mpi.TagClockSync", mpi.TagClockSync, 9600},
		{"mpi.TagTelemetry", mpi.TagTelemetry, 9601},
		{"tagElasticReply", tagElasticReply, 16 << 24},
		{"mpi.DefaultHeartbeatTag", mpi.DefaultHeartbeatTag, 17 << 24},
	}
	seen := map[int]string{}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, want %d", p.name, p.got, p.want)
		}
		if prev, dup := seen[p.got]; dup {
			t.Errorf("%s and %s share tag %d", prev, p.name, p.got)
		}
		seen[p.got] = p.name
	}

	// Both round-offset blocks (elastic replies at tagElasticReply+round,
	// heartbeat pongs at HeartbeatTag+round) must hold any round below
	// 2²⁴ without crossing into the neighbouring block.
	const maxRound = 1<<24 - 1
	if tagElasticReply+maxRound >= mpi.DefaultHeartbeatTag {
		t.Errorf("elastic reply block [%d, %d] overlaps the heartbeat block at %d",
			tagElasticReply, tagElasticReply+maxRound, mpi.DefaultHeartbeatTag)
	}
}

// TestOpNameCoverage keeps opName total over the objective opcode set:
// a newly added opcode that falls through to the numeric default would
// ship unreadable FaultReports and event-log entries.
func TestOpNameCoverage(t *testing.T) {
	ops := []float32{
		opSetParams, opGradient, opSample, opGNProduct, opHeldLoss,
		opAccuracy, opFisherDiag, opStop, opClockSync, opTelemetry,
	}
	if last := opSetParams + float32(len(ops)) - 1; last != opTelemetry {
		t.Errorf("opcode range [%v, %v] does not cover %d contiguous ops — update this test's op list",
			opSetParams, opTelemetry, len(ops))
	}
	seen := map[string]float32{}
	for _, op := range ops {
		name := opName(op)
		if strings.HasPrefix(name, "op") {
			t.Errorf("opName(%v) fell through to the numeric default %q", op, name)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opName maps both %v and %v to %q", prev, op, name)
		}
		seen[name] = op
	}
	// One past the last opcode has no name and must fall through.
	if got := opName(opTelemetry + 1); !strings.HasPrefix(got, "op") {
		t.Errorf("opName(%v) = %q, want the numeric default", opTelemetry+1, got)
	}
}

// TestReplyLengthAgreement ties the worker's reply encoders to the
// lengths the elastic master demands in gatherOp: vector-bearing ops
// (gradient, gnproduct, fisher_diag) reply with 4·dim+16 bytes, scalar
// ops (held_loss, accuracy) with exactly 16. Drift on either side makes
// the master evict healthy workers for "malformed reply".
func TestReplyLengthAgreement(t *testing.T) {
	const dim = 7
	v := make(tensor.Vector, dim)
	for i := range v {
		v[i] = float32(i) - 2.5
	}

	vecReply := append(encodeVec(v), encodeF64Pair(3.25, 11)...)
	if len(vecReply) != 4*dim+16 {
		t.Errorf("vector reply = %d bytes, want 4*dim+16 = %d", len(vecReply), 4*dim+16)
	}
	if pair := encodeF64Pair(0.5, 2); len(pair) != 16 {
		t.Errorf("scalar reply = %d bytes, want 16", len(pair))
	}

	// The master's split of a vector reply must recover both halves.
	out := make(tensor.Vector, dim)
	if err := decodeInto(vecReply[:4*dim], out); err != nil {
		t.Fatalf("decodeInto: %v", err)
	}
	for i := range v {
		if out[i] != v[i] {
			t.Fatalf("vector half out[%d] = %v, want %v", i, out[i], v[i])
		}
	}
	var pair [2]float64
	if err := decodeF64Pair(vecReply[4*dim:], &pair); err != nil {
		t.Fatalf("decodeF64Pair: %v", err)
	}
	if pair != [2]float64{3.25, 11} {
		t.Fatalf("scalar half = %v, want [3.25 11]", pair)
	}
}
