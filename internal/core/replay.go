package core

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/hf"
)

// ReplayRun summarizes one of the two trainings a replay verification
// performs.
type ReplayRun struct {
	// Wall is the training's wall-clock duration.
	Wall time.Duration `json:"wall_ns"`
	// FinalLoss is the held-out loss the run ended at.
	FinalLoss float64 `json:"final_loss"`
	// Records is the number of hash records the run emitted.
	Records int `json:"records"`
}

// ReplayReport is the outcome of a ReplayVerify call: two seeded runs'
// hash streams compared record by record.
type ReplayReport struct {
	// Fabric is the transport the runs used ("inproc" or "tcp").
	Fabric string `json:"fabric"`
	// Ranks is the rank count including the master.
	Ranks int `json:"ranks"`
	// Iterations is the configured outer HF iteration bound.
	Iterations int `json:"iterations"`
	// Runs holds both trainings' summaries.
	Runs [2]ReplayRun `json:"runs"`
	// Divergent reports whether the hash streams differed anywhere.
	Divergent bool `json:"divergent"`
	// DivergeIndex, DivergeIter and DivergeTensor locate the first
	// mismatched record when Divergent (the wire-format detail is in
	// Detail).
	DivergeIndex  int    `json:"diverge_index,omitempty"`
	DivergeIter   int    `json:"diverge_iter,omitempty"`
	DivergeTensor string `json:"diverge_tensor,omitempty"`
	// Detail renders both mismatched records in the replay wire format.
	Detail string `json:"detail,omitempty"`
}

// String renders a one-line human summary.
func (r *ReplayReport) String() string {
	if r.Divergent {
		return fmt.Sprintf("replay %s/%d ranks: DIVERGED at iter %d tensor %s (%s)",
			r.Fabric, r.Ranks, r.DivergeIter, r.DivergeTensor, r.Detail)
	}
	return fmt.Sprintf("replay %s/%d ranks: %d records bit-identical across runs (%v + %v)",
		r.Fabric, r.Ranks, r.Runs[0].Records, r.Runs[0].Wall.Round(time.Millisecond), r.Runs[1].Wall.Round(time.Millisecond))
}

// ReplayVerify runs a short distributed HF training twice — same seed,
// same shard plan, same fabric — and diffs the per-iteration hash
// streams the optimizer records (weights, gradients, CG iterates). Zero
// divergence certifies the whole pipeline is bit-reproducible: shard
// partitioning, the deterministic reduction trees, CG, backtracking and
// the λ updates. The first divergent record names the iteration and
// tensor where reproducibility broke. fabric is "inproc" or "tcp".
func ReplayVerify(p Problem, cfg hf.Config, ranks int, part corpus.Partitioner, fabric string) (*ReplayReport, error) {
	kind, err := ParseFabric(fabric)
	if err != nil {
		return nil, fmt.Errorf("core: unknown replay fabric %q (want inproc, tcp)", fabric)
	}
	report := &ReplayReport{Fabric: fabric, Ranks: ranks, Iterations: cfg.MaxIterations}
	var streams [2][]check.HashRecord
	for run := 0; run < 2; run++ {
		hs := &check.HashStream{}
		c := cfg
		c.Hash = hs
		sess, err := NewSession(p, WithRanks(ranks), WithFabric(kind), WithPartitioner(part))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := sess.Run(c)
		if err != nil {
			return nil, fmt.Errorf("core: replay run %d on %s: %w", run+1, fabric, err)
		}
		streams[run] = hs.Records()
		report.Runs[run] = ReplayRun{
			Wall:      time.Since(start),
			FinalLoss: res.HF.FinalLoss,
			Records:   len(streams[run]),
		}
	}
	if d, diverged := check.FirstDivergence(streams[0], streams[1]); diverged {
		report.Divergent = true
		report.DivergeIndex = d.Index
		rec := d.A
		if rec.Tensor == "" {
			rec = d.B
		}
		report.DivergeIter = rec.Iter
		report.DivergeTensor = rec.Tensor
		report.Detail = d.String()
	}
	return report, nil
}
