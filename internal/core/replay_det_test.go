//go:build determinism

package core

import (
	"testing"

	"repro/internal/check"
)

// TestReplayVerifyTCPGranular exercises the replay gate over the
// localhost TCP fabric with fine-grained CG hashing compiled in
// (check.Replay): every curvature application on the real socket
// transport must be bit-identical across two seeded runs.
func TestReplayVerifyTCPGranular(t *testing.T) {
	if !check.Replay {
		t.Fatal("determinism build tag not in effect")
	}
	p := testProblem(t, CrossEntropy)
	rep, err := ReplayVerify(p, replayConfig(2), 3, nil, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent {
		t.Fatalf("seeded TCP replay diverged: %s", rep.Detail)
	}
	// Granular mode records each CG application on top of the
	// per-iteration summaries, so there must be strictly more records
	// than iterations can account for without it (≥2 per CG step).
	if rep.Runs[0].Records <= 4*rep.Iterations {
		t.Errorf("only %d records for %d iterations; granular CG hashing seems inactive",
			rep.Runs[0].Records, rep.Iterations)
	}
}
