package core

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/hf"
)

// replayConfig is a short HF run for the replay gate tests.
func replayConfig(iters int) hf.Config {
	return hf.Config{
		MaxIterations: iters,
		Lambda0:       1,
		CG:            hf.CGOpts{MaxIters: 10, MinIters: 3},
	}
}

// TestReplayVerifyInproc is the replay gate's core promise: two seeded
// runs over the in-process fabric produce bit-identical hash streams.
func TestReplayVerifyInproc(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	rep, err := ReplayVerify(p, replayConfig(3), 3, nil, "inproc")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergent {
		t.Fatalf("seeded replay diverged: %s", rep.Detail)
	}
	if rep.Runs[0].Records == 0 || rep.Runs[0].Records != rep.Runs[1].Records {
		t.Fatalf("record counts %d vs %d; want equal and non-zero",
			rep.Runs[0].Records, rep.Runs[1].Records)
	}
	if rep.Runs[0].FinalLoss != rep.Runs[1].FinalLoss {
		//lint:ignore floateq bit-identical replay is exactly an exact-equality contract
		t.Fatalf("final losses differ: %v vs %v", rep.Runs[0].FinalLoss, rep.Runs[1].FinalLoss)
	}
	if !strings.Contains(rep.String(), "bit-identical") {
		t.Errorf("summary %q should report bit-identical streams", rep)
	}
}

// TestReplayVerifyUnknownFabric pins the error path.
func TestReplayVerifyUnknownFabric(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	if _, err := ReplayVerify(p, replayConfig(1), 2, nil, "carrier-pigeon"); err == nil {
		t.Fatal("unknown fabric should error")
	}
}

// TestReplayDetectsSeedChange checks the gate actually has teeth: runs
// with different seeds must produce divergent streams, detected at the
// very first hashed tensor (the gradient at the seed-dependent θ0).
func TestReplayDetectsSeedChange(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := replayConfig(2)

	streams := make([][]check.HashRecord, 2)
	for i, seed := range []int64{7, 8} {
		q := p
		q.Seed = seed
		hs := &check.HashStream{}
		c := cfg
		c.Hash = hs
		if _, err := trainDist(q, c, 3, nil); err != nil {
			t.Fatal(err)
		}
		streams[i] = hs.Records()
	}
	d, diverged := check.FirstDivergence(streams[0], streams[1])
	if !diverged {
		t.Fatal("different seeds produced identical hash streams")
	}
	if d.Index != 0 || d.A.Tensor != "gradient" {
		t.Errorf("divergence at record %d tensor %q; want record 0 tensor gradient", d.Index, d.A.Tensor)
	}
}
