package core

import (
	"math"

	"repro/internal/hf"
	"repro/internal/tensor"
)

// SerialObjective implements hf.Objective with all computation in one
// process — the single-machine reference the distributed trainer must
// match exactly.
type SerialObjective struct {
	eng *engine
	// totalTrainFrames normalizes summed losses/gradients to per-frame
	// means.
	totalTrainFrames int
}

// NewSerialObjective builds the serial objective; network weights are
// Glorot-initialized from p.Seed.
func NewSerialObjective(p Problem) (*SerialObjective, error) {
	p = p.filled()
	if err := p.validate(); err != nil {
		return nil, err
	}
	eng := newEngine(p, p.Train.Utts, p.Heldout.Utts)
	if p.InitParams != nil {
		eng.net.SetParams(p.InitParams)
	} else {
		eng.net.InitGlorot(p.InitRNG())
	}
	return &SerialObjective{eng: eng, totalTrainFrames: eng.train.frames()}, nil
}

// Dim implements hf.Objective.
func (o *SerialObjective) Dim() int { return o.eng.net.NumParams() }

// Params implements hf.Objective.
func (o *SerialObjective) Params() tensor.Vector { return o.eng.net.Params.Clone() }

// SetParams implements hf.Objective.
func (o *SerialObjective) SetParams(p tensor.Vector) { o.eng.setParams(p) }

// Gradient implements hf.Objective: the mean per-frame gradient over the
// full training set.
func (o *SerialObjective) Gradient() tensor.Vector {
	grad := tensor.NewVector(o.Dim())
	o.eng.gradient(grad)
	if o.totalTrainFrames > 0 {
		grad.Scale(1 / float32(o.totalTrainFrames))
	}
	return grad
}

// NewCurvatureSample implements hf.Objective.
func (o *SerialObjective) NewCurvatureSample(iter int) { o.eng.drawSample(iter) }

// GNProduct implements hf.Objective: mean Gauss-Newton product over the
// current curvature sample.
func (o *SerialObjective) GNProduct(v, out tensor.Vector) {
	out.Zero()
	frames := o.eng.gnProduct(v, out)
	if frames > 0 {
		out.Scale(1 / float32(frames))
	}
}

// HeldOutLoss implements hf.Objective: mean per-frame held-out loss at p.
func (o *SerialObjective) HeldOutLoss(p tensor.Vector) float64 {
	loss, frames := o.eng.heldLossAt(p)
	if frames <= 0 {
		return 0
	}
	return loss / float64(frames)
}

// CurvatureDiag implements hf.Preconditioned: the Martens diagonal
// preconditioner (diag(F)/N + λ)^α with α = 0.75 over the current
// curvature sample.
func (o *SerialObjective) CurvatureDiag(lambda float64) tensor.Vector {
	diag := tensor.NewVector(o.Dim())
	frames := o.eng.fisherDiag(diag)
	return finishPreconditioner(diag, frames, lambda)
}

// finishPreconditioner normalizes a summed Fisher diagonal, adds the
// damping, applies the Martens exponent and clamps away from zero.
func finishPreconditioner(diag tensor.Vector, frames int, lambda float64) tensor.Vector {
	const alpha = 0.75
	if frames < 1 {
		frames = 1
	}
	inv := 1.0 / float64(frames)
	for i, v := range diag {
		m := math.Pow(float64(v)*inv+lambda, alpha)
		if m < 1e-8 {
			m = 1e-8
		}
		diag[i] = float32(m)
	}
	return diag
}

// HeldOutAccuracy reports frame accuracy on the held-out set at the
// current parameters.
func (o *SerialObjective) HeldOutAccuracy() float64 {
	correct, frames := o.eng.heldAccuracy()
	if frames == 0 {
		return 0
	}
	return float64(correct) / float64(frames)
}

// TrainSerialHF trains with Hessian-free optimization in one process and
// returns the objective (holding the trained network) and the optimizer
// result.
func TrainSerialHF(p Problem, cfg hf.Config) (*SerialObjective, *hf.Result, error) {
	obj, err := NewSerialObjective(p)
	if err != nil {
		return nil, nil, err
	}
	res := hf.Optimize(obj, cfg)
	return obj, &res, nil
}
