package core

// Session is the single front door to distributed training. It replaces
// the old five-way cross-product of entry points
// (TrainDistributedHF{,Obs,Checked,TCP,TCPChecked} × Run{Master,Worker}{,Obs})
// with one options-based constructor:
//
//	sess, err := core.NewSession(p,
//		core.WithRanks(8),
//		core.WithFabric(core.FabricTCP),
//		core.WithObserver(ob),
//		core.WithFaults(core.FaultPolicy{MaxEvictions: 2}),
//		core.WithCheckpoint(core.CheckpointPolicy{Every: 1}),
//	)
//	...
//	res, err := sess.Run(hfCfg)
//
// Two modes:
//
//   - Spawn mode (default): the session builds an in-process fabric
//     (goroutine ranks over InprocFabric or localhost TCP), runs the
//     master on rank 0 and workers on the rest, joins them, and returns
//     the master's result.
//
//   - Attach mode (WithComm): the caller owns rank launch — one Session
//     per rank over an externally built communicator. Run dispatches on
//     the comm's rank: rank 0 trains and returns the result; other
//     ranks serve the worker loop and return (nil, nil).
//
// WithFaults switches both modes from the classic collective protocol
// to the elastic fault-tolerant runtime (elastic.go).

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// FabricKind selects the transport a spawn-mode Session builds.
type FabricKind int

const (
	// FabricInproc is the deterministic in-process mailbox fabric.
	FabricInproc FabricKind = iota
	// FabricTCP is the localhost TCP fabric — the same code path a true
	// multi-process deployment uses, exercised inside one process.
	FabricTCP
)

func (k FabricKind) String() string {
	switch k {
	case FabricInproc:
		return "inproc"
	case FabricTCP:
		return "tcp"
	}
	return fmt.Sprintf("fabric(%d)", int(k))
}

// ParseFabric converts a flag string ("inproc", "tcp") to a FabricKind.
func ParseFabric(s string) (FabricKind, error) {
	switch s {
	case "inproc":
		return FabricInproc, nil
	case "tcp":
		return FabricTCP, nil
	}
	return 0, fmt.Errorf("core: unknown fabric %q (want inproc, tcp)", s)
}

// sessionOptions accumulates option state before validation.
type sessionOptions struct {
	ranks    int
	ranksSet bool
	fabric   FabricKind
	fabSet   bool
	comm     *mpi.Comm
	part     corpus.Partitioner
	ob       *obs.Observer
	check    *mpi.CheckConfig
	faults   *FaultPolicy
	ckpt     *CheckpointPolicy
	tele     *telemetry.Config
}

// Option configures a Session.
type Option func(*sessionOptions)

// WithRanks sets the spawn-mode rank count, master included (default 4).
// Incompatible with WithComm.
func WithRanks(n int) Option {
	return func(o *sessionOptions) { o.ranks, o.ranksSet = n, true }
}

// WithFabric selects the spawn-mode transport (default FabricInproc).
// Incompatible with WithComm.
func WithFabric(k FabricKind) Option {
	return func(o *sessionOptions) { o.fabric, o.fabSet = k, true }
}

// WithComm attaches the session to an externally built communicator
// instead of spawning a fabric: the caller runs one Session per rank and
// Run dispatches on comm.Rank(). Incompatible with WithRanks, WithFabric
// and WithCheck (wrap the comm with mpi.NewCheckedComm yourself — the
// session cannot retrofit protocol checking onto a transport it does not
// own).
func WithComm(comm *mpi.Comm) Option {
	return func(o *sessionOptions) { o.comm = comm }
}

// WithPartitioner sets the shard partitioner (default the paper's
// sorted-greedy equal-frame partitioner).
func WithPartitioner(part corpus.Partitioner) Option {
	return func(o *sessionOptions) { o.part = part }
}

// WithObserver routes spans, metrics and events through ob (nil is the
// no-op observer).
func WithObserver(ob *obs.Observer) Option {
	return func(o *sessionOptions) { o.ob = ob }
}

// WithCheck enables the cross-rank collective-protocol checker on every
// spawned rank's communicator. Spawn mode only.
func WithCheck(cfg mpi.CheckConfig) Option {
	return func(o *sessionOptions) { o.check = &cfg }
}

// WithFaults switches the session to the elastic fault-tolerant runtime:
// per-op deadlines, heartbeats, worker eviction, shard re-partitioning
// and checkpoint rewinds per pol.
func WithFaults(pol FaultPolicy) Option {
	return func(o *sessionOptions) { o.faults = &pol }
}

// WithCheckpoint sets the elastic runtime's rewind cadence (and optional
// on-disk mirror). Requires WithFaults — checkpoints exist to be rewound
// to; without a fault policy nothing ever rewinds.
func WithCheckpoint(pol CheckpointPolicy) Option {
	return func(o *sessionOptions) { o.ckpt = &pol }
}

// WithTelemetry enables the distributed telemetry plane: a clock-offset
// handshake at session start, per-iteration shipment of every rank's
// spans/metrics/events to the master's merger (one merged trace on a
// common timebase), a flight recorder for post-mortem fault bundles,
// and live health state. Read the plane back with Session.Telemetry —
// e.g. to serve it over HTTP with telemetry.NewServer. The zero Config
// selects defaults.
func WithTelemetry(cfg telemetry.Config) Option {
	return func(o *sessionOptions) { o.tele = &cfg }
}

// Session is a configured distributed training run. Build with
// NewSession; execute with Run.
type Session struct {
	p     Problem
	opt   sessionOptions
	plane *telemetry.Plane
}

// NewSession validates the option set against the problem and returns a
// runnable session. See the package-level Option docs for the legal
// combinations; the zero option set spawns 4 inproc ranks running the
// classic collective protocol.
func NewSession(p Problem, opts ...Option) (*Session, error) {
	o := sessionOptions{ranks: 4, fabric: FabricInproc}
	for _, opt := range opts {
		opt(&o)
	}
	if o.comm != nil {
		if o.ranksSet || o.fabSet {
			return nil, errors.New("core: WithComm is incompatible with WithRanks/WithFabric (the attached comm fixes both)")
		}
		if o.check != nil {
			return nil, errors.New("core: WithCheck is incompatible with WithComm; wrap the comm with mpi.NewCheckedComm instead")
		}
		if o.comm.Size() < 2 {
			return nil, fmt.Errorf("core: distributed training needs ≥2 ranks, have %d", o.comm.Size())
		}
	} else {
		if o.ranks < 2 {
			return nil, fmt.Errorf("core: need ≥2 ranks, got %d", o.ranks)
		}
		switch o.fabric {
		case FabricInproc, FabricTCP:
		default:
			return nil, fmt.Errorf("core: unknown fabric %v", o.fabric)
		}
	}
	if o.ckpt != nil && o.faults == nil {
		return nil, errors.New("core: WithCheckpoint requires WithFaults (checkpoints exist to be rewound to)")
	}
	if o.faults != nil && o.faults.Inject != nil && o.comm != nil {
		return nil, errors.New("core: FaultPolicy.Inject requires spawn mode (attached comms are owned by the caller)")
	}
	if o.part == nil {
		o.part = corpus.SortedGreedy{}
	}
	// Validate the problem wherever this session will run a master. A
	// worker-rank attach session never touches the full corpus, which
	// legitimately may be empty there.
	if o.comm == nil || o.comm.Rank() == 0 {
		filled := p.filled()
		if err := filled.validate(); err != nil {
			return nil, err
		}
	}
	s := &Session{p: p, opt: o}
	if o.tele != nil && (o.comm == nil || o.comm.Rank() == 0) {
		// Build the plane eagerly so callers can serve it over HTTP
		// before Run starts (telemetry.NewServer(addr, sess.Telemetry())).
		epoch := o.ob.Tracer().Epoch()
		if epoch.IsZero() {
			epoch = time.Now()
		}
		s.plane = telemetry.NewPlane(o.tele.Filled(), epoch)
		s.plane.Merger().BindLocal(0, o.ob.Registry())
	}
	return s, nil
}

// Telemetry returns the session's telemetry plane: non-nil only on the
// rank that runs the master (rank 0, or any spawn-mode session) when
// WithTelemetry was given. Available before Run so the monitoring
// endpoint can be up for the whole run.
func (s *Session) Telemetry() *telemetry.Plane {
	if s == nil {
		return nil
	}
	return s.plane
}

// ckptPolicy resolves the effective checkpoint policy for elastic runs.
func (s *Session) ckptPolicy() CheckpointPolicy {
	if s.opt.ckpt != nil {
		return *s.opt.ckpt
	}
	return CheckpointPolicy{}
}

// Run executes the session: spawn mode trains to completion and returns
// the master's result; attach mode returns the result on rank 0 and
// (nil, nil) on worker ranks after their loop drains.
func (s *Session) Run(cfg hf.Config) (*MasterResult, error) {
	if s.opt.comm != nil {
		return s.runAttached(cfg)
	}
	return s.runSpawned(cfg)
}

func (s *Session) runAttached(cfg hf.Config) (*MasterResult, error) {
	comm, o := s.opt.comm, &s.opt
	if comm.Rank() == 0 {
		if o.faults != nil {
			return runElastic(comm, s.p, cfg, o.part, o.ob, *o.faults, s.ckptPolicy(), s.plane, nil)
		}
		//lint:ignore commcheck rank dispatch is the protocol: rank 0 runs the master sender, every other rank runs the matching worker loop below
		return runMaster(comm, s.p, cfg, o.part, o.ob, s.plane)
	}
	var ship *telemetry.Shipper
	if o.tele != nil {
		ship = telemetry.NewShipper(comm.Rank(), o.ob)
	}
	if o.faults != nil {
		return nil, runElasticWorker(comm, o.ob, ship, nil)
	}
	return nil, runWorker(comm, o.ob, ship)
}

// rankErr pairs a worker error with its rank so elastic joins can
// separate injected deaths from real failures.
type rankErr struct {
	rank int
	err  error
}

func (s *Session) runSpawned(cfg hf.Config) (*MasterResult, error) {
	o := &s.opt
	ranks := o.ranks

	// Build one transport per rank.
	var transports []mpi.Transport
	switch o.fabric {
	case FabricInproc:
		fabric := mpi.NewInprocFabric(ranks)
		defer fabric.Close()
		for r := 0; r < ranks; r++ {
			transports = append(transports, fabric.Transport(r))
		}
	case FabricTCP:
		ts, err := mpi.ConnectTCPLocal(ranks)
		if err != nil {
			return nil, err
		}
		transports = ts
	}

	// Per-rank wrapping: fault injection first (so injected kills close
	// the real transport), then deadlines, then the protocol checker.
	epochHooks := make([]func(int), ranks)
	comms := make([]*mpi.Comm, ranks)
	for r := 0; r < ranks; r++ {
		t := transports[r]
		if o.faults != nil {
			if o.faults.Inject != nil {
				t = mpi.InjectFaults(t, o.faults.Inject)
				if ft, ok := t.(*mpi.FaultTransport); ok {
					epochHooks[r] = ft.SetEpoch
				}
			}
			if wd, ok := t.(mpi.WriteDeadliner); ok {
				wd.SetWriteDeadline(o.faults.FaultConfig.Filled().WriteDeadline)
			}
		}
		if o.check != nil {
			comms[r] = mpi.NewCheckedComm(t, *o.check).Comm
		} else {
			comms[r] = mpi.NewComm(t)
		}
	}

	workerErrs := make(chan rankErr, ranks-1)
	for r := 1; r < ranks; r++ {
		go func(r int) {
			comm := comms[r]
			defer comm.Close()
			// With telemetry on, each spawned worker observes into its own
			// private observer and ships it over the fabric — the same
			// aggregation path a true multi-process deployment exercises.
			// Without it, ranks share o.ob directly (nil ship still answers
			// the master's telemetry commands with empty bundles).
			wob := o.ob
			var ship *telemetry.Shipper
			if s.plane != nil {
				wob = &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), Events: obs.NewEventLog(0)}
				ship = telemetry.NewShipper(r, wob)
			}
			var err error
			if o.faults != nil {
				err = runElasticWorker(comm, wob, ship, epochHooks[r])
			} else {
				err = runWorker(comm, wob, ship)
			}
			workerErrs <- rankErr{rank: r, err: err}
		}(r)
	}

	master := comms[0]
	defer master.Close()
	var res *MasterResult
	var err error
	if o.faults != nil {
		res, err = runElastic(master, s.p, cfg, o.part, o.ob, *o.faults, s.ckptPolicy(), s.plane, epochHooks[0])
	} else {
		res, err = runMaster(master, s.p, cfg, o.part, o.ob, s.plane)
	}
	if err != nil {
		if s.plane != nil {
			s.plane.Health().SetState("failed")
			if s.plane.Recorder().Last() == nil {
				s.plane.Recorder().Capture(s.plane.Merger(), "master error: "+err.Error())
			}
		}
		// Unblock workers still parked in a Recv before draining them.
		for r := 1; r < ranks; r++ {
			_ = comms[r].Close() // best-effort: the master's error is primary
		}
	}

	evicted := map[int]bool{}
	if res != nil && res.Fault != nil {
		for _, ev := range res.Fault.Evictions {
			evicted[ev.Rank] = true
		}
	}
	// An evicted worker that is still alive (evicted for slowness, not
	// death) is parked in a Recv the master will never answer — the stop
	// fan-out only covers live ranks. Close its comm to unpark it.
	for r := range evicted {
		if r >= 1 && r < ranks {
			_ = comms[r].Close() // best-effort: eviction already recorded
		}
	}
	for r := 1; r < ranks; r++ {
		we := <-workerErrs
		if we.err == nil || err != nil {
			continue
		}
		// An evicted worker's exit error is expected — its transport was
		// killed or its master vanished mid-op; the eviction record in
		// res.Fault is the authoritative account.
		if evicted[we.rank] {
			continue
		}
		err = fmt.Errorf("core: worker %d: %w", we.rank, we.err)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}
