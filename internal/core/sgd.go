package core

import (
	"math/rand"

	"repro/internal/tensor"
)

// SGDConfig parameterizes the serial stochastic-gradient-descent baseline
// — the "most popular methodology" the paper compares second-order
// training against (§II-A).
type SGDConfig struct {
	// LearningRate is the initial step size. Default 0.1.
	LearningRate float64
	// Momentum is the classical momentum coefficient. Default 0.9.
	Momentum float64
	// BatchFrames is the minibatch size in frames (the paper cites
	// 100-1000 for speech). Default 256.
	BatchFrames int
	// Epochs is the number of passes over the training data. Default 5.
	Epochs int
	// LrDecay multiplies the learning rate after each epoch. Default 0.9.
	LrDecay float64
	// Seed shuffles minibatch order. Weight init comes from Problem.Seed.
	Seed int64
}

func (c SGDConfig) filled() SGDConfig {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Momentum < 0 || c.Momentum >= 1 {
		c.Momentum = 0.9
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 256
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.LrDecay <= 0 || c.LrDecay > 1 {
		c.LrDecay = 0.9
	}
	return c
}

// SGDEpochStats records one SGD epoch.
type SGDEpochStats struct {
	Epoch        int
	TrainLoss    float64 // mean per-frame training loss over the epoch
	HeldOutLoss  float64 // mean per-frame held-out loss after the epoch
	LearningRate float64
}

// SGDResult is the outcome of a TrainSGD run.
type SGDResult struct {
	Epochs          []SGDEpochStats
	FinalLoss       float64
	HeldOutAccuracy float64
}

// TrainSGD trains the network with serial minibatch SGD. For the
// cross-entropy criterion, minibatches are shuffled frame blocks; for the
// sequence criterion the unit is the utterance. Returns the trained
// objective (for held-out evaluation) and per-epoch statistics.
func TrainSGD(p Problem, cfg SGDConfig) (*SerialObjective, *SGDResult, error) {
	cfg = cfg.filled()
	obj, err := NewSerialObjective(p)
	if err != nil {
		return nil, nil, err
	}
	eng := obj.eng
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := eng.net.NumParams()
	vel := tensor.NewVector(dim)
	grad := tensor.NewVector(dim)
	lr := cfg.LearningRate
	res := &SGDResult{}

	// Minibatch units: frame blocks for CE, utterances for sequence.
	var units [][2]int
	if p.Criterion == Sequence {
		units = eng.train.bounds
	} else {
		for lo := 0; lo < eng.train.frames(); lo += cfg.BatchFrames {
			hi := min(lo+cfg.BatchFrames, eng.train.frames())
			units = append(units, [2]int{lo, hi})
		}
	}

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		order := rng.Perm(len(units))
		var epochLoss float64
		var epochFrames int
		for _, ui := range order {
			b := units[ui]
			rows := b[1] - b[0]
			grad.Zero()
			var loss float64
			if p.Criterion == Sequence {
				loss = eng.seqLossGrad(eng.train, b, grad)
			} else {
				x := eng.train.x.View(b[0], 0, rows, eng.train.x.Cols)
				loss, _ = eng.net.LossGrad(x, eng.train.y[b[0]:b[1]], grad)
			}
			epochLoss += loss
			epochFrames += rows
			// v ← μv − (lr/batch)·g ; θ ← θ + v
			//lint:ignore divguard batch units are built non-empty, so rows ≥ 1
			scale := float32(lr / float64(rows))
			for i := range vel {
				vel[i] = float32(cfg.Momentum)*vel[i] - scale*grad[i]
			}
			eng.net.Params.AddScaled(1, vel)
		}
		held, hframes := eng.heldLoss()
		trainLoss, heldLoss := 0.0, 0.0
		if epochFrames > 0 {
			trainLoss = epochLoss / float64(epochFrames)
		}
		if hframes > 0 {
			heldLoss = held / float64(hframes)
		}
		stats := SGDEpochStats{
			Epoch:        epoch,
			TrainLoss:    trainLoss,
			HeldOutLoss:  heldLoss,
			LearningRate: lr,
		}
		res.Epochs = append(res.Epochs, stats)
		res.FinalLoss = stats.HeldOutLoss
		lr *= cfg.LrDecay
	}
	res.HeldOutAccuracy = obj.HeldOutAccuracy()
	return obj, res, nil
}
