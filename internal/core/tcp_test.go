package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
)

// Full distributed training over the TCP fabric: the multi-process
// transport must give the same result as the in-process one (and hence as
// serial training).
func TestDistributedHFOverTCP(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 3

	_, serialRes, err := TrainSerialHF(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const ranks = 3
	transports, err := mpi.ConnectTCPLocal(ranks)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	workerErrs := make([]error, ranks)
	for r := 1; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm := mpi.NewComm(transports[r])
			defer comm.Close()
			// Worker ranks never touch the corpus: the zero Problem is legal.
			sess, err := NewSession(Problem{}, WithComm(comm))
			if err != nil {
				workerErrs[r] = err
				return
			}
			_, workerErrs[r] = sess.Run(cfg)
		}(r)
	}
	master := mpi.NewComm(transports[0])
	sess, err := NewSession(p, WithComm(master))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	master.Close()
	for r := 1; r < ranks; r++ {
		if workerErrs[r] != nil {
			t.Fatalf("worker %d: %v", r, workerErrs[r])
		}
	}

	if math.Abs(res.HF.FinalLoss-serialRes.FinalLoss) > 2e-3 {
		t.Fatalf("TCP-distributed loss %v vs serial %v", res.HF.FinalLoss, serialRes.FinalLoss)
	}
	// The TCP master must have recorded the same communication phases the
	// paper profiles.
	var sawLoadData, sawSync bool
	for _, s := range master.Profiler().Snapshot() {
		switch s.Phase {
		case "load_data":
			sawLoadData = s.Cat == mpi.CatP2P && s.Stat.Bytes > 0
		case "sync_weights":
			if s.Cat == mpi.CatCollective {
				sawSync = true
			}
		}
	}
	if !sawLoadData || !sawSync {
		t.Fatalf("master profile missing phases: load_data=%v sync=%v", sawLoadData, sawSync)
	}
}

// The worker loop must reject malformed shard payloads instead of
// panicking.
func TestWorkerRejectsMalformedShard(t *testing.T) {
	fabric := mpi.NewInprocFabric(2)
	defer fabric.Close()
	errCh := make(chan error, 1)
	go func() {
		sess, err := NewSession(Problem{}, WithComm(mpi.NewComm(fabric.Transport(1))))
		if err != nil {
			errCh <- err
			return
		}
		_, err = sess.Run(fastHF())
		errCh <- err
	}()
	master := mpi.NewComm(fabric.Transport(0))
	if err := master.SendBytes(1, tagShard, []byte("garbage payload")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("worker accepted a malformed shard")
	}
}

// Failure injection: a worker that dies after load_data must surface as a
// master error, not a hang — the fabric's peer-down detection reaching
// the training layer.
func TestMasterDetectsDeadWorker(t *testing.T) {
	transports, err := mpi.ConnectTCPLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	p := testProblem(t, CrossEntropy)
	cfg := fastHF()
	cfg.MaxIterations = 2

	// Worker 1 behaves; worker 2 dies right after receiving its shard.
	go func() {
		comm := mpi.NewComm(transports[1])
		defer comm.Close()
		if sess, err := NewSession(Problem{}, WithComm(comm)); err == nil {
			sess.Run(cfg) // will error once the job collapses; ignored
		}
	}()
	go func() {
		comm := mpi.NewComm(transports[2])
		comm.RecvBytes(0, tagShard)
		comm.Close() // die before serving any command
	}()

	master := mpi.NewComm(transports[0])
	defer master.Close()
	done := make(chan error, 1)
	go func() {
		sess, err := NewSession(p, WithComm(master))
		if err != nil {
			done <- err
			return
		}
		_, err = sess.Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("master succeeded despite a dead worker")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("master hung on a dead worker")
	}
}
