package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hf"
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

// telemetryObserver builds the full observer the telemetry plane feeds
// on: metrics, tracer, and event log.
func telemetryObserver() *obs.Observer {
	return &obs.Observer{Metrics: obs.NewRegistry(), Trace: obs.NewTracer(), Events: obs.NewEventLog(0)}
}

// TestTelemetryMergedTraceTCP is the cross-rank aggregation acceptance
// drill: a 4-rank TCP run with the telemetry plane enabled must leave
// the master's merger holding spans from every rank on one common
// timebase — no negative starts — and render them as a single Chrome
// trace with one process track per rank.
func TestTelemetryMergedTraceTCP(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	ob := telemetryObserver()
	sess, err := NewSession(p,
		WithRanks(4),
		WithFabric(FabricTCP),
		WithObserver(ob),
		WithTelemetry(telemetry.Config{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(fastHF()); err != nil {
		t.Fatalf("run: %v", err)
	}

	plane := sess.Telemetry()
	if plane == nil {
		t.Fatal("Session.Telemetry() nil with WithTelemetry set")
	}
	m := plane.Merger()

	ranks := m.Ranks()
	if len(ranks) != 4 {
		t.Fatalf("merger ranks = %v, want all of 0..3", ranks)
	}
	for want, got := range ranks {
		if got != want {
			t.Fatalf("merger ranks = %v, want [0 1 2 3]", ranks)
		}
	}

	evs := m.Events()
	if len(evs) == 0 {
		t.Fatal("merged timeline empty")
	}
	spansByRank := map[int]int{}
	for _, ev := range evs {
		if ev.Start < 0 {
			t.Fatalf("span %q on rank %d starts at %v, want ≥ 0 on the merged timebase", ev.Name, ev.Rank, ev.Start)
		}
		spansByRank[ev.Rank]++
	}
	for r := 0; r < 4; r++ {
		if spansByRank[r] == 0 {
			t.Errorf("rank %d contributed no spans to the merged trace", r)
		}
	}

	var buf bytes.Buffer
	if err := m.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	tracks := map[int]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			tracks[ev.Pid] = true
		}
	}
	for r := 0; r < 4; r++ {
		if !tracks[r] {
			t.Errorf("merged Chrome trace missing process track for rank %d (have %v)", r, tracks)
		}
	}

	// Metrics shipped too: every rank has a snapshot in the rollup.
	snaps := m.Snapshots()
	for r := 0; r < 4; r++ {
		if len(snaps[r].Counters)+len(snaps[r].Histograms) == 0 {
			t.Errorf("rank %d shipped no metrics", r)
		}
	}

	if !plane.Health().Healthy() {
		t.Error("health not healthy after clean run")
	}
}

// TestTelemetryLiveEndpointDuringTraining scrapes the monitoring
// endpoint mid-run: the per-iteration telemetry hook fires after the
// master's flush, so /metrics must already expose worker-rank series
// and /healthz must report the "training" state while the optimizer is
// still iterating.
func TestTelemetryLiveEndpointDuringTraining(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	ob := telemetryObserver()
	sess, err := NewSession(p,
		WithRanks(3),
		WithObserver(ob),
		WithTelemetry(telemetry.Config{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := telemetry.NewServer("127.0.0.1:0", sess.Telemetry())
	if err != nil {
		t.Fatalf("start monitoring endpoint: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	var metricsBody, healthBody string
	cfg := fastHF()
	cfg.Telemetry = func(s hf.IterStats) {
		if s.Iter == 2 && metricsBody == "" {
			_, metricsBody = get("/metrics")
			_, healthBody = get("/healthz")
		}
	}
	if _, err := sess.Run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}

	if metricsBody == "" {
		t.Fatal("telemetry hook never fired at iteration 2")
	}
	if !strings.Contains(metricsBody, "# TYPE hf_") {
		t.Errorf("/metrics missing Prometheus TYPE lines:\n%.400s", metricsBody)
	}
	if !strings.Contains(metricsBody, `rank="1"`) {
		t.Errorf("/metrics mid-run has no worker-rank series:\n%.400s", metricsBody)
	}
	if !strings.Contains(healthBody, `"state": "training"`) {
		t.Errorf("/healthz mid-run = %s, want state training", healthBody)
	}

	// After the run the endpoint keeps serving the merged artifacts.
	code, trace := get("/trace")
	if code != http.StatusOK || !strings.Contains(trace, "traceEvents") {
		t.Errorf("/trace after run: code %d, body %.120s", code, trace)
	}
	if code, _ := get("/flight"); code != http.StatusNotFound {
		t.Errorf("/flight with no fault = %d, want 404", code)
	}
	code, health := get("/healthz")
	if code != http.StatusOK || !strings.Contains(health, `"state": "done"`) {
		t.Errorf("/healthz after run: code %d, body %s", code, health)
	}
}

// TestTelemetryFlightRecorderOnEviction kills one of four ranks mid-run
// and checks the post-mortem contract: the fault report carries a
// flight bundle naming the evicted rank, preserving its pre-eviction
// spans (shipped at earlier iteration boundaries), the master's
// eviction event-log lines, and a health view showing the rank evicted.
func TestTelemetryFlightRecorderOnEviction(t *testing.T) {
	p := testProblem(t, CrossEntropy)
	ob := telemetryObserver()
	sess, err := NewSession(p,
		WithRanks(4),
		WithObserver(ob),
		WithFaults(faultPolicy(t, "kill:rank=2,epoch=3")),
		WithCheckpoint(CheckpointPolicy{Every: 1, Path: filepath.Join(t.TempDir(), "flight.ck")}),
		WithTelemetry(telemetry.Config{}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(fastHF())
	if err != nil {
		t.Fatalf("elastic run: %v", err)
	}
	if res.Fault == nil {
		t.Fatal("MasterResult.Fault nil")
	}
	if n := len(res.Fault.Evictions); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}

	fb := res.Fault.Flight
	if fb == nil {
		t.Fatal("FaultReport.Flight nil: flight recorder did not capture")
	}
	if !strings.Contains(fb.Reason, "rank 2") {
		t.Errorf("flight reason %q does not name the evicted rank 2", fb.Reason)
	}
	if fb.CapturedAt.IsZero() || fb.Window <= 0 {
		t.Errorf("flight capture metadata empty: at=%v window=%v", fb.CapturedAt, fb.Window)
	}
	var killedSpans int
	for _, ev := range fb.Spans {
		if ev.Rank == 2 {
			killedSpans++
		}
	}
	if killedSpans == 0 {
		t.Error("flight bundle has no pre-eviction spans from the killed rank 2")
	}
	if len(fb.Events) == 0 {
		t.Error("flight bundle has no event-log lines (eviction itself is logged)")
	}
	var hasRank2 bool
	for _, r := range fb.Ranks {
		hasRank2 = hasRank2 || r == 2
	}
	if !hasRank2 {
		t.Errorf("flight bundle ranks %v missing the killed rank 2", fb.Ranks)
	}

	// The bundle is the JSON artifact: it must round-trip.
	var buf bytes.Buffer
	if err := fb.WriteJSON(&buf); err != nil {
		t.Fatalf("flight WriteJSON: %v", err)
	}
	var back telemetry.FlightBundle
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("flight bundle JSON does not round-trip: %v", err)
	}
	if back.Reason != fb.Reason || len(back.Spans) != len(fb.Spans) {
		t.Errorf("flight round-trip mismatch: reason %q/%q, spans %d/%d",
			back.Reason, fb.Reason, len(back.Spans), len(fb.Spans))
	}

	// Health remembers the degraded topology.
	plane := sess.Telemetry()
	if plane.Health().Healthy() {
		t.Error("health reports healthy despite an eviction")
	}
	var hb bytes.Buffer
	if err := plane.Health().WriteJSON(&hb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hb.String(), `"2": "evicted"`) {
		t.Errorf("/healthz view %s does not mark rank 2 evicted", hb.String())
	}
	// The recorder keeps the last bundle for the /flight endpoint.
	if plane.Recorder().Last() == nil {
		t.Error("Recorder.Last() nil after capture")
	}
}
