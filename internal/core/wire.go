package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Little-endian wire helpers for the async protocol's raw payloads
// (vectors and small float64 tuples).

func encodeVec(x tensor.Vector) []byte {
	buf := make([]byte, 4*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

func decodeInto(buf []byte, x tensor.Vector) error {
	if len(buf) != 4*len(x) {
		return fmt.Errorf("core: payload %d bytes, want %d", len(buf), 4*len(x))
	}
	for i := range x {
		x[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

func encodeF64Pair(a, b float64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(b))
	return buf
}

func decodeF64Pair(buf []byte, out *[2]float64) error {
	if len(buf) != 16 {
		return fmt.Errorf("core: pair payload %d bytes", len(buf))
	}
	out[0] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	out[1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
	return nil
}

func encodeF64Triple(a, b, c float64) []byte {
	buf := make([]byte, 24)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(a))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(b))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(c))
	return buf
}

func decodeF64Triple(buf []byte, out *[3]float64) error {
	if len(buf) != 24 {
		return fmt.Errorf("core: triple payload %d bytes", len(buf))
	}
	out[0] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	out[1] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
	out[2] = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	return nil
}
