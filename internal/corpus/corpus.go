// Package corpus generates synthetic speech-recognition training data and
// implements the utterance partitioning of §V-C of the paper.
//
// The paper trains on 50-hour and 400-hour corpora of spoken utterances
// from thousands of speakers — data we cannot redistribute. This package
// substitutes a synthetic corpus that preserves the properties the paper's
// system actually exercises:
//
//   - utterances of variable length (log-normal durations, ≈4 s mean at
//     100 frames/s), the source of worker load imbalance;
//   - per-frame acoustic feature vectors with a context window, matching
//     the DNN input layout of speech front ends;
//   - per-frame HMM-state targets drawn from a generative segment model,
//     so the classification task is genuinely learnable and training
//     losses behave like the real task's.
package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Utterance is one spoken utterance: a sequence of acoustic frames with
// per-frame HMM-state targets.
type Utterance struct {
	ID      int
	Speaker int
	// Feats is NumFrames × FeatDim, one acoustic feature vector per frame.
	Feats *tensor.Matrix
	// States holds the target HMM state of each frame.
	States []int
}

// NumFrames returns the utterance length in frames.
func (u *Utterance) NumFrames() int { return u.Feats.Rows }

// Corpus is a set of utterances plus the task geometry.
type Corpus struct {
	Utts      []*Utterance
	FeatDim   int
	NumStates int
	// Context is the number of frames of context on each side spliced into
	// the DNN input: input dimension = FeatDim·(2·Context+1).
	Context int
}

// InputDim returns the DNN input dimension after context splicing.
func (c *Corpus) InputDim() int { return c.FeatDim * (2*c.Context + 1) }

// TotalFrames returns the number of frames across all utterances.
func (c *Corpus) TotalFrames() int { return TotalFrames(c.Utts) }

// TotalFrames returns the number of frames across the given utterances.
func TotalFrames(utts []*Utterance) int {
	n := 0
	for _, u := range utts {
		n += u.NumFrames()
	}
	return n
}

// Config parameterizes synthetic corpus generation. Zero fields take the
// documented defaults.
type Config struct {
	Seed          int64
	NumUtterances int
	NumSpeakers   int     // default max(8, NumUtterances/16)
	MeanSeconds   float64 // mean utterance duration; default 4.0
	SigmaLog      float64 // log-normal shape; default 0.55
	FramesPerSec  int     // default 100
	FeatDim       int     // default 40
	Context       int     // default 4 (9-frame splice)
	NumStates     int     // default 16
	MinFrames     int     // default 8
	NoiseStd      float64 // acoustic noise σ; default 0.45
}

func (cfg Config) filled() Config {
	if cfg.NumUtterances <= 0 {
		cfg.NumUtterances = 64
	}
	if cfg.NumSpeakers <= 0 {
		cfg.NumSpeakers = cfg.NumUtterances / 16
		if cfg.NumSpeakers < 8 {
			cfg.NumSpeakers = 8
		}
	}
	if cfg.MeanSeconds <= 0 {
		cfg.MeanSeconds = 4.0
	}
	if cfg.SigmaLog <= 0 {
		cfg.SigmaLog = 0.55
	}
	if cfg.FramesPerSec <= 0 {
		cfg.FramesPerSec = 100
	}
	if cfg.FeatDim <= 0 {
		cfg.FeatDim = 40
	}
	if cfg.Context < 0 {
		cfg.Context = 0
	} else if cfg.Context == 0 {
		cfg.Context = 4
	}
	if cfg.NumStates <= 0 {
		cfg.NumStates = 16
	}
	if cfg.MinFrames <= 0 {
		cfg.MinFrames = 8
	}
	if cfg.NoiseStd <= 0 {
		cfg.NoiseStd = 0.45
	}
	return cfg
}

// Generate builds a synthetic corpus. The generative model: each HMM state
// has a prototype feature vector; an utterance is a sequence of state
// segments with geometric durations; each frame is its state's prototype
// plus a per-speaker offset plus Gaussian noise. Generation is
// deterministic in cfg.Seed.
func Generate(cfg Config) *Corpus {
	cfg = cfg.filled()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// State prototypes, spread enough to be separable under the noise.
	protos := make([][]float32, cfg.NumStates)
	for s := range protos {
		protos[s] = make([]float32, cfg.FeatDim)
		for d := range protos[s] {
			protos[s][d] = float32(rng.NormFloat64())
		}
	}
	// Mild per-speaker channel offsets.
	speakers := make([][]float32, cfg.NumSpeakers)
	for s := range speakers {
		speakers[s] = make([]float32, cfg.FeatDim)
		for d := range speakers[s] {
			speakers[s][d] = float32(rng.NormFloat64() * 0.2)
		}
	}

	// Utterance durations: log-normal with the requested mean.
	mu := math.Log(cfg.MeanSeconds) - cfg.SigmaLog*cfg.SigmaLog/2
	utts := make([]*Utterance, cfg.NumUtterances)
	for i := range utts {
		seconds := math.Exp(mu + cfg.SigmaLog*rng.NormFloat64())
		frames := int(seconds * float64(cfg.FramesPerSec))
		if frames < cfg.MinFrames {
			frames = cfg.MinFrames
		}
		spk := rng.Intn(cfg.NumSpeakers)
		u := &Utterance{
			ID:      i,
			Speaker: spk,
			Feats:   tensor.NewMatrix(frames, cfg.FeatDim),
			States:  make([]int, frames),
		}
		// Segmental state sequence: geometric segment lengths, mean 12
		// frames, new state uniform at each segment boundary.
		state := rng.Intn(cfg.NumStates)
		for f := 0; f < frames; f++ {
			if rng.Float64() < 1.0/12.0 {
				state = rng.Intn(cfg.NumStates)
			}
			u.States[f] = state
			row := u.Feats.Row(f)
			for d := 0; d < cfg.FeatDim; d++ {
				row[d] = protos[state][d] + speakers[spk][d] + float32(rng.NormFloat64()*cfg.NoiseStd)
			}
		}
		utts[i] = u
	}
	return &Corpus{Utts: utts, FeatDim: cfg.FeatDim, NumStates: cfg.NumStates, Context: cfg.Context}
}

// Split partitions the corpus into train and held-out sets, assigning
// every k-th utterance to held-out (the paper computes the HF loss on a
// held-out set). k must be at least 2.
func (c *Corpus) Split(k int) (train, heldout *Corpus) {
	if k < 2 {
		panic(fmt.Sprintf("corpus: Split k = %d, need ≥ 2", k))
	}
	tr := &Corpus{FeatDim: c.FeatDim, NumStates: c.NumStates, Context: c.Context}
	ho := &Corpus{FeatDim: c.FeatDim, NumStates: c.NumStates, Context: c.Context}
	for i, u := range c.Utts {
		if i%k == k-1 {
			ho.Utts = append(ho.Utts, u)
		} else {
			tr.Utts = append(tr.Utts, u)
		}
	}
	return tr, ho
}

// SpliceFrames materializes the context-windowed DNN input and targets for
// the given utterances: X is totalFrames × InputDim and y holds the state
// target of each row. Frames near utterance edges replicate the boundary
// frame, the standard splicing convention.
func SpliceFrames(utts []*Utterance, featDim, context int) (x *tensor.Matrix, y []int) {
	total := TotalFrames(utts)
	width := 2*context + 1
	x = tensor.NewMatrix(total, featDim*width)
	y = make([]int, total)
	row := 0
	for _, u := range utts {
		n := u.NumFrames()
		for f := 0; f < n; f++ {
			dst := x.Row(row)
			for w := -context; w <= context; w++ {
				src := f + w
				if src < 0 {
					src = 0
				} else if src >= n {
					src = n - 1
				}
				copy(dst[(w+context)*featDim:(w+context+1)*featDim], u.Feats.Row(src))
			}
			y[row] = u.States[f]
			row++
		}
	}
	return x, y
}

// ShuffleUtterances permutes utts in place, deterministically in the
// explicit rng (seed it from configuration). It randomizes utterance
// order ahead of partitioning or splitting without ever touching the
// global math/rand source, so two runs with the same seed shuffle — and
// therefore shard — identically.
func ShuffleUtterances(rng *rand.Rand, utts []*Utterance) {
	rng.Shuffle(len(utts), func(i, j int) {
		utts[i], utts[j] = utts[j], utts[i]
	})
}

// SampleUtterances returns approximately fraction of utts chosen without
// replacement, deterministically in rng, always at least one utterance.
// The HF algorithm draws such a sample (1–3% of the data) for each round
// of curvature matrix-vector products.
func SampleUtterances(rng *rand.Rand, utts []*Utterance, fraction float64) []*Utterance {
	if len(utts) == 0 {
		return nil
	}
	n := int(math.Round(fraction * float64(len(utts))))
	if n < 1 {
		n = 1
	}
	if n > len(utts) {
		n = len(utts)
	}
	perm := rng.Perm(len(utts))
	out := make([]*Utterance, n)
	for i := 0; i < n; i++ {
		out[i] = utts[perm[i]]
	}
	return out
}
