package corpus

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, NumUtterances: 10}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Utts) != len(b.Utts) {
		t.Fatal("different utterance counts")
	}
	for i := range a.Utts {
		ua, ub := a.Utts[i], b.Utts[i]
		if ua.NumFrames() != ub.NumFrames() || ua.Speaker != ub.Speaker {
			t.Fatalf("utterance %d differs", i)
		}
		for f := 0; f < ua.NumFrames(); f++ {
			if ua.States[f] != ub.States[f] {
				t.Fatalf("states differ at utt %d frame %d", i, f)
			}
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	c := Generate(Config{Seed: 1, NumUtterances: 20, FeatDim: 13, NumStates: 5, Context: 2})
	if len(c.Utts) != 20 {
		t.Fatalf("got %d utterances", len(c.Utts))
	}
	if c.InputDim() != 13*5 {
		t.Fatalf("InputDim = %d, want 65", c.InputDim())
	}
	for _, u := range c.Utts {
		if u.Feats.Cols != 13 {
			t.Fatalf("feat dim %d", u.Feats.Cols)
		}
		if len(u.States) != u.NumFrames() {
			t.Fatal("states length mismatch")
		}
		for _, s := range u.States {
			if s < 0 || s >= 5 {
				t.Fatalf("state %d out of range", s)
			}
		}
		if u.NumFrames() < 8 {
			t.Fatalf("utterance shorter than MinFrames: %d", u.NumFrames())
		}
	}
}

func TestGenerateDurationDistribution(t *testing.T) {
	c := Generate(Config{Seed: 2, NumUtterances: 2000, MeanSeconds: 4})
	mean := float64(c.TotalFrames()) / float64(len(c.Utts)) / 100.0
	if math.Abs(mean-4) > 0.5 {
		t.Fatalf("mean duration %.2f s, want ≈4 s", mean)
	}
	// Variable lengths: min and max should differ substantially.
	min, max := c.Utts[0].NumFrames(), c.Utts[0].NumFrames()
	for _, u := range c.Utts {
		if u.NumFrames() < min {
			min = u.NumFrames()
		}
		if u.NumFrames() > max {
			max = u.NumFrames()
		}
	}
	if float64(max) < 2.5*float64(min) {
		t.Fatalf("lengths not variable enough: min %d max %d", min, max)
	}
}

func TestGenerateTaskIsSeparable(t *testing.T) {
	// A nearest-prototype classifier on per-state frame means should beat
	// chance by a wide margin, confirming the labels carry signal.
	c := Generate(Config{Seed: 3, NumUtterances: 60, NumStates: 6, NoiseStd: 0.3})
	dim := c.FeatDim
	means := make([][]float64, c.NumStates)
	counts := make([]int, c.NumStates)
	for s := range means {
		means[s] = make([]float64, dim)
	}
	for _, u := range c.Utts {
		for f := 0; f < u.NumFrames(); f++ {
			s := u.States[f]
			counts[s]++
			row := u.Feats.Row(f)
			for d := 0; d < dim; d++ {
				means[s][d] += float64(row[d])
			}
		}
	}
	for s := range means {
		if counts[s] == 0 {
			continue
		}
		for d := range means[s] {
			means[s][d] /= float64(counts[s])
		}
	}
	correct, total := 0, 0
	for _, u := range c.Utts {
		for f := 0; f < u.NumFrames(); f++ {
			row := u.Feats.Row(f)
			best, bestDist := -1, math.Inf(1)
			for s := range means {
				if counts[s] == 0 {
					continue
				}
				var dist float64
				for d := 0; d < dim; d++ {
					diff := float64(row[d]) - means[s][d]
					dist += diff * diff
				}
				if dist < bestDist {
					best, bestDist = s, dist
				}
			}
			if best == u.States[f] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.7 {
		t.Fatalf("nearest-prototype accuracy %.2f; task not separable", acc)
	}
}

func TestSplit(t *testing.T) {
	c := Generate(Config{Seed: 4, NumUtterances: 40})
	tr, ho := c.Split(10)
	if len(tr.Utts)+len(ho.Utts) != 40 {
		t.Fatal("split lost utterances")
	}
	if len(ho.Utts) != 4 {
		t.Fatalf("held-out size %d, want 4", len(ho.Utts))
	}
	if tr.InputDim() != c.InputDim() || ho.NumStates != c.NumStates {
		t.Fatal("split lost geometry")
	}
}

func TestSplitBadK(t *testing.T) {
	c := Generate(Config{Seed: 4, NumUtterances: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Split(1)
}

func TestSpliceFramesShapeAndEdges(t *testing.T) {
	c := Generate(Config{Seed: 6, NumUtterances: 3, FeatDim: 4, Context: 2})
	x, y := SpliceFrames(c.Utts, c.FeatDim, c.Context)
	if x.Rows != c.TotalFrames() || x.Cols != 4*5 {
		t.Fatalf("splice shape %d×%d", x.Rows, x.Cols)
	}
	if len(y) != x.Rows {
		t.Fatal("targets length mismatch")
	}
	// First frame of the first utterance: left context replicates frame 0.
	u := c.Utts[0]
	row := x.Row(0)
	for w := 0; w < 3; w++ { // offsets -2, -1, 0 all map to frame 0
		for d := 0; d < 4; d++ {
			if row[w*4+d] != u.Feats.At(0, d) {
				t.Fatalf("edge replication wrong at window %d dim %d", w, d)
			}
		}
	}
	// Center of window for an interior frame must be the frame itself.
	if u.NumFrames() > 5 {
		r3 := x.Row(3)
		for d := 0; d < 4; d++ {
			if r3[2*4+d] != u.Feats.At(3, d) {
				t.Fatal("center of context window must be the frame itself")
			}
		}
	}
	if y[0] != u.States[0] {
		t.Fatal("target mismatch")
	}
}

func TestSampleUtterances(t *testing.T) {
	c := Generate(Config{Seed: 7, NumUtterances: 100})
	rng := rand.New(rand.NewSource(1))
	s := SampleUtterances(rng, c.Utts, 0.03)
	if len(s) != 3 {
		t.Fatalf("sample size %d, want 3", len(s))
	}
	seen := map[int]bool{}
	for _, u := range s {
		if seen[u.ID] {
			t.Fatal("sample contains duplicates")
		}
		seen[u.ID] = true
	}
	// Tiny fraction still yields at least one utterance.
	if len(SampleUtterances(rng, c.Utts[:5], 0.0001)) != 1 {
		t.Fatal("sample must contain at least one utterance")
	}
	if SampleUtterances(rng, nil, 0.5) != nil {
		t.Fatal("empty input must give nil sample")
	}
}

// Property: both partitioners preserve the multiset of utterances.
func TestPartitionPreservesUtterancesProperty(t *testing.T) {
	c := Generate(Config{Seed: 8, NumUtterances: 50})
	f := func(nSeed uint8, sorted bool) bool {
		n := int(nSeed%7) + 1
		var p Partitioner = RoundRobin{}
		if sorted {
			p = SortedGreedy{}
		}
		shards := p.Partition(c.Utts, n)
		if len(shards) != n {
			return false
		}
		seen := map[int]int{}
		for _, s := range shards {
			for _, u := range s {
				seen[u.ID]++
			}
		}
		if len(seen) != len(c.Utts) {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedGreedyBeatsRoundRobin(t *testing.T) {
	c := Generate(Config{Seed: 9, NumUtterances: 400})
	for _, n := range []int{4, 8, 16} {
		rr := MeasureBalance(RoundRobin{}.Partition(c.Utts, n))
		sg := MeasureBalance(SortedGreedy{}.Partition(c.Utts, n))
		if sg.Imbalance > rr.Imbalance {
			t.Fatalf("n=%d: sorted-greedy imbalance %.3f worse than round-robin %.3f",
				n, sg.Imbalance, rr.Imbalance)
		}
		if sg.Imbalance > 1.05 {
			t.Fatalf("n=%d: sorted-greedy imbalance %.3f, want ≤1.05", n, sg.Imbalance)
		}
	}
}

func TestSortedGreedyDeterministic(t *testing.T) {
	c := Generate(Config{Seed: 10, NumUtterances: 60})
	a := SortedGreedy{}.Partition(c.Utts, 5)
	b := SortedGreedy{}.Partition(c.Utts, 5)
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatal("nondeterministic partition sizes")
		}
		for i := range a[w] {
			if a[w][i].ID != b[w][i].ID {
				t.Fatal("nondeterministic partition order")
			}
		}
	}
}

func TestPartitionMoreWorkersThanUtterances(t *testing.T) {
	c := Generate(Config{Seed: 11, NumUtterances: 3})
	shards := SortedGreedy{}.Partition(c.Utts, 8)
	if len(shards) != 8 {
		t.Fatal("shard count")
	}
	nonEmpty := 0
	for _, s := range shards {
		if len(s) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("%d non-empty shards, want 3", nonEmpty)
	}
}

func TestPartitionZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RoundRobin{}.Partition(nil, 0)
}

func TestMeasureBalanceEmpty(t *testing.T) {
	b := MeasureBalance(nil)
	if b.Imbalance != 0 || b.MaxFrames != 0 {
		t.Fatalf("empty balance: %+v", b)
	}
	b2 := MeasureBalance([][]*Utterance{nil, nil})
	if b2.Imbalance != 1 || b2.MinFrames != 0 {
		t.Fatalf("all-empty balance: %+v", b2)
	}
}

func TestPartitionerNames(t *testing.T) {
	if (RoundRobin{}).Name() != "round-robin" || (SortedGreedy{}).Name() != "sorted-greedy" {
		t.Fatal("partitioner names wrong")
	}
}

// The distributed trainer ships utterances with encoding/gob (the
// wireShard payloads); a full roundtrip must preserve every field.
func TestUtteranceGobRoundTrip(t *testing.T) {
	c := Generate(Config{Seed: 21, NumUtterances: 5, FeatDim: 6})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c.Utts); err != nil {
		t.Fatal(err)
	}
	var got []*Utterance
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(c.Utts) {
		t.Fatalf("lost utterances: %d vs %d", len(got), len(c.Utts))
	}
	for i, u := range c.Utts {
		g := got[i]
		if g.ID != u.ID || g.Speaker != u.Speaker || g.NumFrames() != u.NumFrames() {
			t.Fatalf("utterance %d metadata lost", i)
		}
		for f := 0; f < u.NumFrames(); f++ {
			if g.States[f] != u.States[f] {
				t.Fatalf("utterance %d states lost", i)
			}
			for d := 0; d < c.FeatDim; d++ {
				if g.Feats.At(f, d) != u.Feats.At(f, d) {
					t.Fatalf("utterance %d features lost", i)
				}
			}
		}
	}
}

func TestGenerateLengthsMatchesDistribution(t *testing.T) {
	cfg := Config{Seed: 22, NumUtterances: 3000, MeanSeconds: 4}
	lengths := GenerateLengths(cfg)
	if len(lengths) != 3000 {
		t.Fatalf("%d lengths", len(lengths))
	}
	var total float64
	for _, l := range lengths {
		if l < 8 {
			t.Fatalf("length %d below MinFrames", l)
		}
		total += float64(l)
	}
	mean := total / 3000 / 100
	if math.Abs(mean-4) > 0.5 {
		t.Fatalf("mean %.2f s, want ≈4", mean)
	}
}

func TestUtterancesFromLengths(t *testing.T) {
	utts := UtterancesFromLengths([]int{5, 10})
	if len(utts) != 2 || utts[0].NumFrames() != 5 || utts[1].NumFrames() != 10 {
		t.Fatalf("wrong wrapping: %v", utts)
	}
	if utts[1].ID != 1 {
		t.Fatal("IDs must be sequential")
	}
	// Feature-less but still partitionable.
	shards := (SortedGreedy{}).Partition(utts, 2)
	if TotalFrames(shards[0])+TotalFrames(shards[1]) != 15 {
		t.Fatal("partition lost frames")
	}
}

// TestShuffleUtterancesDeterministic pins the determinism contract:
// shuffling with equal seeds yields the same permutation, a different
// seed a different one, and the result is always a permutation.
func TestShuffleUtterancesDeterministic(t *testing.T) {
	mk := func() []*Utterance { return UtterancesFromLengths([]int{8, 9, 10, 11, 12, 13, 14, 15, 16, 17}) }
	a, b, c := mk(), mk(), mk()
	ShuffleUtterances(rand.New(rand.NewSource(7)), a)
	ShuffleUtterances(rand.New(rand.NewSource(7)), b)
	ShuffleUtterances(rand.New(rand.NewSource(8)), c)
	sameAsB, sameAsC := true, true
	seen := make(map[int]bool)
	for i := range a {
		sameAsB = sameAsB && a[i].ID == b[i].ID
		sameAsC = sameAsC && a[i].ID == c[i].ID
		seen[a[i].ID] = true
	}
	if !sameAsB {
		t.Error("equal seeds must produce the identical permutation")
	}
	if sameAsC {
		t.Error("seeds 7 and 8 produced the same permutation of 10 elements")
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost or duplicated utterances: %d distinct IDs", len(seen))
	}
}
