package corpus

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// GenerateLengths samples only utterance frame lengths from the corpus
// length distribution, without materializing features. Paper-scale load-
// balance studies (hundreds of thousands of utterances) use this: the
// partitioners only need lengths, and 18M frames of features would not
// fit in memory.
func GenerateLengths(cfg Config) []int {
	cfg = cfg.filled()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mu := math.Log(cfg.MeanSeconds) - cfg.SigmaLog*cfg.SigmaLog/2
	out := make([]int, cfg.NumUtterances)
	for i := range out {
		seconds := math.Exp(mu + cfg.SigmaLog*rng.NormFloat64())
		frames := int(seconds * float64(cfg.FramesPerSec))
		if frames < cfg.MinFrames {
			frames = cfg.MinFrames
		}
		out[i] = frames
	}
	return out
}

// UtterancesFromLengths wraps bare frame lengths in feature-less
// Utterances so they can flow through the Partitioner interface. The
// Feats matrices have zero columns and occupy no feature storage.
func UtterancesFromLengths(lengths []int) []*Utterance {
	out := make([]*Utterance, len(lengths))
	for i, n := range lengths {
		out[i] = &Utterance{ID: i, Feats: tensor.NewMatrix(n, 0)}
	}
	return out
}
