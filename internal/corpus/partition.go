package corpus

import (
	"fmt"
	"sort"
)

// Partitioner assigns utterances to workers. The paper (§V-C) found the
// distribution of variable-length utterances across workers to be a key
// scalability factor: with naive assignment the master waits on the one
// or two workers that drew the longest utterances.
type Partitioner interface {
	// Partition splits utts into n shards, one per worker. Every utterance
	// appears in exactly one shard.
	Partition(utts []*Utterance, n int) [][]*Utterance
	// Name identifies the strategy in reports.
	Name() string
}

// RoundRobin deals utterances to workers in arrival order, ignoring
// length — the naive baseline whose imbalance the paper observed.
type RoundRobin struct{}

// Name implements Partitioner.
func (RoundRobin) Name() string { return "round-robin" }

// Partition implements Partitioner.
func (RoundRobin) Partition(utts []*Utterance, n int) [][]*Utterance {
	checkWorkers(n)
	shards := make([][]*Utterance, n)
	for i, u := range utts {
		shards[i%n] = append(shards[i%n], u)
	}
	return shards
}

// SortedGreedy implements the paper's preprocessing: sort utterances by
// length and assign each, longest first, to the currently least-loaded
// worker so all workers receive an equal amount of data (LPT scheduling).
type SortedGreedy struct{}

// Name implements Partitioner.
func (SortedGreedy) Name() string { return "sorted-greedy" }

// Partition implements Partitioner.
func (SortedGreedy) Partition(utts []*Utterance, n int) [][]*Utterance {
	checkWorkers(n)
	order := make([]*Utterance, len(utts))
	copy(order, utts)
	// Stable sort on (frames desc, ID asc) keeps partitioning deterministic
	// for equal-length utterances.
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].NumFrames() != order[j].NumFrames() {
			return order[i].NumFrames() > order[j].NumFrames()
		}
		return order[i].ID < order[j].ID
	})
	shards := make([][]*Utterance, n)
	load := make([]int, n)
	for _, u := range order {
		w := 0
		for i := 1; i < n; i++ {
			if load[i] < load[w] {
				w = i
			}
		}
		shards[w] = append(shards[w], u)
		load[w] += u.NumFrames()
	}
	return shards
}

func checkWorkers(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("corpus: partition into %d workers", n))
	}
}

// Balance summarizes how evenly a partition spreads frames over workers.
type Balance struct {
	MaxFrames  int
	MinFrames  int
	MeanFrames float64
	// Imbalance is MaxFrames/MeanFrames; 1.0 is perfect. In a bulk-
	// synchronous step the slowest worker gates the master, so this ratio
	// is the straggler slowdown factor.
	Imbalance float64
}

// MeasureBalance computes balance statistics for a partition.
func MeasureBalance(shards [][]*Utterance) Balance {
	if len(shards) == 0 {
		return Balance{}
	}
	b := Balance{MinFrames: int(^uint(0) >> 1)}
	total := 0
	for _, s := range shards {
		f := TotalFrames(s)
		total += f
		if f > b.MaxFrames {
			b.MaxFrames = f
		}
		if f < b.MinFrames {
			b.MinFrames = f
		}
	}
	b.MeanFrames = float64(total) / float64(len(shards))
	if b.MeanFrames > 0 {
		b.Imbalance = float64(b.MaxFrames) / b.MeanFrames
	} else {
		b.MinFrames = 0
		b.Imbalance = 1
	}
	return b
}
