package corpus

// Reshard re-partitions an evicted worker's orphaned utterances across
// the survivors using the same partitioner that built the original
// shards, so the elastic runtime's post-eviction balance matches what a
// fresh (survivors)-way partition of that data would have produced. The
// result has exactly `survivors` entries, some possibly empty; each is
// appended to the corresponding survivor's existing shard. A nil part
// defaults to the paper's sorted-greedy equal-frame partitioner.
func Reshard(orphaned []*Utterance, survivors int, part Partitioner) [][]*Utterance {
	if survivors <= 0 {
		return nil
	}
	if part == nil {
		part = SortedGreedy{}
	}
	if len(orphaned) == 0 {
		return make([][]*Utterance, survivors)
	}
	return part.Partition(orphaned, survivors)
}

// ReshardFrames sums the frames of a supplement produced by Reshard —
// the re-shard size the elastic runtime exports per eviction.
func ReshardFrames(supplements [][]*Utterance) int {
	total := 0
	for _, s := range supplements {
		total += TotalFrames(s)
	}
	return total
}
