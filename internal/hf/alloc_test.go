package hf

import (
	"testing"

	"repro/internal/tensor"
)

// TestZeroAllocCGStep is the white-box half of the allocation gate for
// the CG inner iteration: cgStep runs tens of times per outer HF
// iteration between the paper's two collectives, and every vector it
// touches is caller-owned workspace, so a single allocation per step
// would dominate GC pressure at scale. The escape gate (make
// alloccheck) proves the same property statically.
func TestZeroAllocCGStep(t *testing.T) {
	const n = 1 << 10
	x := make(tensor.Vector, n)
	r0 := make(tensor.Vector, n)
	r := make(tensor.Vector, n)
	z := make(tensor.Vector, n)
	p := make(tensor.Vector, n)
	ap := make(tensor.Vector, n)
	for i := range r0 {
		r0[i] = 1 + float32(i%7)
	}
	// A well-conditioned diagonal operator: SPD, allocation-free, and the
	// step never hits the breakdown early-returns.
	apply := func(v, out tensor.Vector) {
		for i := range v {
			out[i] += 2 * v[i]
		}
	}
	step := func() {
		// Reset to the first CG iteration each run so rz stays positive no
		// matter how many times AllocsPerRun repeats the body.
		for i := range x {
			x[i] = 0
		}
		copy(r, r0)
		copy(z, r0)
		copy(p, r0)
		rz := r.Dot(z)
		if _, ok := cgStep(apply, nil, x, r, z, p, ap, rz); !ok {
			t.Fatal("cgStep reported breakdown on an SPD operator")
		}
	}
	if got := testing.AllocsPerRun(20, step); got != 0 {
		t.Errorf("cgStep: %.0f allocs per step, want 0", got)
	}

	precond := make(tensor.Vector, n)
	for i := range precond {
		precond[i] = 2
	}
	if got := testing.AllocsPerRun(20, func() { applyPrecond(precond, r0, z) }); got != 0 {
		t.Errorf("applyPrecond: %.0f allocs per call, want 0", got)
	}
}
