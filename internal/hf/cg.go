// Package hf implements the Hessian-free second-order optimizer of the
// paper's Algorithm 1 (after Martens 2010): an outer loop that forms the
// damped Gauss-Newton quadratic model of the loss and an inner truncated
// conjugate-gradient solver that minimizes it using only matrix-vector
// products, plus CG-iterate backtracking, an Armijo line search and
// Levenberg-Marquardt damping adaptation.
//
// Two deviations from the paper's listing, documented in DESIGN.md: the
// listing's ρ-based λ updates are inverted relative to Martens 2010 and to
// its own "no improvement" branch, so the Martens convention is used; and
// the backtracking loop tracks the running minimum of the held-out loss as
// in Martens' reference implementation.
package hf

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/check"
	"repro/internal/tensor"
)

// CGOpts configures the truncated conjugate-gradient inner solver.
type CGOpts struct {
	// MaxIters caps CG iterations. Default 100.
	MaxIters int
	// StopTol is the relative per-iteration progress threshold ε of the
	// Martens stopping rule: stop at iteration i when φ(x_i) < 0 and
	// (φ(x_i) − φ(x_{i−k}))/φ(x_i) < k·ε with k = max(MinIters, i/10).
	// Default 5e-4.
	StopTol float64
	// MinIters is the smallest lookback window k. Default 10.
	MinIters int
	// SaveFactor controls which iterates are kept for backtracking: each
	// saved index is the previous times this factor (geometric spacing, as
	// in Martens). Default 1.3.
	SaveFactor float64
	// Precond, when non-nil, is the strictly positive diagonal of a
	// preconditioner M: the solver runs preconditioned CG with
	// z = M⁻¹r. The paper's implementation omits the preconditioner of
	// Martens 2010 §4.7 (citing it as future work); it is provided here
	// as the natural extension.
	Precond tensor.Vector
}

func (o CGOpts) filled() CGOpts {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.StopTol <= 0 {
		o.StopTol = 5e-4
	}
	if o.MinIters <= 0 {
		o.MinIters = 10
	}
	if o.SaveFactor <= 1 {
		o.SaveFactor = 1.3
	}
	return o
}

// CGResult reports the outcome of a CG-Minimize call.
type CGResult struct {
	// Iterates are the saved intermediate solutions d_1 … d_N in
	// ascending iteration order; the last entry is the final iterate.
	Iterates []tensor.Vector
	// QValues[i] is the quadratic-model value q(Iterates[i]).
	QValues []float64
	// Iters is the number of CG iterations executed.
	Iters int
}

// Final returns the last (best) iterate.
func (r CGResult) Final() tensor.Vector { return r.Iterates[len(r.Iterates)-1] }

// FinalQ returns the quadratic-model value at the final iterate.
func (r CGResult) FinalQ() float64 { return r.QValues[len(r.QValues)-1] }

// CGMinimize minimizes the quadratic model
//
//	q(d) = gᵀd + ½ dᵀA d
//
// with conjugate gradient, where A (the damped Gauss-Newton matrix
// G + λI) is accessed only through the matrix-vector product apply(v, out)
// with out ← A·v. d0 is the warm-start direction (the β·d_N momentum of
// Algorithm 1); it is not modified. Iteration stops by the Martens
// relative-progress rule or at MaxIters, and intermediate iterates are
// saved at geometrically spaced indices for the outer loop's backtracking.
//
//lint:shape g=n d0=n
func CGMinimize(apply func(v, out tensor.Vector), g tensor.Vector, d0 tensor.Vector, opts CGOpts) CGResult {
	opts = opts.filled()
	n := len(g)
	if len(d0) != n {
		panic(fmt.Sprintf("hf: d0 has %d elements, want %d", len(d0), n))
	}

	if opts.Precond != nil {
		if len(opts.Precond) != n {
			panic(fmt.Sprintf("hf: preconditioner has %d elements, want %d", len(opts.Precond), n))
		}
		for i, m := range opts.Precond {
			if m <= 0 {
				panic(fmt.Sprintf("hf: non-positive preconditioner entry %v at %d", m, i))
			}
		}
	}

	// Solve A x = b with b = −g; then q(x) = φ(x) = −½ xᵀ(b + r).
	b := make(tensor.Vector, n)
	for i := range b {
		b[i] = -g[i]
	}
	x := d0.Clone()
	r := make(tensor.Vector, n)
	ax := make(tensor.Vector, n)
	apply(x, ax)
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	z := make(tensor.Vector, n)
	applyPrecond(opts.Precond, r, z)
	p := z.Clone()
	ap := make(tensor.Vector, n)
	rz := r.Dot(z)

	res := CGResult{}
	phiHist := []float64{phi(x, b, r)}
	nextSave := 1
	saveIdx := func(i int) bool { return i == nextSave }

	for i := 1; i <= opts.MaxIters; i++ {
		var ok bool
		rz, ok = cgStep(apply, opts.Precond, x, r, z, p, ap, rz)
		if !ok {
			break
		}

		res.Iters = i
		ph := phi(x, b, r)
		phiHist = append(phiHist, ph)
		if saveIdx(i) {
			res.Iterates = append(res.Iterates, x.Clone())
			res.QValues = append(res.QValues, ph)
			ns := int(math.Ceil(float64(nextSave) * opts.SaveFactor))
			if ns <= nextSave {
				ns = nextSave + 1
			}
			nextSave = ns
		}

		// Martens stopping rule.
		k := opts.MinIters
		if i/10 > k {
			k = i / 10
		}
		if i > k && ph < 0 {
			prev := phiHist[i-k]
			if (ph-prev)/ph < float64(k)*opts.StopTol {
				break
			}
		}
	}

	// Always include the final iterate.
	if len(res.Iterates) == 0 || !sameVector(res.Iterates[len(res.Iterates)-1], x) {
		res.Iterates = append(res.Iterates, x.Clone())
		res.QValues = append(res.QValues, phiHist[len(phiHist)-1])
	}
	if res.Iters == 0 && len(phiHist) > 0 {
		// No progress possible (e.g. zero gradient): report the start point.
		res.QValues[len(res.QValues)-1] = phiHist[0]
	}
	return res
}

// cgStep performs one conjugate-gradient update in place: one curvature
// product, the α/β recurrences, and the preconditioned residual refresh.
// It returns the new rᵀz and ok=false when the recurrence must stop —
// a zero (or numerically negative) residual norm means convergence, and
// non-positive curvature pᵀAp means the damped Gauss-Newton product
// broke down numerically (it is PSD + λI by construction). This is the
// kernel that runs tens of times per outer HF iteration and drives the
// two collectives per CG iteration of the paper's Figure 5, so it must
// stay free of formatting, clock reads and boxing.
//
//lint:shape x=n r=n z=n p=n ap=n
//lint:hotpath
func cgStep(apply func(v, out tensor.Vector), precond tensor.Vector, x, r, z, p, ap tensor.Vector, rz float64) (rzNew float64, ok bool) {
	if rz <= 0 {
		return rz, false
	}
	for j := range ap {
		ap[j] = 0
	}
	apply(p, ap)
	pap := p.Dot(ap)
	if pap <= 0 {
		return rz, false
	}
	alpha := rz / pap
	x.AddScaled(float32(alpha), p)
	r.AddScaled(float32(-alpha), ap)
	applyPrecond(precond, r, z)
	rzNew = r.Dot(z)
	blas.Axpby(1, z, float32(rzNew/rz), p)
	if check.Enabled {
		check.Finite("hf.cg.iterate", x)
		check.Finite("hf.cg.direction", p)
	}
	return rzNew, true
}

// applyPrecond computes z = M⁻¹r for the diagonal preconditioner M
// (plain copy when unpreconditioned). The division loop runs inside the
// equal-length branch so prove sees len(z) == len(precond) == len(r)
// and drops every bounds check (the bce gate keeps it that way).
//
//lint:shape r=n z=n
//lint:hotpath
func applyPrecond(precond, r, z tensor.Vector) {
	if precond == nil {
		copy(z, r)
		return
	}
	if len(z) == len(r) && len(precond) == len(r) {
		for i := range r {
			//lint:ignore divguard CGMinimize panics on any non-positive preconditioner entry at entry
			z[i] = r[i] / precond[i]
		}
		return
	}
	precondMismatch()
}

// precondMismatch is the cold fail-fast for applyPrecond's length
// guard; hoisting the panic keeps the hot body escape-free (boxing the
// message escapes to the heap under -m=2).
//
//go:noinline
func precondMismatch() {
	panic("hf: applyPrecond length mismatch")
}

// phi evaluates the quadratic model value φ(x) = −½ xᵀ(b + r) where
// r = b − A x, the standard cheap expression used by Martens' stopping
// rule.
func phi(x, b, r tensor.Vector) float64 {
	var s float64
	for i := range x {
		s += float64(x[i]) * (float64(b[i]) + float64(r[i]))
	}
	return -0.5 * s
}

// sameVector reports bit-exact identity of two vectors — the intent here
// really is "is this the very iterate we just saved", so it compares the
// float32 bit patterns rather than using float equality (which would also
// treat -0 == 0 and NaN != NaN).
func sameVector(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}
