package hf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// denseSPD builds a random symmetric positive-definite n×n matrix
// A = BᵀB + I (float64) and returns it with its apply closure.
func denseSPD(rng *rand.Rand, n int) ([][]float64, func(v, out tensor.Vector)) {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = rng.NormFloat64()
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k][i] * b[k][j]
			}
			a[i][j] = s
		}
		a[i][i] += 1
	}
	apply := func(v, out tensor.Vector) {
		for i := range a {
			var s float64
			for j := range a[i] {
				s += a[i][j] * float64(v[j])
			}
			out[i] += float32(s)
		}
	}
	return a, apply
}

// solveDense solves A x = b by Gaussian elimination with partial pivoting,
// the independent oracle for CG.
func solveDense(a [][]float64, b []float64) []float64 {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x
}

func TestCGSolvesSPDSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 12
	a, apply := denseSPD(rng, n)
	g := tensor.RandVector(rng, n, 1)
	// Minimizing q(d) = gᵀd + ½dᵀAd means solving A d = −g.
	b := make([]float64, n)
	for i := range b {
		b[i] = -float64(g[i])
	}
	want := solveDense(a, b)

	res := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 200, StopTol: 1e-12})
	got := res.Final()
	for i := range want {
		if math.Abs(float64(got[i])-want[i]) > 1e-2*(1+math.Abs(want[i])) {
			t.Fatalf("component %d: CG %v vs direct %v", i, got[i], want[i])
		}
	}
}

func TestCGQValuesMonotoneNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20
	_, apply := denseSPD(rng, n)
	g := tensor.RandVector(rng, n, 1)
	res := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 50})
	for i := 1; i < len(res.QValues); i++ {
		if res.QValues[i] > res.QValues[i-1]+1e-6 {
			t.Fatalf("q increased at saved iterate %d: %v → %v", i, res.QValues[i-1], res.QValues[i])
		}
	}
	if res.FinalQ() >= 0 {
		t.Fatalf("final q %v, want < 0", res.FinalQ())
	}
}

func TestCGWarmStartHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 16
	a, apply := denseSPD(rng, n)
	g := tensor.RandVector(rng, n, 1)
	b := make([]float64, n)
	for i := range b {
		b[i] = -float64(g[i])
	}
	exact := solveDense(a, b)
	// Warm start at 0.9×solution: fewer iterations to reach tolerance than
	// a cold start, and the result must still be correct.
	warm := tensor.NewVector(n)
	for i := range warm {
		warm[i] = float32(0.9 * exact[i])
	}
	resWarm := CGMinimize(apply, g, warm, CGOpts{MaxIters: 200, StopTol: 1e-10})
	resCold := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 200, StopTol: 1e-10})
	if resWarm.FinalQ() > resCold.FinalQ()+1e-3 {
		t.Fatalf("warm start ended worse: %v vs %v", resWarm.FinalQ(), resCold.FinalQ())
	}
	got := resWarm.Final()
	for i := range exact {
		if math.Abs(float64(got[i])-exact[i]) > 5e-2*(1+math.Abs(exact[i])) {
			t.Fatalf("warm-start solution wrong at %d", i)
		}
	}
}

func TestCGStoppingRuleTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 64
	_, apply := denseSPD(rng, n)
	g := tensor.RandVector(rng, n, 1)
	loose := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 1000, StopTol: 0.05, MinIters: 3})
	tight := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 1000, StopTol: 1e-10, MinIters: 3})
	if loose.Iters >= tight.Iters {
		t.Fatalf("loose tolerance ran %d iters, tight %d — truncation not working", loose.Iters, tight.Iters)
	}
	if loose.Iters >= 1000 {
		t.Fatal("loose run hit MaxIters")
	}
}

func TestCGIterateSpacingGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, apply := denseSPD(rng, 40)
	g := tensor.RandVector(rng, 40, 1)
	res := CGMinimize(apply, g, tensor.NewVector(40), CGOpts{MaxIters: 40, StopTol: 1e-14, SaveFactor: 2})
	if len(res.Iterates) < 3 {
		t.Fatalf("only %d saved iterates", len(res.Iterates))
	}
	if len(res.Iterates) != len(res.QValues) {
		t.Fatal("iterates and q-values out of sync")
	}
	// More iterations than saved iterates confirms subsampling.
	if res.Iters <= len(res.Iterates) {
		t.Fatalf("iters %d, saved %d: expected geometric subsampling", res.Iters, len(res.Iterates))
	}
}

func TestCGZeroGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	_, apply := denseSPD(rng, 8)
	res := CGMinimize(apply, tensor.NewVector(8), tensor.NewVector(8), CGOpts{})
	if res.Final().MaxAbs() != 0 {
		t.Fatal("zero gradient must give zero step")
	}
}

func TestCGDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CGMinimize(func(v, out tensor.Vector) {}, tensor.NewVector(3), tensor.NewVector(4), CGOpts{})
}

// Property: for random small SPD systems, CG run to tolerance matches the
// direct solve.
func TestCGMatchesDirectSolveProperty(t *testing.T) {
	f := func(seed int64, nSeed uint8) bool {
		n := int(nSeed%10) + 2
		rng := rand.New(rand.NewSource(seed))
		a, apply := denseSPD(rng, n)
		g := tensor.RandVector(rng, n, 1)
		b := make([]float64, n)
		for i := range b {
			b[i] = -float64(g[i])
		}
		want := solveDense(a, b)
		got := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 500, StopTol: 1e-12}).Final()
		for i := range want {
			if math.Abs(float64(got[i])-want[i]) > 5e-2*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
