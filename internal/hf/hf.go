package hf

import (
	"math"

	"repro/internal/check"
	"repro/internal/tensor"
)

// Objective is the interface between the optimizer and the (possibly
// distributed) training problem. The serial and master/worker
// implementations live in internal/core; the optimizer is agnostic to
// where gradients and curvature products are computed — exactly the
// property that lets the paper scale the same algorithm to 8192 ranks.
//
// All quantities are per-frame means so values are comparable across data
// set sizes and worker counts.
type Objective interface {
	// Dim returns the parameter count.
	Dim() int
	// Params returns a copy of the current parameters θ.
	Params() tensor.Vector
	// SetParams replaces θ.
	SetParams(p tensor.Vector)
	// Gradient computes ∇L(θ) over the full training set at the current θ.
	Gradient() tensor.Vector
	// NewCurvatureSample draws a fresh curvature mini-sample (1-3% of the
	// training data in the paper) used by all GNProduct calls until the
	// next draw.
	NewCurvatureSample(iter int)
	// GNProduct sets out ← G(θ)·v over the current curvature sample.
	GNProduct(v, out tensor.Vector)
	// HeldOutLoss evaluates the loss of parameter vector p on the held-out
	// set without changing θ.
	HeldOutLoss(p tensor.Vector) float64
}

// Preconditioned is the optional extension an Objective can implement to
// enable the diagonal CG preconditioner of Martens 2010 §4.7 — the
// feature the paper's implementation explicitly defers. CurvatureDiag
// returns a strictly positive diagonal approximating diag(G(θ)) + λ,
// typically (diag(Fisher) + λ)^α with α ≈ 0.75, over the current
// curvature sample.
type Preconditioned interface {
	CurvatureDiag(lambda float64) tensor.Vector
}

// Config holds the outer-loop hyperparameters of Algorithm 1.
type Config struct {
	// MaxIterations bounds outer HF iterations. Default 50.
	MaxIterations int
	// Lambda0 is the initial damping λ. Default 1.0.
	Lambda0 float64
	// Beta is the CG warm-start momentum: d0 ← β·d_N. Default 0.95.
	Beta float64
	// CG configures the inner solver.
	CG CGOpts
	// ArmijoC is the sufficient-decrease constant of the line search.
	// Default 1e-4.
	ArmijoC float64
	// ArmijoShrink is the step shrink factor. Default 0.5.
	ArmijoShrink float64
	// ArmijoMaxSteps bounds line-search halvings. Default 10.
	ArmijoMaxSteps int
	// TolRelImprove stops the outer loop when the relative held-out loss
	// improvement over an iteration falls below it. 0 disables.
	TolRelImprove float64
	// UsePreconditioner enables the Martens diagonal CG preconditioner
	// when the objective implements Preconditioned.
	UsePreconditioner bool
	// Log, when non-nil, receives per-iteration statistics (intended
	// for human-readable progress logging).
	Log func(IterStats)
	// Telemetry, when non-nil, also receives per-iteration statistics —
	// the machine-readable observability hook (e.g. JSONL emission via
	// core.TelemetryJSONL). Both hooks fire once per outer iteration,
	// accepted or rejected.
	Telemetry func(IterStats)
	// Hash, when non-nil, receives FNV hashes of the optimizer's float
	// state each iteration (gradient, CG result, accepted θ, and the
	// scalar decisions; every CG curvature application too under the
	// determinism build tag). core.ReplayVerify diffs two runs' streams
	// to certify bit-reproducibility; see DESIGN.md, "Determinism".
	Hash *check.HashStream
	// InitDirection, when non-nil, seeds the CG warm start d0 (copied,
	// not aliased; must have the objective's dimension). Together with
	// Lambda0 it lets a caller resume an interrupted run with the exact
	// cross-iteration optimizer state a checkpoint captured via State.
	InitDirection tensor.Vector
	// State, when non-nil, fires after each iteration's Log/Telemetry
	// with the cross-iteration optimizer state the NEXT iteration will
	// start from: the post-update damping λ and the CG warm-start
	// direction (a live buffer — copy it, don't retain it). With θ and
	// the held-out loss from IterStats this is everything needed to
	// resume the run exactly (e.g. the elastic runtime's rewind
	// checkpoints).
	State func(iter int, lambda float64, dir tensor.Vector)
}

// emit delivers one iteration's statistics to the configured hooks.
func (c Config) emit(s IterStats) {
	if c.Log != nil {
		c.Log(s)
	}
	if c.Telemetry != nil {
		c.Telemetry(s)
	}
}

func (c Config) filled() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 50
	}
	if c.Lambda0 <= 0 {
		c.Lambda0 = 1.0
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.95
	}
	if c.ArmijoC <= 0 {
		c.ArmijoC = 1e-4
	}
	if c.ArmijoShrink <= 0 || c.ArmijoShrink >= 1 {
		c.ArmijoShrink = 0.5
	}
	if c.ArmijoMaxSteps <= 0 {
		c.ArmijoMaxSteps = 10
	}
	return c
}

// IterStats records one outer HF iteration for logging and the cycle
// accounting that feeds the BG/Q simulator workloads.
type IterStats struct {
	Iter     int
	Loss     float64 // held-out loss after the iteration
	Lambda   float64
	CGIters  int
	BestIdx  int     // index of the backtracked CG iterate used
	Alpha    float64 // line-search step size
	Accepted bool    // false when the step was rejected (λ raised)
	GradNorm float64
	// Rho is the Levenberg-Marquardt reduction ratio
	// (actual improvement)/(model-predicted improvement); 0 when the
	// iteration was rejected or the model predicted no decrease.
	Rho float64
	// Backtracks counts the CG iterates examined by the backtracking
	// scan beyond the final one (each costs one held-out loss
	// evaluation).
	Backtracks int
}

// Result summarizes an Optimize run.
type Result struct {
	Iters     []IterStats
	FinalLoss float64
	// TotalCGIters is the total number of CG iterations across the run,
	// the dominant communication count in the distributed setting.
	TotalCGIters int
}

// Optimize runs Algorithm 1: repeatedly build the damped quadratic model
// at θ, minimize it with truncated CG, backtrack over CG iterates against
// the held-out loss, adapt λ by the reduction ratio ρ, and take an
// Armijo-damped step. It returns after MaxIterations, on convergence, or
// when progress stalls completely.
func Optimize(obj Objective, cfg Config) Result {
	cfg = cfg.filled()
	n := obj.Dim()
	lambda := cfg.Lambda0
	d0 := tensor.NewVector(n)
	if cfg.InitDirection != nil && len(cfg.InitDirection) == n {
		copy(d0, cfg.InitDirection)
	}
	theta := obj.Params()
	lossPrev := obj.HeldOutLoss(theta)
	res := Result{FinalLoss: lossPrev}

	consecutiveRejects := 0
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		g := obj.Gradient()
		if check.Enabled {
			// The gradient is the first vector handed back from the
			// workers each iteration; a non-finite entry here would feed
			// CG a poisoned right-hand side.
			check.Dims("hf.gradient", len(g), n)
			check.Finite("hf.gradient", g)
		}
		cfg.Hash.RecordVec(iter, "gradient", g)
		obj.NewCurvatureSample(iter)
		lam := lambda // capture for the closure
		apply := func(v, out tensor.Vector) {
			obj.GNProduct(v, out)
			out.AddScaled(float32(lam), v)
			if check.Replay {
				// Fine-grained replay: hash every curvature application,
				// pinning a divergence to the exact CG step.
				cfg.Hash.RecordVec(iter, "cg_apply_v", v)
				cfg.Hash.RecordVec(iter, "cg_apply_out", out)
			}
		}
		cgOpts := cfg.CG
		if cfg.UsePreconditioner {
			if prec, ok := obj.(Preconditioned); ok {
				cgOpts.Precond = prec.CurvatureDiag(lambda)
			}
		}
		cg := CGMinimize(apply, g, d0, cgOpts)
		res.TotalCGIters += cg.Iters
		cfg.Hash.RecordVec(iter, "cg_final", cg.Final())

		stats := IterStats{Iter: iter, Lambda: lambda, CGIters: cg.Iters, GradNorm: g.Norm2()}

		// Backtrack over saved CG iterates: take the one with the lowest
		// held-out loss, scanning from the last backwards and stopping
		// once the loss stops improving (Martens' procedure; see package
		// comment for the relation to the paper's listing).
		best := len(cg.Iterates) - 1
		lossBest := lossAt(obj, theta, cg.Iterates[best])
		for i := best - 1; i >= 0; i-- {
			lossCurr := lossAt(obj, theta, cg.Iterates[i])
			stats.Backtracks++
			if lossPrev >= lossBest && lossCurr >= lossBest {
				break
			}
			if lossCurr < lossBest {
				lossBest = lossCurr
				best = i
			}
		}
		stats.BestIdx = best

		if lossPrev < lossBest || math.IsNaN(lossBest) {
			// No CG iterate improves the held-out loss: raise damping,
			// drop the warm start and retry (Algorithm 1's reject branch).
			lambda *= 1.5
			d0.Zero()
			stats.Accepted = false
			stats.Loss = lossPrev
			cfg.Hash.RecordScalars(iter, "reject", lambda, lossBest)
			res.Iters = append(res.Iters, stats)
			cfg.emit(stats)
			if cfg.State != nil {
				cfg.State(iter, lambda, d0)
			}
			consecutiveRejects++
			if consecutiveRejects >= 8 {
				break // damping has grown past any useful step
			}
			continue
		}
		consecutiveRejects = 0

		// Levenberg-Marquardt damping update from the reduction ratio
		// ρ = (actual improvement)/(model-predicted improvement), Martens
		// convention: poor fit (ρ<¼) raises λ, good fit (ρ>¾) lowers it.
		qN := cg.FinalQ()
		if qN < 0 {
			rho := (lossBest - lossPrev) / qN
			stats.Rho = rho
			if rho < 0.25 {
				lambda *= 1.5
			} else if rho > 0.75 {
				lambda *= 2.0 / 3.0
			}
		}

		// Armijo backtracking line search along the chosen iterate:
		// require L(θ+αd) ≤ L(θ) + c·α·gᵀd (sufficient decrease), shrinking
		// α geometrically. If no α satisfies it, fall back to the full step,
		// which the backtracking phase already verified improves the loss.
		d := cg.Iterates[best]
		if check.Enabled {
			// The chosen update direction is about to be broadcast to
			// every rank via SetParams; it must be finite.
			check.Finite("hf.step_direction", d)
		}
		gd := math.Min(g.Dot(d), 0)
		armijoOK := func(l, a float64) bool { return l <= lossPrev+cfg.ArmijoC*a*gd }
		alpha := 1.0
		lossNew := lossBest
		for step := 0; step < cfg.ArmijoMaxSteps && !armijoOK(lossNew, alpha); step++ {
			alpha *= cfg.ArmijoShrink
			trial := theta.Clone()
			trial.AddScaled(float32(alpha), d)
			lossNew = obj.HeldOutLoss(trial)
		}
		if !armijoOK(lossNew, alpha) {
			alpha, lossNew = 1.0, lossBest
		}
		stats.Alpha = alpha

		// Accept: θ ← θ + α·d_best, d0 ← β·d_N, Lprev ← L(θ).
		theta.AddScaled(float32(alpha), d)
		obj.SetParams(theta)
		cfg.Hash.RecordVec(iter, "theta", theta)
		cfg.Hash.RecordScalars(iter, "accept", float64(best), alpha, lambda, lossNew)
		copy(d0, cg.Final())
		d0.Scale(float32(cfg.Beta))
		improvement := (lossPrev - lossNew) / math.Abs(lossPrev)
		lossPrev = lossNew
		stats.Accepted = true
		stats.Loss = lossNew
		res.Iters = append(res.Iters, stats)
		cfg.emit(stats)
		if cfg.State != nil {
			cfg.State(iter, lambda, d0)
		}
		if cfg.TolRelImprove > 0 && improvement >= 0 && improvement < cfg.TolRelImprove {
			break
		}
	}
	res.FinalLoss = lossPrev
	return res
}

// lossAt evaluates the held-out loss at θ+d without mutating θ.
func lossAt(obj Objective, theta, d tensor.Vector) float64 {
	trial := theta.Clone()
	trial.AddScaled(1, d)
	return obj.HeldOutLoss(trial)
}
