package hf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// quadObjective is a synthetic Objective with exact quadratic loss
// L(θ) = ½(θ−θ*)ᵀA(θ−θ*) + c, gradient A(θ−θ*) and curvature A. HF must
// drive it to θ* rapidly.
type quadObjective struct {
	a      [][]float64
	target tensor.Vector
	theta  tensor.Vector
	c      float64

	gradCalls, gnCalls, lossCalls, sampleCalls int
}

func newQuadObjective(rng *rand.Rand, n int) *quadObjective {
	a, _ := denseSPD(rng, n)
	return &quadObjective{
		a:      a,
		target: tensor.RandVector(rng, n, 1),
		theta:  tensor.NewVector(n),
		c:      2.5,
	}
}

func (q *quadObjective) Dim() int                  { return len(q.theta) }
func (q *quadObjective) Params() tensor.Vector     { return q.theta.Clone() }
func (q *quadObjective) SetParams(p tensor.Vector) { copy(q.theta, p) }
func (q *quadObjective) NewCurvatureSample(int)    { q.sampleCalls++ }

func (q *quadObjective) diff(p tensor.Vector) []float64 {
	d := make([]float64, len(p))
	for i := range d {
		d[i] = float64(p[i]) - float64(q.target[i])
	}
	return d
}

func (q *quadObjective) Gradient() tensor.Vector {
	q.gradCalls++
	d := q.diff(q.theta)
	g := tensor.NewVector(len(d))
	for i := range q.a {
		var s float64
		for j := range q.a[i] {
			s += q.a[i][j] * d[j]
		}
		g[i] = float32(s)
	}
	return g
}

func (q *quadObjective) GNProduct(v, out tensor.Vector) {
	q.gnCalls++
	for i := range q.a {
		var s float64
		for j := range q.a[i] {
			s += q.a[i][j] * float64(v[j])
		}
		out[i] += float32(s)
	}
}

func (q *quadObjective) HeldOutLoss(p tensor.Vector) float64 {
	q.lossCalls++
	d := q.diff(p)
	var s float64
	for i := range q.a {
		for j := range q.a[i] {
			s += d[i] * q.a[i][j] * d[j]
		}
	}
	return 0.5*s + q.c
}

func TestOptimizeConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := newQuadObjective(rng, 10)
	res := Optimize(q, Config{MaxIterations: 15, Lambda0: 1, CG: CGOpts{MaxIters: 50, StopTol: 1e-10}})
	if math.Abs(res.FinalLoss-q.c) > 1e-3 {
		t.Fatalf("final loss %v, want ≈%v (the offset)", res.FinalLoss, q.c)
	}
	for i := range q.theta {
		if math.Abs(float64(q.theta[i]-q.target[i])) > 0.05 {
			t.Fatalf("θ[%d] = %v, want %v", i, q.theta[i], q.target[i])
		}
	}
	if q.sampleCalls == 0 {
		t.Fatal("curvature sample never drawn")
	}
}

func TestOptimizeLossMonotoneOnAcceptedSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := newQuadObjective(rng, 8)
	res := Optimize(q, Config{MaxIterations: 10, Lambda0: 5})
	prev := math.Inf(1)
	for _, s := range res.Iters {
		if s.Accepted {
			if s.Loss > prev+1e-9 {
				t.Fatalf("accepted iteration %d increased loss %v → %v", s.Iter, prev, s.Loss)
			}
			prev = s.Loss
		}
	}
	if math.IsInf(prev, 1) {
		t.Fatal("no accepted iterations")
	}
}

func TestOptimizeLambdaDecreasesOnGoodModel(t *testing.T) {
	// On an exact quadratic, the model fit is perfect (ρ≈1), so λ must
	// shrink across iterations (Martens convention).
	rng := rand.New(rand.NewSource(3))
	q := newQuadObjective(rng, 8)
	res := Optimize(q, Config{MaxIterations: 6, Lambda0: 10, TolRelImprove: 0})
	if len(res.Iters) < 2 {
		t.Fatal("too few iterations")
	}
	first, last := res.Iters[0].Lambda, res.Iters[len(res.Iters)-1].Lambda
	if last >= first {
		t.Fatalf("λ did not decrease: %v → %v", first, last)
	}
}

// rejectingObjective reports a held-out loss that strictly worsens with
// any movement away from the start point: HF must raise λ, reject steps,
// and eventually give up rather than loop forever.
type rejectingObjective struct {
	*quadObjective
}

func (r *rejectingObjective) HeldOutLoss(p tensor.Vector) float64 {
	return 100 + p.Norm2()
}

func TestOptimizeRejectionRaisesLambdaAndTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := &rejectingObjective{newQuadObjective(rng, 6)}
	res := Optimize(r, Config{MaxIterations: 50, Lambda0: 1})
	if len(res.Iters) == 0 || len(res.Iters) >= 50 {
		t.Fatalf("expected early termination, ran %d iterations", len(res.Iters))
	}
	for _, s := range res.Iters {
		if s.Accepted {
			t.Fatal("no step should be accepted")
		}
	}
	last := res.Iters[len(res.Iters)-1]
	if last.Lambda <= 1 {
		t.Fatalf("λ should have grown, got %v", last.Lambda)
	}
	if res.FinalLoss != 100 {
		t.Fatalf("final loss %v", res.FinalLoss)
	}
}

func TestOptimizeMomentumWarmStartStillConverges(t *testing.T) {
	// The β·d_N warm start must not break convergence, including with an
	// aggressive β; and the logger must be invoked once per iteration.
	rng := rand.New(rand.NewSource(5))
	for _, beta := range []float64{0.5, 0.95} {
		q := newQuadObjective(rng, 12)
		logged := 0
		res := Optimize(q, Config{
			MaxIterations: 15, Lambda0: 1, Beta: beta,
			CG:  CGOpts{MaxIters: 100, StopTol: 1e-8},
			Log: func(s IterStats) { logged++ },
		})
		if logged != len(res.Iters) {
			t.Fatalf("β=%v: logger called %d times for %d iterations", beta, logged, len(res.Iters))
		}
		if math.Abs(res.FinalLoss-q.c) > 1e-2 {
			t.Fatalf("β=%v: final loss %v, want ≈%v", beta, res.FinalLoss, q.c)
		}
	}
}

func TestOptimizeTolStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := newQuadObjective(rng, 8)
	res := Optimize(q, Config{MaxIterations: 50, TolRelImprove: 1e-6})
	if len(res.Iters) >= 50 {
		t.Fatal("tolerance did not stop the run")
	}
}

func TestOptimizeStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := newQuadObjective(rng, 6)
	res := Optimize(q, Config{MaxIterations: 5})
	total := 0
	for i, s := range res.Iters {
		if s.Iter != i+1 {
			t.Fatalf("iteration numbering: %+v", s)
		}
		if s.Accepted && (s.Alpha <= 0 || s.Alpha > 1) {
			t.Fatalf("alpha out of range: %+v", s)
		}
		if s.GradNorm < 0 {
			t.Fatalf("negative grad norm: %+v", s)
		}
		total += s.CGIters
	}
	if total != res.TotalCGIters {
		t.Fatalf("TotalCGIters %d != sum %d", res.TotalCGIters, total)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.filled()
	if c.MaxIterations != 50 || c.Lambda0 != 1.0 || c.Beta != 0.95 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	o := CGOpts{}.filled()
	if o.MaxIters != 100 || o.MinIters != 10 || o.SaveFactor != 1.3 {
		t.Fatalf("CG defaults wrong: %+v", o)
	}
}
