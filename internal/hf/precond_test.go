package hf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// illConditioned builds a diagonal system with a large condition number
// plus a mild off-diagonal coupling — the regime where Jacobi
// preconditioning pays off.
func illConditioned(n int) ([][]float64, func(v, out tensor.Vector), tensor.Vector) {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = math.Pow(10, 3*float64(i)/float64(n-1)) // cond ≈ 1e3
		if i > 0 {
			a[i][i-1] = 0.1
			a[i-1][i] = 0.1
		}
	}
	apply := func(v, out tensor.Vector) {
		for i := range a {
			var s float64
			for j := range a[i] {
				s += a[i][j] * float64(v[j])
			}
			out[i] += float32(s)
		}
	}
	diag := make(tensor.Vector, n)
	for i := range diag {
		diag[i] = float32(a[i][i])
	}
	return a, apply, diag
}

func TestPreconditionedCGFasterOnIllConditioned(t *testing.T) {
	const n = 40
	a, apply, diag := illConditioned(n)
	rng := rand.New(rand.NewSource(1))
	g := tensor.RandVector(rng, n, 1)

	plain := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 500, StopTol: 1e-10, MinIters: 2})
	prec := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 500, StopTol: 1e-10, MinIters: 2, Precond: diag})
	if prec.Iters >= plain.Iters {
		t.Fatalf("preconditioned CG took %d iters, plain %d — no speedup", prec.Iters, plain.Iters)
	}

	// Both must solve the system.
	b := make([]float64, n)
	for i := range b {
		b[i] = -float64(g[i])
	}
	want := solveDense(a, b)
	for i := range want {
		if math.Abs(float64(prec.Final()[i])-want[i]) > 5e-2*(1+math.Abs(want[i])) {
			t.Fatalf("preconditioned solution wrong at %d: %v vs %v", i, prec.Final()[i], want[i])
		}
	}
}

func TestIdentityPreconditionerMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 16
	_, apply := denseSPD(rng, n)
	g := tensor.RandVector(rng, n, 1)
	ones := make(tensor.Vector, n)
	ones.Fill(1)
	plain := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 60, StopTol: 1e-10})
	prec := CGMinimize(apply, g, tensor.NewVector(n), CGOpts{MaxIters: 60, StopTol: 1e-10, Precond: ones})
	if plain.Iters != prec.Iters {
		t.Fatalf("identity preconditioner changed iteration count: %d vs %d", plain.Iters, prec.Iters)
	}
	if !tensor.EqualApproxVec(plain.Final(), prec.Final(), 1e-5) {
		t.Fatal("identity preconditioner changed the solution")
	}
}

func TestPrecondValidation(t *testing.T) {
	_, apply := denseSPD(rand.New(rand.NewSource(3)), 4)
	g := tensor.NewVector(4)
	g[0] = 1
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for wrong-length preconditioner")
			}
		}()
		CGMinimize(apply, g, tensor.NewVector(4), CGOpts{Precond: make(tensor.Vector, 3)})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for non-positive preconditioner")
			}
		}()
		bad := make(tensor.Vector, 4)
		bad.Fill(1)
		bad[2] = 0
		CGMinimize(apply, g, tensor.NewVector(4), CGOpts{Precond: bad})
	}()
}

// preconditionedQuad is quadObjective plus the Preconditioned interface
// exposing the exact diagonal of A.
type preconditionedQuad struct {
	*quadObjective
}

func (q *preconditionedQuad) CurvatureDiag(lambda float64) tensor.Vector {
	d := make(tensor.Vector, len(q.theta))
	for i := range d {
		d[i] = float32(q.a[i][i] + lambda)
	}
	return d
}

func TestOptimizeWithPreconditioner(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := &preconditionedQuad{newQuadObjective(rng, 10)}
	res := Optimize(q, Config{
		MaxIterations:     10,
		UsePreconditioner: true,
		CG:                CGOpts{MaxIters: 60, StopTol: 1e-10},
	})
	if math.Abs(res.FinalLoss-q.c) > 1e-3 {
		t.Fatalf("preconditioned HF failed to converge: %v", res.FinalLoss)
	}
}

func TestOptimizePreconditionerFlagIgnoredWithoutInterface(t *testing.T) {
	// A plain objective with UsePreconditioner set must still work.
	rng := rand.New(rand.NewSource(5))
	q := newQuadObjective(rng, 8)
	res := Optimize(q, Config{MaxIterations: 10, UsePreconditioner: true})
	if math.Abs(res.FinalLoss-q.c) > 1e-3 {
		t.Fatalf("flag without interface broke optimization: %v", res.FinalLoss)
	}
}
