package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// CommCheck statically verifies the master/worker collective protocol
// built on repro/internal/mpi. MPI-style collectives are only correct
// when every rank executes the same sequence of operations with
// compatible arguments; a master that broadcasts where its workers
// reduce (or disagrees on root, element type or buffer length)
// deadlocks the job or silently folds mismatched buffers. The analyzer
// extracts a per-path summary of collective calls — kind, payload
// dtype, root, and element count where statically resolvable — from
// every function, propagates summaries through same-package calls, and
// checks three protocol properties:
//
//  1. Op-dispatch conformance. A switch whose case labels are
//     package-level constants and whose arms execute collectives is an
//     op-dispatch switch (the worker side of a command protocol). For
//     each arm, the analyzer locates the master-side sender — a use of
//     the same opcode constant outside any dispatch switch that is
//     accompanied by collective traffic — and compares the collectives
//     following the send against the arm's, element by element:
//     mismatched kind, dtype, root, sequence length, or (when both
//     resolve) buffer length is an error.
//  2. Orphan arms. A dispatch arm whose opcode constant no sender ever
//     uses is dead protocol: the master can never drive that arm, and
//     a master-side refactor that dropped the send has desynchronized
//     the opcode table. Reported as an error.
//  3. Rank-divergent collectives. A collective executed under a
//     conditional that depends on Comm.Rank() runs on a subset of
//     ranks and deadlocks the rest. Legitimate uses (root-only
//     payload staging around a collective, not the collective itself)
//     are rare and must carry a //lint:ignore justification.
//
// The mpi package itself is exempt: its tree implementations are
// intentionally rank-asymmetric below the collective boundary.
type CommCheck struct{}

// Name implements Analyzer.
func (CommCheck) Name() string { return "commcheck" }

// Doc implements Analyzer.
func (CommCheck) Doc() string {
	return "cross-rank collective-protocol conformance: op-dispatch arms must mirror their " +
		"master sender's collective sequence (kind/dtype/root/length), every arm needs a live " +
		"sender, and collectives must not sit under Rank()-dependent conditionals"
}

// mpiPkgPath is the package whose collective surface this analyzer
// understands.
const mpiPkgPath = "repro/internal/mpi"

// collSig describes one mpi.Comm collective method: the abstract
// operation it performs and where its root and payload sit in the
// argument list (-1: not present).
type collSig struct {
	kind    string
	dtype   string
	rootArg int
	bufArg  int
}

// collSigs maps mpi.Comm method names to their protocol signatures.
var collSigs = map[string]collSig{
	"Bcast":        {"bcast", "f32", 0, 1},
	"Reduce":       {"reduce", "f32", 0, 2},
	"ReduceF64":    {"reduce", "f64", 0, 2},
	"Allreduce":    {"allreduce", "f32", -1, 1},
	"AllreduceF64": {"allreduce", "f64", -1, 1},
	"Barrier":      {"barrier", "none", -1, -1},
	"Gather":       {"gather", "f32", 0, 1},
	"Scatter":      {"scatter", "f32", 0, 2},
	"Allgather":    {"allgather", "f32", -1, 0},
}

// commEvent is one collective in a summarized execution path.
type commEvent struct {
	kind  string
	dtype string
	// root is the resolved root rank; rootKnown reports whether the
	// root argument was a constant. Rootless collectives have
	// rootKnown=true, root=-1.
	root      int
	rootKnown bool
	// count is the payload element count, or -1 when not statically
	// resolvable.
	count int
	// node anchors findings about this event (the collective call for
	// direct events; the local call expression for spliced events).
	node ast.Node
	// site is the collective call's file:line, for cross-references in
	// messages about the *other* side of the protocol.
	site string
	// conditional marks events reached under branching control flow
	// (within their function), which makes a summary non-comparable.
	conditional bool
}

// desc renders the event like the runtime checker: "kind[dtype n=.. root=..]".
func (e commEvent) desc() string {
	var b strings.Builder
	b.WriteString(e.kind)
	b.WriteString("[")
	b.WriteString(e.dtype)
	if e.count >= 0 {
		fmt.Fprintf(&b, " n=%d", e.count)
	}
	if e.rootKnown && e.root >= 0 {
		fmt.Fprintf(&b, " root=%d", e.root)
	}
	b.WriteString("]")
	return b.String()
}

// funcSummary is the ordered collective trace of one function body.
type funcSummary struct {
	events []commEvent
}

// linear reports whether the summary is a single unconditional path
// (the precondition for sequence comparison).
func (s *funcSummary) linear() bool {
	for _, e := range s.events {
		if e.conditional {
			return false
		}
	}
	return true
}

// commAnalysis carries one package's analysis state.
type commAnalysis struct {
	p     *Package
	check CommCheck

	// decls maps function objects to their declarations, for summary
	// splicing across same-package calls.
	decls map[*types.Func]*ast.FuncDecl
	// summaries memoizes per-function collective traces; inProgress
	// guards recursion so cycles poison to "unknown" instead of looping.
	summaries  map[*types.Func]*funcSummary
	inProgress map[*types.Func]bool
	// varDef maps a variable object to the expression it was defined
	// with (single-assignment := and var forms), for length resolution.
	varDef map[types.Object]ast.Expr

	findings []Finding
}

// Run implements Analyzer.
func (c CommCheck) Run(p *Package) []Finding {
	if p.ImportPath == mpiPkgPath {
		return nil
	}
	a := &commAnalysis{
		p:          p,
		check:      c,
		decls:      map[*types.Func]*ast.FuncDecl{},
		summaries:  map[*types.Func]*funcSummary{},
		inProgress: map[*types.Func]bool{},
		varDef:     map[types.Object]ast.Expr{},
	}
	a.collectDecls()
	if len(a.decls) == 0 {
		return nil
	}
	a.checkRankConditionals()
	a.checkDispatch()
	return a.findings
}

// collectDecls indexes function declarations and single-assignment
// variable definitions across the package.
func (a *commAnalysis) collectDecls() {
	for _, file := range a.p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := a.p.Info.Defs[fd.Name].(*types.Func); ok {
				a.decls[fn] = fd
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := a.p.Info.Defs[id]; obj != nil {
						a.varDef[obj] = st.Rhs[i]
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, id := range st.Names {
					if obj := a.p.Info.Defs[id]; obj != nil {
						a.varDef[obj] = st.Values[i]
					}
				}
			}
			return true
		})
	}
}

// collectiveSig resolves a call to an mpi collective method, or ok=false.
func (a *commAnalysis) collectiveSig(call *ast.CallExpr) (collSig, bool) {
	fn := a.p.calleeFunc(call)
	if fn == nil || pkgPath(fn) != mpiPkgPath {
		return collSig{}, false
	}
	sig, ok := collSigs[fn.Name()]
	return sig, ok
}

// localCallee resolves a call to a function declared in this package.
func (a *commAnalysis) localCallee(call *ast.CallExpr) *types.Func {
	fn := a.p.calleeFunc(call)
	if fn == nil || fn.Pkg() != a.p.Types {
		return nil
	}
	if _, ok := a.decls[fn]; !ok {
		return nil
	}
	return fn
}

// eventFor builds the commEvent for one collective call.
func (a *commAnalysis) eventFor(call *ast.CallExpr, sig collSig, conditional bool) commEvent {
	e := commEvent{
		kind:        sig.kind,
		dtype:       sig.dtype,
		root:        -1,
		rootKnown:   sig.rootArg < 0, // rootless collectives have a known (absent) root
		count:       -1,
		node:        call,
		site:        a.site(call),
		conditional: conditional,
	}
	if sig.rootArg >= 0 && sig.rootArg < len(call.Args) {
		if v, ok := a.constInt(call.Args[sig.rootArg]); ok {
			e.root, e.rootKnown = v, true
		}
	}
	if sig.bufArg >= 0 && sig.bufArg < len(call.Args) {
		e.count = a.resolveCount(call.Args[sig.bufArg], 0)
	} else if sig.bufArg < 0 {
		e.count = 0 // payload-free (Barrier)
	}
	return e
}

// site renders node's position as a root-relative file:line.
func (a *commAnalysis) site(node ast.Node) string {
	pos := a.p.Fset.Position(node.Pos())
	file := pos.Filename
	if rel, err := filepath.Rel(a.p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("%s:%d", filepath.ToSlash(file), pos.Line)
}

// constInt resolves e to a constant int.
func (a *commAnalysis) constInt(e ast.Expr) (int, bool) {
	tv, ok := a.p.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, false
	}
	return int(v), true
}

// resolveCount statically resolves the element count of a payload
// expression: unkeyed composite literals, make with a constant size,
// and variables defined once from either.
func (a *commAnalysis) resolveCount(e ast.Expr, depth int) int {
	if depth > 4 {
		return -1
	}
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if _, keyed := el.(*ast.KeyValueExpr); keyed {
				return -1
			}
		}
		if _, ok := a.p.Info.TypeOf(e).Underlying().(*types.Slice); ok {
			return len(e.Elts)
		}
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 2 {
			if v, ok := a.constInt(e.Args[1]); ok {
				return v
			}
		}
	case *ast.Ident:
		obj := a.p.Info.Uses[e]
		if obj == nil {
			return -1
		}
		if def, ok := a.varDef[obj]; ok {
			return a.resolveCount(def, depth+1)
		}
	}
	return -1
}

// --- summary extraction ---

// summarize returns fn's memoized collective trace. A recursion cycle
// or a missing body yields an empty summary.
func (a *commAnalysis) summarize(fn *types.Func) *funcSummary {
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	if a.inProgress[fn] {
		return &funcSummary{}
	}
	a.inProgress[fn] = true
	sum := &funcSummary{}
	if fd := a.decls[fn]; fd != nil {
		a.collectStmts(fd.Body.List, false, sum)
	}
	a.inProgress[fn] = false
	a.summaries[fn] = sum
	return sum
}

// collectStmts appends the collective events of stmts (in source order)
// to sum. conditional marks the whole region as branch-dependent.
// Control-flow statements make their contents conditional, except that
// an if/switch init and condition run unconditionally.
func (a *commAnalysis) collectStmts(stmts []ast.Stmt, conditional bool, sum *funcSummary) {
	for _, s := range stmts {
		a.collectStmt(s, conditional, sum)
	}
}

func (a *commAnalysis) collectStmt(s ast.Stmt, conditional bool, sum *funcSummary) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			a.collectStmt(s.Init, conditional, sum)
		}
		a.collectExpr(s.Cond, conditional, sum)
		a.collectStmts(s.Body.List, true, sum)
		if s.Else != nil {
			a.collectStmt(s.Else, true, sum)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.collectStmt(s.Init, conditional, sum)
		}
		if s.Tag != nil {
			a.collectExpr(s.Tag, conditional, sum)
		}
		a.collectStmts(s.Body.List, true, sum)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if st, ok := n.(*ast.BlockStmt); ok && st != s {
				a.collectStmts(st.List, true, sum)
				return false
			}
			return true
		})
	case *ast.CaseClause:
		a.collectStmts(s.Body, conditional, sum)
	case *ast.ForStmt:
		if s.Init != nil {
			a.collectStmt(s.Init, true, sum)
		}
		if s.Cond != nil {
			a.collectExpr(s.Cond, true, sum)
		}
		a.collectStmts(s.Body.List, true, sum)
		if s.Post != nil {
			a.collectStmt(s.Post, true, sum)
		}
	case *ast.RangeStmt:
		a.collectExpr(s.X, conditional, sum)
		a.collectStmts(s.Body.List, true, sum)
	case *ast.BlockStmt:
		a.collectStmts(s.List, conditional, sum)
	case *ast.LabeledStmt:
		a.collectStmt(s.Stmt, conditional, sum)
	case *ast.GoStmt:
		a.collectExpr(s.Call, true, sum)
	case *ast.DeferStmt:
		a.collectExpr(s.Call, true, sum)
	case *ast.ExprStmt:
		a.collectExpr(s.X, conditional, sum)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			a.collectExpr(r, conditional, sum)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			a.collectExpr(r, conditional, sum)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				a.collectExpr(e, conditional, sum)
				return false
			}
			return true
		})
	case *ast.SendStmt:
		a.collectExpr(s.Value, conditional, sum)
	}
}

// collectExpr scans one expression for collective calls and spliced
// local calls, in source order.
func (a *commAnalysis) collectExpr(e ast.Expr, conditional bool, sum *funcSummary) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs at some unknowable time; its events
			// are conditional by construction.
			a.collectStmts(n.Body.List, true, sum)
			return false
		case *ast.CallExpr:
			// Arguments evaluate before the call.
			for _, arg := range n.Args {
				a.collectExpr(arg, conditional, sum)
			}
			if sig, ok := a.collectiveSig(n); ok {
				sum.events = append(sum.events, a.eventFor(n, sig, conditional))
				return false
			}
			if fn := a.localCallee(n); fn != nil {
				callee := a.summarize(fn)
				for _, ev := range callee.events {
					ev.conditional = ev.conditional || conditional
					// Anchor spliced events at the call site; keep the
					// callee's site for cross-reference text.
					ev.node = n
					sum.events = append(sum.events, ev)
				}
				return false
			}
			a.collectExpr(n.Fun, conditional, sum)
			return false
		}
		return true
	})
}

// stmtSummary summarizes a single statement subtree.
func (a *commAnalysis) stmtSummary(s ast.Stmt) *funcSummary {
	sum := &funcSummary{}
	a.collectStmt(s, false, sum)
	return sum
}

// --- rank-divergent collectives ---

// checkRankConditionals reports collectives executed under conditionals
// that depend on Comm.Rank().
func (a *commAnalysis) checkRankConditionals() {
	for _, fd := range a.orderedDecls() {
		rankVars := a.rankDerivedVars(fd)
		reported := map[ast.Node]bool{}
		a.walkRankBranches(fd.Body.List, false, rankVars, reported)
	}
}

// orderedDecls returns the package's function declarations in source
// order, for deterministic output.
func (a *commAnalysis) orderedDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range a.p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// rankDerivedVars collects variables assigned from a Comm.Rank() call
// anywhere in fd.
func (a *commAnalysis) rankDerivedVars(fd *ast.FuncDecl) map[types.Object]bool {
	vars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !a.isRankExpr(st.Rhs[i], nil) {
				continue
			}
			if obj := a.p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := a.p.Info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
		return true
	})
	return vars
}

// isRankExpr reports whether e contains a Comm.Rank() call or a
// rank-derived variable.
func (a *commAnalysis) isRankExpr(e ast.Expr, rankVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := a.p.calleeFunc(n); fn != nil && fn.Name() == "Rank" && pkgPath(fn) == mpiPkgPath {
				found = true
			}
		case *ast.Ident:
			if rankVars != nil && rankVars[a.p.Info.Uses[n]] {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkRankBranches descends fd's statements tracking whether control is
// inside a Rank()-dependent branch, and reports each collective (or
// collective-bearing local call) executed there.
func (a *commAnalysis) walkRankBranches(stmts []ast.Stmt, inRankBranch bool, rankVars map[types.Object]bool, reported map[ast.Node]bool) {
	for _, s := range stmts {
		a.walkRankBranch(s, inRankBranch, rankVars, reported)
	}
}

func (a *commAnalysis) walkRankBranch(s ast.Stmt, inRank bool, rankVars map[types.Object]bool, reported map[ast.Node]bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			a.walkRankBranch(s.Init, inRank, rankVars, reported)
		}
		a.reportRankExpr(s.Cond, inRank, reported)
		branchRank := inRank || a.isRankExpr(s.Cond, rankVars)
		a.walkRankBranches(s.Body.List, branchRank, rankVars, reported)
		if s.Else != nil {
			a.walkRankBranch(s.Else, branchRank, rankVars, reported)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.walkRankBranch(s.Init, inRank, rankVars, reported)
		}
		branchRank := inRank
		if s.Tag != nil {
			a.reportRankExpr(s.Tag, inRank, reported)
			branchRank = branchRank || a.isRankExpr(s.Tag, rankVars)
		}
		a.walkRankBranches(s.Body.List, branchRank, rankVars, reported)
	case *ast.CaseClause:
		a.walkRankBranches(s.Body, inRank, rankVars, reported)
	case *ast.ForStmt:
		if s.Init != nil {
			a.walkRankBranch(s.Init, inRank, rankVars, reported)
		}
		if s.Cond != nil {
			a.reportRankExpr(s.Cond, inRank, reported)
		}
		a.walkRankBranches(s.Body.List, inRank, rankVars, reported)
		if s.Post != nil {
			a.walkRankBranch(s.Post, inRank, rankVars, reported)
		}
	case *ast.RangeStmt:
		a.reportRankExpr(s.X, inRank, reported)
		a.walkRankBranches(s.Body.List, inRank, rankVars, reported)
	case *ast.BlockStmt:
		a.walkRankBranches(s.List, inRank, rankVars, reported)
	case *ast.LabeledStmt:
		a.walkRankBranch(s.Stmt, inRank, rankVars, reported)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if st, ok := n.(*ast.BlockStmt); ok && st != s {
				a.walkRankBranches(st.List, inRank, rankVars, reported)
				return false
			}
			return true
		})
	default:
		// Leaf statement: scan its expressions.
		ast.Inspect(s, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			a.reportRankExpr(e, inRank, reported)
			return false
		})
	}
}

// reportRankExpr scans an expression occurring while control is (or is
// not) under a rank-dependent branch and reports collective traffic.
func (a *commAnalysis) reportRankExpr(e ast.Expr, inRank bool, reported map[ast.Node]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sig, ok := a.collectiveSig(call); ok {
			if inRank && !reported[call] {
				reported[call] = true
				a.findings = append(a.findings, a.p.finding(a.check, SevWarn, call,
					"%s executed under a Rank()-dependent conditional: only a subset of ranks reaches this collective, deadlocking the rest",
					sig.kind))
			}
			return true
		}
		if fn := a.localCallee(call); fn != nil && inRank && !reported[call] {
			if sum := a.summarize(fn); len(sum.events) > 0 {
				reported[call] = true
				a.findings = append(a.findings, a.p.finding(a.check, SevWarn, call,
					"call to %s executes %d collective(s) under a Rank()-dependent conditional: only a subset of ranks reaches them, deadlocking the rest",
					fn.Name(), len(sum.events)))
			}
		}
		return true
	})
}

// --- op-dispatch conformance ---

// dispatchArm is one single-opcode arm of a dispatch switch.
type dispatchArm struct {
	constObj *types.Const
	clause   *ast.CaseClause
	summary  *funcSummary
}

// dispatchSwitch is a worker-side opcode switch: case labels that are
// package-level constants, with at least one collective-bearing arm.
type dispatchSwitch struct {
	stmt *ast.SwitchStmt
	arms []dispatchArm
}

// checkDispatch finds dispatch switches, their master-side senders, and
// compares the two sides of the protocol.
func (a *commAnalysis) checkDispatch() {
	switches, labelIdents := a.findDispatchSwitches()
	if len(switches) == 0 {
		return
	}
	group := map[*types.Const]bool{}
	for _, sw := range switches {
		for _, arm := range sw.arms {
			group[arm.constObj] = true
		}
	}
	senders := a.findSenders(group, labelIdents)
	for _, sw := range switches {
		for _, arm := range sw.arms {
			uses := senders[arm.constObj]
			if len(uses) == 0 {
				a.findings = append(a.findings, a.p.finding(a.check, SevError, arm.clause,
					"dispatch arm for %s has no master sender: no code path outside this switch issues %s with collective traffic",
					arm.constObj.Name(), arm.constObj.Name()))
				continue
			}
			if !arm.summary.linear() {
				continue
			}
			for _, u := range uses {
				a.compareArm(arm, u)
			}
		}
	}
}

// findDispatchSwitches scans every function for dispatch switches and
// returns them plus the set of case-label identifiers (which must not
// count as master-side uses).
func (a *commAnalysis) findDispatchSwitches() ([]dispatchSwitch, map[*ast.Ident]bool) {
	var switches []dispatchSwitch
	labels := map[*ast.Ident]bool{}
	for _, fd := range a.orderedDecls() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			var arms []dispatchArm
			var armLabels []*ast.Ident
			hasEvents := false
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				if clause.List == nil {
					continue // default
				}
				var clauseConsts []*types.Const
				ok := true
				for _, v := range clause.List {
					id := labelIdent(v)
					if id == nil {
						ok = false
						break
					}
					cobj, isConst := a.p.Info.Uses[id].(*types.Const)
					if !isConst || cobj.Pkg() != a.p.Types || cobj.Parent() != a.p.Types.Scope() {
						ok = false
						break
					}
					clauseConsts = append(clauseConsts, cobj)
					armLabels = append(armLabels, id)
				}
				if !ok {
					return true // not a dispatch switch; keep scanning nested switches
				}
				sum := &funcSummary{}
				a.collectStmts(clause.Body, false, sum)
				if len(sum.events) > 0 {
					hasEvents = true
				}
				if len(clauseConsts) == 1 {
					arms = append(arms, dispatchArm{constObj: clauseConsts[0], clause: clause, summary: sum})
				}
			}
			if hasEvents && len(arms) > 0 {
				switches = append(switches, dispatchSwitch{stmt: sw, arms: arms})
				for _, id := range armLabels {
					labels[id] = true
				}
			}
			return true
		})
	}
	return switches, labels
}

// labelIdent extracts the identifier of a case label (possibly
// package-qualified), or nil.
func labelIdent(e ast.Expr) *ast.Ident {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// senderUse is one master-side use of an opcode constant: the
// collective trace following the issuing statement.
type senderUse struct {
	ident *ast.Ident
	site  string
	tail  *funcSummary
}

// findSenders locates every use of a dispatch-group constant outside
// dispatch-switch labels, and summarizes the collective tail after the
// issuing statement — up to the next opcode use or the end of the
// enclosing function. A use with no collective traffic in its statement
// or tail (e.g. an opcode's String() table) is not a sender.
func (a *commAnalysis) findSenders(group map[*types.Const]bool, labels map[*ast.Ident]bool) map[*types.Const][]senderUse {
	senders := map[*types.Const][]senderUse{}
	a.p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		cobj, isConst := a.p.Info.Uses[id].(*types.Const)
		if !isConst || !group[cobj] || labels[id] {
			return true
		}
		fd, body := enclosingFunc(stack)
		if fd == nil {
			return true
		}
		top := topLevelStmt(body, id)
		if top == nil {
			return true
		}
		// Tail: statements after the issuing one, stopping at the next
		// statement that uses any opcode of the group.
		tail := &funcSummary{}
		idx := stmtIndex(body, top)
		for _, s := range body.List[idx+1:] {
			if a.usesGroupConst(s, group, labels) {
				break
			}
			a.collectStmt(s, false, tail)
		}
		if len(a.stmtSummary(top).events) == 0 && len(tail.events) == 0 {
			return true
		}
		senders[cobj] = append(senders[cobj], senderUse{ident: id, site: a.site(id), tail: tail})
		return true
	})
	return senders
}

// enclosingFunc finds the innermost function declaration or literal in
// the stack and returns it with its body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// topLevelStmt returns the statement of body directly containing node.
func topLevelStmt(body *ast.BlockStmt, node ast.Node) ast.Stmt {
	for _, s := range body.List {
		if s.Pos() <= node.Pos() && node.End() <= s.End() {
			return s
		}
	}
	return nil
}

// stmtIndex returns s's index in body.
func stmtIndex(body *ast.BlockStmt, s ast.Stmt) int {
	for i, st := range body.List {
		if st == s {
			return i
		}
	}
	return len(body.List)
}

// usesGroupConst reports whether any identifier under s (outside
// dispatch labels) refers to one of the group's constants.
func (a *commAnalysis) usesGroupConst(s ast.Stmt, group map[*types.Const]bool, labels map[*ast.Ident]bool) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !labels[id] {
			if cobj, isConst := a.p.Info.Uses[id].(*types.Const); isConst && group[cobj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// compareArm checks one dispatch arm against one sender's collective
// tail, element by element.
func (a *commAnalysis) compareArm(arm dispatchArm, u senderUse) {
	if !u.tail.linear() {
		return
	}
	name := arm.constObj.Name()
	armEv, sendEv := arm.summary.events, u.tail.events
	if len(armEv) != len(sendEv) {
		a.findings = append(a.findings, a.p.finding(a.check, SevError, arm.clause,
			"dispatch arm for %s runs %d collective(s) but its master sender at %s follows with %d: the ranks will desynchronize",
			name, len(armEv), u.site, len(sendEv)))
		return
	}
	for i := range armEv {
		w, m := armEv[i], sendEv[i]
		var what string
		switch {
		case w.kind != m.kind:
			what = "kind"
		case w.dtype != m.dtype:
			what = "dtype"
		case w.rootKnown && m.rootKnown && w.root != m.root:
			what = "root"
		case w.count >= 0 && m.count >= 0 && w.count != m.count:
			what = "length"
		default:
			continue
		}
		a.findings = append(a.findings, a.p.finding(a.check, SevError, w.node,
			"dispatch arm for %s: collective %d is %s but the master sender at %s executes %s (at %s) — %s mismatch",
			name, i+1, w.desc(), u.site, m.desc(), m.site, what))
	}
}
