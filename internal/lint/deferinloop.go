package lint

import "go/ast"

// DeferInLoop flags defer statements inside for/range loops. A defer
// runs at function exit, not loop-iteration exit, so a defer inside the
// CG inner loop or the training iteration loop accumulates one pending
// call per iteration: file handles stay open across the whole solve,
// unlock is postponed until the function returns (serializing what
// looked like per-iteration locking), and the deferred closures pin
// their captured buffers — an allocation leak the hot-path gates exist
// to prevent.
//
// A function literal inside the loop resets the scope: defers in its
// body run when the literal returns, once per call, which is the
// sanctioned way to get per-iteration cleanup.
type DeferInLoop struct{}

// Name implements Analyzer.
func (DeferInLoop) Name() string { return "deferinloop" }

// Doc implements Analyzer.
func (DeferInLoop) Doc() string {
	return "defer inside a for/range loop runs at function exit, not iteration " +
		"exit; pending calls and their captured memory pile up per iteration"
}

// Run implements Analyzer.
func (d DeferInLoop) Run(p *Package) []Finding {
	var out []Finding
	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if inLoop(stack) {
			out = append(out, p.finding(d, SevWarn, ds,
				"defer inside a loop runs at function exit, not per iteration; "+
					"hoist the cleanup or wrap the iteration body in a function"))
		}
		return true
	})
	return out
}

// inLoop reports whether the innermost enclosing function boundary on
// the stack is crossed by a for or range statement — i.e. the node at
// the top of the stack sits inside a loop of the current function.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}
