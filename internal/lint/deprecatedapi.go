package lint

import (
	"go/ast"
	"go/types"
)

// DeprecatedAPI flags uses of the superseded distributed-training entry
// points in internal/core. The old surface was a five-way cross-product —
// TrainDistributedHF{,Obs,Checked,TCP,TCPChecked} for spawn-mode runs and
// Run{Master,Worker}{,Obs} for caller-owned ranks — that forced every new
// orthogonal capability (observability, protocol checking, transport
// choice, fault tolerance) to multiply the API. core.NewSession with
// options replaces all of them; the old names survive only as deprecation
// shims inside internal/core, which is the one package this analyzer
// does not inspect.
type DeprecatedAPI struct{}

// Name implements Analyzer.
func (DeprecatedAPI) Name() string { return "deprecatedapi" }

// Doc implements Analyzer.
func (DeprecatedAPI) Doc() string {
	return "call to a deprecated core training entry point; " +
		"build a core.NewSession with options (WithRanks/WithFabric/WithComm/" +
		"WithObserver/WithCheck/WithFaults) and call Run instead"
}

// deprecatedCoreFuncs maps each shimmed entry point to the option spelling
// that replaces it, quoted in the finding message.
var deprecatedCoreFuncs = map[string]string{
	"TrainDistributedHF":           "core.NewSession(p, core.WithRanks(n))",
	"TrainDistributedHFObs":        "core.NewSession with core.WithObserver",
	"TrainDistributedHFChecked":    "core.NewSession with core.WithCheck",
	"TrainDistributedHFTCP":        "core.NewSession with core.WithFabric(core.FabricTCP)",
	"TrainDistributedHFTCPChecked": "core.NewSession with core.WithFabric and core.WithCheck",
	"RunMaster":                    "core.NewSession with core.WithComm",
	"RunMasterObs":                 "core.NewSession with core.WithComm and core.WithObserver",
	"RunWorker":                    "core.NewSession with core.WithComm",
	"RunWorkerObs":                 "core.NewSession with core.WithComm and core.WithObserver",
}

// coreImportPath is the package whose deprecated surface is policed.
const coreImportPath = "repro/internal/core"

// Run implements Analyzer.
func (d DeprecatedAPI) Run(p *Package) []Finding {
	if p.ImportPath == coreImportPath {
		return nil // the deprecation shims themselves live here
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok || pkgPath(fn) != coreImportPath {
				return true
			}
			repl, deprecated := deprecatedCoreFuncs[fn.Name()]
			if !deprecated {
				return true
			}
			out = append(out, p.finding(d, SevError, id,
				"core.%s is deprecated; use %s", fn.Name(), repl))
			return true
		})
	}
	return out
}
