package lint

import (
	"go/ast"
)

// DeprecatedAPI polices the retired distributed-training entry-point
// names. The old surface was a five-way cross-product —
// TrainDistributedHF{,Obs,Checked,TCP,TCPChecked} for spawn-mode runs and
// Run{Master,Worker}{,Obs} for caller-owned ranks — that forced every new
// orthogonal capability (observability, protocol checking, transport
// choice, fault tolerance) to multiply the API. core.NewSession with
// options replaced all of them, and the shims have since been deleted, so
// the analyzer matches purely by identifier name: any occurrence — a
// call, a reference, or a re-declaration that would resurrect a name, in
// any package including internal/core itself — is an error.
type DeprecatedAPI struct{}

// Name implements Analyzer.
func (DeprecatedAPI) Name() string { return "deprecatedapi" }

// Doc implements Analyzer.
func (DeprecatedAPI) Doc() string {
	return "occurrence of a retired core training entry-point name " +
		"(TrainDistributedHF*, Run{Master,Worker}*); the shims are deleted and the " +
		"names reserved — build a core.NewSession with options (WithRanks/WithFabric/" +
		"WithComm/WithObserver/WithCheck/WithFaults) and call Run instead"
}

// deprecatedCoreFuncs maps each retired entry-point name to the option
// spelling that replaces it, quoted in the finding message.
var deprecatedCoreFuncs = map[string]string{
	"TrainDistributedHF":           "core.NewSession(p, core.WithRanks(n))",
	"TrainDistributedHFObs":        "core.NewSession with core.WithObserver",
	"TrainDistributedHFChecked":    "core.NewSession with core.WithCheck",
	"TrainDistributedHFTCP":        "core.NewSession with core.WithFabric(core.FabricTCP)",
	"TrainDistributedHFTCPChecked": "core.NewSession with core.WithFabric and core.WithCheck",
	"RunMaster":                    "core.NewSession with core.WithComm",
	"RunMasterObs":                 "core.NewSession with core.WithComm and core.WithObserver",
	"RunWorker":                    "core.NewSession with core.WithComm",
	"RunWorkerObs":                 "core.NewSession with core.WithComm and core.WithObserver",
}

// Run implements Analyzer.
func (d DeprecatedAPI) Run(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			repl, retired := deprecatedCoreFuncs[id.Name]
			if !retired {
				return true
			}
			// Purely name-based: a declaration resurrects the name, a use
			// calls or references whatever carries it. Either way the name
			// itself is the violation.
			if obj := p.Info.Defs[id]; obj != nil {
				out = append(out, p.finding(d, SevError, id,
					"%s re-declares a retired core entry-point name; use %s", id.Name, repl))
				return true
			}
			if obj := p.Info.Uses[id]; obj != nil {
				out = append(out, p.finding(d, SevError, id,
					"%s is a retired core entry point; use %s", id.Name, repl))
			}
			return true
		})
	}
	return out
}
