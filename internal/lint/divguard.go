package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DivGuard flags floating-point divisions whose denominator is a
// computed variable with no zero/NaN guard anywhere in the enclosing
// function. In the HF trainer the denominators are reduced or
// accumulated quantities — frame counts summed over workers, the
// quadratic-model value in the ρ = Δactual/Δpredicted damping update,
// line-search ratios, preconditioner diagonals — and a zero slipping
// through produces an Inf/NaN that a later reduction broadcasts to
// every rank (the second-order fragility Martens 2010 warns about).
//
// Heuristic: the denominator (after stripping parentheses, float
// conversions and math.Abs) must be a plain variable, field or index
// expression; the division is considered guarded when the same
// expression appears in any comparison or math.IsNaN/IsInf call in the
// function (covering `if n > 0 { ... }` guards and `if n < 1 { n = 1 }`
// clamps alike), or when the denominator carries a nonzero additive
// epsilon (`x / (d + 1e-8)`). Constant denominators are exempt.
// Divisions whose safety is an invariant established elsewhere must say
// so with //lint:ignore divguard and a reason.
type DivGuard struct{}

// Name implements Analyzer.
func (DivGuard) Name() string { return "divguard" }

// Doc implements Analyzer.
func (DivGuard) Doc() string {
	return "float division by a computed value with no zero/NaN guard in the " +
		"enclosing function; guard the denominator, add an epsilon, or justify " +
		"with //lint:ignore divguard"
}

// Run implements Analyzer.
func (d DivGuard) Run(p *Package) []Finding {
	if !inNumericScope(p, d.Name()) {
		return nil
	}
	var out []Finding
	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || bin.Op != token.QUO || !p.isFloat(bin) {
			return true
		}
		den := p.stripDenominator(bin.Y)
		if p.isConst(den) {
			return true
		}
		// x / (d + eps): an additive constant is the epsilon idiom.
		if sum, ok := den.(*ast.BinaryExpr); ok && (sum.Op == token.ADD || sum.Op == token.SUB) {
			if p.isConst(sum.X) || p.isConst(sum.Y) {
				return true
			}
		}
		switch den.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			return true // call results etc.: not trackable, stay silent
		}
		body := enclosingFuncBody(stack)
		if body == nil {
			return true
		}
		keys := map[string]bool{
			types.ExprString(den):   true,
			types.ExprString(bin.Y): true,
		}
		if p.denominatorGuarded(body, keys) {
			return true
		}
		out = append(out, p.finding(d, SevWarn, bin,
			"division by %s, a computed float with no zero/NaN guard in this function; "+
				"guard it, add an epsilon, or //lint:ignore divguard with the invariant",
			types.ExprString(den)))
		return true
	})
	return out
}

// stripDenominator unwraps parentheses, numeric conversions and math.Abs
// down to the quantity whose zeroness matters.
func (p *Package) stripDenominator(e ast.Expr) ast.Expr {
	for {
		e = unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
			e = call.Args[0] // float64(n), float32(n), ...
			continue
		}
		if fn := p.calleeFunc(call); fn != nil && pkgPath(fn) == "math" && fn.Name() == "Abs" {
			e = call.Args[0]
			continue
		}
		return e
	}
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// denominatorGuarded reports whether any comparison or non-finiteness
// test over one of keys appears in body.
func (p *Package) denominatorGuarded(body *ast.BlockStmt, keys map[string]bool) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch v := n.(type) {
		case *ast.BinaryExpr:
			switch v.Op {
			case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
				if keys[types.ExprString(v.X)] || keys[types.ExprString(v.Y)] {
					guarded = true
					return false
				}
			}
		case *ast.CallExpr:
			fn := p.calleeFunc(v)
			if fn == nil || pkgPath(fn) != "math" {
				return true
			}
			switch fn.Name() {
			case "IsNaN", "IsInf", "Signbit":
				for _, arg := range v.Args {
					if keys[types.ExprString(arg)] {
						guarded = true
						return false
					}
				}
			}
		}
		return true
	})
	return guarded
}
