// bce.go is the second compiler-truth gate: bounds-check elimination.
// It compiles every package declaring a //lint:hotpath function with
// -gcflags=-d=ssa/check_bce and fails any "Found IsInBounds" /
// "Found IsSliceInBounds" diagnostic positioned inside a hot-path
// function body. A packed-GEMM micro-kernel or CG inner step that
// passes this gate provably executes no per-element bounds branches —
// the portable analogue of the paper's hand-scheduled QPX inner loops,
// where a branch in the kernel would stall the dual-issue pipeline.
//
// Checks the optimizer genuinely cannot remove (slicing a panel out of
// a shared buffer at a computed offset, for example) are suppressed in
// place with `//lint:ignore bce <reason>`; the contract is that every
// suppression sits on a per-panel or per-call operation, never inside a
// per-element loop.
package escape

import (
	"fmt"
	"strings"

	"repro/internal/lint"
)

// BCEName is the identifier the bounds-check gate reports under and the
// key for //lint:ignore directives and repolint -only.
const BCEName = "bce"

// BCEDoc describes the gate for repolint -list.
const BCEDoc = "compiler-reported bounds check (go build -gcflags=-d=ssa/check_bce) inside a " +
	"//lint:hotpath function; hot kernels must be bounds-check-free in compiler truth"

// bceSpec is the bounds-check gate's configuration.
var bceSpec = gateSpec{
	name:   BCEName,
	gcflag: "-gcflags=-d=ssa/check_bce",
	keep: func(msg string) bool {
		return strings.Contains(msg, "Found IsInBounds") || strings.Contains(msg, "Found IsSliceInBounds")
	},
	render: func(msg string, hot *hotRange) string {
		return fmt.Sprintf("compiler reports %q inside //lint:hotpath %s; "+
			"hot kernels must be bounds-check-free (hoist the proof the optimizer "+
			"needs, or //lint:ignore bce with justification)", msg, hot.name)
	},
}

// AnalyzeBCE scans the whole module for //lint:hotpath functions and
// runs the bounds-check gate over the packages declaring them.
func AnalyzeBCE(root string) ([]lint.Finding, error) {
	dirs, err := hotDirs(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeBCEDirs(root, dirs)
}

// AnalyzeBCEDirs runs the bounds-check gate over the given package
// directories (relative to root); fixture tests use this to reach
// packages under testdata.
func AnalyzeBCEDirs(root string, dirs []string) ([]lint.Finding, error) {
	return analyzeDirs(root, dirs, bceSpec)
}
