package escape

import (
	"fmt"
	"testing"

	"repro/internal/lint"
)

// TestBCEFixtureGate is the golden-position test for the bounds-check
// gate: the checked hot function gates at the exact diagnostic
// positions, the clean one and the cold one stay silent, and
// //lint:ignore bce suppresses.
func TestBCEFixtureGate(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := AnalyzeBCEDirs(root, []string{"internal/lint/escape/testdata/bcefix"})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		if f.Analyzer != BCEName || f.Severity != lint.SevError {
			t.Errorf("finding metadata = %s/%s, want bce/error", f.Analyzer, f.Severity)
		}
		got = append(got, fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col))
	}
	want := []string{"internal/lint/escape/testdata/bcefix/bcefix.go:13:11"}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("findings = %v, want %v", got, want)
		}
	}
}

// TestBCEModuleGateClean is the tree-level acceptance bar: every
// //lint:hotpath function in the repo must compile without a surviving
// bounds check.
func TestBCEModuleGateClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := AnalyzeBCE(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("hot path not bounds-check-free: %s", f)
	}
}
