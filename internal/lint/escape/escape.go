// Package escape holds the compiler-truth gates for //lint:hotpath
// functions. Where the heuristic hotpathalloc analyzer pattern-matches
// source shapes that usually allocate, these gates ask the real
// compiler. The escape gate runs `go build -gcflags=-m=2` over every
// package declaring a hot-path function, parses the escape-analysis
// diagnostics, and reports ANY compiler-reported heap escape ("escapes
// to heap" / "moved to heap") positioned inside a hot-path function
// body. A hot-path kernel with zero reported escapes is genuinely
// allocation-free for its locals — no heuristic can promise that, and
// no heuristic exemption can hide a real escape. The bce gate (bce.go)
// reuses the same machinery with -gcflags=-d=ssa/check_bce to fail any
// bounds check the optimizer could not eliminate from a hot kernel.
//
// The gates honor the same suppression contract as the analyzers: a
// `//lint:ignore escape <reason>` (or `//lint:ignore bce <reason>`)
// comment on the diagnostic's line or the line above silences it.
// Suppressions should be rare — the whole point of compiler truth is
// that "looks fine" doesn't override the optimizer.
//
// Findings reuse lint.Finding so cmd/repolint renders them uniformly;
// every finding is an error.
package escape

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

// Name is the identifier the gate reports under and the key for
// //lint:ignore directives and repolint -only.
const Name = "escape"

// Doc describes the gate for repolint -list.
const Doc = "compiler-reported heap escape (go build -gcflags=-m=2) inside a " +
	"//lint:hotpath function; hot kernels must be allocation-free in compiler truth"

// hotRange is one //lint:hotpath function body: the file (slash-
// separated, relative to the module root) and its line span.
type hotRange struct {
	file       string
	name       string
	start, end int
}

// gateSpec parameterizes one compiler-truth gate: the analyzer name it
// reports under (also the //lint:ignore key), the -gcflags value whose
// diagnostics it reads, which diagnostic messages belong to it, and how
// a surviving diagnostic renders as a finding message.
type gateSpec struct {
	name   string
	gcflag string
	keep   func(msg string) bool
	render func(msg string, hot *hotRange) string
}

// escapeSpec is the heap-escape gate's configuration.
var escapeSpec = gateSpec{
	name:   Name,
	gcflag: "-gcflags=-m=2",
	keep: func(msg string) bool {
		return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
	},
	render: func(msg string, hot *hotRange) string {
		return fmt.Sprintf("compiler reports %q inside //lint:hotpath %s; "+
			"hot kernels must have zero heap escapes", msg, hot.name)
	},
}

// Analyze scans the whole module for //lint:hotpath functions and gates
// the packages declaring them. A module with no hot-path functions
// passes trivially (and runs no compiler).
func Analyze(root string) ([]lint.Finding, error) {
	dirs, err := hotDirs(root)
	if err != nil {
		return nil, err
	}
	return AnalyzeDirs(root, dirs)
}

// AnalyzeDirs gates the given package directories (relative to root).
// Fixture tests use this to reach packages under testdata, which the
// module walk deliberately skips.
func AnalyzeDirs(root string, dirs []string) ([]lint.Finding, error) {
	return analyzeDirs(root, dirs, escapeSpec)
}

// analyzeDirs is the shared gate driver: collect hot ranges and
// suppressions, compile for diagnostics, intersect, sort.
func analyzeDirs(root string, dirs []string, spec gateSpec) ([]lint.Finding, error) {
	if len(dirs) == 0 {
		return nil, nil
	}
	ranges, ignored, err := scanDirs(root, dirs, spec.name)
	if err != nil {
		return nil, err
	}
	if len(ranges) == 0 {
		return nil, nil
	}
	diags, err := compileDiagnostics(root, dirs, spec)
	if err != nil {
		return nil, err
	}
	findings := match(diags, ranges, ignored, spec)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return findings, nil
}

// hotDirs walks the module for package directories declaring at least
// one //lint:hotpath function, using the same skip rules as the lint
// loader (testdata, vendor, hidden and underscore directories).
func hotDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			name := info.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		hot, err := fileHasHotPath(path)
		if err != nil {
			return err
		}
		if hot {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			rel = filepath.ToSlash(rel)
			if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
				dirs = append(dirs, rel)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// filepath.Walk is ordered, but a package's files may interleave with
	// subdirectory visits; dedupe defensively.
	sort.Strings(dirs)
	dirs = dedupeStrings(dirs)
	return dirs, nil
}

// fileHasHotPath reports whether the file declares a //lint:hotpath
// function, with a cheap textual pre-filter before parsing.
func fileHasHotPath(path string) (bool, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	return strings.Contains(string(src), "//lint:hotpath"), nil
}

// scanDirs parses every non-test file of the given package directories,
// collecting hot-path function line ranges and the lines covered by
// //lint:ignore <gateName> directives (keyed by relative file path).
func scanDirs(root string, dirs []string, gateName string) ([]hotRange, map[string]map[int]bool, error) {
	fset := token.NewFileSet()
	var ranges []hotRange
	ignored := map[string]map[int]bool{}
	for _, dir := range dirs {
		abs := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(abs, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("escape: parse %s: %w", path, err)
			}
			rel := dir + "/" + name
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasHotPathDoc(fd) {
					continue
				}
				ranges = append(ranges, hotRange{
					file:  rel,
					name:  fd.Name.Name,
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
				})
			}
			for line := range ignoreLines(fset, f, gateName) {
				if ignored[rel] == nil {
					ignored[rel] = map[int]bool{}
				}
				ignored[rel][line] = true
			}
		}
	}
	return ranges, ignored, nil
}

// hasHotPathDoc reports whether fd's doc comment carries //lint:hotpath
// (same contract as the lint engine's directive).
func hasHotPathDoc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "lint:hotpath") {
			return true
		}
	}
	return false
}

// ignoreLines collects the lines suppressed for the named gate by
// //lint:ignore <gateName> directives (the directive line and the line
// below, matching the analyzers' contract).
func ignoreLines(fset *token.FileSet, f *ast.File, gateName string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
			if len(fields) == 0 {
				continue
			}
			for _, name := range strings.Split(fields[0], ",") {
				if name == gateName {
					line := fset.Position(c.Pos()).Line
					lines[line] = true
					lines[line+1] = true
				}
			}
		}
	}
	return lines
}

// diagnostic is one parsed compiler escape report.
type diagnostic struct {
	file      string // slash-separated, relative to the module root
	line, col int
	msg       string
}

// diagRe matches `path.go:line:col: message` at the start of a line;
// -m=2's indented flow/annotation lines fail the anchor and are
// dropped.
var diagRe = regexp.MustCompile(`^([^\s:][^:]*\.go):(\d+):(\d+): (.+)$`)

// compileDiagnostics runs the compiler with the gate's -gcflags over
// the packages and returns the deduplicated diagnostics the gate keeps.
// The Go build cache replays diagnostics on cache hits, so repeated
// gate runs stay cheap without forcing -a rebuilds.
func compileDiagnostics(root string, dirs []string, spec gateSpec) ([]diagnostic, error) {
	args := []string{"build", spec.gcflag}
	for _, d := range dirs {
		args = append(args, "./"+d)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		// A package that does not compile cannot be gated; surface the
		// compiler's own message.
		return nil, fmt.Errorf("%s: go %s: %v\n%s", spec.name, strings.Join(args, " "), err, out)
	}
	var diags []diagnostic
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(strings.TrimSpace(m[4]), ":")
		if !spec.keep(msg) {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		file := filepath.ToSlash(m[1])
		// -m=2 prints most escapes twice (with and without a trailing
		// elaboration colon); key on position+message after trimming.
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		diags = append(diags, diagnostic{file: file, line: ln, col: col, msg: msg})
	}
	return diags, nil
}

// match intersects diagnostics with hot-path function ranges, dropping
// suppressed lines, and renders the survivors as findings.
func match(diags []diagnostic, ranges []hotRange, ignored map[string]map[int]bool, spec gateSpec) []lint.Finding {
	var out []lint.Finding
	for _, d := range diags {
		var hot *hotRange
		for i := range ranges {
			r := &ranges[i]
			if r.file == d.file && d.line >= r.start && d.line <= r.end {
				hot = r
				break
			}
		}
		if hot == nil {
			continue
		}
		if ignored[d.file][d.line] {
			continue
		}
		out = append(out, lint.Finding{
			Analyzer: spec.name,
			Severity: lint.SevError,
			Message:  spec.render(d.msg, hot),
			File:     d.file,
			Line:     d.line,
			Col:      d.col,
		})
	}
	return out
}

func dedupeStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
