package escape

import (
	"fmt"
	"testing"

	"repro/internal/lint"
)

// TestFixtureGate is the golden-position test for the compiler-truth
// gate: the leaky hot function gates at the exact diagnostic position,
// the clean one and the cold one stay silent, and //lint:ignore escape
// suppresses.
func TestFixtureGate(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := AnalyzeDirs(root, []string{"internal/lint/escape/testdata/escapefix"})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		if f.Analyzer != Name || f.Severity != lint.SevError {
			t.Errorf("finding metadata = %s/%s, want escape/error", f.Analyzer, f.Severity)
		}
		got = append(got, fmt.Sprintf("%s:%d:%d", f.File, f.Line, f.Col))
	}
	want := []string{"internal/lint/escape/testdata/escapefix/escapefix.go:17:29"}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("findings = %v, want %v", got, want)
		}
	}
}

// TestModuleGateClean is the tree-level acceptance bar: every
// //lint:hotpath function in the repo must show zero compiler-reported
// heap escapes.
func TestModuleGateClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("hot path not escape-free: %s", f)
	}
}

// TestHotDirsFindsKernels pins the module scan: the BLAS and HF
// packages both declare hot-path functions and must be gated.
func TestHotDirsFindsKernels(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := hotDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"internal/blas": false, "internal/hf": false}
	for _, d := range dirs {
		if _, ok := want[d]; ok {
			want[d] = true
		}
	}
	for d, seen := range want {
		if !seen {
			t.Errorf("module scan missed hot-path package %s (got %v)", d, dirs)
		}
	}
}
