// Package bcefix is the golden fixture for the bce gate: one hot-path
// function with a bounds check the optimizer cannot eliminate, one
// genuinely check-free, one with a suppressed check, and one checked
// function that is not marked hot (and must not gate).
package bcefix

// HotChecked indexes with a caller-supplied position: the compiler
// cannot prove i < len(xs), so an IsInBounds survives and the gate must
// report it.
//
//lint:hotpath
func HotChecked(xs []float64, i int) float64 {
	return xs[i]
}

// HotClean indexes only through the range variable: every access is
// provably in bounds.
//
//lint:hotpath
func HotClean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// HotSuppressed keeps a deliberate data-dependent lookup; the check is
// acknowledged in place and must not gate.
//
//lint:hotpath
func HotSuppressed(xs []float64, i int) float64 {
	//lint:ignore bce fixture: the table lookup is data-dependent by design
	return xs[i%len(xs)]
}

// ColdChecked indexes freely; without the hotpath directive it is none
// of the gate's business.
func ColdChecked(xs []float64, i int) float64 {
	return xs[i]
}
