// Package escapefix is the golden fixture for the escape gate: one
// hot-path function with a compiler-visible heap escape, one genuinely
// escape-free, one with a suppressed escape, and one escaping function
// that is not marked hot (and must not gate).
package escapefix

import "fmt"

// Sink receives escaping pointers so the compiler cannot elide them.
var Sink any

// HotLeaky formats its argument: the fmt.Sprintf argument pack and the
// result string both escape, which the gate must report.
//
//lint:hotpath
func HotLeaky(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// HotClean folds a slice in place: nothing escapes.
//
//lint:hotpath
func HotClean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// HotSuppressed allocates a box deliberately; the escape is
// acknowledged in place and must not gate.
//
//lint:hotpath
func HotSuppressed(n int) *int {
	//lint:ignore escape fixture: the one-off allocation is the point
	box := new(int)
	*box = n
	return box
}

// ColdLeaky escapes freely; without the hotpath directive it is none of
// the gate's business.
func ColdLeaky(n int) *int {
	return &n
}
