package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands outside test
// files. The HF optimizer's convergence logic (CG residual tests, ρ-based
// damping updates, line-search accept conditions) must use orderings,
// tolerances or bit-exact comparisons: a float equality that "works" on
// one rank count can flip on another because reduction trees reassociate
// rounding, which is exactly the nondeterminism the paper's
// bitwise-consistent design eliminates.
//
// Exemptions: comparisons where both operands are compile-time constants,
// and self-comparison (x != x), the portable NaN test. Intentional exact
// sentinels (e.g. the BLAS alpha==0 fast path) must carry a
// //lint:ignore floateq directive with a reason.
type FloatEq struct{}

// Name implements Analyzer.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (FloatEq) Doc() string {
	return "== or != on float32/float64 operands; use an ordering, a tolerance, " +
		"math.Float32bits for bit-exact identity, or //lint:ignore with a reason"
}

// Run implements Analyzer.
func (f FloatEq) Run(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(bin.X) && !p.isFloat(bin.Y) {
				return true
			}
			// Two constants fold at compile time; nothing can reassociate.
			if p.isConst(bin.X) && p.isConst(bin.Y) {
				return true
			}
			// x != x is the NaN idiom; x == x its negation.
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true
			}
			out = append(out, p.finding(f, SevWarn, bin,
				"floating-point %s comparison (%s %s %s); equality is not stable across reduction orders",
				bin.Op, types.ExprString(bin.X), bin.Op, types.ExprString(bin.Y)))
			return true
		})
	}
	return out
}

// isFloat reports whether e has floating-point type (including untyped
// float constants).
func (p *Package) isFloat(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether e is a compile-time constant.
func (p *Package) isConst(e ast.Expr) bool {
	return p.Info.Types[e].Value != nil
}
