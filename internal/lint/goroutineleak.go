package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak flags `go` statements that spawn a goroutine with no
// reachable shutdown path. PR 6 filled the tree with long-lived
// goroutines (telemetry shipper, monitoring HTTP server, watchdogs); a
// fire-and-forget goroutine that outlives its owner holds its
// closed-over buffers forever, keeps draining CPU in tests, and — on
// the elastic runtime's eviction path — can resurrect a "dead" rank's
// traffic mid-rewind. Every spawned goroutine must therefore be
// joinable or signal-terminated.
//
// The analyzer resolves the spawned body (function literal, or a named
// function/method declared in the same package) and classifies it as
// unbounded when it contains a condition-less `for` loop, a
// `for range` over a channel, or a call into net/http's serve loops
// (Server.Serve, ListenAndServe, ...). An unbounded goroutine is
// accepted only when it has one of the sanctioned shutdown paths:
//
//   - a `return` or `break` inside the unbounded loop (self-terminating
//     on error, like the TCP fabric's readLoop);
//   - a channel receive or `select` inside the loop (done-channel or
//     context.Done threading);
//   - a (*sync.WaitGroup).Done call in the body (joined by the owner);
//   - for range-over-channel loops, a close of that channel in the
//     spawning function (the BLAS worker-pool shape);
//   - for serve-loop calls, a completion signal after the call — a
//     channel send, a close, or a WaitGroup Done — so the owner can
//     join the goroutine after shutting the server down.
//
// Bounded goroutines (no loop, no serve call) terminate by themselves
// and are never flagged.
type GoroutineLeak struct{}

// Name implements Analyzer.
func (GoroutineLeak) Name() string { return "goroutineleak" }

// Doc implements Analyzer.
func (GoroutineLeak) Doc() string {
	return "go statement with no reachable shutdown path (no done-channel/select, " +
		"WaitGroup, loop exit, or post-serve completion signal); the goroutine leaks"
}

// Run implements Analyzer.
func (g GoroutineLeak) Run(p *Package) []Finding {
	decls := p.funcDecls()
	var out []Finding
	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		body := spawnedBody(p, gs, decls)
		if body == nil {
			return true // external callee: body invisible, assume managed
		}
		encl := enclosingFuncBody(stack)
		if why := g.leak(p, body, encl); why != "" {
			out = append(out, p.finding(g, SevWarn, gs, "goroutine %s", why))
		}
		return true
	})
	return out
}

// funcDecls indexes the package's named function bodies by object, so a
// `go f()` statement can be audited through the declaration of f.
func (p *Package) funcDecls() map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// spawnedBody resolves the body the go statement starts executing: a
// function literal inline, or a same-package named function or method.
func spawnedBody(p *Package, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := p.calleeFunc(gs.Call); fn != nil {
		if fd, ok := decls[fn]; ok {
			return fd.Body
		}
	}
	return nil
}

// leak classifies body; a non-empty return value describes the leak.
func (g GoroutineLeak) leak(p *Package, body *ast.BlockStmt, encl *ast.BlockStmt) string {
	joined := hasWaitGroupDone(p, body)
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch loop := n.(type) {
		case *ast.FuncLit:
			return false // nested goroutines/closures audited at their own go statements
		case *ast.ForStmt:
			if loop.Cond != nil {
				return true // bounded by its condition
			}
			if !loopHasExit(loop.Body) {
				why = "loops forever with no return, break, receive or select inside the loop"
			}
			return true
		case *ast.RangeStmt:
			if !p.isChanType(loop.X) {
				return true
			}
			if joined || loopHasExit(loop.Body) || channelClosedIn(p, encl, loop.X) {
				return true
			}
			why = "ranges over a channel that is never closed in the spawning function, " +
				"with no WaitGroup or loop exit"
			return true
		case *ast.CallExpr:
			if !isServeCall(p, loop) {
				return true
			}
			if joined || hasCompletionSignal(body) {
				return true
			}
			why = "blocks in an http serve loop with no completion signal; " +
				"close a done channel after the serve call so the owner can join"
			return true
		}
		return true
	})
	return why
}

// loopHasExit reports whether a loop body contains a lexical exit or
// wake-up signal: return, break, a channel receive, or a select.
func loopHasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch b := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if b.Tok.String() == "break" {
				found = true
			}
		case *ast.ReturnStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if isRecvExpr(b) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasWaitGroupDone reports whether body calls (*sync.WaitGroup).Done.
func hasWaitGroupDone(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := p.calleeFunc(call); fn != nil && fn.Name() == "Done" && pkgPath(fn) == "sync" {
			found = true
		}
		return !found
	})
	return found
}

// channelClosedIn reports whether the enclosing function closes the
// channel expression ch (by root identifier) anywhere — the worker-pool
// contract where the spawner closes the work channel to stop the pool.
func channelClosedIn(p *Package, encl *ast.BlockStmt, ch ast.Expr) bool {
	if encl == nil {
		return false
	}
	chRoot := rootIdent(ch)
	if chRoot == nil {
		return false
	}
	chObj := p.objOf(chRoot)
	if chObj == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !p.isBuiltin(call, "close") || len(call.Args) != 1 {
			return true
		}
		if id := rootIdent(call.Args[0]); id != nil && p.objOf(id) == chObj {
			found = true
		}
		return !found
	})
	return found
}

// isServeCall reports whether call enters one of net/http's accept
// loops, which block until the server is shut down from outside.
func isServeCall(p *Package, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || pkgPath(fn) != "net/http" {
		return false
	}
	switch fn.Name() {
	case "Serve", "ServeTLS", "ListenAndServe", "ListenAndServeTLS":
		return true
	}
	return false
}

// hasCompletionSignal reports whether body contains a statement that
// lets the owner observe termination: a channel send or a close call.
// (WaitGroup.Done is checked separately by the caller.)
func hasCompletionSignal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := unparen(s.Fun).(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
		}
		return !found
	})
	return found
}
