package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc audits functions annotated with //lint:hotpath — the BLAS
// micro-kernels and the CG inner step, the code the paper hand-tunes for
// the BG/Q FPU — for three cheap-looking constructs that are anything but
// on a hot path: fmt formatting (reflection plus allocation per call),
// time.Now (a clock read per invocation, the overhead PR 1's disabled-obs
// benchmark exists to exclude), and implicit interface boxing of
// arguments (one heap allocation per boxed value).
//
// Calls inside a panic(...) argument are exempt: a panicking kernel is
// off the hot path by definition, so guard-clause messages may format.
type HotPathAlloc struct{}

// Name implements Analyzer.
func (HotPathAlloc) Name() string { return "hotpathalloc" }

// Doc implements Analyzer.
func (HotPathAlloc) Doc() string {
	return "fmt call, time.Now or interface boxing inside a //lint:hotpath function; " +
		"these allocate or stall on every kernel invocation"
}

// Run implements Analyzer.
func (h HotPathAlloc) Run(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if p.isBuiltin(call, "panic") {
					return false // guard clauses may format their message
				}
				out = append(out, h.checkCall(p, fn, call)...)
				return true
			})
		}
	}
	return out
}

// checkCall reports hot-path violations of a single call expression.
func (h HotPathAlloc) checkCall(p *Package, fn *ast.FuncDecl, call *ast.CallExpr) []Finding {
	var out []Finding
	if callee := p.calleeFunc(call); callee != nil {
		switch pp := pkgPath(callee); {
		case pp == "fmt":
			out = append(out, p.finding(h, SevWarn, call,
				"fmt.%s in hot path %s allocates and reflects on every call", callee.Name(), fn.Name.Name))
		case pp == "time" && callee.Name() == "Now":
			out = append(out, p.finding(h, SevWarn, call,
				"time.Now in hot path %s reads the clock on every call; hoist it out of the kernel", fn.Name.Name))
		}
	}
	// Implicit interface boxing: a concrete argument passed where the
	// callee expects an interface heap-allocates the box.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return out // builtin or conversion
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface-to-interface is a pointer copy, not a box
		}
		out = append(out, p.finding(h, SevWarn, arg,
			"argument %s boxes %s into %s in hot path %s (one allocation per call)",
			types.ExprString(arg), at, pt, fn.Name.Name))
	}
	return out
}

// paramType returns the static parameter type matched by argument i,
// unrolling variadic parameters; nil when i is out of range or the call
// forwards a slice with ... (no boxing happens then).
func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		if i < n-1 {
			return params.At(i).Type()
		}
		if ellipsis {
			return nil // s... forwards the slice as-is
		}
		slice, ok := params.At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// isBuiltin reports whether call invokes the named builtin function.
func (p *Package) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
