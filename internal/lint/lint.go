// Package lint is a repo-specific static-analysis engine built entirely
// on the standard library's go/parser, go/ast and go/types. It exists
// because the trainer's correctness rests on invariants that generic
// linters do not know about: every mpi.Comm collective participates in a
// bitwise-deterministic reduction (a dropped error desynchronizes the
// ranks), float equality silently breaks HF convergence checks, and the
// observability layer's nil-safety contract must be entered through its
// accessor methods, not raw field access.
//
// The engine loads the module from source (no go.mod dependencies, no
// export data), type-checks it with go/types, and runs a set of
// Analyzers over each package. Findings carry file:line:col positions
// relative to the module root so output is stable across machines, and
// the cmd/repolint CLI renders them as text or machine-readable JSON.
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or the line above it silences those analyzers
// for that line. A reason is required by convention; the directive is
// how intentional exceptions (e.g. the BLAS alpha==0 fast-path sentinel)
// are recorded in place.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Severity classifies a finding. Errors are invariant violations that
// can corrupt a run; warnings are hazards that need a justification.
type Severity string

const (
	// SevWarn marks hazards that are sometimes legitimate (and then must
	// carry a //lint:ignore justification).
	SevWarn Severity = "warn"
	// SevError marks violations that are never legitimate in this repo.
	SevError Severity = "error"
)

// Finding is one analyzer report, positioned at a source location. File
// is slash-separated and relative to the load root, so JSON output is
// byte-stable across checkouts.
type Finding struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one repo-specific check run over a type-checked package.
type Analyzer interface {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-paragraph description of what the analyzer enforces
	// and why it matters for the HF trainer.
	Doc() string
	// Run inspects one package and returns its findings (unsuppressed
	// filtering is the runner's job).
	Run(p *Package) []Finding
}

// Analyzers returns the full repo suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		UncheckedErr{},
		FloatEq{},
		LocksByValue{},
		HotPathAlloc{},
		ObsNilGuard{},
		CommCheck{},
		OpProto{},
		SendRecvPair{},
		MapOrderFloat{},
		ReduceOrder{},
		RngSource{},
		DivGuard{},
		DeprecatedAPI{},
		GoroutineLeak{},
		LockAcrossBlock{},
		DeferInLoop{},
		TickerStop{},
	}
}

// ModuleAnalyzer is a check that needs the whole module at once rather
// than one package at a time — e.g. tagspace, which pairs point-to-point
// sends in one package against receives in another. Module analyzers run
// after the per-package wave, over every loaded package together.
type ModuleAnalyzer interface {
	// Name is the analyzer's identifier, used in output and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc() string
	// RunModule inspects all packages of one load and returns findings.
	RunModule(pkgs []*Package) []Finding
}

// ModuleAnalyzers returns the module-scoped suite in stable order.
func ModuleAnalyzers() []ModuleAnalyzer {
	return []ModuleAnalyzer{
		Shape{},
		TagSpace{},
	}
}

// finding is the helper analyzers use to build a Finding at a node. It
// accepts anything with a Name() — both Analyzer and ModuleAnalyzer.
func (p *Package) finding(a interface{ Name() string }, sev Severity, node ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(node.Pos())
	file := pos.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return Finding{
		Analyzer: a.Name(),
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
		File:     filepath.ToSlash(file),
		Line:     pos.Line,
		Col:      pos.Column,
	}
}

// ignoreDirectives maps analyzer name → set of suppressed lines for one
// file, built from //lint:ignore comments.
type ignoreDirectives map[string]map[int]bool

// parseIgnores collects //lint:ignore directives from a file. Each
// directive suppresses the named analyzers on its own line and the line
// directly below it (covering both trailing and preceding placement).
func parseIgnores(fset *token.FileSet, f *ast.File) ignoreDirectives {
	dirs := ignoreDirectives{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:ignore") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, name := range strings.Split(fields[0], ",") {
				if dirs[name] == nil {
					dirs[name] = map[int]bool{}
				}
				dirs[name][line] = true
				dirs[name][line+1] = true
			}
		}
	}
	return dirs
}

// hotPathDirective marks functions whose bodies must stay allocation- and
// formatting-free (the BLAS micro-kernels and the CG inner step).
const hotPathDirective = "lint:hotpath"

// isHotPath reports whether fn's doc comment carries //lint:hotpath.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotPathDirective) {
			return true
		}
	}
	return false
}

// Result is a full engine run: every loaded package's findings, sorted
// by position, plus non-fatal load diagnostics.
type Result struct {
	Findings []Finding
	// Packages holds every package analyzed, in import-path order.
	Packages []*Package
	// LoadWarnings records packages or imports the loader could not
	// fully resolve; analysis proceeded with partial type information.
	LoadWarnings []string
	// Timings accumulates each analyzer's total Run time across all
	// packages, keyed by analyzer name (repolint -v reports it).
	Timings map[string]time.Duration
}

// Run loads the module rooted at root and applies the analyzers to every
// package in it.
func Run(root string, analyzers []Analyzer) (*Result, error) {
	return RunFull(root, analyzers, nil)
}

// RunFull is Run plus a module-analyzer pass over all loaded packages.
func RunFull(root string, analyzers []Analyzer, mods []ModuleAnalyzer) (*Result, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	return analyze(l, pkgs, analyzers, mods), nil
}

// RunDir loads the module rooted at root for import resolution, then
// analyzes only the single package in dir (used by the golden-file
// fixture tests, whose packages live under testdata and are invisible to
// the normal module walk).
func RunDir(root, dir string, analyzers []Analyzer) (*Result, error) {
	return RunDirs(root, []string{dir}, analyzers)
}

// RunDirs is RunDir for several fixture packages sharing one loader (and
// therefore one pass over the standard library's sources).
func RunDirs(root string, dirs []string, analyzers []Analyzer) (*Result, error) {
	return RunDirsFull(root, dirs, analyzers, nil)
}

// RunDirsFull is RunDirs plus a module-analyzer pass over the fixture
// packages loaded together (module analyzers treat the set as one
// module, so fixtures exercising cross-package pairing load in one call
// and unrelated fixtures load in separate calls).
func RunDirsFull(root string, dirs []string, analyzers []Analyzer, mods []ModuleAnalyzer) (*Result, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(abs, "fixture/"+filepath.Base(abs))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return analyze(l, pkgs, analyzers, mods), nil
}

// analyze fans the analyzers out over the packages — one goroutine per
// package, bounded by GOMAXPROCS — applies //lint:ignore suppression,
// and returns findings in deterministic order: analysis is read-only on
// type-checked packages and analyzers are stateless value types, so the
// only shared state is the result set, and the final sort erases
// scheduling order.
func analyze(l *Loader, pkgs []*Package, analyzers []Analyzer, mods []ModuleAnalyzer) *Result {
	res := &Result{Packages: pkgs, LoadWarnings: l.Warnings(), Timings: map[string]time.Duration{}}
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	)
	for _, p := range pkgs {
		wg.Add(1)
		go func(p *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ignores := make([]ignoreDirectives, len(p.Files))
			for i, f := range p.Files {
				ignores[i] = parseIgnores(p.Fset, f)
			}
			for _, a := range analyzers {
				start := time.Now()
				found := a.Run(p)
				elapsed := time.Since(start)
				mu.Lock()
				res.Timings[a.Name()] += elapsed
				for _, f := range found {
					if !suppressed(p, ignores, f) {
						res.Findings = append(res.Findings, f)
					}
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	// Module analyzers see every package of the load at once; they run
	// after the per-package wave so their (cheap) serial phase overlaps
	// nothing. Suppression is looked up through the package owning the
	// finding's file.
	if len(mods) > 0 {
		pkgIgnores := make(map[*Package][]ignoreDirectives, len(pkgs))
		for _, p := range pkgs {
			igs := make([]ignoreDirectives, len(p.Files))
			for i, f := range p.Files {
				igs[i] = parseIgnores(p.Fset, f)
			}
			pkgIgnores[p] = igs
		}
		for _, ma := range mods {
			start := time.Now()
			found := ma.RunModule(pkgs)
			res.Timings[ma.Name()] += time.Since(start)
			for _, f := range found {
				drop := false
				for _, p := range pkgs {
					if suppressed(p, pkgIgnores[p], f) {
						drop = true
						break
					}
				}
				if !drop {
					res.Findings = append(res.Findings, f)
				}
			}
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return res
}

// suppressed reports whether an //lint:ignore directive covers f.
func suppressed(p *Package, ignores []ignoreDirectives, f Finding) bool {
	for i, file := range p.Files {
		name := p.Fset.Position(file.Pos()).Filename
		rel, err := filepath.Rel(p.root, name)
		if err != nil {
			rel = name
		}
		if filepath.ToSlash(rel) != f.File {
			continue
		}
		return ignores[i][f.Analyzer][f.Line]
	}
	return false
}

// --- shared type helpers used by multiple analyzers ---

// unparen strips any number of parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// calleeFunc resolves the function or method object a call invokes, or
// nil for conversions, builtins, and calls through function values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// pkgPath returns the declaring package path of obj ("" for builtins and
// universe-scope objects).
func pkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// inspectWithStack walks every file of p, calling fn with each node and
// the stack of its ancestors (outermost first, not including n itself).
// Returning false from fn prunes the subtree.
func (p *Package) inspectWithStack(fn func(n ast.Node, stack []ast.Node) bool) {
	for _, file := range p.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			ok := fn(n, stack)
			if ok {
				stack = append(stack, n)
			}
			return ok
		})
	}
}
