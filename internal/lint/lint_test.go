package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixtureDirs lists every golden fixture package under testdata/src. The
// clean package is the negative fixture: it exercises the code shapes
// each analyzer inspects in their sanctioned forms and must stay silent.
var fixtureDirs = []string{
	"uncheckederr",
	"floateq",
	"locksbyvalue",
	"hotpathalloc",
	"obsnilguard",
	"commcheck",
	"maporderfloat",
	"reduceorder",
	"rngsource",
	"divguard",
	"deprecatedapi",
	"goroutineleak",
	"lockacrossblock",
	"deferinloop",
	"tickerstop",
	"opproto",
	"sendrecvpair",
	"tagspace",
	"shape",
	"clean",
}

var (
	fixtureOnce sync.Once
	fixtureRes  *Result
	fixtureErr  error
)

// fixtureResult lints every fixture with one shared loader (loading the
// standard library from source dominates the cost, so the tests split a
// single pass).
func fixtureResult(t *testing.T) *Result {
	t.Helper()
	fixtureOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			fixtureErr = err
			return
		}
		dirs := make([]string, len(fixtureDirs))
		for i, d := range fixtureDirs {
			dirs[i] = filepath.Join(root, "internal/lint/testdata/src", d)
		}
		fixtureRes, fixtureErr = RunDirs(root, dirs, Analyzers())
	})
	if fixtureErr != nil {
		t.Fatalf("loading fixtures: %v", fixtureErr)
	}
	return fixtureRes
}

// TestFixtureFindings is the golden-position test: for each seeded-bad
// fixture it asserts the exact line:col and analyzer of every expected
// finding, and that nothing else fires in that file.
func TestFixtureFindings(t *testing.T) {
	res := fixtureResult(t)

	want := map[string][]string{
		"uncheckederr.go": {
			"14:2 uncheckederr error",
			"15:2 uncheckederr error",
			"16:2 uncheckederr error",
			"17:2 uncheckederr error",
		},
		"floateq.go": {
			"5:5 floateq warn",
			"8:5 floateq warn",
		},
		"locksbyvalue.go": {
			"19:9 locksbyvalue error",
			"26:7 locksbyvalue error",
			"28:9 locksbyvalue error",
			"31:10 locksbyvalue error",
			"32:9 locksbyvalue error",
			"36:9 locksbyvalue error",
		},
		"hotpathalloc.go": {
			"19:11 hotpathalloc warn",
			"19:22 hotpathalloc warn",
			"21:11 hotpathalloc warn",
			"23:6 hotpathalloc warn",
		},
		"obsnilguard.go": {
			"12:2 obsnilguard error",
			"13:6 obsnilguard error",
			"64:2 obsnilguard error",
			"78:6 obsnilguard error",
			"79:6 obsnilguard error",
			"80:6 obsnilguard error",
		},
		"commcheck.go": {
			"90:14 commcheck error",  // kind mismatch (reduce vs bcast)
			"94:14 commcheck error",  // root mismatch (1 vs 0)
			"98:14 commcheck error",  // dtype mismatch (f64 vs f32)
			"102:14 commcheck error", // length mismatch (2 vs 3)
			"105:3 commcheck error",  // sequence-length mismatch (2 collectives vs 1)
			"112:3 commcheck error",  // orphan arm (no master sender)
			"125:10 commcheck warn",  // collective under Rank() conditional
			"129:13 commcheck warn",  // collective under rank-derived conditional
		},
		"maporderfloat.go": {
			"10:3 maporderfloat error", // float accumulation in map order
			"24:3 maporderfloat error", // float-carrying slice built in map order
			"38:3 maporderfloat error", // accumulation through a local helper
		},
		"reduceorder.go": {
			"10:3 reduceorder error", // total += <-ch in a counted loop
			"19:3 reduceorder error", // range-over-channel fold
			"35:3 reduceorder error", // fold of a received struct's field
		},
		"rngsource.go": {
			"13:9 rngsource error",  // rand.Float64 (global source)
			"18:9 rngsource error",  // rand.Perm (global source)
			"23:2 rngsource error",  // rand.Seed (global reseed)
			"28:33 rngsource error", // time-derived seed
		},
		"divguard.go": {
			"15:9 divguard warn", // sum / n, both accumulated
			"21:9 divguard warn", // rho shape: actual / predicted
			"27:9 divguard warn", // indexed preconditioner entry
			"32:9 divguard warn", // denominator under math.Abs
		},
		"deprecatedapi.go": {
			"15:6 deprecatedapi error",  // func TrainDistributedHF re-declaration
			"24:6 deprecatedapi error",  // func RunWorker re-declaration
			"30:12 deprecatedapi error", // call to TrainDistributedHF
			"33:9 deprecatedapi error",  // call to RunWorker
		},
		"goroutineleak.go": {
			"16:2 goroutineleak warn", // for{} with no exit in a func literal
			"31:2 goroutineleak warn", // same loop through a named function
			"37:2 goroutineleak warn", // http serve loop with no completion signal
			"46:2 goroutineleak warn", // range over a never-closed channel
		},
		"lockacrossblock.go": {
			"22:2 lockacrossblock error",  // channel send under mu
			"29:12 lockacrossblock error", // channel receive under rw.RLock
			"38:9 lockacrossblock error",  // mpi Allreduce under deferred unlock
			"44:2 lockacrossblock error",  // no-default select under mu
			"57:12 lockacrossblock error", // net.Conn.Write under deferred unlock
		},
		"deferinloop.go": {
			"17:3 deferinloop warn", // defer f.Close() per loop iteration
			"27:3 deferinloop warn", // defer mu.Unlock() per loop iteration
		},
		"tickerstop.go": {
			"12:8 tickerstop error",  // NewTicker never stopped
			"26:8 tickerstop warn",   // NewTimer never stopped
			"37:8 tickerstop warn",   // AfterFunc never stopped
			"49:10 tickerstop error", // time.Tick (unstoppable by construction)
		},
		"opproto.go": {
			"37:12 opproto error", // opLost sent but dispatched nowhere
			"72:14 opproto error", // opShort replies 8 bytes against a 16-byte check
			"75:3 opproto error",  // opDead arm has no master sender
			"79:3 opproto error",  // opMute arm never sends the awaited reply
			"91:2 opproto error",  // opNoName missing from the name table
		},
		"sendrecvpair.go": {
			"36:14 sendrecvpair error", // blocking receive on tagGhost, sent nowhere
			"46:14 sendrecvpair error", // masterCross side of the recv-before-send deadlock
			"54:14 sendrecvpair error", // workerCross side of the recv-before-send deadlock
		},
		"tagspace.go":    nil, // module-scoped: asserted in TestTagSpaceFixture
		"shape.go":       nil, // module-scoped: asserted in TestShapeFixture
		"clean.go":       nil,
		"clean_comm.go":  nil,
		"clean_num.go":   nil,
		"clean_p2p.go":   nil,
		"clean_shape.go": nil,
	}

	got := map[string][]string{}
	for _, f := range res.Findings {
		base := filepath.Base(f.File)
		got[base] = append(got[base], fmt.Sprintf("%d:%d %s %s", f.Line, f.Col, f.Analyzer, f.Severity))
	}
	for base, wantList := range want {
		if gotList := got[base]; !equalStrings(gotList, wantList) {
			t.Errorf("%s findings:\ngot  %v\nwant %v", base, gotList, wantList)
		}
		delete(got, base)
	}
	for base, extra := range got {
		t.Errorf("unexpected findings in %s: %v", base, extra)
	}
}

// TestTagSpaceFixture runs the module-scoped tag-map analyzer over its
// own fixture (plus the clean package, so aggregation spans packages)
// and asserts golden positions. tagspace runs separately from the
// shared pass: module-wide orphan matching across unrelated fixture
// packages would be meaningless.
func TestTagSpaceFixture(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		filepath.Join(root, "internal/lint/testdata/src/tagspace"),
		filepath.Join(root, "internal/lint/testdata/src/clean"),
	}
	res, err := RunDirsFull(root, dirs, nil, ModuleAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"41:9 tagspace error",  // tagBeta collides with tagAlpha
		"53:12 tagspace error", // tagBlockB's block starts inside tagBlockA's
		"59:12 tagspace error", // static tagInside lands inside tagBlockA's block
		"73:12 tagspace error", // tagSent received nowhere
		"76:12 tagspace error", // tagHeard sent nowhere
	}
	var got []string
	for _, f := range res.Findings {
		if filepath.Base(f.File) != "tagspace.go" {
			t.Errorf("finding outside tagspace.go: %s", f)
			continue
		}
		got = append(got, fmt.Sprintf("%d:%d %s %s", f.Line, f.Col, f.Analyzer, f.Severity))
	}
	if !equalStrings(got, want) {
		t.Errorf("tagspace findings:\ngot  %v\nwant %v", got, want)
	}
	// The suppressed one-way tagQuiet (line 85) must not surface: the
	// //lint:ignore path for module analyzers.
	for _, f := range res.Findings {
		if f.Line >= 83 && f.Line <= 86 {
			t.Errorf("finding on suppressed tagQuiet send: %s", f)
		}
	}
}

// TestIgnoreDirectiveSuppresses pins the //lint:ignore contract: the
// floateq fixture carries a suppressed `a == 1` comparison on line 18
// that must not surface.
func TestIgnoreDirectiveSuppresses(t *testing.T) {
	res := fixtureResult(t)
	for _, f := range res.Findings {
		if filepath.Base(f.File) == "floateq.go" && f.Line == 18 {
			t.Errorf("finding on suppressed line: %s", f)
		}
	}
}

// TestFindingString pins the file:line:col rendering the Makefile and
// editors rely on.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "floateq", Severity: SevWarn, Message: "m", File: "a/b.go", Line: 3, Col: 7}
	if got, want := f.String(), "a/b.go:3:7: floateq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestAnalyzerMetadata checks the suite is well-formed: unique non-empty
// names (they key //lint:ignore directives) and documented behavior.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		name := a.Name()
		if name == "" || strings.ContainsAny(name, " ,") {
			t.Errorf("analyzer name %q must be non-empty and comma/space-free", name)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
		if a.Doc() == "" {
			t.Errorf("analyzer %s has no doc", name)
		}
	}
	for _, a := range ModuleAnalyzers() {
		name := a.Name()
		if name == "" || strings.ContainsAny(name, " ,") {
			t.Errorf("module analyzer name %q must be non-empty and comma/space-free", name)
		}
		if seen[name] {
			t.Errorf("duplicate analyzer name %q", name)
		}
		seen[name] = true
		if a.Doc() == "" {
			t.Errorf("module analyzer %s has no doc", name)
		}
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}

// TestFindModuleRoot checks root discovery walks up to go.mod.
func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(filepath.Dir(filepath.Dir(root))) == "" {
		t.Fatalf("implausible root %q", root)
	}
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot outside any module should fail")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
