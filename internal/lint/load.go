package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package of the module (or a test fixture):
// its syntax trees plus the go/types information the analyzers consume.
// Test files (_test.go) are excluded — repolint audits production code,
// and the floateq policy explicitly permits exact comparison in tests.
type Package struct {
	// ImportPath is the package's import path ("repro/internal/mpi"), or
	// a synthetic "fixture/..." path for testdata packages.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset positions all files of all packages loaded together.
	Fset *token.FileSet
	// Files are the parsed, constraint-selected non-test sources.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, object uses/defs and selections.
	Info *types.Info
	// TypeErrors collects type-checking diagnostics; analysis proceeds
	// with whatever information was recoverable.
	TypeErrors []error

	root string // load root for position relativization
}

// Loader type-checks the module from source. Imports inside the module
// are resolved by recursively loading their directories; standard-library
// imports go through the go/importer source importer, so no compiled
// export data or external tooling is needed.
type Loader struct {
	Fset *token.FileSet

	root    string // module root (directory containing go.mod)
	module  string // module path from go.mod
	std     types.Importer
	ctx     build.Context
	pkgs    map[string]*Package // memoized module packages by import path
	loading map[string]bool     // cycle guard
	warn    []string
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader prepares a loader for the module rooted at root (which must
// contain go.mod).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	// Cgo-variant files would need the cgo preprocessor; select the pure
	// Go file set instead, which is what this module ships anyway.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		ctx:     ctx,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Warnings returns non-fatal diagnostics accumulated while loading.
func (l *Loader) Warnings() []string { return l.warn }

// LoadModule walks the module tree and loads every buildable package,
// skipping testdata, vendor and hidden directories.
func (l *Loader) LoadModule() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := l.module
		if rel != "." {
			ip = l.module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(path, ip)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil // directory without Go files
			}
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, memoized per path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		root:       l.root,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	// Parse the package's files concurrently: token.FileSet and
	// parser.ParseFile are safe for concurrent use, and parsing is the
	// bulk of per-package load time once the stdlib is warm. Order is
	// preserved by index so positions and file/ignore pairing stay
	// deterministic. Type checking below stays serial — the recursive
	// importer mutates loader state.
	pkg.Files = make([]*ast.File, len(bp.GoFiles))
	parseErrs := make([]error, len(bp.GoFiles))
	var wg sync.WaitGroup
	for i, name := range bp.GoFiles {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments)
			if err != nil {
				parseErrs[i] = fmt.Errorf("lint: parse %s: %w", path, err)
				return
			}
			pkg.Files[i] = f
		}(i, filepath.Join(dir, name))
	}
	wg.Wait()
	for _, err := range parseErrs {
		if err != nil {
			return nil, err
		}
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never fully fails with a non-nil Error hook: partial type
	// information is enough for the analyzers, and diagnostics are kept.
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	if len(pkg.TypeErrors) > 0 {
		l.warn = append(l.warn, fmt.Sprintf("%s: %d type-check diagnostics (first: %v)",
			importPath, len(pkg.TypeErrors), pkg.TypeErrors[0]))
	}
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else goes to the standard-library source
// importer. Unresolvable imports degrade to empty placeholder packages so
// one exotic dependency cannot abort a whole-module lint run.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		dir := filepath.Join(l.root, filepath.FromSlash(rel))
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		l.warn = append(l.warn, fmt.Sprintf("import %q: %v (continuing with placeholder)", path, err))
		ph := types.NewPackage(path, filepath.Base(path))
		ph.MarkComplete()
		return ph, nil
	}
	return pkg, nil
}
