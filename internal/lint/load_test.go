package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module in a temp dir: files maps
// slash-relative paths to contents, and a go.mod for module "tmpmod" is
// added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadModuleSkipsVendoredAndHiddenDirs pins the module-walk skip
// rules: vendored, hidden, underscore and testdata trees are invisible
// to LoadModule — a vendored copy of a dependency must never be linted
// as module code.
func TestLoadModuleSkipsVendoredAndHiddenDirs(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a.go":                "package tmpmod\n\nfunc A() int { return 1 }\n",
		"pkg/pkg.go":          "package pkg\n\nfunc P() int { return 2 }\n",
		"vendor/dep/dep.go":   "package dep\n\nfunc D() int { return 0 == 0.0 }\n", // would not even type-check
		".hidden/h.go":        "package hidden\n\nfunc H() {}\n",
		"_attic/old.go":       "package attic\n\nfunc O() {}\n",
		"testdata/fixture.go": "package fixture\n\nfunc F() {}\n",
		"pkg/testdata/t.go":   "package t\n\nfunc T() {}\n",
		"docs/notes.txt":      "not go\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, p.ImportPath)
	}
	want := []string{"tmpmod", "tmpmod/pkg"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("LoadModule packages = %v, want %v", got, want)
	}
}

// TestLoadDirBuildTagExcluded pins constraint selection: a file behind
// an unsatisfied build tag is not parsed, not type-checked, and cannot
// contribute findings — the tagged twin here would otherwise redeclare
// the same symbol and fail the load.
func TestLoadDirBuildTagExcluded(t *testing.T) {
	root := writeModule(t, map[string]string{
		"pkg/normal.go": "package pkg\n\nfunc Same() int { return 1 }\n",
		"pkg/tagged.go": "//go:build sometag\n\npackage pkg\n\nfunc Same() int { return 2 }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "pkg"), "tmpmod/pkg")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (tagged.go excluded by constraint)", len(p.Files))
	}
	if len(p.TypeErrors) != 0 {
		t.Fatalf("type errors with tagged file excluded: %v", p.TypeErrors)
	}
	name := p.Fset.Position(p.Files[0].Pos()).Filename
	if filepath.Base(name) != "normal.go" {
		t.Fatalf("selected file = %s, want normal.go", name)
	}
}

// TestLoadDirSyntaxError pins the failure mode for unparseable source:
// LoadDir surfaces a parse error naming the file instead of analyzing a
// half-built package.
func TestLoadDirSyntaxError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc broken( {\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(root, "bad"), "tmpmod/bad")
	if err == nil {
		t.Fatal("LoadDir accepted a syntax-error package")
	}
	if !strings.Contains(err.Error(), "parse") || !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("error = %v, want a parse error naming bad.go", err)
	}
}

// TestImportUnresolvableDegradesToPlaceholder pins the loader's
// resilience contract: an import the source importer cannot resolve
// becomes an empty placeholder package plus a load warning, and the
// importing package still loads with partial type information instead
// of aborting the whole module run.
func TestImportUnresolvableDegradesToPlaceholder(t *testing.T) {
	root := writeModule(t, map[string]string{
		"uses/uses.go": "package uses\n\nimport \"example.invalid/nosuchdep\"\n\nvar X = nosuchdep.Value\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "uses"), "tmpmod/uses")
	if err != nil {
		t.Fatalf("LoadDir failed hard on an unresolvable import: %v", err)
	}
	found := false
	for _, w := range l.Warnings() {
		if strings.Contains(w, "example.invalid/nosuchdep") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no load warning for the placeholder import; warnings = %v", l.Warnings())
	}
	// The undefined selector is a type error, recorded, not fatal.
	if len(p.TypeErrors) == 0 {
		t.Fatal("expected type-check diagnostics against the placeholder package")
	}
}

// TestLoadDirImportCycle pins the cycle guard: a self-import reports a
// cycle instead of recursing forever.
func TestLoadDirImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"cyc/cyc.go": "package cyc\n\nimport \"tmpmod/cyc\"\n\nvar X = cyc.X\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.LoadDir(filepath.Join(root, "cyc"), "tmpmod/cyc")
	if err != nil {
		// A hard cycle error is acceptable...
		if !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("error = %v, want an import-cycle diagnosis", err)
		}
		return
	}
	// ...as is degrading to a type error, as long as the cycle is named.
	all := l.Warnings()
	for _, e := range p.TypeErrors {
		all = append(all, e.Error())
	}
	for _, s := range all {
		if strings.Contains(s, "cycle") {
			return
		}
	}
	t.Fatalf("self-import neither errored nor diagnosed a cycle; warnings=%v typeErrors=%v", l.Warnings(), p.TypeErrors)
}
