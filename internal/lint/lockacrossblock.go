package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockAcrossBlock flags a sync.Mutex or sync.RWMutex held across a
// blocking operation: an mpi.Comm collective, a channel send/receive, a
// select with no default, or a network call. This is the
// elastic-eviction deadlock shape from He & Smelyanskiy (arXiv
// 1606.00511): the master blocks in a collective while holding the
// state lock, a worker dies, the eviction path needs that same lock to
// rewrite the rank table, and the job hangs instead of healing.
//
// Detection is lexical within one statement list: after `mu.Lock()` (or
// `mu.RLock()`), statements up to the matching `mu.Unlock()` are the
// critical section; a `defer mu.Unlock()` extends it to the end of the
// list. Function literals inside the section are skipped (they run on
// their own goroutine or later, outside the lock), and sync.Cond.Wait
// is exempt by design — it releases the lock while blocked.
//
// Findings are errors: when the block is provably bounded (a write
// deadline armed on the connection, say), record that justification
// with //lint:ignore lockacrossblock.
type LockAcrossBlock struct{}

// Name implements Analyzer.
func (LockAcrossBlock) Name() string { return "lockacrossblock" }

// Doc implements Analyzer.
func (LockAcrossBlock) Doc() string {
	return "sync.Mutex/RWMutex held across a blocking mpi collective, channel " +
		"operation, or network call; blocking under lock deadlocks eviction"
}

// Run implements Analyzer.
func (l LockAcrossBlock) Run(p *Package) []Finding {
	var out []Finding
	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		var list []ast.Stmt
		switch s := n.(type) {
		case *ast.BlockStmt:
			list = s.List
		case *ast.CaseClause:
			list = s.Body
		case *ast.CommClause:
			list = s.Body
		default:
			return true
		}
		out = append(out, l.scanList(p, list)...)
		return true
	})
	return out
}

// scanList finds critical sections in one statement list and reports
// blocking operations inside them. Nested lists are handled by their
// own inspectWithStack visit, so the scan here stays shallow except for
// the expression walk inside each guarded statement.
func (l LockAcrossBlock) scanList(p *Package, list []ast.Stmt) []Finding {
	var out []Finding
	for i := 0; i < len(list); i++ {
		key, kind := lockStmt(p, list[i])
		if key == "" {
			continue
		}
		deferred := false
		for j := i + 1; j < len(list); j++ {
			if isDeferUnlock(p, list[j], key, kind) {
				deferred = true
				continue
			}
			if isUnlock(p, list[j], key, kind) && !deferred {
				break
			}
			out = append(out, l.blockingIn(p, list[j], key)...)
		}
	}
	return out
}

// blockingIn reports every blocking operation under stmt, pruning
// function literals (deferred/spawned bodies run outside the lock as
// far as this lexical analysis can tell).
func (l LockAcrossBlock) blockingIn(p *Package, stmt ast.Stmt, key string) []Finding {
	var out []Finding
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			out = append(out, p.finding(l, SevError, b,
				"channel send while holding %s; the send can block forever under lock", key))
		case *ast.UnaryExpr:
			if b.Op == token.ARROW {
				out = append(out, p.finding(l, SevError, b,
					"channel receive while holding %s; the receive can block forever under lock", key))
			}
		case *ast.SelectStmt:
			if !selectHasDefault(b) {
				out = append(out, p.finding(l, SevError, b,
					"select with no default while holding %s; all arms can block under lock", key))
			}
			return false // arms already covered by the select finding
		case *ast.CallExpr:
			if desc := blockingCallDesc(p, b); desc != "" {
				out = append(out, p.finding(l, SevError, b,
					"%s while holding %s; a blocked call under lock is the eviction deadlock shape", desc, key))
			}
		}
		return true
	})
	return out
}

// lockStmt reports whether stmt is `key.Lock()` or `key.RLock()` on a
// sync.Mutex/RWMutex, returning the receiver path and the lock kind
// ("Lock" or "RLock", used to match the corresponding unlock).
func lockStmt(p *Package, stmt ast.Stmt) (key, kind string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	call, ok := unparen(es.X).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	fn := p.calleeFunc(call)
	if fn == nil || pkgPath(fn) != "sync" {
		return "", ""
	}
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return "", ""
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return exprPath(sel.X), fn.Name()
}

// isUnlock reports whether stmt is the unlock matching a Lock/RLock on
// the same receiver path.
func isUnlock(p *Package, stmt ast.Stmt, key, kind string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	return isUnlockCall(p, es.X, key, kind)
}

// isDeferUnlock reports whether stmt is `defer key.Unlock()` for the
// matching lock kind.
func isDeferUnlock(p *Package, stmt ast.Stmt, key, kind string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	return isUnlockCall(p, ds.Call, key, kind)
}

func isUnlockCall(p *Package, e ast.Expr, key, kind string) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := p.calleeFunc(call)
	if fn == nil || pkgPath(fn) != "sync" {
		return false
	}
	want := "Unlock"
	if kind == "RLock" {
		want = "RUnlock"
	}
	if fn.Name() != want {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	return ok && exprPath(sel.X) == key
}

// exprPath renders a selector chain (a, a.b, a.b.c) as a stable string
// for matching lock/unlock receivers; non-chain expressions return "".
func exprPath(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// selectHasDefault reports whether a select statement has a default
// clause (making it non-blocking).
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// mpiBlocking is the set of mpi.Comm/Transport methods that block on a
// peer: collectives synchronize every rank, point-to-point sends and
// receives wait for the other side.
var mpiBlocking = map[string]bool{
	"Bcast": true, "Reduce": true, "ReduceF64": true,
	"Allreduce": true, "AllreduceF64": true, "Barrier": true,
	"Gather": true, "Scatter": true, "Allgather": true,
	"SendBytes": true, "RecvBytes": true, "RecvBytesTimeout": true,
	"SendF32": true, "RecvF32": true, "SendInts": true, "RecvInts": true,
	"Send": true, "Recv": true, "RecvTimeout": true,
}

// netBlocking is the set of package-net functions and methods that wait
// on the network.
var netBlocking = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true,
	"Accept": true, "AcceptTCP": true,
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
}

// httpBlocking is the set of net/http calls that wait on a round trip
// or run a serve loop.
var httpBlocking = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true,
	"Serve": true, "ServeTLS": true, "ListenAndServe": true, "ListenAndServeTLS": true,
}

// blockingCallDesc classifies a call as blocking, returning a short
// description for the finding message ("" when not blocking).
func blockingCallDesc(p *Package, call *ast.CallExpr) string {
	fn := p.calleeFunc(call)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	switch path := pkgPath(fn); {
	case path == "net" && netBlocking[name]:
		return "net." + name + " call"
	case path == "net/http" && httpBlocking[name]:
		return "net/http." + name + " call"
	}
	if !mpiBlocking[name] {
		return ""
	}
	if recvNamed := recvTypeName(fn); recvNamed == "Comm" || recvNamed == "Transport" {
		return "mpi." + name + " collective/transfer"
	}
	return ""
}

// recvTypeName returns the named type of fn's receiver ("" for plain
// functions or unnamed receivers).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
