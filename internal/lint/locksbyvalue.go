package lint

import (
	"go/ast"
	"go/types"
)

// LocksByValue flags copies of values containing sync or sync/atomic
// state: sync.Mutex, sync.WaitGroup, sync.Once, atomic.Int64 and friends,
// directly or embedded in structs and arrays. A copied mutex guards
// nothing, a copied WaitGroup deadlocks its waiters, and a copied atomic
// counter silently forks — the in-process MPI fabric and the obs registry
// both depend on these being shared, not duplicated.
//
// Reported copy sites: value receivers on methods of lock-holding types,
// plain assignments, range-clause element copies, by-value function
// arguments, and by-value returns. Composite literals and call results
// are not copies of a shared value and are allowed.
type LocksByValue struct{}

// Name implements Analyzer.
func (LocksByValue) Name() string { return "locksbyvalue" }

// Doc implements Analyzer.
func (LocksByValue) Doc() string {
	return "a sync.Mutex/WaitGroup/Once or sync/atomic value is copied; " +
		"copies fork the lock or counter state instead of sharing it"
}

// Run implements Analyzer.
func (l LocksByValue) Run(p *Package) []Finding {
	var out []Finding
	seen := map[types.Type]bool{}
	flag := func(node ast.Node, format string, args ...any) {
		out = append(out, p.finding(l, SevError, node, format, args...))
	}
	// copies reports a copy of e when e's type holds a lock and e reads
	// an existing value (rather than constructing a fresh one).
	copies := func(e ast.Expr) (types.Type, bool) {
		switch unparen(e).(type) {
		case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
			return nil, false
		}
		t := p.Info.TypeOf(e)
		if t == nil || !containsLock(t, seen) {
			return nil, false
		}
		return t, true
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv == nil || len(n.Recv.List) == 0 {
					return true
				}
				rt := p.Info.TypeOf(n.Recv.List[0].Type)
				if rt == nil {
					return true
				}
				if _, isPtr := rt.(*types.Pointer); !isPtr && containsLock(rt, seen) {
					flag(n.Recv.List[0].Type, "method %s has a value receiver of type %s, which contains a lock; use a pointer receiver", n.Name.Name, rt)
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if t, bad := copies(rhs); bad {
						flag(rhs, "assignment copies lock-holding value of type %s", t)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if t, bad := copies(v); bad {
						flag(v, "variable declaration copies lock-holding value of type %s", t)
					}
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if e == nil {
						continue
					}
					if t := p.Info.TypeOf(e); t != nil && containsLock(t, seen) {
						flag(e, "range clause copies lock-holding value of type %s; range over indices or pointers instead", t)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if t, bad := copies(arg); bad {
						flag(arg, "call passes lock-holding value of type %s by value", t)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if t, bad := copies(r); bad {
						flag(r, "return copies lock-holding value of type %s", t)
					}
				}
			}
			return true
		})
	}
	return out
}

// containsLock reports whether t is, or transitively contains (through
// struct fields and array elements), a struct type declared in sync or
// sync/atomic. seen memoizes results and breaks recursive-type cycles.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if v, ok := seen[t]; ok {
		return v
	}
	seen[t] = false // cycle guard for recursive types
	res := false
	switch u := t.(type) {
	case *types.Named:
		if pp := pkgPath(u.Obj()); pp == "sync" || pp == "sync/atomic" {
			if _, isStruct := u.Underlying().(*types.Struct); isStruct {
				res = true
			}
		}
		if !res {
			res = containsLock(u.Underlying(), seen)
		}
	case *types.Alias:
		res = containsLock(types.Unalias(u), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				res = true
				break
			}
		}
	case *types.Array:
		res = containsLock(u.Elem(), seen)
	}
	seen[t] = res
	return res
}
