package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderFloat flags floating-point state built up in map iteration
// order: Go randomizes `range` over a map per iteration, so a float
// accumulation (or a float-carrying slice constructed by append) inside
// such a loop produces run-to-run different rounding — exactly the
// reassociation nondeterminism the trainer's fixed-order reduction trees
// exist to eliminate. A single nondeterministic sum in an exported
// metric or a workload total breaks byte-identical reports; one in a
// compute path changes CG trajectories.
//
// The sanctioned form is to collect the keys, sort them, and iterate the
// sorted slice. Per-key accumulation into state declared inside the loop
// body stays silent (each key is touched once, so order cannot matter),
// as does integer counting and building key lists that are sorted before
// use.
//
// The analyzer also follows one level of dataflow through local helpers:
// calling a same-package function that compound-accumulates into a
// *float32/*float64 parameter, with a pointer to loop-external state as
// the argument, is the same hazard spelled differently.
type MapOrderFloat struct{}

// Name implements Analyzer.
func (MapOrderFloat) Name() string { return "maporderfloat" }

// Doc implements Analyzer.
func (MapOrderFloat) Doc() string {
	return "float accumulation or float-carrying slice construction inside range " +
		"over a map; map iteration order is randomized, so sort the keys and " +
		"iterate the sorted slice"
}

// Run implements Analyzer.
func (m MapOrderFloat) Run(p *Package) []Finding {
	var out []Finding
	helpers := p.floatAccumHelpers()

	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !p.isMapType(rng.X) {
			return true
		}
		ast.Inspect(rng.Body, func(inner ast.Node) bool {
			switch v := inner.(type) {
			case *ast.AssignStmt:
				if p.isCompoundFloat(v) && p.declaredOutside(v.Lhs[0], rng) {
					out = append(out, p.finding(m, SevError, v,
						"float accumulation into %s inside range over map %s; iteration order is randomized — iterate sorted keys",
						types.ExprString(v.Lhs[0]), types.ExprString(rng.X)))
					return true
				}
				if tgt := p.appendTarget(v); tgt != nil && p.declaredOutside(tgt, rng) {
					if sl, ok := p.Info.TypeOf(tgt).Underlying().(*types.Slice); ok && carriesFloat(sl.Elem(), 0) {
						out = append(out, p.finding(m, SevError, v,
							"float-carrying slice %s built in map iteration order (range over %s); iterate sorted keys",
							types.ExprString(tgt), types.ExprString(rng.X)))
					}
				}
			case *ast.CallExpr:
				fn := p.calleeFunc(v)
				if fn == nil || !helpers[fn] {
					return true
				}
				for _, arg := range v.Args {
					target := unparen(arg)
					if ue, ok := target.(*ast.UnaryExpr); ok && ue.Op == token.AND {
						target = ue.X
					}
					if id := rootIdent(target); id != nil && p.declaredOutside(target, rng) {
						out = append(out, p.finding(m, SevError, v,
							"%s accumulates into *%s inside range over map %s; iteration order is randomized — iterate sorted keys",
							fn.Name(), types.ExprString(target), types.ExprString(rng.X)))
						break
					}
				}
			}
			return true
		})
		return true
	})
	return out
}

// floatAccumHelpers classifies this package's functions that
// compound-accumulate into a pointer-to-float parameter — the local
// aggregation helpers the map-order analyzer follows dataflow through.
func (p *Package) floatAccumHelpers() map[*types.Func]bool {
	helpers := map[*types.Func]bool{}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			// Pointer-to-float parameters this helper could fold into.
			params := map[types.Object]bool{}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					for _, name := range field.Names {
						obj := p.Info.Defs[name]
						if obj == nil {
							continue
						}
						if ptr, ok := obj.Type().Underlying().(*types.Pointer); ok {
							if b, ok := ptr.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
								params[obj] = true
							}
						}
					}
				}
			}
			if len(params) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || !p.isCompoundFloat(as) {
					return true
				}
				if id := rootIdent(as.Lhs[0]); id != nil && params[p.objOf(id)] {
					helpers[fn] = true
				}
				return true
			})
		}
	}
	return helpers
}
