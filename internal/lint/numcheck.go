package lint

// This file holds the helpers shared by the numcheck analyzer family
// (maporderfloat, reduceorder, rngsource, divguard). The four analyzers
// guard the numerical layers against the hazards that silently break the
// trainer's bit-reproducibility contract: float accumulation in map
// iteration order, channel-arrival-order reductions, global or
// time-seeded RNG in compute paths, and unguarded divisions by reduced
// quantities. See DESIGN.md, "Determinism".

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// numericPackages are the compute packages the scoped numcheck analyzers
// (rngsource, divguard) apply to: everything that touches training math.
// The map-order and reduce-order analyzers run module-wide instead,
// because a nondeterministic float path anywhere (obs export, workload
// totals) breaks run-to-run byte identity.
var numericPackages = []string{
	"repro/internal/nn",
	"repro/internal/hf",
	"repro/internal/core",
	"repro/internal/blas",
	"repro/internal/seq",
}

// inNumericScope reports whether p is one of the numerical compute
// packages, or the analyzer's own golden fixture (fixture packages load
// under synthetic fixture/<name> import paths).
func inNumericScope(p *Package, analyzer string) bool {
	if p.ImportPath == "fixture/"+analyzer || p.ImportPath == "fixture/clean" {
		return true
	}
	for _, np := range numericPackages {
		if p.ImportPath == np || strings.HasPrefix(p.ImportPath, np+"/") {
			return true
		}
	}
	return false
}

// isMapType reports whether e has map type.
func (p *Package) isMapType(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isChanType reports whether e has channel type.
func (p *Package) isChanType(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// carriesFloat reports whether t is or contains floating-point state —
// a float basic type, or a struct/array/slice/pointer reaching one. A
// slice of such elements built in nondeterministic order changes float
// results downstream, unlike e.g. a []string key list that is sorted
// before use.
func carriesFloat(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesFloat(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Slice:
		return carriesFloat(u.Elem(), depth+1)
	case *types.Array:
		return carriesFloat(u.Elem(), depth+1)
	case *types.Pointer:
		return carriesFloat(u.Elem(), depth+1)
	}
	return false
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the
// base identifier of an lvalue (x, x.f, x[i], *x, ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// objOf resolves the object an identifier denotes (use or def).
func (p *Package) objOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// declaredOutside reports whether the lvalue rooted at e refers to a
// variable declared outside node n — i.e. state that survives n, so
// mutating it in n's (nondeterministic) iteration order is observable.
// Unresolvable roots conservatively count as outside.
func (p *Package) declaredOutside(e ast.Expr, n ast.Node) bool {
	id := rootIdent(e)
	if id == nil {
		return true
	}
	obj := p.objOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < n.Pos() || obj.Pos() >= n.End()
}

// isCompoundFloat reports whether as is a compound float accumulation
// (+=, -=, *=, /= with a floating-point left-hand side).
func (p *Package) isCompoundFloat(as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	return len(as.Lhs) == 1 && p.isFloat(as.Lhs[0])
}

// appendTarget returns the slice variable being grown when as has the
// form x = append(x, ...), or nil.
func (p *Package) appendTarget(as *ast.AssignStmt) ast.Expr {
	if (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	if types.ExprString(as.Lhs[0]) != types.ExprString(call.Args[0]) {
		return nil
	}
	return as.Lhs[0]
}

// exprContains reports whether pred holds for any node of e.
func exprContains(e ast.Expr, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if n != nil && pred(n) {
			found = true
			return false
		}
		return true
	})
	return found
}
