package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsNilGuard enforces the observability layer's nil-safety contract at
// its boundary: the Metrics, Trace and Events fields of *obs.Observer —
// and the Traces, Flight and Status fields of *telemetry.Plane — must
// not be accessed directly outside the obs tree, because a nil pointer —
// the documented "observability disabled" state threaded through every
// training entry point — panics on field selection. The established
// idiom is the nil-safe accessor surface: ob.Registry(), ob.Tracer(),
// ob.Span(), and plane.Merger(), plane.Recorder(), plane.Health().
//
// A direct field access is accepted only under an explicit nil guard: an
// enclosing `if ob != nil` (or the else-branch of `if ob == nil`), or a
// preceding `if ob == nil { return/panic/... }` early exit in the same
// function body.
type ObsNilGuard struct{}

// obsPkgPath and telemetryPkgPath are the packages whose contracts this
// analyzer enforces; their own methods implement the nil checks and are
// exempt.
const (
	obsPkgPath       = "repro/internal/obs"
	telemetryPkgPath = "repro/internal/obs/telemetry"
)

// nilGuardedField maps each guarded struct field to the nil-safe
// accessor that replaces it, keyed by owning type.
var nilGuardedFields = map[string]map[string]string{
	"Observer": {"Metrics": "Registry", "Trace": "Tracer", "Events": "EventLog"},
	"Plane":    {"Traces": "Merger", "Flight": "Recorder", "Status": "Health"},
}

// Name implements Analyzer.
func (ObsNilGuard) Name() string { return "obsnilguard" }

// Doc implements Analyzer.
func (ObsNilGuard) Doc() string {
	return "unguarded Metrics/Trace/Events field access on a possibly-nil *obs.Observer " +
		"(or Traces/Flight/Status on a possibly-nil *telemetry.Plane); " +
		"use the nil-safe accessors or guard with `if ob != nil`"
}

// Run implements Analyzer.
func (o ObsNilGuard) Run(p *Package) []Finding {
	if p.ImportPath == obsPkgPath || p.ImportPath == telemetryPkgPath {
		return nil
	}
	var out []Finding
	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		// Only pointer receivers can be nil; value Observers/Planes are safe.
		ptr, ok := p.Info.TypeOf(sel.X).(*types.Pointer)
		if !ok {
			return true
		}
		owner, typeLabel := guardedOwner(ptr.Elem())
		if owner == "" {
			return true
		}
		accessor, ok := nilGuardedFields[owner][sel.Sel.Name]
		if !ok {
			return true
		}
		recv := types.ExprString(sel.X)
		if guardedByEnclosingIf(stack, sel, recv) || guardedByEarlyExit(stack, sel, recv) ||
			guardedByShortCircuit(stack, sel, recv) {
			return true
		}
		out = append(out, p.finding(o, SevError, sel,
			"%s.%s accessed without a nil guard; a nil %s (observability disabled) panics here — use %s.%s() instead",
			recv, sel.Sel.Name, typeLabel, recv, accessor))
		return true
	})
	return out
}

// guardedOwner reports which nil-guarded type t is — "Observer" or
// "Plane" — plus its human-readable label, or "" when t is neither.
func guardedOwner(t types.Type) (owner, label string) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	switch {
	case obj.Name() == "Observer" && pkgPath(obj) == obsPkgPath:
		return "Observer", "*obs.Observer"
	case obj.Name() == "Plane" && pkgPath(obj) == telemetryPkgPath:
		return "Plane", "*telemetry.Plane"
	}
	return "", ""
}

// guardedByEnclosingIf reports whether node sits in the then-branch of an
// if whose condition establishes recv != nil (conjunctions are searched;
// disjunctions are not, since they prove nothing), or in the else-branch
// of an `if recv == nil`.
func guardedByEnclosingIf(stack []ast.Node, node ast.Node, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := ifs.Body != nil && within(node, ifs.Body)
		inElse := ifs.Else != nil && within(node, ifs.Else)
		if inBody && condProvesNonNil(ifs.Cond, recv, token.NEQ) {
			return true
		}
		if inElse && condProvesNonNil(ifs.Cond, recv, token.EQL) {
			return true
		}
	}
	return false
}

// guardedByEarlyExit reports whether a statement before node in an
// enclosing block is `if recv == nil { ... }` whose body cannot fall
// through (return, panic, or a terminating call like log.Fatal/os.Exit).
func guardedByEarlyExit(stack []ast.Node, node ast.Node, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, stmt := range block.List {
			if stmt.Pos() >= node.Pos() {
				break
			}
			ifs, ok := stmt.(*ast.IfStmt)
			if !ok || ifs.Else != nil {
				continue
			}
			if condProvesNonNil(ifs.Cond, recv, token.EQL) && terminates(ifs.Body) {
				return true
			}
		}
	}
	return false
}

// guardedByShortCircuit reports whether node is the right operand of a
// short-circuit operator whose left operand already decides nilness:
// `recv != nil && ...node...` only evaluates node when recv is non-nil,
// and so does `recv == nil || ...node...`.
func guardedByShortCircuit(stack []ast.Node, node ast.Node, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		bin, ok := stack[i].(*ast.BinaryExpr)
		if !ok || !within(node, bin.Y) {
			continue
		}
		switch bin.Op {
		case token.LAND:
			if condProvesNonNil(bin.X, recv, token.NEQ) {
				return true
			}
		case token.LOR:
			if condProvesNonNil(bin.X, recv, token.EQL) {
				return true
			}
		}
	}
	return false
}

// condProvesNonNil searches cond (descending through &&) for the
// comparison `recv <op> nil` or `nil <op> recv`.
func condProvesNonNil(cond ast.Expr, recv string, op token.Token) bool {
	bin, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LAND {
		return condProvesNonNil(bin.X, recv, op) || condProvesNonNil(bin.Y, recv, op)
	}
	if bin.Op != op {
		return false
	}
	x, y := types.ExprString(bin.X), types.ExprString(bin.Y)
	return (x == recv && y == "nil") || (x == "nil" && y == recv)
}

// terminates reports whether a block's last statement stops fall-through:
// return, panic, or a call conventionally known not to return.
func terminates(block *ast.BlockStmt) bool {
	if block == nil || len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			return name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Fatalln"
		}
	}
	return false
}

// within reports whether node lies inside container's source range.
func within(node, container ast.Node) bool {
	return container.Pos() <= node.Pos() && node.End() <= container.End()
}
