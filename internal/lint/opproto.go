package lint

// OpProto extracts the elastic opcode state machine and diffs its two
// sides. The master issues opcodes over point-to-point frames — either
// directly (heartbeat pings, shard supplements) or through helpers like
// bcastOp/gatherOp — and the worker dispatches on the opcode in a
// switch whose case labels are the opcode constants. Four hazards:
//
//   - a dispatch arm whose opcode no master path ever sends with p2p
//     traffic: dead protocol, or a sender that was lost in a refactor;
//   - an opcode sent with p2p traffic but handled by no dispatch arm:
//     the worker's default path treats a live opcode as garbage;
//   - a statically-derivable reply-length mismatch: the master checks
//     `len(reply) != N` (inline or via a helper's wantLen parameter)
//     while the arm's reply encoder produces a different length — every
//     reply is then "malformed" and the worker is evicted while healthy;
//   - an opcode with a dispatch arm but no case in the opcode name
//     table, so fault reports and event logs show a raw number.
//
// Reply lengths compare in k*DIM+c form (DIM = the model dimension);
// arms or senders whose traffic passes a Comm to another package are
// opaque and exempt from reply checks. Like commcheck, the opcode group
// extends to every constant declared in the same const block as an arm
// label, and the mpi package itself is exempt.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

type OpProto struct{}

func (OpProto) Name() string { return "opproto" }

func (OpProto) Doc() string {
	return "elastic opcode state machine: dispatch arms without master senders, p2p-sent opcodes without dispatch arms, reply-length mismatches, and opcodes missing from the name table"
}

// p2pArm is one opcode case of a worker dispatch switch.
type p2pArm struct {
	c       *types.Const
	clause  *ast.CaseClause
	summary *p2pSummary
}

// p2pDispatch is a worker-side opcode switch with p2p-bearing arms.
type p2pDispatch struct {
	stmt *ast.SwitchStmt
	arms []p2pArm
}

// opSender is one master-side use of an opcode constant: the p2p
// conversation written at that site (its statement, spliced, plus the
// unspliced tail), and the reply expectation derived from it.
type opSender struct {
	ident        *ast.Ident
	site         string
	expectsReply bool
	opaque       bool
	want         affine
	wantNeg      bool
}

func (c OpProto) Run(p *Package) []Finding {
	if p.ImportPath == mpiPkgPath {
		return nil
	}
	z := newP2PPass(p)
	switches, labels := z.findP2PDispatch()
	if len(switches) == 0 {
		return nil
	}

	group := map[*types.Const]bool{}
	armed := map[*types.Const]bool{}
	for _, sw := range switches {
		for _, arm := range sw.arms {
			group[arm.c] = true
			armed[arm.c] = true
		}
	}
	// The opcode group extends across each arm label's const block, so
	// a freshly-declared opcode with a sender but no arm is caught.
	blocks := z.constBlocks()
	groupBlocks := map[*ast.GenDecl]bool{}
	for cobj := range group {
		if b := blocks[cobj]; b != nil {
			groupBlocks[b] = true
		}
	}
	for cobj, b := range blocks {
		if groupBlocks[b] {
			group[cobj] = true
		}
	}

	senders := z.findOpSenders(group, labels)

	var out []Finding
	reported := map[string]bool{}
	report := func(f Finding) {
		key := f.String()
		if !reported[key] {
			reported[key] = true
			out = append(out, f)
		}
	}

	for _, sw := range switches {
		for _, arm := range sw.arms {
			uses := senders[arm.c]
			if len(uses) == 0 {
				report(p.finding(c, SevError, arm.clause,
					"dispatch arm for %s has no master sender: no code path outside this switch issues %s with point-to-point traffic",
					arm.c.Name(), arm.c.Name()))
				continue
			}
			var armSends []p2pEvent
			armOpaque := false
			for _, ev := range arm.summary.events {
				if ev.opaque {
					armOpaque = true
				} else if ev.dir == dirSend {
					armSends = append(armSends, ev)
				}
			}
			for _, u := range uses {
				if u.opaque || armOpaque {
					continue
				}
				if u.expectsReply && len(armSends) == 0 {
					report(p.finding(c, SevError, arm.clause,
						"master sender at %s waits for a reply to %s but the dispatch arm never sends one",
						u.site, arm.c.Name()))
					continue
				}
				if u.want.ok && !u.wantNeg && len(armSends) == 1 {
					ra := z.byteLenAffine(armSends[0].payload, 0)
					if ra.ok && !ra.equal(u.want) {
						report(p.finding(c, SevError, armSends[0].node,
							"dispatch arm for %s replies %s bytes but its master sender at %s expects %s: every reply is rejected as malformed",
							arm.c.Name(), ra.render(), u.site, u.want.render()))
					}
				}
			}
		}
	}

	// Opcodes sent with p2p traffic but dispatched nowhere.
	orphanOps := make([]*types.Const, 0)
	for cobj := range senders {
		if !armed[cobj] {
			orphanOps = append(orphanOps, cobj)
		}
	}
	sort.SliceStable(orphanOps, func(i, j int) bool { return orphanOps[i].Pos() < orphanOps[j].Pos() })
	for _, cobj := range orphanOps {
		u := senders[cobj][0]
		report(p.finding(c, SevError, u.ident,
			"opcode %s is sent with point-to-point traffic but no worker dispatch arm handles it",
			cobj.Name()))
	}

	// Name-table coverage: every dispatched opcode of a block covered by
	// a string table must have a case in it.
	armedSorted := make([]*types.Const, 0, len(armed))
	for cobj := range armed {
		armedSorted = append(armedSorted, cobj)
	}
	sort.SliceStable(armedSorted, func(i, j int) bool { return armedSorted[i].Pos() < armedSorted[j].Pos() })
	for _, tbl := range z.findNameTables() {
		tblBlocks := map[*ast.GenDecl]bool{}
		for cobj := range tbl.labels {
			if b := blocks[cobj]; b != nil {
				tblBlocks[b] = true
			}
		}
		for _, cobj := range armedSorted {
			if tblBlocks[blocks[cobj]] && !tbl.labels[cobj] {
				report(p.finding(c, SevError, tbl.stmt,
					"opcode %s has a dispatch arm but no case in this opcode name table: fault reports will show a raw number",
					cobj.Name()))
			}
		}
	}

	return out
}

// findP2PDispatch scans every function for worker dispatch switches —
// case labels that are package-level constants with at least one arm
// carrying real p2p traffic — and returns them plus the label set.
func (z *p2pPass) findP2PDispatch() ([]p2pDispatch, map[*ast.Ident]bool) {
	var switches []p2pDispatch
	labels := map[*ast.Ident]bool{}
	for _, fd := range z.orderedDecls() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			// A switch on a received message's wire tag routes traffic,
			// it does not dispatch opcodes: that surface belongs to
			// tagspace and sendrecvpair.
			if z.isMessageTag(sw.Tag) {
				return true
			}
			var arms []p2pArm
			var armLabels []*ast.Ident
			hasEvents := false
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				if clause.List == nil {
					continue // default
				}
				var clauseConsts []*types.Const
				ok := true
				for _, v := range clause.List {
					id := labelIdent(v)
					if id == nil {
						ok = false
						break
					}
					cobj, isConst := z.p.Info.Uses[id].(*types.Const)
					if !isConst || cobj.Pkg() != z.p.Types || cobj.Parent() != z.p.Types.Scope() {
						ok = false
						break
					}
					clauseConsts = append(clauseConsts, cobj)
					armLabels = append(armLabels, id)
				}
				if !ok {
					return true // not a dispatch switch; keep scanning nested ones
				}
				sum := &p2pSummary{}
				z.collectStmts(clause.Body, false, sum)
				for _, ev := range sum.events {
					if !ev.opaque {
						hasEvents = true
						break
					}
				}
				if len(clauseConsts) == 1 {
					arms = append(arms, p2pArm{c: clauseConsts[0], clause: clause, summary: sum})
				}
			}
			if hasEvents && len(arms) > 0 {
				switches = append(switches, p2pDispatch{stmt: sw, arms: arms})
				for _, id := range armLabels {
					labels[id] = true
				}
			}
			return true
		})
	}
	return switches, labels
}

// isMessageTag matches `x.Tag` where x is an mpi.Message.
func (z *p2pPass) isMessageTag(e ast.Expr) bool {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Tag" {
		return false
	}
	t := z.p.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == mpiPkgPath && obj.Name() == "Message"
}

// constBlocks maps every package-level constant to its const block.
func (z *p2pPass) constBlocks() map[*types.Const]*ast.GenDecl {
	out := map[*types.Const]*ast.GenDecl{}
	for _, file := range z.p.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if cobj, ok := z.p.Info.Defs[name].(*types.Const); ok {
						out[cobj] = gd
					}
				}
			}
		}
	}
	return out
}

// findOpSenders locates every use of a group constant outside dispatch
// labels whose site carries p2p send traffic, and derives the reply
// expectation written there. The issuing statement is summarized with
// helper splicing (a gatherOp call site is one conversation); the tail
// — statements up to the next opcode use — is summarized without
// splicing, so an adjacent helper call's unrelated conversation cannot
// masquerade as this site's reply wait.
func (z *p2pPass) findOpSenders(group map[*types.Const]bool, labels map[*ast.Ident]bool) map[*types.Const][]opSender {
	senders := map[*types.Const][]opSender{}
	z.p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		cobj, isConst := z.p.Info.Uses[id].(*types.Const)
		if !isConst || !group[cobj] || labels[id] {
			return true
		}
		fd, body := enclosingFunc(stack)
		if fd == nil {
			return true
		}
		top := topLevelStmt(body, id)
		if top == nil {
			return true
		}
		stmtSum := z.stmtSummary(top)
		tail := &p2pSummary{}
		z.noSplice = true
		idx := stmtIndex(body, top)
		var tailStmts []ast.Stmt
		for _, s := range body.List[idx+1:] {
			if z.usesGroupConst(s, group, labels) {
				break
			}
			tailStmts = append(tailStmts, s)
			z.collectStmt(s, false, tail)
		}
		z.noSplice = false

		u := opSender{ident: id, site: z.site(id), want: affine{}}
		hasSend := false
		for _, ev := range append(append([]p2pEvent(nil), stmtSum.events...), tail.events...) {
			switch {
			case ev.opaque:
				u.opaque = true
			case ev.dir == dirSend:
				hasSend = true
			case ev.dir == dirRecv:
				u.expectsReply = true
			}
		}
		if !hasSend {
			return true
		}
		u.want, u.wantNeg = z.senderWant(top, tailStmts)
		senders[cobj] = append(senders[cobj], u)
		return true
	})
	return senders
}

// senderWant derives the reply length a sender site checks for: a call
// to a helper with a wantLen-style parameter (compared against
// len(reply.Data) in its body) wins; otherwise the first inline
// len(x.Data) comparison in the site's statements.
func (z *p2pPass) senderWant(top ast.Stmt, tail []ast.Stmt) (affine, bool) {
	var want affine
	ast.Inspect(top, func(n ast.Node) bool {
		if want.ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := z.localCallee(call)
		if fn == nil {
			return true
		}
		if w := z.wantLenParam(fn); w >= 0 && w < len(call.Args) && call.Ellipsis == token.NoPos {
			want = z.intAffine(call.Args[w], 0)
		}
		return true
	})
	if !want.ok {
		for _, s := range append([]ast.Stmt{top}, tail...) {
			if want.ok {
				break
			}
			ast.Inspect(s, func(n ast.Node) bool {
				if want.ok {
					return false
				}
				if a, ok := z.lenCompare(n); ok {
					want = a
					return false
				}
				return true
			})
		}
	}
	neg := want.ok && want.dim == 0 && want.c < 0
	return want, neg
}

// lenCompare matches `len(x.Data) ==/!= E` and resolves E.
func (z *p2pPass) lenCompare(n ast.Node) (affine, bool) {
	be, ok := n.(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return affine{}, false
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		if !z.isLenOfData(pair[0]) {
			continue
		}
		if a := z.intAffine(pair[1], 0); a.ok {
			return a, true
		}
	}
	return affine{}, false
}

// isLenOfData matches len(sel.Data) — the length of a received
// mpi.Message payload.
func (z *p2pPass) isLenOfData(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || !z.p.isBuiltin(call, "len") || len(call.Args) != 1 {
		return false
	}
	sel, ok := unparen(call.Args[0]).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Data"
}

// wantLenParam returns the index of fn's parameter that its body
// compares against a received payload length, or -1.
func (z *p2pPass) wantLenParam(fn *types.Func) int {
	if w, ok := z.wantLens[fn]; ok {
		return w
	}
	result := -1
	if fd := z.decls[fn]; fd != nil {
		params := z.paramObjects(fd.Type)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if result >= 0 {
				return false
			}
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				if !z.isLenOfData(pair[0]) {
					continue
				}
				id, ok := unparen(pair[1]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := z.p.Info.Uses[id]
				if obj == nil {
					continue
				}
				if idx, isParam := params[obj]; isParam {
					result = idx
					return false
				}
			}
			return true
		})
	}
	z.wantLens[fn] = result
	return result
}

// nameTable is a switch mapping opcode constants to string literals
// (an opName-style table).
type nameTable struct {
	stmt   *ast.SwitchStmt
	labels map[*types.Const]bool
}

// findNameTables locates opcode→string tables: a switch over a
// non-constant expression where at least two const-labeled arms consist
// of exactly `return "literal"`.
func (z *p2pPass) findNameTables() []nameTable {
	var tables []nameTable
	for _, fd := range z.orderedDecls() {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			if _, isConst := z.constInt(sw.Tag); isConst {
				return true
			}
			labels := map[*types.Const]bool{}
			arms := 0
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				if clause.List == nil {
					continue
				}
				if len(clause.Body) != 1 {
					return true
				}
				ret, ok := clause.Body[0].(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				lit, ok := unparen(ret.Results[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				clauseOK := true
				for _, v := range clause.List {
					id := labelIdent(v)
					if id == nil {
						clauseOK = false
						break
					}
					cobj, isConst := z.p.Info.Uses[id].(*types.Const)
					if !isConst || cobj.Pkg() != z.p.Types || cobj.Parent() != z.p.Types.Scope() {
						clauseOK = false
						break
					}
					labels[cobj] = true
				}
				if !clauseOK {
					return true
				}
				arms++
			}
			if arms >= 2 {
				tables = append(tables, nameTable{stmt: sw, labels: labels})
			}
			return true
		})
	}
	return tables
}
