package lint

// Shared machinery for the p2pcheck analyzer family (tagspace, opproto,
// sendrecvpair). Where commcheck models the collective surface of
// repro/internal/mpi, this file models the point-to-point surface —
// Send/Recv/Isend/Irecv, the typed SendBytes/RecvBytes(Timeout)/
// SendF32/RecvF32/SendInts/RecvInts wrappers and the free RecvTimeout —
// and extracts per-function ordered traces of p2p events with their
// statically-resolved tags and payload lengths.
//
// Three abstractions carry the analyses:
//
//   - tagForm: a tag argument resolved to a constant, to a named base
//     constant plus a dynamic offset ("tagElasticReply+round"), to the
//     AnyTag wildcard, or to "unknown". Unknown tags are dropped, so
//     every check errs toward silence on dynamic protocols.
//   - p2pEvent traces: the same statement walk as commcheck's summaries
//     (conditional marking, source order), with same-package calls and
//     single-assignment closures spliced in. Splicing substitutes tag
//     and payload arguments through parameter positions, so a wrapper
//     like mpi's collSend, or the elastic worker's reply closure,
//     resolves at its call sites.
//   - affine lengths: payload byte lengths in the form k*DIM+c, where
//     DIM stands for every non-constant atom (the protocol's single
//     free dimension). append/make/slice expressions and same-package
//     encoder helpers fold into this form; anything else is "unknown"
//     and exempt from comparison.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// p2pDir is the direction of one point-to-point operation.
type p2pDir int

const (
	dirSend p2pDir = iota
	dirRecv
)

// p2pSig describes one mpi point-to-point function: direction, where
// the tag and payload sit in the argument list (-1: absent), and
// whether a receive blocks without a deadline bound.
type p2pSig struct {
	dir        p2pDir
	tagArg     int
	payloadArg int
	blocking   bool
}

// p2pSigs maps mpi function names (methods and the free RecvTimeout) to
// their signatures. Timeout-bounded receives are non-blocking for
// deadlock purposes: they are the eviction path, not a hang.
var p2pSigs = map[string]p2pSig{
	"Send":             {dirSend, 1, 2, false},
	"Recv":             {dirRecv, 1, -1, true},
	"SendBytes":        {dirSend, 1, 2, false},
	"RecvBytes":        {dirRecv, 1, -1, true},
	"RecvBytesTimeout": {dirRecv, 1, -1, false},
	"SendF32":          {dirSend, 1, 2, false},
	"RecvF32":          {dirRecv, 1, -1, true},
	"SendInts":         {dirSend, 1, 2, false},
	"RecvInts":         {dirRecv, 1, -1, true},
	"Isend":            {dirSend, 1, 2, false},
	"Irecv":            {dirRecv, 1, -1, false},
	"RecvTimeout":      {dirRecv, 2, -1, false},
}

// tagBlockWidth is the span a base constant used with a dynamic offset
// reserves: mpi.go's tag plan gives each such base its own 2²⁴-wide
// block (collective rounds, elastic reply rounds, heartbeat rounds).
const tagBlockWidth = 1 << 24

// tagForm is a statically-resolved tag argument.
type tagForm struct {
	// known reports the tag resolved to a constant or base+offset form;
	// everything below is meaningless when false.
	known bool
	// anyTag marks the mpi.AnyTag wildcard (-1).
	anyTag bool
	// base is the named constant the tag is built from, or nil when the
	// tag is a bare literal or constant arithmetic without a single
	// identifiable base.
	base *types.Const
	// val is the tag's static value (the base's value in offset form).
	val int
	// offset reports a non-constant addend on top of base: the tag
	// occupies the block [val, val+tagBlockWidth) rather than a point.
	offset bool
}

// render names the tag for findings: "tagElastic (=9500)", "9500", with
// "+offset" appended for dynamic forms.
func (t tagForm) render() string {
	var s string
	if t.base != nil {
		s = fmt.Sprintf("%s (=%d)", t.base.Name(), t.val)
	} else {
		s = fmt.Sprintf("%d", t.val)
	}
	if t.offset {
		s += "+offset"
	}
	return s
}

// affine is a payload byte length of the form dim*DIM + c, where DIM is
// the protocol's free dimension (any non-constant atom).
type affine struct {
	dim, c int
	ok     bool
}

func (a affine) add(b affine) affine {
	return affine{a.dim + b.dim, a.c + b.c, a.ok && b.ok}
}

func (a affine) sub(b affine) affine {
	return affine{a.dim - b.dim, a.c - b.c, a.ok && b.ok}
}

func (a affine) scale(k int) affine { return affine{a.dim * k, a.c * k, a.ok} }

func (a affine) equal(b affine) bool { return a.dim == b.dim && a.c == b.c }

// render shows the length like the protocol comments: "4*dim+16", "16".
func (a affine) render() string {
	switch {
	case !a.ok:
		return "?"
	case a.dim == 0:
		return fmt.Sprintf("%d", a.c)
	case a.c == 0:
		return fmt.Sprintf("%d*dim", a.dim)
	default:
		return fmt.Sprintf("%d*dim+%d", a.dim, a.c)
	}
}

// p2pEvent is one point-to-point operation (or an opacity marker) in a
// summarized execution path.
type p2pEvent struct {
	dir      p2pDir
	blocking bool
	tag      tagForm
	// tagParam is the summarized function's parameter index the tag
	// aliases when unresolved (-1 otherwise); splicing substitutes the
	// call-site argument through it.
	tagParam int
	// payload is the send's payload expression after substitution (nil
	// for receives); payloadParam propagates like tagParam.
	payload      ast.Expr
	payloadParam int
	// payloadPkg is the package whose varDef/encoder context resolves
	// payload (substitution can move the expression across splices).
	payloadPkg *Package
	// opaque marks a call that hands an mpi.Comm/Transport to another
	// package: its traffic is invisible, so sequence claims about the
	// surrounding path are off.
	opaque bool
	// report marks the event copy anchored where its tag was supplied
	// (the direct call, or the splice that resolved a parameter tag);
	// deeper splice copies keep the trace but must not re-report.
	report bool
	// node anchors findings; site renders the position for messages
	// about the other side of the protocol.
	node        ast.Node
	site        string
	conditional bool
}

// p2pSummary is the ordered p2p trace of one function body.
type p2pSummary struct {
	events []p2pEvent
}

// linear reports a single unconditional path with no opaque calls — the
// precondition for ordering claims (deadlock pairing).
func (s *p2pSummary) linear() bool {
	for _, e := range s.events {
		if e.conditional || e.opaque {
			return false
		}
	}
	return true
}

// p2pPass carries one package's p2p analysis state.
type p2pPass struct {
	p *Package

	// decls maps function objects to declarations for summary splicing;
	// varDef resolves single-assignment variables (closure values,
	// payload buffers).
	decls  map[*types.Func]*ast.FuncDecl
	varDef map[types.Object]ast.Expr

	summaries     map[*types.Func]*p2pSummary
	inProgress    map[*types.Func]bool
	litSummaries  map[*ast.FuncLit]*p2pSummary
	litInProgress map[*ast.FuncLit]bool

	// curParams maps parameter objects of the function currently being
	// summarized to their indices (stacked across recursive summarize).
	curParams map[types.Object]int

	// noSplice disables local-call and closure splicing while set: tail
	// collection wants only the traffic written at the site itself.
	noSplice bool

	// funcLens memoizes []byte-returning encoder length summaries;
	// wantLens memoizes reply-length parameter positions.
	funcLens    map[*types.Func]affine
	funcLenBusy map[*types.Func]bool
	wantLens    map[*types.Func]int
}

func newP2PPass(p *Package) *p2pPass {
	z := &p2pPass{
		p:             p,
		decls:         map[*types.Func]*ast.FuncDecl{},
		varDef:        map[types.Object]ast.Expr{},
		summaries:     map[*types.Func]*p2pSummary{},
		inProgress:    map[*types.Func]bool{},
		litSummaries:  map[*ast.FuncLit]*p2pSummary{},
		litInProgress: map[*ast.FuncLit]bool{},
		funcLens:      map[*types.Func]affine{},
		funcLenBusy:   map[*types.Func]bool{},
		wantLens:      map[*types.Func]int{},
	}
	z.collectDecls()
	return z
}

// collectDecls indexes function declarations and single-assignment
// variable definitions across the package (same contract as commcheck).
func (z *p2pPass) collectDecls() {
	for _, file := range z.p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := z.p.Info.Defs[fd.Name].(*types.Func); ok {
				z.decls[fn] = fd
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
					return true
				}
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if obj := z.p.Info.Defs[id]; obj != nil {
						z.varDef[obj] = st.Rhs[i]
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) != len(st.Values) {
					return true
				}
				for i, id := range st.Names {
					if obj := z.p.Info.Defs[id]; obj != nil {
						z.varDef[obj] = st.Values[i]
					}
				}
			}
			return true
		})
	}
}

// orderedDecls returns the package's function declarations in source
// order.
func (z *p2pPass) orderedDecls() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range z.p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// site renders node's position as a root-relative file:line.
func (z *p2pPass) site(node ast.Node) string {
	return sitePos(z.p, node.Pos())
}

// sitePos renders any position in p's FileSet as a root-relative
// file:line, matching commcheck's cross-reference style.
func sitePos(p *Package, tp token.Pos) string {
	pos := p.Fset.Position(tp)
	file := pos.Filename
	if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("%s:%d", filepath.ToSlash(file), pos.Line)
}

// p2pCall resolves a call to an mpi point-to-point function, or
// ok=false. Matching is by declaring package and name, so the Transport
// interface methods and every concrete transport's Send/Recv all
// resolve.
func (z *p2pPass) p2pCall(call *ast.CallExpr) (p2pSig, bool) {
	fn := z.p.calleeFunc(call)
	if fn == nil || pkgPath(fn) != mpiPkgPath {
		return p2pSig{}, false
	}
	sig, ok := p2pSigs[fn.Name()]
	return sig, ok
}

// localCallee resolves a call to a function declared in this package.
func (z *p2pPass) localCallee(call *ast.CallExpr) *types.Func {
	fn := z.p.calleeFunc(call)
	if fn == nil || fn.Pkg() != z.p.Types {
		return nil
	}
	if _, ok := z.decls[fn]; !ok {
		return nil
	}
	return fn
}

// closureCallee resolves a call through a variable defined once as a
// function literal (the elastic worker's reply closure shape).
func (z *p2pPass) closureCallee(call *ast.CallExpr) *ast.FuncLit {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := z.p.Info.Uses[id]
	if obj == nil {
		return nil
	}
	def, ok := z.varDef[obj]
	if !ok {
		return nil
	}
	lit, _ := unparen(def).(*ast.FuncLit)
	return lit
}

// constInt resolves e to a constant int via go/types.
func (z *p2pPass) constInt(e ast.Expr) (int, bool) {
	a := &commAnalysis{p: z.p}
	return a.constInt(e)
}

// namedConst returns the package-level constant e names, or nil.
func (z *p2pPass) namedConst(e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := z.p.Info.Uses[id].(*types.Const)
	return c
}

// resolveTag classifies a tag argument: constant, base+dynamic-offset,
// wildcard, or unknown.
func (z *p2pPass) resolveTag(e ast.Expr) tagForm {
	e = unparen(e)
	if v, ok := z.constInt(e); ok {
		return tagForm{known: true, anyTag: v == -1, base: z.namedConst(e), val: v}
	}
	if be, ok := e.(*ast.BinaryExpr); ok && be.Op == token.ADD {
		for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			cst, dyn := pair[0], pair[1]
			if v, ok := z.constInt(cst); ok {
				if _, dynConst := z.constInt(dyn); !dynConst {
					return tagForm{known: true, base: z.namedConst(cst), val: v, offset: true}
				}
			}
		}
	}
	return tagForm{}
}

// paramIndex returns the index of the parameter of the function being
// summarized that e names, or -1.
func (z *p2pPass) paramIndex(e ast.Expr) int {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || z.curParams == nil {
		return -1
	}
	obj := z.p.Info.Uses[id]
	if obj == nil {
		return -1
	}
	if idx, ok := z.curParams[obj]; ok {
		return idx
	}
	return -1
}

// paramObjects maps the parameter objects of a declared function or
// literal to their positional indices.
func (z *p2pPass) paramObjects(ft *ast.FuncType) map[types.Object]int {
	params := map[types.Object]int{}
	if ft.Params == nil {
		return params
	}
	i := 0
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := z.p.Info.Defs[name]; obj != nil {
				params[obj] = i
			}
			i++
		}
	}
	return params
}

// isCommType reports whether t is (a pointer to) mpi.Comm or the
// mpi.Transport interface.
func isCommType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != mpiPkgPath {
		return false
	}
	return obj.Name() == "Comm" || obj.Name() == "Transport"
}

// --- summary extraction ---

// summarize returns fn's memoized p2p trace.
func (z *p2pPass) summarize(fn *types.Func) *p2pSummary {
	if s, ok := z.summaries[fn]; ok {
		return s
	}
	if z.inProgress[fn] {
		return &p2pSummary{}
	}
	z.inProgress[fn] = true
	sum := &p2pSummary{}
	if fd := z.decls[fn]; fd != nil {
		saved := z.curParams
		z.curParams = z.paramObjects(fd.Type)
		z.collectStmts(fd.Body.List, false, sum)
		z.curParams = saved
	}
	z.inProgress[fn] = false
	z.summaries[fn] = sum
	return sum
}

// summarizeLit summarizes a closure body the same way.
func (z *p2pPass) summarizeLit(lit *ast.FuncLit) *p2pSummary {
	if s, ok := z.litSummaries[lit]; ok {
		return s
	}
	if z.litInProgress[lit] {
		return &p2pSummary{}
	}
	z.litInProgress[lit] = true
	sum := &p2pSummary{}
	saved := z.curParams
	z.curParams = z.paramObjects(lit.Type)
	z.collectStmts(lit.Body.List, false, sum)
	z.curParams = saved
	z.litInProgress[lit] = false
	z.litSummaries[lit] = sum
	return sum
}

// stmtSummary summarizes a single statement subtree (sender analysis).
func (z *p2pPass) stmtSummary(s ast.Stmt) *p2pSummary {
	sum := &p2pSummary{}
	z.collectStmt(s, false, sum)
	return sum
}

// usesGroupConst reports whether any identifier under s (outside
// dispatch labels) refers to one of the group's constants.
func (z *p2pPass) usesGroupConst(s ast.Stmt, group map[*types.Const]bool, labels map[*ast.Ident]bool) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !labels[id] {
			if cobj, isConst := z.p.Info.Uses[id].(*types.Const); isConst && group[cobj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// collectStmts appends the p2p events of stmts in source order; the
// statement-shape handling mirrors commcheck's walker exactly.
func (z *p2pPass) collectStmts(stmts []ast.Stmt, conditional bool, sum *p2pSummary) {
	for _, s := range stmts {
		z.collectStmt(s, conditional, sum)
	}
}

func (z *p2pPass) collectStmt(s ast.Stmt, conditional bool, sum *p2pSummary) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			z.collectStmt(s.Init, conditional, sum)
		}
		z.collectExpr(s.Cond, conditional, sum)
		z.collectStmts(s.Body.List, true, sum)
		if s.Else != nil {
			z.collectStmt(s.Else, true, sum)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			z.collectStmt(s.Init, conditional, sum)
		}
		if s.Tag != nil {
			z.collectExpr(s.Tag, conditional, sum)
		}
		z.collectStmts(s.Body.List, true, sum)
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if st, ok := n.(*ast.BlockStmt); ok && st != s {
				z.collectStmts(st.List, true, sum)
				return false
			}
			return true
		})
	case *ast.CaseClause:
		z.collectStmts(s.Body, conditional, sum)
	case *ast.ForStmt:
		if s.Init != nil {
			z.collectStmt(s.Init, true, sum)
		}
		if s.Cond != nil {
			z.collectExpr(s.Cond, true, sum)
		}
		z.collectStmts(s.Body.List, true, sum)
		if s.Post != nil {
			z.collectStmt(s.Post, true, sum)
		}
	case *ast.RangeStmt:
		z.collectExpr(s.X, conditional, sum)
		z.collectStmts(s.Body.List, true, sum)
	case *ast.BlockStmt:
		z.collectStmts(s.List, conditional, sum)
	case *ast.LabeledStmt:
		z.collectStmt(s.Stmt, conditional, sum)
	case *ast.GoStmt:
		z.collectExpr(s.Call, true, sum)
	case *ast.DeferStmt:
		z.collectExpr(s.Call, true, sum)
	case *ast.ExprStmt:
		z.collectExpr(s.X, conditional, sum)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			z.collectExpr(r, conditional, sum)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			z.collectExpr(r, conditional, sum)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				z.collectExpr(e, conditional, sum)
				return false
			}
			return true
		})
	case *ast.SendStmt:
		z.collectExpr(s.Value, conditional, sum)
	}
}

// collectExpr scans one expression for p2p calls, spliced local and
// closure calls, and comm-escaping opaque calls, in source order.
func (z *p2pPass) collectExpr(e ast.Expr, conditional bool, sum *p2pSummary) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs at some unknowable time; its events
			// are conditional by construction.
			z.collectStmts(n.Body.List, true, sum)
			return false
		case *ast.CallExpr:
			for _, arg := range n.Args {
				z.collectExpr(arg, conditional, sum)
			}
			if sig, ok := z.p2pCall(n); ok {
				sum.events = append(sum.events, z.eventFor(n, sig, conditional))
				return false
			}
			if !z.noSplice {
				if fn := z.localCallee(n); fn != nil {
					z.splice(n, z.summarize(fn), conditional, sum)
					return false
				}
				if lit := z.closureCallee(n); lit != nil {
					z.splice(n, z.summarizeLit(lit), conditional, sum)
					return false
				}
			}
			// A call that hands a Comm or Transport to code this package
			// cannot see may carry p2p traffic; record the opacity.
			for _, arg := range n.Args {
				if isCommType(z.p.Info.TypeOf(arg)) {
					sum.events = append(sum.events, p2pEvent{
						opaque: true, node: n, site: z.site(n), conditional: conditional,
					})
					break
				}
			}
			z.collectExpr(n.Fun, conditional, sum)
			return false
		}
		return true
	})
}

// eventFor builds the event for one direct p2p call.
func (z *p2pPass) eventFor(call *ast.CallExpr, sig p2pSig, conditional bool) p2pEvent {
	ev := p2pEvent{
		dir:          sig.dir,
		blocking:     sig.blocking,
		tagParam:     -1,
		payloadParam: -1,
		report:       true,
		node:         call,
		site:         z.site(call),
		conditional:  conditional,
	}
	if sig.tagArg < len(call.Args) {
		tagExpr := call.Args[sig.tagArg]
		ev.tag = z.resolveTag(tagExpr)
		if !ev.tag.known {
			ev.tagParam = z.paramIndex(tagExpr)
			ev.report = false // a splice that supplies the tag reports
		}
	}
	if sig.dir == dirSend && sig.payloadArg >= 0 && sig.payloadArg < len(call.Args) {
		ev.payload = call.Args[sig.payloadArg]
		ev.payloadPkg = z.p
		ev.payloadParam = z.paramIndex(ev.payload)
	}
	return ev
}

// splice copies a callee summary into sum at a call site, substituting
// tag and payload arguments through parameter positions. The copy whose
// substitution resolves a previously-unknown tag becomes the reporting
// copy; deeper copies keep the trace but stay silent.
func (z *p2pPass) splice(call *ast.CallExpr, callee *p2pSummary, conditional bool, sum *p2pSummary) {
	for _, ev := range callee.events {
		ev.conditional = ev.conditional || conditional
		ev.report = false
		ev.node = call
		if !ev.tag.known && ev.tagParam >= 0 && ev.tagParam < len(call.Args) && call.Ellipsis == token.NoPos {
			arg := call.Args[ev.tagParam]
			if tf := z.resolveTag(arg); tf.known {
				ev.tag = tf
				ev.tagParam = -1
				ev.report = true
				ev.site = z.site(call)
			} else {
				ev.tagParam = z.paramIndex(arg)
			}
		}
		if ev.payloadParam >= 0 && ev.payloadParam < len(call.Args) && call.Ellipsis == token.NoPos {
			arg := call.Args[ev.payloadParam]
			ev.payload = arg
			ev.payloadPkg = z.p
			ev.payloadParam = z.paramIndex(arg)
		}
		sum.events = append(sum.events, ev)
	}
}

// --- affine payload lengths ---

// byteLenAffine resolves the byte length of a []byte-valued expression
// into k*DIM+c form.
func (z *p2pPass) byteLenAffine(e ast.Expr, depth int) affine {
	if depth > 6 {
		return affine{}
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return affine{0, 0, true}
		}
		obj := z.p.Info.Uses[e]
		if obj == nil {
			return affine{}
		}
		if def, ok := z.varDef[obj]; ok {
			return z.byteLenAffine(def, depth+1)
		}
		return affine{}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if _, keyed := el.(*ast.KeyValueExpr); keyed {
				return affine{}
			}
		}
		return affine{0, len(e.Elts), true}
	case *ast.SliceExpr:
		lo := affine{0, 0, true}
		if e.Low != nil {
			lo = z.intAffine(e.Low, depth+1)
		}
		if e.High == nil {
			return affine{}
		}
		return z.intAffine(e.High, depth+1).sub(lo)
	case *ast.CallExpr:
		if z.p.isBuiltin(e, "append") && len(e.Args) >= 1 {
			base := z.byteLenAffine(e.Args[0], depth+1)
			if e.Ellipsis != token.NoPos {
				if len(e.Args) != 2 {
					return affine{}
				}
				return base.add(z.byteLenAffine(e.Args[1], depth+1))
			}
			return base.add(affine{0, len(e.Args) - 1, true})
		}
		if z.p.isBuiltin(e, "make") && len(e.Args) >= 2 {
			return z.intAffine(e.Args[1], depth+1)
		}
		if fn := z.localCallee(e); fn != nil {
			return z.funcByteLen(fn, depth+1)
		}
		return affine{}
	}
	return affine{}
}

// intAffine resolves an int-valued expression into k*DIM+c form, where
// every non-constant atom (len calls, fields, variables) is DIM. Sound
// only because the protocols here have a single free dimension; a
// mismatch is reported only when both sides resolve.
func (z *p2pPass) intAffine(e ast.Expr, depth int) affine {
	if depth > 8 {
		return affine{}
	}
	e = unparen(e)
	if v, ok := z.constInt(e); ok {
		return affine{0, v, true}
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		x, y := z.intAffine(e.X, depth+1), z.intAffine(e.Y, depth+1)
		switch e.Op {
		case token.ADD:
			return x.add(y)
		case token.SUB:
			return x.sub(y)
		case token.MUL:
			if x.ok && x.dim == 0 {
				return y.scale(x.c)
			}
			if y.ok && y.dim == 0 {
				return x.scale(y.c)
			}
			return affine{}
		}
		return affine{}
	case *ast.CallExpr:
		if z.p.isBuiltin(e, "len") {
			return affine{1, 0, true}
		}
		return affine{}
	case *ast.Ident, *ast.SelectorExpr:
		return affine{1, 0, true}
	}
	return affine{}
}

// funcByteLen summarizes the byte length of a local []byte-returning
// function (the wire encoders): resolvable only when every return path
// agrees on one affine form.
func (z *p2pPass) funcByteLen(fn *types.Func, depth int) affine {
	if a, ok := z.funcLens[fn]; ok {
		return a
	}
	if z.funcLenBusy[fn] || depth > 6 {
		return affine{}
	}
	z.funcLenBusy[fn] = true
	defer func() { z.funcLenBusy[fn] = false }()
	fd := z.decls[fn]
	result := affine{}
	if fd != nil {
		first := true
		agree := true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			if len(ret.Results) != 1 {
				agree = false
				return true
			}
			a := z.byteLenAffine(ret.Results[0], depth+1)
			if !a.ok {
				agree = false
				return true
			}
			if first {
				result, first = a, false
			} else if !result.equal(a) {
				agree = false
			}
			return true
		})
		if first || !agree {
			result = affine{}
		}
	}
	z.funcLens[fn] = result
	return result
}
