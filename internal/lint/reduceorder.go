package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReduceOrder flags goroutine fan-in that folds worker results into a
// float accumulator in channel-arrival order: `total += <-ch` in a loop,
// or `for r := range ch { total += r.x }`. Arrival order depends on the
// scheduler, so the float sum reassociates differently on every run —
// the software analogue of a nondeterministic MPI reduction, and the
// failure mode the paper's fixed-order collectives (and internal/mpi's
// deterministic tree reduction) are designed out of.
//
// The sanctioned fan-in is a by-index merge: each worker writes its
// result to results[i] (disjoint slots), the loop only counts
// completions, and a final sequential pass folds results[0..n) in fixed
// index order. internal/blas's blocked GEMM and internal/mpi's tree
// reduction are the reference implementations.
type ReduceOrder struct{}

// Name implements Analyzer.
func (ReduceOrder) Name() string { return "reduceorder" }

// Doc implements Analyzer.
func (ReduceOrder) Doc() string {
	return "float accumulation in channel-arrival order (worker fan-in); " +
		"merge into results[i] by worker index and reduce sequentially instead"
}

// Run implements Analyzer.
func (r ReduceOrder) Run(p *Package) []Finding {
	var out []Finding
	flagged := map[ast.Node]bool{}

	p.inspectWithStack(func(n ast.Node, stack []ast.Node) bool {
		var body *ast.BlockStmt
		recvVars := map[types.Object]bool{}
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			if !p.isChanType(loop.X) {
				return true
			}
			body = loop.Body
			// Ranging a channel binds each received value to Key.
			if id, ok := loop.Key.(*ast.Ident); ok {
				if obj := p.objOf(id); obj != nil {
					recvVars[obj] = true
				}
			}
		default:
			return true
		}

		// Pass 1: variables assigned from channel receives in this loop.
		ast.Inspect(body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok {
				return true
			}
			fromRecv := false
			for _, rhs := range as.Rhs {
				if exprContains(rhs, isRecvExpr) {
					fromRecv = true
				}
			}
			if !fromRecv {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := p.objOf(id); obj != nil {
						recvVars[obj] = true
					}
				}
			}
			return true
		})

		// Pass 2: float accumulation of received values into state that
		// outlives the loop.
		ast.Inspect(body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || flagged[as] || !p.isCompoundFloat(as) || !p.declaredOutside(as.Lhs[0], n) {
				return true
			}
			usesRecv := exprContains(as.Rhs[0], func(m ast.Node) bool {
				if isRecvExpr(m) {
					return true
				}
				id, ok := m.(*ast.Ident)
				return ok && recvVars[p.objOf(id)]
			})
			if !usesRecv {
				return true
			}
			flagged[as] = true
			out = append(out, p.finding(r, SevError, as,
				"float accumulator %s folds channel results in arrival order; "+
					"write each worker's result to results[i] and reduce by index",
				types.ExprString(as.Lhs[0])))
			return true
		})
		return true
	})
	return out
}

// isRecvExpr reports whether n is a channel receive <-ch.
func isRecvExpr(n ast.Node) bool {
	ue, ok := n.(*ast.UnaryExpr)
	return ok && ue.Op == token.ARROW
}
