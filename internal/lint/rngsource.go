package lint

import (
	"go/ast"
	"go/types"
)

// RngSource flags the global math/rand source and time-derived seeds in
// the numerical compute packages (internal/nn, hf, core, blas, seq).
// Gauss-Newton curvature sampling, Glorot initialization and SGD
// shuffling must all flow from an explicit *rand.Rand seeded from
// config: the package-level math/rand functions share one process-wide
// source, so any other goroutine's draw (or a test running in parallel)
// perturbs the stream, and a time-derived seed makes two "identical"
// runs start from different parameters — either one silently defeats the
// replay gate (core.ReplayVerify) and the paper's reproducibility claim.
//
// Allowed: rand.New, rand.NewSource and rand.NewZipf (constructors that
// feed or consume an explicit source), and all methods on a *rand.Rand
// value.
type RngSource struct{}

// Name implements Analyzer.
func (RngSource) Name() string { return "rngsource" }

// Doc implements Analyzer.
func (RngSource) Doc() string {
	return "global math/rand draw or time-derived seed in a compute package; " +
		"plumb an explicit *rand.Rand seeded from config"
}

// randAllowed lists the package-level math/rand functions that construct
// or feed explicit sources rather than drawing from the global one.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Run implements Analyzer.
func (r RngSource) Run(p *Package) []Finding {
	if !inNumericScope(p, r.Name()) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil {
				return true
			}
			path := pkgPath(fn)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are the sanctioned form
			}
			if !randAllowed[fn.Name()] {
				out = append(out, p.finding(r, SevError, call,
					"rand.%s draws from the process-wide global source; "+
						"use an explicit *rand.Rand seeded from config", fn.Name()))
				return true
			}
			// Constructor: reject wall-clock-derived seeds, which differ
			// between two otherwise identical runs. Nested rand
			// constructors are pruned — they are visited on their own.
			for _, arg := range call.Args {
				if timeCall := findTimeCall(p, arg); timeCall != nil {
					out = append(out, p.finding(r, SevError, timeCall,
						"time-derived seed in rand.%s; seed from config so two runs with "+
							"the same configuration draw the same stream", fn.Name()))
					break
				}
			}
			return true
		})
	}
	return out
}

// findTimeCall returns the first call to a time-package function or
// method inside e, skipping subtrees rooted at nested math/rand
// constructor calls (they are reported at their own position).
func findTimeCall(p *Package, e ast.Expr) (found *ast.CallExpr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.calleeFunc(call)
		if fn == nil {
			return true
		}
		switch pkgPath(fn) {
		case "math/rand", "math/rand/v2":
			return false
		case "time":
			found = call
			return false
		}
		return true
	})
	return found
}
