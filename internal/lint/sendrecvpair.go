package lint

// SendRecvPair does per-path pairing of the point-to-point surface,
// the p2p analogue of commcheck's collective diffing. Two hazards:
//
//   - a blocking receive (Recv/RecvBytes/RecvF32/RecvInts — no
//     deadline) on a statically-known tag that no code path in the
//     package ever sends: the counterpart role's send is missing and
//     the receiver hangs forever;
//   - the recv-before-send deadlock between two straight-line role
//     functions: f blocks receiving tag T1 and only later sends T2,
//     while g blocks receiving T2 and only later sends T1 — each side
//     waits for a message the other sends only after its own receive.
//
// Deadline-bounded receives (RecvBytesTimeout, RecvTimeout, Irecv) are
// exempt: they are the eviction path, not a hang. Ordering claims are
// made only for functions whose p2p trace is linear — unconditional
// and free of opaque comm-escaping calls. The mpi package itself is
// exempt, as for commcheck.

import (
	"go/types"
)

type SendRecvPair struct{}

func (SendRecvPair) Name() string { return "sendrecvpair" }

func (SendRecvPair) Doc() string {
	return "p2p pairing: blocking receives on tags no package path sends, and recv-before-send deadlocks between straight-line role functions"
}

func (c SendRecvPair) Run(p *Package) []Finding {
	if p.ImportPath == mpiPkgPath {
		return nil
	}
	z := newP2PPass(p)

	type fnTrace struct {
		name string
		sum  *p2pSummary
	}
	var fns []fnTrace
	for _, fd := range z.orderedDecls() {
		fn, ok := p.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		fns = append(fns, fnTrace{name: fd.Name.Name, sum: z.summarize(fn)})
	}

	// Every tag value some path in this package sends.
	sendVals := map[int]bool{}
	for _, f := range fns {
		for _, ev := range f.sum.events {
			if !ev.opaque && ev.dir == dirSend && ev.tag.known && !ev.tag.anyTag {
				sendVals[ev.tag.val] = true
			}
		}
	}

	var out []Finding

	// Blocking receives with no matching send anywhere in the package.
	for _, f := range fns {
		for _, ev := range f.sum.events {
			if ev.opaque || ev.dir != dirRecv || !ev.blocking || !ev.tag.known || ev.tag.anyTag || !ev.report {
				continue
			}
			if !sendVals[ev.tag.val] {
				out = append(out, p.finding(c, SevError, ev.node,
					"blocking receive on tag %s but no code path in this package sends it: the counterpart role's send is missing",
					ev.tag.render()))
			}
		}
	}

	// Recv-before-send deadlock between two linear role functions.
	sendAfter := func(sum *p2pSummary, idx, val int) bool {
		for _, ev := range sum.events[idx+1:] {
			if !ev.opaque && ev.dir == dirSend && ev.tag.known && !ev.tag.anyTag && ev.tag.val == val {
				return true
			}
		}
		return false
	}
	for i, f := range fns {
		if !f.sum.linear() {
			continue
		}
	pair:
		for j, g := range fns {
			if i == j || !g.sum.linear() {
				continue
			}
			for a, evA := range f.sum.events {
				if evA.dir != dirRecv || !evA.blocking || !evA.tag.known || evA.tag.anyTag {
					continue
				}
				for x, evX := range g.sum.events {
					if evX.dir != dirRecv || !evX.blocking || !evX.tag.known || evX.tag.anyTag {
						continue
					}
					if sendAfter(f.sum, a, evX.tag.val) && sendAfter(g.sum, x, evA.tag.val) {
						out = append(out, p.finding(c, SevError, evA.node,
							"recv-before-send deadlock: %s blocks receiving tag %s while %s blocks receiving tag %s (at %s), and each side sends only after its receive",
							f.name, evA.tag.render(), g.name, evX.tag.render(), evX.site))
						continue pair
					}
				}
			}
		}
	}

	return out
}
