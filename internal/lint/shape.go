package lint

// Shape is the interprocedural shape & buffer-layout verifier for the
// numeric core. Training-stack state moves as raw []float32 and
// tensor.Matrix buffers whose dimensional consistency the type system
// cannot see; the single most common failure class in a GEMM-shaped
// trainer is a shape or offset mismatch that silently reads the wrong
// parameters. Public numeric APIs declare lightweight contracts
// (//lint:shape, parsed in shapecontract.go) and the analyzer
// propagates symbolic dimensions (shapedim.go) through every function
// body in the module, reporting three hazard classes:
//
//  1. dim-mismatch: a call site whose operand dimensions provably
//     disagree with the callee's contract — provably means the
//     symbolic parts cancel and a nonzero constant remains, a
//     disagreement no execution can reconcile;
//  2. unguarded-unprovable: a call site whose dimensions cannot be
//     proven, where neither a dominating caller-side guard
//     (check.Dims/check.Layout or a panic/return-backed length guard)
//     nor a runtime guard in the callee body covers the call — the
//     contract is enforced nowhere;
//  3. partition gap/overlap: sub-slices p[off:off+w] of one flat
//     buffer taken against a running offset whose advances provably
//     disagree with the widths sliced (overlapping or skipping
//     elements), or whose straight-line total provably misses the
//     buffer's length.
//
// The abstract interpretation is deliberately conservative: branch
// environments are joined (facts that disagree across arms are
// dropped), loops are walked once, and every fact that cannot be
// established decays to ⊤. Mismatch and partition findings therefore
// only fire on disagreements that hold on every execution.

import (
	"go/ast"
	"go/types"
)

// Shape is the module-scoped shape/layout analyzer ("shape" in
// //lint:ignore directives and -only selections).
type Shape struct{}

func (Shape) Name() string { return "shape" }

func (Shape) Doc() string {
	return "interprocedural shape verification: symbolic dims propagated against //lint:shape contracts (provable operand mismatches, unprovable-and-unguarded calls) and flat-buffer partition gap/overlap checks"
}

// contractInfo pairs a parsed contract with its declaration.
type contractInfo struct {
	c    *shapeContract
	p    *Package
	decl *ast.FuncDecl
	fn   *types.Func
}

// shapeCtx is the module-wide analysis state.
type shapeCtx struct {
	a         Shape
	contracts map[*types.Func]*contractInfo
	panicFns  map[*types.Func]bool // functions whose bodies contain a direct panic
	findings  []Finding
}

func (a Shape) RunModule(pkgs []*Package) []Finding {
	ctx := &shapeCtx{
		a:         a,
		contracts: map[*types.Func]*contractInfo{},
		panicFns:  map[*types.Func]bool{},
	}
	// Pass 1: collect contracts and direct panickers module-wide.
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if fd.Body != nil && bodyPanicsDirectly(fd.Body) {
					ctx.panicFns[fn] = true
				}
				text, ok := shapeAnnotation(fd)
				if !ok {
					continue
				}
				c, err := parseShapeContract(text)
				if err != nil {
					ctx.findings = append(ctx.findings, p.finding(a, SevError, fd.Name,
						"malformed //lint:shape contract: %v", err))
					continue
				}
				if bad := c.validateNames(fd); bad != "" {
					ctx.findings = append(ctx.findings, p.finding(a, SevError, fd.Name,
						"//lint:shape contract names %q, which is not a parameter of %s", bad, fd.Name.Name))
					continue
				}
				ctx.contracts[fn] = &contractInfo{c: c, p: p, decl: fd, fn: fn}
			}
		}
	}
	// Pass 2: decide runtime enforcement per contract. A contract whose
	// body carries a dimension guard discharges unprovable call sites —
	// the check the analyzer cannot complete statically happens at run
	// time instead (this is how the check.Dims guards of satellite
	// hardening become proof).
	for _, ci := range ctx.contracts {
		ci.c.enforced = ctx.bodyEnforces(ci.p, ci.decl)
	}
	// Pass 3: interpret every function body.
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				in := newShapeInterp(ctx, p, fd)
				in.walkStmt(fd.Body)
				in.finishPartitions()
			}
		}
	}
	return ctx.findings
}

// shapeAnnotation extracts the //lint:shape directive text from a
// declaration's doc comment.
func shapeAnnotation(fd *ast.FuncDecl) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		text := strimPrefixSpace(c.Text)
		if rest, ok := cutPrefix(text, shapeDirective); ok {
			return rest, true
		}
	}
	return "", false
}

func strimPrefixSpace(comment string) string {
	s := comment
	if len(s) >= 2 && s[0] == '/' && s[1] == '/' {
		s = s[2:]
	}
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	return s
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// validateNames checks every contracted operand and swap flag against
// the declaration's parameter (and receiver) names, returning the
// first unknown name.
func (c *shapeContract) validateNames(fd *ast.FuncDecl) string {
	names := map[string]bool{}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		names[fd.Recv.List[0].Names[0].Name] = true
	}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			names[n.Name] = true
		}
	}
	for _, s := range c.slots {
		if !names[s.name] {
			return s.name
		}
	}
	for flag, op := range c.swaps {
		if !names[flag] {
			return flag
		}
		if op != "return" && !names[op] {
			return op
		}
	}
	return ""
}

// bodyPanicsDirectly reports whether a body contains a direct call to
// the panic builtin.
func bodyPanicsDirectly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyEnforces reports whether a contracted function's body carries a
// runtime dimension guard: a check.Dims/check.Layout call, a direct
// panic, or a call to a same-package function that panics directly
// (the cold fail-fast helper idiom, e.g. blas.lenMismatch).
func (ctx *shapeCtx) bodyEnforces(p *Package, fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	enforced := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !enforced
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			enforced = true
			return false
		}
		if isCheckDimsCall(p, call) {
			enforced = true
			return false
		}
		if fn := p.calleeFunc(call); fn != nil && fn.Pkg() == p.Types && ctx.panicFns[fn] {
			enforced = true
			return false
		}
		return true
	})
	return enforced
}

// isCheckDimsCall reports whether call invokes check.Dims or
// check.Layout (the runtime mirrors of the static contracts).
func isCheckDimsCall(p *Package, call *ast.CallExpr) bool {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "check" {
		return false
	}
	return fn.Name() == "Dims" || fn.Name() == "Layout"
}
