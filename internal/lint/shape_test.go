package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestShapeFixture runs the module-scoped shape analyzer over its
// seeded-bad fixture plus the clean package (whose sanctioned contract
// calls and exact partition must stay silent) and asserts golden
// positions.
func TestShapeFixture(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		filepath.Join(root, "internal/lint/testdata/src/shape"),
		filepath.Join(root, "internal/lint/testdata/src/clean"),
	}
	res, err := RunDirsFull(root, dirs, nil, []ModuleAnalyzer{Shape{}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"59:2 shape error",  // mismatchDims: b rows 5 vs k=4
		"68:2 shape error",  // mismatchTranspose: b rows 4 vs k=3 under tA=true
		"74:2 shape warn",   // unprovable: opaque lengths, no guard anywhere
		"94:2 shape error",  // partitionOverlap: advance 8 after 12-wide slice
		"107:2 shape error", // partitionGap: advance 13 after 12-wide slice
		"122:2 shape error", // partitionShort: covers 32 of 40 elements
		"129:6 shape error", // BadContract: unparseable annotation
		"136:6 shape error", // BadOperand: names a non-parameter
	}
	var got []string
	for _, f := range res.Findings {
		if filepath.Base(f.File) != "shape.go" {
			t.Errorf("finding outside shape.go: %s", f)
			continue
		}
		got = append(got, fmt.Sprintf("%d:%d %s %s", f.Line, f.Col, f.Analyzer, f.Severity))
	}
	if !equalStrings(got, want) {
		t.Errorf("shape findings:\ngot  %v\nwant %v", got, want)
	}
}

// TestSdimAlgebra pins the normal-form arithmetic the shape analyzer
// unifies with: canonical products, cancellation, and the three-valued
// comparison.
func TestSdimAlgebra(t *testing.T) {
	m := sdimTerm("m#1", "m")
	k := sdimTerm("k#2", "k")

	if rel := m.mul(k).compare(k.mul(m)); rel != dimEqual {
		t.Errorf("m*k vs k*m = %v, want dimEqual", rel)
	}
	if rel := m.add(sdimConst(4)).compare(m); rel != dimDiffers {
		t.Errorf("m+4 vs m = %v, want dimDiffers", rel)
	}
	if rel := m.compare(k); rel != dimUnknown {
		t.Errorf("m vs k = %v, want dimUnknown (distinct symbols may coincide)", rel)
	}
	if rel := sdimConst(3).compare(sdimConst(4)); rel != dimDiffers {
		t.Errorf("3 vs 4 = %v, want dimDiffers", rel)
	}
	if rel := m.compare(sdimUnknown); rel != dimUnknown {
		t.Errorf("m vs unknown = %v, want dimUnknown", rel)
	}
	// (m+2)*(k+3) expands to mk+3m+2k+6; subtracting the cross terms
	// must leave the constant.
	prod := m.add(sdimConst(2)).mul(k.add(sdimConst(3)))
	rest := prod.sub(m.mul(k)).sub(m.mul(sdimConst(3))).sub(k.mul(sdimConst(2)))
	if c, ok := rest.isConst(); !ok || c != 6 {
		t.Errorf("expansion remainder = %v (const=%v), want 6", rest.render(), ok)
	}
	if got := m.mul(k).sub(k.mul(m)).key(); got != "0" {
		t.Errorf("canceled product key = %q, want \"0\"", got)
	}
	if got := stripTermPositions("len(g#1234)*out#9"); got != "len(g)*out" {
		t.Errorf("stripTermPositions = %q", got)
	}
}

// TestParseShapeContract pins the annotation grammar.
func TestParseShapeContract(t *testing.T) {
	c, err := parseShapeContract("a=(m,k) b=(k,n) c=(m,n) tA:swap=a tB:swap=b")
	if err != nil {
		t.Fatalf("gemm contract: %v", err)
	}
	if len(c.slots) != 3 || !c.slots[0].mat || c.swaps["tA"] != "a" || c.swaps["tB"] != "b" {
		t.Errorf("gemm contract parsed wrong: %+v", c)
	}
	if syms := c.symbols(); syms["m"] != 2 || syms["k"] != 2 || syms["n"] != 2 {
		t.Errorf("gemm symbol counts = %v", c.symbols())
	}

	c, err = parseShapeContract("data=r*c return=(r,c)")
	if err != nil {
		t.Fatalf("fromslice contract: %v", err)
	}
	if c.ret == nil || !c.ret.mat || c.ret.rows.String() != "r" {
		t.Errorf("fromslice return slot = %+v", c.ret)
	}
	if c.slots[0].rows.String() != "r*c" {
		t.Errorf("product dim = %q, want r*c", c.slots[0].rows.String())
	}

	c, err = parseShapeContract("b=z.Cols x=m.Topo.Sizes")
	if err != nil {
		t.Fatalf("field contract: %v", err)
	}
	if c.slots[0].rows.String() != "z.Cols" || c.slots[1].rows.String() != "m.Topo.Sizes" {
		t.Errorf("field dims = %q, %q", c.slots[0].rows.String(), c.slots[1].rows.String())
	}

	for _, bad := range []string{
		"",                  // empty
		"a=(m,k",            // unterminated
		"a=(m,k,n)",         // three dims
		"a=",                // missing shape
		"=n",                // missing name
		"a=(m,k) a=(m,k)",   // duplicate operand
		"tA:swap=a",         // swap of an uncontracted operand
		"a=m+",              // dangling operator
		"a=(m,k) tB:swap=",  // swap without operand
		"return=n return=n", // duplicate return
		"a=2m",              // malformed term
	} {
		if _, err := parseShapeContract(bad); err == nil {
			t.Errorf("parseShapeContract(%q): want error, got none", bad)
		}
	}
}

// TestShapeAnalyzerRegistered pins shape's membership in the module
// suite (repolint -only shape resolves through ModuleAnalyzers).
func TestShapeAnalyzerRegistered(t *testing.T) {
	for _, m := range ModuleAnalyzers() {
		if m.Name() == "shape" {
			if !strings.Contains(m.Doc(), "shape") {
				t.Errorf("shape doc does not describe itself: %q", m.Doc())
			}
			return
		}
	}
	t.Error("shape analyzer not registered in ModuleAnalyzers")
}
