package lint

// Parsing of //lint:shape contract annotations. A contract documents
// the dimensional relationships a numeric function imposes on its
// operands, in terms the analyzer can unify at every call site:
//
//	//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a tB:swap=b
//	//lint:shape x=n y=n
//	//lint:shape data=r*c return=(r,c)
//	//lint:shape b=z.Cols
//
// Clause forms (whitespace separates clauses; a clause contains none):
//
//   - name=(d1,d2) — parameter name is a matrix whose op-shape is
//     d1×d2;
//   - name=d — parameter name is a slice/vector of length d (or, for an
//     integer parameter, binds the symbol d to its value);
//   - return=... — the function result carries the given shape;
//   - flag:swap=name — when the argument for boolean/Transpose
//     parameter flag is constant true at a call site, the declared
//     dims of operand name are transposed; a non-constant flag makes
//     that operand's dims unprovable at the site.
//
// Dimension expressions are products and sums of integer literals,
// unification symbols (single identifiers, e.g. m, k, n — bound per
// call site, in clause order, to the first operand that pins them),
// and parameter field paths (e.g. m.Cols, net.Topo.Sizes), with *
// binding tighter than +.

import (
	"fmt"
	"go/token"
	"strconv"
	"strings"
)

// shapeDirective is the contract annotation marker.
const shapeDirective = "lint:shape"

// dimExpr is a parsed contract dimension expression.
type dimExpr interface{ String() string }

// dimConst is an integer literal dimension.
type dimConst int64

func (d dimConst) String() string { return strconv.FormatInt(int64(d), 10) }

// dimSym is a unification symbol (or an integer parameter reference —
// the distinction is resolved against the callee signature per site).
type dimSym string

func (d dimSym) String() string { return string(d) }

// dimField is a field path rooted at a parameter: m.Cols, f.X.Rows.
type dimField struct {
	param string
	path  []string
}

func (d dimField) String() string { return d.param + "." + strings.Join(d.path, ".") }

// dimBin is a product or sum of two dimension expressions.
type dimBin struct {
	op   byte // '*' or '+'
	x, y dimExpr
}

func (d dimBin) String() string { return d.x.String() + string(d.op) + d.y.String() }

// shapeSlot is one contracted operand.
type shapeSlot struct {
	name string  // parameter or receiver name ("return" for the result)
	mat  bool    // matrix (rows×cols) vs vector/scalar (rows only)
	rows dimExpr // the single length expression for vectors
	cols dimExpr // nil unless mat
}

// shapeContract is one function's parsed //lint:shape annotation.
type shapeContract struct {
	slots []shapeSlot       // operand contracts in annotation order
	ret   *shapeSlot        // result contract, if declared
	swaps map[string]string // transpose-flag param → operand slot name
	pos   token.Pos         // the annotated declaration (for findings)

	// enforced records whether the function body carries a runtime
	// dimension guard (check.Dims/check.Layout, or a panic-backed
	// guard); unprovable call sites of enforced contracts are
	// discharged by the runtime check instead of warned on.
	enforced bool
}

// slot returns the contract slot for a parameter name.
func (c *shapeContract) slot(name string) *shapeSlot {
	for i := range c.slots {
		if c.slots[i].name == name {
			return &c.slots[i]
		}
	}
	return nil
}

// symbols returns every unification symbol with its number of uses
// across all slots (the unguarded-unprovable check only fires for
// symbols that relate at least two dimensions).
func (c *shapeContract) symbols() map[string]int {
	count := map[string]int{}
	visit := func(e dimExpr) {
		walkDimExpr(e, func(e dimExpr) {
			if s, ok := e.(dimSym); ok {
				count[string(s)]++
			}
		})
	}
	for _, s := range c.slots {
		visit(s.rows)
		if s.mat {
			visit(s.cols)
		}
	}
	if c.ret != nil {
		visit(c.ret.rows)
		if c.ret.mat {
			visit(c.ret.cols)
		}
	}
	return count
}

// walkDimExpr applies fn to e and every subexpression.
func walkDimExpr(e dimExpr, fn func(dimExpr)) {
	if e == nil {
		return
	}
	fn(e)
	if b, ok := e.(dimBin); ok {
		walkDimExpr(b.x, fn)
		walkDimExpr(b.y, fn)
	}
}

// parseShapeContract parses the text after the lint:shape marker.
func parseShapeContract(text string) (*shapeContract, error) {
	c := &shapeContract{swaps: map[string]string{}}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty contract")
	}
	for _, f := range fields {
		if name, op, ok := splitClause(f, ":swap="); ok {
			if op == "" {
				return nil, fmt.Errorf("clause %q: swap needs an operand name", f)
			}
			c.swaps[name] = op
			continue
		}
		name, rhs, ok := splitClause(f, "=")
		if !ok || name == "" || rhs == "" {
			return nil, fmt.Errorf("clause %q: want name=shape or flag:swap=operand", f)
		}
		slot, err := parseSlot(name, rhs)
		if err != nil {
			return nil, fmt.Errorf("clause %q: %v", f, err)
		}
		if name == "return" {
			if c.ret != nil {
				return nil, fmt.Errorf("clause %q: duplicate return contract", f)
			}
			c.ret = slot
			continue
		}
		if c.slot(name) != nil {
			return nil, fmt.Errorf("clause %q: duplicate operand %s", f, name)
		}
		c.slots = append(c.slots, *slot)
	}
	if len(c.slots) == 0 && c.ret == nil {
		return nil, fmt.Errorf("contract declares no operands")
	}
	for flag, op := range c.swaps {
		if op != "return" && c.slot(op) == nil {
			return nil, fmt.Errorf("swap %s:swap=%s: no contract for operand %s", flag, op, op)
		}
	}
	return c, nil
}

// splitClause splits "name<sep>rhs", requiring sep outside parentheses.
func splitClause(s, sep string) (name, rhs string, ok bool) {
	i := strings.Index(s, sep)
	if i < 0 {
		return "", "", false
	}
	return s[:i], s[i+len(sep):], true
}

// parseSlot parses the right-hand side of a clause: "(d1,d2)" or a
// single dimension expression.
func parseSlot(name, rhs string) (*shapeSlot, error) {
	if strings.HasPrefix(rhs, "(") {
		if !strings.HasSuffix(rhs, ")") {
			return nil, fmt.Errorf("unterminated shape %q", rhs)
		}
		inner := rhs[1 : len(rhs)-1]
		parts := strings.Split(inner, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("matrix shape %q needs exactly (rows,cols)", rhs)
		}
		rowsE, err := parseDimExpr(parts[0])
		if err != nil {
			return nil, err
		}
		colsE, err := parseDimExpr(parts[1])
		if err != nil {
			return nil, err
		}
		return &shapeSlot{name: name, mat: true, rows: rowsE, cols: colsE}, nil
	}
	e, err := parseDimExpr(rhs)
	if err != nil {
		return nil, err
	}
	return &shapeSlot{name: name, rows: e}, nil
}

// parseDimExpr parses sums of products of atoms.
func parseDimExpr(s string) (dimExpr, error) {
	if s == "" {
		return nil, fmt.Errorf("empty dimension expression")
	}
	var sum dimExpr
	for _, addend := range strings.Split(s, "+") {
		var prod dimExpr
		for _, factor := range strings.Split(addend, "*") {
			atom, err := parseDimAtom(factor)
			if err != nil {
				return nil, err
			}
			if prod == nil {
				prod = atom
			} else {
				prod = dimBin{op: '*', x: prod, y: atom}
			}
		}
		if sum == nil {
			sum = prod
		} else {
			sum = dimBin{op: '+', x: sum, y: prod}
		}
	}
	return sum, nil
}

// parseDimAtom parses one literal, symbol or field path.
func parseDimAtom(s string) (dimExpr, error) {
	if s == "" {
		return nil, fmt.Errorf("empty term in dimension expression")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return dimConst(n), nil
	}
	parts := strings.Split(s, ".")
	for _, p := range parts {
		if !isIdent(p) {
			return nil, fmt.Errorf("bad dimension term %q", s)
		}
	}
	if len(parts) == 1 {
		return dimSym(parts[0]), nil
	}
	return dimField{param: parts[0], path: parts[1:]}, nil
}

// isIdent reports whether s is a plain Go identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}
