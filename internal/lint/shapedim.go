package lint

// Symbolic dimensions for the shape analyzer. A dimension is an abstract
// integer value — a matrix extent, a vector length, a running buffer
// offset — represented as a linear combination of canonical product
// terms plus a constant:
//
//	3            → {c: 3}
//	len(g)       → {terms: {"len(g#123)": 1}}
//	out*in + out → {terms: {"in#7*out#9": 1, "out#9": 1}}
//
// Term keys embed the defining object's declaration position, so two
// occurrences of the same variable unify and shadowed names do not.
// The normal form makes the two questions the analyzer asks cheap:
//
//   - provably equal: identical normal forms;
//   - provably different: identical term sets whose constants differ
//     (x+4 vs x), or two plain constants (3 vs 4). Distinct symbols are
//     never "different" — m and k may coincide at run time — so
//     mismatch findings only fire on disagreements no execution can
//     reconcile.
//
// Subtraction of normal forms also gives the partition checker exact
// sub-slice widths and offset deltas for free.

import (
	"fmt"
	"sort"
	"strings"
)

// sdim is one symbolic dimension in linear-combination normal form.
// The zero value is the unknown dimension ⊤.
type sdim struct {
	known bool
	c     int64            // constant part
	terms map[string]int64 // canonical product term → coefficient (no zero entries)
	disp  string           // source-level rendering for findings ("" → derived)
}

// sdimUnknown is the ⊤ dimension: nothing provable about it.
var sdimUnknown = sdim{}

// sdimConst returns the constant dimension n.
func sdimConst(n int64) sdim {
	return sdim{known: true, c: n}
}

// sdimTerm returns the dimension consisting of one symbolic atom. key
// must be canonical (object-position-qualified); disp is the
// human-readable form used in messages.
func sdimTerm(key, disp string) sdim {
	return sdim{known: true, terms: map[string]int64{key: 1}, disp: disp}
}

// isConst reports whether d is a known plain constant, and its value.
func (d sdim) isConst() (int64, bool) {
	return d.c, d.known && len(d.terms) == 0
}

// add returns a+b (⊤ if either is unknown).
func (d sdim) add(o sdim) sdim {
	if !d.known || !o.known {
		return sdimUnknown
	}
	out := sdim{known: true, c: d.c + o.c, terms: map[string]int64{}}
	for k, v := range d.terms {
		out.terms[k] += v
	}
	for k, v := range o.terms {
		out.terms[k] += v
	}
	out.trim()
	return out
}

// neg returns -d.
func (d sdim) neg() sdim {
	if !d.known {
		return sdimUnknown
	}
	out := sdim{known: true, c: -d.c, terms: map[string]int64{}}
	for k, v := range d.terms {
		out.terms[k] = -v
	}
	return out
}

// sub returns a-b.
func (d sdim) sub(o sdim) sdim { return d.add(o.neg()) }

// mul returns a·b, expanding the product of the two linear forms; term
// keys multiply by merging their sorted atom lists, so out*in and
// in*out share one canonical key.
func (d sdim) mul(o sdim) sdim {
	if !d.known || !o.known {
		return sdimUnknown
	}
	out := sdim{known: true, c: d.c * o.c, terms: map[string]int64{}}
	for k, v := range d.terms {
		if o.c != 0 {
			out.terms[k] += v * o.c
		}
	}
	for k, v := range o.terms {
		if d.c != 0 {
			out.terms[k] += v * d.c
		}
	}
	for k1, v1 := range d.terms {
		for k2, v2 := range o.terms {
			out.terms[mulTermKeys(k1, k2)] += v1 * v2
		}
	}
	out.trim()
	return out
}

// mulTermKeys merges two canonical product keys into one: each key is a
// "*"-joined sorted multiset of atoms.
func mulTermKeys(a, b string) string {
	atoms := append(strings.Split(a, "*"), strings.Split(b, "*")...)
	sort.Strings(atoms)
	return strings.Join(atoms, "*")
}

// trim drops zero coefficients so equal forms compare equal.
func (d *sdim) trim() {
	for k, v := range d.terms {
		if v == 0 {
			delete(d.terms, k)
		}
	}
}

// dimRelation is the three-valued outcome of comparing two dimensions.
type dimRelation int

const (
	dimUnknown dimRelation = iota // cannot be decided statically
	dimEqual                      // provably the same value
	dimDiffers                    // provably different on every execution
)

// compare relates two dimensions. Provable difference requires the
// symbolic parts to cancel exactly, leaving a nonzero constant — the
// only disagreement no runtime values can repair.
func (d sdim) compare(o sdim) dimRelation {
	if !d.known || !o.known {
		return dimUnknown
	}
	diff := d.sub(o)
	if len(diff.terms) != 0 {
		return dimUnknown
	}
	if diff.c == 0 {
		return dimEqual
	}
	return dimDiffers
}

// render produces the message form of d: the recorded source rendering
// when one exists, otherwise the normal form itself.
func (d sdim) render() string {
	if !d.known {
		return "?"
	}
	if d.disp != "" {
		return d.disp
	}
	if len(d.terms) == 0 {
		return fmt.Sprintf("%d", d.c)
	}
	keys := make([]string, 0, len(d.terms))
	for k := range d.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		v := d.terms[k]
		if i > 0 {
			if v >= 0 {
				b.WriteString("+")
			}
		}
		switch v {
		case 1:
			b.WriteString(stripTermPositions(k))
		case -1:
			b.WriteString("-" + stripTermPositions(k))
		default:
			fmt.Fprintf(&b, "%d*%s", v, stripTermPositions(k))
		}
	}
	if d.c != 0 {
		fmt.Fprintf(&b, "%+d", d.c)
	}
	return b.String()
}

// stripTermPositions removes the "#digits" position qualifiers from a
// canonical term key, recovering a readable name for findings.
func stripTermPositions(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		if key[i] == '#' {
			for i+1 < len(key) && key[i+1] >= '0' && key[i+1] <= '9' {
				i++
			}
			continue
		}
		b.WriteByte(key[i])
	}
	return b.String()
}

// withDisp returns d carrying a source-level rendering.
func (d sdim) withDisp(disp string) sdim {
	d.disp = disp
	return d
}
