package lint

// The per-function abstract interpreter behind the shape analyzer. One
// shapeInterp walks one function body in source order, maintaining an
// environment from declared objects to symbolic shapes (matrix
// dims, vector lengths, integer values — all sdims). Statements are
// interpreted structurally: branch arms are walked on cloned
// environments and joined (disagreeing facts decay to unknown), loop
// bodies are walked once with loop-assigned variables havocked to
// fresh per-loop atoms so within-iteration relationships still prove
// while cross-iteration state never leaks. Every call expression is
// checked against the callee's //lint:shape contract; every
// running-offset sub-slice feeds the partition checker.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

type shapeKind int

const (
	shapeNone shapeKind = iota
	shapeMat            // rows × cols
	shapeVec            // length
	shapeNum            // integer value
)

// objShape is the abstract value of one tracked object. An entry with
// unknown dims still matters: it blocks the stale canonical-atom
// fallback after the object has been reassigned.
type objShape struct {
	kind       shapeKind
	rows, cols sdim // shapeMat
	length     sdim // shapeVec
	val        sdim // shapeNum
}

func (s objShape) equal(o objShape) bool {
	return s.kind == o.kind && sdimEqNF(s.rows, o.rows) && sdimEqNF(s.cols, o.cols) &&
		sdimEqNF(s.length, o.length) && sdimEqNF(s.val, o.val)
}

// sdimEqNF reports normal-form equality (both unknown counts as equal —
// the join keeps no more than either side knew).
func sdimEqNF(a, b sdim) bool {
	if a.known != b.known {
		return false
	}
	if !a.known {
		return true
	}
	if a.c != b.c || len(a.terms) != len(b.terms) {
		return false
	}
	for k, v := range a.terms {
		if b.terms[k] != v {
			return false
		}
	}
	return true
}

// binding records what pinned a contract symbol at a call site.
type binding struct {
	dim sdim
	by  string // "operand x" / "parameter n"
}

// partEvent is one step of a running-offset partition: a sub-slice of
// the base with a symbolic width, or an offset advance.
type partEvent struct {
	isSlice bool
	width   sdim // slice width or advance delta
	node    ast.Node
}

// partitionSeq accumulates the events of one (base buffer, offset
// variable) pair until the offset is reset or the function ends.
type partitionSeq struct {
	baseDisp string
	offDisp  string
	baseLen  sdim // length of the base at the first sub-slice
	start    sdim // offset value at the first sub-slice
	events   []partEvent
	broken   bool // events crossed a branch or lost a width: report nothing
	inLoop   bool // any event inside a loop: adjacency only, no total
}

type partKey struct {
	base string // canonical key of the sliced buffer
	off  types.Object
}

// shapeInterp interprets one function body.
type shapeInterp struct {
	ctx    *shapeCtx
	p      *Package
	fd     *ast.FuncDecl // nil for function literals
	env    map[types.Object]objShape
	killed map[types.Object]bool // untrackable objects assigned in loops: canon roots must fail
	guards []token.Pos           // end positions of dominating runtime dim guards
	parts  map[partKey]*partitionSeq
	order  []partKey // finalize in first-slice order for deterministic findings
	loop   int       // loop nesting depth
	branch int       // branch nesting depth (if/switch/select)
}

func newShapeInterp(ctx *shapeCtx, p *Package, fd *ast.FuncDecl) *shapeInterp {
	in := &shapeInterp{
		ctx:    ctx,
		p:      p,
		fd:     fd,
		env:    map[types.Object]objShape{},
		killed: map[types.Object]bool{},
		parts:  map[partKey]*partitionSeq{},
	}
	in.seedContract()
	return in
}

// seedContract pre-binds the function's own contracted parameters with
// shared symbol atoms, so calls that pass them straight through prove:
// in CGMinimize (g=n d0=n), g and d0 carry the same length atom and the
// cgStep contract unifies without a guard.
func (in *shapeInterp) seedContract() {
	if in.fd == nil {
		return
	}
	fn, _ := in.p.Info.Defs[in.fd.Name].(*types.Func)
	ci := in.ctx.contracts[fn]
	if ci == nil {
		return
	}
	params := map[string]types.Object{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if obj := in.p.Info.Defs[n]; obj != nil {
					params[n.Name] = obj
				}
			}
		}
	}
	collect(in.fd.Recv)
	collect(in.fd.Type.Params)
	seedExpr := func(e dimExpr) sdim { return in.seedDimExpr(e, params, ci) }
	for _, s := range ci.c.slots {
		obj := params[s.name]
		if obj == nil {
			continue
		}
		if s.mat {
			in.env[obj] = objShape{kind: shapeMat, rows: seedExpr(s.rows), cols: seedExpr(s.cols)}
			continue
		}
		switch {
		case isSliceType(obj.Type()):
			in.env[obj] = objShape{kind: shapeVec, length: seedExpr(s.rows)}
		case isIntType(obj.Type()):
			in.env[obj] = objShape{kind: shapeNum, val: seedExpr(s.rows)}
		}
	}
}

// seedDimExpr evaluates a contract expression in the function's own
// frame: symbols become function-scoped atoms (shared across slots),
// except symbols naming an integer parameter, which become that
// parameter's atom so body uses of the parameter unify too.
func (in *shapeInterp) seedDimExpr(e dimExpr, params map[string]types.Object, ci *contractInfo) sdim {
	switch e := e.(type) {
	case dimConst:
		return sdimConst(int64(e))
	case dimSym:
		if obj := params[string(e)]; obj != nil && isIntType(obj.Type()) {
			return sdimTerm(objKey(obj), obj.Name())
		}
		return sdimTerm(fmt.Sprintf("sym(%s)#%d", e, ci.decl.Pos()), string(e))
	case dimField:
		obj := params[e.param]
		if obj == nil {
			return sdimUnknown
		}
		path := strings.Join(e.path, ".")
		return sdimTerm(objKey(obj)+"."+path, e.param+"."+path)
	case dimBin:
		x := in.seedDimExpr(e.x, params, ci)
		y := in.seedDimExpr(e.y, params, ci)
		if e.op == '*' {
			return x.mul(y)
		}
		return x.add(y)
	}
	return sdimUnknown
}

// objKey is the canonical atom for an object's (current) value.
func objKey(obj types.Object) string {
	return fmt.Sprintf("%s#%d", obj.Name(), obj.Pos())
}

// key serializes a normal form deterministically, for embedding inside
// canonical index atoms like Sizes[l+1].
func (d sdim) key() string {
	if !d.known {
		return "?"
	}
	keys := make([]string, 0, len(d.terms))
	for k := range d.terms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%d", d.c)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s^%d", k, d.terms[k])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Statement interpretation

func (in *shapeInterp) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			in.walkStmt(st)
		}
	case *ast.ExprStmt:
		in.scanExpr(s.X)
	case *ast.AssignStmt:
		in.walkAssign(s)
	case *ast.DeclStmt:
		in.walkDecl(s)
	case *ast.IncDecStmt:
		in.scanExpr(s.X)
		delta := int64(1)
		if s.Tok == token.DEC {
			delta = -1
		}
		in.applyAdvance(s.X, sdimConst(delta), s)
	case *ast.IfStmt:
		in.walkIf(s)
	case *ast.ForStmt:
		in.walkStmt(s.Init)
		if s.Cond != nil {
			in.scanExpr(s.Cond)
		}
		pre := in.cloneEnv()
		in.havocLoop(s.Body, s.Post)
		in.loop++
		in.walkStmt(s.Body)
		in.walkStmt(s.Post)
		in.loop--
		in.env = joinEnv(pre, in.env)
	case *ast.RangeStmt:
		in.scanExpr(s.X)
		pre := in.cloneEnv()
		in.havocLoop(s.Body, nil)
		if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
			in.havocObj(in.identObj(id))
		}
		if id, ok := s.Value.(*ast.Ident); ok && id != nil && id.Name != "_" {
			in.havocObj(in.identObj(id))
		}
		in.loop++
		in.walkStmt(s.Body)
		in.loop--
		in.env = joinEnv(pre, in.env)
	case *ast.SwitchStmt:
		in.walkStmt(s.Init)
		if s.Tag != nil {
			in.scanExpr(s.Tag)
		}
		in.walkBranches(caseBodies(s.Body))
	case *ast.TypeSwitchStmt:
		in.walkStmt(s.Init)
		in.walkBranches(caseBodies(s.Body))
	case *ast.SelectStmt:
		in.walkBranches(caseBodies(s.Body))
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			in.scanExpr(r)
		}
	case *ast.GoStmt:
		in.scanExpr(s.Call)
	case *ast.DeferStmt:
		in.scanExpr(s.Call)
	case *ast.SendStmt:
		in.scanExpr(s.Chan)
		in.scanExpr(s.Value)
	case *ast.LabeledStmt:
		in.walkStmt(s.Stmt)
	}
}

// caseBodies lists the statement bodies of switch/select clauses.
func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			if c.Comm != nil {
				out = append(out, append([]ast.Stmt{c.Comm}, c.Body...))
			} else {
				out = append(out, c.Body)
			}
		}
	}
	return out
}

// walkBranches interprets alternative arms from the same entry environment
// and joins all results with the fall-through (no arm taken).
func (in *shapeInterp) walkBranches(arms [][]ast.Stmt) {
	pre := in.cloneEnv()
	joined := in.cloneEnv()
	in.branch++
	for _, arm := range arms {
		in.env = cloneEnvMap(pre)
		for _, st := range arm {
			in.walkStmt(st)
		}
		joined = joinEnv(joined, in.env)
	}
	in.branch--
	in.env = joined
}

func (in *shapeInterp) walkIf(s *ast.IfStmt) {
	in.walkStmt(s.Init)
	in.scanExpr(s.Cond)
	pre := in.cloneEnv()
	in.branch++
	in.walkStmt(s.Body)
	thenEnv := in.env
	elseEnv := pre
	if s.Else != nil {
		in.env = cloneEnvMap(pre)
		in.walkStmt(s.Else)
		elseEnv = in.env
	}
	in.branch--
	if in.isGuardIf(s) {
		// The guarded continuation only runs when the dims agreed:
		// discharge unprovable obligations after this statement, and
		// prefer the fall-through environment (the panicking/returning
		// arm contributes no state).
		in.guards = append(in.guards, s.End())
		if s.Else == nil {
			in.env = pre
			return
		}
	}
	in.env = joinEnv(thenEnv, elseEnv)
}

// isGuardIf recognizes the runtime guard idiom: a condition that
// mentions lengths or dims whose body cannot fall through (panic, a
// fail-fast helper, or an early return).
func (in *shapeInterp) isGuardIf(s *ast.IfStmt) bool {
	mentionsDims := false
	ast.Inspect(s.Cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" {
				mentionsDims = true
			}
		case *ast.SelectorExpr:
			switch n.Sel.Name {
			case "Rows", "Cols", "Stride":
				mentionsDims = true
			}
		}
		return !mentionsDims
	})
	if !mentionsDims {
		return false
	}
	terminates := false
	ast.Inspect(s.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			terminates = true
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				terminates = true
			}
			if fn := in.p.calleeFunc(n); fn != nil && fn.Pkg() == in.p.Types && in.ctx.panicFns[fn] {
				terminates = true
			}
		}
		return !terminates
	})
	return terminates
}

// ---------------------------------------------------------------------------
// Environment maintenance

func (in *shapeInterp) cloneEnv() map[types.Object]objShape { return cloneEnvMap(in.env) }

func cloneEnvMap(env map[types.Object]objShape) map[types.Object]objShape {
	out := make(map[types.Object]objShape, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// joinEnv meets two environments: facts present and equal survive,
// anything else decays to an explicit unknown entry of the right kind
// (blocking the atom fallback — the object's value is path-dependent).
func joinEnv(a, b map[types.Object]objShape) map[types.Object]objShape {
	out := make(map[types.Object]objShape, len(a))
	for obj, sa := range a {
		if sb, ok := b[obj]; ok {
			if sa.equal(sb) {
				out[obj] = sa
			} else {
				out[obj] = objShape{kind: sa.kind}
			}
			continue
		}
		out[obj] = objShape{kind: sa.kind}
	}
	for obj, sb := range b {
		if _, ok := a[obj]; !ok {
			out[obj] = objShape{kind: sb.kind}
		}
	}
	return out
}

// havocLoop forgets every variable assigned inside a loop before
// walking its body once. Trackable kinds are re-seeded with fresh
// per-loop atoms — consistent within one iteration, unrelated to the
// pre-loop value — so loop-body relationships (Sizes[l+1]*Sizes[l]
// advances against equal-width sub-slices) still prove.
func (in *shapeInterp) havocLoop(body *ast.BlockStmt, post ast.Stmt) {
	assigned := map[types.Object]bool{}
	record := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := in.identObj(id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	visit := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(n.X)
		case *ast.RangeStmt:
			record(n.Key)
			record(n.Value)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				record(n.X)
			}
		case *ast.FuncLit:
			return false
		}
		return true
	}
	ast.Inspect(body, visit)
	if post != nil {
		ast.Inspect(post, visit)
	}
	for obj := range assigned {
		in.havocObj(obj)
	}
}

// havocObj forgets one object across loop iterations. The fresh atoms
// are qualified by the object's kind of use site via a counter-free
// position suffix: one havoc per loop entry, stable across the walk.
func (in *shapeInterp) havocObj(obj types.Object) {
	if obj == nil {
		return
	}
	fresh := func(suffix, disp string) sdim {
		return sdimTerm(fmt.Sprintf("%s@loop%s", objKey(obj), suffix), disp)
	}
	switch {
	case typeHasRowsCols(obj.Type()):
		in.env[obj] = objShape{kind: shapeMat, rows: fresh(".r", obj.Name()+".Rows"), cols: fresh(".c", obj.Name()+".Cols")}
	case isSliceType(obj.Type()):
		in.env[obj] = objShape{kind: shapeVec, length: fresh(".len", "len("+obj.Name()+")")}
	case isIntType(obj.Type()):
		in.env[obj] = objShape{kind: shapeNum, val: fresh("", obj.Name())}
	default:
		delete(in.env, obj)
		in.killed[obj] = true
	}
}

func (in *shapeInterp) identObj(id *ast.Ident) types.Object {
	if obj := in.p.Info.Defs[id]; obj != nil {
		return obj
	}
	return in.p.Info.Uses[id]
}

// ---------------------------------------------------------------------------
// Assignments

func (in *shapeInterp) walkAssign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		in.scanExpr(r)
	}
	for _, l := range s.Lhs {
		in.scanExpr(l)
	}
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != len(s.Rhs) {
			for _, l := range s.Lhs {
				if id, ok := unparen(l).(*ast.Ident); ok && id.Name != "_" {
					in.setUnknown(in.identObj(id))
				}
			}
			return
		}
		for i, l := range s.Lhs {
			id, ok := unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := in.identObj(id)
			if obj == nil {
				continue
			}
			in.resetPartitions(obj)
			in.bindObj(obj, s.Rhs[i])
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		delta := in.evalNum(s.Rhs[0])
		if s.Tok == token.SUB_ASSIGN {
			delta = delta.neg()
		}
		in.applyAdvance(s.Lhs[0], delta, s)
	default:
		if id, ok := unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			in.setUnknown(in.identObj(id))
		}
	}
}

func (in *shapeInterp) walkDecl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			in.scanExpr(v)
		}
		for i, name := range vs.Names {
			obj := in.p.Info.Defs[name]
			if obj == nil || name.Name == "_" {
				continue
			}
			if len(vs.Values) == len(vs.Names) {
				in.bindObj(obj, vs.Values[i])
				continue
			}
			if len(vs.Values) == 0 {
				// Zero value: integers start at 0 — the usual birth of a
				// running offset (`var off int`).
				if isIntType(obj.Type()) {
					in.env[obj] = objShape{kind: shapeNum, val: sdimConst(0)}
				} else {
					in.setUnknown(obj)
				}
				continue
			}
			in.setUnknown(obj)
		}
	}
}

// bindObj stores the abstract value of rhs under obj, choosing the
// tracked kind from the object's static type.
func (in *shapeInterp) bindObj(obj types.Object, rhs ast.Expr) {
	switch {
	case typeHasRowsCols(obj.Type()):
		r, c := in.evalMat(rhs)
		in.env[obj] = objShape{kind: shapeMat, rows: r, cols: c}
	case isSliceType(obj.Type()):
		in.env[obj] = objShape{kind: shapeVec, length: in.evalLen(rhs)}
	case isIntType(obj.Type()):
		in.env[obj] = objShape{kind: shapeNum, val: in.evalNum(rhs)}
	default:
		in.setUnknown(obj)
	}
}

// setUnknown forgets obj while keeping an explicit entry for trackable
// kinds so stale canonical atoms cannot resurrect the old value.
func (in *shapeInterp) setUnknown(obj types.Object) {
	if obj == nil {
		return
	}
	switch {
	case typeHasRowsCols(obj.Type()):
		in.env[obj] = objShape{kind: shapeMat}
	case isSliceType(obj.Type()):
		in.env[obj] = objShape{kind: shapeVec}
	case isIntType(obj.Type()):
		in.env[obj] = objShape{kind: shapeNum}
	default:
		delete(in.env, obj)
		in.killed[obj] = true
	}
}

// applyAdvance handles off += delta / off -= delta / off++: updates the
// integer value and feeds active partition sequences keyed by off.
func (in *shapeInterp) applyAdvance(lhs ast.Expr, delta sdim, node ast.Node) {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := in.identObj(id)
	if obj == nil || !isIntType(obj.Type()) {
		return
	}
	cur := in.numValOf(obj)
	in.env[obj] = objShape{kind: shapeNum, val: cur.add(delta)}
	for _, key := range in.order {
		seq := in.parts[key]
		if seq == nil || key.off != obj {
			continue
		}
		if !delta.known {
			in.finalizeSeq(key)
			continue
		}
		if in.branch > 0 {
			seq.broken = true
		}
		if in.loop > 0 {
			seq.inLoop = true
		}
		seq.events = append(seq.events, partEvent{width: delta, node: node})
	}
}

// numValOf is the integer abstract value of obj: its environment entry
// when present, otherwise its canonical atom.
func (in *shapeInterp) numValOf(obj types.Object) sdim {
	if sh, ok := in.env[obj]; ok {
		if sh.kind == shapeNum {
			return sh.val
		}
		return sdimUnknown
	}
	if in.killed[obj] {
		return sdimUnknown
	}
	return sdimTerm(objKey(obj), obj.Name())
}

// ---------------------------------------------------------------------------
// Expression scanning: contract checks, guards, partition events

// scanExpr visits an expression tree in source order, checking every
// contracted call and recording partition events. Function literals
// are interpreted in their own frame.
func (in *shapeInterp) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			in.handleCall(n)
		case *ast.SliceExpr:
			in.handleSlice(n)
		case *ast.FuncLit:
			sub := newShapeInterp(in.ctx, in.p, nil)
			sub.walkStmt(n.Body)
			sub.finishPartitions()
			return false
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Partition checking

// handleSlice records base[off:hi] as a partition event when the low
// bound is a plain integer variable — the running-offset idiom.
func (in *shapeInterp) handleSlice(e *ast.SliceExpr) {
	loId, ok := unparen(e.Low).(*ast.Ident)
	if !ok {
		return
	}
	off := in.identObj(loId)
	if off == nil || !isIntType(off.Type()) {
		return
	}
	baseKey, baseDisp, ok := in.canonKey(e.X)
	if !ok {
		return
	}
	var hi sdim
	if e.High != nil {
		hi = in.evalNum(e.High)
	} else {
		hi = in.evalLen(e.X)
	}
	cur := in.numValOf(off)
	width := hi.sub(cur)
	key := partKey{base: baseKey, off: off}
	seq := in.parts[key]
	if !width.known {
		if seq != nil {
			in.finalizeSeq(key)
		}
		return
	}
	if seq == nil {
		seq = &partitionSeq{
			baseDisp: baseDisp,
			offDisp:  loId.Name,
			baseLen:  in.evalLen(e.X),
			start:    cur,
		}
		in.parts[key] = seq
		in.order = append(in.order, key)
	}
	if in.branch > 0 {
		seq.broken = true
	}
	if in.loop > 0 {
		seq.inLoop = true
	}
	seq.events = append(seq.events, partEvent{isSlice: true, width: width, node: e})
}

// resetPartitions finalizes sequences whose offset variable is being
// re-assigned (a new partition pass starts from scratch).
func (in *shapeInterp) resetPartitions(obj types.Object) {
	for _, key := range in.order {
		if key.off == obj && in.parts[key] != nil {
			in.finalizeSeq(key)
		}
	}
}

// finishPartitions finalizes all sequences still open at function end.
func (in *shapeInterp) finishPartitions() {
	for _, key := range in.order {
		if in.parts[key] != nil {
			in.finalizeSeq(key)
		}
	}
}

// finalizeSeq runs the adjacency and coverage checks on one sequence
// and closes it. Adjacency: the advances between consecutive sub-slices
// must sum to the earlier slice's width — provably less overlaps,
// provably more leaves a gap. Coverage: for straight-line sequences
// over a base of known length, the covered extent must equal it.
func (in *shapeInterp) finalizeSeq(key partKey) {
	seq := in.parts[key]
	delete(in.parts, key)
	if seq == nil || seq.broken {
		return
	}
	nslices := 0
	for _, ev := range seq.events {
		if ev.isSlice {
			nslices++
		}
	}
	if nslices == 0 {
		return
	}
	// Adjacency between consecutive slices (and after the last one).
	for i := 0; i < len(seq.events); i++ {
		if !seq.events[i].isSlice {
			continue
		}
		w := seq.events[i].width
		adv := sdimConst(0)
		nadv := 0
		j := i + 1
		var lastNode ast.Node
		for ; j < len(seq.events) && !seq.events[j].isSlice; j++ {
			adv = adv.add(seq.events[j].width)
			nadv++
			lastNode = seq.events[j].node
		}
		if nadv == 0 {
			continue // re-slice of the same window, or final slice with no advance
		}
		diff := adv.sub(w)
		c, isConst := diff.isConst()
		if !isConst || c == 0 {
			continue
		}
		verb := "leave a gap"
		if c < 0 {
			verb = "overlap"
		}
		in.ctx.findings = append(in.ctx.findings, in.p.finding(in.ctx.a, SevError, lastNode,
			"sub-slices of %s %s: offset %s advances %s after a %s-wide sub-slice",
			seq.baseDisp, verb, seq.offDisp, adv.render(), w.render()))
		return // one layout finding per sequence; later checks would double-report
	}
	// Coverage: straight-line only, base length known.
	if seq.inLoop || !seq.baseLen.known || !seq.start.known || nslices < 2 {
		return
	}
	pos := seq.start
	covered := sdimUnknown
	var lastNode ast.Node
	for _, ev := range seq.events {
		lastNode = ev.node
		if ev.isSlice {
			covered = pos.add(ev.width)
		} else {
			pos = pos.add(ev.width)
		}
	}
	if pos.known && pos.compare(covered) != dimEqual {
		// Trailing advances moved past the last slice end; the larger
		// extent is what the pass consumed.
		if d := pos.sub(covered); d.known {
			if c, ok := d.isConst(); ok && c > 0 {
				covered = pos
			}
		}
	}
	if !covered.known {
		return
	}
	if rel := covered.compare(seq.baseLen); rel == dimDiffers {
		in.ctx.findings = append(in.ctx.findings, in.p.finding(in.ctx.a, SevError, lastNode,
			"sub-slices of %s cover %s of its %s elements",
			seq.baseDisp, covered.render(), seq.baseLen.render()))
	}
}

// ---------------------------------------------------------------------------
// Contract checking at call sites

func (in *shapeInterp) handleCall(call *ast.CallExpr) {
	if isCheckDimsCall(in.p, call) {
		in.guards = append(in.guards, call.End())
		return
	}
	fn := in.p.calleeFunc(call)
	if fn == nil {
		return
	}
	ci := in.ctx.contracts[fn]
	if ci == nil {
		return
	}
	args, ok := in.buildArgMap(ci, call)
	if !ok {
		return
	}
	bindings := in.bindContract(ci, args)
	symCount := ci.c.symbols()
	type obligation struct{ desc string }
	var obligations []obligation
	for si := range ci.c.slots {
		s := &ci.c.slots[si]
		arg := args[s.name]
		if arg == nil {
			continue
		}
		dims, names, ok := in.slotActual(ci, s, args)
		if !ok {
			continue
		}
		want := []dimExpr{s.rows}
		if s.mat {
			want = append(want, s.cols)
		}
		for di := range dims {
			expected := in.evalContractExpr(want[di], bindings, args)
			rel := dimUnknown
			if expected.known && dims[di].known {
				rel = dims[di].compare(expected)
			}
			switch rel {
			case dimEqual:
				continue
			case dimDiffers:
				note := ""
				if sym, isSym := want[di].(dimSym); isSym {
					if b, ok := bindings[string(sym)]; ok {
						note = fmt.Sprintf(" (%s = %s, bound by %s)", sym, b.dim.render(), b.by)
					}
				}
				in.ctx.findings = append(in.ctx.findings, in.p.finding(in.ctx.a, SevError, call,
					"call to %s: operand %s has %s %s but contract requires %s%s",
					fn.Name(), s.name, dims[di].render(), names[di], want[di].String(), note))
				return
			case dimUnknown:
				if sym, isSym := want[di].(dimSym); isSym && symCount[string(sym)] < 2 {
					continue // single-use symbol relates nothing: vacuous
				}
				if !expected.known && !dims[di].known {
					// Neither the contract side nor the operand resolved to
					// anything symbolic; the obligation would relate two
					// blanks (e.g. v.Clone() on an untracked receiver, where
					// the receiver slot is the symbol's only binder).
					continue
				}
				obligations = append(obligations, obligation{
					desc: fmt.Sprintf("%s of operand %s = %s", names[di], s.name, want[di].String()),
				})
			}
		}
	}
	if len(obligations) == 0 {
		return
	}
	if ci.c.enforced {
		return // the callee's own runtime guard enforces the contract
	}
	if in.guardBefore(call.Pos()) {
		return // a caller-side check.Dims / length guard dominates the call
	}
	in.ctx.findings = append(in.ctx.findings, in.p.finding(in.ctx.a, SevWarn, call,
		"call to %s: cannot prove %s; callee has no runtime dim guard and no check.Dims/length guard dominates this call",
		fn.Name(), obligations[0].desc))
}

func (in *shapeInterp) guardBefore(pos token.Pos) bool {
	for _, g := range in.guards {
		if g <= pos {
			return true
		}
	}
	return false
}

// buildArgMap pairs the callee's declared parameter (and receiver)
// names with the call's argument expressions.
func (in *shapeInterp) buildArgMap(ci *contractInfo, call *ast.CallExpr) (map[string]ast.Expr, bool) {
	sig, ok := ci.fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return nil, false
	}
	var names []string
	for _, f := range ci.decl.Type.Params.List {
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	if len(names) != len(call.Args) {
		return nil, false
	}
	args := map[string]ast.Expr{}
	for i, n := range names {
		args[n] = call.Args[i]
	}
	if ci.decl.Recv != nil {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || in.p.Info.Selections[sel] == nil {
			return nil, false
		}
		if len(ci.decl.Recv.List) == 1 && len(ci.decl.Recv.List[0].Names) == 1 {
			args[ci.decl.Recv.List[0].Names[0].Name] = sel.X
		}
	}
	return args, true
}

// bindContract runs the binding pass: integer parameters named by
// symbols bind first, then slot dims pin any still-unbound bare symbol
// whose actual is known, in annotation order.
func (in *shapeInterp) bindContract(ci *contractInfo, args map[string]ast.Expr) map[string]binding {
	bindings := map[string]binding{}
	sig := ci.fn.Type().(*types.Signature)
	for sym := range ci.c.symbols() {
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if p.Name() != sym || !isIntType(p.Type()) {
				continue
			}
			if arg := args[sym]; arg != nil {
				if v := in.evalNum(arg); v.known {
					bindings[sym] = binding{dim: v, by: "parameter " + sym}
				}
			}
		}
	}
	for si := range ci.c.slots {
		s := &ci.c.slots[si]
		arg := args[s.name]
		if arg == nil {
			continue
		}
		dims, _, ok := in.slotActual(ci, s, args)
		if !ok {
			continue
		}
		want := []dimExpr{s.rows}
		if s.mat {
			want = append(want, s.cols)
		}
		for di := range dims {
			sym, isSym := want[di].(dimSym)
			if !isSym || !dims[di].known {
				continue
			}
			if _, bound := bindings[string(sym)]; !bound {
				bindings[string(sym)] = binding{dim: dims[di], by: "operand " + s.name}
			}
		}
	}
	return bindings
}

// slotActual evaluates the call-site dims of one contracted operand,
// applying transpose-flag swaps. Returns the dim list (rows[,cols] for
// matrices, the single length/value otherwise), matching dim names for
// messages, and whether the operand kind could be evaluated at all.
func (in *shapeInterp) slotActual(ci *contractInfo, s *shapeSlot, args map[string]ast.Expr) ([]sdim, []string, bool) {
	arg := args[s.name]
	if s.mat {
		r, c := in.evalMat(arg)
		for flag, op := range ci.c.swaps {
			if op != s.name {
				continue
			}
			flagArg := args[flag]
			if flagArg == nil {
				continue
			}
			val, isConst := in.constBool(flagArg)
			if !isConst {
				r, c = sdimUnknown, sdimUnknown
			} else if val {
				r, c = c, r
			}
		}
		return []sdim{r, c}, []string{"rows", "cols"}, true
	}
	pt := in.paramType(ci, s.name)
	switch {
	case pt != nil && isSliceType(pt):
		return []sdim{in.evalLen(arg)}, []string{"length"}, true
	case pt != nil && isIntType(pt):
		return []sdim{in.evalNum(arg)}, []string{"value"}, true
	}
	return nil, nil, false
}

func (in *shapeInterp) paramType(ci *contractInfo, name string) types.Type {
	sig := ci.fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && ci.decl.Recv != nil &&
		len(ci.decl.Recv.List) == 1 && len(ci.decl.Recv.List[0].Names) == 1 &&
		ci.decl.Recv.List[0].Names[0].Name == name {
		return recv.Type()
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return sig.Params().At(i).Type()
		}
	}
	return nil
}

// constBool folds a boolean (or Transpose-like) argument.
func (in *shapeInterp) constBool(e ast.Expr) (val, isConst bool) {
	if tv, ok := in.p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		return constant.BoolVal(tv.Value), true
	}
	return false, false
}

// evalContractExpr evaluates a contract dimension expression at a call
// site, under the site's symbol bindings and argument map.
func (in *shapeInterp) evalContractExpr(e dimExpr, bindings map[string]binding, args map[string]ast.Expr) sdim {
	switch e := e.(type) {
	case dimConst:
		return sdimConst(int64(e))
	case dimSym:
		if b, ok := bindings[string(e)]; ok {
			return b.dim
		}
		return sdimUnknown
	case dimField:
		arg := args[e.param]
		if arg == nil {
			return sdimUnknown
		}
		if len(e.path) == 1 && (e.path[0] == "Rows" || e.path[0] == "Cols") {
			r, c := in.evalMat(arg)
			if e.path[0] == "Rows" {
				return r
			}
			return c
		}
		key, disp, ok := in.canonKey(arg)
		if !ok {
			return sdimUnknown
		}
		path := strings.Join(e.path, ".")
		return sdimTerm(key+"."+path, disp+"."+path)
	case dimBin:
		x := in.evalContractExpr(e.x, bindings, args)
		y := in.evalContractExpr(e.y, bindings, args)
		if e.op == '*' {
			return x.mul(y)
		}
		return x.add(y)
	}
	return sdimUnknown
}

// contractRet instantiates a callee's return contract at a call site,
// for assignments like w := tensor.FromSlice(out, in, chunk).
func (in *shapeInterp) contractRet(call *ast.CallExpr) (objShape, bool) {
	fn := in.p.calleeFunc(call)
	if fn == nil {
		return objShape{}, false
	}
	ci := in.ctx.contracts[fn]
	if ci == nil || ci.c.ret == nil {
		return objShape{}, false
	}
	args, ok := in.buildArgMap(ci, call)
	if !ok {
		return objShape{}, false
	}
	bindings := in.bindContract(ci, args)
	ret := ci.c.ret
	if ret.mat {
		r := in.evalContractExpr(ret.rows, bindings, args)
		c := in.evalContractExpr(ret.cols, bindings, args)
		for flag, op := range ci.c.swaps {
			if op != "return" {
				continue
			}
			val, isConst := false, false
			if flagArg := args[flag]; flagArg != nil {
				val, isConst = in.constBool(flagArg)
			}
			if !isConst {
				r, c = sdimUnknown, sdimUnknown
			} else if val {
				r, c = c, r
			}
		}
		return objShape{kind: shapeMat, rows: r, cols: c}, true
	}
	v := in.evalContractExpr(ret.rows, bindings, args)
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == 1 && isIntType(sig.Results().At(0).Type()) {
		return objShape{kind: shapeNum, val: v}, true
	}
	return objShape{kind: shapeVec, length: v}, true
}

// ---------------------------------------------------------------------------
// Expression evaluation

// evalNum evaluates an integer-valued expression to a symbolic dim.
func (in *shapeInterp) evalNum(e ast.Expr) sdim {
	if e == nil {
		return sdimUnknown
	}
	if tv, ok := in.p.Info.Types[e]; ok && tv.Value != nil {
		if v := constant.ToInt(tv.Value); v.Kind() == constant.Int {
			if n, exact := constant.Int64Val(v); exact {
				return sdimConst(n)
			}
		}
		return sdimUnknown
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := in.identObj(e)
		if obj == nil {
			return sdimUnknown
		}
		return in.numValOf(obj)
	case *ast.BinaryExpr:
		x := in.evalNum(e.X)
		y := in.evalNum(e.Y)
		switch e.Op {
		case token.ADD:
			return x.add(y)
		case token.SUB:
			return x.sub(y)
		case token.MUL:
			return x.mul(y)
		}
		return sdimUnknown
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			return in.evalNum(e.X).neg()
		}
		return sdimUnknown
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "len" && len(e.Args) == 1 {
			if _, isBuiltin := in.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				return in.evalLen(e.Args[0])
			}
		}
		if in.isConversion(e) {
			return in.evalNum(e.Args[0])
		}
		if sh, ok := in.contractRet(e); ok && sh.kind == shapeNum {
			return sh.val
		}
		return sdimUnknown
	case *ast.SelectorExpr:
		if e.Sel.Name == "Rows" || e.Sel.Name == "Cols" {
			if typeHasRowsCols(in.exprType(e.X)) {
				r, c := in.evalMat(e.X)
				if e.Sel.Name == "Rows" {
					return r
				}
				return c
			}
		}
		return in.canonAtom(e)
	case *ast.IndexExpr:
		return in.canonAtom(e)
	}
	return sdimUnknown
}

// evalLen evaluates the length of a slice-valued expression.
func (in *shapeInterp) evalLen(e ast.Expr) sdim {
	if e == nil {
		return sdimUnknown
	}
	if at, ok := in.exprType(e).(*types.Array); ok {
		return sdimConst(at.Len())
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := in.identObj(e)
		if obj == nil {
			return sdimUnknown
		}
		if sh, ok := in.env[obj]; ok {
			if sh.kind == shapeVec {
				return sh.length
			}
			return sdimUnknown
		}
		if in.killed[obj] {
			return sdimUnknown
		}
		return sdimTerm("len("+objKey(obj)+")", "len("+obj.Name()+")")
	case *ast.SliceExpr:
		var lo, hi sdim
		if e.Low != nil {
			lo = in.evalNum(e.Low)
		} else {
			lo = sdimConst(0)
		}
		if e.High != nil {
			hi = in.evalNum(e.High)
		} else {
			hi = in.evalLen(e.X)
		}
		return hi.sub(lo)
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" && len(e.Args) >= 2 {
			if _, isBuiltin := in.p.Info.Uses[id].(*types.Builtin); isBuiltin {
				return in.evalNum(e.Args[1])
			}
		}
		if in.isConversion(e) {
			return in.evalLen(e.Args[0])
		}
		if sh, ok := in.contractRet(e); ok && sh.kind == shapeVec {
			return sh.length
		}
		return sdimUnknown
	case *ast.CompositeLit:
		if _, ok := in.exprType(e).(*types.Slice); ok {
			for _, el := range e.Elts {
				if _, kv := el.(*ast.KeyValueExpr); kv {
					return sdimUnknown
				}
			}
			return sdimConst(int64(len(e.Elts)))
		}
		return sdimUnknown
	case *ast.SelectorExpr, *ast.IndexExpr:
		key, disp, ok := in.canonKey(e)
		if !ok {
			return sdimUnknown
		}
		return sdimTerm("len("+key+")", "len("+disp+")")
	}
	return sdimUnknown
}

// evalMat evaluates the (rows, cols) of a matrix-valued expression.
func (in *shapeInterp) evalMat(e ast.Expr) (sdim, sdim) {
	if e == nil {
		return sdimUnknown, sdimUnknown
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := in.identObj(e)
		if obj == nil {
			return sdimUnknown, sdimUnknown
		}
		if sh, ok := in.env[obj]; ok {
			if sh.kind == shapeMat {
				return sh.rows, sh.cols
			}
			return sdimUnknown, sdimUnknown
		}
		if in.killed[obj] {
			return sdimUnknown, sdimUnknown
		}
		return in.matAtoms(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return in.evalMat(e.X)
		}
		return sdimUnknown, sdimUnknown
	case *ast.CompositeLit:
		return in.matLitDims(e)
	case *ast.CallExpr:
		if in.isConversion(e) {
			return in.evalMat(e.Args[0])
		}
		if sh, ok := in.contractRet(e); ok && sh.kind == shapeMat {
			return sh.rows, sh.cols
		}
		return sdimUnknown, sdimUnknown
	case *ast.SelectorExpr, *ast.IndexExpr:
		return in.matAtoms(e)
	case *ast.StarExpr:
		return in.evalMat(e.X)
	}
	return sdimUnknown, sdimUnknown
}

// matLitDims reads Rows/Cols out of a struct literal; unset fields are
// the zero value 0.
func (in *shapeInterp) matLitDims(e *ast.CompositeLit) (sdim, sdim) {
	if !typeHasRowsCols(in.exprType(e)) {
		return sdimUnknown, sdimUnknown
	}
	r, c := sdimConst(0), sdimConst(0)
	for _, el := range e.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return sdimUnknown, sdimUnknown // positional: field order not worth modeling
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Rows":
			r = in.evalNum(kv.Value)
		case "Cols":
			c = in.evalNum(kv.Value)
		}
	}
	return r, c
}

// matAtoms falls back to canonical field atoms expr.Rows / expr.Cols
// for an untracked matrix-shaped expression.
func (in *shapeInterp) matAtoms(e ast.Expr) (sdim, sdim) {
	if !typeHasRowsCols(in.exprType(e)) {
		return sdimUnknown, sdimUnknown
	}
	key, disp, ok := in.canonKey(e)
	if !ok {
		return sdimUnknown, sdimUnknown
	}
	return sdimTerm(key+".Rows", disp+".Rows"), sdimTerm(key+".Cols", disp+".Cols")
}

// canonAtom returns the canonical single-term dim for a pure path
// expression (x, x.F, x.F[i], …).
func (in *shapeInterp) canonAtom(e ast.Expr) sdim {
	key, disp, ok := in.canonKey(e)
	if !ok {
		return sdimUnknown
	}
	return sdimTerm(key, disp)
}

// canonKey builds the canonical key of a side-effect-free path
// expression rooted at a named object. Fails for killed roots (the
// object was reassigned in a loop) and for unevaluable indices.
func (in *shapeInterp) canonKey(e ast.Expr) (key, disp string, ok bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := in.identObj(e)
		if obj == nil || in.killed[obj] {
			return "", "", false
		}
		switch obj.(type) {
		case *types.Var, *types.Const:
			return objKey(obj), obj.Name(), true
		}
		return "", "", false
	case *ast.SelectorExpr:
		k, d, ok := in.canonKey(e.X)
		if !ok {
			return "", "", false
		}
		return k + "." + e.Sel.Name, d + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		k, d, ok := in.canonKey(e.X)
		if !ok {
			return "", "", false
		}
		idx := in.evalNum(e.Index)
		if !idx.known {
			return "", "", false
		}
		return k + "[" + idx.key() + "]", d + "[" + idx.render() + "]", true
	case *ast.StarExpr:
		k, d, ok := in.canonKey(e.X)
		if !ok {
			return "", "", false
		}
		return "deref(" + k + ")", "*" + d, true
	}
	return "", "", false
}

// isConversion reports whether call is a type conversion.
func (in *shapeInterp) isConversion(call *ast.CallExpr) bool {
	tv, ok := in.p.Info.Types[call.Fun]
	return ok && tv.IsType()
}

func (in *shapeInterp) exprType(e ast.Expr) types.Type {
	if tv, ok := in.p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// ---------------------------------------------------------------------------
// Type predicates

// typeHasRowsCols reports whether t (or *t) is a struct with integer
// Rows and Cols fields — the structural definition of "matrix-shaped".
func typeHasRowsCols(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasRows, hasCols bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !isIntType(f.Type()) {
			continue
		}
		switch f.Name() {
		case "Rows":
			hasRows = true
		case "Cols":
			hasCols = true
		}
	}
	return hasRows && hasCols
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}
