package lint

// TagSpace is the module-scoped half of the p2pcheck family: it builds
// a whole-repo map of every statically-resolvable tag argument passed
// to the mpi point-to-point surface and checks the global tag plan.
//
// The plan (internal/mpi/mpi.go) carves the int tag space into
// collective blocks at k<<24, user/control tags in the 9000s, the
// elastic reply block at 16<<24 and the heartbeat block at 17<<24.
// Three hazards break it:
//
//   - collision: two distinct named constants share a value, so two
//     conversations alias one mailbox and deliver each other's frames;
//   - block overlap: a base constant used with a dynamic offset (a
//     per-round or per-distance tag) reserves [base, base+2²⁴);
//     another dynamic block starting inside that range, or a static
//     tag landing in it, aliases some future round;
//   - orphan: a tag sent somewhere in the module but received nowhere
//     (the frame sits in the transport queue forever, or a receive
//     deadline evicts a healthy peer), or received but never sent.
//
// An AnyTag receive in a package absorbs every send issued from that
// same package (the async master loop's shape), so those sends are not
// orphans. Tags that do not resolve statically are skipped: the checks
// err toward silence on dynamic protocols.

import (
	"go/types"
	"sort"
)

type TagSpace struct{}

func (TagSpace) Name() string { return "tagspace" }

func (TagSpace) Doc() string {
	return "module-wide p2p tag map: value collisions between named tag constants, overlapping dynamic tag blocks, and tags sent with no matching receive (or received with no sender)"
}

// tagUse is one resolved, reportable tag occurrence.
type tagUse struct {
	p  *Package
	ev p2pEvent
}

// tsEntry aggregates everything known about one tag value.
type tsEntry struct {
	val      int
	bases    []*types.Const // distinct named bases, in first-seen order
	uses     []tagUse       // reporting occurrences (one per resolution site)
	sends    int
	recvs    int
	hasDyn   bool
	sendPkgs map[*Package]bool
}

func (e *tsEntry) addBase(c *types.Const) {
	for _, b := range e.bases {
		if b == c {
			return
		}
	}
	e.bases = append(e.bases, c)
}

func (e *tsEntry) firstUse(match func(tagUse) bool) (tagUse, bool) {
	for _, u := range e.uses {
		if match(u) {
			return u, true
		}
	}
	return tagUse{}, false
}

func (a TagSpace) RunModule(pkgs []*Package) []Finding {
	entries := map[int]*tsEntry{}
	anyTagRecv := map[*Package]bool{}

	for _, p := range pkgs {
		z := newP2PPass(p)
		for _, fd := range z.orderedDecls() {
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, ev := range z.summarize(fn).events {
				if ev.opaque || !ev.tag.known {
					continue
				}
				if ev.tag.anyTag {
					if ev.dir == dirRecv {
						anyTagRecv[p] = true
					}
					continue
				}
				e := entries[ev.tag.val]
				if e == nil {
					e = &tsEntry{val: ev.tag.val, sendPkgs: map[*Package]bool{}}
					entries[ev.tag.val] = e
				}
				if ev.tag.base != nil {
					e.addBase(ev.tag.base)
				}
				if ev.tag.offset {
					e.hasDyn = true
				}
				if ev.dir == dirSend {
					e.sends++
					e.sendPkgs[p] = true
				} else {
					e.recvs++
				}
				if ev.report {
					e.uses = append(e.uses, tagUse{p, ev})
				}
			}
		}
	}

	// Deterministic order: entries by value, uses by position (all
	// packages share one FileSet).
	vals := make([]int, 0, len(entries))
	for v, e := range entries {
		vals = append(vals, v)
		sort.SliceStable(e.uses, func(i, j int) bool {
			return e.uses[i].ev.node.Pos() < e.uses[j].ev.node.Pos()
		})
	}
	sort.Ints(vals)

	var out []Finding

	// Collisions: one value, several named constants.
	for _, v := range vals {
		e := entries[v]
		if len(e.bases) < 2 {
			continue
		}
		bases := append([]*types.Const(nil), e.bases...)
		sort.SliceStable(bases, func(i, j int) bool { return bases[i].Pos() < bases[j].Pos() })
		canon := bases[0]
		for _, u := range e.uses {
			if u.ev.tag.base == nil || u.ev.tag.base == canon {
				continue
			}
			out = append(out, u.p.finding(a, SevError, u.ev.node,
				"tag %s collides with %s (declared at %s): two protocol conversations share one mailbox",
				u.ev.tag.render(), canon.Name(), sitePos(u.p, canon.Pos())))
		}
	}

	// Block overlaps: each dynamic base reserves [val, val+2^24).
	var dynVals []int
	for _, v := range vals {
		if entries[v].hasDyn {
			dynVals = append(dynVals, v)
		}
	}
	for i, v1 := range dynVals {
		for _, v2 := range dynVals[i+1:] {
			if v2 >= v1+tagBlockWidth {
				break
			}
			e2 := entries[v2]
			if u, ok := e2.firstUse(func(u tagUse) bool { return u.ev.tag.offset }); ok {
				e1 := entries[v1]
				out = append(out, u.p.finding(a, SevError, u.ev.node,
					"dynamic tag block %s [%d,%d) overlaps block %s [%d,%d): offsets of one conversation alias the other",
					u.ev.tag.render(), v2, v2+tagBlockWidth, baseName(e1, v1), v1, v1+tagBlockWidth))
			}
		}
	}
	for _, v := range dynVals {
		for _, s := range vals {
			if s <= v || s >= v+tagBlockWidth {
				continue
			}
			es := entries[s]
			if es.hasDyn {
				continue // already reported as a block overlap
			}
			if u, ok := es.firstUse(func(u tagUse) bool { return !u.ev.tag.offset }); ok {
				out = append(out, u.p.finding(a, SevError, u.ev.node,
					"static tag %s falls inside dynamic block %s [%d,%d): offset %d of that conversation aliases it",
					u.ev.tag.render(), baseName(entries[v], v), v, v+tagBlockWidth, s-v))
			}
		}
	}

	// Orphans: traffic with no counterpart anywhere in the module.
	for _, v := range vals {
		e := entries[v]
		switch {
		case e.sends > 0 && e.recvs == 0:
			wild := false
			for p := range e.sendPkgs {
				if anyTagRecv[p] {
					wild = true
					break
				}
			}
			if wild {
				break
			}
			if u, ok := e.firstUse(func(u tagUse) bool { return u.ev.dir == dirSend }); ok {
				out = append(out, u.p.finding(a, SevError, u.ev.node,
					"tag %s is sent here but received nowhere in the module", u.ev.tag.render()))
			}
		case e.recvs > 0 && e.sends == 0:
			if u, ok := e.firstUse(func(u tagUse) bool { return u.ev.dir == dirRecv }); ok {
				out = append(out, u.p.finding(a, SevError, u.ev.node,
					"tag %s is received here but sent nowhere in the module", u.ev.tag.render()))
			}
		}
	}

	return out
}

// baseName renders an entry's first named base, or its raw value.
func baseName(e *tsEntry, v int) string {
	if len(e.bases) > 0 {
		return e.bases[0].Name()
	}
	return tagForm{known: true, val: v}.render()
}
