// Package clean is the negative lint fixture: it exercises the code
// shapes each analyzer inspects — collectives, float comparisons, lock
// structs, hot-path annotations, observer access — in their sanctioned
// forms, and must produce zero findings.
package clean

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mpi"
	"repro/internal/obs"
)

type server struct {
	mu    sync.Mutex
	calls int
}

func (s *server) bump() {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
}

func reduce(c *mpi.Comm, buf []float32) error {
	if err := c.Allreduce(mpi.OpSum, buf); err != nil {
		return err
	}
	return c.Barrier()
}

func converged(prev, curr float64, tol float64) bool {
	return math.Abs(curr-prev) < tol
}

//lint:hotpath
func dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dot: len %d != %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func observe(ob *obs.Observer, c *mpi.Comm, buf []float32) error {
	sp := ob.Span(0, "reduce")
	err := reduce(c, buf)
	sp.End()
	ob.Registry().Counter("reductions").Inc()
	return err
}
