// clean_comm.go exercises the collective-protocol shapes commcheck
// inspects in their sanctioned forms: a matched master/worker opcode
// protocol and a rank guard that only gates an early exit, never a
// collective. It must stay silent.
package clean

import "repro/internal/mpi"

const (
	cmdSync float32 = 1 + iota
	cmdHalt
)

// protoMaster drives the worker loop below with a conforming sequence:
// each opcode broadcast is followed by exactly the collectives the
// matching arm executes.
func protoMaster(c *mpi.Comm, params []float32) error {
	if err := c.Bcast(0, []float32{cmdSync, 0}); err != nil {
		return err
	}
	if err := c.Bcast(0, params); err != nil {
		return err
	}
	return c.Bcast(0, []float32{cmdHalt, 0})
}

// protoWorker mirrors protoMaster arm by arm. The rank check guards an
// early exit with no collective inside the branch, the sanctioned form.
func protoWorker(c *mpi.Comm, params []float32) error {
	rank := c.Rank()
	if rank == 0 {
		return nil
	}
	cmd := make([]float32, 2)
	for {
		if err := c.Bcast(0, cmd); err != nil {
			return err
		}
		switch cmd[0] {
		case cmdSync:
			if err := c.Bcast(0, params); err != nil {
				return err
			}
		case cmdHalt:
			return nil
		}
	}
}
