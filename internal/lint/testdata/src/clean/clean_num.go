// Sanctioned forms of the shapes the numcheck analyzers (maporderfloat,
// reduceorder, rngsource, divguard) inspect; this file must stay silent.
package clean

import (
	"math/rand"
	"sort"
)

// sumSorted is the sanctioned map fold: collect the keys (a non-float
// slice may be built in map order), sort them, and accumulate over the
// sorted slice.
func sumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// countFrames shows integer accumulation in map order: order-free.
func countFrames(m map[string]int) int {
	total := 0
	for _, n := range m {
		total += n
	}
	return total
}

// indexMerge is the sanctioned fan-in: workers write disjoint slots, the
// receive loop only counts completions, and the fold runs in index order.
func indexMerge(parts [][]float64) float64 {
	results := make([]float64, len(parts))
	done := make(chan int, len(parts))
	for i := range parts {
		go func(i int) {
			var s float64
			for _, v := range parts[i] {
				s += v
			}
			results[i] = s
			done <- i
		}(i)
	}
	for range parts {
		<-done
	}
	var total float64
	for _, v := range results {
		total += v
	}
	return total
}

// seededDraw threads an explicit source seeded from configuration.
func seededDraw(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// guardedMean divides an accumulated sum by a guarded frame count.
func guardedMean(sum float64, frames int) float64 {
	if frames <= 0 {
		return 0
	}
	return sum / float64(frames)
}
