// clean_p2p.go exercises the point-to-point shapes the p2pcheck family
// inspects, in their sanctioned forms: a command/ack conversation with
// matching reply lengths, a complete dispatch switch, a complete name
// table, and send-before-receive ordering on both roles.
package clean

import (
	"time"

	"repro/internal/mpi"
)

const (
	cmdTag = 8100
	ackTag = 8101
)

const (
	pOne float32 = 1 + iota
	pTwo
)

// cleanP2PMaster issues both opcodes and reads fixed-size acks under a
// deadline.
func cleanP2PMaster(c *mpi.Comm) error {
	for _, op := range []float32{pOne, pTwo} {
		if err := c.SendBytes(1, cmdTag, []byte{byte(op)}); err != nil {
			return err
		}
		msg, err := c.RecvBytesTimeout(1, ackTag, time.Second)
		if err != nil {
			return err
		}
		if len(msg.Data) != 8 {
			return nil
		}
	}
	return nil
}

// cleanP2PWorker dispatches on the opcode byte and acks every command
// with the length the master checks for.
func cleanP2PWorker(c *mpi.Comm) error {
	for {
		msg, err := c.RecvBytes(0, cmdTag)
		if err != nil {
			return err
		}
		switch float32(msg.Data[0]) {
		case pOne:
			if err := c.SendBytes(0, ackTag, make([]byte, 8)); err != nil {
				return err
			}
		case pTwo:
			if err := c.SendBytes(0, ackTag, make([]byte, 8)); err != nil {
				return err
			}
		}
	}
}

// pName covers every dispatched opcode.
func pName(op float32) string {
	switch op {
	case pOne:
		return "one"
	case pTwo:
		return "two"
	}
	return "?"
}
