// Sanctioned forms of what the module-scoped shape analyzer inspects:
// fully proven contract calls (including under a transpose flag),
// runtime-guarded calls, contract-seeded pass-through, and an exact
// loop partition. This file must stay silent.
package clean

import "repro/internal/check"

// shapeMat is structurally matrix-shaped for the shape analyzer.
type shapeMat struct {
	Rows, Cols int
	Data       []float32
}

// newShapeMat allocates an r×c matrix.
//
//lint:shape return=(r,c)
func newShapeMat(r, c int) *shapeMat {
	return &shapeMat{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// mulShape is a contracted multiply: c = op(a)·b.
//
//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a
func mulShape(tA bool, a, b, c *shapeMat) {
	_, _, _, _ = tA, a, b, c
}

// axpyShape is a contracted level-1 op.
//
//lint:shape x=n y=n
func axpyShape(x, y []float32) {
	_, _ = x, y
}

// provenMul lines every dimension up, transpose flag included: op(a)
// is 3×4, so k=4 matches b's rows and c is m×n = 3×6.
func provenMul() {
	a := newShapeMat(4, 3)
	b := newShapeMat(4, 6)
	c := newShapeMat(3, 6)
	mulShape(true, a, b, c)
}

// guardedAxpy discharges the unprovable lengths with a dominating
// runtime check.Dims guard.
func guardedAxpy(x, y []float32) {
	check.Dims("axpy", len(x), len(y))
	axpyShape(x, y)
}

// passThrough proves via its own contract: g and d share the length
// symbol n, so forwarding both satisfies axpyShape's contract.
//
//lint:shape g=n d=n
func passThrough(g, d []float32) {
	axpyShape(g, d)
}

// tiledViews is the sanctioned running-offset partition: each advance
// equals the width of the sub-slice it follows.
func tiledViews(sizes []int) []shapeMat {
	total := 0
	for _, s := range sizes {
		total += s * s
	}
	flat := make([]float32, total)
	out := make([]shapeMat, 0, len(sizes))
	off := 0
	for _, s := range sizes {
		out = append(out, shapeMat{Rows: s, Cols: s, Data: flat[off : off+s*s]})
		off += s * s
	}
	return out
}
