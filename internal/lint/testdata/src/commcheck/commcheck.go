// Package commcheck is a lint fixture seeding master/worker collective
// protocol defects: dispatch arms whose collectives disagree with their
// master sender in kind, root, dtype, length or sequence length, an
// orphaned opcode arm, and collectives under rank-dependent branches.
package commcheck

import "repro/internal/mpi"

const (
	opGood float32 = 1 + iota // matched protocol: not flagged
	opKind                    // worker reduces where master broadcasts
	opRoot                    // sides disagree on the reduction root
	opDtype                   // f32 on one side, f64 on the other
	opLen                     // 3 elements sent, 2 expected
	opSeq                     // master runs 1 collective, worker 2
	opOrphan                  // dispatch arm with no master sender
	opStop                    // matched no-payload opcode: not flagged
)

// cmd issues one opcode to the workers, like the trainer's command
// broadcast.
func cmd(c *mpi.Comm, op float32) error {
	return c.Bcast(0, []float32{op, 0})
}

func masterGood(c *mpi.Comm, grad []float32) error {
	if err := cmd(c, opGood); err != nil {
		return err
	}
	if err := c.Reduce(0, mpi.OpSum, grad); err != nil {
		return err
	}
	return c.ReduceF64(0, mpi.OpSum, []float64{0, 0})
}

func masterKind(c *mpi.Comm, buf []float32) error {
	if err := cmd(c, opKind); err != nil {
		return err
	}
	return c.Bcast(0, buf)
}

func masterRoot(c *mpi.Comm, buf []float32) error {
	if err := cmd(c, opRoot); err != nil {
		return err
	}
	return c.Reduce(0, mpi.OpSum, buf)
}

func masterDtype(c *mpi.Comm) error {
	if err := cmd(c, opDtype); err != nil {
		return err
	}
	return c.Reduce(0, mpi.OpSum, []float32{0, 0})
}

func masterLen(c *mpi.Comm) error {
	if err := cmd(c, opLen); err != nil {
		return err
	}
	return c.ReduceF64(0, mpi.OpSum, []float64{1, 2, 3})
}

func masterSeq(c *mpi.Comm, buf []float32) error {
	if err := cmd(c, opSeq); err != nil {
		return err
	}
	return c.Bcast(0, buf)
}

func stop(c *mpi.Comm) error { return cmd(c, opStop) }

// worker is the op-dispatch loop the analyzer compares against the
// masters above.
func worker(c *mpi.Comm, buf []float32) error {
	cmdBuf := make([]float32, 2)
	for {
		if err := c.Bcast(0, cmdBuf); err != nil {
			return err
		}
		switch cmdBuf[0] {
		case opGood:
			if err := c.Reduce(0, mpi.OpSum, buf); err != nil {
				return err
			}
			if err := c.ReduceF64(0, mpi.OpSum, []float64{0, 0}); err != nil {
				return err
			}
		case opKind:
			if err := c.Reduce(0, mpi.OpSum, buf); err != nil { // want kind mismatch
				return err
			}
		case opRoot:
			if err := c.Reduce(1, mpi.OpSum, buf); err != nil { // want root mismatch
				return err
			}
		case opDtype:
			if err := c.ReduceF64(0, mpi.OpSum, []float64{0, 0}); err != nil { // want dtype mismatch
				return err
			}
		case opLen:
			if err := c.ReduceF64(0, mpi.OpSum, []float64{1, 2}); err != nil { // want length mismatch
				return err
			}
		case opSeq: // want sequence-length mismatch
			if err := c.Bcast(0, buf); err != nil {
				return err
			}
			if err := c.Reduce(0, mpi.OpSum, buf); err != nil {
				return err
			}
		case opOrphan: // want orphan-arm error
			if err := c.Reduce(0, mpi.OpSum, buf); err != nil {
				return err
			}
		case opStop:
			return nil
		}
	}
}

// rankCond seeds collectives under rank-dependent conditionals.
func rankCond(c *mpi.Comm, buf []float32) error {
	if c.Rank() == 0 {
		return c.Reduce(0, mpi.OpSum, buf) // want rank-divergent collective
	}
	rank := c.Rank()
	if rank > 1 {
		if err := c.Barrier(); err != nil { // want rank-divergent collective (derived var)
			return err
		}
	}
	return c.Barrier() // outside the branch: not flagged
}
