// Package deferinloop is the seeded-bad fixture for the deferinloop
// analyzer: defers that accumulate once per iteration.
package deferinloop

import (
	"os"
	"sync"
)

// openAll leaks one pending Close per file until the function returns.
func openAll(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}

// lockPerIter means every iteration after the first deadlocks: the
// deferred unlocks all run at function exit.
func lockPerIter(mu *sync.Mutex, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock()
	}
}

// --- sanctioned forms: none of these may fire ---

// perIterFunc wraps the iteration body in a function literal, so the
// defer runs once per call — the sanctioned per-iteration cleanup.
func perIterFunc(paths []string) error {
	for _, p := range paths {
		err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// deferOutsideLoop is the normal shape.
func deferOutsideLoop(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for i := 0; i < n; i++ {
		_ = i
	}
	return nil
}
