// Package deprecatedapi is a lint fixture seeding occurrences of the
// retired core training entry-point names. The shims no longer exist in
// internal/core, so the analyzer matches by name alone: local
// re-declarations that would resurrect a name are flagged, and so are
// calls to them — alongside the sanctioned Session form, which must
// stay silent.
package deprecatedapi

import (
	"repro/internal/core"
	"repro/internal/hf"
	"repro/internal/mpi"
)

func TrainDistributedHF(p core.Problem, cfg hf.Config, ranks int) error { // want: re-declaration
	sess, err := core.NewSession(p, core.WithRanks(ranks))
	if err != nil {
		return err
	}
	_, err = sess.Run(cfg)
	return err
}

func RunWorker(comm *mpi.Comm) error { // want: re-declaration
	_ = comm
	return nil
}

func legacyCallers(p core.Problem, cfg hf.Config, comm *mpi.Comm) error {
	if err := TrainDistributedHF(p, cfg, 4); err != nil { // want: retired name
		return err
	}
	return RunWorker(comm) // want: retired name
}

func sanctioned(p core.Problem, cfg hf.Config) error {
	sess, err := core.NewSession(p,
		core.WithRanks(4),
		core.WithFabric(core.FabricTCP),
		core.WithFaults(core.FaultPolicy{MaxEvictions: 2}),
	)
	if err != nil {
		return err
	}
	_, err = sess.Run(cfg)
	return err
}
