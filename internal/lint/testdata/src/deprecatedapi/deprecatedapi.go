// Package deprecatedapi is a lint fixture seeding calls to the
// superseded five-way core training entry points, alongside the
// sanctioned Session form that must stay silent.
package deprecatedapi

import (
	"repro/internal/core"
	"repro/internal/hf"
	"repro/internal/mpi"
	"repro/internal/obs"
)

func legacySpawn(p core.Problem, cfg hf.Config, ob *obs.Observer) error {
	if _, err := core.TrainDistributedHF(p, cfg, 4, nil); err != nil { // want: deprecated
		return err
	}
	if _, err := core.TrainDistributedHFObs(p, cfg, 4, nil, ob); err != nil { // want: deprecated
		return err
	}
	_, err := core.TrainDistributedHFTCP(p, cfg, 4, nil, ob) // want: deprecated
	return err
}

func legacyAttach(comm *mpi.Comm) error {
	return core.RunWorker(comm) // want: deprecated
}

func sanctioned(p core.Problem, cfg hf.Config) error {
	sess, err := core.NewSession(p,
		core.WithRanks(4),
		core.WithFabric(core.FabricTCP),
		core.WithFaults(core.FaultPolicy{MaxEvictions: 2}),
	)
	if err != nil {
		return err
	}
	_, err = sess.Run(cfg)
	return err
}
