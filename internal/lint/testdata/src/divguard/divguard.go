// Package divguard is the seeded-bad fixture for the divguard analyzer:
// float divisions by computed denominators with no zero/NaN guard.
package divguard

import "math"

// mean divides an accumulated sum by an accumulated count with no guard:
// an empty input yields 0/0 = NaN, which a reduction then broadcasts.
func mean(xs []float64) float64 {
	var sum, n float64
	for _, x := range xs {
		sum += x
		n++
	}
	return sum / n
}

// rho is the damping-update shape: actual/predicted improvement with an
// unguarded model-value denominator.
func rho(actual, predicted float64) float64 {
	return actual / predicted
}

// precondScale divides by an indexed diagonal entry with no positivity
// invariant in sight.
func precondScale(r, m []float64, i int) float64 {
	return r[i] / m[i]
}

// absRatio strips math.Abs and still finds the unguarded denominator.
func absRatio(a, b float64) float64 {
	return a / math.Abs(b)
}

// safeMean is the sanctioned negative case: a comparison guard.
func safeMean(sum, n float64) float64 {
	if n <= 0 {
		return 0
	}
	return sum / n
}

// clamped is guarded by a clamp (the comparison counts as the guard).
func clamped(x float64, frames int) float64 {
	if frames < 1 {
		frames = 1
	}
	return x / float64(frames)
}

// damped carries an additive epsilon in the denominator.
func damped(x, d float64) float64 {
	return x / (d + 1e-8)
}

// nanGuarded tests the denominator for non-finiteness before dividing.
func nanGuarded(a, b float64) float64 {
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return 0
	}
	return a / b
}

// half divides by a constant: nothing to guard.
func half(x float64) float64 {
	return x / 2
}
