// Package floateq is a lint fixture seeding float ==/!= comparisons.
package floateq

func compare(a float32, b float64, n int) bool {
	if a == 0 { // want: float equality
		return true
	}
	if b != 1.5 { // want: float inequality
		return false
	}
	if n == 0 { // integers compare exactly: not flagged
		return true
	}
	if b != b { // NaN self-test idiom: not flagged
		return false
	}
	//lint:ignore floateq fixture-sanctioned exact sentinel
	if a == 1 { // suppressed by the directive above
		return true
	}
	return threshold(b) == threshold(b) // identical operands: not flagged
}

const eps32, eps64 = 1.19e-07, 2.22e-16

func constants() bool {
	return eps32 == eps64 // both constant-folded: not flagged
}

func threshold(v float64) float64 { return v * 0.5 }
