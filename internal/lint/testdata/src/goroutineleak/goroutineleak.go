// Package goroutineleak is the seeded-bad fixture for the goroutineleak
// analyzer: fire-and-forget goroutines with no reachable shutdown path.
package goroutineleak

import (
	"net"
	"net/http"
	"sync"
)

func work() {}

// spinForever loops with no exit, receive or select: nothing outside
// the goroutine can ever stop it.
func spinForever() {
	go func() {
		for {
			work()
		}
	}()
}

// pump is the named-function variant of the same leak.
func pump() {
	for {
		work()
	}
}

func spawnPump() {
	go pump()
}

// serveNoJoin starts an http serve loop but gives the owner nothing to
// join on after shutting the server down.
func serveNoJoin(srv *http.Server, ln net.Listener) {
	go func() {
		_ = srv.Serve(ln)
	}()
}

// rangeNeverClosed consumes a channel the spawning function never
// closes and the goroutine never escapes.
func rangeNeverClosed() chan int {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	return ch
}

// --- sanctioned forms: none of these may fire ---

// doneLoop threads a done channel through a select: the owner can stop
// it.
func doneLoop(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// joinedServe signals completion after the serve loop returns, so Close
// callers can join.
func joinedServe(srv *http.Server, ln net.Listener) chan struct{} {
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	return done
}

// workerPool ranges over a channel its spawner closes — the worker-pool
// contract.
func workerPool(items []int) {
	ch := make(chan int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range ch {
			_ = v
		}
	}()
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
}

// bounded runs to completion on its own.
func bounded(res chan<- int) {
	go func() {
		work()
		res <- 1
	}()
}

// selfTerminating exits its loop on error, like a transport read loop.
func selfTerminating(c net.Conn) {
	go func() {
		buf := make([]byte, 64)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
}
