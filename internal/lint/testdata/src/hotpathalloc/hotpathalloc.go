// Package hotpathalloc is a lint fixture seeding allocation and
// formatting hazards inside a //lint:hotpath-annotated kernel.
package hotpathalloc

import (
	"fmt"
	"time"
)

// hot is the annotated inner kernel; its body must stay free of fmt,
// time.Now and interface boxing.
//
//lint:hotpath
func hot(x []float32) float64 {
	if len(x) == 0 {
		// Guard-clause panics may format: the process is dying anyway.
		panic(fmt.Sprintf("hot: empty input"))
	}
	label := fmt.Sprint(len(x)) // want: fmt call on hot path
	_ = label
	start := time.Now() // want: time.Now on hot path
	_ = start
	box(len(x)) // want: int boxed into interface
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// cold is unannotated: the same hazards are fine here.
func cold(x []float32) string {
	box(time.Now())
	return fmt.Sprint(len(x))
}

func box(v any) {}

// forward is annotated but only re-forwards an existing interface slice,
// which boxes nothing new.
//
//lint:hotpath
func forward(args []any) {
	box2(args...)
}

func box2(vs ...any) {}
