// Package lockacrossblock is the seeded-bad fixture for the
// lockacrossblock analyzer: mutexes held across blocking collectives,
// channel operations and network calls.
package lockacrossblock

import (
	"net"
	"sync"

	"repro/internal/mpi"
)

type master struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	state int
}

// sendUnderLock blocks on a channel send while holding the state lock.
func (m *master) sendUnderLock(ch chan int) {
	m.mu.Lock()
	ch <- m.state
	m.mu.Unlock()
}

// recvUnderLock blocks on a receive while holding a read lock.
func (m *master) recvUnderLock(ch chan int) {
	m.rw.RLock()
	m.state = <-ch
	m.rw.RUnlock()
}

// collectiveUnderDeferredLock is the eviction deadlock shape: the
// deferred unlock keeps the mutex held across the whole collective.
func (m *master) collectiveUnderDeferredLock(c *mpi.Comm, buf []float32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return c.Allreduce(mpi.OpSum, buf)
}

// selectUnderLock parks on a no-default select with the lock held.
func (m *master) selectUnderLock(a, b chan int) {
	m.mu.Lock()
	select {
	case v := <-a:
		m.state = v
	case v := <-b:
		m.state = v
	}
	m.mu.Unlock()
}

// writeUnderLock holds the lock across a network write.
func (m *master) writeUnderLock(c net.Conn, frame []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := c.Write(frame)
	return err
}

// --- sanctioned forms: none of these may fire ---

// unlockFirst releases before blocking.
func (m *master) unlockFirst(ch chan int) {
	m.mu.Lock()
	v := m.state
	m.mu.Unlock()
	ch <- v
}

// tryNotify uses a default arm: the select cannot block.
func (m *master) tryNotify(ch chan int) {
	m.mu.Lock()
	select {
	case ch <- m.state:
	default:
	}
	m.mu.Unlock()
}

// condWait is exempt by design: Cond.Wait releases the lock while
// blocked.
func condWait(c *sync.Cond, ready *bool) {
	c.L.Lock()
	for !*ready {
		c.Wait()
	}
	c.L.Unlock()
}

// deferredWork only captures the send in a literal that runs after the
// critical section as far as lexical analysis can tell.
func (m *master) deferredWork(ch chan int) func() {
	m.mu.Lock()
	f := func() { ch <- 1 }
	m.mu.Unlock()
	return f
}
