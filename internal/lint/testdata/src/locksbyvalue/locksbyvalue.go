// Package locksbyvalue is a lint fixture seeding by-value copies of
// structs that embed sync primitives.
package locksbyvalue

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type counted struct {
	hits atomic.Int64
}

func (g guarded) valueReceiver() int { // want: value receiver copies mu
	return g.n
}

func (g *guarded) pointerReceiver() int { return g.n }

func sites(list []guarded, c *counted) {
	g := list[0] // want: assignment copies mu
	sink(&g)
	for _, it := range list { // want: range value copies mu
		sink(&it)
	}
	consume(list[1]) // want: argument copies mu
	record(*c)       // want: argument copies hits
}

func pick(list []guarded) guarded {
	return list[0] // want: return copies mu
}

// Construction sites create the value in place rather than copying an
// existing lock, so none of these are flagged.
func fresh() *guarded {
	g := guarded{}
	var h guarded
	sink(&h)
	return &g
}

func sink(*guarded)   {}
func consume(guarded) {}
func record(counted)  {}
