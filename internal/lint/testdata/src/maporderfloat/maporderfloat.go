// Package maporderfloat is the seeded-bad fixture for the maporderfloat
// analyzer: float state built in map iteration order.
package maporderfloat

// sumValues accumulates a float across a map range: iteration order is
// randomized, so the rounding differs run to run.
func sumValues(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

type sample struct {
	Name string
	Val  float64
}

// collect builds a float-carrying slice in map order.
func collect(m map[string]float64) []sample {
	var out []sample
	for k, v := range m {
		out = append(out, sample{Name: k, Val: v})
	}
	return out
}

// accumulate is a local aggregation helper folding into a float pointer.
func accumulate(dst *float64, v float64) {
	*dst += v
}

// sumViaHelper reaches the accumulator through one level of dataflow.
func sumViaHelper(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		accumulate(&total, v)
	}
	return total
}

// perKey is a negative case: per-key accumulation into loop-local state
// touches each key once, so map order cannot change the result.
func perKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// countKeys is a negative case: integer counting is order-free.
func countKeys(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
