// Package obsnilguard is a lint fixture seeding unguarded Metrics/Trace
// field access on a possibly-nil *obs.Observer.
package obsnilguard

import "repro/internal/obs"

func unguarded(ob *obs.Observer) {
	ob.Metrics.Counter("steps").Inc() // want: unguarded Metrics access
	_ = ob.Trace                      // want: unguarded Trace access
}

func guardedInline(ob *obs.Observer) {
	if ob != nil {
		ob.Metrics.Counter("steps").Inc() // guarded: not flagged
	}
	if ob != nil && ob.Metrics != nil { // && chain still guards: not flagged
		ob.Metrics.Counter("steps").Inc()
	}
}

func disabled(ob *obs.Observer) bool {
	return ob == nil || ob.Metrics == nil // short-circuit ||: not flagged
}

func guardedEarlyExit(ob *obs.Observer) {
	if ob == nil {
		return
	}
	ob.Trace.Begin(0, "cg").End() // early exit above: not flagged
}

func guardedElse(ob *obs.Observer) {
	if ob == nil {
		noop()
	} else {
		_ = ob.Metrics // else branch of == nil: not flagged
	}
}

// accessor uses the sanctioned nil-safe surface.
func accessor(ob *obs.Observer) {
	ob.Registry().Counter("steps").Inc()
	ob.Span(0, "cg").End()
	if t := ob.Tracer(); t != nil {
		t.Begin(0, "cg").End()
	}
}

// byValue cannot be nil, so field access is safe.
func byValue(ob obs.Observer) {
	_ = ob.Metrics
}

func noop() {}
