// Package obsnilguard is a lint fixture seeding unguarded Metrics/Trace
// field access on a possibly-nil *obs.Observer and unguarded
// Traces/Flight/Status access on a possibly-nil *telemetry.Plane.
package obsnilguard

import (
	"repro/internal/obs"
	"repro/internal/obs/telemetry"
)

func unguarded(ob *obs.Observer) {
	ob.Metrics.Counter("steps").Inc() // want: unguarded Metrics access
	_ = ob.Trace                      // want: unguarded Trace access
}

func guardedInline(ob *obs.Observer) {
	if ob != nil {
		ob.Metrics.Counter("steps").Inc() // guarded: not flagged
	}
	if ob != nil && ob.Metrics != nil { // && chain still guards: not flagged
		ob.Metrics.Counter("steps").Inc()
	}
}

func disabled(ob *obs.Observer) bool {
	return ob == nil || ob.Metrics == nil // short-circuit ||: not flagged
}

func guardedEarlyExit(ob *obs.Observer) {
	if ob == nil {
		return
	}
	ob.Trace.Begin(0, "cg").End() // early exit above: not flagged
}

func guardedElse(ob *obs.Observer) {
	if ob == nil {
		noop()
	} else {
		_ = ob.Metrics // else branch of == nil: not flagged
	}
}

// accessor uses the sanctioned nil-safe surface.
func accessor(ob *obs.Observer) {
	ob.Registry().Counter("steps").Inc()
	ob.Span(0, "cg").End()
	if t := ob.Tracer(); t != nil {
		t.Begin(0, "cg").End()
	}
}

// byValue cannot be nil, so field access is safe.
func byValue(ob obs.Observer) {
	_ = ob.Metrics
}

func noop() {}

// events exercises the Events field added with the protocol event log:
// unguarded access is flagged like Metrics/Trace, guarded access and the
// Eventf/EventLog accessors are sanctioned.
func events(ob *obs.Observer) {
	ob.Events.Addf(0, "boom") // want: unguarded Events access
	if ob != nil {
		ob.Events.Addf(0, "ok") // guarded: not flagged
	}
	ob.Eventf(0, "ok")              // nil-safe accessor: not flagged
	_ = ob.EventLog()               // nil-safe accessor: not flagged
	_ = ob == nil || ob.Events == nil // short-circuit ||: not flagged
}

// plane exercises the telemetry.Plane fields added with the telemetry
// plane: unguarded Traces/Flight/Status access is flagged like the
// Observer fields; guarded access and the Merger/Recorder/Health
// accessors are sanctioned.
func plane(p *telemetry.Plane) {
	_ = p.Traces // want: unguarded Traces access
	_ = p.Flight // want: unguarded Flight access
	_ = p.Status // want: unguarded Status access
	if p != nil {
		_ = p.Traces // guarded: not flagged
	}
	if p == nil {
		return
	}
	_ = p.Status                    // early exit above: not flagged
	_ = p.Merger()                  // nil-safe accessor: not flagged
	_ = p.Recorder()                // nil-safe accessor: not flagged
	_ = p.Health()                  // nil-safe accessor: not flagged
	_ = p == nil || p.Flight == nil // short-circuit ||: not flagged
}
