// Package opproto seeds every opproto hazard: a dispatch arm with no
// master sender, an opcode sent but dispatched nowhere, a reply-length
// mismatch, an arm that never sends the awaited reply, and an opcode
// missing from the name table.
package opproto

import (
	"time"

	"repro/internal/mpi"
)

const (
	opGood   float32 = 1 + iota // sent, handled, named, 16-byte reply both sides
	opShort                     // master wants 16 bytes, arm replies 8
	opDead                      // arm exists, master never sends it
	opLost                      // master sends it, no arm handles it
	opMute                      // master waits for a reply the arm never sends
	opNoName                    // handled and sent, but absent from opLabel
)

const (
	tagCmd   = 7000
	tagReply = 7001
)

func encodePair(a, b float64) []byte {
	buf := make([]byte, 16)
	_, _ = a, b
	return buf
}

// master issues each opcode and gathers fixed-size replies.
func master(c *mpi.Comm) {
	gather(c, opGood, 16)
	gather(c, opShort, 16)
	gather(c, opLost, 16) // sent with p2p traffic, dispatched nowhere
	gather(c, opMute, 16)
	gather(c, opNoName, 16)
}

// gather broadcasts op and collects one wantLen-byte reply per worker.
func gather(c *mpi.Comm, op float32, wantLen int) [][]byte {
	var replies [][]byte
	for w := 1; w < c.Size(); w++ {
		if err := c.SendBytes(w, tagCmd, []byte{byte(op)}); err != nil {
			continue
		}
		msg, err := c.RecvBytesTimeout(w, tagReply, time.Second)
		if err != nil || len(msg.Data) != wantLen {
			continue
		}
		replies = append(replies, msg.Data)
	}
	return replies
}

// worker dispatches on the opcode byte.
func worker(c *mpi.Comm) error {
	reply := func(data []byte) error { return c.SendBytes(0, tagReply, data) }
	for {
		msg, err := c.RecvBytes(0, tagCmd)
		if err != nil {
			return err
		}
		switch float32(msg.Data[0]) {
		case opGood:
			if err := reply(encodePair(1, 2)); err != nil {
				return err
			}
		case opShort:
			if err := reply(make([]byte, 8)); err != nil { // 8 bytes against a 16-byte check
				return err
			}
		case opDead: // no master path issues opDead
			if err := reply(encodePair(0, 0)); err != nil {
				return err
			}
		case opMute: // master waits; no reply ever leaves
			continue
		case opNoName:
			if err := reply(encodePair(3, 4)); err != nil {
				return err
			}
		}
	}
}

// opLabel names opcodes for logs — opNoName is missing.
func opLabel(op float32) string {
	switch op {
	case opGood:
		return "good"
	case opShort:
		return "short"
	case opDead:
		return "dead"
	case opMute:
		return "mute"
	}
	return "?"
}
