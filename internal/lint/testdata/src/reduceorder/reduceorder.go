// Package reduceorder is the seeded-bad fixture for the reduceorder
// analyzer: goroutine fan-in folded in channel-arrival order.
package reduceorder

// fanInRecv folds worker results as they arrive: `total += <-ch` sums in
// scheduler order, reassociating the float addition differently per run.
func fanInRecv(parts [][]float64, ch chan float64) float64 {
	var total float64
	for i := 0; i < len(parts); i++ {
		total += <-ch
	}
	return total
}

// fanInRange does the same through range-over-channel.
func fanInRange(ch chan float64) float64 {
	var total float64
	for v := range ch {
		total += v
	}
	return total
}

type result struct {
	idx int
	val float64
}

// fanInStruct receives into a local and folds a field of it — the same
// arrival-order hazard one assignment removed.
func fanInStruct(ch chan result, n int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		r := <-ch
		total += r.val
	}
	return total
}

// merged is the sanctioned negative case: each worker writes results[i]
// (disjoint slots), the loop only counts completions, and the final fold
// runs sequentially in index order.
func merged(parts [][]float64) float64 {
	results := make([]float64, len(parts))
	done := make(chan int, len(parts))
	for i := range parts {
		go func(i int) {
			var s float64
			for _, v := range parts[i] {
				s += v
			}
			results[i] = s
			done <- i
		}(i)
	}
	for range parts {
		<-done
	}
	var total float64
	for _, v := range results {
		total += v
	}
	return total
}
