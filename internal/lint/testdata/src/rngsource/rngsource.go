// Package rngsource is the seeded-bad fixture for the rngsource
// analyzer: global math/rand draws and time-derived seeds.
package rngsource

import (
	"math/rand"
	"time"
)

// globalDraw samples from the process-wide source: any concurrent draw
// elsewhere perturbs the stream.
func globalDraw() float64 {
	return rand.Float64()
}

// globalPerm shuffles through the global source.
func globalPerm(n int) []int {
	return rand.Perm(n)
}

// reseed mutates the global source under everyone's feet.
func reseed() {
	rand.Seed(42)
}

// timeSeeded makes two "identical" runs start from different streams.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// seeded is the sanctioned negative case: an explicit source seeded from
// configuration.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
