// Package sendrecvpair seeds the pairing hazards: a blocking receive
// on a tag nothing in the package sends, and the recv-before-send
// deadlock cross between two straight-line role functions.
package sendrecvpair

import "repro/internal/mpi"

const (
	tagWork  = 4100
	tagAck   = 4101
	tagPing  = 4200
	tagPong  = 4201
	tagGhost = 4300 // received below, sent nowhere
)

// masterOK and workerOK pair correctly: each side sends before the
// other's blocking receive runs.
func masterOK(c *mpi.Comm) error {
	if err := c.SendBytes(1, tagWork, []byte{1}); err != nil {
		return err
	}
	_, err := c.RecvBytes(1, tagAck)
	return err
}

func workerOK(c *mpi.Comm) error {
	msg, err := c.RecvBytes(0, tagWork)
	if err != nil {
		return err
	}
	return c.SendBytes(0, tagAck, msg.Data)
}

// ghost blocks receiving a tag with no sender in the package.
func ghost(c *mpi.Comm) ([]byte, error) {
	msg, err := c.RecvBytes(0, tagGhost)
	if err != nil {
		return nil, err
	}
	return msg.Data, nil
}

// masterCross and workerCross both receive first: each waits for a
// message the other sends only after its own receive completes.
func masterCross(c *mpi.Comm) error {
	msg, err := c.RecvBytes(1, tagPong)
	if err != nil {
		return err
	}
	return c.SendBytes(1, tagPing, msg.Data)
}

func workerCross(c *mpi.Comm) error {
	msg, err := c.RecvBytes(0, tagPing)
	if err != nil {
		return err
	}
	return c.SendBytes(0, tagPong, msg.Data)
}
