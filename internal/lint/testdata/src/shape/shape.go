// Package shape seeds golden positions for the module-scoped shape
// analyzer: provable contract mismatches (plain and under a transpose
// flag), an unprovable-and-unguarded call, partition overlap/gap/
// coverage errors, and malformed annotations. Sanctioned forms live in
// the clean fixture.
package shape

import "repro/internal/check"

// Mat is the local matrix shape (structurally matrix-shaped: integer
// Rows/Cols fields).
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat allocates an r×c matrix.
//
//lint:shape return=(r,c)
func NewMat(r, c int) *Mat {
	return &Mat{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// Mul is contracted but NOT runtime-enforced: c = op(a)·b.
//
//lint:shape a=(m,k) b=(k,n) c=(m,n) tA:swap=a
func Mul(tA bool, a, b, c *Mat) {
	_, _, _, _ = tA, a, b, c
}

// AxpyLocal is a contracted, unenforced level-1 op.
//
//lint:shape x=n y=n
func AxpyLocal(alpha float32, x, y []float32) {
	_, _, _ = alpha, x, y
}

// DotLocal is contracted AND enforced: the panic guard discharges call
// sites the analyzer cannot prove.
//
//lint:shape x=n y=n
func DotLocal(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("shape: dot length mismatch")
	}
	var s float32
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// mismatchDims: the inner dimension provably disagrees (k binds to 4
// from a's cols, b has 5 rows).
func mismatchDims() {
	a := NewMat(3, 4)
	b := NewMat(5, 6)
	c := NewMat(3, 6)
	Mul(false, a, b, c)
}

// mismatchTranspose: under tA=true the op-shape of a is 4×3, so k is 3
// and b's 4 rows provably disagree.
func mismatchTranspose() {
	a := NewMat(3, 4)
	b := NewMat(4, 6)
	c := NewMat(4, 6)
	Mul(true, a, b, c)
}

// unprovable: the operand lengths come from opaque parameters,
// AxpyLocal enforces nothing, and no guard dominates the call.
func unprovable(x, y []float32) {
	AxpyLocal(1, x, y)
}

// guarded: the same call under a dominating check.Dims is discharged.
func guarded(x, y []float32) {
	check.Dims("axpy", len(x), len(y))
	AxpyLocal(1, x, y)
}

// enforcedCallee: DotLocal's own runtime guard is the proof.
func enforcedCallee(x, y []float32) float32 {
	return DotLocal(x, y)
}

// partitionOverlap: the offset advances 8 after a 12-wide sub-slice —
// the next window re-reads 4 elements.
func partitionOverlap() []float32 {
	p := make([]float32, 24)
	off := 0
	a := p[off : off+12]
	off += 8
	b := p[off : off+12]
	off += 12
	_ = a
	return b
}

// partitionGap: the offset advances 13 after a 12-wide sub-slice,
// silently skipping one element.
func partitionGap() []float32 {
	p := make([]float32, 30)
	off := 0
	w := p[off : off+12]
	off += 13
	b := p[off : off+17]
	off += 17
	_ = w
	return b
}

// partitionShort: adjacency is exact but the two sub-slices cover only
// 32 of the 40 elements.
func partitionShort() ([]float32, []float32) {
	p := make([]float32, 40)
	off := 0
	a := p[off : off+16]
	off += 16
	b := p[off : off+16]
	off += 16
	return a, b
}

// BadContract carries an unparseable annotation.
//
//lint:shape a=(m,k b=(k,n)
func BadContract(a, b *Mat) {
	_, _ = a, b
}

// BadOperand names an operand that is not a parameter.
//
//lint:shape z=(m,k)
func BadOperand(a *Mat) {
	_ = a
}
