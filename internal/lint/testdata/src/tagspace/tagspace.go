// Package tagspace seeds the module-wide tag-plan hazards: a value
// collision between two named tag constants, a dynamic block starting
// inside another, a static tag landing inside a dynamic block, and
// orphan traffic in both directions. It also exercises dynamic-tag
// resolution through a wrapper's tag parameter.
package tagspace

import (
	"time"

	"repro/internal/mpi"
)

const (
	tagAlpha = 5000 // the canonical command tag
	tagBeta  = 5000 // collides with tagAlpha
	tagSent  = 6100 // sent below, received nowhere
	tagHeard = 6200 // received below, sent nowhere
	tagQuiet = 6300 // sent below, suppressed in place
)

// Dynamic bases: a tag used with a per-round offset reserves the block
// [base, base+1<<24).
const (
	tagBlockA = 1 << 20
	tagBlockB = 1<<20 + 16384 // starts inside tagBlockA's block
	tagInside = 1<<20 + 100   // static tag inside tagBlockA's block
)

// alpha pairs a send with a deadline-bounded receive on tagAlpha.
func alpha(c *mpi.Comm) error {
	if err := c.SendBytes(1, tagAlpha, nil); err != nil {
		return err
	}
	_, err := c.RecvBytesTimeout(1, tagAlpha, time.Second)
	return err
}

// beta reuses the same value under a different name.
func beta(c *mpi.Comm) error {
	return c.SendBytes(1, tagBeta, nil)
}

// rounds exercises per-round dynamic tags; the first send goes through
// a wrapper, so the tag expression must resolve at this call site.
func rounds(c *mpi.Comm, round int) error {
	if err := sendRound(c, tagBlockA+round, []byte{1}); err != nil {
		return err
	}
	if _, err := c.RecvBytesTimeout(1, tagBlockA+round, time.Second); err != nil {
		return err
	}
	if err := c.SendBytes(1, tagBlockB+round, nil); err != nil {
		return err
	}
	if _, err := c.RecvBytesTimeout(1, tagBlockB+round, time.Second); err != nil {
		return err
	}
	if err := c.SendBytes(1, tagInside, nil); err != nil {
		return err
	}
	_, err := c.RecvBytesTimeout(1, tagInside, time.Second)
	return err
}

// sendRound forwards its tag parameter.
func sendRound(c *mpi.Comm, tag int, data []byte) error {
	return c.SendBytes(1, tag, data)
}

// orphans issues a send nobody receives and a receive nobody feeds.
func orphans(c *mpi.Comm) error {
	if err := c.SendBytes(1, tagSent, nil); err != nil {
		return err
	}
	_, err := c.RecvBytesTimeout(1, tagHeard, time.Second)
	return err
}

// quiet documents a sanctioned one-way tag: the receiving half lives
// outside this module.
func quiet(c *mpi.Comm) error {
	//lint:ignore tagspace the collector half of this tag lives outside the module
	return c.SendBytes(1, tagQuiet, nil)
}
