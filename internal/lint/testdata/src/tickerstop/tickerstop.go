// Package tickerstop is the seeded-bad fixture for the tickerstop
// analyzer: timers and tickers created without a Stop on any path.
package tickerstop

import "time"

func work() {}

// pollLeaky never stops its ticker: the runtime timer outlives the
// function forever.
func pollLeaky(done chan struct{}, every time.Duration) {
	tk := time.NewTicker(every)
	for {
		select {
		case <-done:
			return
		case <-tk.C:
			work()
		}
	}
}

// timeoutLeaky leaves the timer armed; its capture stays pinned until
// it fires.
func timeoutLeaky(ch chan int, d time.Duration) int {
	tm := time.NewTimer(d)
	select {
	case v := <-ch:
		return v
	case <-tm.C:
		return -1
	}
}

// watchdogLeaky arms an AfterFunc and forgets it.
func watchdogLeaky(d time.Duration) {
	af := time.AfterFunc(d, work)
	_ = af
	work()
}

// tickLeaky uses time.Tick: the ticker handle is unreachable, so it can
// never be stopped at all.
func tickLeaky(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case <-time.Tick(time.Second):
			work()
		}
	}
}

// --- sanctioned forms: none of these may fire ---

// pollStopped is the canonical shape: defer Stop right after creation.
func pollStopped(done chan struct{}, every time.Duration) {
	tk := time.NewTicker(every)
	defer tk.Stop()
	for {
		select {
		case <-done:
			return
		case <-tk.C:
			work()
		}
	}
}

// timeoutStopped disarms the timer in a deferred literal.
func timeoutStopped(ch chan int, d time.Duration) int {
	tm := time.NewTimer(d)
	defer func() { tm.Stop() }()
	select {
	case v := <-ch:
		return v
	case <-tm.C:
		return -1
	}
}

// handedOff transfers ownership: the caller is responsible for Stop.
func handedOff(every time.Duration) *time.Ticker {
	tk := time.NewTicker(every)
	return tk
}

type watchdog struct{ t *time.Timer }

// storedOwnership parks the timer in a struct whose Close owns the
// lifecycle.
func storedOwnership(d time.Duration) *watchdog {
	tm := time.AfterFunc(d, work)
	return &watchdog{t: tm}
}

// resetKeepsAlive re-arms rather than stops: Reset counts as lifecycle
// management.
func resetKeepsAlive(tmCh chan int, d time.Duration) {
	tm := time.NewTimer(d)
	for range tmCh {
		tm.Reset(d)
	}
	tm.Stop()
}
