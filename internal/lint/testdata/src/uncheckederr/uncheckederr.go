// Package uncheckederr is a lint fixture seeding ignored error returns
// from mpi.Comm collectives and encode/io paths. Lines marked "want"
// must be reported; everything else must stay silent.
package uncheckederr

import (
	"encoding/gob"
	"os"

	"repro/internal/mpi"
)

func leaky(c *mpi.Comm, enc *gob.Encoder, buf []float32) {
	c.Bcast(0, buf)             // want: ignored error from mpi collective
	c.Allreduce(mpi.OpSum, buf) // want: ignored error from mpi collective
	enc.Encode(buf)             // want: ignored error from gob encode
	os.Remove("scratch")        // want: ignored error from os
}

func careful(c *mpi.Comm, buf []float32) error {
	if err := c.Bcast(0, buf); err != nil {
		return err
	}
	// Explicit discard is an audited decision, not an oversight.
	_ = c.Barrier()
	f, err := os.Open("scratch")
	if err != nil {
		return err
	}
	// Deferred close on a read-only file: conventional, not flagged.
	defer f.Close()
	return nil
}
