package lint

import (
	"go/ast"
	"go/types"
)

// TickerStop flags time.Ticker/time.Timer values that are created but
// never stopped in the creating function. An unstopped Ticker leaks its
// runtime timer forever; an unstopped Timer holds its callback and
// capture alive until it fires — and the watchdog/heartbeat timers this
// repo arms are routinely longer-lived than the operations they guard,
// so "it fires eventually" still means seconds of pinned memory per
// collective in a tight CG loop. time.Tick is flagged unconditionally:
// its ticker is unreachable and can never be stopped.
//
// The analyzer tracks locals assigned from time.NewTicker, time.NewTimer
// or time.AfterFunc and requires a plain or deferred .Stop() (or
// .Reset(...)) call on the same variable somewhere in the function,
// including inside deferred function literals. A value that escapes the
// function — returned, stored into a struct/slice/map, passed to a call,
// aliased, or sent on a channel — transfers ownership and is exempt:
// the lifecycle becomes the recipient's contract, typically audited at
// its Close method.
//
// Severity: a missing Stop on a Ticker and any use of time.Tick are
// errors (permanent leaks); a missing Stop on a Timer/AfterFunc is a
// warning (bounded leak, still a hazard in loops).
type TickerStop struct{}

// Name implements Analyzer.
func (TickerStop) Name() string { return "tickerstop" }

// Doc implements Analyzer.
func (TickerStop) Doc() string {
	return "time.Ticker/Timer created without Stop on every exit path (and any " +
		"time.Tick use); the runtime timer and its capture leak"
}

// Run implements Analyzer.
func (t TickerStop) Run(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, t.checkFunc(p, body)...)
			}
			return true // nested literals are re-visited with their own scope
		})
	}
	return out
}

// timerLocal is one `x := time.NewTicker/NewTimer/AfterFunc(...)` site.
type timerLocal struct {
	id   *ast.Ident // the declared variable
	ctor string     // "NewTicker", "NewTimer" or "AfterFunc"
	node ast.Node   // position anchor for the finding
}

// checkFunc audits one function body. Constructor sites are collected
// with nested function literals pruned (Run audits each literal with
// its own scope), but Stop/escape uses are searched through the whole
// body including nested literals: `defer func() { t.Stop() }()` and a
// goroutine-side Stop are legitimate lifecycles.
func (t TickerStop) checkFunc(p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	var locals []timerLocal

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			if s.Body != body { // prune nested literals, not the body itself
				return false
			}
		case *ast.CallExpr:
			if fn := p.calleeFunc(s); fn != nil && pkgPath(fn) == "time" && fn.Name() == "Tick" {
				out = append(out, p.finding(t, SevError, s,
					"time.Tick leaks its ticker (no handle to Stop); use time.NewTicker with defer Stop"))
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				ctor := timerCtor(p, rhs)
				if ctor == "" || i >= len(s.Lhs) {
					continue
				}
				if id, ok := unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name != "_" && p.objOf(id) != nil {
					locals = append(locals, timerLocal{id: id, ctor: ctor, node: rhs})
				}
			}
		}
		return true
	})

	for _, tl := range locals {
		obj := p.objOf(tl.id)
		if timerStopped(p, body, obj) || timerEscapes(p, body, tl.id, obj) {
			continue
		}
		sev := SevWarn
		noun := "timer"
		if tl.ctor == "NewTicker" {
			sev = SevError
			noun = "ticker"
		}
		out = append(out, p.finding(t, sev, tl.node,
			"time.%s result %q is never stopped in this function; the %s and its "+
				"capture leak — add (defer) %s.Stop() or hand ownership off explicitly",
			tl.ctor, tl.id.Name, noun, tl.id.Name))
	}
	return out
}

// timerCtor reports which timer constructor (if any) the expression
// calls.
func timerCtor(p *Package, e ast.Expr) string {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := p.calleeFunc(call)
	if fn == nil || pkgPath(fn) != "time" {
		return ""
	}
	switch fn.Name() {
	case "NewTicker", "NewTimer", "AfterFunc":
		return fn.Name()
	}
	return ""
}

// timerStopped reports whether obj receives a .Stop() or .Reset(...)
// call anywhere in body, including inside deferred/spawned literals.
func timerStopped(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Stop" && sel.Sel.Name != "Reset") {
			return true
		}
		if id := rootIdent(sel.X); id != nil && p.objOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// timerEscapes reports whether the timer variable leaves the function's
// custody: returned, passed as a call argument, stored through an
// assignment (field, index, or alias), placed in a composite literal,
// or sent on a channel. Any of these hands the Stop obligation to the
// recipient.
func timerEscapes(p *Package, body *ast.BlockStmt, decl *ast.Ident, obj types.Object) bool {
	escaped := false
	usesObj := func(e ast.Expr) bool {
		used := false
		ast.Inspect(e, func(n ast.Node) bool {
			if used {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && id != decl && p.objOf(id) == obj {
				used = true
			}
			return !used
		})
		return used
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if usesObj(r) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			// Arguments only: a method call on the timer itself (t.Stop,
			// t.Reset, <-t.C is not a call) does not transfer ownership.
			for _, arg := range s.Args {
				if usesObj(arg) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			// The declaring statement itself and blank assignments do not
			// count; any other assignment with the timer on the right is a
			// store or alias.
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					if id, ok := unparen(s.Lhs[i]).(*ast.Ident); ok && (id == decl || id.Name == "_") {
						continue
					}
				}
				if usesObj(rhs) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if usesObj(s.Value) {
				escaped = true
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if usesObj(el) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}
