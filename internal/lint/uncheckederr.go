package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// UncheckedErr flags statement-level calls that silently discard an error
// result from an error-critical package: the MPI layer (a dropped
// Send/Recv/Bcast/Allreduce/Reduce error leaves ranks desynchronized and
// poisons every later bitwise-deterministic reduction) and the
// serialization/IO paths used by the wire protocol and checkpointing.
//
// Only implicit discards are reported — a bare `c.Bcast(...)` as its own
// statement. An explicit `_ = c.Bcast(...)` records a decision and is
// allowed, as are discards in defer/go statements (conventional for
// best-effort cleanup like deferred Close).
type UncheckedErr struct{}

// errCriticalPkgs are the packages whose error returns must never be
// dropped implicitly.
var errCriticalPkgs = map[string]bool{
	"repro/internal/mpi": true,
	"encoding/gob":       true,
	"encoding/json":      true,
	"io":                 true,
	"bufio":              true,
	"os":                 true,
}

// Name implements Analyzer.
func (UncheckedErr) Name() string { return "uncheckederr" }

// Doc implements Analyzer.
func (UncheckedErr) Doc() string {
	return "statement-level call discards an error from mpi/gob/json/io/bufio/os; " +
		"a dropped Comm error desynchronizes ranks and corrupts the deterministic reduction"
}

// Run implements Analyzer.
func (u UncheckedErr) Run(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.calleeFunc(call)
			if fn == nil || !errCriticalPkgs[pkgPath(fn)] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || !returnsError(sig) {
				return true
			}
			out = append(out, p.finding(u, SevError, stmt,
				"error result of %s discarded; check it or assign to _ explicitly", shortFuncName(fn)))
			return true
		})
	}
	return out
}

// returnsError reports whether any result of sig is the error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// shortFuncName renders a function or method name without the module
// prefix: "(*mpi.Comm).Bcast", "gob.(*Encoder).Encode".
func shortFuncName(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, "repro/internal/", "")
	return name
}
