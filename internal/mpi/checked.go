package mpi

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Cross-rank protocol conformance checking: the runtime half of
// commcheck. Every collective entry stamps a per-rank sequence number
// and a descriptor (kind, dtype, root, element count, call site); each
// message a checked collective exchanges carries that descriptor as a
// small piggybacked header. A receiver that observes a peer executing a
// *different* collective — wrong kind, wrong sequence number, wrong
// dtype, wrong root, wrong length — fails immediately with both ranks'
// call sites instead of deadlocking or silently folding mismatched
// buffers. Divergences that exchange no message (both ranks blocked in
// mismatched receives) are caught by a per-collective watchdog deadline
// that dumps the rank's recent protocol history through internal/obs.
//
// Checking is off by default and costs a single nil pointer test per
// collective operation; see CheckedComm and the commcheck build tag.

// CollKind identifies a collective operation in the checked protocol.
type CollKind uint8

const (
	collNone CollKind = iota
	// CollBcast is a broadcast from a root rank.
	CollBcast
	// CollReduce is a reduction to a root rank.
	CollReduce
	// CollAllreduce is a reduction delivered to every rank.
	CollAllreduce
	// CollBarrier is a full synchronization.
	CollBarrier
	// CollGather collects per-rank buffers at a root.
	CollGather
	// CollScatter distributes slices of a root buffer.
	CollScatter
	// CollAllgather concatenates per-rank buffers everywhere.
	CollAllgather
)

// String returns the lower-case collective name ("bcast", "reduce", ...).
func (k CollKind) String() string {
	switch k {
	case CollBcast:
		return "bcast"
	case CollReduce:
		return "reduce"
	case CollAllreduce:
		return "allreduce"
	case CollBarrier:
		return "barrier"
	case CollGather:
		return "gather"
	case CollScatter:
		return "scatter"
	case CollAllgather:
		return "allgather"
	default:
		return fmt.Sprintf("collective(%d)", int(k))
	}
}

// Dtype identifies the element type of a checked collective's payload.
type Dtype uint8

const (
	// DtypeNone marks payload-free collectives (Barrier).
	DtypeNone Dtype = iota
	// DtypeF32 marks float32 payloads.
	DtypeF32
	// DtypeF64 marks float64 payloads.
	DtypeF64
)

// String returns "none", "f32" or "f64".
func (d Dtype) String() string {
	switch d {
	case DtypeF32:
		return "f32"
	case DtypeF64:
		return "f64"
	case DtypeNone:
		return "none"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// ProtoEvent is one collective in a rank's protocol history: what the
// rank executed (or is executing), in op-loop order.
type ProtoEvent struct {
	// Seq is the 1-based per-rank collective sequence number. Ranks in
	// the same collective of a conforming run always agree on Seq.
	Seq uint64
	// Kind is the collective operation.
	Kind CollKind
	// Dtype is the payload element type.
	Dtype Dtype
	// Root is the tree root, or -1 for rootless collectives.
	Root int
	// Count is the payload element count.
	Count int
	// Site is the caller's file:line.
	Site string
	// Phase is the profiler phase label at entry (local only; not
	// carried on the wire).
	Phase string
}

// String renders the event as "#seq kind[dtype n=count root=r] at site".
func (e ProtoEvent) String() string {
	root := ""
	if e.Root >= 0 {
		root = fmt.Sprintf(" root=%d", e.Root)
	}
	return fmt.Sprintf("#%d %s[%s n=%d%s] at %s", e.Seq, e.Kind, e.Dtype, e.Count, root, e.Site)
}

// CheckConfig parameterizes a CheckedComm.
type CheckConfig struct {
	// Deadline bounds how long one collective may block in a receive
	// before the watchdog declares the ranks desynchronized. 0 selects
	// DefaultCheckDeadline; negative disables the watchdog (header
	// conformance checking stays on).
	Deadline time.Duration
	// History is the number of recent protocol events retained per rank
	// for the failure dump. 0 selects DefaultCheckHistory.
	History int
	// Obs, when non-nil, receives a "mpi.commcheck.violations" counter
	// bump and the rank's protocol-history dump (through the observer's
	// event log) whenever a violation or watchdog timeout fires.
	Obs *obs.Observer
}

// DefaultCheckDeadline is the watchdog deadline used when CheckConfig
// leaves Deadline zero: generous enough for multi-GB reductions on slow
// fabrics, small enough to turn a deadlock into a diagnosis.
const DefaultCheckDeadline = 30 * time.Second

// DefaultCheckHistory is the per-rank protocol-history depth used when
// CheckConfig leaves History zero.
const DefaultCheckHistory = 32

func (cfg CheckConfig) filled() CheckConfig {
	if cfg.Deadline == 0 {
		cfg.Deadline = DefaultCheckDeadline
	}
	if cfg.History <= 0 {
		cfg.History = DefaultCheckHistory
	}
	return cfg
}

// ProtocolError reports a cross-rank collective divergence detected from
// a peer's piggybacked header: the two ranks entered different
// collectives (or the same collective with incompatible arguments).
type ProtocolError struct {
	// Rank is the local (detecting) rank; Peer sent the diverging header.
	Rank, Peer int
	// Local is what this rank is executing; Remote is what the peer was
	// executing when it sent the message, including its call site.
	Local, Remote ProtoEvent
}

// Error implements error, naming the diverging collective, sequence
// numbers and both ranks' call sites.
func (e *ProtocolError) Error() string {
	return fmt.Sprintf("mpi: commcheck: rank %d executing %s diverges from rank %d executing %s",
		e.Rank, e.Local, e.Peer, e.Remote)
}

// WatchdogError reports a collective receive that blocked past the
// configured deadline — the signature of a desynchronized op loop or a
// dead peer whose transport cannot detect the failure.
type WatchdogError struct {
	// Rank is the stuck rank.
	Rank int
	// Deadline is the configured per-collective deadline that expired.
	Deadline time.Duration
	// Waiting is the collective this rank was blocked in.
	Waiting ProtoEvent
	// History is the rank's last-N protocol events, oldest first.
	History []ProtoEvent
}

// Error implements error, naming the stuck collective, its sequence
// number and call site, and the tail of the rank's protocol history.
func (e *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: commcheck: rank %d blocked >%v in %s (desynchronized op loop or dead peer)",
		e.Rank, e.Deadline, e.Waiting)
	if n := len(e.History); n > 0 {
		fmt.Fprintf(&b, "; last %d events:", n)
		for _, ev := range e.History {
			b.WriteString(" ")
			b.WriteString(ev.String())
		}
	}
	return b.String()
}

// protoChecker holds one rank's conformance state: the sequence counter,
// the collective currently executing, the bounded event history, and the
// first failure (which latches — after a violation every further checked
// operation fails fast instead of waiting out another deadline).
type protoChecker struct {
	rank int
	cfg  CheckConfig

	mu     sync.Mutex
	seq    uint64
	cur    ProtoEvent
	hist   []ProtoEvent
	failed error
}

func newProtoChecker(rank int, cfg CheckConfig) *protoChecker {
	return &protoChecker{rank: rank, cfg: cfg.filled()}
}

// trimSite shortens an absolute source path to its last two elements,
// keeping the diagnostic stable across checkouts.
func trimSite(file string) string {
	i := strings.LastIndexByte(file, '/')
	if i < 0 {
		return file
	}
	if j := strings.LastIndexByte(file[:i], '/'); j >= 0 {
		return file[j+1:]
	}
	return file[i+1:]
}

// enter records the start of a collective: bumps the sequence number,
// captures the caller's site, and makes the event current. skip is the
// number of frames between enter's caller and the user call site.
func (k *protoChecker) enter(phase string, kind CollKind, dt Dtype, root, count, skip int) {
	site := "?"
	if _, file, line, ok := runtime.Caller(skip + 1); ok {
		site = trimSite(file) + ":" + strconv.Itoa(line)
	}
	k.mu.Lock()
	k.seq++
	k.cur = ProtoEvent{Seq: k.seq, Kind: kind, Dtype: dt, Root: root, Count: count, Site: site, Phase: phase}
	if len(k.hist) < k.cfg.History {
		k.hist = append(k.hist, k.cur)
	} else {
		copy(k.hist, k.hist[1:])
		k.hist[len(k.hist)-1] = k.cur
	}
	k.mu.Unlock()
}

// snapshot returns the current event and latched failure.
func (k *protoChecker) snapshot() (ProtoEvent, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cur, k.failed
}

// fail latches the first failure and returns the latched error.
func (k *protoChecker) fail(err error) error {
	k.mu.Lock()
	if k.failed == nil {
		k.failed = err
	}
	err = k.failed
	k.mu.Unlock()
	return err
}

// history returns a copy of the rank's recent protocol events, oldest
// first.
func (k *protoChecker) history() []ProtoEvent {
	k.mu.Lock()
	out := make([]ProtoEvent, len(k.hist))
	copy(out, k.hist)
	k.mu.Unlock()
	return out
}

// dump routes a violation and the rank's protocol history through the
// configured observer: a violations counter plus one event-log line per
// history entry. Safe with a nil observer.
func (k *protoChecker) dump(reason string) {
	ob := k.cfg.Obs
	if reg := ob.Registry(); reg != nil {
		reg.Counter("mpi.commcheck.violations").Inc()
	}
	ob.Eventf(k.rank, "commcheck: %s", reason)
	for _, e := range k.history() {
		ob.Eventf(k.rank, "commcheck: rank %d history %s", k.rank, e)
	}
}

// --- piggybacked header wire format ---
//
// [magic 2][kind 1][dtype 1][root int32][seq uint64][count uint32]
// [siteLen uint16][site siteLen bytes][payload...]

const (
	protoMagic0   = 0xC4
	protoMagic1   = 0x11
	protoHdrFixed = 2 + 1 + 1 + 4 + 8 + 4 + 2
	// maxSiteLen bounds the call-site string carried per message.
	maxSiteLen = 255
)

// appendProtoHeader appends e's wire encoding to dst.
func appendProtoHeader(dst []byte, e ProtoEvent) []byte {
	site := e.Site
	if len(site) > maxSiteLen {
		site = site[len(site)-maxSiteLen:]
	}
	var fixed [protoHdrFixed]byte
	fixed[0], fixed[1] = protoMagic0, protoMagic1
	fixed[2] = byte(e.Kind)
	fixed[3] = byte(e.Dtype)
	binary.LittleEndian.PutUint32(fixed[4:], uint32(int32(e.Root)))
	binary.LittleEndian.PutUint64(fixed[8:], e.Seq)
	binary.LittleEndian.PutUint32(fixed[16:], uint32(e.Count))
	binary.LittleEndian.PutUint16(fixed[20:], uint16(len(site)))
	dst = append(dst, fixed[:]...)
	return append(dst, site...)
}

// splitProtoHeader parses a piggybacked header off data, returning the
// peer's event and the remaining payload.
func splitProtoHeader(data []byte) (ProtoEvent, []byte, error) {
	if len(data) < protoHdrFixed || data[0] != protoMagic0 || data[1] != protoMagic1 {
		return ProtoEvent{}, nil, fmt.Errorf("carries no commcheck header (is CheckedComm enabled on every rank?)")
	}
	siteLen := int(binary.LittleEndian.Uint16(data[20:]))
	if len(data) < protoHdrFixed+siteLen {
		return ProtoEvent{}, nil, fmt.Errorf("carries a truncated commcheck header")
	}
	e := ProtoEvent{
		Kind:  CollKind(data[2]),
		Dtype: Dtype(data[3]),
		Root:  int(int32(binary.LittleEndian.Uint32(data[4:]))),
		Seq:   binary.LittleEndian.Uint64(data[8:]),
		Count: int(binary.LittleEndian.Uint32(data[16:])),
		Site:  string(data[protoHdrFixed : protoHdrFixed+siteLen]),
	}
	return e, data[protoHdrFixed+siteLen:], nil
}

// send transmits data for the current collective with the piggybacked
// header prepended.
func (k *protoChecker) send(t Transport, dst, tag int, data []byte) error {
	cur, failed := k.snapshot()
	if failed != nil {
		return failed
	}
	frame := appendProtoHeader(make([]byte, 0, protoHdrFixed+len(cur.Site)+len(data)), cur)
	frame = append(frame, data...)
	return t.Send(dst, tag, frame)
}

// recv receives one collective message under the watchdog deadline,
// validates the peer's header against the current collective, and
// returns the message with the header stripped.
func (k *protoChecker) recv(t Transport, src, tag int) (Message, error) {
	cur, failed := k.snapshot()
	if failed != nil {
		return Message{}, failed
	}
	msg, err := k.recvDeadline(t, src, tag, cur)
	if err != nil {
		return msg, err
	}
	remote, payload, err := splitProtoHeader(msg.Data)
	if err != nil {
		return msg, k.fail(fmt.Errorf("mpi: commcheck: rank %d executing %s: message from rank %d %v",
			k.rank, cur, msg.Src, err))
	}
	if remote.Seq != cur.Seq || remote.Kind != cur.Kind || remote.Dtype != cur.Dtype ||
		remote.Root != cur.Root || remote.Count != cur.Count {
		perr := &ProtocolError{Rank: k.rank, Peer: msg.Src, Local: cur, Remote: remote}
		k.dump("protocol violation: " + perr.Error())
		return msg, k.fail(perr)
	}
	msg.Data = payload
	return msg, nil
}

// recvDeadline blocks for a message, failing with a WatchdogError when
// the per-collective deadline expires first. The receive itself runs in
// a helper goroutine; on timeout that goroutine stays blocked until the
// transport closes, which the failing caller is expected to trigger on
// its way down.
func (k *protoChecker) recvDeadline(t Transport, src, tag int, cur ProtoEvent) (Message, error) {
	if k.cfg.Deadline <= 0 {
		return t.Recv(src, tag)
	}
	type result struct {
		msg Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, e := t.Recv(src, tag)
		ch <- result{m, e}
	}()
	timer := time.NewTimer(k.cfg.Deadline)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.msg, r.err
	case <-timer.C:
		werr := &WatchdogError{Rank: k.rank, Deadline: k.cfg.Deadline, Waiting: cur, History: k.history()}
		k.dump("watchdog: " + werr.Error())
		return Message{}, k.fail(werr)
	}
}

// --- public surface ---

// CheckedComm is a Comm whose collectives carry cross-rank conformance
// headers and a blocking-receive watchdog — the runtime half of
// commcheck. All ranks of a communicator must agree on checking (the
// header changes the collective wire format), so enable it either on
// every rank explicitly or process-wide with the commcheck build tag.
//
// The embedded Comm is the working communicator: pass cc.Comm anywhere a
// *Comm is expected. Point-to-point operations are unaffected.
type CheckedComm struct{ *Comm }

// NewCheckedComm wraps transport t in a protocol-checked communicator.
func NewCheckedComm(t Transport, cfg CheckConfig) *CheckedComm {
	c := NewComm(t)
	c.chk = newProtoChecker(t.Rank(), cfg)
	return &CheckedComm{Comm: c}
}

// Checked reports whether protocol conformance checking is active on c.
func (c *Comm) Checked() bool { return c.chk != nil }

// ProtocolHistory returns this rank's last-N protocol events (oldest
// first), or nil when checking is off.
func (c *Comm) ProtocolHistory() []ProtoEvent {
	if c.chk == nil {
		return nil
	}
	return c.chk.history()
}

// enter marks the start of a collective on the checker; a single nil
// test when checking is off. skip counts frames from enter's caller to
// the user call site (1 when the collective method calls enter directly).
func (c *Comm) enter(kind CollKind, dt Dtype, root, count, skip int) {
	if c.chk == nil {
		return
	}
	c.chk.enter(c.prof.Phase(), kind, dt, root, count, skip+1)
}

// collSend is the transport send used inside collectives: direct when
// unchecked, header-prepending when checked.
func (c *Comm) collSend(dst, tag int, data []byte) error {
	if c.chk == nil {
		return c.t.Send(dst, tag, data)
	}
	return c.chk.send(c.t, dst, tag, data)
}

// collRecv is the transport receive used inside collectives: direct when
// unchecked, header-validating and watchdog-guarded when checked.
func (c *Comm) collRecv(src, tag int) (Message, error) {
	if c.chk == nil {
		return c.t.Recv(src, tag)
	}
	return c.chk.recv(c.t, src, tag)
}
