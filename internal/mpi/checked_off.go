//go:build !commcheck

package mpi

// checkedByDefault reports whether NewComm enables protocol conformance
// checking unconditionally. Without the commcheck build tag checking is
// opt-in via NewCheckedComm, and every collective pays only a nil
// pointer test for the instrumentation.
const checkedByDefault = false
