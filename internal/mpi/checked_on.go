//go:build commcheck

package mpi

// checkedByDefault reports whether NewComm enables protocol conformance
// checking unconditionally. This build carries the commcheck tag, so
// every communicator in the process — tests, examples, the trainer —
// runs with piggybacked protocol headers and the watchdog, with the
// default deadline and history depth:
//
//	go test -tags commcheck ./internal/mpi ./internal/core
const checkedByDefault = true
