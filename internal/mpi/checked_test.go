package mpi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// runChecked runs fn on n ranks over an in-process fabric with protocol
// checking configured by cfg on every rank.
func runChecked(t *testing.T, n int, cfg CheckConfig, fn func(c *Comm)) {
	t.Helper()
	f := NewInprocFabric(n)
	defer f.Close()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(NewCheckedComm(f.Transport(r), cfg).Comm)
		}(r)
	}
	wg.Wait()
}

// TestCheckedCommClean runs every collective under checking on a
// conforming communicator: nothing may fail, results must match the
// unchecked path, and the history must record the sequence.
func TestCheckedCommClean(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		runChecked(t, n, CheckConfig{Deadline: 5 * time.Second}, func(c *Comm) {
			if !c.Checked() {
				t.Error("Checked() = false on CheckedComm")
			}
			buf := []float32{float32(c.Rank() + 1), 2}
			if err := c.Allreduce(OpSum, buf); err != nil {
				t.Errorf("rank %d allreduce: %v", c.Rank(), err)
			}
			want := float32(n*(n+1)) / 2
			if buf[0] != want {
				t.Errorf("rank %d allreduce sum = %v, want %v", c.Rank(), buf[0], want)
			}
			if err := c.Bcast(0, buf); err != nil {
				t.Errorf("rank %d bcast: %v", c.Rank(), err)
			}
			if err := c.Reduce(0, OpMax, []float32{float32(c.Rank())}); err != nil {
				t.Errorf("rank %d reduce: %v", c.Rank(), err)
			}
			d := []float64{float64(c.Rank()), 1}
			if err := c.AllreduceF64(OpSum, d); err != nil {
				t.Errorf("rank %d allreduceF64: %v", c.Rank(), err)
			}
			if d[1] != float64(n) {
				t.Errorf("rank %d allreduceF64 = %v, want %v", c.Rank(), d[1], float64(n))
			}
			if err := c.Barrier(); err != nil {
				t.Errorf("rank %d barrier: %v", c.Rank(), err)
			}
			send := []float32{float32(c.Rank())}
			recv := make([]float32, n)
			if err := c.Gather(0, send, recv); err != nil {
				t.Errorf("rank %d gather: %v", c.Rank(), err)
			}
			if err := c.Scatter(0, recv, send); err != nil {
				t.Errorf("rank %d scatter: %v", c.Rank(), err)
			}
			if err := c.Allgather(send, recv); err != nil {
				t.Errorf("rank %d allgather: %v", c.Rank(), err)
			}
			hist := c.ProtocolHistory()
			if len(hist) == 0 {
				t.Errorf("rank %d: empty protocol history", c.Rank())
			}
			for i := 1; i < len(hist); i++ {
				if hist[i].Seq != hist[i-1].Seq+1 {
					t.Errorf("rank %d: history seq %d follows %d", c.Rank(), hist[i].Seq, hist[i-1].Seq)
				}
			}
		})
	}
}

// TestCheckedCommDtypeMismatch desynchronizes two ranks on payload type:
// rank 0 runs ReduceF64 while rank 1 runs float32 Reduce at the same
// sequence number. The root must get a ProtocolError naming both sites.
func TestCheckedCommDtypeMismatch(t *testing.T) {
	runChecked(t, 2, CheckConfig{Deadline: 5 * time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			err := c.ReduceF64(0, OpSum, []float64{1, 2})
			var perr *ProtocolError
			if !errors.As(err, &perr) {
				t.Errorf("rank 0 err = %v, want *ProtocolError", err)
				return
			}
			if perr.Local.Dtype != DtypeF64 || perr.Remote.Dtype != DtypeF32 {
				t.Errorf("dtypes = %v vs %v, want f64 vs f32", perr.Local.Dtype, perr.Remote.Dtype)
			}
			for _, site := range []string{perr.Local.Site, perr.Remote.Site} {
				if !strings.Contains(site, "checked_test.go") {
					t.Errorf("site %q does not name the caller", site)
				}
			}
			if !strings.Contains(err.Error(), "rank 0") || !strings.Contains(err.Error(), "rank 1") {
				t.Errorf("error does not name both ranks: %v", err)
			}
		} else {
			// Same seq, same root, same count — only the dtype differs.
			_ = c.Reduce(0, OpSum, []float32{1, 2})
		}
	})
}

// TestCheckedCommSeqDivergence desynchronizes the op loop itself: rank 1
// runs one extra collective, so its Bcast is seq 2 against rank 0's
// seq 1. Whichever side receives first must observe the seq mismatch.
func TestCheckedCommSeqDivergence(t *testing.T) {
	var mu sync.Mutex
	var got []*ProtocolError
	runChecked(t, 2, CheckConfig{Deadline: 2 * time.Second}, func(c *Comm) {
		var err error
		if c.Rank() == 0 {
			err = c.Bcast(0, []float32{1}) // seq 1
		} else {
			// Extra collective: as root of this bcast, rank 1 only sends,
			// so it reaches the second bcast one sequence number ahead.
			_ = c.Bcast(1, []float32{1})   // seq 1
			err = c.Bcast(0, []float32{1}) // seq 2
		}
		var perr *ProtocolError
		if errors.As(err, &perr) {
			mu.Lock()
			got = append(got, perr)
			mu.Unlock()
		}
	})
	if len(got) == 0 {
		t.Fatal("no rank observed a ProtocolError")
	}
	for _, perr := range got {
		if perr.Local.Seq == perr.Remote.Seq {
			t.Errorf("seqs equal (%d) in %v", perr.Local.Seq, perr)
		}
	}
}

// TestCheckedCommRootMismatch has rank 1 disagree on the broadcast root
// at the same sequence number. On a 4-rank tree, Bcast(2)'s rank 1
// receives from rank 0 — which is broadcasting with root 0 — so the
// mismatched root arrives as a header and must fail as a ProtocolError.
func TestCheckedCommRootMismatch(t *testing.T) {
	runChecked(t, 4, CheckConfig{Deadline: 2 * time.Second}, func(c *Comm) {
		if c.Rank() != 1 {
			if err := c.Bcast(0, []float32{1}); err != nil {
				t.Errorf("rank %d bcast: %v", c.Rank(), err)
			}
			return
		}
		err := c.Bcast(2, []float32{1})
		var perr *ProtocolError
		if !errors.As(err, &perr) {
			t.Errorf("rank 1 err = %v, want *ProtocolError", err)
			return
		}
		if perr.Local.Root != 2 || perr.Remote.Root != 0 {
			t.Errorf("roots = %d vs %d, want 2 vs 0", perr.Local.Root, perr.Remote.Root)
		}
	})
}

// TestCheckedCommWatchdog blocks rank 0 in a Reduce that rank 1 never
// enters: the watchdog must fire within the deadline, name the stuck
// collective with its sequence number and site, and dump history into
// the observer's event log.
func TestCheckedCommWatchdog(t *testing.T) {
	ob := &obs.Observer{Metrics: obs.NewRegistry(), Events: obs.NewEventLog(64)}
	cfg := CheckConfig{Deadline: 300 * time.Millisecond, History: 8, Obs: ob}
	f := NewInprocFabric(2)
	defer f.Close()
	c := NewCheckedComm(f.Transport(0), cfg).Comm

	// Warm up the history: a root-side bcast only sends, so it succeeds
	// even though rank 1 never shows up. Then block in a reduce that
	// needs rank 1's contribution.
	if err := c.Bcast(0, []float32{1}); err != nil {
		t.Fatalf("warm-up bcast: %v", err)
	}
	start := time.Now()
	err := c.Reduce(0, OpSum, []float32{1, 2, 3})
	elapsed := time.Since(start)

	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if elapsed < cfg.Deadline || elapsed > 10*cfg.Deadline {
		t.Errorf("watchdog fired after %v with deadline %v", elapsed, cfg.Deadline)
	}
	if werr.Rank != 0 || werr.Waiting.Kind != CollReduce || werr.Waiting.Count != 3 {
		t.Errorf("watchdog event = %+v, want rank 0 reduce n=3", werr)
	}
	if !strings.Contains(werr.Waiting.Site, "checked_test.go") {
		t.Errorf("site %q does not name the caller", werr.Waiting.Site)
	}
	msg := err.Error()
	for _, want := range []string{"reduce", "blocked", "#2", "checked_test.go"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if len(werr.History) == 0 {
		t.Error("watchdog dumped no history")
	}
	if got := ob.Registry().Counter("mpi.commcheck.violations").Value(); got != 1 {
		t.Errorf("violations counter = %d, want 1", got)
	}
	if ob.EventLog().Len() == 0 {
		t.Error("no event-log lines dumped")
	}

	// The failure latches: the next collective fails immediately, without
	// waiting out another deadline.
	start = time.Now()
	if err := c.Barrier(); !errors.As(err, &werr) {
		t.Errorf("post-failure barrier err = %v, want latched watchdog error", err)
	}
	if d := time.Since(start); d > cfg.Deadline/2 {
		t.Errorf("latched failure took %v, want immediate", d)
	}
}

// TestCheckedCommMixedHeaderDetected covers a checked rank talking to an
// unchecked one: the missing header must produce a diagnostic, not a
// decode of garbage.
func TestCheckedCommMixedHeaderDetected(t *testing.T) {
	if checkedByDefault {
		t.Skip("commcheck build: every comm is checked, no mixed configuration possible")
	}
	f := NewInprocFabric(2)
	defer f.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := NewCheckedComm(f.Transport(0), CheckConfig{Deadline: 2 * time.Second}).Comm
		err := c.Reduce(0, OpSum, []float32{1})
		if err == nil || !strings.Contains(err.Error(), "commcheck header") {
			t.Errorf("err = %v, want missing-header diagnostic", err)
		}
	}()
	go func() {
		defer wg.Done()
		c := NewComm(f.Transport(1)) // unchecked
		_ = c.Reduce(0, OpSum, []float32{1})
	}()
	wg.Wait()
}

// TestUncheckedCommHasNoChecker pins the zero-cost-off contract.
func TestUncheckedCommHasNoChecker(t *testing.T) {
	f := NewInprocFabric(1)
	defer f.Close()
	c := NewComm(f.Transport(0))
	if checkedByDefault {
		if !c.Checked() {
			t.Fatal("commcheck build: NewComm not checked")
		}
		return
	}
	if c.Checked() {
		t.Fatal("NewComm is checked without the commcheck tag")
	}
	if h := c.ProtocolHistory(); h != nil {
		t.Fatalf("ProtocolHistory = %v on unchecked comm", h)
	}
}
