package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float32 slices are the dominant payload (weights, gradients, CG
// directions), encoded little-endian, 4 bytes per element.

func encodeF32(x []float32) []byte {
	buf := make([]byte, 4*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

func decodeF32Into(buf []byte, x []float32) error {
	if len(buf) != 4*len(x) {
		return fmt.Errorf("mpi: payload %d bytes, want %d", len(buf), 4*len(x))
	}
	for i := range x {
		x[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

func encodeF64(x []float64) []byte {
	buf := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeF64Into(buf []byte, x []float64) error {
	if len(buf) != 8*len(x) {
		return fmt.Errorf("mpi: payload %d bytes, want %d", len(buf), 8*len(x))
	}
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

func encodeInts(x []int) []byte {
	buf := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(v)))
	}
	return buf
}

func decodeInts(buf []byte) ([]int, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mpi: int payload %d bytes not a multiple of 8", len(buf))
	}
	x := make([]int, len(buf)/8)
	for i := range x {
		x[i] = int(int64(binary.LittleEndian.Uint64(buf[8*i:])))
	}
	return x, nil
}
