package mpi

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Op is a reduction operator for Reduce/Allreduce.
type Op int

const (
	// OpSum adds elementwise.
	OpSum Op = iota
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

func (op Op) foldF32(dst, src []float32) {
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", op))
	}
}

func (op Op) foldF64(dst, src []float64) {
	switch op {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("mpi: unknown op %d", op))
	}
}

// Comm is a communicator: a transport endpoint plus typed point-to-point
// operations, tree collectives and a communication profiler. One Comm
// serves one rank and is not safe for concurrent operations, matching the
// single-threaded-rank model of the paper's application.
type Comm struct {
	t    Transport
	prof *Profiler
	chk  *protoChecker // nil: protocol conformance checking off
}

// NewComm wraps a transport endpoint in a communicator. Under the
// commcheck build tag the communicator is protocol-checked with the
// default CheckConfig; see CheckedComm.
func NewComm(t Transport) *Comm {
	c := &Comm{t: t, prof: NewProfiler()}
	if checkedByDefault {
		c.chk = newProtoChecker(t.Rank(), CheckConfig{})
	}
	return c
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.t.Size() }

// Profiler returns the communication profiler for this rank.
func (c *Comm) Profiler() *Profiler { return c.prof }

// SetMetrics routes this communicator's per-operation latency/bytes
// data into the given obs registry (see Profiler.SetRegistry); nil
// detaches. Disabled communicators pay only a nil check per operation.
func (c *Comm) SetMetrics(r *obs.Registry) { c.prof.SetRegistry(r) }

// SetPhase labels subsequent communication for the profiler.
func (c *Comm) SetPhase(name string) { c.prof.SetPhase(name) }

// Close shuts down the underlying transport.
func (c *Comm) Close() error { return c.t.Close() }

// --- point-to-point ---

// SendBytes sends a tagged byte message to dst (profiled as p2p).
func (c *Comm) SendBytes(dst, tag int, data []byte) error {
	start := time.Now()
	err := c.t.Send(dst, tag, data)
	c.prof.addOp(CatP2P, "send", time.Since(start), int64(len(data)))
	return err
}

// RecvBytes blocks for a message matching (src, tag) and returns it.
func (c *Comm) RecvBytes(src, tag int) (Message, error) {
	start := time.Now()
	msg, err := c.t.Recv(src, tag)
	c.prof.addOp(CatP2P, "recv", time.Since(start), int64(len(msg.Data)))
	return msg, err
}

// RecvBytesTimeout is RecvBytes bounded by a deadline: if no matching
// message arrives within d it fails with an error wrapping ErrTimeout
// instead of blocking. d <= 0 blocks like RecvBytes. The elastic
// runtime's failure detector is built on this.
func (c *Comm) RecvBytesTimeout(src, tag int, d time.Duration) (Message, error) {
	start := time.Now()
	msg, err := RecvTimeout(c.t, src, tag, d)
	c.prof.addOp(CatP2P, "recv", time.Since(start), int64(len(msg.Data)))
	return msg, err
}

// Transport exposes the underlying transport so callers can reach
// optional capabilities (DeadlineRecver, WriteDeadliner, fault epochs).
func (c *Comm) Transport() Transport { return c.t }

// SendF32 sends a float32 slice to dst.
func (c *Comm) SendF32(dst, tag int, x []float32) error {
	return c.SendBytes(dst, tag, encodeF32(x))
}

// RecvF32 receives a float32 slice of exactly len(x) elements into x and
// returns the source rank.
func (c *Comm) RecvF32(src, tag int, x []float32) (int, error) {
	msg, err := c.RecvBytes(src, tag)
	if err != nil {
		return 0, err
	}
	return msg.Src, decodeF32Into(msg.Data, x)
}

// SendInts sends an int slice to dst.
func (c *Comm) SendInts(dst, tag int, x []int) error {
	return c.SendBytes(dst, tag, encodeInts(x))
}

// RecvInts receives an int slice from src.
func (c *Comm) RecvInts(src, tag int) ([]int, error) {
	msg, err := c.RecvBytes(src, tag)
	if err != nil {
		return nil, err
	}
	return decodeInts(msg.Data)
}

// --- collectives ---
// All collectives must be called by every rank of the communicator with
// compatible arguments, like their MPI counterparts.

// timedCollective wraps fn with collective-category profiling under the
// given operation name (the per-collective histogram key).
func (c *Comm) timedCollective(op string, bytes int64, fn func() error) error {
	start := time.Now()
	err := fn()
	c.prof.addOp(CatCollective, op, time.Since(start), bytes)
	return err
}

// vrank maps rank into the tree rooted at root.
func vrank(rank, root, size int) int { return (rank - root + size) % size }

// absRank inverts vrank.
func absRank(v, root, size int) int { return (v + root) % size }

// Bcast broadcasts buf from root to all ranks along a binomial tree, the
// optimized weight-synchronization path of §V-B. On non-root ranks buf is
// overwritten with root's data.
func (c *Comm) Bcast(root int, buf []float32) error {
	if err := checkRank("bcast root", root, c.Size()); err != nil {
		return err
	}
	c.enter(CollBcast, DtypeF32, root, len(buf), 1)
	return c.timedCollective("bcast", int64(4*len(buf)), func() error {
		size := c.Size()
		if size == 1 {
			return nil
		}
		vr := vrank(c.Rank(), root, size)
		mask := 1
		for mask < size {
			if vr&mask != 0 {
				src := absRank(vr-mask, root, size)
				msg, err := c.collRecv(src, tagBcast)
				if err != nil {
					return err
				}
				if err := decodeF32Into(msg.Data, buf); err != nil {
					return err
				}
				break
			}
			mask <<= 1
		}
		mask >>= 1
		payload := encodeF32(buf)
		// Best-effort fan-out: a dead subtree must not starve the live
		// ones, so remaining sends proceed and the first error is
		// reported after the loop.
		var sendErr error
		for mask > 0 {
			if vr+mask < size {
				dst := absRank(vr+mask, root, size)
				if err := c.collSend(dst, tagBcast, payload); err != nil && sendErr == nil {
					sendErr = err
				}
			}
			mask >>= 1
		}
		return sendErr
	})
}

// Reduce combines buf across ranks with op along a binomial tree; the
// result lands in root's buf. Non-root buffers hold partial sums on
// return, as in MPI where only the root's receive buffer is significant.
// The combine order is a fixed function of the communicator size, so
// results are deterministic run to run.
func (c *Comm) Reduce(root int, op Op, buf []float32) error {
	if err := checkRank("reduce root", root, c.Size()); err != nil {
		return err
	}
	c.enter(CollReduce, DtypeF32, root, len(buf), 1)
	return c.timedCollective("reduce", int64(4*len(buf)), func() error {
		size := c.Size()
		vr := vrank(c.Rank(), root, size)
		tmp := make([]float32, len(buf))
		for mask := 1; mask < size; mask <<= 1 {
			if vr&mask != 0 {
				dst := absRank(vr-mask, root, size)
				return c.collSend(dst, tagReduce, encodeF32(buf))
			}
			peer := vr | mask
			if peer < size {
				src := absRank(peer, root, size)
				msg, err := c.collRecv(src, tagReduce)
				if err != nil {
					return err
				}
				if err := decodeF32Into(msg.Data, tmp); err != nil {
					return err
				}
				op.foldF32(buf, tmp)
			}
		}
		return nil
	})
}

// ReduceF64 is Reduce for float64 payloads (losses and statistics that
// need double-precision accumulation).
func (c *Comm) ReduceF64(root int, op Op, buf []float64) error {
	if err := checkRank("reduce root", root, c.Size()); err != nil {
		return err
	}
	c.enter(CollReduce, DtypeF64, root, len(buf), 1)
	return c.timedCollective("reduce", int64(8*len(buf)), func() error {
		size := c.Size()
		vr := vrank(c.Rank(), root, size)
		tmp := make([]float64, len(buf))
		for mask := 1; mask < size; mask <<= 1 {
			if vr&mask != 0 {
				dst := absRank(vr-mask, root, size)
				return c.collSend(dst, tagReduce, encodeF64(buf))
			}
			peer := vr | mask
			if peer < size {
				src := absRank(peer, root, size)
				msg, err := c.collRecv(src, tagReduce)
				if err != nil {
					return err
				}
				if err := decodeF64Into(msg.Data, tmp); err != nil {
					return err
				}
				op.foldF64(buf, tmp)
			}
		}
		return nil
	})
}

// Allreduce combines buf across ranks with op and leaves the identical
// result in every rank's buf. Power-of-two communicators use recursive
// doubling (log₂P exchange rounds, each of the full payload); other sizes
// fall back to reduce-to-0 + broadcast. Floating-point addition is
// commutative, so recursive doubling still produces bitwise-identical
// results on every rank.
func (c *Comm) Allreduce(op Op, buf []float32) error {
	size := c.Size()
	if !isPowerOfTwo(size) {
		if err := c.Reduce(0, op, buf); err != nil {
			return err
		}
		return c.Bcast(0, buf)
	}
	c.enter(CollAllreduce, DtypeF32, -1, len(buf), 1)
	return c.timedCollective("allreduce", int64(4*len(buf)), func() error {
		rank := c.Rank()
		tmp := make([]float32, len(buf))
		for mask := 1; mask < size; mask <<= 1 {
			partner := rank ^ mask
			if err := c.collSend(partner, tagAllredRD+mask, encodeF32(buf)); err != nil {
				return err
			}
			msg, err := c.collRecv(partner, tagAllredRD+mask)
			if err != nil {
				return err
			}
			if err := decodeF32Into(msg.Data, tmp); err != nil {
				return err
			}
			op.foldF32(buf, tmp)
		}
		return nil
	})
}

// AllreduceF64 is Allreduce for float64 payloads.
func (c *Comm) AllreduceF64(op Op, buf []float64) error {
	if err := c.ReduceF64(0, op, buf); err != nil {
		return err
	}
	// Broadcast the float64 result via the byte path of Bcast's tree.
	c.enter(CollBcast, DtypeF64, 0, len(buf), 1)
	return c.timedCollective("bcast", int64(8*len(buf)), func() error {
		size := c.Size()
		if size == 1 {
			return nil
		}
		vr := c.Rank()
		mask := 1
		for mask < size {
			if vr&mask != 0 {
				msg, err := c.collRecv(vr-mask, tagBcast)
				if err != nil {
					return err
				}
				if err := decodeF64Into(msg.Data, buf); err != nil {
					return err
				}
				break
			}
			mask <<= 1
		}
		mask >>= 1
		payload := encodeF64(buf)
		var sendErr error
		for mask > 0 {
			if vr+mask < size {
				if err := c.collSend(vr+mask, tagBcast, payload); err != nil && sendErr == nil {
					sendErr = err
				}
			}
			mask >>= 1
		}
		return sendErr
	})
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// ⌈log₂P⌉ rounds).
func (c *Comm) Barrier() error {
	c.enter(CollBarrier, DtypeNone, -1, 0, 1)
	return c.timedCollective("barrier", 0, func() error {
		size := c.Size()
		rank := c.Rank()
		for dist := 1; dist < size; dist <<= 1 {
			dst := (rank + dist) % size
			src := (rank - dist + size) % size
			if err := c.collSend(dst, tagBarrier+dist, nil); err != nil {
				return err
			}
			if _, err := c.collRecv(src, tagBarrier+dist); err != nil {
				return err
			}
		}
		return nil
	})
}

// Gather collects each rank's fixed-size send buffer into root's recv
// buffer (rank i's data at recv[i*len(send):]). recv is only used at root,
// where it must have Size()*len(send) elements.
func (c *Comm) Gather(root int, send, recv []float32) error {
	if err := checkRank("gather root", root, c.Size()); err != nil {
		return err
	}
	c.enter(CollGather, DtypeF32, root, len(send), 1)
	return c.timedCollective("gather", int64(4*len(send)), func() error {
		if c.Rank() != root {
			return c.collSend(root, tagGather, encodeF32(send))
		}
		n := len(send)
		if len(recv) != n*c.Size() {
			return fmt.Errorf("mpi: Gather recv %d elements, want %d", len(recv), n*c.Size())
		}
		copy(recv[root*n:(root+1)*n], send)
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			msg, err := c.collRecv(r, tagGather)
			if err != nil {
				return err
			}
			if err := decodeF32Into(msg.Data, recv[r*n:(r+1)*n]); err != nil {
				return err
			}
		}
		return nil
	})
}

// Scatter distributes equal slices of root's send buffer to every rank's
// recv buffer (rank i gets send[i*len(recv):]). send is only used at root,
// where it must have Size()*len(recv) elements.
func (c *Comm) Scatter(root int, send, recv []float32) error {
	if err := checkRank("scatter root", root, c.Size()); err != nil {
		return err
	}
	c.enter(CollScatter, DtypeF32, root, len(recv), 1)
	return c.timedCollective("scatter", int64(4*len(recv)), func() error {
		n := len(recv)
		if c.Rank() == root {
			if len(send) != n*c.Size() {
				return fmt.Errorf("mpi: Scatter send %d elements, want %d", len(send), n*c.Size())
			}
			var sendErr error
			for r := 0; r < c.Size(); r++ {
				if r == root {
					copy(recv, send[r*n:(r+1)*n])
					continue
				}
				if err := c.collSend(r, tagScatter, encodeF32(send[r*n:(r+1)*n])); err != nil && sendErr == nil {
					sendErr = err
				}
			}
			return sendErr
		}
		msg, err := c.collRecv(root, tagScatter)
		if err != nil {
			return err
		}
		return decodeF32Into(msg.Data, recv)
	})
}

// Allgather concatenates every rank's fixed-size send buffer into each
// rank's recv buffer using a ring, recv[i*len(send):] holding rank i's
// contribution.
func (c *Comm) Allgather(send, recv []float32) error {
	c.enter(CollAllgather, DtypeF32, -1, len(send), 1)
	return c.timedCollective("allgather", int64(4*len(send)), func() error {
		size := c.Size()
		rank := c.Rank()
		n := len(send)
		if len(recv) != n*size {
			return fmt.Errorf("mpi: Allgather recv %d elements, want %d", len(recv), n*size)
		}
		copy(recv[rank*n:(rank+1)*n], send)
		right := (rank + 1) % size
		left := (rank - 1 + size) % size
		// Ring: in step s, forward the block received in step s-1.
		blk := rank
		for s := 0; s < size-1; s++ {
			if err := c.collSend(right, tagAllgather+s, encodeF32(recv[blk*n:(blk+1)*n])); err != nil {
				return err
			}
			msg, err := c.collRecv(left, tagAllgather+s)
			if err != nil {
				return err
			}
			blk = (blk - 1 + size) % size
			if err := decodeF32Into(msg.Data, recv[blk*n:(blk+1)*n]); err != nil {
				return err
			}
		}
		return nil
	})
}
