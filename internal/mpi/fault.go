package mpi

// Fault layer: detection knobs for the elastic runtime (FaultConfig,
// deadline-bounded receives) and a schedule-driven fault-injecting
// Transport wrapper for tests and failure drills.
//
// This is deliberately distinct from commcheck (checked.go): the
// commcheck watchdog bounds *collectives* to diagnose protocol
// divergence between otherwise healthy ranks, while the fault layer
// bounds individual point-to-point ops so a dead or wedged rank can be
// detected, evicted and trained around.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrTimeout is returned by deadline-bounded receives when no matching
// message arrives in time. The peer may be slow rather than dead;
// eviction policy is the caller's decision.
var ErrTimeout = errors.New("mpi: receive timed out")

// Defaults for FaultConfig zero fields.
const (
	// DefaultOpDeadline bounds one elastic-op round trip per worker.
	DefaultOpDeadline = 10 * time.Second
	// DefaultHeartbeatTag is the base tag for heartbeat pong replies;
	// the elastic round number is added to it. It sits above the
	// collective tag space (1<<24 … 7<<24) so heartbeats can never
	// match collective or user traffic.
	DefaultHeartbeatTag = 17 << 24
	// DefaultTCPWriteDeadline bounds a single TCP frame write so a
	// wedged peer surfaces as a send error instead of blocking forever.
	DefaultTCPWriteDeadline = 30 * time.Second
)

// FaultConfig tunes failure detection for the elastic training runtime.
type FaultConfig struct {
	// OpDeadline bounds one point-to-point elastic op (command send →
	// contribution recv) per worker; a rank that misses it is a
	// candidate for eviction. Zero selects DefaultOpDeadline.
	OpDeadline time.Duration
	// HeartbeatTag is the base tag heartbeat pongs are sent on (the
	// elastic round number is added). Zero selects DefaultHeartbeatTag.
	HeartbeatTag int
	// WriteDeadline bounds a single frame write on transports that
	// support write deadlines (TCP). Zero selects
	// DefaultTCPWriteDeadline.
	WriteDeadline time.Duration
}

// Filled returns the config with zero fields replaced by defaults.
func (c FaultConfig) Filled() FaultConfig {
	if c.OpDeadline == 0 {
		c.OpDeadline = DefaultOpDeadline
	}
	if c.HeartbeatTag == 0 {
		c.HeartbeatTag = DefaultHeartbeatTag
	}
	if c.WriteDeadline == 0 {
		c.WriteDeadline = DefaultTCPWriteDeadline
	}
	return c
}

// DeadlineRecver is the optional Transport capability behind
// RecvTimeout. Both in-tree transports implement it natively via their
// shared mailbox, so no helper goroutine is needed per receive.
type DeadlineRecver interface {
	// RecvTimeout is Recv bounded by a deadline; it fails with an error
	// wrapping ErrTimeout if no matching message arrives within d.
	// d <= 0 means block indefinitely, exactly like Recv.
	RecvTimeout(src, tag int, d time.Duration) (Message, error)
}

// WriteDeadliner is the optional Transport capability for bounding
// individual frame writes (implemented by the TCP transport).
type WriteDeadliner interface {
	// SetWriteDeadline bounds each subsequent frame write to d from the
	// moment the write starts; d <= 0 restores the transport default.
	// Call before concurrent use of the transport begins.
	SetWriteDeadline(d time.Duration)
}

// RecvTimeout receives from t with a deadline, using the transport's
// native DeadlineRecver support when available. The fallback spawns a
// helper goroutine whose blocking Recv may outlive the deadline and
// consume one message that is then dropped; both in-tree transports
// implement DeadlineRecver, so the fallback only serves external
// Transport implementations.
func RecvTimeout(t Transport, src, tag int, d time.Duration) (Message, error) {
	if d <= 0 {
		return t.Recv(src, tag)
	}
	if dr, ok := t.(DeadlineRecver); ok {
		return dr.RecvTimeout(src, tag, d)
	}
	type result struct {
		msg Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		msg, err := t.Recv(src, tag)
		ch <- result{msg, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.msg, r.err
	case <-timer.C:
		return Message{}, fmt.Errorf("%w: no message from rank %d tag %d within %v", ErrTimeout, src, tag, d)
	}
}

// --- fault-injection schedule ---

// FaultAction is one kind of injected fault.
type FaultAction uint8

const (
	// ActKill closes the rank's transport at the triggering op: every
	// later op fails locally and peers observe the death through their
	// own failure detection. Models a crashed process.
	ActKill FaultAction = iota
	// ActDrop silently discards outbound messages. Models loss.
	ActDrop
	// ActDelay sleeps before delivering outbound messages. Models a
	// straggler or congested link.
	ActDelay
	// ActDup sends outbound messages twice. Models retransmission.
	ActDup
)

var actionNames = map[FaultAction]string{
	ActKill:  "kill",
	ActDrop:  "drop",
	ActDelay: "delay",
	ActDup:   "dup",
}

func (a FaultAction) String() string {
	if s, ok := actionNames[a]; ok {
		return s
	}
	return fmt.Sprintf("FaultAction(%d)", uint8(a))
}

func parseFaultAction(s string) (FaultAction, error) {
	for a, name := range actionNames {
		if s == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("mpi: unknown fault action %q (want kill, drop, delay, dup)", s)
}

// FaultEvent is one scheduled fault against one rank.
type FaultEvent struct {
	Action FaultAction
	// Rank is the rank whose transport misbehaves.
	Rank int
	// Epoch arms the event once the rank's epoch (set via
	// FaultTransport.SetEpoch, typically the HF iteration) reaches this
	// value. Zero means armed from the start.
	Epoch int
	// After skips this many eligible transport ops once armed before
	// the event fires; it positions a kill mid-protocol (e.g. mid-CG).
	After int
	// Count is how many ops a drop/delay/dup affects (default 1); it is
	// meaningless for kill, which is terminal.
	Count int
	// Delay is the injected latency for ActDelay.
	Delay time.Duration
}

// String renders the event in the spec grammar accepted by
// ParseFaultSchedule, e.g. "kill:rank=2,epoch=3".
func (e FaultEvent) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:rank=%d", e.Action, e.Rank)
	if e.Epoch > 0 {
		fmt.Fprintf(&b, ",epoch=%d", e.Epoch)
	}
	if e.After > 0 {
		fmt.Fprintf(&b, ",after=%d", e.After)
	}
	if e.Count > 1 {
		fmt.Fprintf(&b, ",n=%d", e.Count)
	}
	if e.Delay > 0 {
		fmt.Fprintf(&b, ",d=%s", e.Delay)
	}
	return b.String()
}

// FaultSchedule is an ordered list of fault events, typically parsed
// from a command-line spec.
type FaultSchedule struct {
	Events []FaultEvent
}

// String renders the schedule in the spec grammar; the output
// round-trips through ParseFaultSchedule.
func (s *FaultSchedule) String() string {
	if s == nil || len(s.Events) == 0 {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// forRank returns the events targeting one rank.
func (s *FaultSchedule) forRank(rank int) []FaultEvent {
	if s == nil {
		return nil
	}
	var evs []FaultEvent
	for _, e := range s.Events {
		if e.Rank == rank {
			evs = append(evs, e)
		}
	}
	return evs
}

// ParseFaultSchedule parses a fault-injection spec of semicolon-
// separated events:
//
//	kill:rank=2,epoch=3 ; delay:rank=1,d=50ms,n=3 ; drop:rank=3,after=2
//
// Each event is action:key=value[,key=value...] with action one of
// kill, drop, delay, dup and keys rank (required), epoch, after,
// n (repeat count) and d (delay duration). Parse and String round-trip.
func ParseFaultSchedule(spec string) (*FaultSchedule, error) {
	s := &FaultSchedule{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseFaultEvent(part)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, ev)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("mpi: empty fault schedule %q", spec)
	}
	return s, nil
}

func parseFaultEvent(part string) (FaultEvent, error) {
	head, rest, found := strings.Cut(part, ":")
	if !found {
		return FaultEvent{}, fmt.Errorf("mpi: fault event %q: want action:key=value,...", part)
	}
	action, err := parseFaultAction(strings.TrimSpace(head))
	if err != nil {
		return FaultEvent{}, err
	}
	ev := FaultEvent{Action: action, Rank: -1}
	if action != ActKill {
		ev.Count = 1
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return FaultEvent{}, fmt.Errorf("mpi: fault event %q: bad pair %q", part, kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "rank", "epoch", "after", "n":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return FaultEvent{}, fmt.Errorf("mpi: fault event %q: %s=%q is not a non-negative integer", part, key, val)
			}
			switch key {
			case "rank":
				ev.Rank = n
			case "epoch":
				ev.Epoch = n
			case "after":
				ev.After = n
			case "n":
				if n < 1 {
					return FaultEvent{}, fmt.Errorf("mpi: fault event %q: n must be >= 1", part)
				}
				ev.Count = n
			}
		case "d":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return FaultEvent{}, fmt.Errorf("mpi: fault event %q: d=%q is not a positive duration", part, val)
			}
			ev.Delay = d
		default:
			return FaultEvent{}, fmt.Errorf("mpi: fault event %q: unknown key %q (want rank, epoch, after, n, d)", part, key)
		}
	}
	if ev.Rank < 0 {
		return FaultEvent{}, fmt.Errorf("mpi: fault event %q: rank is required", part)
	}
	if ev.Action == ActDelay && ev.Delay <= 0 {
		return FaultEvent{}, fmt.Errorf("mpi: fault event %q: delay needs d=<duration>", part)
	}
	if ev.Action == ActKill && ev.Count != 0 {
		return FaultEvent{}, fmt.Errorf("mpi: fault event %q: n is meaningless for kill", part)
	}
	return ev, nil
}

// Ranks returns the sorted set of ranks the schedule targets.
func (s *FaultSchedule) Ranks() []int {
	if s == nil {
		return nil
	}
	set := map[int]bool{}
	for _, e := range s.Events {
		set[e.Rank] = true
	}
	ranks := make([]int, 0, len(set))
	for r := range set {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// --- fault-injecting transport ---

// FaultTransport wraps a Transport and applies the schedule's events
// for its own rank: dropping, delaying or duplicating outbound
// messages, or killing the rank outright (closing the underlying
// transport so every later op fails and peers observe the death).
//
// Events gate on an epoch the owner advances with SetEpoch — the
// elastic runtime advances it to the HF iteration as each rank learns
// it — so a schedule can say "kill rank 2 at iteration 3" precisely.
type FaultTransport struct {
	t Transport

	mu     sync.Mutex
	epoch  int
	killed bool
	evs    []*faultEventState
}

type faultEventState struct {
	FaultEvent
	seen    int // eligible ops observed while armed
	applied int // ops actually affected (drop/delay/dup)
}

// faultPlan is the resolved effect of the schedule on one transport op.
type faultPlan struct {
	kill  bool
	drop  bool
	dup   bool
	delay time.Duration
}

// InjectFaults wraps t with the schedule's events for t's own rank. If
// the schedule targets no event at t's rank, t is returned unchanged,
// so wrapping every rank of a fabric is cheap and uniform.
func InjectFaults(t Transport, s *FaultSchedule) Transport {
	evs := s.forRank(t.Rank())
	if len(evs) == 0 {
		return t
	}
	ft := &FaultTransport{t: t}
	for _, e := range evs {
		if e.Action != ActKill && e.Count < 1 {
			e.Count = 1 // programmatic literals often omit Count
		}
		ft.evs = append(ft.evs, &faultEventState{FaultEvent: e})
	}
	return ft
}

// SetEpoch advances the rank's fault epoch (monotonically); events with
// Epoch <= e become armed.
func (f *FaultTransport) SetEpoch(e int) {
	f.mu.Lock()
	if e > f.epoch {
		f.epoch = e
	}
	f.mu.Unlock()
}

// Epoch reports the current fault epoch.
func (f *FaultTransport) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// plan resolves the schedule against one transport op. Message-shaping
// actions (drop/delay/dup) apply only to sends; kill is eligible on any
// op so a killed rank dies at its very next transport call.
func (f *FaultTransport) plan(send bool) faultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return faultPlan{kill: true}
	}
	var p faultPlan
	for _, ev := range f.evs {
		if f.epoch < ev.Epoch {
			continue
		}
		if !send && ev.Action != ActKill {
			continue
		}
		ev.seen++
		if ev.seen <= ev.After {
			continue
		}
		switch ev.Action {
		case ActKill:
			f.killed = true
			p.kill = true
		case ActDrop:
			if ev.applied < ev.Count {
				ev.applied++
				p.drop = true
			}
		case ActDelay:
			if ev.applied < ev.Count {
				ev.applied++
				p.delay += ev.Delay
			}
		case ActDup:
			if ev.applied < ev.Count {
				ev.applied++
				p.dup = true
			}
		}
	}
	return p
}

func (f *FaultTransport) killErr(op string) error {
	_ = f.t.Close()
	return fmt.Errorf("mpi: rank %d %s: killed by fault injection: %w", f.Rank(), op, ErrClosed)
}

// Rank implements Transport.
func (f *FaultTransport) Rank() int { return f.t.Rank() }

// Size implements Transport.
func (f *FaultTransport) Size() int { return f.t.Size() }

// Send implements Transport, applying any armed events.
func (f *FaultTransport) Send(dst, tag int, data []byte) error {
	p := f.plan(true)
	if p.kill {
		return f.killErr("send")
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.drop {
		return nil
	}
	if err := f.t.Send(dst, tag, data); err != nil {
		return err
	}
	if p.dup {
		return f.t.Send(dst, tag, data)
	}
	return nil
}

// Recv implements Transport; only kill events apply to receives.
func (f *FaultTransport) Recv(src, tag int) (Message, error) {
	if p := f.plan(false); p.kill {
		return Message{}, f.killErr("recv")
	}
	return f.t.Recv(src, tag)
}

// RecvTimeout implements DeadlineRecver, forwarding to the underlying
// transport's native support when present.
func (f *FaultTransport) RecvTimeout(src, tag int, d time.Duration) (Message, error) {
	if p := f.plan(false); p.kill {
		return Message{}, f.killErr("recv")
	}
	return RecvTimeout(f.t, src, tag, d)
}

// SetWriteDeadline implements WriteDeadliner when the underlying
// transport does; otherwise it is a no-op.
func (f *FaultTransport) SetWriteDeadline(d time.Duration) {
	if w, ok := f.t.(WriteDeadliner); ok {
		w.SetWriteDeadline(d)
	}
}

// Close implements Transport.
func (f *FaultTransport) Close() error { return f.t.Close() }
