package mpi

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

func TestFaultScheduleRoundTrip(t *testing.T) {
	spec := "kill:rank=2,epoch=3 ; delay:rank=1,epoch=2,d=50ms,n=3; drop:rank=3,after=2 ;dup:rank=0"
	s, err := ParseFaultSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Action: ActKill, Rank: 2, Epoch: 3},
		{Action: ActDelay, Rank: 1, Epoch: 2, Delay: 50 * time.Millisecond, Count: 3},
		{Action: ActDrop, Rank: 3, After: 2, Count: 1},
		{Action: ActDup, Rank: 0, Count: 1},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("parsed %+v, want %+v", s.Events, want)
	}
	// String must round-trip to an identical schedule, and be stable.
	rendered := s.String()
	s2, err := ParseFaultSchedule(rendered)
	if err != nil {
		t.Fatalf("re-parse %q: %v", rendered, err)
	}
	if !reflect.DeepEqual(s2, s) {
		t.Fatalf("round trip: %+v != %+v (spec %q)", s2.Events, s.Events, rendered)
	}
	if got := s2.String(); got != rendered {
		t.Fatalf("String not stable: %q then %q", rendered, got)
	}
	if got := s.Ranks(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Ranks() = %v", got)
	}
}

func TestFaultScheduleParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                        // empty
		"explode:rank=1",          // unknown action
		"kill:epoch=2",            // missing rank
		"kill:rank=1,n=2",         // n meaningless for kill
		"delay:rank=1",            // delay without duration
		"drop:rank=-1",            // negative rank
		"drop:rank=1,weird=3",     // unknown key
		"drop:rank=1,epoch",       // malformed pair
		"delay:rank=1,d=banana",   // bad duration
		"delay:rank=1,d=50ms,n=0", // zero count
	} {
		if _, err := ParseFaultSchedule(spec); err == nil {
			t.Errorf("ParseFaultSchedule(%q): want error, got nil", spec)
		}
	}
}

func TestRecvTimeoutInproc(t *testing.T) {
	f := NewInprocFabric(2)
	defer f.Close()
	r0, r1 := f.Transport(0), f.Transport(1)

	start := time.Now()
	_, err := RecvTimeout(r0, 1, 7, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("timed out after only %v", d)
	}
	if err := r1.Send(0, 7, []byte("late")); err != nil {
		t.Fatal(err)
	}
	msg, err := RecvTimeout(r0, 1, 7, time.Second)
	if err != nil || string(msg.Data) != "late" {
		t.Fatalf("got %q, %v", msg.Data, err)
	}
}

func TestRecvTimeoutTCP(t *testing.T) {
	trs, err := ConnectTCPLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range trs {
			_ = tr.Close()
		}
	}()
	if _, err := RecvTimeout(trs[0], 1, 3, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if err := trs[1].Send(0, 3, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := RecvTimeout(trs[0], 1, 3, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTransportShaping(t *testing.T) {
	f := NewInprocFabric(2)
	defer f.Close()
	sched, err := ParseFaultSchedule("drop:rank=1,after=1; dup:rank=1,epoch=2")
	if err != nil {
		t.Fatal(err)
	}
	r0 := f.Transport(0)
	r1 := InjectFaults(f.Transport(1), sched)
	ft, ok := r1.(*FaultTransport)
	if !ok {
		t.Fatalf("InjectFaults returned %T, want *FaultTransport", r1)
	}
	// Rank 0 carries no events: wrapper must pass the transport through.
	if r0w := InjectFaults(r0, sched); r0w != r0 {
		t.Fatalf("InjectFaults wrapped an untargeted rank: %T", r0w)
	}

	// Op 1 precedes "after=1": delivered.
	if err := r1.Send(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	// Op 2 is dropped.
	if err := r1.Send(0, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 arms the dup event: op 3 is delivered twice.
	ft.SetEpoch(2)
	if err := r1.Send(0, 1, []byte("c")); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < 3; i++ {
		msg, err := RecvTimeout(r0, 1, 1, time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got = append(got, string(msg.Data))
	}
	if want := []string{"a", "c", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

func TestFaultTransportDelay(t *testing.T) {
	f := NewInprocFabric(2)
	defer f.Close()
	sched, err := ParseFaultSchedule("delay:rank=1,d=60ms")
	if err != nil {
		t.Fatal(err)
	}
	r1 := InjectFaults(f.Transport(1), sched)
	start := time.Now()
	if err := r1.Send(0, 1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("send returned after %v, want >= 60ms", d)
	}
}

func TestFaultTransportKillAtEpoch(t *testing.T) {
	f := NewInprocFabric(2)
	defer f.Close()
	sched, err := ParseFaultSchedule("kill:rank=1,epoch=3")
	if err != nil {
		t.Fatal(err)
	}
	r0 := f.Transport(0)
	r1 := InjectFaults(f.Transport(1), sched)
	ft := r1.(*FaultTransport)

	// Below the trigger epoch the rank behaves normally.
	ft.SetEpoch(2)
	if err := r1.Send(0, 5, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Recv(1, 5); err != nil {
		t.Fatal(err)
	}

	// At epoch 3 the next op kills the rank.
	ft.SetEpoch(3)
	if err := r1.Send(0, 5, []byte("dead")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed from killed rank, got %v", err)
	}
	// Every later op fails too, including receives.
	if _, err := r1.Recv(0, 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// The survivor cannot deliver to the corpse (its mailbox is closed)…
	if err := r0.Send(1, 5, []byte("hello?")); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed sending to killed rank, got %v", err)
	}
	// …and a deadline receive from it fails immediately with peer-down —
	// closing an inproc endpoint marks the rank dead in every peer
	// mailbox, so survivors need not burn the full deadline.
	if _, err := RecvTimeout(r0, 1, 5, 40*time.Millisecond); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("want ErrPeerDown, got %v", err)
	}
}

// TestTCPSendWriteDeadline wedges a fake peer — it completes the rank-1
// handshake but never reads another byte — and asserts that Send fails
// with a timeout once the socket buffers fill, instead of blocking
// forever (the pre-fault-layer behavior).
func TestTCPSendWriteDeadline(t *testing.T) {
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	wedged := make(chan net.Conn, 1)
	go func() {
		conn, err := ln1.Accept()
		if err != nil {
			return
		}
		wedged <- conn // hold the conn open, never read from it
	}()

	tr, err := connectTCPWithListener(0, []string{ln0.Addr().String(), ln1.Addr().String()}, ln0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	defer func() {
		select {
		case c := <-wedged:
			c.Close()
		default:
		}
	}()

	tr.(WriteDeadliner).SetWriteDeadline(150 * time.Millisecond)
	payload := make([]byte, 1<<20)
	start := time.Now()
	var sendErr error
	for i := 0; i < 256; i++ {
		if sendErr = tr.Send(1, 1, payload); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("256 MiB sent to a peer that never reads: write deadline not honored")
	}
	var nerr net.Error
	if !errors.As(sendErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("want net timeout error, got %v", sendErr)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline took %v to fire", d)
	}
	// The poisoned stream now fails fast: the peer is marked down.
	if err := tr.Send(1, 1, []byte("x")); err == nil {
		t.Fatal("send after write timeout succeeded; connection should be poisoned")
	}
	if _, err := tr.Recv(1, 1); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("want ErrPeerDown after poisoned stream, got %v", err)
	}
}
