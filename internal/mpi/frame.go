package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame codec for the TCP fabric. Every frame on the wire is
//
//	[tag int32][length uint32][payload length bytes]
//
// in little-endian order. The codec lives apart from the connection
// plumbing so it can be fuzzed directly against malformed input (short
// headers, truncated payloads, oversized or adversarial lengths).

// frameHeaderSize is the fixed per-frame overhead: tag plus length.
const frameHeaderSize = 8

// frameReadChunk caps the initial payload allocation while reading a
// frame. A frame header is attacker-/corruption-controlled, so the
// claimed length must not be trusted before the bytes actually arrive:
// allocating it up front lets a single bogus 8-byte header pin up to
// maxFrameSize of memory. Instead the payload grows chunk by chunk as
// bytes are read, so a lying header costs at most one chunk.
const frameReadChunk = 64 << 10

// errFrameTooLarge reports a frame whose header claims a payload above
// maxFrameSize, which indicates corruption rather than a real message.
var errFrameTooLarge = fmt.Errorf("mpi: frame exceeds %d bytes", maxFrameSize)

// appendFrame appends a wire frame carrying (tag, data) to dst and
// returns the extended slice.
func appendFrame(dst []byte, tag int, data []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(data)))
	dst = append(dst, hdr[:]...)
	return append(dst, data...)
}

// readFrame reads one frame from r. It returns io.EOF only on a clean
// boundary (no header bytes at all); a frame cut off mid-header or
// mid-payload returns io.ErrUnexpectedEOF, and a header claiming more
// than maxFrameSize returns errFrameTooLarge without allocating the
// claimed length.
func readFrame(r io.Reader) (tag int, data []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	tag = int(int32(binary.LittleEndian.Uint32(hdr[:4])))
	length := binary.LittleEndian.Uint32(hdr[4:])
	if length > maxFrameSize {
		return 0, nil, errFrameTooLarge
	}
	if length == 0 {
		return tag, nil, nil
	}
	// Read in bounded chunks: allocation tracks bytes received, not the
	// header's claim.
	data = make([]byte, 0, min(int(length), frameReadChunk))
	remaining := int(length)
	var chunk [frameReadChunk]byte
	for remaining > 0 {
		n := min(remaining, frameReadChunk)
		if _, err := io.ReadFull(r, chunk[:n]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		data = append(data, chunk[:n]...)
		remaining -= n
	}
	return tag, data, nil
}
