package mpi

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestReadFrameRoundTrip(t *testing.T) {
	cases := []struct {
		tag  int
		data []byte
	}{
		{0, nil},
		{7, []byte{}},
		{-3, []byte("payload")},
		{tagBcast, make([]byte, 3*frameReadChunk+17)}, // spans several read chunks
	}
	for _, tc := range cases {
		wire := appendFrame(nil, tc.tag, tc.data)
		if len(wire) != frameHeaderSize+len(tc.data) {
			t.Fatalf("frame length %d, want %d", len(wire), frameHeaderSize+len(tc.data))
		}
		tag, data, err := readFrame(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("readFrame(tag=%d, %dB): %v", tc.tag, len(tc.data), err)
		}
		if tag != tc.tag || !bytes.Equal(data, tc.data) {
			t.Fatalf("readFrame = (%d, %dB), want (%d, %dB)", tag, len(data), tc.tag, len(tc.data))
		}
	}
}

func TestReadFrameMalformed(t *testing.T) {
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[4:], 1<<31) // claims 2GB > maxFrameSize

	lying := make([]byte, frameHeaderSize, frameHeaderSize+3)
	binary.LittleEndian.PutUint32(lying[4:], maxFrameSize) // claims 1GB, delivers 3 bytes
	lying = append(lying, 1, 2, 3)

	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"empty", nil, io.EOF},
		{"short header", []byte{1, 2, 3}, io.ErrUnexpectedEOF},
		{"truncated payload", appendFrame(nil, 5, []byte("abcdef"))[:frameHeaderSize+2], io.ErrUnexpectedEOF},
		{"oversized length", huge, errFrameTooLarge},
		{"lying length", lying, io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		_, _, err := readFrame(bytes.NewReader(tc.wire))
		if err != tc.want {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// FuzzReadFrame feeds arbitrary byte streams to the TCP frame decoder:
// it must never panic or allocate anywhere near a lying header's claim,
// and anything it accepts must re-encode to a prefix of the input.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(appendFrame(nil, 0, nil))
	f.Add(appendFrame(nil, 42, []byte("hello")))
	f.Add(appendFrame(nil, -1, make([]byte, 100)))
	f.Add(appendFrame(nil, 5, []byte("abcdef"))[:frameHeaderSize+2]) // truncated payload
	huge := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(huge[4:], 0xFFFFFFFF)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, wire []byte) {
		tag, data, err := readFrame(bytes.NewReader(wire))
		if err != nil {
			return
		}
		redone := appendFrame(nil, tag, data)
		if !bytes.Equal(redone, wire[:len(redone)]) {
			t.Fatalf("accepted frame does not round-trip: got %x want prefix of %x", redone, wire)
		}
	})
}
