package mpi

import (
	"fmt"
	"time"
)

// InprocFabric connects n ranks living as goroutines in one process. It is
// the deterministic transport used by tests, examples and the
// single-binary distributed trainer.
type InprocFabric struct {
	boxes []*mailbox
}

// NewInprocFabric creates a fabric with n ranks.
func NewInprocFabric(n int) *InprocFabric {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: fabric size %d", n))
	}
	f := &InprocFabric{boxes: make([]*mailbox, n)}
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	return f
}

// Transport returns the endpoint for the given rank.
func (f *InprocFabric) Transport(rank int) Transport {
	mustRank("inproc transport", rank, len(f.boxes))
	return &inprocTransport{fabric: f, rank: rank}
}

// Close shuts down all endpoints.
func (f *InprocFabric) Close() {
	for _, b := range f.boxes {
		b.close()
	}
}

type inprocTransport struct {
	fabric *InprocFabric
	rank   int
}

func (t *inprocTransport) Rank() int { return t.rank }
func (t *inprocTransport) Size() int { return len(t.fabric.boxes) }

func (t *inprocTransport) Send(dst, tag int, data []byte) error {
	if err := checkRank("send destination", dst, t.Size()); err != nil {
		return err
	}
	// Copy so the sender can immediately reuse its buffer, matching the
	// blocking-send semantics the trainer relies on.
	cp := make([]byte, len(data))
	copy(cp, data)
	return t.fabric.boxes[dst].put(Message{Src: t.rank, Tag: tag, Data: cp})
}

func (t *inprocTransport) Recv(src, tag int) (Message, error) {
	if src != AnySource {
		if err := checkRank("recv source", src, t.Size()); err != nil {
			return Message{}, err
		}
	}
	return t.fabric.boxes[t.rank].get(src, tag)
}

// RecvTimeout implements DeadlineRecver.
func (t *inprocTransport) RecvTimeout(src, tag int, d time.Duration) (Message, error) {
	if src != AnySource {
		if err := checkRank("recv source", src, t.Size()); err != nil {
			return Message{}, err
		}
	}
	return t.fabric.boxes[t.rank].getTimeout(src, tag, d)
}

func (t *inprocTransport) Close() error {
	t.fabric.boxes[t.rank].close()
	// Mirror TCP death semantics: peers blocked on a Recv from this rank
	// observe ErrPeerDown instead of hanging until their own deadline.
	// Messages this rank already delivered remain consumable.
	for peer, box := range t.fabric.boxes {
		if peer != t.rank {
			box.markDown(t.rank)
		}
	}
	return nil
}
