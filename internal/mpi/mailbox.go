package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrPeerDown is returned by Recv when the awaited peer's connection has
// failed and no matching message is queued.
var ErrPeerDown = errors.New("mpi: peer down")

// mailbox is an unbounded, tag-matched message queue shared by both
// transports. Recv performs MPI-style matching: the oldest queued message
// whose (src, tag) satisfies the request is delivered, so out-of-order
// tags do not deadlock.
//
// Transports with per-peer connections (TCP) mark individual peers down
// when their connection fails; a Recv that can only be satisfied by a
// down peer fails with ErrPeerDown instead of blocking forever. Messages
// already queued from a down peer are still deliverable.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	down   map[int]bool
	nPeers int // total peers that can go down; 0 when untracked (in-proc)
}

func newMailbox() *mailbox {
	m := &mailbox{down: make(map[int]bool)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func newMailboxN(peers int) *mailbox {
	m := newMailbox()
	m.nPeers = peers
	return m
}

func (m *mailbox) put(msg Message) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.queue = append(m.queue, msg)
	m.cond.Broadcast()
	return nil
}

// markDown records that src's connection failed and wakes blocked
// receivers so they can observe the failure.
func (m *mailbox) markDown(src int) {
	m.mu.Lock()
	m.down[src] = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// matchLocked delivers the oldest queued message satisfying (src, tag).
// Caller holds m.mu.
func (m *mailbox) matchLocked(src, tag int) (Message, bool) {
	for i, msg := range m.queue {
		if (src == AnySource || msg.Src == src) && (tag == AnyTag || msg.Tag == tag) {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg, true
		}
	}
	return Message{}, false
}

// failureLocked reports the terminal condition, if any, for a receive
// that found no queued match. Caller holds m.mu.
func (m *mailbox) failureLocked(src int) error {
	if m.closed {
		return ErrClosed
	}
	if src != AnySource && m.down[src] {
		return fmt.Errorf("%w: rank %d", ErrPeerDown, src)
	}
	if src == AnySource && m.nPeers > 0 && len(m.down) >= m.nPeers {
		return fmt.Errorf("%w: all peers", ErrPeerDown)
	}
	return nil
}

func (m *mailbox) get(src, tag int) (Message, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if msg, ok := m.matchLocked(src, tag); ok {
			return msg, nil
		}
		if err := m.failureLocked(src); err != nil {
			return Message{}, err
		}
		m.cond.Wait()
	}
}

// getTimeout is get bounded by a deadline: if no matching message
// arrives within d, it fails with an error wrapping ErrTimeout. d <= 0
// blocks indefinitely, exactly like get. The expiry timer broadcasts on
// the condition so blocked waiters re-check promptly; the timedOut flag
// is written and read under m.mu, keeping the race detector quiet.
func (m *mailbox) getTimeout(src, tag int, d time.Duration) (Message, error) {
	if d <= 0 {
		return m.get(src, tag)
	}
	timedOut := false
	timer := time.AfterFunc(d, func() {
		m.mu.Lock()
		timedOut = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if msg, ok := m.matchLocked(src, tag); ok {
			return msg, nil
		}
		if err := m.failureLocked(src); err != nil {
			return Message{}, err
		}
		if timedOut {
			return Message{}, fmt.Errorf("%w: no message from rank %d tag %d within %v", ErrTimeout, src, tag, d)
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
