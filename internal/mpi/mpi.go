// Package mpi is a message-passing library with MPI semantics, replacing
// the Blue Gene/Q MPI/PAMI stack the paper's application runs on (§V-B).
//
// It provides ranks, tagged point-to-point Send/Recv, and tree-based
// collectives (Bcast, Reduce, Allreduce, Gather, Scatter, Allgather,
// Barrier) over pluggable transports:
//
//   - the in-process fabric (goroutines + channels-free mailboxes), used by
//     tests, examples and the single-binary distributed trainer; and
//   - a TCP fabric (net, length-prefixed frames) for multi-process runs.
//
// Every Comm records wall-clock time, bytes and call counts split into
// point-to-point and collective categories per named phase — the same
// split the paper reports in its Figures 4 and 5 MPI breakdowns.
package mpi

import (
	"errors"
	"fmt"
)

// AnySource matches a message from any rank in Recv.
const AnySource = -1

// AnyTag matches a message with any tag in Recv.
const AnyTag = -1

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("mpi: transport closed")

// Message is a received point-to-point message.
type Message struct {
	Src  int
	Tag  int
	Data []byte
}

// Transport moves raw tagged byte messages between ranks. Implementations
// must be safe for one sending and one receiving goroutine per rank (the
// usage pattern of a single-threaded MPI rank).
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to dst with the given tag. The data is copied (or
	// serialized) before Send returns; the caller may reuse the buffer.
	Send(dst, tag int, data []byte) error
	// Recv blocks until a message matching (src, tag) arrives and returns
	// it. src may be AnySource and tag may be AnyTag.
	Recv(src, tag int) (Message, error)
	// Close shuts the endpoint down; blocked and future calls fail with
	// ErrClosed.
	Close() error
}

// Internal tag space for collectives, above any tag user code should use.
// Barrier and Allgather add a round index to their base tag, so each base
// gets its own 2²⁴-wide block.
const (
	tagBcast     = 1 << 24
	tagReduce    = 2 << 24
	tagGather    = 3 << 24
	tagScatter   = 4 << 24
	tagBarrier   = 5 << 24
	tagAllgather = 6 << 24
	tagAllredRD  = 7 << 24
)

// Reserved tags for the telemetry plane (internal/obs/telemetry). They
// live in the user tag space, above the trainer's shard and async tags
// (9000-9105) and the elastic command tag (9500 — see internal/core),
// and below the serving plane's pair (9700/9701 — see internal/serve),
// so telemetry traffic never collides with training or serving traffic
// or the collective tag blocks above. The static tag plan is pinned by
// TestReservedTagPlan in tags_test.go.
const (
	// TagClockSync carries the master↔worker RTT ping/pong rounds that
	// estimate each worker's clock offset at session start.
	TagClockSync = 9600
	// TagTelemetry carries worker→master span/metric bundle shipments
	// at iteration boundaries, off the collective critical path.
	TagTelemetry = 9601
)

// isPowerOfTwo reports whether n is a positive power of two.
func isPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// checkRank validates rank ∈ [0, size). Public collective and transport
// paths return the error so a bad root surfaces as an mpi error on the
// calling rank instead of killing it; constructors without an error
// return use mustRank.
func checkRank(what string, rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mpi: %s rank %d out of range [0,%d)", what, rank, size)
	}
	return nil
}

// mustRank is checkRank for infallible accessors (fabric construction),
// where an out-of-range rank is a programming error with no error path.
func mustRank(what string, rank, size int) {
	if err := checkRank(what, rank, size); err != nil {
		panic(err.Error())
	}
}
