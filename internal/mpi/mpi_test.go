package mpi

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// runRanks runs fn once per rank over a fresh in-process fabric and waits
// for all ranks to finish.
func runRanks(t *testing.T, n int, fn func(c *Comm)) {
	t.Helper()
	f := NewInprocFabric(n)
	defer f.Close()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(NewComm(f.Transport(r)))
		}(r)
	}
	wg.Wait()
}

func TestSendRecvRoundTrip(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendF32(1, 7, []float32{1, 2, 3}); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]float32, 3)
			src, err := c.RecvF32(0, 7, buf)
			if err != nil || src != 0 {
				t.Errorf("recv: src=%d err=%v", src, err)
			}
			if buf[0] != 1 || buf[2] != 3 {
				t.Errorf("payload %v", buf)
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendBytes(1, 1, []byte{1})
			c.SendBytes(1, 2, []byte{2})
		} else {
			// Receive tag 2 first even though tag 1 arrived first.
			m2, err := c.RecvBytes(0, 2)
			if err != nil || m2.Data[0] != 2 {
				t.Errorf("tag 2: %v %v", m2, err)
			}
			m1, err := c.RecvBytes(0, 1)
			if err != nil || m1.Data[0] != 1 {
				t.Errorf("tag 1: %v %v", m1, err)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	runRanks(t, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				m, err := c.RecvBytes(AnySource, AnyTag)
				if err != nil {
					t.Error(err)
					return
				}
				seen[m.Src] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("sources seen: %v", seen)
			}
		default:
			c.SendBytes(0, 10+c.Rank(), []byte{byte(c.Rank())})
		}
	})
}

func TestSendInvalidRankErrors(t *testing.T) {
	f := NewInprocFabric(2)
	defer f.Close()
	c := NewComm(f.Transport(0))
	if err := c.SendBytes(5, 0, nil); err == nil {
		t.Fatal("expected error for invalid destination")
	}
	if _, err := c.RecvBytes(5, 0); err == nil {
		t.Fatal("expected error for invalid source")
	}
	if err := c.Bcast(5, make([]float32, 1)); err == nil {
		t.Fatal("expected error for invalid bcast root")
	}
}

func TestRecvAfterCloseErrors(t *testing.T) {
	f := NewInprocFabric(2)
	c := NewComm(f.Transport(0))
	f.Close()
	if _, err := c.RecvBytes(1, 0); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		for root := 0; root < n; root++ {
			want := []float32{float32(root), 2, 3, 4}
			runRanks(t, n, func(c *Comm) {
				buf := make([]float32, 4)
				if c.Rank() == root {
					copy(buf, want)
				}
				if err := c.Bcast(root, buf); err != nil {
					t.Errorf("n=%d root=%d rank=%d: %v", n, root, c.Rank(), err)
					return
				}
				for i := range want {
					if buf[i] != want[i] {
						t.Errorf("n=%d root=%d rank=%d: got %v", n, root, c.Rank(), buf)
						return
					}
				}
			})
		}
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root += 2 {
			const dim = 17
			rng := rand.New(rand.NewSource(int64(n*100 + root)))
			inputs := make([][]float32, n)
			want := make([]float64, dim)
			for r := range inputs {
				inputs[r] = make([]float32, dim)
				for i := range inputs[r] {
					inputs[r][i] = rng.Float32()
					want[i] += float64(inputs[r][i])
				}
			}
			runRanks(t, n, func(c *Comm) {
				buf := append([]float32(nil), inputs[c.Rank()]...)
				if err := c.Reduce(root, OpSum, buf); err != nil {
					t.Error(err)
					return
				}
				if c.Rank() == root {
					for i := range buf {
						if math.Abs(float64(buf[i])-want[i]) > 1e-4 {
							t.Errorf("n=%d root=%d elem %d: %v want %v", n, root, i, buf[i], want[i])
							return
						}
					}
				}
			})
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	runRanks(t, 4, func(c *Comm) {
		buf := []float32{float32(c.Rank()), float32(-c.Rank())}
		if err := c.Reduce(0, OpMax, buf); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 && (buf[0] != 3 || buf[1] != 0) {
			t.Errorf("max: %v", buf)
		}
	})
	runRanks(t, 4, func(c *Comm) {
		buf := []float32{float32(c.Rank())}
		if err := c.Reduce(0, OpMin, buf); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 && buf[0] != 0 {
			t.Errorf("min: %v", buf)
		}
	})
}

func TestReduceF64(t *testing.T) {
	runRanks(t, 5, func(c *Comm) {
		buf := []float64{1.5, float64(c.Rank())}
		if err := c.ReduceF64(0, OpSum, buf); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			if buf[0] != 7.5 || buf[1] != 10 {
				t.Errorf("got %v", buf)
			}
		}
	})
}

func TestAllreduceEveryRankSameResult(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 7} {
		results := make([][]float32, n)
		runRanks(t, n, func(c *Comm) {
			buf := []float32{float32(c.Rank() + 1), 1}
			if err := c.Allreduce(OpSum, buf); err != nil {
				t.Error(err)
				return
			}
			results[c.Rank()] = buf
		})
		wantSum := float32(n * (n + 1) / 2)
		for r, res := range results {
			if res[0] != wantSum || res[1] != float32(n) {
				t.Fatalf("n=%d rank %d: %v, want [%v %v]", n, r, res, wantSum, n)
			}
		}
	}
}

func TestAllreduceF64(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		results := make([][]float64, n)
		runRanks(t, n, func(c *Comm) {
			buf := []float64{float64(c.Rank())}
			if err := c.AllreduceF64(OpSum, buf); err != nil {
				t.Error(err)
				return
			}
			results[c.Rank()] = buf
		})
		want := float64(n*(n-1)) / 2
		for r, res := range results {
			if res[0] != want {
				t.Fatalf("n=%d rank %d: %v, want %v", n, r, res[0], want)
			}
		}
	}
}

// Property (quick): tree Reduce equals a serial left fold for random
// vectors and communicator sizes.
func TestReduceEqualsSerialFoldProperty(t *testing.T) {
	f := func(sizeSeed uint8, dimSeed uint8, valSeed int64) bool {
		n := int(sizeSeed%8) + 1
		dim := int(dimSeed%16) + 1
		rng := rand.New(rand.NewSource(valSeed))
		inputs := make([][]float32, n)
		want := make([]float64, dim)
		for r := range inputs {
			inputs[r] = make([]float32, dim)
			for i := range inputs[r] {
				inputs[r][i] = rng.Float32()*2 - 1
				want[i] += float64(inputs[r][i])
			}
		}
		ok := true
		runRanks(t, n, func(c *Comm) {
			buf := append([]float32(nil), inputs[c.Rank()]...)
			if err := c.Reduce(0, OpSum, buf); err != nil {
				ok = false
				return
			}
			if c.Rank() == 0 {
				for i := range buf {
					if math.Abs(float64(buf[i])-want[i]) > 1e-4 {
						ok = false
					}
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 6
	var before, after int32
	runRanks(t, n, func(c *Comm) {
		atomic.AddInt32(&before, 1)
		if err := c.Barrier(); err != nil {
			t.Error(err)
			return
		}
		// Every rank must have entered before any rank exits.
		if got := atomic.LoadInt32(&before); got != n {
			t.Errorf("rank %d exited barrier with only %d/%d entered", c.Rank(), got, n)
		}
		atomic.AddInt32(&after, 1)
	})
	if after != n {
		t.Fatalf("only %d ranks exited", after)
	}
}

func TestGather(t *testing.T) {
	const n = 5
	runRanks(t, n, func(c *Comm) {
		send := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		var recv []float32
		if c.Rank() == 2 {
			recv = make([]float32, 2*n)
		}
		if err := c.Gather(2, send, recv); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 2 {
			for r := 0; r < n; r++ {
				if recv[2*r] != float32(r) || recv[2*r+1] != float32(r*10) {
					t.Errorf("gathered %v", recv)
					return
				}
			}
		}
	})
}

func TestScatter(t *testing.T) {
	const n = 4
	runRanks(t, n, func(c *Comm) {
		var send []float32
		if c.Rank() == 1 {
			send = make([]float32, 3*n)
			for i := range send {
				send[i] = float32(i)
			}
		}
		recv := make([]float32, 3)
		if err := c.Scatter(1, send, recv); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			if recv[i] != float32(3*c.Rank()+i) {
				t.Errorf("rank %d got %v", c.Rank(), recv)
				return
			}
		}
	})
}

func TestScatterSizeMismatch(t *testing.T) {
	// Root detects the bad send-buffer size before communicating, so only
	// the root participates here.
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		send := make([]float32, 3) // wrong: needs 2*2
		recv := make([]float32, 2)
		if err := c.Scatter(0, send, recv); err == nil {
			t.Error("expected size mismatch error at root")
		}
	})
}

func TestGatherSizeMismatch(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 1 {
			// Non-root just sends; it cannot detect the root's bad buffer.
			if err := c.Gather(0, []float32{1}, nil); err != nil {
				t.Error(err)
			}
			return
		}
		recv := make([]float32, 3) // wrong: needs 2
		if err := c.Gather(0, []float32{0}, recv); err == nil {
			t.Error("expected size mismatch error at root")
		}
	})
}

func TestAllgather(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		runRanks(t, n, func(c *Comm) {
			send := []float32{float32(c.Rank() + 100)}
			recv := make([]float32, n)
			if err := c.Allgather(send, recv); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < n; r++ {
				if recv[r] != float32(r+100) {
					t.Errorf("n=%d rank %d got %v", n, c.Rank(), recv)
					return
				}
			}
		})
	}
}

func TestSendIntsRoundTrip(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.SendInts(1, 3, []int{-5, 0, 1 << 40})
		} else {
			got, err := c.RecvInts(0, 3)
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != 3 || got[0] != -5 || got[2] != 1<<40 {
				t.Errorf("got %v", got)
			}
		}
	})
}
