package mpi

// Nonblocking point-to-point operations in the style of MPI_Isend /
// MPI_Irecv / MPI_Wait. The paper's application is bulk-synchronous, but
// overlap of computation and communication is one of the §V-C levers
// ("efficiently overlapping computation and communication helps"), and
// these primitives let library users express it.

// Request is a handle to a pending nonblocking operation.
type Request struct {
	done chan struct{}
	msg  Message
	err  error
}

// Wait blocks until the operation completes and returns the received
// message (zero Message for sends) and any error.
func (r *Request) Wait() (Message, error) {
	<-r.done
	return r.msg, r.err
}

// Done reports without blocking whether the operation has completed
// (MPI_Test).
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a nonblocking send. The data is copied before Isend
// returns, so the caller may immediately reuse the buffer.
func (c *Comm) Isend(dst, tag int, data []byte) *Request {
	cp := make([]byte, len(data))
	copy(cp, data)
	r := &Request{done: make(chan struct{})}
	go func() {
		r.err = c.SendBytes(dst, tag, cp)
		close(r.done)
	}()
	return r
}

// Irecv starts a nonblocking receive matching (src, tag); src may be
// AnySource and tag AnyTag.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		r.msg, r.err = c.RecvBytes(src, tag)
		close(r.done)
	}()
	return r
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
