package mpi

import (
	"testing"
	"time"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 5, []byte{1, 2, 3})
			if _, err := req.Wait(); err != nil {
				t.Error(err)
			}
		} else {
			req := c.Irecv(0, 5)
			msg, err := req.Wait()
			if err != nil || len(msg.Data) != 3 || msg.Data[2] != 3 {
				t.Errorf("msg %v err %v", msg, err)
			}
		}
	})
}

func TestIsendBufferReuse(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte{42}
			req := c.Isend(1, 1, buf)
			buf[0] = 99 // mutate immediately: Isend must have copied
			req.Wait()
		} else {
			msg, err := c.RecvBytes(0, 1)
			if err != nil || msg.Data[0] != 42 {
				t.Errorf("got %v err %v: Isend did not copy the buffer", msg.Data, err)
			}
		}
	})
}

func TestIrecvOverlapsCompute(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			c.SendBytes(1, 2, []byte{7})
		} else {
			req := c.Irecv(0, 2)
			if req.Done() {
				t.Error("request done before any send")
			}
			// "Compute" while the receive is pending.
			sum := 0
			for i := 0; i < 1000; i++ {
				sum += i
			}
			msg, err := req.Wait()
			if err != nil || msg.Data[0] != 7 {
				t.Errorf("msg %v err %v", msg, err)
			}
			if !req.Done() {
				t.Error("Done false after Wait")
			}
			_ = sum
		}
	})
}

func TestWaitAll(t *testing.T) {
	runRanks(t, 3, func(c *Comm) {
		if c.Rank() == 0 {
			reqs := []*Request{
				c.Isend(1, 1, []byte{1}),
				c.Isend(2, 1, []byte{2}),
				c.Irecv(AnySource, 9),
				c.Irecv(AnySource, 9),
			}
			if err := WaitAll(reqs...); err != nil {
				t.Error(err)
			}
		} else {
			msg, err := c.RecvBytes(0, 1)
			if err != nil || msg.Data[0] != byte(c.Rank()) {
				t.Errorf("rank %d: %v %v", c.Rank(), msg, err)
			}
			c.SendBytes(0, 9, []byte{byte(c.Rank())})
		}
	})
}

func TestAllreduceRecursiveDoublingPowerOfTwo(t *testing.T) {
	// Power-of-two sizes take the recursive-doubling path; results must be
	// identical on every rank and equal to the serial sum.
	for _, n := range []int{2, 4, 8, 16} {
		results := make([][]float32, n)
		runRanks(t, n, func(c *Comm) {
			buf := []float32{float32(c.Rank() + 1), 0.5}
			if err := c.Allreduce(OpSum, buf); err != nil {
				t.Error(err)
				return
			}
			results[c.Rank()] = buf
		})
		wantSum := float32(n * (n + 1) / 2)
		for r := 0; r < n; r++ {
			if results[r][0] != wantSum || results[r][1] != 0.5*float32(n) {
				t.Fatalf("n=%d rank %d: %v", n, r, results[r])
			}
			// Bitwise identical across ranks.
			if results[r][0] != results[0][0] || results[r][1] != results[0][1] {
				t.Fatalf("n=%d: rank %d result differs bitwise from rank 0", n, r)
			}
		}
	}
}

func TestAllreduceRDMaxMin(t *testing.T) {
	runRanks(t, 8, func(c *Comm) {
		buf := []float32{float32(c.Rank())}
		if err := c.Allreduce(OpMax, buf); err != nil {
			t.Error(err)
			return
		}
		if buf[0] != 7 {
			t.Errorf("max %v", buf[0])
		}
		buf[0] = float32(c.Rank())
		if err := c.Allreduce(OpMin, buf); err != nil {
			t.Error(err)
			return
		}
		if buf[0] != 0 {
			t.Errorf("min %v", buf[0])
		}
	})
}
