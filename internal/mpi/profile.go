package mpi

import (
	"sort"
	"sync"
	"time"
)

// Category classifies communication the way the paper's Figures 4 and 5
// do: point-to-point versus collective MPI time.
type Category int

const (
	// CatP2P covers Send/Recv (e.g. the master's load_data distribution).
	CatP2P Category = iota
	// CatCollective covers Bcast/Reduce/... (e.g. sync_weights).
	CatCollective
)

// String returns the category label used in reports.
func (c Category) String() string {
	switch c {
	case CatP2P:
		return "point-to-point"
	case CatCollective:
		return "collective"
	default:
		return "unknown"
	}
}

// Stat accumulates communication activity for one (phase, category) cell.
type Stat struct {
	Time  time.Duration
	Bytes int64
	Calls int64
}

type statKey struct {
	Phase string
	Cat   Category
}

// Profiler records per-phase, per-category communication statistics for
// one rank. It is safe for concurrent use, although a rank is normally
// single-threaded.
type Profiler struct {
	mu    sync.Mutex
	phase string
	stats map[statKey]*Stat
}

// NewProfiler returns an empty profiler with phase "".
func NewProfiler() *Profiler {
	return &Profiler{stats: make(map[statKey]*Stat)}
}

// SetPhase labels subsequent communication with the given phase name
// (e.g. "load_data", "sync_weights", "cg_minimize").
func (p *Profiler) SetPhase(name string) {
	p.mu.Lock()
	p.phase = name
	p.mu.Unlock()
}

// Phase returns the current phase label.
func (p *Profiler) Phase() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.phase
}

func (p *Profiler) add(cat Category, d time.Duration, bytes int64) {
	p.mu.Lock()
	k := statKey{Phase: p.phase, Cat: cat}
	s := p.stats[k]
	if s == nil {
		s = &Stat{}
		p.stats[k] = s
	}
	s.Time += d
	s.Bytes += bytes
	s.Calls++
	p.mu.Unlock()
}

// PhaseStat is one row of a profiler snapshot.
type PhaseStat struct {
	Phase string
	Cat   Category
	Stat  Stat
}

// Snapshot returns the accumulated statistics sorted by phase then
// category.
func (p *Profiler) Snapshot() []PhaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseStat, 0, len(p.stats))
	for k, s := range p.stats {
		out = append(out, PhaseStat{Phase: k.Phase, Cat: k.Cat, Stat: *s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Cat < out[j].Cat
	})
	return out
}

// TotalByCategory sums the recorded time per category across phases.
func (p *Profiler) TotalByCategory() map[Category]time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Category]time.Duration)
	for k, s := range p.stats {
		out[k.Cat] += s.Time
	}
	return out
}

// Reset clears all accumulated statistics but keeps the current phase.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.stats = make(map[statKey]*Stat)
	p.mu.Unlock()
}
