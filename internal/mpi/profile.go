package mpi

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Category classifies communication the way the paper's Figures 4 and 5
// do: point-to-point versus collective MPI time.
type Category int

const (
	// CatP2P covers Send/Recv (e.g. the master's load_data distribution).
	CatP2P Category = iota
	// CatCollective covers Bcast/Reduce/... (e.g. sync_weights).
	CatCollective
	// numCategories counts the defined categories; keep it last.
	numCategories
)

// String returns the category label used in reports. Categories added
// in the future render as "category(N)" until given a label here, so a
// report never silently conflates two unlabeled categories.
func (c Category) String() string {
	switch c {
	case CatP2P:
		return "point-to-point"
	case CatCollective:
		return "collective"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Stat accumulates communication activity for one (phase, category) cell.
type Stat struct {
	Time  time.Duration
	Bytes int64
	Calls int64
	// Min and Max are the fastest and slowest single call in the cell
	// (Min is meaningful only when Calls > 0).
	Min time.Duration
	Max time.Duration
}

// MeanLatency returns the mean per-call latency of the cell, 0 when no
// calls were recorded.
func (s Stat) MeanLatency() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Calls)
}

type statKey struct {
	Phase string
	Cat   Category
}

// opMetrics caches the obs instruments for one MPI operation so the hot
// path does a map lookup under the profiler mutex it already holds,
// never a registry lock.
type opMetrics struct {
	lat   *obs.Histogram
	bytes *obs.Histogram
}

// Profiler records per-phase, per-category communication statistics for
// one rank. It is safe for concurrent use, although a rank is normally
// single-threaded. When a metrics registry is attached (SetRegistry) the
// profiler additionally feeds per-operation latency/bytes histograms
// into it, making the registry the single source of truth for
// communication metrics.
type Profiler struct {
	mu    sync.Mutex
	phase string
	stats map[statKey]*Stat
	reg   *obs.Registry
	ops   map[string]*opMetrics
}

// NewProfiler returns an empty profiler with phase "".
func NewProfiler() *Profiler {
	return &Profiler{stats: make(map[statKey]*Stat)}
}

// SetRegistry routes this profiler's per-operation data into the given
// obs registry as "mpi.<op>.latency_ns" and "mpi.<op>.bytes" histograms
// (op = send, recv, bcast, reduce, allreduce, barrier, gather, scatter,
// allgather, ...). A nil registry detaches.
func (p *Profiler) SetRegistry(r *obs.Registry) {
	p.mu.Lock()
	p.reg = r
	p.ops = make(map[string]*opMetrics)
	p.mu.Unlock()
}

// SetPhase labels subsequent communication with the given phase name
// (e.g. "load_data", "sync_weights", "cg_minimize").
func (p *Profiler) SetPhase(name string) {
	p.mu.Lock()
	p.phase = name
	p.mu.Unlock()
}

// Phase returns the current phase label.
func (p *Profiler) Phase() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.phase
}

func (p *Profiler) add(cat Category, d time.Duration, bytes int64) {
	p.addOp(cat, "", d, bytes)
}

// addOp records one call of the named MPI operation: into the per-phase
// per-category table always, and into the attached registry's
// per-operation histograms when one is set.
func (p *Profiler) addOp(cat Category, op string, d time.Duration, bytes int64) {
	p.mu.Lock()
	k := statKey{Phase: p.phase, Cat: cat}
	s := p.stats[k]
	if s == nil {
		s = &Stat{}
		p.stats[k] = s
	}
	if s.Calls == 0 || d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Time += d
	s.Bytes += bytes
	s.Calls++
	var m *opMetrics
	if p.reg != nil && op != "" {
		m = p.ops[op]
		if m == nil {
			m = &opMetrics{
				lat:   p.reg.Histogram("mpi." + op + ".latency_ns"),
				bytes: p.reg.Histogram("mpi." + op + ".bytes"),
			}
			p.ops[op] = m
		}
	}
	p.mu.Unlock()
	if m != nil {
		m.lat.Observe(d.Nanoseconds())
		m.bytes.Observe(bytes)
	}
}

// PhaseStat is one row of a profiler snapshot.
type PhaseStat struct {
	Phase string
	Cat   Category
	Stat  Stat
}

// Snapshot returns the accumulated statistics sorted by phase then
// category.
func (p *Profiler) Snapshot() []PhaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseStat, 0, len(p.stats))
	for k, s := range p.stats {
		out = append(out, PhaseStat{Phase: k.Phase, Cat: k.Cat, Stat: *s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Cat < out[j].Cat
	})
	return out
}

// phaseStatJSON is the export shape of one snapshot row.
type phaseStatJSON struct {
	Phase    string  `json:"phase"`
	Category string  `json:"category"`
	TimeNs   int64   `json:"time_ns"`
	Bytes    int64   `json:"bytes"`
	Calls    int64   `json:"calls"`
	MinNs    int64   `json:"min_ns"`
	MaxNs    int64   `json:"max_ns"`
	MeanNs   int64   `json:"mean_ns"`
	MeanMBps float64 `json:"mean_mb_per_s"`
}

// WriteJSON exports the profiler snapshot as indented JSON, one record
// per (phase, category) cell with total/min/max/mean latency and
// throughput.
func (p *Profiler) WriteJSON(w io.Writer) error {
	snap := p.Snapshot()
	rows := make([]phaseStatJSON, 0, len(snap))
	for _, ps := range snap {
		r := phaseStatJSON{
			Phase:    ps.Phase,
			Category: ps.Cat.String(),
			TimeNs:   ps.Stat.Time.Nanoseconds(),
			Bytes:    ps.Stat.Bytes,
			Calls:    ps.Stat.Calls,
			MinNs:    ps.Stat.Min.Nanoseconds(),
			MaxNs:    ps.Stat.Max.Nanoseconds(),
			MeanNs:   ps.Stat.MeanLatency().Nanoseconds(),
		}
		if sec := ps.Stat.Time.Seconds(); sec > 0 {
			r.MeanMBps = float64(ps.Stat.Bytes) / 1e6 / sec
		}
		rows = append(rows, r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WeightedMeanLatency returns the Calls-weighted mean per-call latency
// across the given snapshot rows: total time over total calls. This is
// the aggregate a report row should show — a plain average of per-cell
// means would overweight rare slow phases.
func WeightedMeanLatency(stats []PhaseStat) time.Duration {
	var total time.Duration
	var calls int64
	for _, ps := range stats {
		total += ps.Stat.Time
		calls += ps.Stat.Calls
	}
	if calls == 0 {
		return 0
	}
	return total / time.Duration(calls)
}

// TotalByCategory sums the recorded time per category across phases.
func (p *Profiler) TotalByCategory() map[Category]time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Category]time.Duration)
	for k, s := range p.stats {
		out[k.Cat] += s.Time
	}
	return out
}

// Reset clears all accumulated statistics but keeps the current phase
// and the attached registry.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.stats = make(map[statKey]*Stat)
	p.mu.Unlock()
}
