package mpi

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestProfilerRecordsCategories(t *testing.T) {
	runRanks(t, 2, func(c *Comm) {
		c.SetPhase("load_data")
		if c.Rank() == 0 {
			c.SendF32(1, 1, make([]float32, 10))
		} else {
			buf := make([]float32, 10)
			c.RecvF32(0, 1, buf)
		}
		c.SetPhase("sync_weights")
		c.Bcast(0, make([]float32, 20))

		snap := c.Profiler().Snapshot()
		var sawP2P, sawColl bool
		for _, s := range snap {
			switch {
			case s.Phase == "load_data" && s.Cat == CatP2P:
				sawP2P = true
				if s.Stat.Bytes != 40 || s.Stat.Calls != 1 {
					t.Errorf("rank %d load_data stat: %+v", c.Rank(), s.Stat)
				}
			case s.Phase == "sync_weights" && s.Cat == CatCollective:
				sawColl = true
				if s.Stat.Bytes != 80 {
					t.Errorf("rank %d sync_weights bytes = %d", c.Rank(), s.Stat.Bytes)
				}
			}
		}
		if !sawP2P || !sawColl {
			t.Errorf("rank %d: p2p=%v collective=%v", c.Rank(), sawP2P, sawColl)
		}
	})
}

func TestProfilerTotalsAndReset(t *testing.T) {
	p := NewProfiler()
	p.SetPhase("a")
	p.add(CatP2P, 2*time.Millisecond, 100)
	p.SetPhase("b")
	p.add(CatP2P, 3*time.Millisecond, 200)
	p.add(CatCollective, 5*time.Millisecond, 300)

	totals := p.TotalByCategory()
	if totals[CatP2P] != 5*time.Millisecond {
		t.Fatalf("p2p total %v", totals[CatP2P])
	}
	if totals[CatCollective] != 5*time.Millisecond {
		t.Fatalf("collective total %v", totals[CatCollective])
	}
	if p.Phase() != "b" {
		t.Fatalf("phase %q", p.Phase())
	}
	p.Reset()
	if len(p.Snapshot()) != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if p.Phase() != "b" {
		t.Fatal("Reset must keep the phase")
	}
}

func TestProfilerSnapshotSorted(t *testing.T) {
	p := NewProfiler()
	p.SetPhase("z")
	p.add(CatCollective, time.Millisecond, 1)
	p.SetPhase("a")
	p.add(CatCollective, time.Millisecond, 1)
	p.add(CatP2P, time.Millisecond, 1)
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len %d", len(snap))
	}
	if snap[0].Phase != "a" || snap[0].Cat != CatP2P {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[2].Phase != "z" {
		t.Fatalf("snapshot order: %+v", snap)
	}
}

func TestCategoryString(t *testing.T) {
	if CatP2P.String() != "point-to-point" || CatCollective.String() != "collective" {
		t.Fatal("category labels wrong")
	}
	// Future categories must render distinctly, not collapse into one
	// shared "unknown" label.
	if got := Category(99).String(); got != "category(99)" {
		t.Fatalf("future category label = %q, want category(99)", got)
	}
	if Category(99).String() == Category(98).String() {
		t.Fatal("two unlabeled categories rendered identically")
	}
	// Every defined category has a real label.
	for c := Category(0); c < numCategories; c++ {
		if strings.HasPrefix(c.String(), "category(") {
			t.Fatalf("defined category %d has no label", c)
		}
	}
}

func TestStatMinMaxMean(t *testing.T) {
	p := NewProfiler()
	p.SetPhase("x")
	p.add(CatP2P, 4*time.Millisecond, 10)
	p.add(CatP2P, 2*time.Millisecond, 10)
	p.add(CatP2P, 6*time.Millisecond, 10)
	s := p.Snapshot()[0].Stat
	if s.Min != 2*time.Millisecond || s.Max != 6*time.Millisecond {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
	if s.MeanLatency() != 4*time.Millisecond {
		t.Fatalf("mean=%v", s.MeanLatency())
	}
	if (Stat{}).MeanLatency() != 0 {
		t.Fatal("empty stat mean must be 0")
	}
}

func TestWeightedMeanLatency(t *testing.T) {
	stats := []PhaseStat{
		{Stat: Stat{Time: 10 * time.Millisecond, Calls: 10}}, // mean 1ms
		{Stat: Stat{Time: 10 * time.Millisecond, Calls: 1}},  // mean 10ms
	}
	// Calls-weighted: 20ms / 11 calls, not the 5.5ms cell-mean average.
	want := 20 * time.Millisecond / 11
	if got := WeightedMeanLatency(stats); got != want {
		t.Fatalf("weighted mean = %v, want %v", got, want)
	}
	if WeightedMeanLatency(nil) != 0 {
		t.Fatal("empty snapshot weighted mean must be 0")
	}
}

func TestProfilerWriteJSON(t *testing.T) {
	p := NewProfiler()
	p.SetPhase("sync_weights")
	p.add(CatCollective, 2*time.Millisecond, 4096)
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &rows); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, sb.String())
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r["phase"] != "sync_weights" || r["category"] != "collective" {
		t.Fatalf("row: %+v", r)
	}
	for _, k := range []string{"time_ns", "bytes", "calls", "min_ns", "max_ns", "mean_ns"} {
		if _, ok := r[k]; !ok {
			t.Fatalf("row missing %q: %+v", k, r)
		}
	}
}

func TestProfilerRoutesIntoRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	runRanks(t, 4, func(c *Comm) {
		c.SetMetrics(reg)
		c.SetPhase("sync_weights")
		if err := c.Bcast(0, make([]float32, 16)); err != nil {
			t.Error(err)
		}
		buf := []float32{1}
		if err := c.Reduce(0, OpSum, buf); err != nil {
			t.Error(err)
		}
	})
	lat := reg.Histogram("mpi.bcast.latency_ns")
	if lat.Count() != 4 {
		t.Fatalf("bcast latency observations = %d, want 4 (one per rank)", lat.Count())
	}
	bytes := reg.Histogram("mpi.bcast.bytes")
	if bytes.Sum() != 4*64 {
		t.Fatalf("bcast bytes sum = %d, want %d", bytes.Sum(), 4*64)
	}
	if reg.Histogram("mpi.reduce.latency_ns").Count() != 4 {
		t.Fatal("reduce not routed into registry")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	f32 := []float32{0, -1.5, 3.25e10}
	buf := encodeF32(f32)
	out := make([]float32, 3)
	if err := decodeF32Into(buf, out); err != nil {
		t.Fatal(err)
	}
	for i := range f32 {
		if out[i] != f32[i] {
			t.Fatalf("f32 roundtrip: %v != %v", out, f32)
		}
	}
	if err := decodeF32Into(buf[:8], out); err == nil {
		t.Fatal("expected length error")
	}

	f64 := []float64{1e-300, 2, -7.5}
	out64 := make([]float64, 3)
	if err := decodeF64Into(encodeF64(f64), out64); err != nil {
		t.Fatal(err)
	}
	for i := range f64 {
		if out64[i] != f64[i] {
			t.Fatalf("f64 roundtrip: %v != %v", out64, f64)
		}
	}
	if err := decodeF64Into(encodeF64(f64)[:8], out64); err == nil {
		t.Fatal("expected length error")
	}

	ints := []int{-1, 0, 1 << 50}
	got, err := decodeInts(encodeInts(ints))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if got[i] != ints[i] {
			t.Fatalf("ints roundtrip: %v != %v", got, ints)
		}
	}
	if _, err := decodeInts(make([]byte, 7)); err == nil {
		t.Fatal("expected alignment error")
	}
}
