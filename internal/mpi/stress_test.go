package mpi

import (
	"math/rand"
	"sync"
	"testing"
)

// Stress: many ranks exchanging many random tagged messages — every
// message must be delivered exactly once with intact payload, regardless
// of ordering.
func TestMessageStormExactlyOnce(t *testing.T) {
	const (
		ranks   = 6
		perPair = 40
	)
	f := NewInprocFabric(ranks)
	defer f.Close()

	var wg sync.WaitGroup
	errs := make(chan string, ranks*ranks*perPair)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewComm(f.Transport(r))
			rng := rand.New(rand.NewSource(int64(r)))
			// Send perPair messages to every other rank with payload
			// encoding (src, dst, seq).
			var sendWG sync.WaitGroup
			sendWG.Add(1)
			go func() {
				defer sendWG.Done()
				// The sender runs concurrently with the receive loop below,
				// so it needs its own RNG: *rand.Rand is not goroutine-safe.
				sendRng := rand.New(rand.NewSource(int64(r) + 1000))
				for dst := 0; dst < ranks; dst++ {
					if dst == r {
						continue
					}
					for seq := 0; seq < perPair; seq++ {
						payload := []byte{byte(r), byte(dst), byte(seq), byte(sendRng.Intn(256))}
						if err := c.SendBytes(dst, 100+seq, payload); err != nil {
							errs <- err.Error()
							return
						}
					}
				}
			}()
			// Receive perPair messages from every other rank, in a
			// shuffled tag order to exercise out-of-order matching.
			seen := make(map[[3]byte]bool)
			for src := 0; src < ranks; src++ {
				if src == r {
					continue
				}
				for _, seq := range rng.Perm(perPair) {
					msg, err := c.RecvBytes(src, 100+seq)
					if err != nil {
						errs <- err.Error()
						return
					}
					if int(msg.Data[0]) != src || int(msg.Data[1]) != r || int(msg.Data[2]) != seq {
						errs <- "payload corrupted"
						return
					}
					key := [3]byte{msg.Data[0], msg.Data[1], msg.Data[2]}
					if seen[key] {
						errs <- "duplicate delivery"
						return
					}
					seen[key] = true
				}
			}
			sendWG.Wait()
			if len(seen) != (ranks-1)*perPair {
				errs <- "missing messages"
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Stress the collectives: interleave different collective types
// back-to-back on the same communicator set; any tag leakage between them
// would corrupt results.
func TestInterleavedCollectives(t *testing.T) {
	const n = 5
	runRanks(t, n, func(c *Comm) {
		for round := 0; round < 10; round++ {
			buf := []float32{float32(c.Rank() + round)}
			if err := c.Allreduce(OpSum, buf); err != nil {
				t.Error(err)
				return
			}
			want := float32(n*(n-1)/2 + n*round)
			if buf[0] != want {
				t.Errorf("round %d: allreduce %v, want %v", round, buf[0], want)
				return
			}
			if err := c.Barrier(); err != nil {
				t.Error(err)
				return
			}
			b := []float32{0}
			if c.Rank() == round%n {
				b[0] = float32(round + 1)
			}
			if err := c.Bcast(round%n, b); err != nil {
				t.Error(err)
				return
			}
			if b[0] != float32(round+1) {
				t.Errorf("round %d: bcast got %v", round, b[0])
				return
			}
			g := make([]float32, n)
			if err := c.Allgather([]float32{float32(c.Rank()*10 + round)}, g); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < n; r++ {
				if g[r] != float32(r*10+round) {
					t.Errorf("round %d: allgather %v", round, g)
					return
				}
			}
		}
	})
}
