package mpi

import "testing"

// TestReservedTagPlan pins the static tag plan of the mpi package. The
// tagspace analyzer (internal/lint) proves the *uses* are collision-free,
// but constants that only reach a tag position through a config field
// (DefaultHeartbeatTag via FaultPolicy.HeartbeatTag) are invisible to it,
// so the values themselves are pinned here: perturbing any reserved tag
// constant must fail this test before it can silently alias another
// protocol's traffic.
func TestReservedTagPlan(t *testing.T) {
	// Collective bases: one 2²⁴-wide block each, in declaration order,
	// starting at 1<<24 so block 0 stays free for user tags.
	bases := []struct {
		name string
		tag  int
	}{
		{"tagBcast", tagBcast},
		{"tagReduce", tagReduce},
		{"tagGather", tagGather},
		{"tagScatter", tagScatter},
		{"tagBarrier", tagBarrier},
		{"tagAllgather", tagAllgather},
		{"tagAllredRD", tagAllredRD},
	}
	for i, b := range bases {
		if want := (i + 1) << 24; b.tag != want {
			t.Errorf("%s = %d, want %d (block %d)", b.name, b.tag, want, i+1)
		}
	}

	// Heartbeat pings use a round-offset block of their own, above every
	// collective block and directly above the elastic reply block
	// (16<<24, internal/core) so round offsets below 2²⁴ cannot cross.
	if DefaultHeartbeatTag != 17<<24 {
		t.Errorf("DefaultHeartbeatTag = %d, want %d", DefaultHeartbeatTag, 17<<24)
	}

	// Telemetry-plane tags live in the user space (below 1<<24), above
	// the trainer's shard/async tags (9000-9105) and the elastic command
	// tag (9500).
	if TagClockSync != 9600 {
		t.Errorf("TagClockSync = %d, want 9600", TagClockSync)
	}
	if TagTelemetry != 9601 {
		t.Errorf("TagTelemetry = %d, want 9601", TagTelemetry)
	}
	for _, tag := range []int{TagClockSync, TagTelemetry} {
		if tag >= tagBcast {
			t.Errorf("telemetry tag %d collides with the collective blocks (>= %d)", tag, tagBcast)
		}
	}
}
