package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Wire format: every frame is [tag int32][length uint32][payload]. The
// sender's rank is established once per connection by a handshake frame
// carrying the dialer's rank, so per-message overhead stays at 8 bytes.

// maxFrameSize bounds a single message; larger frames indicate corruption
// and fail the connection rather than attempting a huge allocation.
const maxFrameSize = 1 << 30

// tcpTransport is a full-mesh TCP endpoint. Rank i listens on addrs[i];
// during setup it accepts connections from all lower ranks and dials all
// higher ranks. Incoming frames from all peers are funneled into one
// tag-matched mailbox by per-connection reader goroutines.
type tcpTransport struct {
	rank  int
	size  int
	box   *mailbox
	conns []*tcpConn // indexed by peer rank; conns[rank] == nil
	ln    net.Listener

	// writeDeadlineNs bounds each frame write so a wedged peer (socket
	// buffers full, reader stopped) surfaces as a send error instead of
	// blocking Send forever. Recv paths have always had failure
	// detection via markDown; this is the symmetric send-side bound.
	writeDeadlineNs atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// SetWriteDeadline implements WriteDeadliner: each subsequent frame
// write must complete within d of starting. d <= 0 restores
// DefaultTCPWriteDeadline.
func (t *tcpTransport) SetWriteDeadline(d time.Duration) {
	if d <= 0 {
		d = DefaultTCPWriteDeadline
	}
	t.writeDeadlineNs.Store(int64(d))
}

type tcpConn struct {
	mu sync.Mutex // serializes writers
	c  net.Conn
}

// ConnectTCP builds the TCP endpoint for rank among size ranks, where
// addrs[i] is the listen address of rank i. Every rank must call
// ConnectTCP concurrently; it returns once the full mesh is established.
func ConnectTCP(rank int, addrs []string) (Transport, error) {
	size := len(addrs)
	if err := checkRank("tcp", rank, size); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d listen: %w", rank, err)
	}
	return connectTCPWithListener(rank, addrs, ln)
}

// ConnectTCPLocal creates a size-rank fabric on ephemeral localhost ports
// and returns all endpoints. It exists for tests and single-host
// multi-transport runs where addresses are not known in advance.
func ConnectTCPLocal(size int) ([]Transport, error) {
	lns := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	transports := make([]Transport, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			transports[i], errs[i] = connectTCPWithListener(i, addrs, lns[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return transports, nil
}

func connectTCPWithListener(rank int, addrs []string, ln net.Listener) (Transport, error) {
	size := len(addrs)
	t := &tcpTransport{
		rank:  rank,
		size:  size,
		box:   newMailboxN(size - 1),
		conns: make([]*tcpConn, size),
		ln:    ln,
	}
	t.writeDeadlineNs.Store(int64(DefaultTCPWriteDeadline))

	type accepted struct {
		peer int
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, rank)
	// Accept one connection from each lower rank; the handshake frame
	// identifies the peer.
	go func() {
		for i := 0; i < rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptCh <- accepted{err: fmt.Errorf("mpi: handshake read: %w", err)}
				return
			}
			peer := int(int32(binary.LittleEndian.Uint32(hdr[:])))
			if peer < 0 || peer >= size || peer == rank {
				acceptCh <- accepted{err: fmt.Errorf("mpi: handshake from invalid rank %d", peer)}
				return
			}
			acceptCh <- accepted{peer: peer, conn: conn}
		}
	}()

	// Dial every higher rank, announcing our rank.
	for peer := rank + 1; peer < size; peer++ {
		conn, err := net.Dial("tcp", addrs[peer])
		if err != nil {
			_ = t.Close() // best-effort teardown; the dial error is primary
			return nil, fmt.Errorf("mpi: rank %d dial rank %d: %w", rank, peer, err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(int32(rank)))
		if _, err := conn.Write(hdr[:]); err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("mpi: rank %d handshake to %d: %w", rank, peer, err)
		}
		t.conns[peer] = &tcpConn{c: conn}
	}
	for i := 0; i < rank; i++ {
		a := <-acceptCh
		if a.err != nil {
			_ = t.Close()
			return nil, a.err
		}
		if t.conns[a.peer] != nil {
			_ = t.Close()
			return nil, fmt.Errorf("mpi: duplicate connection from rank %d", a.peer)
		}
		t.conns[a.peer] = &tcpConn{c: a.conn}
	}

	for peer, tc := range t.conns {
		if tc != nil {
			go t.readLoop(peer, tc.c)
		}
	}
	return t, nil
}

// readLoop parses frames from one peer into the mailbox until the
// connection fails or the transport closes.
func (t *tcpTransport) readLoop(peer int, conn net.Conn) {
	for {
		tag, data, err := readFrame(conn)
		if err != nil {
			// Peer death, a malformed frame, or local close: mark this
			// peer down so a Recv waiting on it observes the failure
			// instead of hanging. Queued messages from the peer remain
			// deliverable.
			t.box.markDown(peer)
			return
		}
		if t.box.put(Message{Src: peer, Tag: tag, Data: data}) != nil {
			return
		}
	}
}

func (t *tcpTransport) Rank() int { return t.rank }
func (t *tcpTransport) Size() int { return t.size }

func (t *tcpTransport) Send(dst, tag int, data []byte) error {
	if err := checkRank("send destination", dst, t.size); err != nil {
		return err
	}
	if dst == t.rank {
		cp := make([]byte, len(data))
		copy(cp, data)
		return t.box.put(Message{Src: t.rank, Tag: tag, Data: cp})
	}
	tc := t.conns[dst]
	if tc == nil {
		return ErrClosed
	}
	frame := appendFrame(make([]byte, 0, frameHeaderSize+len(data)), tag, data)
	tc.mu.Lock()
	if d := time.Duration(t.writeDeadlineNs.Load()); d > 0 {
		// Arm per write: the deadline bounds this frame, not the
		// connection's lifetime.
		_ = tc.c.SetWriteDeadline(time.Now().Add(d))
	}
	//lint:ignore lockacrossblock the write is deadline-bounded when shaping is on, and tc.mu serializes frame writes only — no collective or eviction path takes it
	_, err := tc.c.Write(frame)
	tc.mu.Unlock()
	if err != nil {
		// The frame may be partially written, so the stream to dst is
		// poisoned: close the connection and mark the peer down so
		// later ops fail fast instead of corrupting framing.
		_ = tc.c.Close()
		t.box.markDown(dst)
		return fmt.Errorf("mpi: send to rank %d: %w", dst, err)
	}
	return nil
}

func (t *tcpTransport) Recv(src, tag int) (Message, error) {
	if src != AnySource {
		if err := checkRank("recv source", src, t.size); err != nil {
			return Message{}, err
		}
	}
	return t.box.get(src, tag)
}

// RecvTimeout implements DeadlineRecver.
func (t *tcpTransport) RecvTimeout(src, tag int, d time.Duration) (Message, error) {
	if src != AnySource {
		if err := checkRank("recv source", src, t.size); err != nil {
			return Message{}, err
		}
	}
	return t.box.getTimeout(src, tag, d)
}

func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		t.box.close()
		if t.ln != nil {
			t.closeErr = t.ln.Close()
		}
		for _, tc := range t.conns {
			if tc != nil {
				tc.c.Close()
			}
		}
	})
	return t.closeErr
}
