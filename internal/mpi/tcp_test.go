package mpi

import (
	"sync"
	"testing"
	"time"
)

// runTCPRanks runs fn once per rank over a localhost TCP fabric.
func runTCPRanks(t *testing.T, n int, fn func(c *Comm)) {
	t.Helper()
	transports, err := ConnectTCPLocal(n)
	if err != nil {
		t.Fatalf("ConnectTCPLocal: %v", err)
	}
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewComm(transports[r])
			defer c.Close()
			fn(c)
		}(r)
	}
	wg.Wait()
}

func TestTCPSendRecv(t *testing.T) {
	runTCPRanks(t, 3, func(c *Comm) {
		switch c.Rank() {
		case 0:
			if err := c.SendF32(2, 9, []float32{1.5, -2.5}); err != nil {
				t.Error(err)
			}
		case 2:
			buf := make([]float32, 2)
			src, err := c.RecvF32(0, 9, buf)
			if err != nil || src != 0 || buf[0] != 1.5 || buf[1] != -2.5 {
				t.Errorf("src=%d buf=%v err=%v", src, buf, err)
			}
		}
	})
}

func TestTCPSendToSelf(t *testing.T) {
	runTCPRanks(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			if err := c.SendBytes(0, 1, []byte{42}); err != nil {
				t.Error(err)
				return
			}
			m, err := c.RecvBytes(0, 1)
			if err != nil || m.Data[0] != 42 {
				t.Errorf("self message: %v %v", m, err)
			}
		}
	})
}

func TestTCPCollectivesMatchInproc(t *testing.T) {
	const n = 4
	const dim = 33
	inprocResult := make([]float32, dim)
	runRanks(t, n, func(c *Comm) {
		buf := make([]float32, dim)
		for i := range buf {
			buf[i] = float32(c.Rank()*dim + i)
		}
		if err := c.Allreduce(OpSum, buf); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			copy(inprocResult, buf)
		}
	})
	tcpResult := make([]float32, dim)
	runTCPRanks(t, n, func(c *Comm) {
		buf := make([]float32, dim)
		for i := range buf {
			buf[i] = float32(c.Rank()*dim + i)
		}
		if err := c.Allreduce(OpSum, buf); err != nil {
			t.Error(err)
			return
		}
		if c.Rank() == 0 {
			copy(tcpResult, buf)
		}
	})
	for i := range inprocResult {
		if inprocResult[i] != tcpResult[i] {
			t.Fatalf("elem %d: inproc %v != tcp %v", i, inprocResult[i], tcpResult[i])
		}
	}
}

func TestTCPBcastLargePayload(t *testing.T) {
	const n = 3
	const dim = 1 << 16 // 256 KiB payload exercises framing across packets
	runTCPRanks(t, n, func(c *Comm) {
		buf := make([]float32, dim)
		if c.Rank() == 0 {
			for i := range buf {
				buf[i] = float32(i % 251)
			}
		}
		if err := c.Bcast(0, buf); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < dim; i += 997 {
			if buf[i] != float32(i%251) {
				t.Errorf("rank %d elem %d = %v", c.Rank(), i, buf[i])
				return
			}
		}
	})
}

// Failure injection: when a peer dies, a blocked Recv must observe an
// error instead of hanging — the worker-death detection path.
func TestTCPPeerDeathUnblocksRecv(t *testing.T) {
	transports, err := ConnectTCPLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := transports[0].Recv(1, 5)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	transports[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil error after peer death")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after peer death")
	}
	transports[0].Close()
}

func TestTCPSendAfterCloseErrors(t *testing.T) {
	transports, err := ConnectTCPLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	transports[0].Close()
	if err := transports[0].Send(1, 0, []byte{1}); err == nil {
		t.Fatal("Send after close must error")
	}
	transports[1].Close()
}

func TestTCPLoadDataPattern(t *testing.T) {
	// The master's load_data pattern: p2p sends of different sizes to each
	// worker, then a weight Bcast. Exercises mixed traffic on one fabric.
	const n = 4
	runTCPRanks(t, n, func(c *Comm) {
		if c.Rank() == 0 {
			for w := 1; w < n; w++ {
				payload := make([]float32, w*10)
				for i := range payload {
					payload[i] = float32(w)
				}
				if err := c.SendF32(w, 100, payload); err != nil {
					t.Error(err)
					return
				}
			}
		} else {
			buf := make([]float32, c.Rank()*10)
			if _, err := c.RecvF32(0, 100, buf); err != nil {
				t.Error(err)
				return
			}
			if buf[0] != float32(c.Rank()) {
				t.Errorf("rank %d payload %v", c.Rank(), buf[0])
			}
		}
		weights := make([]float32, 50)
		if c.Rank() == 0 {
			weights[49] = 7
		}
		if err := c.Bcast(0, weights); err != nil {
			t.Error(err)
			return
		}
		if weights[49] != 7 {
			t.Errorf("rank %d weights not synced", c.Rank())
		}
	})
}
