package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Activation selects the hidden-layer nonlinearity. The paper's acoustic
// models use the logistic sigmoid (the era's standard); Tanh and ReLU are
// provided as drop-in alternatives. The output layer is always linear
// logits consumed by softmax/cross-entropy or the sequence criterion.
type Activation int

const (
	// Sigmoid is the logistic function 1/(1+e^{-z}) (paper default).
	Sigmoid Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// ReLU is max(0, z).
	ReLU
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// apply computes the nonlinearity elementwise in place.
func (a Activation) apply(z *tensor.Matrix) {
	switch a {
	case Sigmoid:
		sigmoidInPlace(z)
	case Tanh:
		for i := 0; i < z.Rows; i++ {
			row := z.Row(i)
			for j, v := range row {
				row[j] = float32(math.Tanh(float64(v)))
			}
		}
	case ReLU:
		for i := 0; i < z.Rows; i++ {
			row := z.Row(i)
			for j, v := range row {
				if v < 0 {
					row[j] = 0
				}
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// hadamardDeriv computes d ∘= f'(z) elementwise, where f' is expressed in
// terms of the stored activation value a = f(z): sigmoid a(1−a), tanh
// 1−a², ReLU 1{a>0}. (For ReLU the derivative at exactly 0 is taken as 0.)
func (act Activation) hadamardDeriv(d, a *tensor.Matrix) {
	switch act {
	case Sigmoid:
		hadamardSigmoidDeriv(d, a)
	case Tanh:
		for i := 0; i < d.Rows; i++ {
			dr, ar := d.Row(i), a.Row(i)
			for j := range dr {
				dr[j] *= 1 - ar[j]*ar[j]
			}
		}
	case ReLU:
		for i := 0; i < d.Rows; i++ {
			dr, ar := d.Row(i), a.Row(i)
			for j := range dr {
				if ar[j] <= 0 {
					dr[j] = 0
				}
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", act))
	}
}
