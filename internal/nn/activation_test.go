package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestActivationString(t *testing.T) {
	if Sigmoid.String() != "sigmoid" || Tanh.String() != "tanh" || ReLU.String() != "relu" {
		t.Fatal("activation names wrong")
	}
	if Activation(9).String() == "" {
		t.Fatal("unknown activation must render")
	}
}

func TestActivationRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, act := range []Activation{Sigmoid, Tanh, ReLU} {
		z := tensor.RandMatrix(rng, 4, 8, 5)
		act.apply(z)
		for _, v := range z.Data {
			switch act {
			case Sigmoid:
				if v <= 0 || v >= 1 {
					t.Fatalf("sigmoid out of (0,1): %v", v)
				}
			case Tanh:
				if v <= -1 || v >= 1 {
					t.Fatalf("tanh out of (-1,1): %v", v)
				}
			case ReLU:
				if v < 0 {
					t.Fatalf("relu negative: %v", v)
				}
			}
		}
	}
}

// Gradient check for each activation: the whole backprop chain must stay
// exact when the nonlinearity changes.
func TestGradientAllActivations(t *testing.T) {
	for _, act := range []Activation{Sigmoid, Tanh, ReLU} {
		act := act
		t.Run(act.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			n := testNet(t, 4, 6, 3)
			n.Act = act
			x := tensor.RandMatrix(rng, 6, 4, 1)
			targets := make([]int, 6)
			for i := range targets {
				targets[i] = rng.Intn(3)
			}
			grad := tensor.NewVector(n.NumParams())
			n.LossGrad(x, targets, grad)

			const eps = 1e-2
			checked := 0
			for trial := 0; trial < 60 && checked < 15; trial++ {
				i := rng.Intn(n.NumParams())
				orig := n.Params[i]
				n.Params[i] = orig + eps
				lp, _ := CrossEntropy(n.Forward(x).Logits, targets)
				n.Params[i] = orig - eps
				lm, _ := CrossEntropy(n.Forward(x).Logits, targets)
				n.Params[i] = orig
				fd := (lp - lm) / (2 * eps)
				if math.Abs(fd) < 1e-3 && math.Abs(float64(grad[i])) < 1e-3 {
					continue
				}
				rel := math.Abs(fd-float64(grad[i])) / (math.Abs(fd) + math.Abs(float64(grad[i])) + 1e-8)
				// ReLU kinks make FD noisier.
				tol := 0.08
				if act == ReLU {
					tol = 0.15
				}
				if rel > tol {
					t.Fatalf("param %d: analytic %v vs FD %v (rel %.3f)", i, grad[i], fd, rel)
				}
				checked++
			}
			if checked < 5 {
				t.Fatalf("only %d informative checks", checked)
			}
		})
	}
}

// The Gauss-Newton operator must remain symmetric PSD for every
// activation.
func TestGNSymmetryAllActivations(t *testing.T) {
	for _, act := range []Activation{Sigmoid, Tanh, ReLU} {
		rng := rand.New(rand.NewSource(3))
		n := testNet(t, 3, 5, 2)
		n.Act = act
		x := tensor.RandMatrix(rng, 5, 3, 1)
		d := tensor.RandVector(rng, n.NumParams(), 0.5)
		e := tensor.RandVector(rng, n.NumParams(), 0.5)
		gd := tensor.NewVector(n.NumParams())
		ge := tensor.NewVector(n.NumParams())
		n.GNProduct(x, d, gd)
		n.GNProduct(x, e, ge)
		if math.Abs(e.Dot(gd)-d.Dot(ge)) > 1e-3*(1+math.Abs(e.Dot(gd))) {
			t.Fatalf("%v: GN not symmetric", act)
		}
		if d.Dot(gd) < -1e-4 {
			t.Fatalf("%v: GN not PSD", act)
		}
	}
}

func TestCloneKeepsActivation(t *testing.T) {
	n := testNet(t, 2, 3, 2)
	n.Act = Tanh
	if n.Clone().Act != Tanh {
		t.Fatal("Clone dropped the activation")
	}
}
