package nn

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/tensor"
)

// CrossEntropy computes the summed negative log-likelihood of the targets
// under the softmax of the logits, plus the number of correctly classified
// rows. Losses are sums (not means) so data-parallel workers can combine
// them with a single Reduce and the master can normalize by total count.
//
//lint:shape logits=(b,c) targets=b
func CrossEntropy(logits *tensor.Matrix, targets []int) (loss float64, correct int) {
	if len(targets) != logits.Rows {
		panic(fmt.Sprintf("nn: %d targets for %d rows", len(targets), logits.Rows))
	}
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		t := targets[i]
		if t < 0 || t >= len(row) {
			panic(fmt.Sprintf("nn: target %d out of range %d", t, len(row)))
		}
		max := row[0]
		best := 0
		for j, v := range row {
			if v > max {
				max = v
				best = j
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - max))
		}
		loss += math.Log(sum) - float64(row[t]-max)
		if best == t {
			correct++
		}
	}
	return loss, correct
}

// LossGrad runs forward + backward over the batch for the cross-entropy
// criterion and accumulates the summed-loss gradient into grad (+=).
// It returns the summed loss and the number of correct classifications.
//
//lint:shape x=(b,d) targets=b
func (n *Network) LossGrad(x *tensor.Matrix, targets []int, grad tensor.Vector) (loss float64, correct int) {
	if len(targets) != x.Rows {
		panic(fmt.Sprintf("nn: %d targets for %d rows", len(targets), x.Rows))
	}
	if len(grad) != n.NumParams() {
		panic(fmt.Sprintf("nn: grad vector %d elements, want %d", len(grad), n.NumParams()))
	}
	f := n.Forward(x)
	loss, correct = CrossEntropy(f.Logits, targets)
	// dL/dlogits for summed softmax-CE: P - onehot(targets).
	delta := Softmax(f.Logits)
	for i, t := range targets {
		delta.Row(i)[t] -= 1
	}
	n.BackpropOutputGrad(f, delta, grad)
	return loss, correct
}

// BackpropOutputGrad backpropagates an arbitrary gradient dOut with
// respect to the output logits through the stored forward pass,
// accumulating parameter gradients into grad (+=). This is the shared
// machinery behind both the cross-entropy and the sequence criteria and
// the backward half of the Gauss-Newton product.
//
// dOut is modified in place during the backward sweep.
func (n *Network) BackpropOutputGrad(f *Forward, dOut *tensor.Matrix, grad tensor.Vector) {
	if len(grad) != n.NumParams() {
		panic(fmt.Sprintf("nn: grad vector %d elements, want %d", len(grad), n.NumParams()))
	}
	gw, gb := n.Topo.Views(grad)
	L := n.Topo.NumLayers()
	delta := dOut
	for l := L - 1; l >= 0; l-- {
		var below *tensor.Matrix
		if l == 0 {
			below = f.X
		} else {
			below = f.Hidden[l-1]
		}
		// gW_l += deltaᵀ · a_below ; gb_l += column sums of delta.
		blas.Gemm(blas.Trans, blas.NoTrans, 1, delta, below, 1, gw[l])
		for i := 0; i < delta.Rows; i++ {
			blas.Axpy(1, delta.Row(i), gb[l])
		}
		if l == 0 {
			break
		}
		// delta_below = (delta · W_l) ∘ f'(z_below), f' evaluated from the
		// stored post-activation values.
		next := tensor.NewMatrix(delta.Rows, n.Topo.Sizes[l])
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, delta, n.Weights[l], 0, next)
		n.Act.hadamardDeriv(next, f.Hidden[l-1])
		delta = next
	}
}

// hadamardSigmoidDeriv computes d ∘= a(1-a) elementwise.
func hadamardSigmoidDeriv(d, a *tensor.Matrix) {
	for i := 0; i < d.Rows; i++ {
		dr, ar := d.Row(i), a.Row(i)
		for j := range dr {
			dr[j] *= ar[j] * (1 - ar[j])
		}
	}
}

// FrameAccuracy evaluates classification accuracy over a batch.
func (n *Network) FrameAccuracy(x *tensor.Matrix, targets []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := n.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == targets[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}
