package nn

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/tensor"
)

// FisherDiag accumulates the diagonal of the empirical Fisher matrix —
// the sum over batch rows of the squared per-frame cross-entropy
// gradient — into out (+=). This is the quantity behind the Martens
// (2010 §4.7) diagonal CG preconditioner, (diag(F) + λ)^α, the extension
// the paper's implementation defers.
//
// Because the per-frame gradient of W_l is the outer product δ_i·a_j, the
// summed square is Σ_n δ²_i a²_j = (Δ∘Δ)ᵀ(A∘A): one GEMM on elementwise
// squares per layer, so the diagonal costs about as much as one gradient.
//
//lint:shape x=(b,d) targets=b
func (n *Network) FisherDiag(x *tensor.Matrix, targets []int, out tensor.Vector) {
	if len(out) != n.NumParams() {
		panic(fmt.Sprintf("nn: FisherDiag vector %d elements, want %d", len(out), n.NumParams()))
	}
	f := n.Forward(x)
	delta := Softmax(f.Logits)
	for i, t := range targets {
		if t < 0 || t >= delta.Cols {
			panic(fmt.Sprintf("nn: target %d out of range %d", t, delta.Cols))
		}
		delta.Row(i)[t] -= 1
	}

	ow, ob := n.Topo.Views(out)
	L := n.Topo.NumLayers()
	for l := L - 1; l >= 0; l-- {
		var below *tensor.Matrix
		if l == 0 {
			below = f.X
		} else {
			below = f.Hidden[l-1]
		}
		d2 := squared(delta)
		a2 := squared(below)
		// diag(F)_Wl += (Δ∘Δ)ᵀ·(A∘A); biases get column sums of Δ∘Δ.
		blas.Gemm(blas.Trans, blas.NoTrans, 1, d2, a2, 1, ow[l])
		for i := 0; i < d2.Rows; i++ {
			blas.Axpy(1, d2.Row(i), ob[l])
		}
		if l == 0 {
			break
		}
		next := tensor.NewMatrix(delta.Rows, n.Topo.Sizes[l])
		blas.Gemm(blas.NoTrans, blas.NoTrans, 1, delta, n.Weights[l], 0, next)
		n.Act.hadamardDeriv(next, f.Hidden[l-1])
		delta = next
	}
}

// squared returns the elementwise square of m (compact copy).
func squared(m *tensor.Matrix) *tensor.Matrix {
	out := tensor.NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		src, dst := m.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = v * v
		}
	}
	return out
}
