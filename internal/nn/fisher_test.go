package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// Oracle: the Fisher diagonal computed frame by frame with full per-frame
// gradients.
func fisherDiagBrute(n *Network, x *tensor.Matrix, targets []int) tensor.Vector {
	out := tensor.NewVector(n.NumParams())
	for i := 0; i < x.Rows; i++ {
		g := tensor.NewVector(n.NumParams())
		n.LossGrad(x.View(i, 0, 1, x.Cols), targets[i:i+1], g)
		for j, v := range g {
			out[j] += v * v
		}
	}
	return out
}

func TestFisherDiagMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := testNet(t, 4, 6, 5, 3)
	x := tensor.RandMatrix(rng, 9, 4, 1)
	targets := make([]int, 9)
	for i := range targets {
		targets[i] = rng.Intn(3)
	}
	fast := tensor.NewVector(n.NumParams())
	n.FisherDiag(x, targets, fast)
	want := fisherDiagBrute(n, x, targets)
	for i := range want {
		if math.Abs(float64(fast[i]-want[i])) > 1e-3*(1+math.Abs(float64(want[i]))) {
			t.Fatalf("param %d: fast %v vs brute %v", i, fast[i], want[i])
		}
	}
}

func TestFisherDiagNonNegativeAndAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := testNet(t, 3, 4, 2)
	x := tensor.RandMatrix(rng, 5, 3, 1)
	targets := []int{0, 1, 0, 1, 0}
	d1 := tensor.NewVector(n.NumParams())
	n.FisherDiag(x, targets, d1)
	for i, v := range d1 {
		if v < 0 {
			t.Fatalf("negative Fisher diagonal at %d: %v", i, v)
		}
	}
	d2 := d1.Clone()
	n.FisherDiag(x, targets, d2)
	for i := range d2 {
		if math.Abs(float64(d2[i]-2*d1[i])) > 1e-4*(1+math.Abs(float64(d1[i]))) {
			t.Fatal("FisherDiag must accumulate")
		}
	}
}

func TestFisherDiagShapePanics(t *testing.T) {
	n := testNet(t, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.FisherDiag(tensor.NewMatrix(1, 3), []int{0}, make(tensor.Vector, 3))
}

func TestFisherDiagBadTargetPanics(t *testing.T) {
	n := testNet(t, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.FisherDiag(tensor.NewMatrix(1, 3), []int{7}, tensor.NewVector(n.NumParams()))
}
