package nn

import (
	"math"

	"repro/internal/blas"
	"repro/internal/check"
	"repro/internal/tensor"
)

// Forward holds the intermediate state of a forward pass over a batch:
// everything backpropagation and the R-operator need.
type Forward struct {
	// X is the input batch, batch×inputDim (aliased, not copied).
	X *tensor.Matrix
	// Hidden[l] is the post-sigmoid activation of hidden layer l,
	// batch×Sizes[l+1], for l in [0, NumLayers-1).
	Hidden []*tensor.Matrix
	// Logits is the output pre-activation, batch×outputDim.
	Logits *tensor.Matrix
}

// Batch returns the number of rows in the batch.
func (f *Forward) Batch() int { return f.X.Rows }

// Forward runs the network on a batch (rows are frames) and returns the
// stored activations. Hidden layers apply the network's Act nonlinearity
// (sigmoid by default); the output layer is left as logits so both the
// softmax/cross-entropy path and the sequence criterion can consume it.
func (n *Network) Forward(x *tensor.Matrix) *Forward {
	if x.Cols != n.Topo.InputDim() {
		panic("nn: input dimension mismatch")
	}
	f := &Forward{X: x}
	a := x
	L := n.Topo.NumLayers()
	for l := 0; l < L; l++ {
		z := tensor.NewMatrix(x.Rows, n.Topo.Sizes[l+1])
		// z = a·Wᵀ + 1·bᵀ
		blas.Gemm(blas.NoTrans, blas.Trans, 1, a, n.Weights[l], 0, z)
		addBiasRows(z, n.Biases[l])
		if l == L-1 {
			f.Logits = z
		} else {
			n.Act.apply(z)
			f.Hidden = append(f.Hidden, z)
			a = z
		}
	}
	return f
}

// addBiasRows adds b to every row of z.
//
//lint:shape b=z.Cols
func addBiasRows(z *tensor.Matrix, b tensor.Vector) {
	if check.Enabled {
		check.Dims("nn.addBiasRows.b", len(b), z.Cols)
	}
	for i := 0; i < z.Rows; i++ {
		blas.Axpy(1, b, z.Row(i))
	}
}

// sigmoidInPlace applies the logistic function elementwise.
func sigmoidInPlace(z *tensor.Matrix) {
	for i := 0; i < z.Rows; i++ {
		row := z.Row(i)
		for j, v := range row {
			row[j] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	}
}

// Softmax returns row-wise softmax probabilities of the logits.
//
//lint:shape return=(logits.Rows,logits.Cols)
func Softmax(logits *tensor.Matrix) *tensor.Matrix {
	p := tensor.NewMatrix(logits.Rows, logits.Cols)
	SoftmaxInto(logits, p)
	return p
}

// Predict returns the argmax class of each row of the batch.
func (n *Network) Predict(x *tensor.Matrix) []int {
	f := n.Forward(x)
	out := make([]int, x.Rows)
	for i := range out {
		row := f.Logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
