package nn

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/tensor"
)

// GNProduct accumulates (Jᵀ H_L J)·v into out (+=), where J is the
// Jacobian of the logits with respect to the parameters over the batch and
// H_L is the Hessian of the summed softmax/cross-entropy loss with respect
// to the logits. This is the Gauss-Newton matrix-vector product of
// Schraudolph (2004) computed with Pearlmutter's R-operator:
//
//  1. ordinary forward pass (activations a_l),
//  2. R-forward pass propagating Rz/Ra under perturbation v,
//  3. at the output, dOut = H_L·Rz_L = p∘Rz − p·(pᵀRz) per row,
//  4. ordinary backward pass with dOut as the output gradient.
//
// Like the Hessian for this loss, the result is symmetric; unlike the
// Hessian it is guaranteed positive semidefinite, which the HF inner CG
// relies on. The product is summed over the batch rows; callers normalize
// by the curvature-sample size.
//
//lint:shape v=n out=n
func (n *Network) GNProduct(x *tensor.Matrix, v, out tensor.Vector) {
	if len(v) != n.NumParams() || len(out) != n.NumParams() {
		panic(fmt.Sprintf("nn: GNProduct vectors %d/%d elements, want %d", len(v), len(out), n.NumParams()))
	}
	f := n.Forward(x)
	rz := n.rForward(f, v)
	// dOut = H_L · Rz_L with H_L = diag(p) − p·pᵀ per row.
	p := Softmax(f.Logits)
	for i := 0; i < rz.Rows; i++ {
		pr, rr := p.Row(i), rz.Row(i)
		var dot float64
		for j := range pr {
			dot += float64(pr[j]) * float64(rr[j])
		}
		for j := range rr {
			rr[j] = pr[j] * (rr[j] - float32(dot))
		}
	}
	n.BackpropOutputGrad(f, rz, out)
}

// rForward runs the R-operator forward pass for perturbation v over the
// stored forward state and returns R(logits).
//
// Recurrences, with a_0 = x and Ra_0 = 0:
//
//	Rz_{l+1} = a_l·Vᵀ + Ra_l·Wᵀ + 1·Rbᵀ
//	Ra_{l+1} = σ'(z_{l+1}) ∘ Rz_{l+1}   (hidden layers only)
func (n *Network) rForward(f *Forward, v tensor.Vector) *tensor.Matrix {
	vw, vb := n.Topo.Views(v)
	L := n.Topo.NumLayers()
	batch := f.Batch()
	var ra *tensor.Matrix // R(a_l); nil means zero (input layer)
	a := f.X
	var rz *tensor.Matrix
	for l := 0; l < L; l++ {
		rz = tensor.NewMatrix(batch, n.Topo.Sizes[l+1])
		blas.Gemm(blas.NoTrans, blas.Trans, 1, a, vw[l], 0, rz)
		if ra != nil {
			blas.Gemm(blas.NoTrans, blas.Trans, 1, ra, n.Weights[l], 1, rz)
		}
		addBiasRows(rz, vb[l])
		if l < L-1 {
			// Ra = f'(z) ∘ Rz, with f' from stored activations.
			n.Act.hadamardDeriv(rz, f.Hidden[l])
			ra = rz
			a = f.Hidden[l]
		}
	}
	return rz
}
