package nn

import (
	"fmt"
	"math"

	"repro/internal/blas"
	"repro/internal/check"
	"repro/internal/tensor"
)

// InferBuffers holds every activation buffer one inference worker needs
// to run batched forward passes without allocating: one maxBatch-row
// matrix per weight layer, sized for the topology at construction. The
// serving runtime (internal/serve) owns one InferBuffers per scoring
// worker; training-side consumers (held-out scoring, examples) can use
// one to keep repeated evaluation off the garbage collector.
//
// A buffer set is tied to one topology and one maximum batch size and is
// NOT safe for concurrent use — give each goroutine its own.
type InferBuffers struct {
	topo     Topology
	maxBatch int
	// acts[l] is the layer-l output buffer. Its Data always backs the
	// full maxBatch rows; ForwardInto shrinks Rows to the live batch
	// (the view idiom tensor.View also relies on: Data may extend past
	// Rows·Stride).
	acts []*tensor.Matrix
	// ws holds the GEMM packing panels, so the per-layer products reuse
	// them instead of allocating per call.
	ws blas.Workspace
}

// NewInferBuffers allocates activation buffers for forward passes of up
// to maxBatch rows through topology t.
func (t Topology) NewInferBuffers(maxBatch int) *InferBuffers {
	if maxBatch <= 0 {
		panic(fmt.Sprintf("nn: NewInferBuffers maxBatch %d, want > 0", maxBatch))
	}
	b := &InferBuffers{topo: t, maxBatch: maxBatch}
	for l := 0; l < t.NumLayers(); l++ {
		b.acts = append(b.acts, tensor.NewMatrix(maxBatch, t.Sizes[l+1]))
	}
	return b
}

// MaxBatch returns the batch capacity the buffers were sized for.
func (b *InferBuffers) MaxBatch() int { return b.maxBatch }

// Topology returns the topology the buffers were sized for.
func (b *InferBuffers) Topology() Topology { return b.topo }

// inferMismatch reports a ForwardInto precondition violation. It is
// hoisted out of the hot path (and kept noinline) so the formatted panic
// arguments never allocate inside the kernel, mirroring blas.lenMismatch.
//
//go:noinline
func inferMismatch(what string, got, want int) {
	panic(fmt.Sprintf("nn: ForwardInto %s %d, want %d", what, got, want))
}

// ForwardInto runs the inference-only forward pass over x into buf and
// returns the logits matrix (x.Rows × OutputDim), which aliases buf and
// stays valid until the next call. It is the shared scoring entry point:
// the serving runtime's batch path and direct evaluation both run
// through it. Unlike Forward it keeps no training-only state (no stored
// hidden activations for backprop, no Gauss-Newton scratch) and performs
// zero allocations per call — the escape, bounds-check and alloc gates
// hold it to that.
//
// The arithmetic is exactly Forward's (same GEMM shapes, same bias and
// activation application in the same order), so logits agree
// bit-for-bit with Forward(x).Logits; TestForwardIntoMatchesForward
// pins that. An input-dimension mismatch panics inside blas.Gemm, which
// validates every operand shape.
//
//lint:shape x=(b,d)
//lint:hotpath
func (n *Network) ForwardInto(buf *InferBuffers, x *tensor.Matrix) *tensor.Matrix {
	weights, biases, acts := n.Weights, n.Biases, buf.acts
	if check.Enabled {
		check.Dims("nn.ForwardInto.topo", len(acts), n.Topo.NumLayers())
		check.Dims("nn.ForwardInto.x", x.Cols, n.Topo.InputDim())
	}
	// The loop runs inside the equal-length branch (the blas.Axpy idiom)
	// so the prove pass sees len(weights) == len(biases) == len(acts) on
	// the hot path and drops the per-layer bounds checks.
	if len(weights) == len(acts) && len(biases) == len(acts) && len(acts) > 0 && x.Rows <= buf.maxBatch {
		a := x
		last := len(acts) - 1
		for l := range acts {
			z := acts[l]
			z.Rows = a.Rows
			// z = a·Wᵀ + 1·bᵀ — the same blocked kernel and operand order
			// as Forward, so the two paths agree bitwise; the workspace
			// only swaps where the packing panels live.
			blas.GemmWith(blas.Config{Workspace: &buf.ws}, blas.NoTrans, blas.Trans, 1, a, weights[l], 0, z)
			addBiasRows(z, biases[l])
			if l != last {
				n.Act.apply(z)
				a = z
			}
		}
		return acts[last]
	}
	if len(weights) != len(acts) || len(biases) != len(acts) || len(acts) == 0 {
		inferMismatch("layer buffers", len(acts), len(weights))
	}
	inferMismatch("batch", x.Rows, buf.maxBatch)
	return nil
}

// SoftmaxInto writes row-wise softmax probabilities of logits into p,
// which the caller supplies (p may be logits itself for an in-place
// transform: each row is read before it is written). Softmax allocates
// and delegates here.
//
//lint:shape p=(logits.Rows,logits.Cols)
func SoftmaxInto(logits, p *tensor.Matrix) {
	if check.Enabled {
		check.Layout("nn.SoftmaxInto.p", p.Rows, p.Cols, logits.Rows, logits.Cols)
	}
	if p.Rows != logits.Rows || p.Cols != logits.Cols {
		panic(fmt.Sprintf("nn: SoftmaxInto dst %d×%d, want %d×%d",
			p.Rows, p.Cols, logits.Rows, logits.Cols))
	}
	for i := 0; i < logits.Rows; i++ {
		softmaxRow(p.Row(i), logits.Row(i))
	}
}

// softmaxRow computes dst = softmax(src) for one row; dst may be src.
func softmaxRow(dst, src []float32) {
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(float64(v - max))
		dst[j] = float32(e)
		sum += e
	}
	//lint:ignore divguard after max subtraction the max element contributes exp(0)=1, so sum ≥ 1
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}
