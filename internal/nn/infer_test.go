package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// The shared-inference contract: ForwardInto over preallocated buffers
// must agree bit-for-bit with the training-path Forward — same GEMM,
// same bias/activation order, no numeric drift from the buffer reuse.
func TestForwardIntoMatchesForward(t *testing.T) {
	net := testNet(t, 6, 9, 5, 4)
	rng := rand.New(rand.NewSource(7))
	buf := net.Topo.NewInferBuffers(16)
	for _, rows := range []int{1, 3, 16} {
		x := tensor.RandMatrix(rng, rows, 6, 1)
		want := net.Forward(x).Logits
		got := net.ForwardInto(buf, x)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("rows=%d: logits %d×%d, want %d×%d", rows, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := 0; i < rows; i++ {
			gr, wr := got.Row(i), want.Row(i)
			for j := range wr {
				if gr[j] != wr[j] {
					t.Fatalf("rows=%d: logits[%d][%d] = %v, want %v (bitwise)", rows, i, j, gr[j], wr[j])
				}
			}
		}
	}
}

// Shrinking then regrowing the live batch must not leak stale rows: a
// full-batch pass after a small one sees freshly computed values
// everywhere, because every row is recomputed, not reused.
func TestInferBuffersReuseAcrossBatchSizes(t *testing.T) {
	net := testNet(t, 4, 6, 3)
	rng := rand.New(rand.NewSource(8))
	buf := net.Topo.NewInferBuffers(8)
	big := tensor.RandMatrix(rng, 8, 4, 1)
	want := net.Forward(big).Logits
	// Dirty the buffers with a 2-row pass, then run the full batch.
	small := tensor.RandMatrix(rng, 2, 4, 1)
	net.ForwardInto(buf, small)
	got := net.ForwardInto(buf, big)
	for i := 0; i < 8; i++ {
		gr, wr := got.Row(i), want.Row(i)
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("row %d reused stale state: got %v, want %v", i, gr[j], wr[j])
			}
		}
	}
}

func TestForwardIntoRejectsBadInput(t *testing.T) {
	net := testNet(t, 4, 6, 3)
	buf := net.Topo.NewInferBuffers(4)
	cases := []struct {
		name string
		run  func()
	}{
		{"batch too large", func() { net.ForwardInto(buf, tensor.NewMatrix(5, 4)) }},
		{"wrong input dim", func() { net.ForwardInto(buf, tensor.NewMatrix(2, 3)) }},
		{"foreign buffers", func() {
			other := NewTopology(4, 2, 3).NewInferBuffers(4)
			net.ForwardInto(other, tensor.NewMatrix(2, 4))
		}},
		{"zero maxBatch", func() { net.Topo.NewInferBuffers(0) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.run()
		}()
	}
}

// SoftmaxInto must normalize each row, match the allocating Softmax,
// and support the in-place form the serving runtime uses.
func TestSoftmaxInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.RandMatrix(rng, 5, 7, 4)
	want := Softmax(logits)
	inplace := tensor.NewMatrix(5, 7)
	for i := 0; i < 5; i++ {
		copy(inplace.Row(i), logits.Row(i))
	}
	SoftmaxInto(inplace, inplace)
	for i := 0; i < 5; i++ {
		var sum float64
		gr, wr := inplace.Row(i), want.Row(i)
		for j := range wr {
			if gr[j] != wr[j] {
				t.Fatalf("in-place softmax diverges at [%d][%d]: %v vs %v", i, j, gr[j], wr[j])
			}
			sum += float64(gr[j])
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v, want ≈1", i, sum)
		}
	}
	// Shape mismatch must panic, not write out of place.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shape mismatch accepted")
			}
		}()
		SoftmaxInto(logits, tensor.NewMatrix(5, 6))
	}()
}

// TestZeroAllocForwardInto is the runtime half of the allocation gate
// for the shared inference path (the escape gate is the compiler half):
// steady-state batched scoring must not touch the allocator.
func TestZeroAllocForwardInto(t *testing.T) {
	net := testNet(t, 10, 16, 8)
	rng := rand.New(rand.NewSource(10))
	buf := net.Topo.NewInferBuffers(32)
	x := tensor.RandMatrix(rng, 32, 10, 1)
	net.ForwardInto(buf, x) // warm up
	if n := testing.AllocsPerRun(20, func() { net.ForwardInto(buf, x) }); n != 0 {
		t.Errorf("ForwardInto: %.0f allocs per call, want 0", n)
	}
	logits := net.ForwardInto(buf, x)
	if n := testing.AllocsPerRun(20, func() { SoftmaxInto(logits, logits) }); n != 0 {
		t.Errorf("SoftmaxInto (in-place): %.0f allocs per call, want 0", n)
	}
}
