// Package nn implements the feedforward deep neural network acoustic
// model trained by the paper: sigmoid hidden layers, a softmax output over
// HMM states, cross-entropy loss, exact backpropagated gradients, and the
// Gauss-Newton matrix-vector products (Pearlmutter 1994, Schraudolph 2004)
// that Hessian-free optimization consumes.
//
// Parameters live in one flat float32 vector; per-layer weight matrices
// and bias vectors are views into it, so optimizer vector arithmetic
// (axpy, dot) and layer-structured linear algebra share storage.
package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Topology describes layer sizes from input to output, e.g.
// [360, 1024, 1024, 1024, 384] for a 3-hidden-layer acoustic model.
type Topology struct {
	Sizes []int
}

// NewTopology validates and returns a topology.
func NewTopology(sizes ...int) Topology {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: topology needs ≥2 layers, got %v", sizes))
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer size in %v", sizes))
		}
	}
	return Topology{Sizes: append([]int(nil), sizes...)}
}

// NumLayers returns the number of weight layers (transitions between
// consecutive activation layers).
func (t Topology) NumLayers() int { return len(t.Sizes) - 1 }

// InputDim returns the input dimension.
func (t Topology) InputDim() int { return t.Sizes[0] }

// OutputDim returns the output dimension (number of HMM states).
func (t Topology) OutputDim() int { return t.Sizes[len(t.Sizes)-1] }

// NumParams returns the total parameter count: Σ (out·in + out).
func (t Topology) NumParams() int {
	n := 0
	for l := 0; l < t.NumLayers(); l++ {
		n += t.Sizes[l+1]*t.Sizes[l] + t.Sizes[l+1]
	}
	return n
}

// Views carves a flat parameter-shaped vector into per-layer weight
// matrices (out×in) and bias vectors sharing storage with flat.
func (t Topology) Views(flat tensor.Vector) (weights []*tensor.Matrix, biases []tensor.Vector) {
	if len(flat) != t.NumParams() {
		panic(fmt.Sprintf("nn: flat vector %d elements, want %d", len(flat), t.NumParams()))
	}
	off := 0
	for l := 0; l < t.NumLayers(); l++ {
		in, out := t.Sizes[l], t.Sizes[l+1]
		weights = append(weights, tensor.FromSlice(out, in, flat[off:off+out*in]))
		off += out * in
		biases = append(biases, tensor.Vector(flat[off:off+out]))
		off += out
	}
	return weights, biases
}

// Network is a feedforward DNN. Weights and Biases alias Params.
type Network struct {
	Topo    Topology
	Params  tensor.Vector
	Weights []*tensor.Matrix
	Biases  []tensor.Vector
	// Act is the hidden-layer nonlinearity (Sigmoid, the paper's choice,
	// by default).
	Act Activation
}

// New creates a zero-initialized network with the given topology and the
// default sigmoid hidden activation.
func New(topo Topology) *Network {
	flat := tensor.NewVector(topo.NumParams())
	w, b := topo.Views(flat)
	return &Network{Topo: topo, Params: flat, Weights: w, Biases: b}
}

// InitGlorot initializes all weight matrices with Glorot-uniform values
// and zeros the biases, deterministically in rng.
func (n *Network) InitGlorot(rng *rand.Rand) {
	for l, w := range n.Weights {
		tensor.GlorotInit(rng, w, n.Topo.Sizes[l], n.Topo.Sizes[l+1])
		n.Biases[l].Zero()
	}
}

// SetParams copies v into the network's parameter vector.
func (n *Network) SetParams(v tensor.Vector) {
	if len(v) != len(n.Params) {
		panic(fmt.Sprintf("nn: SetParams %d elements, want %d", len(v), len(n.Params)))
	}
	copy(n.Params, v)
}

// Clone returns an independent deep copy of the network.
func (n *Network) Clone() *Network {
	out := New(n.Topo)
	out.Act = n.Act
	copy(out.Params, n.Params)
	return out
}

// NumParams returns the total parameter count.
func (n *Network) NumParams() int { return len(n.Params) }
