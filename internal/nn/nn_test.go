package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func testNet(t *testing.T, sizes ...int) *Network {
	t.Helper()
	n := New(NewTopology(sizes...))
	n.InitGlorot(rand.New(rand.NewSource(1)))
	return n
}

func TestTopologyBasics(t *testing.T) {
	topo := NewTopology(4, 5, 3)
	if topo.NumLayers() != 2 || topo.InputDim() != 4 || topo.OutputDim() != 3 {
		t.Fatalf("topology geometry wrong: %+v", topo)
	}
	want := 5*4 + 5 + 3*5 + 3
	if topo.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", topo.NumParams(), want)
	}
}

func TestTopologyInvalid(t *testing.T) {
	for _, sizes := range [][]int{{3}, {}, {4, 0, 2}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", sizes)
				}
			}()
			NewTopology(sizes...)
		}()
	}
}

func TestViewsAliasParams(t *testing.T) {
	n := testNet(t, 3, 4, 2)
	n.Weights[0].Set(1, 2, 42)
	w, _ := n.Topo.Views(n.Params)
	if w[0].At(1, 2) != 42 {
		t.Fatal("weight views must alias the flat parameter vector")
	}
	n.Biases[1][0] = -7
	_, b := n.Topo.Views(n.Params)
	if b[1][0] != -7 {
		t.Fatal("bias views must alias the flat parameter vector")
	}
}

func TestViewsWrongLength(t *testing.T) {
	topo := NewTopology(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	topo.Views(make(tensor.Vector, 5))
}

func TestSetParamsAndClone(t *testing.T) {
	n := testNet(t, 2, 3, 2)
	v := tensor.RandVector(rand.New(rand.NewSource(2)), n.NumParams(), 1)
	n.SetParams(v)
	if n.Params[3] != v[3] {
		t.Fatal("SetParams did not copy")
	}
	c := n.Clone()
	c.Params[0] = 99
	if n.Params[0] == 99 {
		t.Fatal("Clone must be independent")
	}
}

func TestForwardShapes(t *testing.T) {
	n := testNet(t, 5, 7, 6, 3)
	x := tensor.RandMatrix(rand.New(rand.NewSource(3)), 4, 5, 1)
	f := n.Forward(x)
	if len(f.Hidden) != 2 {
		t.Fatalf("%d hidden activations, want 2", len(f.Hidden))
	}
	if f.Hidden[0].Cols != 7 || f.Hidden[1].Cols != 6 || f.Logits.Cols != 3 {
		t.Fatal("layer widths wrong")
	}
	if f.Logits.Rows != 4 || f.Batch() != 4 {
		t.Fatal("batch size wrong")
	}
	for _, h := range f.Hidden {
		for _, v := range h.Data[:h.Rows*h.Cols] {
			if v <= 0 || v >= 1 {
				t.Fatalf("sigmoid output %v outside (0,1)", v)
			}
		}
	}
}

func TestForwardInputMismatch(t *testing.T) {
	n := testNet(t, 5, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Forward(tensor.NewMatrix(2, 4))
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := tensor.RandMatrix(rng, 6, 9, 10)
	p := Softmax(logits)
	for i := 0; i < p.Rows; i++ {
		var sum float64
		for _, v := range p.Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxLargeLogitsStable(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float32{1000, 999, -1000})
	p := Softmax(logits)
	if math.IsNaN(float64(p.At(0, 0))) {
		t.Fatal("softmax overflowed")
	}
	if p.At(0, 0) < p.At(0, 1) {
		t.Fatal("ordering lost")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over k classes: loss per row = ln k.
	logits := tensor.NewMatrix(2, 4)
	loss, _ := CrossEntropy(logits, []int{0, 3})
	want := 2 * math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("loss %v, want %v", loss, want)
	}
}

func TestCrossEntropyCorrectCount(t *testing.T) {
	logits := tensor.FromSlice(2, 2, []float32{3, 0, 0, 3})
	_, correct := CrossEntropy(logits, []int{0, 0})
	if correct != 1 {
		t.Fatalf("correct = %d, want 1", correct)
	}
}

func TestCrossEntropyBadTargets(t *testing.T) {
	logits := tensor.NewMatrix(1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropy(logits, []int{5})
}

func TestCrossEntropyLengthMismatch(t *testing.T) {
	logits := tensor.NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropy(logits, []int{0})
}

// The central correctness test: analytic backprop gradient vs central
// finite differences of the loss.
func TestGradientMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := testNet(t, 4, 6, 5, 3)
	x := tensor.RandMatrix(rng, 7, 4, 1)
	targets := make([]int, 7)
	for i := range targets {
		targets[i] = rng.Intn(3)
	}
	grad := tensor.NewVector(n.NumParams())
	loss0, _ := n.LossGrad(x, targets, grad)
	if loss0 <= 0 {
		t.Fatalf("loss %v", loss0)
	}

	const eps = 1e-2
	checked := 0
	for trial := 0; trial < 60; trial++ {
		i := rng.Intn(n.NumParams())
		orig := n.Params[i]
		n.Params[i] = orig + eps
		lp, _ := CrossEntropy(n.Forward(x).Logits, targets)
		n.Params[i] = orig - eps
		lm, _ := CrossEntropy(n.Forward(x).Logits, targets)
		n.Params[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd) < 1e-3 && math.Abs(float64(grad[i])) < 1e-3 {
			continue // both ≈0; float32 FD too noisy to compare
		}
		rel := math.Abs(fd-float64(grad[i])) / (math.Abs(fd) + math.Abs(float64(grad[i])) + 1e-8)
		if rel > 0.08 {
			t.Fatalf("param %d: analytic %v vs FD %v (rel %.3f)", i, grad[i], fd, rel)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d informative finite-difference checks", checked)
	}
}

func TestLossGradAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := testNet(t, 3, 4, 2)
	x := tensor.RandMatrix(rng, 5, 3, 1)
	targets := []int{0, 1, 0, 1, 1}
	g1 := tensor.NewVector(n.NumParams())
	n.LossGrad(x, targets, g1)
	g2 := g1.Clone()
	n.LossGrad(x, targets, g2) // accumulate second pass
	for i := range g2 {
		if math.Abs(float64(g2[i]-2*g1[i])) > 1e-4 {
			t.Fatalf("gradient did not accumulate: %v vs 2*%v", g2[i], g1[i])
		}
	}
}

// Gauss-Newton operator properties: symmetry dᵀGe == eᵀGd and positive
// semidefiniteness vᵀGv ≥ 0, for random networks and vectors.
func TestGNProductSymmetryAndPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := testNet(t, 4, 5, 3)
	x := tensor.RandMatrix(rng, 6, 4, 1)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := tensor.RandVector(r, n.NumParams(), 0.5)
		e := tensor.RandVector(r, n.NumParams(), 0.5)
		gd := tensor.NewVector(n.NumParams())
		ge := tensor.NewVector(n.NumParams())
		n.GNProduct(x, d, gd)
		n.GNProduct(x, e, ge)
		sym := math.Abs(e.Dot(gd)-d.Dot(ge)) <= 1e-3*(1+math.Abs(e.Dot(gd)))
		psd := d.Dot(gd) >= -1e-4 && e.Dot(ge) >= -1e-4
		return sym && psd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// GNProduct must be linear in v.
func TestGNProductLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := testNet(t, 3, 4, 2)
	x := tensor.RandMatrix(rng, 5, 3, 1)
	v1 := tensor.RandVector(rng, n.NumParams(), 1)
	v2 := tensor.RandVector(rng, n.NumParams(), 1)
	sum := v1.Clone()
	sum.AddScaled(1, v2)
	gSum := tensor.NewVector(n.NumParams())
	n.GNProduct(x, sum, gSum)
	gParts := tensor.NewVector(n.NumParams())
	n.GNProduct(x, v1, gParts)
	n.GNProduct(x, v2, gParts)
	if !tensor.EqualApproxVec(gSum, gParts, 1e-3) {
		t.Fatal("GNProduct not linear in v")
	}
}

// On a network with no hidden layers (softmax regression), the
// Gauss-Newton matrix equals the exact Hessian, so Gv should match the
// finite-difference Hessian-vector product of the loss.
func TestGNMatchesHessianForConvexCase(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := testNet(t, 3, 4) // direct softmax regression: convex in params
	x := tensor.RandMatrix(rng, 8, 3, 1)
	targets := make([]int, 8)
	for i := range targets {
		targets[i] = rng.Intn(4)
	}
	v := tensor.RandVector(rng, n.NumParams(), 0.5)
	gv := tensor.NewVector(n.NumParams())
	n.GNProduct(x, v, gv)

	// FD Hessian-vector product: (∇L(θ+εv) − ∇L(θ−εv)) / 2ε.
	const eps = 1e-2
	gp := tensor.NewVector(n.NumParams())
	gm := tensor.NewVector(n.NumParams())
	saved := n.Params.Clone()
	n.Params.AddScaled(eps, v)
	n.LossGrad(x, targets, gp)
	copy(n.Params, saved)
	n.Params.AddScaled(-eps, v)
	n.LossGrad(x, targets, gm)
	copy(n.Params, saved)

	for i := range gv {
		fd := (float64(gp[i]) - float64(gm[i])) / (2 * eps)
		if math.Abs(fd) < 5e-3 && math.Abs(float64(gv[i])) < 5e-3 {
			continue
		}
		rel := math.Abs(fd-float64(gv[i])) / (math.Abs(fd) + math.Abs(float64(gv[i])) + 1e-8)
		if rel > 0.1 {
			t.Fatalf("param %d: GN %v vs FD Hessian %v (rel %.3f)", i, gv[i], fd, rel)
		}
	}
}

func TestGNProductZeroVector(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := testNet(t, 3, 4, 2)
	x := tensor.RandMatrix(rng, 4, 3, 1)
	out := tensor.NewVector(n.NumParams())
	n.GNProduct(x, tensor.NewVector(n.NumParams()), out)
	if out.MaxAbs() != 0 {
		t.Fatal("G·0 must be 0")
	}
}

func TestPredictAndFrameAccuracy(t *testing.T) {
	// A hand-built network that copies input feature 0 vs 1 to the output:
	// weights chosen so class = argmax(x0, x1).
	n := New(NewTopology(2, 2))
	n.Weights[0].Set(0, 0, 5)
	n.Weights[0].Set(1, 1, 5)
	x := tensor.FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	pred := n.Predict(x)
	if pred[0] != 0 || pred[1] != 1 || pred[2] != 0 {
		t.Fatalf("pred = %v", pred)
	}
	acc := n.FrameAccuracy(x, []int{0, 1, 1})
	if math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
	if n.FrameAccuracy(tensor.NewMatrix(0, 2), nil) != 0 {
		t.Fatal("empty batch accuracy must be 0")
	}
}

func TestBackpropGradShapeMismatch(t *testing.T) {
	n := testNet(t, 2, 2)
	f := n.Forward(tensor.NewMatrix(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.BackpropOutputGrad(f, tensor.NewMatrix(1, 2), make(tensor.Vector, 3))
}
