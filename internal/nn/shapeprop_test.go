package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// randTopology draws a small random topology: 2-5 activation layers with
// sizes in [1, 9]. Small odd sizes exercise the partition arithmetic far
// harder than the paper's uniform 1024-wide layers.
func randTopology(rng *rand.Rand) Topology {
	sizes := make([]int, 2+rng.Intn(4))
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(9)
	}
	return NewTopology(sizes...)
}

// TestViewsPartitionProperty checks, over random topologies, that Views
// carves the flat vector into an exact partition: every view aliases the
// expected contiguous range, consecutive ranges are adjacent (no gap, no
// overlap), and the ranges cover NumParams exactly. It writes a distinct
// marker through each view and reads the flat buffer back, so any offset
// error shows up as a misplaced or clobbered marker.
func TestViewsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		topo := randTopology(rng)
		flat := tensor.NewVector(topo.NumParams())
		weights, biases := topo.Views(flat)
		if len(weights) != topo.NumLayers() || len(biases) != topo.NumLayers() {
			t.Fatalf("topology %v: %d weight / %d bias views, want %d", topo.Sizes, len(weights), len(biases), topo.NumLayers())
		}
		// Write a distinct marker through every view element.
		marker := float32(1)
		for l := range weights {
			w, b := weights[l], biases[l]
			if w.Rows != topo.Sizes[l+1] || w.Cols != topo.Sizes[l] {
				t.Fatalf("topology %v layer %d: weight view %d×%d, want %d×%d", topo.Sizes, l, w.Rows, w.Cols, topo.Sizes[l+1], topo.Sizes[l])
			}
			if len(b) != topo.Sizes[l+1] {
				t.Fatalf("topology %v layer %d: bias view len %d, want %d", topo.Sizes, l, len(b), topo.Sizes[l+1])
			}
			for i := range w.Data {
				w.Data[i] = marker
				marker++
			}
			for i := range b {
				b[i] = marker
				marker++
			}
		}
		// The markers must appear in flat in order with no gap (a zero
		// left behind), no overlap (a marker overwritten), and full
		// coverage (marker count == NumParams).
		if int(marker)-1 != topo.NumParams() {
			t.Fatalf("topology %v: views hold %d elements, want %d", topo.Sizes, int(marker)-1, topo.NumParams())
		}
		for i, v := range flat {
			if v != float32(i+1) {
				t.Fatalf("topology %v: flat[%d] = %v, want %v (offset error in Views)", topo.Sizes, i, v, i+1)
			}
		}
	}
}

// TestBufferContractsProperty runs forward, backprop and the Gauss-Newton
// product over random topologies and batch sizes, asserting every buffer
// dimension agrees with the shape contracts the analyzer checks statically.
func TestBufferContractsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		topo := randTopology(rng)
		n := New(topo)
		n.InitGlorot(rand.New(rand.NewSource(int64(trial))))
		batch := 1 + rng.Intn(6)
		x := tensor.RandMatrix(rng, batch, topo.InputDim(), 1)
		targets := make([]int, batch)
		for i := range targets {
			targets[i] = rng.Intn(topo.OutputDim())
		}

		f := n.Forward(x)
		if f.Logits.Rows != batch || f.Logits.Cols != topo.OutputDim() {
			t.Fatalf("topology %v batch %d: logits %d×%d, want %d×%d", topo.Sizes, batch, f.Logits.Rows, f.Logits.Cols, batch, topo.OutputDim())
		}
		if len(f.Hidden) != topo.NumLayers()-1 {
			t.Fatalf("topology %v: %d hidden activations, want %d", topo.Sizes, len(f.Hidden), topo.NumLayers()-1)
		}
		for l, h := range f.Hidden {
			if h.Rows != batch || h.Cols != topo.Sizes[l+1] {
				t.Fatalf("topology %v layer %d: hidden %d×%d, want %d×%d", topo.Sizes, l, h.Rows, h.Cols, batch, topo.Sizes[l+1])
			}
		}

		p := Softmax(f.Logits)
		if p.Rows != f.Logits.Rows || p.Cols != f.Logits.Cols {
			t.Fatalf("topology %v: softmax %d×%d, want %d×%d", topo.Sizes, p.Rows, p.Cols, f.Logits.Rows, f.Logits.Cols)
		}

		grad := tensor.NewVector(n.NumParams())
		loss, correct := n.LossGrad(x, targets, grad)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("topology %v: non-finite loss %v", topo.Sizes, loss)
		}
		if correct < 0 || correct > batch {
			t.Fatalf("topology %v: correct = %d out of %d", topo.Sizes, correct, batch)
		}
		for i, v := range grad {
			if math.IsNaN(float64(v)) {
				t.Fatalf("topology %v: grad[%d] is NaN", topo.Sizes, i)
			}
		}

		v := tensor.RandVector(rng, n.NumParams(), 1)
		out := tensor.NewVector(n.NumParams())
		n.GNProduct(x, v, out)
		for i, gv := range out {
			if math.IsNaN(float64(gv)) {
				t.Fatalf("topology %v: GNProduct out[%d] is NaN", topo.Sizes, i)
			}
		}
	}
}

// LossGrad used to defer its length checking to whatever downstream code
// happened to index out of range; it now fails fast with explicit guards.
func TestLossGradTargetsLengthPanics(t *testing.T) {
	n := testNet(t, 3, 4, 2)
	x := tensor.NewMatrix(2, 3)
	grad := tensor.NewVector(n.NumParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: 1 target for 2 rows")
		}
	}()
	n.LossGrad(x, []int{0}, grad)
}

func TestLossGradGradLengthPanics(t *testing.T) {
	n := testNet(t, 3, 4, 2)
	x := tensor.NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: short grad vector")
		}
	}()
	n.LossGrad(x, []int{0, 1}, tensor.NewVector(n.NumParams()-1))
}
