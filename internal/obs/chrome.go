package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event, "M" = metadata). Timestamps and durations are in
// microseconds, the unit the format specifies.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the trace-event format, the
// shape chrome://tracing and Perfetto both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// assignLanes gives every event a thread lane within its rank's process
// track. Spans fully nested inside the lane's innermost open span stay
// on that lane (the viewer renders proper nesting); a span that
// partially overlaps every open lane — a genuinely concurrent interval,
// e.g. CG worker goroutines or communication overlapped with compute —
// opens a new lane, so concurrent work renders side by side instead of
// collapsing onto one corrupted track. events must be ordered by start
// time with ties broken longer-first (SortEvents).
func assignLanes(events []Event) []int {
	lanes := map[int][][]time.Duration{} // rank → per-lane stack of open-span ends
	out := make([]int, len(events))
	for i, ev := range events {
		rl := lanes[ev.Rank]
		end := ev.Start + ev.Dur
		placed := -1
		for l := range rl {
			// Pop spans that ended before this one starts.
			stack := rl[l]
			for len(stack) > 0 && stack[len(stack)-1] <= ev.Start {
				stack = stack[:len(stack)-1]
			}
			rl[l] = stack
			if len(stack) == 0 || stack[len(stack)-1] >= end {
				placed = l
				rl[l] = append(stack, end)
				break
			}
		}
		if placed < 0 {
			placed = len(rl)
			rl = append(rl, []time.Duration{end})
		}
		lanes[ev.Rank] = rl
		out[i] = placed
	}
	return out
}

// rankLabel names a rank's process track; rank 0 is the master in the
// trainer's convention.
func rankLabel(rank int) string {
	if rank == 0 {
		return "rank 0 (master)"
	}
	return fmt.Sprintf("rank %d", rank)
}

// WriteChromeEvents writes events (already sorted by SortEvents) in
// Chrome trace-event JSON. Each rank becomes one process track
// (pid = rank) labeled by a process_name metadata event; within a rank,
// concurrent spans are spread over distinct thread lanes (tid = lane)
// labeled "lane N" by thread_name metadata, so overlapping work from
// worker goroutines renders correctly in Perfetto. Open the output at
// chrome://tracing or https://ui.perfetto.dev.
func WriteChromeEvents(w io.Writer, events []Event) error {
	laneOf := assignLanes(events)
	seenRank := map[int]bool{}
	seenLane := map[[2]int]bool{}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, ev := range events {
		if !seenRank[ev.Rank] {
			seenRank[ev.Rank] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: ev.Rank,
				Args: map[string]any{"name": rankLabel(ev.Rank)},
			})
		}
		lane := laneOf[i]
		if key := [2]int{ev.Rank, lane}; !seenLane[key] {
			seenLane[key] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: ev.Rank, Tid: lane,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Name, Ph: "X", Pid: ev.Rank, Tid: lane,
			Ts:  float64(ev.Start.Nanoseconds()) / 1e3,
			Dur: float64(ev.Dur.Nanoseconds()) / 1e3,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteChromeTrace writes all recorded spans in Chrome trace-event JSON
// (see WriteChromeEvents); nil-safe (writes an empty trace).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeEvents(w, t.Events())
}
