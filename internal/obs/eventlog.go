package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventLog is a bounded, concurrency-safe ring of free-form diagnostic
// lines — the channel failure paths use to leave a trail (e.g. the MPI
// commcheck watchdog dumping a rank's recent collective history). Unlike
// metrics it keeps full text; unlike spans it needs no matching end.
// A nil *EventLog is a valid, disabled log.
type EventLog struct {
	mu      sync.Mutex
	cap     int
	entries []LogEntry
	start   int   // index of oldest entry when the ring is full
	seq     int64 // total entries ever appended (cursor for EntriesSince)
}

// LogEntry is one recorded event.
type LogEntry struct {
	// Time is when the event was recorded.
	Time time.Time
	// Rank is the reporting rank, or -1 when not rank-attributed.
	Rank int
	// Text is the rendered message.
	Text string
}

// DefaultEventLogSize bounds NewEventLog(0).
const DefaultEventLogSize = 256

// NewEventLog creates a log retaining the most recent size entries
// (DefaultEventLogSize when size <= 0).
func NewEventLog(size int) *EventLog {
	if size <= 0 {
		size = DefaultEventLogSize
	}
	return &EventLog{cap: size}
}

// Addf formats and records an event; nil-safe.
func (l *EventLog) Addf(rank int, format string, args ...any) {
	if l == nil {
		return
	}
	e := LogEntry{Time: time.Now(), Rank: rank, Text: fmt.Sprintf(format, args...)}
	l.mu.Lock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
	} else {
		l.entries[l.start] = e
		l.start = (l.start + 1) % l.cap
	}
	l.seq++
	l.mu.Unlock()
}

// Seq returns the total number of entries ever appended (including any
// the ring has since overwritten) — a cursor for EntriesSince; nil-safe.
func (l *EventLog) Seq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// EntriesSince returns the retained entries appended after cursor seq
// (a value previously returned by Seq or EntriesSince; pass 0 for
// everything retained) plus the new cursor. Entries overwritten by the
// ring before the call are silently missing — the telemetry shipper's
// incremental reads tolerate that the same way span drops are
// tolerated; nil-safe.
func (l *EventLog) EntriesSince(seq int64) ([]LogEntry, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	newer := l.seq - seq
	if newer <= 0 {
		return nil, l.seq
	}
	if n := int64(len(l.entries)); newer > n {
		newer = n
	}
	all := make([]LogEntry, 0, len(l.entries))
	all = append(all, l.entries[l.start:]...)
	all = append(all, l.entries[:l.start]...)
	return all[int64(len(all))-newer:], l.seq
}

// Entries returns a copy of the retained events, oldest first; nil-safe.
func (l *EventLog) Entries() []LogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, 0, len(l.entries))
	out = append(out, l.entries[l.start:]...)
	out = append(out, l.entries[:l.start]...)
	return out
}

// Len returns the number of retained events; nil-safe.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// WriteText renders the retained events, one "time [rank] text" line
// each, oldest first; nil-safe.
func (l *EventLog) WriteText(w io.Writer) error {
	for _, e := range l.Entries() {
		if _, err := fmt.Fprintf(w, "%s [rank %d] %s\n", e.Time.Format(time.RFC3339Nano), e.Rank, e.Text); err != nil {
			return err
		}
	}
	return nil
}
