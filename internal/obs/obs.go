// Package obs is the unified observability layer for the trainer: a
// metrics registry (atomic counters, gauges and bucketed histograms), a
// span tracer exporting Chrome trace-event JSON, and the Observer bundle
// the runtime threads through master and worker ranks.
//
// The paper's core evidence (Figures 2-5) is per-function cycle and MPI
// time attribution; this package produces the same per-phase breakdowns
// from *real* runs rather than the simulator's model. A traced
// cmd/hftrain run renders per-rank tracks for load_data, gradient_loss,
// worker_curvature_product, sync_weights, cg_minimize and loss_eval in
// any Chrome-trace viewer (chrome://tracing, Perfetto).
//
// Everything is nil-safe: a nil *Registry, *Tracer, *Observer, *Counter,
// *Gauge or *Histogram turns every method into a no-op, so instrumented
// hot paths pay only a pointer check (and zero allocations) when
// observability is disabled. TestDisabledObsIsNoop enforces this.
package obs

// Observer bundles the metrics registry and span tracer handed to one
// rank (or shared by all in-process ranks; both halves are safe for
// concurrent use). The zero value and nil are valid, disabled observers.
type Observer struct {
	// Metrics receives counters, gauges and histograms; nil disables.
	Metrics *Registry
	// Trace receives spans; nil disables.
	Trace *Tracer
	// Events receives diagnostic event lines (failure dumps, protocol
	// histories); nil disables.
	Events *EventLog
}

// Span starts a span on the observer's tracer; nil-safe.
func (o *Observer) Span(rank int, name string) Span {
	if o == nil {
		return Span{}
	}
	return o.Trace.Begin(rank, name)
}

// Registry returns the metrics registry, or nil when disabled; nil-safe.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the span tracer, or nil when disabled; nil-safe. Code
// outside this package must reach the tracer through this accessor (or
// Span) rather than the Trace field — the obsnilguard analyzer enforces
// it — so a nil Observer stays a valid, disabled observer.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// EventLog returns the diagnostic event log, or nil when disabled;
// nil-safe. Like Trace, the Events field must be reached through this
// accessor (or Eventf) outside package obs.
func (o *Observer) EventLog() *EventLog {
	if o == nil {
		return nil
	}
	return o.Events
}

// Eventf records a formatted diagnostic event for rank; nil-safe at
// every level (nil Observer, nil EventLog).
func (o *Observer) Eventf(rank int, format string, args ...any) {
	if o == nil {
		return
	}
	o.Events.Addf(rank, format, args...)
}
