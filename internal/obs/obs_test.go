package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.calls")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x.calls") != c {
		t.Fatal("Counter must return the same instrument for the same name")
	}
	g := r.Gauge("x.frames")
	g.Set(123.5)
	if g.Value() != 123.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 1106.0/5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean=%v want %v", got, want)
	}
	// The median observation is 3; its power-of-two bucket upper bound is 3.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50=%d want 3", q)
	}
	// p99 of 5 observations is the largest one's bucket: 1000 ≤ 1023.
	if q := h.Quantile(0.99); q != 1023 {
		t.Fatalf("p99=%d want 1023", q)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v   int64
		idx int
	}{{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {math.MaxInt64, 63}}
	for _, c := range cases {
		if got := bucketIdx(c.v); got != c.idx {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.v, got, c.idx)
		}
	}
	if bucketUpper(0) != 0 || bucketUpper(10) != 1023 || bucketUpper(63) != math.MaxInt64 {
		t.Fatal("bucketUpper bounds wrong")
	}
}

// TestConcurrentHammer drives counters and histograms from many
// goroutines; run with -race it proves the instruments are data-race
// free and lose no updates.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer.calls")
			h := r.Histogram("hammer.lat")
			g := r.Gauge("hammer.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(w*perWorker + i + 1))
				g.Set(float64(i))
			}
		}(w)
	}
	wg.Wait()
	const n = workers * perWorker
	if got := r.Counter("hammer.calls").Value(); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	h := r.Histogram("hammer.lat")
	if h.Count() != n {
		t.Fatalf("hist count = %d, want %d", h.Count(), n)
	}
	if h.Sum() != int64(n)*(n+1)/2 {
		t.Fatalf("hist sum = %d, want %d", h.Sum(), int64(n)*(n+1)/2)
	}
	if h.Min() != 1 || h.Max() != n {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	var bucketTotal int64
	for _, b := range r.Snapshot().Histograms[0].Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
}

// TestConcurrentSpans hammers one tracer from many goroutine ranks;
// with -race this proves the tracer is safe across ranks.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	const ranks = 8
	const spans = 200
	for rk := 0; rk < ranks; rk++ {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				sp := tr.Begin(rk, "work")
				sp.End()
			}
		}(rk)
	}
	wg.Wait()
	if got := len(tr.Events()); got != ranks*spans {
		t.Fatalf("events = %d, want %d", got, ranks*spans)
	}
	if got := len(tr.Ranks()); got != ranks {
		t.Fatalf("ranks = %d, want %d", got, ranks)
	}
}

// fakeClock returns a clock function advancing step per call.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	cur := start
	return func() time.Time {
		now := cur
		cur = cur.Add(step)
		return now
	}
}

// TestSpanNestingOrdering checks the invariants the trainer relies on:
// spans opened LIFO on one rank are recorded with containment (child
// interval inside parent interval), and Events() is sorted by start.
func TestSpanNestingOrdering(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(tr.epoch, time.Millisecond)

	outer := tr.Begin(0, "outer")
	inner := tr.Begin(0, "inner")
	inner.End()
	later := tr.Begin(1, "other-rank")
	later.End()
	outer.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("events not sorted by start: %+v", evs)
		}
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	out, in := byName["outer"], byName["inner"]
	if in.Start < out.Start || in.Start+in.Dur > out.Start+out.Dur {
		t.Fatalf("inner [%v,%v] not contained in outer [%v,%v]",
			in.Start, in.Start+in.Dur, out.Start, out.Start+out.Dur)
	}
	if byName["other-rank"].Rank != 1 {
		t.Fatal("rank label lost")
	}
}

// TestChromeTraceGolden locks down the exported trace-event JSON with a
// deterministic clock. Perfetto and chrome://tracing parse this format;
// any change here is a compatibility break.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(tr.epoch, 500*time.Microsecond)

	a := tr.Begin(0, "load_data") // the fake clock starts at the epoch: ts 0
	a.End()
	b := tr.Begin(1, "gradient_loss")
	b.End()

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "rank 0 (master)"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "lane 0"
   }
  },
  {
   "name": "load_data",
   "ph": "X",
   "pid": 0,
   "tid": 0,
   "ts": 0,
   "dur": 500
  },
  {
   "name": "process_name",
   "ph": "M",
   "pid": 1,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "rank 1"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "pid": 1,
   "tid": 0,
   "ts": 0,
   "args": {
    "name": "lane 0"
   }
  },
  {
   "name": "gradient_loss",
   "ph": "X",
   "pid": 1,
   "tid": 0,
   "ts": 1000,
   "dur": 500
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if sb.String() != golden {
		t.Fatalf("trace JSON mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestDisabledObsIsNoop proves the disabled path — nil Registry, nil
// Tracer, nil Observer and their nil instruments — allocates nothing,
// so instrumented hot paths (GEMM, CG, collectives) pay only pointer
// checks when observability is off.
func TestDisabledObsIsNoop(t *testing.T) {
	var (
		r  *Registry
		tr *Tracer
		o  *Observer
	)
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		c.Inc()
		g.Set(1)
		h.Observe(42)
		sp := tr.Begin(3, "phase")
		sp.End()
		o.Span(1, "phase").End()
		_ = o.Registry()
		_ = c.Value()
		_ = h.Count()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %v times per run, want 0", allocs)
	}
	if evs := tr.Events(); evs != nil {
		t.Fatal("nil tracer returned events")
	}
}

// TestEnabledHistogramObserveNoAlloc: even when enabled, Observe and
// span Begin/End must not allocate per call (End's slice append is
// amortized; measure Observe alone).
func TestEnabledHistogramObserveNoAlloc(t *testing.T) {
	var h Histogram
	h.Observe(1) // seed min/max outside the measurement
	allocs := testing.AllocsPerRun(100, func() { h.Observe(77) })
	if allocs != 0 {
		t.Fatalf("enabled Observe allocated %v times per run, want 0", allocs)
	}
}

func TestRegistrySnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.calls").Add(2)
	r.Counter("a.calls").Add(1)
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.calls" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 || s.Histograms[0].Min != 100 {
		t.Fatalf("hist snap: %+v", s.Histograms)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a.calls"`, `"value": 2`, `"p50"`, `"buckets"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("JSON missing %s:\n%s", want, sb.String())
		}
	}
	// A nil registry snapshots empty and still serializes.
	var nilR *Registry
	if err := nilR.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
